#include "csecg/obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "csecg/obs/json.hpp"

namespace csecg::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Process-unique histogram ids; never reused, so a stale thread-local
/// shard pointer left by a destroyed histogram can never be read back.
std::atomic<std::size_t> g_next_histogram_id{0};

/// Per-thread shard cache indexed by histogram id.  Grows only on the
/// registration slow path; the hot path is one bounds check and one load.
thread_local std::vector<void*> t_shards;

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Histogram.

struct Histogram::Shard {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, Histogram::kBuckets> buckets{};
};

Histogram::Histogram()
    : id_(g_next_histogram_id.fetch_add(1, std::memory_order_relaxed)) {}

Histogram::~Histogram() = default;

Histogram::Shard& Histogram::local_shard() {
  if (id_ < t_shards.size() && t_shards[id_] != nullptr) {
    return *static_cast<Shard*>(t_shards[id_]);
  }
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    shards_.push_back(std::move(owned));
  }
  if (t_shards.size() <= id_) t_shards.resize(id_ + 1, nullptr);
  t_shards[id_] = shard;
  return *shard;
}

void Histogram::record(std::uint64_t value) noexcept {
  if (!enabled()) return;
  Shard& shard = local_shard();
  const std::size_t bucket =
      value == 0 ? 0
                 : std::min<std::size_t>(std::bit_width(value), kBuckets - 1);
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t prev = shard.max.load(std::memory_order_relaxed);
  while (value > prev && !shard.max.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot merged;
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shards_) {
    merged.count += shard->count.load(std::memory_order_relaxed);
    merged.sum += shard->sum.load(std::memory_order_relaxed);
    merged.max =
        std::max(merged.max, shard->max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      merged.buckets[b] += shard->buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::reset() noexcept {
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shards_) {
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0, std::memory_order_relaxed);
    shard->max.store(0, std::memory_order_relaxed);
    for (auto& bucket : shard->buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.5);
  // Any positive q must cover at least one sample, else a single-sample
  // snapshot reports 0 for every small quantile.
  if (q > 0.0 && target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) {
      // Upper edge of bucket b, clamped by the true maximum.
      const std::uint64_t edge =
          b == 0 ? 0
                 : (b >= 63 ? max : (std::uint64_t{1} << b) - 1);
      return std::min(edge, max);
    }
  }
  return max;
}

// ---------------------------------------------------------------------------
// Registry.

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(name), std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(name), std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::string Registry::snapshot_json() const {
  // Built with the locale-independent helpers in obs/json.hpp: the printf
  // family follows LC_NUMERIC (a comma-decimal locale renders 2.5 as
  // "2,5") and iostreams follow the imbued std::locale (digit grouping),
  // either of which would emit invalid JSON.
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_u64(out, value.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_double(out, value.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ',';
    first = false;
    const Histogram::Snapshot snap = hist->snapshot();
    append_json_string(out, name);
    out += ":{\"count\":";
    append_json_u64(out, snap.count);
    out += ",\"sum\":";
    append_json_u64(out, snap.sum);
    out += ",\"max\":";
    append_json_u64(out, snap.max);
    out += ",\"mean\":";
    append_json_double(out, snap.mean());
    out += ",\"p50\":";
    append_json_u64(out, snap.quantile(0.5));
    out += ",\"p90\":";
    append_json_u64(out, snap.quantile(0.9));
    out += ",\"p99\":";
    append_json_u64(out, snap.quantile(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, value] : counters_) value.reset();
  for (auto& [name, value] : gauges_) value.reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

Registry& Registry::global() {
  // Intentionally leaked: instrumented code may run during static
  // destruction (worker threads draining, pool teardown), so the global
  // registry must outlive every other static.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}

Gauge& gauge(std::string_view name) { return Registry::global().gauge(name); }

Histogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

std::string snapshot_json() { return Registry::global().snapshot_json(); }

void reset() { Registry::global().reset(); }

}  // namespace csecg::obs

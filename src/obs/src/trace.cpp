#include "csecg/obs/trace.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "csecg/obs/json.hpp"

namespace csecg::obs {
namespace {

constexpr std::size_t kDefaultTraceCapacity = 65536;

bool env_truthy(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  const std::string_view value(env);
  return !(value.empty() || value == "0" || value == "false" ||
           value == "off");
}

std::atomic<bool>& trace_flag() {
  static std::atomic<bool> flag{env_truthy("CSECG_TRACE")};
  return flag;
}

/// One thread's append-only event buffer.  Single writer (the owning
/// thread); the exporter synchronizes through the release/acquire pair on
/// `size`, so the plain event slots are never racily shared.
struct ThreadTrace {
  ThreadTrace(std::uint32_t tid_, std::size_t capacity)
      : tid(tid_), events(capacity) {}
  const std::uint32_t tid;
  std::atomic<std::size_t> size{0};
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadTrace>> buffers;
  std::uint32_t next_tid = 0;
};

TraceState& state() {
  // Intentionally leaked, like Registry::global(): pool workers may still
  // emit events while statics are being destroyed.
  static TraceState* s = new TraceState();
  return *s;
}

thread_local ThreadTrace* t_trace = nullptr;

ThreadTrace& local_trace() {
  if (t_trace != nullptr) return *t_trace;
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.buffers.push_back(
      std::make_unique<ThreadTrace>(s.next_tid++, trace_capacity()));
  t_trace = s.buffers.back().get();
  return *t_trace;
}

void push_event(const TraceEvent& event) noexcept {
  ThreadTrace& buffer = local_trace();
  const std::size_t index = buffer.size.load(std::memory_order_relaxed);
  if (index >= buffer.events.size()) {
    static Counter& dropped = counter("trace.dropped_events");
    dropped.add();
    return;
  }
  buffer.events[index] = event;
  buffer.size.store(index + 1, std::memory_order_release);
}

}  // namespace

bool trace_enabled() noexcept {
  return trace_flag().load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept {
  trace_flag().store(on, std::memory_order_relaxed);
}

std::size_t trace_capacity() noexcept {
  static const std::size_t capacity = [] {
    if (const char* env = std::getenv("CSECG_TRACE_CAPACITY")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return kDefaultTraceCapacity;
  }();
  return capacity;
}

void trace_complete(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t dur_ns,
                    const char* arg_name, std::uint64_t arg) noexcept {
  if (!trace_enabled()) return;
  push_event({name, category, arg_name, start_ns, dur_ns, arg, 'X'});
}

void trace_instant(const char* name, const char* category,
                   const char* arg_name, std::uint64_t arg) noexcept {
  if (!trace_enabled()) return;
  push_event({name, category, arg_name, monotonic_ns(), 0, arg, 'i'});
}

std::size_t trace_event_count() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t total = 0;
  for (const auto& buffer : s.buffers) {
    total += buffer->size.load(std::memory_order_acquire);
  }
  return total;
}

std::string trace_json() {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  bool first = true;
  for (const auto& buffer : s.buffers) {
    const std::size_t count = buffer->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
      const TraceEvent& event = buffer->events[i];
      if (!first) out += ',';
      first = false;
      out += "{\"name\":";
      append_json_string(out, event.name);
      out += ",\"cat\":";
      append_json_string(out, event.category);
      out += ",\"ph\":\"";
      out += event.phase;
      out += "\",\"pid\":1,\"tid\":";
      append_json_u64(out, buffer->tid);
      out += ",\"ts\":";
      append_json_double(out, static_cast<double>(event.ts_ns) / 1000.0);
      if (event.phase == 'X') {
        out += ",\"dur\":";
        append_json_double(out, static_cast<double>(event.dur_ns) / 1000.0);
      } else {
        out += ",\"s\":\"t\"";  // Instant scope: this thread.
      }
      if (event.arg_name != nullptr) {
        out += ",\"args\":{";
        append_json_string(out, event.arg_name);
        out += ':';
        append_json_u64(out, event.arg);
        out += '}';
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

void trace_reset() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& buffer : s.buffers) {
    buffer->size.store(0, std::memory_order_relaxed);
  }
}

}  // namespace csecg::obs

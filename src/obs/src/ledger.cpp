#include "csecg/obs/ledger.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>
#include <utility>

namespace csecg::obs {
namespace {

bool env_truthy(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  const std::string_view value(env);
  return !(value.empty() || value == "0" || value == "false" ||
           value == "off");
}

std::atomic<bool>& ledger_flag() {
  static std::atomic<bool> flag{env_truthy("CSECG_LEDGER")};
  return flag;
}

/// Process-unique ledger ids, mirroring the histogram shard scheme: a
/// stale thread-local buffer pointer left by a destroyed ledger can never
/// be read back because ids are never reused.
std::atomic<std::size_t> g_next_ledger_id{0};

thread_local std::vector<void*> t_buffers;

}  // namespace

bool ledger_enabled() noexcept {
  return ledger_flag().load(std::memory_order_relaxed);
}

void set_ledger_enabled(bool on) noexcept {
  ledger_flag().store(on, std::memory_order_relaxed);
}

struct Ledger::Buffer {
  std::mutex mutex;  ///< Uncontended on append (single owning writer);
                     ///< taken by the exporter at gather time.
  std::vector<std::pair<std::uint64_t, std::string>> rows;
};

Ledger::Ledger()
    : id_(g_next_ledger_id.fetch_add(1, std::memory_order_relaxed)) {}

Ledger::~Ledger() = default;

Ledger::Buffer& Ledger::local_buffer() {
  if (id_ < t_buffers.size() && t_buffers[id_] != nullptr) {
    return *static_cast<Buffer*>(t_buffers[id_]);
  }
  auto owned = std::make_unique<Buffer>();
  Buffer* buffer = owned.get();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(owned));
  }
  if (t_buffers.size() <= id_) t_buffers.resize(id_ + 1, nullptr);
  t_buffers[id_] = buffer;
  return *buffer;
}

void Ledger::append(std::uint64_t seq, std::string row) {
  Buffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.rows.emplace_back(seq, std::move(row));
}

std::string Ledger::jsonl() const {
  std::vector<std::pair<std::uint64_t, std::string>> merged;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      merged.insert(merged.end(), buffer->rows.begin(), buffer->rows.end());
    }
  }
  std::sort(merged.begin(), merged.end());
  std::string out;
  for (const auto& [seq, row] : merged) {
    out += row;
    out += '\n';
  }
  return out;
}

std::size_t Ledger::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->rows.size();
  }
  return total;
}

void Ledger::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->rows.clear();
  }
}

Ledger& Ledger::global() {
  // Leaked for the same reason as Registry::global().
  static Ledger* ledger = new Ledger();
  return *ledger;
}

std::string ledger_jsonl() { return Ledger::global().jsonl(); }

void ledger_reset() { Ledger::global().reset(); }

std::size_t ledger_size() { return Ledger::global().size(); }

}  // namespace csecg::obs

// Locale-independent JSON fragment builders shared by every obs exporter
// (snapshot_json, trace_json, the window ledger) and by callers that emit
// machine-readable rows (the experiment runners, run_report).
//
// Why not printf/iostreams: "%.17g" renders 2.5 as "2,5" under a
// comma-decimal LC_NUMERIC locale, and an imbued std::locale can group
// integer digits — both silently corrupt JSON.  std::to_chars never
// consults a locale, and its default double form is the shortest string
// that round-trips, so output is byte-stable across machines and locales.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace csecg::obs {

/// Appends `value` as a JSON number (shortest round-trip form).  JSON has
/// no spelling for non-finite values; they degrade to null.
inline void append_json_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

/// Appends `value` as a JSON integer.
inline void append_json_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

/// Appends "true" / "false".
inline void append_json_bool(std::string& out, bool value) {
  out += value ? "true" : "false";
}

/// Appends `text` as a quoted JSON string with the mandatory escapes.
inline void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace csecg::obs

// Scoped timers feeding obs histograms.
//
// Usage at a pipeline stage:
//
//   void Encoder::encode(...) {
//     static obs::Histogram& h = obs::histogram("encode.window_ns");
//     const obs::Span span(h);
//     ...                       // timed work
//   }                           // duration recorded on scope exit
//
// While obs::set_enabled(false) is in effect a Span reads no clock and
// records nothing, so the instrumented-off cost is two branches.
#pragma once

#include "csecg/obs/registry.hpp"

namespace csecg::obs {

/// Times its own lifetime into a histogram (nanoseconds).
class Span {
 public:
  explicit Span(Histogram& sink) noexcept
      : sink_(enabled() ? &sink : nullptr),
        start_ns_(sink_ != nullptr ? monotonic_ns() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { stop(); }

  /// Records now, disarms the destructor, and returns the elapsed
  /// nanoseconds (0 when timing is disabled or already stopped).
  std::uint64_t stop() noexcept {
    if (sink_ == nullptr) return 0;
    const std::uint64_t elapsed = monotonic_ns() - start_ns_;
    sink_->record(elapsed);
    sink_ = nullptr;
    return elapsed;
  }

 private:
  Histogram* sink_;
  std::uint64_t start_ns_;
};

}  // namespace csecg::obs

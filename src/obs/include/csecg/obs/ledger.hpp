// Per-window quality ledger: one structured JSONL row per decoded window,
// buffered per thread and merged in deterministic sequence order.
//
// The runners (core::run_record, link::run_link_record) append one row per
// window keyed by the window's global sequence number.  Rows carry only
// deterministic facts — measurement counts, sigma, solver iterations,
// convergence, residual, PRD/SNR, link accounting — never wall-clock
// times, so the merged ledger of a run is bit-identical for any thread
// count (wall time lives in the trace and the histograms instead).
//
// Gating mirrors the trace: disabled by default, seeded from the
// CSECG_LEDGER environment variable, toggled with set_ledger_enabled().
// Appends from a disabled call site are the caller's responsibility to
// skip (the runners check ledger_enabled() before building a row string).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace csecg::obs {

/// True while the ledger accepts rows.  Seeded from CSECG_LEDGER.
bool ledger_enabled() noexcept;

/// Enables/disables ledger recording process-wide.
void set_ledger_enabled(bool on) noexcept;

/// A sequence-keyed collection of JSONL rows with per-thread append
/// buffers.  Each appending thread owns a private buffer (its mutex is
/// uncontended on the append path); buffers are gathered and sorted only
/// at export time.
class Ledger {
 public:
  Ledger();
  ~Ledger();  // Out-of-line: Buffer is incomplete here.
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Appends one row — a complete JSON object without trailing newline —
  /// under sequence key `seq`.  Callers must hand distinct sequences to
  /// rows that should keep a relative order (the runners derive them from
  /// record index × windows-per-record + window index).
  void append(std::uint64_t seq, std::string row);

  /// Every row sorted by (seq, row), each newline-terminated.  The sort
  /// key makes the output independent of append interleaving, hence
  /// bit-identical across thread counts for deterministic row content.
  std::string jsonl() const;

  /// Rows currently buffered.
  std::size_t size() const;

  /// Drops every buffered row (thread buffers stay registered).
  void reset();

  /// The process-wide ledger the runners write to.
  static Ledger& global();

 private:
  struct Buffer;
  Buffer& local_buffer();

  const std::size_t id_;  ///< Process-unique, indexes the thread-local cache.
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Ledger::global().jsonl().
std::string ledger_jsonl();

/// Ledger::global().reset().
void ledger_reset();

/// Ledger::global().size().
std::size_t ledger_size();

}  // namespace csecg::obs

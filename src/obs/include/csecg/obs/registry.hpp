// Lightweight observability: named atomic counters, gauges, and lock-free
// per-thread histograms, scraped into a structured JSON snapshot.
//
// Design constraints (see DESIGN.md "Observability"):
//  * The hot path stays allocation-free (PR 1 contract).  Counter::add and
//    Histogram::record are relaxed atomic writes into thread-private
//    storage; the only locks are taken at registration time (first use of
//    a name, first record from a new thread) and at scrape time.
//  * Instrumented code caches references: `static obs::Counter& c =
//    obs::counter("solver.pdhg.solves");` — the name lookup happens once.
//  * Timing can be switched off globally (obs::set_enabled(false)): spans
//    stop reading the clock and histograms go quiet, while counters keep
//    running so reports stay correct.  bench_obs_overhead holds the
//    < 2% throughput-cost bar for the enabled configuration.
//
// Naming scheme: dotted lower_snake paths `<module>.<unit>.<event>`, e.g.
// `solver.pdhg.non_converged`, `quantizer.clamped_high`,
// `pool.queue_wait_ns`.  Histograms of durations end in `_ns`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace csecg::obs {

/// True (default) when timing instrumentation is armed.  Counters are not
/// gated — they cost one relaxed fetch_add and reports depend on them.
bool enabled() noexcept;

/// Arms/disarms timing instrumentation process-wide.
void set_enabled(bool on) noexcept;

/// Monotonic wall clock in nanoseconds (steady_clock).
std::uint64_t monotonic_ns() noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram of non-negative integer samples (typically
/// durations in nanoseconds).  Each recording thread writes its own shard
/// (relaxed atomics, no sharing), and shards are merged on scrape — so
/// record() is lock-free and allocation-free after the first call from a
/// given thread.
class Histogram {
 public:
  /// Bucket b counts samples in [2^(b-1), 2^b); bucket 0 counts zeros.
  static constexpr std::size_t kBuckets = 64;

  Histogram();
  ~Histogram();  // Out-of-line: Shard is incomplete here.
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample.  No-op while obs::enabled() is false.
  void record(std::uint64_t value) noexcept;

  /// Merged view of every shard.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Upper bucket edge below which at least `quantile` of the mass lies
    /// (bucket-resolution approximation, exact for the max bucket).
    std::uint64_t quantile(double q) const noexcept;
  };

  Snapshot snapshot() const;

  /// Zeroes every shard (scrape-side; racing record() calls may survive).
  void reset() noexcept;

 private:
  struct Shard;
  Shard& local_shard();

  const std::size_t id_;  ///< Process-unique, indexes the thread-local cache.
  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A named set of counters, gauges, and histograms.  Lookup is find-or-
/// create under a mutex; the returned references are stable for the
/// registry's lifetime (node-based storage), which is what lets call sites
/// cache them in function-local statics.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Serializes every metric:
  ///   {"counters": {name: n, ...},
  ///    "gauges": {name: x, ...},
  ///    "histograms": {name: {"count": n, "sum": s, "max": m,
  ///                          "mean": x, "p50": a, "p90": b, "p99": c}}}
  /// Keys are sorted; the output is stable given stable metric values.
  std::string snapshot_json() const;

  /// Zeroes every registered metric (names stay registered).
  void reset();

  /// The process-wide registry every instrumented module writes to.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Convenience accessors on the global registry.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Registry::global().snapshot_json().
std::string snapshot_json();

/// Registry::global().reset().
void reset();

}  // namespace csecg::obs

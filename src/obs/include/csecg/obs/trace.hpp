// Structured pipeline tracing: per-thread fixed-capacity event buffers
// behind a process-wide gate, exported as Chrome trace-event JSON that
// loads directly in Perfetto / chrome://tracing.
//
// Design constraints (see DESIGN.md "Observability"):
//  * The disabled hot path stays allocation-free: every emit site is one
//    out-of-line trace_enabled() load plus a branch, and no buffer exists
//    until a thread records its first event while tracing is on.
//  * Recording is lock-free: each thread owns one append-only buffer of
//    preallocated slots; the writer publishes with a release store of its
//    event count and the exporter reads it back with an acquire load, so
//    no event slot is ever touched by two threads without ordering.
//  * Buffers are bounded (CSECG_TRACE_CAPACITY events per thread, default
//    65536).  A full buffer drops new events and bumps the
//    `trace.dropped_events` counter rather than blocking or reallocating.
//
// Gating: tracing starts disabled unless the CSECG_TRACE environment
// variable is truthy ("1", "on", anything but ""/"0"/"false"/"off"), and
// can be toggled at runtime with set_trace_enabled().
//
// Event names and categories must be string literals (or otherwise outlive
// the trace): slots store the pointers, never copies.
#pragma once

#include <cstdint>
#include <string>

#include "csecg/obs/registry.hpp"

namespace csecg::obs {

/// One trace event in a thread's buffer.  POD so slots preallocate.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  const char* arg_name = nullptr;  ///< nullptr = no argument.
  std::uint64_t ts_ns = 0;         ///< Start (complete) / instant time.
  std::uint64_t dur_ns = 0;        ///< Duration; 0 for instants.
  std::uint64_t arg = 0;           ///< Meaningful iff arg_name != nullptr.
  char phase = 'X';                ///< 'X' complete, 'i' instant.
};

/// True while tracing is armed.  Seeded from CSECG_TRACE on first query.
bool trace_enabled() noexcept;

/// Arms/disarms tracing process-wide.
void set_trace_enabled(bool on) noexcept;

/// Per-thread buffer capacity in events (CSECG_TRACE_CAPACITY, fixed at
/// first use).
std::size_t trace_capacity() noexcept;

/// Records a begin/end pair as one complete ('X') event.  No-op while
/// tracing is disabled; drops (and counts) when the thread's buffer is
/// full.
void trace_complete(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t dur_ns,
                    const char* arg_name = nullptr,
                    std::uint64_t arg = 0) noexcept;

/// Records an instant ('i') event stamped now.
void trace_instant(const char* name, const char* category,
                   const char* arg_name = nullptr,
                   std::uint64_t arg = 0) noexcept;

/// Events currently held across every thread buffer.
std::size_t trace_event_count();

/// Serializes every buffered event as Chrome trace-event JSON:
///   {"displayTimeUnit":"ms","traceEvents":[{"name":...,"cat":...,
///    "ph":"X","pid":1,"tid":t,"ts":us,"dur":us,"args":{...}},...]}
/// Timestamps are microseconds (the format's unit).  Buffers are emitted
/// in thread-registration order, events in record order.
std::string trace_json();

/// Empties every buffer (capacity is kept).  Scrape-side, like
/// Histogram::reset: events being recorded concurrently may survive.
void trace_reset();

/// Times a scope into the trace as one complete event.  Reads no clock and
/// records nothing while tracing is disabled.
///
///   void Encoder::encode(...) {
///     obs::TraceScope trace("encode", "core");
///     ...
///   }  // event emitted on scope exit
///
/// An optional u64 argument can be named at construction and filled in
/// later (e.g. an iteration count known only at the end of the scope).
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* category,
                      const char* arg_name = nullptr,
                      std::uint64_t arg = 0) noexcept
      : name_(trace_enabled() ? name : nullptr),
        category_(category),
        arg_name_(arg_name),
        arg_(arg),
        start_ns_(name_ != nullptr ? monotonic_ns() : 0) {}

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() { stop(); }

  /// Updates the argument value emitted with the event.
  void set_arg(std::uint64_t value) noexcept { arg_ = value; }

  /// Emits now and disarms the destructor.
  void stop() noexcept {
    if (name_ == nullptr) return;
    trace_complete(name_, category_, start_ns_, monotonic_ns() - start_ns_,
                   arg_name_, arg_);
    name_ = nullptr;
  }

 private:
  const char* name_;
  const char* category_;
  const char* arg_name_;
  std::uint64_t arg_;
  std::uint64_t start_ns_;
};

}  // namespace csecg::obs

#include "csecg/metrics/quality.hpp"

#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"

namespace csecg::metrics {

double prd(const linalg::Vector& original,
           const linalg::Vector& reconstructed) {
  CSECG_CHECK(original.size() == reconstructed.size(),
              "prd size mismatch: " << original.size() << " vs "
                                    << reconstructed.size());
  CSECG_CHECK(!original.empty(), "prd: empty signal");
  const double ref = linalg::norm2(original);
  CSECG_CHECK(ref > 0.0, "prd: reference signal has zero norm");
  const linalg::Vector err = original - reconstructed;
  return linalg::norm2(err) / ref * 100.0;
}

double prd_zero_mean(const linalg::Vector& original,
                     const linalg::Vector& reconstructed) {
  CSECG_CHECK(original.size() == reconstructed.size(),
              "prd_zero_mean size mismatch");
  CSECG_CHECK(!original.empty(), "prd_zero_mean: empty signal");
  const double mu = linalg::mean(original);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double e = original[i] - reconstructed[i];
    const double r = original[i] - mu;
    num += e * e;
    den += r * r;
  }
  CSECG_CHECK(den > 0.0, "prd_zero_mean: reference signal is constant");
  return std::sqrt(num / den) * 100.0;
}

double snr_from_prd(double prd_percent) {
  CSECG_CHECK(prd_percent >= 0.0 && !std::isnan(prd_percent),
              "snr_from_prd requires PRD >= 0, got " << prd_percent);
  if (prd_percent <= kPrdFloorPercent) {
    // Perfect (or numerically perfect) reconstruction: report the cap
    // instead of aborting the run on a *success*.
    static obs::Counter& floor_hits = obs::counter("metrics.prd_floor_hits");
    floor_hits.add();
    return kSnrCapDb;
  }
  return -20.0 * std::log10(0.01 * prd_percent);
}

double prd_from_snr(double snr_db) {
  return 100.0 * std::pow(10.0, -snr_db / 20.0);
}

double snr(const linalg::Vector& original,
           const linalg::Vector& reconstructed) {
  return snr_from_prd(prd(original, reconstructed));
}

double compression_ratio(std::size_t bits_original,
                         std::size_t bits_compressed) {
  CSECG_CHECK(bits_original > 0, "compression_ratio: zero original size");
  const double orig = static_cast<double>(bits_original);
  const double comp = static_cast<double>(bits_compressed);
  return (orig - comp) / orig * 100.0;
}

double side_channel_overhead(double compressed_fraction, int bits_per_sample,
                             int original_bits) {
  CSECG_CHECK(compressed_fraction >= 0.0,
              "side_channel_overhead: negative fraction");
  CSECG_CHECK(bits_per_sample > 0 && original_bits > 0,
              "side_channel_overhead: bit depths must be positive");
  return compressed_fraction * static_cast<double>(bits_per_sample) /
         static_cast<double>(original_bits) * 100.0;
}

double net_compression_ratio(double cs_cr_percent, double overhead_percent) {
  return cs_cr_percent - overhead_percent;
}

}  // namespace csecg::metrics

#include "csecg/metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/common/check.hpp"

namespace csecg::metrics {

Summary summarize(const std::vector<double>& values) {
  CSECG_CHECK(!values.empty(), "summarize: empty sample");
  Summary s;
  s.count = values.size();
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1
                 ? std::sqrt(ss / static_cast<double>(s.count - 1))
                 : 0.0;
  s.median = percentile(values, 50.0);
  return s;
}

double percentile(std::vector<double> values, double p) {
  CSECG_CHECK(!values.empty(), "percentile: empty sample");
  CSECG_CHECK(p >= 0.0 && p <= 100.0, "percentile: p out of range: " << p);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

BoxStats box_stats(const std::vector<double>& values) {
  CSECG_CHECK(!values.empty(), "box_stats: empty sample");
  BoxStats b;
  b.q1 = percentile(values, 25.0);
  b.median = percentile(values, 50.0);
  b.q3 = percentile(values, 75.0);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_low = b.q3;
  b.whisker_high = b.q1;
  bool any_inlier = false;
  for (double v : values) {
    if (v >= lo_fence && v <= hi_fence) {
      if (!any_inlier) {
        b.whisker_low = v;
        b.whisker_high = v;
        any_inlier = true;
      } else {
        b.whisker_low = std::min(b.whisker_low, v);
        b.whisker_high = std::max(b.whisker_high, v);
      }
    } else {
      b.outliers.push_back(v);
    }
  }
  std::sort(b.outliers.begin(), b.outliers.end());
  return b;
}

double mad_low_threshold(const std::vector<double>& values, double k) {
  CSECG_CHECK(!values.empty(), "mad_low_threshold: empty sample");
  CSECG_CHECK(k >= 0.0, "mad_low_threshold: k must be non-negative");
  const double median = percentile(values, 50.0);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - median));
  const double mad = percentile(deviations, 50.0);
  return median - k * 1.4826 * mad;
}

std::vector<std::size_t> mad_low_outliers(const std::vector<double>& values,
                                          double k) {
  const double threshold = mad_low_threshold(values, k);
  std::vector<std::size_t> outliers;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < threshold) outliers.push_back(i);
  }
  return outliers;
}

}  // namespace csecg::metrics

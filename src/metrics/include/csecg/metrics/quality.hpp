// ECG compression quality metrics, exactly as defined in the paper (§IV).
//
//   PRD = ‖x − x̃‖₂ / ‖x‖₂ × 100
//   SNR = −20·log10(0.01·PRD)
//   CR  = (b_orig − b_comp) / b_orig × 100          (Eq. 3)
//   Dᵢ  = CRᵢ · i / 12                              (Eq. 2, side-channel
//                                                    overhead vs 12-bit)
//
// PRD here follows the paper's raw-sample convention (MIT-BIH style values
// with the ~1024 ADC offset included); prd_zero_mean() is provided for the
// stricter convention used by some of the ECG-compression literature.
#pragma once

#include <cstddef>

#include "csecg/linalg/vector.hpp"

namespace csecg::metrics {

/// Percentage root-mean-square difference on raw sample values.
/// Throws std::invalid_argument on size mismatch or an all-zero reference.
double prd(const linalg::Vector& original, const linalg::Vector& reconstructed);

/// PRD computed after removing the reference mean from both signals
/// (baseline-independent variant).
double prd_zero_mean(const linalg::Vector& original,
                     const linalg::Vector& reconstructed);

/// PRD values below this floor (in percent) report the capped SNR instead
/// of diverging: a window that reconstructs exactly (PRD == 0, reachable
/// via the zero-loss decode_lossy fallback on a constant or low-res-
/// dominated window) is a *success*, not an error.
inline constexpr double kPrdFloorPercent = 1e-10;

/// SNR reported for PRD ≤ kPrdFloorPercent: −20·log10(0.01·floor) = 240 dB.
inline constexpr double kSnrCapDb = 240.0;

/// SNR in dB from a PRD percentage: −20·log10(0.01·PRD).  PRD below
/// kPrdFloorPercent (including an exact 0) is clamped to the floor and
/// returns kSnrCapDb, counted under `metrics.prd_floor_hits`; a negative
/// or NaN PRD throws std::invalid_argument.
double snr_from_prd(double prd_percent);

/// PRD percentage from an SNR in dB (inverse of snr_from_prd).
double prd_from_snr(double snr_db);

/// Reconstruction SNR in dB, computed directly.
double snr(const linalg::Vector& original, const linalg::Vector& reconstructed);

/// Compression ratio per Eq. 3, in percent (0 = no compression).
/// Throws std::invalid_argument if bits_original == 0.
double compression_ratio(std::size_t bits_original, std::size_t bits_compressed);

/// Side-channel overhead Dᵢ per Eq. 2, in percent: the low-resolution
/// channel spends `compressed_fraction`·bits_per_sample of an assumed
/// 12-bit original per sample.
double side_channel_overhead(double compressed_fraction, int bits_per_sample,
                             int original_bits = 12);

/// Net compression ratio of the hybrid scheme: CS-channel CR minus the
/// low-resolution side-channel overhead (both in percent).
double net_compression_ratio(double cs_cr_percent, double overhead_percent);

}  // namespace csecg::metrics

// Summary statistics used by the experiment harness (Fig. 7 averages and
// the Fig. 8 box plots).
#pragma once

#include <cstddef>
#include <vector>

namespace csecg::metrics {

/// Basic moments and order statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n−1 denominator).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a Summary.  Throws std::invalid_argument on an empty sample.
Summary summarize(const std::vector<double>& values);

/// Linear-interpolation percentile, p ∈ [0, 100].
/// Throws std::invalid_argument on an empty sample or p out of range.
double percentile(std::vector<double> values, double p);

/// MATLAB-boxplot-compatible statistics: quartiles, whiskers at the most
/// extreme data points within 1.5·IQR of the box, and the outliers beyond
/// them — matching the paper's Fig. 8 description verbatim.
struct BoxStats {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_low = 0.0;
  double whisker_high = 0.0;
  std::vector<double> outliers;
};

/// Computes BoxStats.  Throws std::invalid_argument on an empty sample.
BoxStats box_stats(const std::vector<double>& values);

}  // namespace csecg::metrics

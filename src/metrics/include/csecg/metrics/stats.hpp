// Summary statistics used by the experiment harness (Fig. 7 averages and
// the Fig. 8 box plots).
#pragma once

#include <cstddef>
#include <vector>

namespace csecg::metrics {

/// Basic moments and order statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n−1 denominator).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a Summary.  Throws std::invalid_argument on an empty sample.
Summary summarize(const std::vector<double>& values);

/// Linear-interpolation percentile, p ∈ [0, 100].
/// Throws std::invalid_argument on an empty sample or p out of range.
double percentile(std::vector<double> values, double p);

/// MATLAB-boxplot-compatible statistics: quartiles, whiskers at the most
/// extreme data points within 1.5·IQR of the box, and the outliers beyond
/// them — matching the paper's Fig. 8 description verbatim.
struct BoxStats {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_low = 0.0;
  double whisker_high = 0.0;
  std::vector<double> outliers;
};

/// Computes BoxStats.  Throws std::invalid_argument on an empty sample.
BoxStats box_stats(const std::vector<double>& values);

/// Robust low-side outlier threshold: median − k·1.4826·MAD, where MAD is
/// the median absolute deviation from the median and 1.4826 rescales it to
/// a normal-consistent sigma.  With a degenerate (MAD = 0) sample the
/// threshold collapses onto the median, so only values strictly below the
/// bulk get flagged.  Throws std::invalid_argument on an empty sample.
double mad_low_threshold(const std::vector<double>& values, double k = 3.5);

/// Indices of values strictly below mad_low_threshold(values, k), in
/// ascending index order — the per-window "anomalously bad SNR" flagging
/// the quality ledger surfaces.  Throws on an empty sample.
std::vector<std::size_t> mad_low_outliers(const std::vector<double>& values,
                                          double k = 3.5);

}  // namespace csecg::metrics

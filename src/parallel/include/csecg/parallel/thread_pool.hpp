// Reusable worker pool and data-parallel loops for the experiment layer.
//
// Design constraints (see DESIGN.md "Threading model"):
//  * Deterministic work assignment: parallel_for splits [begin, end) into
//    one contiguous chunk per participating thread (static chunking).
//    Callers write results into pre-sized slots indexed by loop index, so
//    the output of a parallel run is bit-identical to the serial run no
//    matter how chunks interleave in time.
//  * The calling thread participates: a pool of size T runs T-1 workers
//    and executes the first chunk on the caller, so ThreadPool(1) is a
//    plain serial loop with zero synchronization.
//  * Nested parallel_for calls from inside a worker degrade to serial
//    inline execution instead of deadlocking on the shared queue.
//  * Exceptions thrown by loop bodies are captured, the loop drains, and
//    the first exception (by chunk order) is rethrown on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csecg::parallel {

/// Strictly parses a CSECG_THREADS-style value: decimal, whole-string,
/// ≥ 1.  Throws std::invalid_argument on anything else ("garbage", "0",
/// "4x", overflow) so a benchmark run can never silently fall back to the
/// wrong thread count.
std::size_t parse_thread_count(const char* text);

/// Number of threads a default-constructed pool uses: the CSECG_THREADS
/// environment variable when set (parsed strictly — malformed values
/// throw), otherwise std::thread::hardware_concurrency() (at least 1).
std::size_t default_thread_count();

/// Fixed-size worker pool with fork-join data-parallel loops.
class ThreadPool {
 public:
  /// Creates a pool of `threads` participating threads (the caller counts
  /// as one, so `threads - 1` workers are spawned).  0 means
  /// default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participating thread count (workers + caller), always ≥ 1.
  std::size_t threads() const noexcept { return thread_count_; }

  /// Invokes fn(i) for every i in [begin, end).  The range is split into
  /// at most threads() contiguous chunks; chunk 0 runs on the caller.
  /// Rethrows the first exception (lowest chunk index) after all chunks
  /// finish.  Safe to call concurrently from several threads and (as a
  /// serial fallback) from inside another parallel_for body.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Maps fn over [0, count) into a pre-sized vector: out[i] = fn(i).
  /// T must be default-constructible; slot writes keep the result order
  /// (and, with a deterministic fn, the values) identical to a serial map.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t count, Fn&& fn) {
    std::vector<T> out(count);
    parallel_for(0, count,
                 [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();

  std::size_t thread_count_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// Process-wide shared pool, sized once from default_thread_count() on
/// first use.  The experiment runner fans out on this pool unless handed
/// an explicit one.
ThreadPool& global_pool();

}  // namespace csecg::parallel

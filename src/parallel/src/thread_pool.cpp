#include "csecg/parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>

#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/span.hpp"
#include "csecg/obs/trace.hpp"

namespace csecg::parallel {

namespace {

/// True on threads currently executing a pool chunk; nested parallel_for
/// calls from such threads run inline instead of re-entering the queue.
thread_local bool t_in_pool_chunk = false;

}  // namespace

std::size_t parse_thread_count(const char* text) {
  CSECG_CHECK(text != nullptr, "thread count: null string");
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  // The seed passed a null endptr here, so "garbage" and "0" silently fell
  // through to hardware_concurrency — benchmark runs could report numbers
  // for a thread count nobody asked for.
  CSECG_CHECK(end != text && *end == '\0',
              "CSECG_THREADS: malformed value '"
                  << text << "' (expected a positive decimal integer)");
  CSECG_CHECK(errno != ERANGE,
              "CSECG_THREADS: value out of range: '" << text << "'");
  CSECG_CHECK(parsed >= 1,
              "CSECG_THREADS: must be >= 1, got '" << text << "'");
  return static_cast<std::size_t>(parsed);
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("CSECG_THREADS")) {
    return parse_thread_count(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
    : thread_count_(threads > 0 ? threads : default_thread_count()) {
  workers_.reserve(thread_count_ - 1);
  for (std::size_t t = 0; t + 1 < thread_count_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    t_in_pool_chunk = true;
    task();
    t_in_pool_chunk = false;
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t chunks =
      t_in_pool_chunk ? 1 : std::min(thread_count_, count);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Static chunking: chunk c covers a contiguous slice; the first
  // `remainder` chunks get one extra element.
  const std::size_t base = count / chunks;
  const std::size_t remainder = count % chunks;
  struct Shared {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;
    std::exception_ptr first_error;
    std::size_t first_error_chunk = 0;
  } shared;
  shared.pending = chunks - 1;

  static obs::Histogram& run_hist = obs::histogram("pool.chunk_run_ns");
  static obs::Histogram& wait_hist = obs::histogram("pool.queue_wait_ns");

  auto run_chunk = [&fn, &shared](std::size_t chunk, std::size_t lo,
                                  std::size_t hi) {
    try {
      const obs::Span run_span(run_hist);
      obs::TraceScope chunk_trace("pool.chunk", "pool", "chunk", chunk);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(shared.mutex);
      if (!shared.first_error || chunk < shared.first_error_chunk) {
        shared.first_error = std::current_exception();
        shared.first_error_chunk = chunk;
      }
    }
  };

  std::size_t next = begin;
  std::vector<std::pair<std::size_t, std::size_t>> spans(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < remainder ? 1 : 0);
    spans[c] = {next, next + len};
    next += len;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t enqueue_ns =
        obs::enabled() ? obs::monotonic_ns() : 0;
    for (std::size_t c = 1; c < chunks; ++c) {
      queue_.emplace_back([&run_chunk, &shared, c, spans, enqueue_ns] {
        // Time spent parked in the queue before a worker picked this
        // chunk up — the fan-out latency the runner pays per window.
        if (enqueue_ns != 0) {
          wait_hist.record(obs::monotonic_ns() - enqueue_ns);
        }
        run_chunk(c, spans[c].first, spans[c].second);
        // Notify under the lock: once pending hits 0 the caller may
        // destroy `shared`, so the worker must be done touching it
        // before the caller can observe the count.
        const std::lock_guard<std::mutex> done_lock(shared.mutex);
        --shared.pending;
        shared.done.notify_one();
      });
    }
  }
  wake_.notify_all();

  // The caller is participant 0.
  const bool was_in_chunk = t_in_pool_chunk;
  t_in_pool_chunk = true;
  run_chunk(0, spans[0].first, spans[0].second);
  t_in_pool_chunk = was_in_chunk;

  {
    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.done.wait(lock, [&shared] { return shared.pending == 0; });
    if (shared.first_error) std::rethrow_exception(shared.first_error);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace csecg::parallel

// Umbrella header: the entire csecg public API.
//
// Link the csecg::csecg CMake target when using this header; individual
// module targets (csecg::core, csecg::dsp, ...) exist for finer-grained
// dependencies.
#pragma once

#include "csecg/common/check.hpp"

#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/solve.hpp"
#include "csecg/linalg/vector.hpp"

#include "csecg/dsp/dct.hpp"
#include "csecg/dsp/dwt.hpp"
#include "csecg/dsp/fft.hpp"
#include "csecg/dsp/fir.hpp"
#include "csecg/dsp/wavelet.hpp"

#include "csecg/ecg/beats.hpp"
#include "csecg/ecg/ecgsyn.hpp"
#include "csecg/ecg/io.hpp"
#include "csecg/ecg/noise.hpp"
#include "csecg/ecg/qrs.hpp"
#include "csecg/ecg/record.hpp"

#include "csecg/sensing/diagnostics.hpp"
#include "csecg/sensing/lowres_channel.hpp"
#include "csecg/sensing/matrices.hpp"
#include "csecg/sensing/quantizer.hpp"
#include "csecg/sensing/rmpi.hpp"

#include "csecg/recovery/admm.hpp"
#include "csecg/recovery/fista.hpp"
#include "csecg/recovery/greedy.hpp"
#include "csecg/recovery/model_based.hpp"
#include "csecg/recovery/pdhg.hpp"
#include "csecg/recovery/prox.hpp"
#include "csecg/recovery/reweighted.hpp"
#include "csecg/recovery/spgl1.hpp"

#include "csecg/coding/bitstream.hpp"
#include "csecg/coding/decode_error.hpp"
#include "csecg/coding/delta.hpp"
#include "csecg/coding/delta_huffman_codec.hpp"
#include "csecg/coding/huffman.hpp"
#include "csecg/coding/zero_run_codec.hpp"

#include "csecg/power/models.hpp"
#include "csecg/power/node_energy.hpp"

#include "csecg/metrics/quality.hpp"
#include "csecg/metrics/stats.hpp"

#include "csecg/core/adaptive.hpp"
#include "csecg/core/config.hpp"
#include "csecg/core/frame.hpp"
#include "csecg/core/frontend.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/core/streaming.hpp"

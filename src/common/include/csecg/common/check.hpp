// Argument validation helpers shared by every csecg module.
//
// API misuse (bad dimensions, out-of-range parameters) throws
// std::invalid_argument with a message naming the violated condition; this
// follows the Core Guidelines I.5/E.intro style of making preconditions
// checkable at the interface without aborting the host process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace csecg::detail {

[[noreturn]] inline void throw_check_failure(const char* condition,
                                             const char* file, int line,
                                             const std::string& message) {
  std::ostringstream oss;
  oss << "csecg check failed: " << condition << " at " << file << ':' << line;
  if (!message.empty()) oss << " — " << message;
  throw std::invalid_argument(oss.str());
}

}  // namespace csecg::detail

/// Validates a precondition; throws std::invalid_argument when violated.
/// `msg` may use stream syntax: CSECG_CHECK(n > 0, "n=" << n).
#define CSECG_CHECK(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream csecg_check_oss;                               \
      csecg_check_oss << msg;                                           \
      ::csecg::detail::throw_check_failure(#cond, __FILE__, __LINE__,   \
                                           csecg_check_oss.str());      \
    }                                                                   \
  } while (false)

#include "csecg/rng/distributions.hpp"

#include <cmath>

namespace csecg::rng {

double uniform01(Xoshiro256& gen) noexcept {
  return static_cast<double>(gen.next() >> 11) * 0x1.0p-53;
}

double uniform(Xoshiro256& gen, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01(gen);
}

double normal(Xoshiro256& gen) noexcept {
  // Marsaglia polar method; rejection probability ~21.5% per round.
  for (;;) {
    const double u = 2.0 * uniform01(gen) - 1.0;
    const double v = 2.0 * uniform01(gen) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double normal(Xoshiro256& gen, double mean, double stddev) noexcept {
  return mean + stddev * normal(gen);
}

int rademacher(Xoshiro256& gen) noexcept {
  return (gen.next() >> 63) ? 1 : -1;
}

bool bernoulli(Xoshiro256& gen, double p) noexcept {
  return uniform01(gen) < p;
}

std::uint64_t uniform_below(Xoshiro256& gen, std::uint64_t bound) noexcept {
  // Classic unbiased modulo rejection: discard draws below 2^64 mod bound
  // so every residue class is equally likely.  The rejection probability
  // is < bound/2^64, i.e. negligible for the small bounds used here.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t draw = gen.next();
    if (draw >= threshold) return draw % bound;
  }
}

}  // namespace csecg::rng

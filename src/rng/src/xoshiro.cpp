#include "csecg/rng/xoshiro.hpp"

namespace csecg::rng {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
      0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      next();
    }
  }
  state_ = acc;
}

Xoshiro256 Xoshiro256::split() noexcept {
  Xoshiro256 child = *this;
  jump();
  return child;
}

}  // namespace csecg::rng

// Scalar distributions on top of Xoshiro256.
//
// All samplers are free functions taking the engine by reference so hot
// loops stay allocation-free and deterministic given the engine state.
#pragma once

#include <cstdint>

#include "csecg/rng/xoshiro.hpp"

namespace csecg::rng {

/// Uniform double in [0, 1) with 53 bits of entropy.
double uniform01(Xoshiro256& gen) noexcept;

/// Uniform double in [lo, hi).  Requires lo < hi (unchecked; trivial misuse
/// yields NaN-free but degenerate output).
double uniform(Xoshiro256& gen, double lo, double hi) noexcept;

/// Standard normal N(0,1) via the Marsaglia polar method.
double normal(Xoshiro256& gen) noexcept;

/// Normal with the given mean and standard deviation.
double normal(Xoshiro256& gen, double mean, double stddev) noexcept;

/// Rademacher variate: +1 or -1 with equal probability.  This is the
/// "chipping" symbol distribution of the RMPI front-end.
int rademacher(Xoshiro256& gen) noexcept;

/// Bernoulli(p): true with probability p.
bool bernoulli(Xoshiro256& gen, double p) noexcept;

/// Uniform integer in [0, bound).  Requires bound > 0.  Uses Lemire's
/// nearly-divisionless rejection method, so the result is unbiased.
std::uint64_t uniform_below(Xoshiro256& gen, std::uint64_t bound) noexcept;

}  // namespace csecg::rng

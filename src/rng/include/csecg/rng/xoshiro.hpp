// xoshiro256++ pseudo-random number generator.
//
// A small, fast, high-quality PRNG with reproducible seeded streams and a
// 2^128 jump function for carving independent substreams.  Used everywhere
// in csecg where randomness must be bit-reproducible across runs (sensing
// matrices, chipping sequences, synthetic ECG records), so experiment
// outputs are deterministic for a given seed.
//
// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators", ACM TOMS 2021.
#pragma once

#include <array>
#include <cstdint>

namespace csecg::rng {

/// xoshiro256++ engine.  Satisfies the essential parts of
/// std::uniform_random_bit_generator so it can also feed <random>
/// distributions if ever needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a 64-bit seed via SplitMix64, which
  /// guarantees a well-mixed, never-all-zero state.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Returns the next 64 pseudo-random bits.
  std::uint64_t next() noexcept;

  /// std::uniform_random_bit_generator interface.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Advances the state by 2^128 steps; equivalent to calling next() 2^128
  /// times.  Used to split one seed into independent substreams.
  void jump() noexcept;

  /// Returns a new engine whose stream is this engine's stream jumped
  /// forward by 2^128, and advances *this* by the same amount, so repeated
  /// calls yield pairwise-independent substreams.
  Xoshiro256 split() noexcept;

  /// Raw state access (serialization / tests).
  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// SplitMix64 step: mixes a 64-bit counter into a 64-bit output.  Exposed
/// because seeding logic elsewhere (per-record seeds) reuses it.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace csecg::rng

// Record persistence.
//
// MIT-BIH ships as WFDB .dat/.hea/.atr triples; the synthetic surrogate
// records get an equivalent single-file binary container (".csrec") so
// experiments can pin an exact dataset to disk (and tools outside this
// repo can consume it), plus a CSV exporter for plotting.
//
// .csrec layout (little-endian):
//   magic "CSRC" | u16 version | u16 name_len | name bytes
//   f64 fs_hz | f64 adc_gain | i32 adc_offset | i32 adc_bits
//   u64 sample_count | i32 samples[...]
//   u64 beat_count | { u64 sample, u8 type } beats[...]
#pragma once

#include <string>

#include "csecg/ecg/record.hpp"

namespace csecg::ecg {

/// Writes a record to a .csrec file.  Throws std::runtime_error on I/O
/// failure.
void save_record(const EcgRecord& record, const std::string& path);

/// Reads a .csrec file.  Throws std::runtime_error on I/O failure and
/// std::invalid_argument on malformed content.
EcgRecord load_record(const std::string& path);

/// Writes "sample_index,adc_code,mv" rows (plus a header) for plotting.
/// Throws std::runtime_error on I/O failure.
void export_csv(const EcgRecord& record, const std::string& path);

}  // namespace csecg::ecg

// Beat morphologies and rhythm (RR-interval) modelling.
//
// The synthetic database stands in for MIT-BIH (see DESIGN.md §2), so it
// must cover the same qualitative beat diversity: normal sinus beats,
// premature ventricular contractions (wide bizarre QRS, no P wave,
// discordant T), atrial premature beats (early, preserved QRS), and
// bundle-branch-block-like chronically wide QRS.  Each morphology is a set
// of five Gaussian extrema (P, Q, R, S, T) in the McSharry phase model.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "csecg/rng/xoshiro.hpp"

namespace csecg::ecg {

/// Beat classes available to the synthesizer.
enum class BeatType {
  kNormal,  ///< Normal sinus beat.
  kPvc,     ///< Premature ventricular contraction.
  kApc,     ///< Atrial (supraventricular) premature beat.
  kWide,    ///< Chronically wide QRS (bundle-branch-block-like).
  kAfib,    ///< Fibrillating-atria beat: no P wave, normal QRS.
};

/// Human-readable beat-type code in the PhysioNet annotation spirit
/// ("N", "V", "A", "B", "f").
const char* beat_type_code(BeatType type);

/// Gaussian-extrema morphology in the phase domain: z'(θ) contributions at
/// angles theta_deg (degrees in (−180, 180]), amplitudes a (mV-scale), and
/// widths b (radians).
struct BeatMorphology {
  std::array<double, 5> theta_deg;  ///< P, Q, R, S, T event angles.
  std::array<double, 5> a;          ///< Event amplitudes.
  std::array<double, 5> b;          ///< Event Gaussian widths.
};

/// Canonical morphology for a beat type (McSharry defaults for kNormal).
BeatMorphology beat_morphology(BeatType type);

/// Applies a deterministic per-record morphology perturbation: amplitude
/// scale and width scale (both around 1.0) model inter-subject variation.
BeatMorphology scale_morphology(const BeatMorphology& base,
                                double amplitude_scale, double width_scale);

/// One scheduled beat: its type and the RR interval (seconds) from the
/// previous beat to this one.
struct ScheduledBeat {
  BeatType type = BeatType::kNormal;
  double rr_seconds = 0.8;
};

/// Configuration of the rhythm generator.
struct RhythmConfig {
  double mean_hr_bpm = 70.0;   ///< Mean heart rate.
  double lf_amplitude = 0.04;  ///< Mayer-wave RR modulation depth (~0.1 Hz).
  double hf_amplitude = 0.03;  ///< Respiratory sinus arrhythmia (~0.25 Hz).
  double lf_hz = 0.1;
  double hf_hz = 0.25;
  double rr_jitter = 0.01;     ///< Per-beat white RR jitter (relative).
  double pvc_probability = 0.0;
  double apc_probability = 0.0;
  bool chronically_wide = false;  ///< All non-ectopic beats are kWide.
  /// Atrial fibrillation: the "irregularly irregular" rhythm — RR drawn
  /// i.i.d. (no LF/HF structure), P waves absent on every beat.
  bool atrial_fibrillation = false;
};

/// Validates the configuration; throws std::invalid_argument on nonsense
/// (non-positive heart rate, probabilities outside [0,1], ...).
void validate(const RhythmConfig& config);

/// Generates a beat schedule covering at least `duration_seconds`:
/// quasi-periodic RR fluctuation from two spectral peaks (LF ≈ 0.1 Hz
/// Mayer waves, HF ≈ 0.25 Hz respiratory arrhythmia), white jitter, and
/// ectopic beats with premature coupling and compensatory pause.
std::vector<ScheduledBeat> generate_rhythm(const RhythmConfig& config,
                                           double duration_seconds,
                                           rng::Xoshiro256& gen);

}  // namespace csecg::ecg

// ECGSYN-style dynamical ECG synthesizer.
//
// Implements the McSharry/Clifford phase-domain model (IEEE TBME 2003):
// the cardiac cycle is a trajectory around a limit cycle parameterized by
// phase θ ∈ (−π, π], and the ECG amplitude z obeys
//
//   dz/dt = −Σᵢ aᵢ·Δθᵢ·exp(−Δθᵢ²/(2bᵢ²)) · ω  −  (z − z₀(t))
//
// with Δθᵢ the wrapped phase distance to the P/Q/R/S/T extrema of the
// current beat's morphology, ω = 2π/RR the instantaneous angular rate, and
// z₀(t) a small respiratory baseline oscillation.  Integration uses RK4 on
// an oversampled grid followed by anti-alias decimation to the target rate,
// mirroring the reference implementation's sfint/sfecg split.
#pragma once

#include <cstddef>
#include <vector>

#include "csecg/ecg/beats.hpp"
#include "csecg/linalg/vector.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::ecg {

/// A beat annotation on the synthesized sample grid.
struct BeatAnnotation {
  std::size_t sample = 0;  ///< Sample index of the R-peak phase (θ = 0).
  BeatType type = BeatType::kNormal;
};

/// Synthesizer configuration.
struct EcgSynConfig {
  double fs_hz = 360.0;       ///< Output sampling rate (MIT-BIH rate).
  int oversample = 4;         ///< Internal RK4 grid = fs·oversample.
  RhythmConfig rhythm;        ///< RR-interval / beat-type process.
  double amplitude_scale = 1.0;  ///< Inter-subject morphology scaling.
  double width_scale = 1.0;
  double respiration_mv = 0.015;  ///< z₀ amplitude (mV).
  double respiration_hz = 0.25;
};

/// Validates an EcgSynConfig; throws std::invalid_argument on nonsense.
void validate(const EcgSynConfig& config);

/// Result of a synthesis run: the clean (noise-free) signal in millivolts
/// plus per-beat annotations.
struct SynthesizedEcg {
  linalg::Vector signal_mv;
  std::vector<BeatAnnotation> beats;
  double fs_hz = 360.0;
};

/// Synthesizes `duration_seconds` of ECG.  Deterministic given the
/// generator state.
SynthesizedEcg synthesize(const EcgSynConfig& config, double duration_seconds,
                          rng::Xoshiro256& gen);

}  // namespace csecg::ecg

// QRS detection and diagnostic-quality scoring.
//
// The paper's §IV frames compression quality as preserving "the diagnostic
// quality of the compressed ECG records"; PRD is a proxy.  This module
// makes the claim directly measurable: a Pan–Tompkins-style R-peak
// detector runs on original and reconstructed signals, and the match
// statistics (sensitivity / PPV / F1 against the synthesizer's ground-
// truth annotations) quantify what the compression did to the part of the
// signal clinicians act on.
#pragma once

#include <cstddef>
#include <vector>

#include "csecg/ecg/ecgsyn.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::ecg {

/// Detector tuning knobs (defaults follow Pan–Tompkins 1985, scaled to
/// arbitrary sampling rates).
struct QrsDetectorConfig {
  double fs_hz = 360.0;
  double bandpass_low_hz = 5.0;    ///< QRS energy band lower edge.
  double bandpass_high_hz = 15.0;  ///< Upper edge.
  double integration_window_s = 0.15;
  double refractory_s = 0.2;       ///< Physiological minimum RR.
  double threshold_fraction = 0.5;  ///< Of the running peak estimate.
};

/// Validates a QrsDetectorConfig; throws std::invalid_argument on nonsense.
void validate(const QrsDetectorConfig& config);

/// Detects R peaks in a raw-unit (or mV) signal; returns ascending sample
/// indices.  Works on any DC offset (the bandpass removes it).
std::vector<std::size_t> detect_qrs(const linalg::Vector& signal,
                                    const QrsDetectorConfig& config = {});

/// Beat-matching outcome between a detection list and a reference list.
struct BeatMatchStats {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double sensitivity = 0.0;  ///< TP / (TP + FN).
  double ppv = 0.0;          ///< TP / (TP + FP).
  double f1 = 0.0;
  double mean_jitter_samples = 0.0;  ///< Mean |offset| of matched pairs.
};

/// Greedily matches detections to reference peaks within ±tolerance
/// samples (each reference matched at most once, nearest-first).
BeatMatchStats match_beats(const std::vector<std::size_t>& detected,
                           const std::vector<std::size_t>& reference,
                           std::size_t tolerance_samples);

/// Extracts the reference R-peak indices falling inside
/// [start, start+length) from record annotations, rebased to the window.
std::vector<std::size_t> annotations_in_window(
    const std::vector<BeatAnnotation>& beats, std::size_t start,
    std::size_t length);

}  // namespace csecg::ecg

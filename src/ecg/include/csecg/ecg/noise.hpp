// Ambulatory ECG noise models.
//
// MIT-BIH recordings are ambulatory, so the synthetic substitute layers
// the three canonical contaminations of the NST (noise stress test)
// methodology: baseline wander, muscle (EMG) noise, and powerline
// interference.  Amplitudes are in millivolts on the same scale as the
// clean synthesizer output.
#pragma once

#include "csecg/linalg/vector.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::ecg {

/// Noise mix configuration (all RMS-ish amplitudes in mV; 0 disables).
struct NoiseConfig {
  double baseline_wander_mv = 0.05;  ///< Slow respiratory/motion drift.
  double baseline_wander_hz = 0.33;  ///< Dominant wander frequency.
  double emg_mv = 0.02;              ///< Broadband muscle noise (white).
  double powerline_mv = 0.0;         ///< Mains interference amplitude.
  double powerline_hz = 50.0;        ///< 50 or 60 Hz.
};

/// Validates a NoiseConfig; throws std::invalid_argument on negatives.
void validate(const NoiseConfig& config);

/// Generates n samples of baseline wander at fs_hz: a small set of
/// random-phase sinusoids clustered around `wander_hz` whose RMS is
/// `amplitude_mv`.
linalg::Vector baseline_wander(std::size_t n, double fs_hz, double wander_hz,
                               double amplitude_mv, rng::Xoshiro256& gen);

/// Generates n samples of white Gaussian EMG noise with the given RMS.
linalg::Vector emg_noise(std::size_t n, double amplitude_mv,
                         rng::Xoshiro256& gen);

/// Generates n samples of mains interference (sinusoid with slow random
/// amplitude modulation, as coupled interference drifts in practice).
linalg::Vector powerline(std::size_t n, double fs_hz, double mains_hz,
                         double amplitude_mv, rng::Xoshiro256& gen);

/// Adds the configured noise mix to `signal_mv` in place.
void add_noise(linalg::Vector& signal_mv, double fs_hz,
               const NoiseConfig& config, rng::Xoshiro256& gen);

}  // namespace csecg::ecg

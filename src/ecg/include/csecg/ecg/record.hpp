// Digitized ECG records and the synthetic MIT-BIH-like database.
//
// The MIT-BIH Arrhythmia Database the paper evaluates on (48 two-channel
// half-hour ambulatory records, 360 Hz, 11-bit over 10 mV, baseline at ADC
// code 1024, nominal gain 200 ADU/mV) is not redistributable here, so
// SyntheticDatabase generates 48 single-lead surrogate records with the
// same digital format and a comparable spread of heart rates, morphologies,
// ectopy burden, and noise (see DESIGN.md §2).  Record names reuse the
// MIT-BIH numbering ("100"…"234") so experiment tables read like the
// paper's, and the per-record generation seed derives only from the global
// database seed and the record index — records are bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "csecg/ecg/ecgsyn.hpp"
#include "csecg/ecg/noise.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::ecg {

/// Digitization / generation parameters of a record.
struct RecordConfig {
  double duration_seconds = 60.0;
  double fs_hz = 360.0;
  int adc_bits = 11;          ///< MIT-BIH resolution.
  double adc_gain = 200.0;    ///< ADC units per millivolt.
  int adc_offset = 1024;      ///< ADC code of 0 mV (mid-range).
};

/// Validates a RecordConfig; throws std::invalid_argument on nonsense.
void validate(const RecordConfig& config);

/// A digitized single-lead ECG record in MIT-BIH-style raw ADC units.
struct EcgRecord {
  std::string name;                      ///< e.g. "100".
  RecordConfig config;
  std::vector<std::int32_t> samples;     ///< Raw ADC codes.
  std::vector<BeatAnnotation> beats;     ///< R-peak annotations.

  std::size_t size() const noexcept { return samples.size(); }

  /// Converts an ADC code back to millivolts.
  double to_mv(std::int32_t adu) const;

  /// Copies samples [start, start+length) as doubles (raw ADC units, the
  /// representation the paper computes PRD on).  Throws
  /// std::invalid_argument if the range exceeds the record.
  linalg::Vector window(std::size_t start, std::size_t length) const;
};

/// Uniformly quantizes a millivolt signal to ADC codes with clipping at
/// the rails [0, 2^bits − 1].
std::vector<std::int32_t> digitize(const linalg::Vector& signal_mv,
                                   double adc_gain, int adc_offset,
                                   int adc_bits);

/// Per-record generation profile (heart rate, morphology, ectopy, noise).
struct RecordProfile {
  std::string name;
  RhythmConfig rhythm;
  NoiseConfig noise;
  double amplitude_scale = 1.0;
  double width_scale = 1.0;
};

/// The 48 surrogate profiles standing in for the MIT-BIH records, in
/// database order.  Deterministic (no RNG involved).
const std::vector<RecordProfile>& mitbih_surrogate_profiles();

/// Generates one record from a profile.
EcgRecord generate_record(const RecordProfile& profile,
                          const RecordConfig& config, std::uint64_t seed);

/// Lazily generated, cached database of the 48 surrogate records.
class SyntheticDatabase {
 public:
  explicit SyntheticDatabase(RecordConfig config = {},
                             std::uint64_t seed = 2015);

  /// Number of records (always 48, matching MIT-BIH).
  std::size_t size() const noexcept;

  /// Record by index; generated on first access and cached.  Thread-safe
  /// (the parallel experiment runner pulls records from pool workers).
  /// Throws std::invalid_argument if index ≥ size().
  const EcgRecord& record(std::size_t index) const;

  /// Record name by index (no generation cost).
  const std::string& name(std::size_t index) const;

  const RecordConfig& config() const noexcept { return config_; }

 private:
  RecordConfig config_;
  std::uint64_t seed_;
  mutable std::mutex cache_mutex_;
  mutable std::vector<std::unique_ptr<EcgRecord>> cache_;
};

/// Extracts `count` non-overlapping analysis windows of `length` samples,
/// evenly spaced through the record (skipping the first second of
/// transient).  Throws std::invalid_argument if the record is too short
/// for the request.
std::vector<linalg::Vector> extract_windows(const EcgRecord& record,
                                            std::size_t length,
                                            std::size_t count);

}  // namespace csecg::ecg

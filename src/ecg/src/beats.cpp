#include "csecg/ecg/beats.hpp"

#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/rng/distributions.hpp"

namespace csecg::ecg {

const char* beat_type_code(BeatType type) {
  switch (type) {
    case BeatType::kNormal:
      return "N";
    case BeatType::kPvc:
      return "V";
    case BeatType::kApc:
      return "A";
    case BeatType::kWide:
      return "B";
    case BeatType::kAfib:
      return "f";
  }
  return "?";
}

BeatMorphology beat_morphology(BeatType type) {
  // Base angles/amplitudes/widths from McSharry et al., IEEE TBME 2003,
  // Table 1; ectopic variants follow standard electrophysiology: PVC has
  // no P wave, a wide high-amplitude QRS and a discordant (inverted) T.
  switch (type) {
    case BeatType::kNormal:
      return BeatMorphology{{-70.0, -15.0, 0.0, 15.0, 100.0},
                            {1.2, -5.0, 30.0, -7.5, 0.75},
                            {0.25, 0.1, 0.1, 0.1, 0.4}};
    case BeatType::kPvc:
      return BeatMorphology{{-70.0, -20.0, 0.0, 25.0, 110.0},
                            {0.0, -8.0, 24.0, -10.0, -1.1},
                            {0.25, 0.22, 0.26, 0.24, 0.45}};
    case BeatType::kApc:
      // Early beat with an altered (often biphasic-looking) P wave.
      return BeatMorphology{{-75.0, -15.0, 0.0, 15.0, 100.0},
                            {0.7, -5.0, 28.0, -7.5, 0.7},
                            {0.18, 0.1, 0.1, 0.1, 0.4}};
    case BeatType::kWide:
      return BeatMorphology{{-70.0, -18.0, 0.0, 20.0, 105.0},
                            {1.0, -6.0, 26.0, -9.0, -0.6},
                            {0.25, 0.16, 0.18, 0.17, 0.42}};
    case BeatType::kAfib:
      // Conducted beat during atrial fibrillation: normal ventricular
      // complex, absent P wave (fibrillatory baseline is left to the
      // noise model).
      return BeatMorphology{{-70.0, -15.0, 0.0, 15.0, 100.0},
                            {0.0, -5.0, 30.0, -7.5, 0.75},
                            {0.25, 0.1, 0.1, 0.1, 0.4}};
  }
  throw std::invalid_argument("unknown BeatType");
}

BeatMorphology scale_morphology(const BeatMorphology& base,
                                double amplitude_scale, double width_scale) {
  CSECG_CHECK(amplitude_scale > 0.0 && width_scale > 0.0,
              "scale_morphology: scales must be positive, got "
                  << amplitude_scale << ", " << width_scale);
  BeatMorphology out = base;
  for (double& a : out.a) a *= amplitude_scale;
  for (double& b : out.b) b *= width_scale;
  return out;
}

void validate(const RhythmConfig& config) {
  CSECG_CHECK(config.mean_hr_bpm > 20.0 && config.mean_hr_bpm < 250.0,
              "RhythmConfig: mean_hr_bpm out of physiological range: "
                  << config.mean_hr_bpm);
  CSECG_CHECK(config.pvc_probability >= 0.0 && config.pvc_probability <= 1.0,
              "RhythmConfig: pvc_probability out of [0,1]");
  CSECG_CHECK(config.apc_probability >= 0.0 && config.apc_probability <= 1.0,
              "RhythmConfig: apc_probability out of [0,1]");
  CSECG_CHECK(config.pvc_probability + config.apc_probability <= 1.0,
              "RhythmConfig: ectopy probabilities exceed 1");
  CSECG_CHECK(config.lf_amplitude >= 0.0 && config.hf_amplitude >= 0.0 &&
                  config.rr_jitter >= 0.0,
              "RhythmConfig: modulation depths must be non-negative");
  CSECG_CHECK(config.lf_amplitude + config.hf_amplitude +
                      3.0 * config.rr_jitter <
                  0.9,
              "RhythmConfig: RR modulation too deep; RR could go negative");
}

std::vector<ScheduledBeat> generate_rhythm(const RhythmConfig& config,
                                           double duration_seconds,
                                           rng::Xoshiro256& gen) {
  validate(config);
  CSECG_CHECK(duration_seconds > 0.0,
              "generate_rhythm: duration must be positive");
  const double rr_mean = 60.0 / config.mean_hr_bpm;
  const double phase_lf = rng::uniform(gen, 0.0, 2.0 * 3.14159265358979);
  const double phase_hf = rng::uniform(gen, 0.0, 2.0 * 3.14159265358979);

  std::vector<ScheduledBeat> beats;
  double t = 0.0;
  bool pending_compensatory = false;
  while (t < duration_seconds) {
    ScheduledBeat beat;
    if (config.atrial_fibrillation) {
      // Irregularly irregular: i.i.d. RR with a wide spread, no memory,
      // no respiratory structure; ventricular ectopy still possible.
      beat.type = rng::uniform01(gen) < config.pvc_probability
                      ? BeatType::kPvc
                      : BeatType::kAfib;
      beat.rr_seconds =
          std::max(0.25, rr_mean * rng::uniform(gen, 0.55, 1.55));
      beats.push_back(beat);
      t += beat.rr_seconds;
      continue;
    }
    // Two-peak RR spectrum (Mayer + respiratory), evaluated at beat time.
    const double modulation =
        config.lf_amplitude *
            std::sin(2.0 * 3.14159265358979 * config.lf_hz * t + phase_lf) +
        config.hf_amplitude *
            std::sin(2.0 * 3.14159265358979 * config.hf_hz * t + phase_hf) +
        config.rr_jitter * rng::normal(gen);
    double rr = rr_mean * (1.0 + modulation);

    const double u = rng::uniform01(gen);
    if (pending_compensatory) {
      // Full compensatory pause after a PVC.
      beat.type = config.chronically_wide ? BeatType::kWide
                                          : BeatType::kNormal;
      rr *= 1.45;
      pending_compensatory = false;
    } else if (u < config.pvc_probability) {
      beat.type = BeatType::kPvc;
      rr *= 0.62;  // Premature coupling interval.
      pending_compensatory = true;
    } else if (u < config.pvc_probability + config.apc_probability) {
      beat.type = BeatType::kApc;
      rr *= 0.78;  // Early, with a less-than-compensatory pause handled
                   // by the natural rhythm resuming next beat.
    } else {
      beat.type = config.chronically_wide ? BeatType::kWide
                                          : BeatType::kNormal;
    }
    beat.rr_seconds = std::max(rr, 0.2);  // Physiological floor (300 bpm).
    beats.push_back(beat);
    t += beat.rr_seconds;
  }
  return beats;
}

}  // namespace csecg::ecg

#include "csecg/ecg/ecgsyn.hpp"

#include <cmath>
#include <numbers>

#include "csecg/common/check.hpp"
#include "csecg/dsp/fir.hpp"

namespace csecg::ecg {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Each phase-domain Gaussian event integrates to a z-excursion of a·b², so
// the canonical morphology's R peak is a_R·b_R² = 0.3.  The reference
// ECGSYN implementation rescales its output to a physiological range; we
// apply the equivalent fixed gain so a normal R wave lands near 1.1 mV.
constexpr double kOutputGainMv = 3.6;

/// Wraps an angle to (−π, π].
double wrap_phase(double theta) {
  theta = std::fmod(theta + kPi, kTwoPi);
  if (theta < 0.0) theta += kTwoPi;
  return theta - kPi;
}

/// dz/dt of the McSharry model for the given beat morphology.
double z_derivative(double theta, double z, double z0, double omega,
                    const BeatMorphology& morph) {
  double acc = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    const double theta_i = morph.theta_deg[i] * kPi / 180.0;
    const double dtheta = wrap_phase(theta - theta_i);
    const double bi = morph.b[i];
    acc -= morph.a[i] * dtheta * std::exp(-dtheta * dtheta / (2.0 * bi * bi));
  }
  return acc * omega - (z - z0);
}

}  // namespace

void validate(const EcgSynConfig& config) {
  CSECG_CHECK(config.fs_hz > 0.0, "EcgSynConfig: fs_hz must be positive");
  CSECG_CHECK(config.oversample >= 1 && config.oversample <= 64,
              "EcgSynConfig: oversample out of range: " << config.oversample);
  CSECG_CHECK(config.amplitude_scale > 0.0 && config.width_scale > 0.0,
              "EcgSynConfig: scales must be positive");
  CSECG_CHECK(config.respiration_mv >= 0.0 && config.respiration_hz >= 0.0,
              "EcgSynConfig: respiration parameters must be non-negative");
  validate(config.rhythm);
}

SynthesizedEcg synthesize(const EcgSynConfig& config, double duration_seconds,
                          rng::Xoshiro256& gen) {
  validate(config);
  CSECG_CHECK(duration_seconds > 0.0, "synthesize: duration must be positive");

  const auto schedule = generate_rhythm(config.rhythm, duration_seconds, gen);
  const double fs_int = config.fs_hz * config.oversample;
  const double dt = 1.0 / fs_int;
  const auto total_fine =
      static_cast<std::size_t>(std::ceil(duration_seconds * fs_int));

  // Pre-scale each distinct morphology once.
  auto morph_for = [&config](BeatType type) {
    return scale_morphology(beat_morphology(type), config.amplitude_scale,
                            config.width_scale);
  };
  const BeatMorphology morph_normal = morph_for(BeatType::kNormal);
  const BeatMorphology morph_pvc = morph_for(BeatType::kPvc);
  const BeatMorphology morph_apc = morph_for(BeatType::kApc);
  const BeatMorphology morph_wide = morph_for(BeatType::kWide);
  const BeatMorphology morph_afib = morph_for(BeatType::kAfib);
  auto select = [&](BeatType type) -> const BeatMorphology& {
    switch (type) {
      case BeatType::kPvc:
        return morph_pvc;
      case BeatType::kApc:
        return morph_apc;
      case BeatType::kWide:
        return morph_wide;
      case BeatType::kAfib:
        return morph_afib;
      case BeatType::kNormal:
        break;
    }
    return morph_normal;
  };

  std::vector<double> fine(total_fine);
  std::vector<BeatAnnotation> fine_beats;

  // Start mid-diastole so the window does not open on a QRS complex.
  double theta = -kPi;
  double z = 0.0;
  std::size_t beat_index = 0;
  double omega = kTwoPi / schedule.front().rr_seconds;
  const BeatMorphology* morph = &select(schedule.front().type);
  bool annotated_this_beat = false;

  for (std::size_t k = 0; k < total_fine; ++k) {
    const double t = static_cast<double>(k) * dt;
    const double z0 = config.respiration_mv *
                      std::sin(kTwoPi * config.respiration_hz * t);
    // RK4 on z; θ advances linearly within a beat so intermediate phases
    // are exact.
    const double th1 = theta;
    const double th2 = wrap_phase(theta + 0.5 * dt * omega);
    const double th3 = th2;
    const double th4 = wrap_phase(theta + dt * omega);
    const double k1 = z_derivative(th1, z, z0, omega, *morph);
    const double k2 = z_derivative(th2, z + 0.5 * dt * k1, z0, omega, *morph);
    const double k3 = z_derivative(th3, z + 0.5 * dt * k2, z0, omega, *morph);
    const double k4 = z_derivative(th4, z + dt * k3, z0, omega, *morph);
    z += dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    fine[k] = z;

    // Annotate the R peak when the phase crosses zero.
    const double next_theta_unwrapped = theta + dt * omega;
    if (!annotated_this_beat && theta < 0.0 && next_theta_unwrapped >= 0.0) {
      fine_beats.push_back({k, schedule[beat_index].type});
      annotated_this_beat = true;
    }

    // Beat boundary: phase wraps past +π.
    if (next_theta_unwrapped >= kPi) {
      theta = next_theta_unwrapped - kTwoPi;
      if (beat_index + 1 < schedule.size()) {
        ++beat_index;
        omega = kTwoPi / schedule[beat_index].rr_seconds;
        morph = &select(schedule[beat_index].type);
      }
      annotated_this_beat = false;
    } else {
      theta = next_theta_unwrapped;
    }
  }

  for (double& v : fine) v *= kOutputGainMv;

  // Anti-alias and decimate to the output rate.
  SynthesizedEcg out;
  out.fs_hz = config.fs_hz;
  if (config.oversample == 1) {
    out.signal_mv = linalg::Vector(std::move(fine));
  } else {
    const double cutoff = 0.45 / static_cast<double>(config.oversample);
    const auto lowpass = dsp::design_lowpass(cutoff, 63);
    const linalg::Vector filtered =
        dsp::filter_same(linalg::Vector(std::move(fine)), lowpass);
    out.signal_mv = dsp::decimate(
        filtered, static_cast<std::size_t>(config.oversample));
  }
  out.beats.reserve(fine_beats.size());
  for (const BeatAnnotation& ann : fine_beats) {
    BeatAnnotation coarse = ann;
    coarse.sample /= static_cast<std::size_t>(config.oversample);
    if (coarse.sample < out.signal_mv.size()) out.beats.push_back(coarse);
  }
  return out;
}

}  // namespace csecg::ecg

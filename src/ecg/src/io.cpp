#include "csecg/ecg/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "csecg/common/check.hpp"

namespace csecg::ecg {
namespace {

constexpr char kMagic[4] = {'C', 'S', 'R', 'C'};
constexpr std::uint16_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::invalid_argument("csrec: truncated file");
  return value;
}

BeatType beat_type_from_byte(std::uint8_t byte) {
  switch (byte) {
    case 0:
      return BeatType::kNormal;
    case 1:
      return BeatType::kPvc;
    case 2:
      return BeatType::kApc;
    case 3:
      return BeatType::kWide;
    case 4:
      return BeatType::kAfib;
    default:
      throw std::invalid_argument("csrec: unknown beat type " +
                                  std::to_string(byte));
  }
}

std::uint8_t beat_type_to_byte(BeatType type) {
  switch (type) {
    case BeatType::kNormal:
      return 0;
    case BeatType::kPvc:
      return 1;
    case BeatType::kApc:
      return 2;
    case BeatType::kWide:
      return 3;
    case BeatType::kAfib:
      return 4;
  }
  return 0;
}

}  // namespace

void save_record(const EcgRecord& record, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("csrec: cannot open " + path);
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  const auto name_len = static_cast<std::uint16_t>(record.name.size());
  write_pod(out, name_len);
  out.write(record.name.data(), name_len);
  write_pod(out, record.config.fs_hz);
  write_pod(out, record.config.adc_gain);
  write_pod(out, static_cast<std::int32_t>(record.config.adc_offset));
  write_pod(out, static_cast<std::int32_t>(record.config.adc_bits));
  write_pod(out, static_cast<std::uint64_t>(record.samples.size()));
  for (std::int32_t s : record.samples) write_pod(out, s);
  write_pod(out, static_cast<std::uint64_t>(record.beats.size()));
  for (const BeatAnnotation& beat : record.beats) {
    write_pod(out, static_cast<std::uint64_t>(beat.sample));
    write_pod(out, beat_type_to_byte(beat.type));
  }
  if (!out) throw std::runtime_error("csrec: write failed for " + path);
}

EcgRecord load_record(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csrec: cannot open " + path);
  char magic[4] = {};
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::invalid_argument("csrec: bad magic in " + path);
  }
  const auto version = read_pod<std::uint16_t>(in);
  CSECG_CHECK(version == kVersion,
              "csrec: unsupported version " << version);
  const auto name_len = read_pod<std::uint16_t>(in);
  EcgRecord record;
  record.name.resize(name_len);
  in.read(record.name.data(), name_len);
  if (!in) throw std::invalid_argument("csrec: truncated name");
  record.config.fs_hz = read_pod<double>(in);
  record.config.adc_gain = read_pod<double>(in);
  record.config.adc_offset = read_pod<std::int32_t>(in);
  record.config.adc_bits = read_pod<std::int32_t>(in);
  const auto sample_count = read_pod<std::uint64_t>(in);
  record.samples.resize(sample_count);
  for (auto& s : record.samples) s = read_pod<std::int32_t>(in);
  const auto beat_count = read_pod<std::uint64_t>(in);
  record.beats.resize(beat_count);
  for (auto& beat : record.beats) {
    beat.sample = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    beat.type = beat_type_from_byte(read_pod<std::uint8_t>(in));
  }
  record.config.duration_seconds =
      static_cast<double>(sample_count) / record.config.fs_hz;
  validate(record.config);
  return record;
}

void export_csv(const EcgRecord& record, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("csv: cannot open " + path);
  out << "sample,adc_code,mv\n";
  for (std::size_t i = 0; i < record.samples.size(); ++i) {
    out << i << ',' << record.samples[i] << ','
        << record.to_mv(record.samples[i]) << '\n';
  }
  if (!out) throw std::runtime_error("csv: write failed for " + path);
}

}  // namespace csecg::ecg

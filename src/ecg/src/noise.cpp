#include "csecg/ecg/noise.hpp"

#include <cmath>
#include <numbers>

#include "csecg/common/check.hpp"
#include "csecg/rng/distributions.hpp"

namespace csecg::ecg {

void validate(const NoiseConfig& config) {
  CSECG_CHECK(config.baseline_wander_mv >= 0.0 && config.emg_mv >= 0.0 &&
                  config.powerline_mv >= 0.0,
              "NoiseConfig: amplitudes must be non-negative");
  CSECG_CHECK(config.baseline_wander_hz > 0.0 && config.powerline_hz > 0.0,
              "NoiseConfig: frequencies must be positive");
}

linalg::Vector baseline_wander(std::size_t n, double fs_hz, double wander_hz,
                               double amplitude_mv, rng::Xoshiro256& gen) {
  CSECG_CHECK(fs_hz > 0.0 && wander_hz > 0.0,
              "baseline_wander: rates must be positive");
  CSECG_CHECK(amplitude_mv >= 0.0, "baseline_wander: negative amplitude");
  linalg::Vector out(n);
  if (amplitude_mv == 0.0 || n == 0) return out;
  constexpr int kComponents = 4;
  const double two_pi = 2.0 * std::numbers::pi;
  // Components at {0.4, 0.7, 1.0, 1.3}·wander_hz with random phases; the
  // per-component amplitude makes the total RMS equal amplitude_mv.
  const double comp_amp =
      amplitude_mv * std::numbers::sqrt2 / std::sqrt(double{kComponents});
  for (int c = 0; c < kComponents; ++c) {
    const double f = wander_hz * (0.4 + 0.3 * c);
    const double phase = rng::uniform(gen, 0.0, two_pi);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / fs_hz;
      out[i] += comp_amp * std::sin(two_pi * f * t + phase);
    }
  }
  return out;
}

linalg::Vector emg_noise(std::size_t n, double amplitude_mv,
                         rng::Xoshiro256& gen) {
  CSECG_CHECK(amplitude_mv >= 0.0, "emg_noise: negative amplitude");
  linalg::Vector out(n);
  if (amplitude_mv == 0.0) return out;
  for (auto& v : out) v = rng::normal(gen, 0.0, amplitude_mv);
  return out;
}

linalg::Vector powerline(std::size_t n, double fs_hz, double mains_hz,
                         double amplitude_mv, rng::Xoshiro256& gen) {
  CSECG_CHECK(fs_hz > 0.0 && mains_hz > 0.0,
              "powerline: rates must be positive");
  CSECG_CHECK(amplitude_mv >= 0.0, "powerline: negative amplitude");
  linalg::Vector out(n);
  if (amplitude_mv == 0.0 || n == 0) return out;
  const double two_pi = 2.0 * std::numbers::pi;
  const double phase = rng::uniform(gen, 0.0, two_pi);
  const double am_phase = rng::uniform(gen, 0.0, two_pi);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs_hz;
    const double am = 1.0 + 0.2 * std::sin(two_pi * 0.1 * t + am_phase);
    out[i] = amplitude_mv * am * std::sin(two_pi * mains_hz * t + phase);
  }
  return out;
}

void add_noise(linalg::Vector& signal_mv, double fs_hz,
               const NoiseConfig& config, rng::Xoshiro256& gen) {
  validate(config);
  const std::size_t n = signal_mv.size();
  signal_mv += baseline_wander(n, fs_hz, config.baseline_wander_hz,
                               config.baseline_wander_mv, gen);
  signal_mv += emg_noise(n, config.emg_mv, gen);
  signal_mv +=
      powerline(n, fs_hz, config.powerline_hz, config.powerline_mv, gen);
}

}  // namespace csecg::ecg

#include "csecg/ecg/record.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/rng/distributions.hpp"

namespace csecg::ecg {
namespace {

// The 48 MIT-BIH record names, in database order.
const char* const kRecordNames[] = {
    "100", "101", "102", "103", "104", "105", "106", "107", "108", "109",
    "111", "112", "113", "114", "115", "116", "117", "118", "119", "121",
    "122", "123", "124", "200", "201", "202", "203", "205", "207", "208",
    "209", "210", "212", "213", "214", "215", "217", "219", "220", "221",
    "222", "223", "228", "230", "231", "232", "233", "234"};
constexpr std::size_t kRecordCount = 48;

// Records with a heavy PVC burden in the real database.
bool heavy_ectopy(const std::string& name) {
  for (const char* id : {"106", "119", "200", "201", "203", "208", "210",
                         "215", "221", "228", "233"}) {
    if (name == id) return true;
  }
  return false;
}

// Records with chronically wide QRS (bundle-branch block) in the real
// database.
bool wide_qrs(const std::string& name) {
  for (const char* id : {"109", "111", "207", "214"}) {
    if (name == id) return true;
  }
  return false;
}

// Noisier ambulatory records.
bool noisy(const std::string& name) {
  for (const char* id : {"104", "105", "108", "203", "222", "228"}) {
    if (name == id) return true;
  }
  return false;
}

// Records in atrial fibrillation/flutter for long stretches in the real
// database.
bool afib(const std::string& name) {
  for (const char* id : {"202", "219", "222"}) {
    if (name == id) return true;
  }
  return false;
}

}  // namespace

void validate(const RecordConfig& config) {
  CSECG_CHECK(config.duration_seconds > 0.0,
              "RecordConfig: duration must be positive");
  CSECG_CHECK(config.fs_hz > 0.0, "RecordConfig: fs must be positive");
  CSECG_CHECK(config.adc_bits >= 2 && config.adc_bits <= 24,
              "RecordConfig: adc_bits out of range: " << config.adc_bits);
  CSECG_CHECK(config.adc_gain > 0.0, "RecordConfig: gain must be positive");
  CSECG_CHECK(config.adc_offset >= 0 &&
                  config.adc_offset < (1 << config.adc_bits),
              "RecordConfig: offset outside ADC range");
}

double EcgRecord::to_mv(std::int32_t adu) const {
  return (static_cast<double>(adu) - config.adc_offset) / config.adc_gain;
}

linalg::Vector EcgRecord::window(std::size_t start, std::size_t length) const {
  CSECG_CHECK(start + length <= samples.size(),
              "EcgRecord::window out of range: [" << start << ", "
                                                  << start + length << ") of "
                                                  << samples.size());
  linalg::Vector out(length);
  for (std::size_t i = 0; i < length; ++i) {
    out[i] = static_cast<double>(samples[start + i]);
  }
  return out;
}

std::vector<std::int32_t> digitize(const linalg::Vector& signal_mv,
                                   double adc_gain, int adc_offset,
                                   int adc_bits) {
  CSECG_CHECK(adc_gain > 0.0, "digitize: gain must be positive");
  CSECG_CHECK(adc_bits >= 2 && adc_bits <= 24,
              "digitize: adc_bits out of range: " << adc_bits);
  const std::int32_t max_code = (1 << adc_bits) - 1;
  std::vector<std::int32_t> out(signal_mv.size());
  for (std::size_t i = 0; i < signal_mv.size(); ++i) {
    const double code =
        std::round(signal_mv[i] * adc_gain + static_cast<double>(adc_offset));
    out[i] = static_cast<std::int32_t>(
        std::clamp(code, 0.0, static_cast<double>(max_code)));
  }
  return out;
}

const std::vector<RecordProfile>& mitbih_surrogate_profiles() {
  static const std::vector<RecordProfile> profiles = [] {
    std::vector<RecordProfile> out;
    out.reserve(kRecordCount);
    for (std::size_t i = 0; i < kRecordCount; ++i) {
      RecordProfile p;
      p.name = kRecordNames[i];
      // Deterministic per-record parameter spread, index-derived so the
      // database is stable across versions.
      const double u = static_cast<double>(i) / (kRecordCount - 1);
      auto spread = [i](std::size_t stride) {
        return static_cast<double>((i * stride) % kRecordCount) /
               static_cast<double>(kRecordCount);
      };
      p.rhythm.mean_hr_bpm = 55.0 + 40.0 * spread(7);
      p.rhythm.lf_amplitude = 0.03 + 0.03 * u;
      p.rhythm.hf_amplitude = 0.02 + 0.03 * (1.0 - u);
      p.rhythm.rr_jitter = 0.008 + 0.012 * spread(5);
      p.amplitude_scale = 0.75 + 0.5 * spread(11);
      p.width_scale = 0.9 + 0.2 * spread(3);
      if (heavy_ectopy(p.name)) {
        p.rhythm.pvc_probability = 0.08 + 0.10 * u;
        p.rhythm.apc_probability = 0.02;
      } else {
        p.rhythm.pvc_probability = 0.005;
        p.rhythm.apc_probability = 0.01;
      }
      p.rhythm.chronically_wide = wide_qrs(p.name);
      p.rhythm.atrial_fibrillation = afib(p.name);
      p.noise.baseline_wander_mv = noisy(p.name) ? 0.12 : 0.04;
      p.noise.emg_mv = noisy(p.name) ? 0.035 : 0.012;
      p.noise.powerline_mv = (i % 7 == 0) ? 0.01 : 0.0;
      p.noise.powerline_hz = 60.0;  // US recordings.
      out.push_back(std::move(p));
    }
    return out;
  }();
  return profiles;
}

EcgRecord generate_record(const RecordProfile& profile,
                          const RecordConfig& config, std::uint64_t seed) {
  validate(config);
  rng::Xoshiro256 gen(seed);

  EcgSynConfig syn;
  syn.fs_hz = config.fs_hz;
  syn.rhythm = profile.rhythm;
  syn.amplitude_scale = profile.amplitude_scale;
  syn.width_scale = profile.width_scale;

  SynthesizedEcg clean = synthesize(syn, config.duration_seconds, gen);
  add_noise(clean.signal_mv, config.fs_hz, profile.noise, gen);

  EcgRecord record;
  record.name = profile.name;
  record.config = config;
  record.samples = digitize(clean.signal_mv, config.adc_gain,
                            config.adc_offset, config.adc_bits);
  record.beats = std::move(clean.beats);
  return record;
}

SyntheticDatabase::SyntheticDatabase(RecordConfig config, std::uint64_t seed)
    : config_(config), seed_(seed), cache_(kRecordCount) {
  validate(config_);
}

std::size_t SyntheticDatabase::size() const noexcept { return kRecordCount; }

const EcgRecord& SyntheticDatabase::record(std::size_t index) const {
  CSECG_CHECK(index < kRecordCount,
              "SyntheticDatabase: index " << index << " out of range");
  // One lock covers check + fill; generation is deterministic per index,
  // so contention only costs the losers a wait, never a different record.
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  if (!cache_[index]) {
    const RecordProfile& profile = mitbih_surrogate_profiles()[index];
    // Per-record seed: SplitMix over (database seed, index).
    std::uint64_t s = seed_ + 0x9E3779B97F4A7C15ULL * (index + 1);
    const std::uint64_t record_seed = rng::splitmix64(s);
    cache_[index] = std::make_unique<EcgRecord>(
        generate_record(profile, config_, record_seed));
  }
  return *cache_[index];
}

const std::string& SyntheticDatabase::name(std::size_t index) const {
  CSECG_CHECK(index < kRecordCount,
              "SyntheticDatabase: index " << index << " out of range");
  return mitbih_surrogate_profiles()[index].name;
}

std::vector<linalg::Vector> extract_windows(const EcgRecord& record,
                                            std::size_t length,
                                            std::size_t count) {
  CSECG_CHECK(length > 0 && count > 0,
              "extract_windows: length and count must be positive");
  const auto skip = static_cast<std::size_t>(record.config.fs_hz);
  CSECG_CHECK(record.size() >= skip + length * count,
              "extract_windows: record too short ("
                  << record.size() << " samples) for " << count
                  << " windows of " << length);
  const std::size_t usable = record.size() - skip;
  const std::size_t stride = usable / count;
  std::vector<linalg::Vector> windows;
  windows.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    windows.push_back(record.window(skip + w * stride, length));
  }
  return windows;
}

}  // namespace csecg::ecg

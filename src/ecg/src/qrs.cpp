#include "csecg/ecg/qrs.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/dsp/fir.hpp"

namespace csecg::ecg {

void validate(const QrsDetectorConfig& config) {
  CSECG_CHECK(config.fs_hz > 0.0, "QrsDetectorConfig: fs must be positive");
  CSECG_CHECK(config.bandpass_low_hz > 0.0 &&
                  config.bandpass_high_hz > config.bandpass_low_hz,
              "QrsDetectorConfig: need 0 < low < high band edges");
  CSECG_CHECK(config.bandpass_high_hz < config.fs_hz / 2.0,
              "QrsDetectorConfig: band exceeds Nyquist");
  CSECG_CHECK(config.integration_window_s > 0.0,
              "QrsDetectorConfig: integration window must be positive");
  CSECG_CHECK(config.refractory_s > 0.0,
              "QrsDetectorConfig: refractory must be positive");
  CSECG_CHECK(config.threshold_fraction > 0.0 &&
                  config.threshold_fraction < 1.0,
              "QrsDetectorConfig: threshold_fraction in (0, 1)");
}

std::vector<std::size_t> detect_qrs(const linalg::Vector& signal,
                                    const QrsDetectorConfig& config) {
  validate(config);
  const std::size_t n = signal.size();
  if (n < 8) return {};

  // Remove the DC working point first: filter edge transients scale with
  // the absolute level, and ADC-unit signals sit near mid-scale.
  linalg::Vector centered = signal;
  const double dc = linalg::mean(signal);
  for (auto& v : centered) v -= dc;

  // Band-pass 5–15 Hz as the difference of two lowpasses.
  const std::size_t taps = 51;
  const auto low_cut = dsp::design_lowpass(
      config.bandpass_high_hz / config.fs_hz, taps);
  const auto high_cut = dsp::design_lowpass(
      config.bandpass_low_hz / config.fs_hz, taps);
  const linalg::Vector lowpassed = dsp::filter_same(centered, low_cut);
  const linalg::Vector baseline = dsp::filter_same(centered, high_cut);
  linalg::Vector band(n);
  for (std::size_t i = 0; i < n; ++i) band[i] = lowpassed[i] - baseline[i];

  // Derivative magnitude and moving-window integration.  |d| rather than
  // d² keeps the ectopic-to-sinus peak ratio near its amplitude ratio
  // (~5x) instead of its square (~30x), which the adaptive threshold can
  // absorb.
  linalg::Vector feature(n);
  for (std::size_t i = 1; i < n; ++i) {
    feature[i] = std::abs(band[i] - band[i - 1]);
  }
  const auto window_len = static_cast<std::size_t>(
      std::max(3.0, config.integration_window_s * config.fs_hz));
  const linalg::Vector integrated =
      dsp::moving_average(feature, window_len | 1);

  // Adaptive thresholding with refractory lock-out.  The first/last
  // filter-length samples carry edge transients and are excluded.
  const auto refractory = static_cast<std::size_t>(
      std::max(1.0, config.refractory_s * config.fs_hz));
  const std::size_t edge = taps;
  if (n <= 2 * edge + 2) return {};
  double running_peak = 0.0;
  for (std::size_t i = edge;
       i < std::min<std::size_t>(n - edge, edge + 2 * refractory); ++i) {
    running_peak = std::max(running_peak, integrated[i]);
  }
  std::vector<std::size_t> peaks;
  std::size_t last_peak = 0;
  bool has_peak = false;
  // The peak-level estimate decays with a ~5 s time constant so one
  // large ectopic beat cannot mask the smaller sinus beats that follow
  // (amplitude ratios of 5–10x are routine on PVC-heavy records).
  const double decay = std::exp(-1.0 / (5.0 * config.fs_hz));
  for (std::size_t i = edge; i + edge < n; ++i) {
    if (running_peak <= 1e-12) break;  // Silent input: nothing to detect.
    running_peak *= decay;
    const double threshold = config.threshold_fraction * running_peak;
    const bool is_local_max = integrated[i] >= integrated[i - 1] &&
                              integrated[i] >= integrated[i + 1];
    if (!is_local_max || integrated[i] < threshold) continue;
    if (has_peak && i - last_peak < refractory) continue;
    // Refine: locate the actual R extremum of the band signal near the
    // integrated peak (integration delays the response).
    const std::size_t lo = i >= window_len ? i - window_len : 0;
    const std::size_t hi = std::min(n - 1, i + window_len / 2);
    std::size_t argmax = lo;
    double best = std::abs(band[lo]);
    for (std::size_t k = lo; k <= hi; ++k) {
      if (std::abs(band[k]) > best) {
        best = std::abs(band[k]);
        argmax = k;
      }
    }
    if (has_peak && argmax <= last_peak) continue;
    if (has_peak && argmax - last_peak < refractory) continue;
    peaks.push_back(argmax);
    last_peak = argmax;
    has_peak = true;
    running_peak = 0.75 * running_peak + 0.25 * integrated[i];
  }
  return peaks;
}

BeatMatchStats match_beats(const std::vector<std::size_t>& detected,
                           const std::vector<std::size_t>& reference,
                           std::size_t tolerance_samples) {
  BeatMatchStats stats;
  std::vector<bool> used(detected.size(), false);
  double jitter_sum = 0.0;
  for (std::size_t ref : reference) {
    // Nearest unused detection within tolerance.
    std::size_t best_index = detected.size();
    std::size_t best_distance = tolerance_samples + 1;
    for (std::size_t d = 0; d < detected.size(); ++d) {
      if (used[d]) continue;
      const std::size_t distance = detected[d] > ref ? detected[d] - ref
                                                     : ref - detected[d];
      if (distance < best_distance) {
        best_distance = distance;
        best_index = d;
      }
    }
    if (best_index < detected.size()) {
      used[best_index] = true;
      ++stats.true_positives;
      jitter_sum += static_cast<double>(best_distance);
    } else {
      ++stats.false_negatives;
    }
  }
  for (bool u : used) {
    if (!u) ++stats.false_positives;
  }
  const double tp = static_cast<double>(stats.true_positives);
  if (stats.true_positives + stats.false_negatives > 0) {
    stats.sensitivity =
        tp / static_cast<double>(stats.true_positives +
                                 stats.false_negatives);
  }
  if (stats.true_positives + stats.false_positives > 0) {
    stats.ppv = tp / static_cast<double>(stats.true_positives +
                                         stats.false_positives);
  }
  if (stats.sensitivity + stats.ppv > 0.0) {
    stats.f1 = 2.0 * stats.sensitivity * stats.ppv /
               (stats.sensitivity + stats.ppv);
  }
  if (stats.true_positives > 0) {
    stats.mean_jitter_samples = jitter_sum / tp;
  }
  return stats;
}

std::vector<std::size_t> annotations_in_window(
    const std::vector<BeatAnnotation>& beats, std::size_t start,
    std::size_t length) {
  std::vector<std::size_t> out;
  for (const BeatAnnotation& beat : beats) {
    if (beat.sample >= start && beat.sample < start + length) {
      out.push_back(beat.sample - start);
    }
  }
  return out;
}

}  // namespace csecg::ecg

// libFuzzer entry point for one fuzz target.
//
// Compiled once per target with -DCSECG_FUZZ_TARGET=<Target enumerator>
// (e.g. kCodebook) under -fsanitize=fuzzer when CSECG_FUZZ=ON.  The
// deterministic harness in targets.cpp stays the tier-1 workhorse; this
// shim lets a nightly coverage-guided run reach states the structure-
// aware mutators do not.  A ContractViolation deliberately escapes —
// libFuzzer reports the uncaught exception as a crash and saves the
// input, which is then minimized and committed under tests/corpus/.
//
// The shim is also compiled (not linked) in every regular build as an
// OBJECT library, so it cannot rot while CSECG_FUZZ is OFF.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "csecg/fuzz/targets.hpp"

#ifndef CSECG_FUZZ_TARGET
#error "Compile with -DCSECG_FUZZ_TARGET=<Target enumerator>, e.g. kCodebook"
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static constexpr csecg::fuzz::Target kTarget =
      csecg::fuzz::Target::CSECG_FUZZ_TARGET;
  const std::vector<std::uint8_t> input(data, data + size);
  (void)csecg::fuzz::run_one(kTarget, input);
  return 0;
}

// Structure-aware byte-level mutators for the deterministic fuzz harness.
//
// Every mutator is a pure function of (input, RNG state): the same seed
// always reproduces the same mutation sequence, so any failure found by
// the harness is replayable from the (target, seed, iteration) triple
// alone.  The strategies are the classic decoder-breakers — single-bit
// flips (desynchronize a Huffman stream), truncation (mid-code stream
// end), length-field corruption with boundary values (the u8/u16/u32
// count fields of the frame/packet/codebook layouts), chunk surgery, and
// splicing two valid inputs (valid-prefix + foreign-suffix inputs reach
// deeper than random noise).
#pragma once

#include <cstdint>
#include <vector>

#include "csecg/rng/xoshiro.hpp"

namespace csecg::fuzz {

using Bytes = std::vector<std::uint8_t>;

/// Flips one uniformly chosen bit.  Identity on empty input.
Bytes flip_bit(Bytes input, rng::Xoshiro256& gen);

/// Overwrites one byte with a boundary value (0x00, 0xFF, 0x7F, 0x80) or
/// a uniform byte.  Identity on empty input.
Bytes set_byte(Bytes input, rng::Xoshiro256& gen);

/// Drops a uniformly chosen suffix (possibly all bytes).
Bytes truncate(Bytes input, rng::Xoshiro256& gen);

/// Appends 1..16 uniform bytes (trailing-garbage detection).
Bytes extend(Bytes input, rng::Xoshiro256& gen);

/// Reinterprets a random 1/2/4-byte span as a little- or big-endian
/// length field and replaces it with a boundary count: 0, 1, max, max−1,
/// or a huge value.  This is what turns "random corruption" into
/// "allocation-bomb and off-by-one probing".  Identity on empty input.
Bytes corrupt_length_field(Bytes input, rng::Xoshiro256& gen);

/// Deletes a uniformly chosen interior chunk.  Identity on empty input.
Bytes delete_chunk(Bytes input, rng::Xoshiro256& gen);

/// Duplicates a uniformly chosen chunk in place (repeated-section
/// confusion).  Identity on empty input.
Bytes duplicate_chunk(Bytes input, rng::Xoshiro256& gen);

/// Concatenates a prefix of `a` with a suffix of `b` at uniformly chosen
/// cut points — the splice-of-two-valid-inputs strategy.
Bytes splice(const Bytes& a, const Bytes& b, rng::Xoshiro256& gen);

/// Applies 1..3 randomly chosen mutators from the set above to `input`;
/// splice draws its second parent from `pool` (ignored when empty).
Bytes mutate(const Bytes& input, const std::vector<Bytes>& pool,
             rng::Xoshiro256& gen);

}  // namespace csecg::fuzz

// Fuzz targets: one contract-enforcing entry point per untrusted-input
// decoder.
//
// The contract under test is uniform (DESIGN.md §9): fed arbitrary
// bytes, a decoder either returns a value or reports failure through its
// declared channel (coding::DecodeError, core::FrameError, or
// std::nullopt) — it never crashes, never trips a sanitizer, and never
// throws anything else.  run_one() executes one input against that
// contract and throws ContractViolation (carrying a hex dump of the
// offending input) on any breach; run_target() drives the deterministic
// mutate-and-check loop around it.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "csecg/fuzz/mutators.hpp"

namespace csecg::fuzz {

/// The decoders under test.
enum class Target {
  kFrame,         ///< core::try_deserialize_frame + deserialize_frame.
  kCodebook,      ///< coding::HuffmanCodebook::deserialize.
  kZeroRun,       ///< coding::ZeroRunDeltaCodec::decode.
  kDeltaHuffman,  ///< coding::DeltaHuffmanCodec::decode.
  kBitReader,     ///< coding::BitReader driven by a read program.
  kPacket,        ///< link::parse_packet.
  kReassembler,   ///< link::Reassembler::reassemble on hostile packets.
};

/// All targets, in declaration order.
std::vector<Target> all_targets();

/// Stable lower-snake name ("frame", "codebook", ... ) used by the CLI
/// and the tests/corpus/<name>/ directory layout.
std::string_view target_name(Target target);

/// Inverse of target_name; nullopt for unknown names.
std::optional<Target> target_from_name(std::string_view name);

/// A decoder broke the untrusted-input contract: it threw something
/// other than its declared failure type, or violated a round-trip
/// oracle.  what() carries the target, the defect, and the full input as
/// hex so the failure is reproducible from the message alone.
class ContractViolation : public std::runtime_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// How one input fared against a decoder that honoured the contract.
enum class Outcome {
  kAccepted,  ///< Decoded to a value.
  kRejected,  ///< Failed through the declared channel.
};

/// Runs one input against one target.  Throws ContractViolation on any
/// contract breach; otherwise classifies the outcome.
Outcome run_one(Target target, const Bytes& input);

/// Valid seed inputs for a target, built from the reference fixtures —
/// the starting population of the mutation pool.
std::vector<Bytes> seed_corpus(Target target);

/// One deterministic fuzz campaign's result.
struct FuzzReport {
  std::uint64_t iterations = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::size_t pool_size = 0;   ///< Final mutation-pool population.
  std::uint64_t fingerprint = 0;  ///< Order-sensitive hash of all
                                  ///< (input, outcome) pairs; equal seeds
                                  ///< must yield equal fingerprints.
};

/// Runs `iterations` mutate-and-check rounds against one target with the
/// given seed.  Accepted inputs feed back into the mutation pool (capped)
/// so the campaign walks deeper than single-step corruption.  Throws
/// ContractViolation on the first breach.
FuzzReport run_target(Target target, std::uint64_t seed,
                      std::uint64_t iterations);

/// One curated regression input: a historical or by-construction defect
/// with a stable name.
struct RegressionInput {
  std::string_view name;  ///< File stem under tests/corpus/<target>/.
  Bytes bytes;
};

/// The curated defect inputs for a target — the minimized crashers and
/// boundary probes the corpus replay test pins forever.  Every entry must
/// satisfy run_one (that is the replay test).
std::vector<RegressionInput> regression_corpus(Target target);

/// Writes regression_corpus() for every target under `dir` as
/// <dir>/<target>/<name>.bin.  Returns the number of files written.
std::size_t write_regression_corpus(const std::string& dir);

}  // namespace csecg::fuzz

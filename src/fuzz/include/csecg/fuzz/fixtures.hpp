// Deterministic reference fixtures shared by the fuzz targets, the
// golden-fixture tests, and the committed regression corpus.
//
// Every decoder under test needs design-time context (an ADC geometry, a
// trained codebook) before it can be fed bytes.  These fixtures pin that
// context to constants derived from the repo's own deterministic RNG, so
// a corpus file committed today decodes against byte-identical context on
// every platform and every future revision — or the golden tests fail
// loudly, which is exactly the signal a wire-format change must produce.
#pragma once

#include <cstdint>
#include <vector>

#include "csecg/coding/delta_huffman_codec.hpp"
#include "csecg/coding/huffman.hpp"
#include "csecg/coding/zero_run_codec.hpp"
#include "csecg/sensing/quantizer.hpp"

namespace csecg::fuzz {

/// The reference measurement ADC for frame fuzzing: 8-bit over [−4, 4).
const sensing::Quantizer& reference_adc();

/// Reference 7-bit delta-Huffman codec (trained on the staircase corpus,
/// seed 17).
const coding::DeltaHuffmanCodec& reference_delta_codec();

/// Reference 5-bit zero-run codec (trained on the staircase corpus,
/// seed 9).
const coding::ZeroRunDeltaCodec& reference_zero_run_codec();

/// The reference delta codec's codebook (codebook deserialize fuzzing).
const coding::HuffmanCodebook& reference_codebook();

/// Deterministic random-walk training windows: 16 windows × 256 codes of
/// a clamped ±1 staircase over the B-bit range — the same shape the unit
/// tests train on.
std::vector<std::vector<std::int64_t>> staircase_corpus(int code_bits,
                                                        std::uint64_t seed);

}  // namespace csecg::fuzz

#include "csecg/fuzz/fixtures.hpp"

#include <algorithm>

#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::fuzz {

std::vector<std::vector<std::int64_t>> staircase_corpus(int code_bits,
                                                        std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<std::vector<std::int64_t>> corpus;
  const std::int64_t max_code = (std::int64_t{1} << code_bits) - 1;
  for (int w = 0; w < 16; ++w) {
    std::vector<std::int64_t> window;
    std::int64_t level = max_code / 2;
    for (int i = 0; i < 256; ++i) {
      const double u = rng::uniform01(gen);
      if (u < 0.05) level += 1;
      if (u > 0.95) level -= 1;
      level = std::clamp<std::int64_t>(level, 0, max_code);
      window.push_back(level);
    }
    corpus.push_back(std::move(window));
  }
  return corpus;
}

const sensing::Quantizer& reference_adc() {
  static const sensing::Quantizer adc(8, -4.0, 4.0);
  return adc;
}

const coding::DeltaHuffmanCodec& reference_delta_codec() {
  static const coding::DeltaHuffmanCodec codec =
      coding::DeltaHuffmanCodec::train(staircase_corpus(7, 17), 7);
  return codec;
}

const coding::ZeroRunDeltaCodec& reference_zero_run_codec() {
  static const coding::ZeroRunDeltaCodec codec =
      coding::ZeroRunDeltaCodec::train(staircase_corpus(5, 9), 5);
  return codec;
}

const coding::HuffmanCodebook& reference_codebook() {
  return reference_delta_codec().codebook();
}

}  // namespace csecg::fuzz

#include "csecg/fuzz/mutators.hpp"

#include <algorithm>
#include <cstddef>

#include "csecg/rng/distributions.hpp"

namespace csecg::fuzz {
namespace {

std::size_t index_below(rng::Xoshiro256& gen, std::size_t bound) {
  return static_cast<std::size_t>(
      rng::uniform_below(gen, static_cast<std::uint64_t>(bound)));
}

std::uint8_t boundary_byte(rng::Xoshiro256& gen) {
  static constexpr std::uint8_t kBoundaries[] = {0x00, 0xFF, 0x7F, 0x80};
  const std::uint64_t pick = rng::uniform_below(gen, 5);
  if (pick < 4) return kBoundaries[pick];
  return static_cast<std::uint8_t>(gen.next() & 0xFF);
}

}  // namespace

Bytes flip_bit(Bytes input, rng::Xoshiro256& gen) {
  if (input.empty()) return input;
  const std::size_t bit = index_below(gen, input.size() * 8);
  input[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return input;
}

Bytes set_byte(Bytes input, rng::Xoshiro256& gen) {
  if (input.empty()) return input;
  input[index_below(gen, input.size())] = boundary_byte(gen);
  return input;
}

Bytes truncate(Bytes input, rng::Xoshiro256& gen) {
  input.resize(index_below(gen, input.size() + 1));
  return input;
}

Bytes extend(Bytes input, rng::Xoshiro256& gen) {
  const std::size_t extra = 1 + index_below(gen, 16);
  for (std::size_t i = 0; i < extra; ++i) {
    input.push_back(static_cast<std::uint8_t>(gen.next() & 0xFF));
  }
  return input;
}

Bytes corrupt_length_field(Bytes input, rng::Xoshiro256& gen) {
  if (input.empty()) return input;
  static constexpr std::size_t kWidths[] = {1, 2, 4};
  const std::size_t width =
      std::min(kWidths[index_below(gen, 3)], input.size());
  const std::size_t offset = index_below(gen, input.size() - width + 1);
  // Boundary counts: empty, one, all-ones, almost-all-ones, or a huge
  // value with high bits set (allocation-bomb probe).
  std::uint64_t value = 0;
  switch (rng::uniform_below(gen, 5)) {
    case 0: value = 0; break;
    case 1: value = 1; break;
    case 2: value = ~std::uint64_t{0}; break;
    case 3: value = ~std::uint64_t{0} - 1; break;
    default: value = gen.next() | (std::uint64_t{1} << 63); break;
  }
  const bool big_endian = (gen.next() & 1) != 0;
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t shift = big_endian ? (width - 1 - i) : i;
    input[offset + i] = static_cast<std::uint8_t>((value >> (8 * shift)) &
                                                  0xFF);
  }
  return input;
}

Bytes delete_chunk(Bytes input, rng::Xoshiro256& gen) {
  if (input.empty()) return input;
  const std::size_t begin = index_below(gen, input.size());
  const std::size_t length = 1 + index_below(gen, input.size() - begin);
  input.erase(input.begin() + static_cast<std::ptrdiff_t>(begin),
              input.begin() + static_cast<std::ptrdiff_t>(begin + length));
  return input;
}

Bytes duplicate_chunk(Bytes input, rng::Xoshiro256& gen) {
  if (input.empty()) return input;
  const std::size_t begin = index_below(gen, input.size());
  const std::size_t length =
      1 + index_below(gen, std::min<std::size_t>(input.size() - begin, 32));
  const Bytes chunk(input.begin() + static_cast<std::ptrdiff_t>(begin),
                    input.begin() +
                        static_cast<std::ptrdiff_t>(begin + length));
  input.insert(input.begin() + static_cast<std::ptrdiff_t>(begin),
               chunk.begin(), chunk.end());
  return input;
}

Bytes splice(const Bytes& a, const Bytes& b, rng::Xoshiro256& gen) {
  const std::size_t prefix = index_below(gen, a.size() + 1);
  const std::size_t suffix_begin = index_below(gen, b.size() + 1);
  Bytes out(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(prefix));
  out.insert(out.end(),
             b.begin() + static_cast<std::ptrdiff_t>(suffix_begin), b.end());
  return out;
}

Bytes mutate(const Bytes& input, const std::vector<Bytes>& pool,
             rng::Xoshiro256& gen) {
  Bytes out = input;
  const std::size_t rounds = 1 + index_below(gen, 3);
  for (std::size_t round = 0; round < rounds; ++round) {
    switch (rng::uniform_below(gen, pool.empty() ? 7 : 8)) {
      case 0: out = flip_bit(std::move(out), gen); break;
      case 1: out = set_byte(std::move(out), gen); break;
      case 2: out = truncate(std::move(out), gen); break;
      case 3: out = extend(std::move(out), gen); break;
      case 4: out = corrupt_length_field(std::move(out), gen); break;
      case 5: out = delete_chunk(std::move(out), gen); break;
      case 6: out = duplicate_chunk(std::move(out), gen); break;
      default:
        out = splice(out, pool[index_below(gen, pool.size())], gen);
        break;
    }
  }
  return out;
}

}  // namespace csecg::fuzz

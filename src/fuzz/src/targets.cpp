#include "csecg/fuzz/targets.hpp"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "csecg/coding/bitstream.hpp"
#include "csecg/coding/decode_error.hpp"
#include "csecg/common/check.hpp"
#include "csecg/core/frame.hpp"
#include "csecg/fuzz/fixtures.hpp"
#include "csecg/link/packet.hpp"
#include "csecg/link/packetizer.hpp"
#include "csecg/rng/distributions.hpp"

namespace csecg::fuzz {
namespace {

// Geometry of the reference reassembler (small enough that a fuzz
// iteration is cheap, large enough to exercise range arithmetic).
constexpr std::size_t kReassemblerMeasurements = 16;
constexpr std::size_t kReassemblerWindow = 64;
constexpr std::uint16_t kReassemblerStream = 1;

// Inputs larger than this are clipped before running: every decoder's
// allocation is bounded by a small multiple of input size, so giant
// inputs only cost time, not coverage.
constexpr std::size_t kMaxInputBytes = std::size_t{1} << 16;

const link::Reassembler& reference_reassembler() {
  static const link::Reassembler reassembler(
      kReassemblerMeasurements, kReassemblerWindow, reference_adc(),
      reference_delta_codec(), kReassemblerStream);
  return reassembler;
}

std::string hex_dump(const Bytes& input) {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::size_t shown = std::min<std::size_t>(input.size(), 256);
  std::string out;
  out.reserve(shown * 2 + 16);
  for (std::size_t i = 0; i < shown; ++i) {
    out.push_back(kDigits[input[i] >> 4]);
    out.push_back(kDigits[input[i] & 0xF]);
  }
  if (shown < input.size()) out += "…";
  return out;
}

[[noreturn]] void violation(Target target, const Bytes& input,
                            const std::string& defect) {
  std::ostringstream oss;
  oss << "fuzz contract violation [" << target_name(target)
      << "]: " << defect << "; input (" << input.size()
      << " bytes): " << hex_dump(input);
  throw ContractViolation(oss.str());
}

// --- per-target drivers.  Each returns the outcome and lets only
// *disallowed* exceptions escape; run_one converts those to
// ContractViolation.

Outcome run_frame(const Bytes& input) {
  std::string error;
  const std::optional<core::Frame> parsed =
      core::try_deserialize_frame(input, reference_adc(), &error);
  // The throwing and optional parsers must agree defect-for-defect.
  bool threw = false;
  try {
    const core::Frame frame = core::deserialize_frame(input, reference_adc());
    (void)frame;
  } catch (const core::FrameError&) {
    threw = true;
  }
  if (parsed.has_value() == threw) {
    violation(Target::kFrame, input,
              "try_deserialize_frame and deserialize_frame disagree");
  }
  if (!parsed.has_value()) {
    if (error.empty()) {
      violation(Target::kFrame, input,
                "rejected without an error description");
    }
    return Outcome::kRejected;
  }
  // Accepted frames must round-trip byte-exactly: the parser validated
  // every field against the shared ADC, so re-serialization is total.
  const Bytes again = core::serialize_frame(*parsed, reference_adc());
  if (again != input) {
    violation(Target::kFrame, input,
              "accepted frame does not re-serialize to the same bytes");
  }
  return Outcome::kAccepted;
}

Outcome run_codebook(const Bytes& input) {
  coding::HuffmanCodebook book;
  try {
    book = coding::HuffmanCodebook::deserialize(input);
  } catch (const coding::DecodeError&) {
    return Outcome::kRejected;
  }
  // An accepted codebook must survive its own serialization cycle with
  // identical canonical entries (serialize may legally narrow the symbol
  // width, so compare entries, not bytes).
  const coding::HuffmanCodebook again =
      coding::HuffmanCodebook::deserialize(book.serialize());
  if (again.entries().size() != book.entries().size()) {
    violation(Target::kCodebook, input,
              "serialize/deserialize cycle changed the entry count");
  }
  for (std::size_t i = 0; i < book.entries().size(); ++i) {
    if (again.entries()[i].symbol != book.entries()[i].symbol ||
        again.entries()[i].length != book.entries()[i].length ||
        again.entries()[i].code != book.entries()[i].code) {
      violation(Target::kCodebook, input,
                "serialize/deserialize cycle changed an entry");
    }
  }
  return Outcome::kAccepted;
}

// The window codecs take (payload, count); the harness derives the count
// from the first input byte so the mutators can probe count/payload
// mismatches, and feeds the rest as payload.
template <typename Codec>
Outcome run_window_codec(Target target, const Codec& codec,
                         const Bytes& input) {
  const std::size_t count = input.empty() ? 1 : 1 + input[0];
  const Bytes payload(input.begin() + (input.empty() ? 0 : 1), input.end());
  std::vector<std::int64_t> codes;
  try {
    codes = codec.decode(payload, count);
  } catch (const coding::DecodeError&) {
    return Outcome::kRejected;
  }
  if (codes.size() != count) {
    violation(target, input, "decode returned the wrong sample count");
  }
  return Outcome::kAccepted;
}

Outcome run_bitreader(const Bytes& input) {
  coding::BitReader reader(input);
  // Read program: chunk widths in [0, 64] derived from the input itself,
  // so mutations explore width sequences as well as payloads.  The step
  // bound makes all-zero-width programs terminate.
  const std::size_t max_steps = input.size() * 8 + 16;
  try {
    for (std::size_t step = 0; step < max_steps; ++step) {
      const int width =
          input.empty() ? 1 : input[step % input.size()] % 65;
      const std::uint64_t value = reader.read(width);
      (void)value;
    }
  } catch (const coding::DecodeError&) {
    return Outcome::kRejected;
  }
  return Outcome::kAccepted;
}

Outcome run_packet(const Bytes& input) {
  const std::optional<link::Packet> parsed = link::parse_packet(input);
  if (!parsed.has_value()) return Outcome::kRejected;
  // A CRC-verified packet must round-trip byte-exactly.
  const Bytes again = link::serialize_packet(parsed->header, parsed->payload);
  if (again != input) {
    violation(Target::kPacket, input,
              "accepted packet does not re-serialize to the same bytes");
  }
  return Outcome::kAccepted;
}

// Reassembler input format: a train of [len u16 big-endian][chunk bytes]
// records; each chunk is one delivered "packet".  A length that overruns
// the remaining bytes takes what is left.
std::vector<Bytes> split_delivered(const Bytes& input) {
  std::vector<Bytes> delivered;
  std::size_t i = 0;
  while (i + 2 <= input.size() && delivered.size() < 64) {
    const std::size_t length =
        (static_cast<std::size_t>(input[i]) << 8) | input[i + 1];
    i += 2;
    const std::size_t take = std::min(length, input.size() - i);
    delivered.emplace_back(input.begin() + static_cast<std::ptrdiff_t>(i),
                           input.begin() +
                               static_cast<std::ptrdiff_t>(i + take));
    i += take;
  }
  return delivered;
}

Outcome run_reassembler(const Bytes& input) {
  const std::vector<Bytes> delivered = split_delivered(input);
  const link::ReassemblyResult result =
      reference_reassembler().reassemble(0, delivered);
  if (result.packets_accepted + result.packets_rejected != delivered.size()) {
    violation(Target::kReassembler, input,
              "accepted + rejected does not add up to delivered");
  }
  return result.packets_accepted > 0 ? Outcome::kAccepted
                                     : Outcome::kRejected;
}

// --- seed-corpus builders.

Bytes with_count_prefix(std::uint8_t count_minus_one, const Bytes& payload) {
  Bytes out;
  out.reserve(payload.size() + 1);
  out.push_back(count_minus_one);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

template <typename Codec>
std::vector<Bytes> window_codec_seeds(const Codec& codec, int code_bits) {
  std::vector<Bytes> seeds;
  const auto corpus = staircase_corpus(code_bits, 101);
  for (std::size_t w = 0; w < 3; ++w) {
    std::vector<std::int64_t> window(corpus[w].begin(),
                                     corpus[w].begin() + 64);
    std::size_t bits = 0;
    seeds.push_back(with_count_prefix(63, codec.encode(window, bits)));
  }
  // A one-sample window: header-only payloads exercise the first-code
  // path alone.
  std::size_t bits = 0;
  seeds.push_back(
      with_count_prefix(0, codec.encode({std::int64_t{3}}, bits)));
  return seeds;
}

core::Frame reference_frame(bool with_lowres, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  core::Frame frame;
  frame.window = 256;
  frame.measurement_bits = reference_adc().bits();
  linalg::Vector measurements(24);
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const std::int64_t code = static_cast<std::int64_t>(
        rng::uniform_below(gen, static_cast<std::uint64_t>(
                                    reference_adc().levels())));
    measurements[i] = reference_adc().reconstruct(code);
  }
  frame.measurements = std::move(measurements);
  if (with_lowres) {
    const auto corpus = staircase_corpus(7, seed);
    frame.lowres_payload =
        reference_delta_codec().encode(corpus[0], frame.lowres_bits);
  }
  return frame;
}

Bytes packed_cs_payload(std::size_t count, std::size_t& bits_out) {
  coding::BitWriter writer;
  for (std::size_t i = 0; i < count; ++i) {
    writer.write((i * 37) % static_cast<std::size_t>(
                                reference_adc().levels()),
                 reference_adc().bits());
  }
  bits_out = writer.bit_count();
  return writer.finish();
}

link::PacketHeader cs_header(std::uint16_t first, std::uint16_t count,
                             std::size_t payload_bits) {
  link::PacketHeader header;
  header.kind = link::PayloadKind::kCsMeasurements;
  header.stream_id = kReassemblerStream;
  header.window_seq = 0;
  header.packet_seq = 0;
  header.packet_count = 1;
  header.first = first;
  header.count = count;
  header.payload_bits = static_cast<std::uint16_t>(payload_bits);
  return header;
}

Bytes reference_cs_packet() {
  std::size_t bits = 0;
  const Bytes payload = packed_cs_payload(kReassemblerMeasurements, bits);
  return link::serialize_packet(
      cs_header(0, kReassemblerMeasurements, bits), payload);
}

Bytes reference_lowres_packet() {
  const auto corpus = staircase_corpus(7, 205);
  std::vector<std::int64_t> window(corpus[0].begin(),
                                   corpus[0].begin() + kReassemblerWindow);
  std::size_t bits = 0;
  const Bytes payload = reference_delta_codec().encode(window, bits);
  link::PacketHeader header;
  header.kind = link::PayloadKind::kLowRes;
  header.stream_id = kReassemblerStream;
  header.window_seq = 0;
  header.packet_seq = 1;
  header.packet_count = 2;
  header.first = 0;
  header.count = kReassemblerWindow;
  header.payload_bits = static_cast<std::uint16_t>(bits);
  return link::serialize_packet(header, payload);
}

Bytes chunked(const std::vector<Bytes>& packets) {
  Bytes out;
  for (const Bytes& packet : packets) {
    out.push_back(static_cast<std::uint8_t>(packet.size() >> 8));
    out.push_back(static_cast<std::uint8_t>(packet.size() & 0xFF));
    out.insert(out.end(), packet.begin(), packet.end());
  }
  return out;
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer — the repo's canonical bit mixer.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fingerprint_step(std::uint64_t fingerprint, const Bytes& input,
                               Outcome outcome) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : input) {
    h = (h ^ byte) * 0x100000001b3ULL;
  }
  h ^= outcome == Outcome::kAccepted ? 0x5A5A5A5AULL : 0xA5A5A5A5ULL;
  return mix64(fingerprint ^ h);
}

}  // namespace

std::vector<Target> all_targets() {
  return {Target::kFrame,     Target::kCodebook,  Target::kZeroRun,
          Target::kDeltaHuffman, Target::kBitReader, Target::kPacket,
          Target::kReassembler};
}

std::string_view target_name(Target target) {
  switch (target) {
    case Target::kFrame: return "frame";
    case Target::kCodebook: return "codebook";
    case Target::kZeroRun: return "zero_run";
    case Target::kDeltaHuffman: return "delta_huffman";
    case Target::kBitReader: return "bitreader";
    case Target::kPacket: return "packet";
    case Target::kReassembler: return "reassembler";
  }
  return "unknown";
}

std::optional<Target> target_from_name(std::string_view name) {
  for (const Target target : all_targets()) {
    if (target_name(target) == name) return target;
  }
  return std::nullopt;
}

Outcome run_one(Target target, const Bytes& input) {
  try {
    switch (target) {
      case Target::kFrame: return run_frame(input);
      case Target::kCodebook: return run_codebook(input);
      case Target::kZeroRun:
        return run_window_codec(Target::kZeroRun,
                                reference_zero_run_codec(), input);
      case Target::kDeltaHuffman:
        return run_window_codec(Target::kDeltaHuffman,
                                reference_delta_codec(), input);
      case Target::kBitReader: return run_bitreader(input);
      case Target::kPacket: return run_packet(input);
      case Target::kReassembler: return run_reassembler(input);
    }
    violation(target, input, "unknown target");
  } catch (const ContractViolation&) {
    throw;
  } catch (const std::exception& e) {
    violation(target, input,
              std::string("undeclared exception escaped: ") + e.what());
  } catch (...) {
    violation(target, input, "non-exception object thrown");
  }
}

std::vector<Bytes> seed_corpus(Target target) {
  switch (target) {
    case Target::kFrame:
      return {core::serialize_frame(reference_frame(true, 301),
                                    reference_adc()),
              core::serialize_frame(reference_frame(false, 302),
                                    reference_adc())};
    case Target::kCodebook:
      return {reference_codebook().serialize(),
              reference_zero_run_codec().codebook().serialize(),
              coding::HuffmanCodebook::build({{5, 3}}).serialize()};
    case Target::kZeroRun:
      return window_codec_seeds(reference_zero_run_codec(), 5);
    case Target::kDeltaHuffman:
      return window_codec_seeds(reference_delta_codec(), 7);
    case Target::kBitReader: {
      Bytes ramp;
      for (int i = 0; i < 64; ++i) {
        ramp.push_back(static_cast<std::uint8_t>(i * 5));
      }
      return {ramp, Bytes(16, 0x00), Bytes(16, 0xFF)};
    }
    case Target::kPacket:
      return {reference_cs_packet(), reference_lowres_packet()};
    case Target::kReassembler:
      return {chunked({reference_cs_packet(), reference_lowres_packet()}),
              chunked({reference_lowres_packet()})};
  }
  return {};
}

FuzzReport run_target(Target target, std::uint64_t seed,
                      std::uint64_t iterations) {
  rng::Xoshiro256 gen(seed);
  std::vector<Bytes> pool = seed_corpus(target);
  CSECG_CHECK(!pool.empty(), "run_target: target has no seed corpus");
  constexpr std::size_t kMaxPool = 256;

  FuzzReport report;
  report.iterations = iterations;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::size_t base = static_cast<std::size_t>(
        rng::uniform_below(gen, static_cast<std::uint64_t>(pool.size())));
    Bytes input = mutate(pool[base], pool, gen);
    if (input.size() > kMaxInputBytes) input.resize(kMaxInputBytes);
    Outcome outcome = Outcome::kRejected;
    try {
      outcome = run_one(target, input);
    } catch (const ContractViolation& e) {
      std::ostringstream oss;
      oss << e.what() << " (seed " << seed << ", iteration " << i << ")";
      throw ContractViolation(oss.str());
    }
    if (outcome == Outcome::kAccepted) {
      ++report.accepted;
    } else {
      ++report.rejected;
    }
    report.fingerprint = fingerprint_step(report.fingerprint, input, outcome);
    // Accepted mutants re-enter the pool so later rounds mutate inputs
    // that already passed the parser's outer gates.
    if (outcome == Outcome::kAccepted && pool.size() < kMaxPool &&
        (gen.next() & 3) == 0) {
      pool.push_back(std::move(input));
    }
  }
  report.pool_size = pool.size();
  return report;
}

std::vector<RegressionInput> regression_corpus(Target target) {
  switch (target) {
    case Target::kFrame: {
      const Bytes valid =
          core::serialize_frame(reference_frame(true, 301), reference_adc());
      Bytes bad_magic = valid;
      bad_magic[0] ^= 0xFF;
      Bytes truncated = valid;
      truncated.resize(truncated.size() - 3);
      Bytes trailing = valid;
      trailing.push_back(0xEE);
      Bytes huge_window = valid;
      huge_window[2] = 0xFF;
      huge_window[3] = 0xFF;
      return {{"empty", {}},
              {"bad_magic", bad_magic},
              {"truncated_header", Bytes(valid.begin(), valid.begin() + 4)},
              {"truncated_payload", truncated},
              {"trailing_garbage", trailing},
              {"huge_window_field", huge_window},
              {"valid_roundtrip", valid}};
    }
    case Target::kCodebook:
      // Each entry is a by-construction defect deserialize must reject:
      // the Kraft-walk, duplicate-symbol, and empty-table validations
      // added with the fuzz hardening.
      return {{"empty", {}},
              {"truncated_header", {1}},
              {"kraft_oversubscribed", {1, 1, 3, 0, 1, 2}},
              {"kraft_incomplete", {1, 2, 1, 0, 5}},
              {"duplicate_symbol", {1, 1, 2, 7, 7}},
              {"empty_table", {1, 1, 0}},
              {"bad_symbol_width", {3, 1, 2, 0, 1}},
              {"valid_roundtrip", reference_codebook().serialize()}};
    case Target::kZeroRun: {
      // elias_prefix_64_zeros: first code, RUN marker, then a zero flood
      // — the pre-fix decoder shifted past 64 bits (UB); now a
      // DecodeError at the 63-bit prefix cap.
      coding::BitWriter prefix_flood;
      prefix_flood.write(3, 5);
      reference_zero_run_codec().codebook().encode(
          reference_zero_run_codec().run_symbol(), prefix_flood);
      for (int i = 0; i < 70; ++i) prefix_flood.write_bit(false);
      // elias_wrap_run_length: a legally coded run of 2^63 — the pre-fix
      // bound check wrapped around and accepted it.
      coding::BitWriter wrap;
      wrap.write(3, 5);
      reference_zero_run_codec().codebook().encode(
          reference_zero_run_codec().run_symbol(), wrap);
      coding::elias_gamma_encode(std::uint64_t{1} << 63, wrap);
      std::size_t bits = 0;
      const Bytes valid = reference_zero_run_codec().encode(
          std::vector<std::int64_t>(64, 12), bits);
      Bytes truncated = valid;
      truncated.resize(truncated.size() / 2);
      return {{"elias_prefix_64_zeros",
               with_count_prefix(63, prefix_flood.finish())},
              {"elias_wrap_run_length",
               with_count_prefix(63, wrap.finish())},
              {"truncated_mid_stream", with_count_prefix(63, truncated)},
              {"count_exceeds_stream", with_count_prefix(255, valid)},
              {"valid_roundtrip", with_count_prefix(63, valid)}};
    }
    case Target::kDeltaHuffman: {
      const auto corpus = staircase_corpus(7, 101);
      std::vector<std::int64_t> window(corpus[0].begin(),
                                       corpus[0].begin() + 64);
      std::size_t bits = 0;
      const Bytes valid = reference_delta_codec().encode(window, bits);
      // truncated_escape: first code + escape marker + 3 of the 8 raw
      // bits — the raw-delta read must fail typed, not overrun.
      coding::BitWriter escape;
      escape.write(3, 7);
      reference_delta_codec().codebook().encode(
          reference_delta_codec().escape_symbol(), escape);
      escape.write_bit(true);
      escape.write_bit(false);
      escape.write_bit(true);
      Bytes flipped = valid;
      flipped[flipped.size() / 2] ^= 0x10;
      return {{"truncated_escape", with_count_prefix(1, escape.finish())},
              {"desync_bitflip", with_count_prefix(63, flipped)},
              {"count_exceeds_stream", with_count_prefix(255, valid)},
              {"valid_roundtrip", with_count_prefix(63, valid)}};
    }
    case Target::kBitReader:
      return {{"empty", {}},
              {"read_past_end", {0xFF}},
              {"zero_width_reads", Bytes(8, 0x00)},
              {"word_boundary", Bytes(16, 0x40)}};
    case Target::kPacket: {
      const Bytes valid = reference_cs_packet();
      Bytes bad_magic = valid;
      bad_magic[0] ^= 0xFF;
      Bytes bad_crc = valid;
      bad_crc.back() ^= 0x01;
      Bytes length_lie = valid;
      length_lie[13] = static_cast<std::uint8_t>(length_lie[13] + 8);
      Bytes unknown_kind = valid;
      unknown_kind[1] = 9;
      return {{"empty", {}},
              {"short_header", Bytes(15, 0xA7)},
              {"bad_magic", bad_magic},
              {"bad_crc", bad_crc},
              {"length_mismatch", length_lie},
              {"unknown_kind", unknown_kind},
              {"valid_roundtrip", valid}};
    }
    case Target::kReassembler: {
      Bytes foreign = reference_cs_packet();
      foreign[3] ^= 0x01;  // stream_id low byte — foreign stream.
      // lowres_garbage_payload: mangle the payload, recompute the CRC so
      // the packet parses and the hostile bytes reach the codec — the
      // typed-DecodeError drop path added with the fuzz hardening.
      const std::optional<link::Packet> parsed =
          link::parse_packet(reference_lowres_packet());
      link::Packet garbage = *parsed;
      for (std::size_t i = 0; i < garbage.payload.size(); i += 2) {
        garbage.payload[i] ^= 0x5A;
      }
      Bytes first_overflow = reference_cs_packet();
      first_overflow[8] = 0xFF;  // first = 0xFF00 — far past the window.
      return {{"foreign_stream", chunked({foreign})},
              {"lowres_garbage_payload",
               chunked({link::serialize_packet(garbage.header,
                                               garbage.payload)})},
              {"first_overflow", chunked({first_overflow})},
              {"duplicate_ranges",
               chunked({reference_cs_packet(), reference_cs_packet()})},
              {"valid_train",
               chunked({reference_cs_packet(), reference_lowres_packet()})}};
    }
  }
  return {};
}

std::size_t write_regression_corpus(const std::string& dir) {
  std::size_t written = 0;
  for (const Target target : all_targets()) {
    const std::filesystem::path target_dir =
        std::filesystem::path(dir) / std::string(target_name(target));
    std::filesystem::create_directories(target_dir);
    for (const RegressionInput& input : regression_corpus(target)) {
      const std::filesystem::path file =
          target_dir / (std::string(input.name) + ".bin");
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      CSECG_CHECK(out.good(), "write_regression_corpus: cannot open "
                                  << file.string());
      out.write(reinterpret_cast<const char*>(input.bytes.data()),
                static_cast<std::streamsize>(input.bytes.size()));
      CSECG_CHECK(out.good(), "write_regression_corpus: short write to "
                                  << file.string());
      ++written;
    }
  }
  return written;
}

}  // namespace csecg::fuzz

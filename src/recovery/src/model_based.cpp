#include "csecg/recovery/model_based.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/linalg/solve.hpp"

namespace csecg::recovery {
namespace {

/// Block energies of a coefficient vector.
std::vector<double> block_energies(const linalg::Vector& coeffs,
                                   std::size_t block_size) {
  const std::size_t blocks = coeffs.size() / block_size;
  std::vector<double> energy(blocks, 0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t i = 0; i < block_size; ++i) {
      const double v = coeffs[b * block_size + i];
      energy[b] += v * v;
    }
  }
  return energy;
}

/// Indices of the k largest-energy blocks.
std::vector<std::size_t> top_blocks(const std::vector<double>& energy,
                                    std::size_t k) {
  std::vector<std::size_t> order(energy.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t take = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(take),
                    order.end(), [&energy](std::size_t a, std::size_t b) {
                      return energy[a] > energy[b];
                    });
  order.resize(take);
  return order;
}

std::vector<std::size_t> blocks_to_support(
    const std::vector<std::size_t>& blocks, std::size_t block_size) {
  std::vector<std::size_t> support;
  support.reserve(blocks.size() * block_size);
  for (std::size_t b : blocks) {
    for (std::size_t i = 0; i < block_size; ++i) {
      support.push_back(b * block_size + i);
    }
  }
  std::sort(support.begin(), support.end());
  return support;
}

void restricted_ls(const linalg::Matrix& a, const linalg::Vector& y,
                   const std::vector<std::size_t>& support,
                   linalg::Vector& coeffs, linalg::Vector& residual) {
  linalg::Matrix sub(a.rows(), support.size());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    for (std::size_t j = 0; j < support.size(); ++j) {
      sub(i, j) = row[support[j]];
    }
  }
  const linalg::Vector beta = linalg::least_squares(sub, y);
  coeffs = linalg::Vector(a.cols());
  for (std::size_t j = 0; j < support.size(); ++j) {
    coeffs[support[j]] = beta[j];
  }
  residual = y - linalg::multiply(sub, beta);
}

}  // namespace

void validate(const BlockModel& model, std::size_t n) {
  CSECG_CHECK(model.block_size >= 1, "BlockModel: block_size must be >= 1");
  CSECG_CHECK(n % model.block_size == 0,
              "BlockModel: block_size " << model.block_size
                                        << " does not divide n=" << n);
}

linalg::Vector block_project(const linalg::Vector& coeffs,
                             const BlockModel& model, std::size_t k_blocks) {
  validate(model, coeffs.size());
  const auto energy = block_energies(coeffs, model.block_size);
  const auto keep = top_blocks(energy, k_blocks);
  linalg::Vector out(coeffs.size());
  for (std::size_t b : keep) {
    for (std::size_t i = 0; i < model.block_size; ++i) {
      const std::size_t idx = b * model.block_size + i;
      out[idx] = coeffs[idx];
    }
  }
  return out;
}

std::vector<std::size_t> block_support(const linalg::Vector& coeffs,
                                       const BlockModel& model,
                                       std::size_t k_blocks) {
  validate(model, coeffs.size());
  const auto energy = block_energies(coeffs, model.block_size);
  return blocks_to_support(top_blocks(energy, k_blocks), model.block_size);
}

void validate(const TreeModel& model) {
  CSECG_CHECK(model.n > 0, "TreeModel: n must be positive");
  CSECG_CHECK(model.levels >= 1, "TreeModel: levels must be >= 1");
  CSECG_CHECK(model.n % (std::size_t{1} << model.levels) == 0,
              "TreeModel: n=" << model.n << " not divisible by 2^"
                              << model.levels);
}

std::size_t TreeModel::parent(std::size_t i) const {
  const std::size_t coarse = n >> levels;
  CSECG_CHECK(i < n, "TreeModel::parent: index out of range");
  if (i < coarse) return npos;  // Approximation band: roots.
  // Find the detail level j with band [n>>j, n>>(j-1)).
  for (int j = levels; j >= 1; --j) {
    const std::size_t band_start = n >> j;
    const std::size_t band_end = n >> (j - 1);
    if (i >= band_start && i < band_end) {
      const std::size_t pos = i - band_start;
      if (j == levels) return pos;  // Parent in the approximation band.
      return (n >> (j + 1)) + pos / 2;
    }
  }
  return npos;  // Unreachable.
}

linalg::Vector tree_project(const linalg::Vector& coeffs,
                            const TreeModel& model, std::size_t k) {
  validate(model);
  CSECG_CHECK(coeffs.size() == model.n,
              "tree_project: coefficient length mismatch");
  CSECG_CHECK(k >= 1, "tree_project: k must be >= 1");
  std::vector<std::size_t> order(model.n);
  for (std::size_t i = 0; i < model.n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&coeffs](std::size_t a, std::size_t b) {
              return std::abs(coeffs[a]) > std::abs(coeffs[b]);
            });
  std::vector<bool> selected(model.n, false);
  std::size_t count = 0;
  for (std::size_t idx : order) {
    if (count >= k) break;
    if (selected[idx]) continue;
    // Collect the unselected ancestor chain, then commit it whole so the
    // result stays a rooted subtree.
    std::vector<std::size_t> chain;
    for (std::size_t node = idx;
         node != TreeModel::npos && !selected[node];
         node = model.parent(node)) {
      chain.push_back(node);
    }
    for (std::size_t node : chain) selected[node] = true;
    count += chain.size();
  }
  linalg::Vector out(model.n);
  for (std::size_t i = 0; i < model.n; ++i) {
    if (selected[i]) out[i] = coeffs[i];
  }
  return out;
}

GreedyResult solve_block_cosamp(const linalg::Matrix& a,
                                const linalg::Vector& y,
                                const BlockModel& model,
                                std::size_t k_blocks,
                                const GreedyOptions& options) {
  validate(options);
  validate(model, a.cols());
  CSECG_CHECK(y.size() == a.rows(), "block_cosamp: y dimension mismatch");
  CSECG_CHECK(k_blocks >= 1, "block_cosamp: k_blocks must be >= 1");
  CSECG_CHECK(k_blocks * model.block_size <= a.rows(),
              "block_cosamp: model sparsity "
                  << k_blocks * model.block_size
                  << " exceeds measurement count " << a.rows());

  const double y_norm = std::max(linalg::norm2(y), 1e-300);
  const int budget = options.max_iterations > 0
                         ? options.max_iterations
                         : static_cast<int>(3 * k_blocks);
  // Cap the merged support so least squares stays overdetermined.
  const std::size_t max_merge_blocks = a.rows() / model.block_size;

  GreedyResult result;
  result.coefficients = linalg::Vector(a.cols());
  linalg::Vector residual = y;
  double prev_residual = linalg::norm2(residual);
  std::vector<std::size_t> current_blocks;

  for (int it = 0; it < budget; ++it) {
    if (linalg::norm2(residual) <= options.residual_tol * y_norm) break;
    const linalg::Vector proxy = linalg::multiply_transpose(a, residual);
    const auto proxy_energy = block_energies(proxy, model.block_size);
    auto merged = top_blocks(proxy_energy, 2 * k_blocks);
    merged.insert(merged.end(), current_blocks.begin(),
                  current_blocks.end());
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    if (merged.size() > max_merge_blocks) {
      std::sort(merged.begin(), merged.end(),
                [&proxy_energy](std::size_t p, std::size_t q) {
                  return proxy_energy[p] > proxy_energy[q];
                });
      merged.resize(max_merge_blocks);
      std::sort(merged.begin(), merged.end());
    }

    linalg::Vector coeffs;
    linalg::Vector merged_residual;
    restricted_ls(a, y, blocks_to_support(merged, model.block_size), coeffs,
                  merged_residual);

    const auto fit_energy = block_energies(coeffs, model.block_size);
    current_blocks = top_blocks(fit_energy, k_blocks);
    std::sort(current_blocks.begin(), current_blocks.end());
    const auto support =
        blocks_to_support(current_blocks, model.block_size);
    restricted_ls(a, y, support, result.coefficients, residual);
    result.support = support;
    result.iterations = it + 1;

    const double r = linalg::norm2(residual);
    if (r >= prev_residual * (1.0 - 1e-9)) break;
    prev_residual = r;
  }

  result.residual_norm = linalg::norm2(residual);
  result.converged = result.residual_norm <= options.residual_tol * y_norm;
  return result;
}

}  // namespace csecg::recovery

#include "csecg/recovery/spgl1.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/span.hpp"
#include "csecg/obs/trace.hpp"

namespace csecg::recovery {

linalg::Vector project_l1_ball(const linalg::Vector& v, double radius) {
  CSECG_CHECK(radius >= 0.0, "project_l1_ball: negative radius");
  if (linalg::norm1(v) <= radius) return v;
  if (radius == 0.0) return linalg::Vector(v.size());
  // Duchi et al.: find the soft threshold θ from the sorted magnitudes.
  std::vector<double> magnitudes(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    magnitudes[i] = std::abs(v[i]);
  }
  std::sort(magnitudes.begin(), magnitudes.end(), std::greater<>());
  double cumulative = 0.0;
  double theta = 0.0;
  for (std::size_t k = 0; k < magnitudes.size(); ++k) {
    cumulative += magnitudes[k];
    const double candidate =
        (cumulative - radius) / static_cast<double>(k + 1);
    if (k + 1 == magnitudes.size() || magnitudes[k + 1] <= candidate) {
      theta = candidate;
      break;
    }
  }
  linalg::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double mag = std::abs(v[i]) - theta;
    out[i] = mag > 0.0 ? (v[i] > 0.0 ? mag : -mag) : 0.0;
  }
  return out;
}

void validate(const Spgl1Options& options) {
  CSECG_CHECK(options.max_root_iterations >= 1,
              "Spgl1Options: max_root_iterations must be >= 1");
  CSECG_CHECK(options.max_inner_iterations >= 1,
              "Spgl1Options: max_inner_iterations must be >= 1");
  CSECG_CHECK(options.inner_tol > 0.0 && options.root_tol > 0.0,
              "Spgl1Options: tolerances must be positive");
}

Spgl1Result solve_bpdn_spgl1(const linalg::LinearOperator& a,
                             const linalg::Vector& y, double sigma,
                             const Spgl1Options& options) {
  static obs::Histogram& solve_hist = obs::histogram("solver.spgl1.solve_ns");
  const obs::Span solve_span(solve_hist);
  obs::TraceScope solve_trace("solver.spgl1.solve", "solver",
                              "inner_iterations");
  validate(options);
  CSECG_CHECK(y.size() == a.rows(), "solve_bpdn_spgl1: y dimension mismatch");
  CSECG_CHECK(sigma >= 0.0, "solve_bpdn_spgl1: sigma must be non-negative");

  Spgl1Result result;
  result.coefficients = linalg::Vector(a.cols());
  const double y_norm = linalg::norm2(y);
  if (y_norm <= sigma) {
    // α = 0 is feasible and ℓ1-minimal.
    result.residual_norm = y_norm;
    result.converged = true;
    obs::counter("solver.spgl1.solves").add();
    obs::counter("solver.spgl1.converged").add();
    obs::gauge("solver.spgl1.last_residual").set(y_norm);
    obs::gauge("solver.spgl1.last_epsilon").set(sigma);
    return result;
  }

  const double lipschitz =
      std::pow(linalg::operator_norm_estimate(a, 60), 2);
  CSECG_CHECK(lipschitz > 0.0, "solve_bpdn_spgl1: zero operator");
  const double step = 1.0 / lipschitz;
  const double scale = std::max(y_norm, 1.0);

  double tau = 0.0;
  linalg::Vector alpha(a.cols());
  linalg::Vector residual = y;  // y − A·0.

  // Reused across root and inner iterations (allocation-free products).
  linalg::Vector ax(a.rows());
  linalg::Vector grad(a.cols());
  linalg::Vector candidate(a.cols());

  for (int root_it = 1; root_it <= options.max_root_iterations; ++root_it) {
    result.root_iterations = root_it;
    obs::trace_instant("solver.spgl1.root_step", "solver", "root_iteration",
                       static_cast<std::uint64_t>(root_it));
    // Newton step on the Pareto curve: φ(τ) ≈ ‖r‖, φ'(τ) = −‖Aᵀr‖∞/‖r‖.
    const double phi = linalg::norm2(residual);
    a.apply_adjoint_into(residual, grad);
    const double dual_norm = linalg::norm_inf(grad);
    if (dual_norm <= 0.0) break;
    tau += (phi - sigma) * phi / dual_norm;
    if (tau < 0.0) tau = 0.0;

    // Solve the LASSO-constrained subproblem at this τ by projected
    // gradient, warm-started from the previous α.
    alpha = project_l1_ball(alpha, tau);
    for (int it = 0; it < options.max_inner_iterations; ++it) {
      ++result.total_inner_iterations;
      a.apply_into(alpha, ax);
      for (std::size_t i = 0; i < residual.size(); ++i) {
        residual[i] = y[i] - ax[i];
      }
      a.apply_adjoint_into(residual, grad);
      for (std::size_t i = 0; i < alpha.size(); ++i) {
        candidate[i] = alpha[i] + step * grad[i];
      }
      linalg::Vector next = project_l1_ball(candidate, tau);
      const double change = linalg::norm2(next - alpha) /
                            std::max(linalg::norm2(next), 1.0);
      alpha = std::move(next);
      if (change <= options.inner_tol) break;
    }
    a.apply_into(alpha, ax);
    for (std::size_t i = 0; i < residual.size(); ++i) {
      residual[i] = y[i] - ax[i];
    }
    result.residual_norm = linalg::norm2(residual);
    if (std::abs(result.residual_norm - sigma) <=
        options.root_tol * scale) {
      result.converged = true;
      break;
    }
  }

  result.tau = tau;
  result.coefficients = std::move(alpha);

  static obs::Counter& solves = obs::counter("solver.spgl1.solves");
  static obs::Counter& inner_iterations =
      obs::counter("solver.spgl1.inner_iterations");
  static obs::Counter& converged = obs::counter("solver.spgl1.converged");
  static obs::Counter& non_converged =
      obs::counter("solver.spgl1.non_converged");
  static obs::Gauge& last_residual = obs::gauge("solver.spgl1.last_residual");
  static obs::Gauge& last_epsilon = obs::gauge("solver.spgl1.last_epsilon");
  solves.add();
  inner_iterations.add(
      static_cast<std::uint64_t>(result.total_inner_iterations));
  (result.converged ? converged : non_converged).add();
  last_residual.set(result.residual_norm);
  last_epsilon.set(sigma);
  solve_trace.set_arg(
      static_cast<std::uint64_t>(result.total_inner_iterations));
  return result;
}

}  // namespace csecg::recovery

#include "csecg/recovery/greedy.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/linalg/solve.hpp"

namespace csecg::recovery {
namespace {

/// Dense submatrix of the given columns.
linalg::Matrix columns(const linalg::Matrix& a,
                       const std::vector<std::size_t>& cols) {
  linalg::Matrix sub(a.rows(), cols.size());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    for (std::size_t j = 0; j < cols.size(); ++j) sub(i, j) = row[cols[j]];
  }
  return sub;
}

/// Least squares restricted to a support; returns the dense coefficient
/// vector (zeros off-support) and the residual.
void restricted_least_squares(const linalg::Matrix& a,
                              const linalg::Vector& y,
                              const std::vector<std::size_t>& support,
                              linalg::Vector& coeffs,
                              linalg::Vector& residual) {
  const linalg::Matrix sub = columns(a, support);
  const linalg::Vector beta = linalg::least_squares(sub, y);
  coeffs = linalg::Vector(a.cols());
  for (std::size_t j = 0; j < support.size(); ++j) {
    coeffs[support[j]] = beta[j];
  }
  residual = y - linalg::multiply(sub, beta);
}

void check_problem(const linalg::Matrix& a, const linalg::Vector& y,
                   const GreedyOptions& options) {
  validate(options);
  CSECG_CHECK(a.rows() > 0 && a.cols() > 0, "greedy: empty matrix");
  CSECG_CHECK(y.size() == a.rows(), "greedy: y dimension mismatch");
  CSECG_CHECK(options.max_sparsity <= a.rows(),
              "greedy: sparsity " << options.max_sparsity
                                  << " exceeds measurement count "
                                  << a.rows());
}

}  // namespace

void validate(const GreedyOptions& options) {
  CSECG_CHECK(options.max_sparsity > 0, "GreedyOptions: max_sparsity == 0");
  CSECG_CHECK(options.residual_tol >= 0.0,
              "GreedyOptions: residual_tol must be non-negative");
  CSECG_CHECK(options.max_iterations >= 0,
              "GreedyOptions: max_iterations must be non-negative");
}

GreedyResult solve_omp(const linalg::Matrix& a, const linalg::Vector& y,
                       const GreedyOptions& options) {
  check_problem(a, y, options);
  const std::size_t n = a.cols();
  const double y_norm = std::max(linalg::norm2(y), 1e-300);
  const int budget = options.max_iterations > 0
                         ? options.max_iterations
                         : static_cast<int>(options.max_sparsity);

  GreedyResult result;
  result.coefficients = linalg::Vector(n);
  linalg::Vector residual = y;
  std::vector<bool> picked(n, false);

  for (int it = 0; it < budget &&
                   result.support.size() < options.max_sparsity;
       ++it) {
    if (linalg::norm2(residual) <= options.residual_tol * y_norm) break;
    // Pick the column most correlated with the residual.
    const linalg::Vector corr = linalg::multiply_transpose(a, residual);
    std::size_t best = n;
    double best_abs = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (picked[j]) continue;
      const double c = std::abs(corr[j]);
      if (c > best_abs) {
        best_abs = c;
        best = j;
      }
    }
    if (best == n || best_abs == 0.0) break;  // Residual orthogonal to A.
    picked[best] = true;
    result.support.push_back(best);
    restricted_least_squares(a, y, result.support, result.coefficients,
                             residual);
    result.iterations = it + 1;
  }

  result.residual_norm = linalg::norm2(residual);
  result.converged = result.residual_norm <= options.residual_tol * y_norm;
  return result;
}

GreedyResult solve_cosamp(const linalg::Matrix& a, const linalg::Vector& y,
                          const GreedyOptions& options) {
  check_problem(a, y, options);
  const std::size_t n = a.cols();
  const std::size_t k = options.max_sparsity;
  const double y_norm = std::max(linalg::norm2(y), 1e-300);
  const int budget = options.max_iterations > 0
                         ? options.max_iterations
                         : static_cast<int>(3 * k);

  GreedyResult result;
  result.coefficients = linalg::Vector(n);
  linalg::Vector residual = y;
  double prev_residual = linalg::norm2(residual);

  for (int it = 0; it < budget; ++it) {
    if (linalg::norm2(residual) <= options.residual_tol * y_norm) break;
    // Identify the 2k strongest correlations.
    const linalg::Vector corr = linalg::multiply_transpose(a, residual);
    std::vector<std::size_t> order(n);
    for (std::size_t j = 0; j < n; ++j) order[j] = j;
    const std::size_t take = std::min(2 * k, n);
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(take),
                      order.end(), [&corr](std::size_t p, std::size_t q) {
                        return std::abs(corr[p]) > std::abs(corr[q]);
                      });
    // Merge with the current support.
    std::vector<std::size_t> merged(order.begin(),
                                    order.begin() + static_cast<long>(take));
    for (std::size_t j = 0; j < n; ++j) {
      if (result.coefficients[j] != 0.0) merged.push_back(j);
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    // Cap the merged support at m so least squares stays overdetermined.
    if (merged.size() > a.rows()) {
      std::sort(merged.begin(), merged.end(),
                [&corr](std::size_t p, std::size_t q) {
                  return std::abs(corr[p]) > std::abs(corr[q]);
                });
      merged.resize(a.rows());
      std::sort(merged.begin(), merged.end());
    }

    linalg::Vector coeffs;
    linalg::Vector merged_residual;
    restricted_least_squares(a, y, merged, coeffs, merged_residual);

    // Prune to the k largest coefficients.
    std::vector<std::size_t> pruned = merged;
    std::sort(pruned.begin(), pruned.end(),
              [&coeffs](std::size_t p, std::size_t q) {
                return std::abs(coeffs[p]) > std::abs(coeffs[q]);
              });
    if (pruned.size() > k) pruned.resize(k);
    std::sort(pruned.begin(), pruned.end());
    restricted_least_squares(a, y, pruned, result.coefficients, residual);
    result.support = pruned;
    result.iterations = it + 1;

    // Halting: stagnation check.
    const double r = linalg::norm2(residual);
    if (r >= prev_residual * (1.0 - 1e-9)) break;
    prev_residual = r;
  }

  result.residual_norm = linalg::norm2(residual);
  result.converged = result.residual_norm <= options.residual_tol * y_norm;
  return result;
}

}  // namespace csecg::recovery

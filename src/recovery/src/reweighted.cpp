#include "csecg/recovery/reweighted.hpp"

#include <cmath>

#include "csecg/common/check.hpp"

namespace csecg::recovery {

void validate(const ReweightedOptions& options) {
  CSECG_CHECK(options.rounds >= 1, "ReweightedOptions: rounds must be >= 1");
  CSECG_CHECK(options.epsilon >= 0.0,
              "ReweightedOptions: epsilon must be >= 0");
  validate(options.solver);
}

PdhgResult solve_reweighted_bpdn(const linalg::LinearOperator& phi,
                                 const linalg::LinearOperator& psi,
                                 const linalg::Vector& y, double sigma,
                                 const std::optional<BoxConstraint>& box,
                                 const ReweightedOptions& options) {
  validate(options);
  PdhgOptions solver = options.solver;
  solver.coefficient_weights = linalg::Vector();  // Round 1: unweighted.

  PdhgResult result = solve_bpdn(phi, psi, y, sigma, box, solver);
  double epsilon = options.epsilon;
  for (int round = 1; round < options.rounds; ++round) {
    const linalg::Vector coeffs = psi.apply_adjoint(result.x);
    if (epsilon == 0.0) {
      epsilon = 0.1 * std::max(linalg::norm_inf(coeffs), 1e-12);
    }
    linalg::Vector weights(coeffs.size());
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      weights[i] = 1.0 / (std::abs(coeffs[i]) + epsilon);
    }
    // Normalize so the mean weight is 1 (keeps step sizes comparable).
    const double mean_weight = linalg::mean(weights);
    weights *= 1.0 / mean_weight;
    solver.coefficient_weights = weights;
    solver.x0 = result.x;  // Warm start from the previous round.
    result = solve_bpdn(phi, psi, y, sigma, box, solver);
  }
  // Report the unweighted objective for comparability across rounds.
  result.objective = linalg::norm1(psi.apply_adjoint(result.x));
  return result;
}

}  // namespace csecg::recovery

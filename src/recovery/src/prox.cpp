#include "csecg/recovery/prox.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/common/check.hpp"

namespace csecg::recovery {

double soft_threshold(double value, double threshold) noexcept {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

linalg::Vector soft_threshold(const linalg::Vector& v, double threshold) {
  CSECG_CHECK(threshold >= 0.0, "soft_threshold: negative threshold");
  linalg::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = soft_threshold(v[i], threshold);
  }
  return out;
}

linalg::Vector project_l2_ball(const linalg::Vector& v,
                               const linalg::Vector& center, double radius) {
  CSECG_CHECK(v.size() == center.size(),
              "project_l2_ball dimension mismatch");
  CSECG_CHECK(radius >= 0.0, "project_l2_ball: negative radius");
  linalg::Vector diff = v - center;
  const double dist = linalg::norm2(diff);
  if (dist <= radius) return v;
  const double scale = radius / dist;
  linalg::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = center[i] + scale * diff[i];
  }
  return out;
}

linalg::Vector project_box(const linalg::Vector& v,
                           const linalg::Vector& lower,
                           const linalg::Vector& upper) {
  CSECG_CHECK(v.size() == lower.size() && v.size() == upper.size(),
              "project_box dimension mismatch");
  linalg::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    CSECG_CHECK(lower[i] <= upper[i],
                "project_box: empty box at index " << i);
    out[i] = std::clamp(v[i], lower[i], upper[i]);
  }
  return out;
}

}  // namespace csecg::recovery

#include "csecg/recovery/fista.hpp"

#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/span.hpp"
#include "csecg/obs/trace.hpp"
#include "csecg/recovery/prox.hpp"

namespace csecg::recovery {

void validate(const FistaOptions& options) {
  CSECG_CHECK(options.max_iterations > 0,
              "FistaOptions: max_iterations <= 0");
  CSECG_CHECK(options.tol > 0.0, "FistaOptions: tol must be positive");
  CSECG_CHECK(options.lipschitz_hint >= 0.0,
              "FistaOptions: lipschitz_hint must be non-negative");
}

FistaResult solve_lasso_fista(const linalg::LinearOperator& a,
                              const linalg::Vector& y, double lambda,
                              const FistaOptions& options) {
  static obs::Histogram& solve_hist = obs::histogram("solver.fista.solve_ns");
  const obs::Span solve_span(solve_hist);
  obs::TraceScope solve_trace("solver.fista.solve", "solver", "iterations");
  validate(options);
  CSECG_CHECK(lambda > 0.0, "solve_lasso_fista: lambda must be positive");
  CSECG_CHECK(y.size() == a.rows(), "solve_lasso_fista: y has "
                                        << y.size() << " entries, expected "
                                        << a.rows());
  const std::size_t n = a.cols();
  const double lipschitz =
      options.lipschitz_hint > 0.0
          ? options.lipschitz_hint
          : std::pow(linalg::operator_norm_estimate(a, 60), 2);
  CSECG_CHECK(lipschitz > 0.0, "solve_lasso_fista: zero operator");
  const double step = 1.0 / lipschitz;

  linalg::Vector alpha(n);
  linalg::Vector momentum = alpha;  // The extrapolated point.
  double t = 1.0;

  // Per-solve workspaces so the iteration loop is allocation-free.
  linalg::Vector residual(a.rows());
  linalg::Vector grad(n);
  linalg::Vector alpha_new(n);
  linalg::Vector change(n);

  FistaResult result;
  for (int it = 1; it <= options.max_iterations; ++it) {
    // Gradient of the smooth part at the momentum point.
    a.apply_into(momentum, residual);
    residual -= y;
    a.apply_adjoint_into(residual, grad);
    for (std::size_t i = 0; i < n; ++i) {
      alpha_new[i] =
          soft_threshold(momentum[i] - step * grad[i], step * lambda);
    }
    const double t_new = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double beta = (t - 1.0) / t_new;
    for (std::size_t i = 0; i < n; ++i) {
      momentum[i] = alpha_new[i] + beta * (alpha_new[i] - alpha[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      change[i] = alpha_new[i] - alpha[i];
    }
    const double rel_change = linalg::norm2(change) /
                              std::max(linalg::norm2(alpha_new), 1.0);
    std::swap(alpha, alpha_new);
    t = t_new;
    result.iterations = it;
    if (rel_change <= options.tol) {
      result.converged = true;
      break;
    }
  }

  a.apply_into(alpha, residual);
  residual -= y;
  result.objective = 0.5 * linalg::norm2_squared(residual) +
                     lambda * linalg::norm1(alpha);
  result.coefficients = std::move(alpha);

  static obs::Counter& solves = obs::counter("solver.fista.solves");
  static obs::Counter& iterations = obs::counter("solver.fista.iterations");
  static obs::Counter& converged = obs::counter("solver.fista.converged");
  static obs::Counter& non_converged =
      obs::counter("solver.fista.non_converged");
  static obs::Gauge& last_residual = obs::gauge("solver.fista.last_residual");
  solves.add();
  iterations.add(static_cast<std::uint64_t>(result.iterations));
  (result.converged ? converged : non_converged).add();
  last_residual.set(linalg::norm2(residual));
  solve_trace.set_arg(static_cast<std::uint64_t>(result.iterations));
  return result;
}

}  // namespace csecg::recovery

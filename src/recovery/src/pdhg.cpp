#include "csecg/recovery/pdhg.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/span.hpp"
#include "csecg/obs/trace.hpp"
#include "csecg/recovery/prox.hpp"

namespace csecg::recovery {

void validate(const PdhgOptions& options) {
  CSECG_CHECK(options.max_iterations > 0, "PdhgOptions: max_iterations <= 0");
  CSECG_CHECK(options.tol > 0.0, "PdhgOptions: tol must be positive");
  CSECG_CHECK(options.feasibility_tol > 0.0,
              "PdhgOptions: feasibility_tol must be positive");
  CSECG_CHECK(options.check_every > 0, "PdhgOptions: check_every <= 0");
  CSECG_CHECK(options.theta >= 0.0 && options.theta <= 1.0,
              "PdhgOptions: theta must be in [0, 1]");
  CSECG_CHECK(options.step_safety > 0.0 && options.step_safety < 1.0,
              "PdhgOptions: step_safety must be in (0, 1)");
  CSECG_CHECK(options.dual_primal_ratio > 0.0,
              "PdhgOptions: dual_primal_ratio must be positive");
  CSECG_CHECK(options.phi_norm_hint >= 0.0,
              "PdhgOptions: phi_norm_hint must be non-negative");
  for (double w : options.coefficient_weights) {
    CSECG_CHECK(w >= 0.0, "PdhgOptions: coefficient weights must be >= 0");
  }
}

PdhgResult solve_bpdn(const linalg::LinearOperator& phi,
                      const linalg::LinearOperator& psi,
                      const linalg::Vector& y, double sigma,
                      const std::optional<BoxConstraint>& box,
                      const PdhgOptions& options) {
  static obs::Histogram& solve_hist = obs::histogram("solver.pdhg.solve_ns");
  const obs::Span solve_span(solve_hist);
  obs::TraceScope solve_trace("solver.pdhg.solve", "solver", "iterations");
  validate(options);
  const std::size_t m = phi.rows();
  const std::size_t n = phi.cols();
  CSECG_CHECK(psi.rows() == n && psi.cols() == n,
              "solve_bpdn: psi must be n x n with n = " << n);
  CSECG_CHECK(y.size() == m, "solve_bpdn: y has " << y.size()
                                                  << " entries, expected "
                                                  << m);
  CSECG_CHECK(sigma >= 0.0, "solve_bpdn: sigma must be non-negative");
  if (box) {
    CSECG_CHECK(box->lower.size() == n && box->upper.size() == n,
                "solve_bpdn: box dimension mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      CSECG_CHECK(box->lower[i] <= box->upper[i],
                  "solve_bpdn: empty box at sample " << i);
    }
  }
  const bool weighted = !options.coefficient_weights.empty();
  if (weighted) {
    CSECG_CHECK(options.coefficient_weights.size() == n,
                "solve_bpdn: coefficient_weights must have length " << n);
  }

  // Operator norm of K = [Φ; I] (or Φ alone without the box block).
  const double phi_norm = options.phi_norm_hint > 0.0
                              ? options.phi_norm_hint
                              : linalg::operator_norm_estimate(phi, 60);
  const double k_norm =
      box ? std::sqrt(phi_norm * phi_norm + 1.0) : std::max(phi_norm, 1e-12);
  const double ratio_sqrt = std::sqrt(options.dual_primal_ratio);
  const double tau = options.step_safety / (k_norm * ratio_sqrt);
  const double sigma_d = options.step_safety * ratio_sqrt / k_norm;

  // Warm start: caller-provided, else box midpoint (already nearly
  // feasible), else zero.
  linalg::Vector x(n);
  if (!options.x0.empty()) {
    CSECG_CHECK(options.x0.size() == n,
                "solve_bpdn: x0 has " << options.x0.size()
                                      << " entries, expected " << n);
    x = options.x0;
  } else if (box) {
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = 0.5 * (box->lower[i] + box->upper[i]);
    }
  }
  linalg::Vector x_bar = x;
  linalg::Vector q1(m);
  linalg::Vector q2(box ? n : 0);

  // Per-solve workspaces, reused every iteration so the loop itself is
  // allocation-free (the operators' *_into paths write in place).
  linalg::Vector w_m(m);       // σ_d·Φx̄ + q1.
  linalg::Vector scaled_m(m);  // w_m / σ_d (the point to project).
  linalg::Vector diff_m(m);    // scaled_m − y.
  linalg::Vector grad(n);      // Φᵀq1 [+ q2].
  linalg::Vector x_new(n);
  linalg::Vector coeffs(n);
  linalg::Vector check_diff(n);

  const double y_scale = std::max(linalg::norm2(y), 1.0);
  double box_scale = 1.0;
  if (box) {
    double w = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      w = std::max(w, box->upper[i] - box->lower[i]);
    }
    box_scale = std::max(w, 1e-12);
  }

  PdhgResult result;
  linalg::Vector x_prev_check = x;

  for (int it = 1; it <= options.max_iterations; ++it) {
    // Dual ascent on the ball block: q1 += σ_d·Φx̄ then Moreau.
    {
      phi.apply_into(x_bar, w_m);
      for (std::size_t i = 0; i < m; ++i) w_m[i] = w_m[i] * sigma_d + q1[i];
      for (std::size_t i = 0; i < m; ++i) scaled_m[i] = w_m[i] / sigma_d;
      // project_l2_ball(scaled_m, y, sigma), in place.
      for (std::size_t i = 0; i < m; ++i) diff_m[i] = scaled_m[i] - y[i];
      const double dist = linalg::norm2(diff_m);
      if (dist <= sigma) {
        for (std::size_t i = 0; i < m; ++i) {
          q1[i] = w_m[i] - sigma_d * scaled_m[i];
        }
      } else {
        const double scale = sigma / dist;
        for (std::size_t i = 0; i < m; ++i) {
          q1[i] = w_m[i] - sigma_d * (y[i] + scale * diff_m[i]);
        }
      }
    }
    // Dual ascent on the box block.
    if (box) {
      for (std::size_t i = 0; i < n; ++i) {
        const double v = q2[i] + sigma_d * x_bar[i];
        const double proj =
            std::clamp(v / sigma_d, box->lower[i], box->upper[i]);
        q2[i] = v - sigma_d * proj;
      }
    }
    // Primal descent: x ← prox_{τ‖Ψᵀ·‖₁}(x − τ·Kᵀq).
    phi.apply_adjoint_into(q1, grad);
    if (box) grad += q2;
    for (std::size_t i = 0; i < n; ++i) x_new[i] = x[i] - tau * grad[i];
    {
      psi.apply_adjoint_into(x_new, coeffs);
      for (std::size_t i = 0; i < n; ++i) {
        const double threshold =
            weighted ? tau * options.coefficient_weights[i] : tau;
        coeffs[i] = soft_threshold(coeffs[i], threshold);
      }
      psi.apply_into(coeffs, x_new);
    }
    // Extrapolation, then adopt x_new as x (swap: x's old storage becomes
    // next iteration's x_new scratch).
    for (std::size_t i = 0; i < n; ++i) {
      x_bar[i] = x_new[i] + options.theta * (x_new[i] - x[i]);
    }
    std::swap(x, x_new);
    result.iterations = it;

    if (it % options.check_every == 0 || it == options.max_iterations) {
      obs::trace_instant("solver.pdhg.check", "solver", "iteration",
                         static_cast<std::uint64_t>(it));
      for (std::size_t i = 0; i < n; ++i) {
        check_diff[i] = x[i] - x_prev_check[i];
      }
      const double dx = linalg::norm2(check_diff);
      const double rel_change = dx / std::max(linalg::norm2(x), 1.0);
      x_prev_check = x;

      phi.apply_into(x, w_m);
      for (std::size_t i = 0; i < m; ++i) w_m[i] -= y[i];
      const double ball_viol =
          std::max(0.0, linalg::norm2(w_m) - sigma);
      double box_viol = 0.0;
      if (box) {
        for (std::size_t i = 0; i < n; ++i) {
          box_viol = std::max(box_viol, box->lower[i] - x[i]);
          box_viol = std::max(box_viol, x[i] - box->upper[i]);
        }
        box_viol = std::max(box_viol, 0.0);
      }
      result.ball_violation = ball_viol;
      result.box_violation = box_viol;
      const bool feasible =
          ball_viol <= options.feasibility_tol * y_scale &&
          box_viol <= options.feasibility_tol * box_scale;
      if (rel_change <= options.tol && feasible) {
        result.converged = true;
        break;
      }
    }
  }

  result.objective = linalg::norm1(psi.apply_adjoint(x));
  result.x = std::move(x);

  static obs::Counter& solves = obs::counter("solver.pdhg.solves");
  static obs::Counter& iterations = obs::counter("solver.pdhg.iterations");
  static obs::Counter& converged = obs::counter("solver.pdhg.converged");
  static obs::Counter& non_converged =
      obs::counter("solver.pdhg.non_converged");
  static obs::Gauge& last_residual = obs::gauge("solver.pdhg.last_residual");
  static obs::Gauge& last_epsilon = obs::gauge("solver.pdhg.last_epsilon");
  solves.add();
  iterations.add(static_cast<std::uint64_t>(result.iterations));
  (result.converged ? converged : non_converged).add();
  last_residual.set(result.ball_violation);
  last_epsilon.set(sigma);
  solve_trace.set_arg(static_cast<std::uint64_t>(result.iterations));
  return result;
}

}  // namespace csecg::recovery

#include "csecg/recovery/admm.hpp"

#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/linalg/solve.hpp"
#include "csecg/recovery/prox.hpp"

namespace csecg::recovery {

void validate(const AdmmOptions& options) {
  CSECG_CHECK(options.max_iterations > 0, "AdmmOptions: max_iterations <= 0");
  CSECG_CHECK(options.rho > 0.0, "AdmmOptions: rho must be positive");
  CSECG_CHECK(options.abs_tol > 0.0 && options.rel_tol > 0.0,
              "AdmmOptions: tolerances must be positive");
}

AdmmResult solve_lasso_admm(const linalg::Matrix& a, const linalg::Vector& y,
                            double lambda, const AdmmOptions& options) {
  validate(options);
  CSECG_CHECK(lambda > 0.0, "solve_lasso_admm: lambda must be positive");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  CSECG_CHECK(m > 0 && n > 0, "solve_lasso_admm: empty matrix");
  CSECG_CHECK(m <= n, "solve_lasso_admm expects a fat matrix (m <= n), got "
                          << m << "x" << n);
  CSECG_CHECK(y.size() == m, "solve_lasso_admm: y dimension mismatch");

  const double rho = options.rho;
  // Woodbury: (AᵀA + ρI)⁻¹ v = (v − Aᵀ(ρI + AAᵀ)⁻¹ A v)/ρ.
  linalg::Matrix gram_small(m, m);  // AAᵀ + ρI.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      double acc = 0.0;
      const double* ri = a.row(i);
      const double* rj = a.row(j);
      for (std::size_t k = 0; k < n; ++k) acc += ri[k] * rj[k];
      gram_small(i, j) = acc;
      gram_small(j, i) = acc;
    }
    gram_small(i, i) += rho;
  }
  const linalg::Cholesky chol(gram_small);
  const linalg::Vector aty = linalg::multiply_transpose(a, y);

  auto apply_inverse = [&](const linalg::Vector& v) {
    const linalg::Vector av = linalg::multiply(a, v);
    const linalg::Vector small = chol.solve(av);
    linalg::Vector out = v - linalg::multiply_transpose(a, small);
    out *= 1.0 / rho;
    return out;
  };

  linalg::Vector alpha(n);
  linalg::Vector z(n);
  linalg::Vector u(n);  // Scaled dual.

  AdmmResult result;
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  for (int it = 1; it <= options.max_iterations; ++it) {
    // α-update: (AᵀA + ρI)α = Aᵀy + ρ(z − u).
    linalg::Vector rhs = aty;
    for (std::size_t i = 0; i < n; ++i) rhs[i] += rho * (z[i] - u[i]);
    alpha = apply_inverse(rhs);
    // z-update: soft threshold.
    linalg::Vector z_prev = z;
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = soft_threshold(alpha[i] + u[i], lambda / rho);
    }
    // Dual update.
    for (std::size_t i = 0; i < n; ++i) u[i] += alpha[i] - z[i];

    const double primal = linalg::norm2(alpha - z);
    const double dual = rho * linalg::norm2(z - z_prev);
    result.iterations = it;
    result.primal_residual = primal;
    result.dual_residual = dual;
    const double primal_eps =
        sqrt_n * options.abs_tol +
        options.rel_tol * std::max(linalg::norm2(alpha), linalg::norm2(z));
    const double dual_eps =
        sqrt_n * options.abs_tol + options.rel_tol * rho * linalg::norm2(u);
    if (primal <= primal_eps && dual <= dual_eps) {
      result.converged = true;
      break;
    }
  }

  const linalg::Vector residual = linalg::multiply(a, z) - y;
  result.objective =
      0.5 * linalg::norm2_squared(residual) + lambda * linalg::norm1(z);
  result.coefficients = std::move(z);
  return result;
}

}  // namespace csecg::recovery

// Greedy sparse recovery: OMP and CoSaMP.
//
// Classical pursuit baselines over a dense dictionary A (m×n, m ≤ n).
// The paper's introduction cites model-based / structured recovery as the
// other road to fewer measurements; these greedy solvers bound what plain
// support-pursuit achieves on the same windows (ablation bench).
#pragma once

#include <cstddef>
#include <vector>

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::recovery {

/// Greedy-solver options.
struct GreedyOptions {
  std::size_t max_sparsity = 64;     ///< Support-size budget k.
  double residual_tol = 1e-9;        ///< Stop when ‖r‖₂ ≤ tol·‖y‖₂.
  int max_iterations = 0;            ///< 0 = defaults (k for OMP, 3k CoSaMP).
};

/// Validates GreedyOptions; throws std::invalid_argument on nonsense.
void validate(const GreedyOptions& options);

/// Greedy-solver outcome.
struct GreedyResult {
  linalg::Vector coefficients;     ///< Recovered α (exactly sparse).
  std::vector<std::size_t> support;  ///< Selected columns, in pick order.
  int iterations = 0;
  double residual_norm = 0.0;      ///< ‖y − Aα‖₂ at exit.
  bool converged = false;          ///< Residual tolerance reached.
};

/// Orthogonal Matching Pursuit: one column per iteration, full
/// least-squares refit on the grown support.
GreedyResult solve_omp(const linalg::Matrix& a, const linalg::Vector& y,
                       const GreedyOptions& options = {});

/// CoSaMP (Needell & Tropp): 2k-candidate merge, least-squares, prune to k.
GreedyResult solve_cosamp(const linalg::Matrix& a, const linalg::Vector& y,
                          const GreedyOptions& options = {});

}  // namespace csecg::recovery

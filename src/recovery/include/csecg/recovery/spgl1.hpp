// SPGL1-style Pareto root-finding for basis pursuit denoise.
//
// Van den Berg & Friedlander (SIAM J. Sci. Comput. 2008) solve the
// σ-constrained BPDN by Newton root-finding on the Pareto curve
// φ(τ) = ‖A·α_τ − y‖₂ of the LASSO-constrained subproblem
//
//   α_τ = argmin ‖Aα − y‖₂   s.t.  ‖α‖₁ ≤ τ,
//
// using φ'(τ) = −‖Aᵀr‖∞ / ‖r‖₂.  Each subproblem is solved by projected
// gradient descent onto the ℓ1 ball.  This is the third independent road
// to the paper's "normal CS" decoder (after PDHG and the LASSO-λ
// solvers): same optimum, very different mechanics — a strong
// cross-validation target for the solver ablation.
#pragma once

#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::recovery {

/// Euclidean projection onto the ℓ1 ball of the given radius (Duchi et
/// al. 2008, O(n log n) sort-based).  radius must be ≥ 0.
linalg::Vector project_l1_ball(const linalg::Vector& v, double radius);

/// SPGL1 options.
struct Spgl1Options {
  int max_root_iterations = 12;   ///< Newton steps on the Pareto curve.
  int max_inner_iterations = 300; ///< Projected-gradient steps per τ.
  double inner_tol = 1e-7;        ///< Relative α-change tolerance.
  double root_tol = 1e-3;         ///< |φ(τ) − σ| / max(‖y‖,1) tolerance.
};

/// Validates Spgl1Options; throws std::invalid_argument on nonsense.
void validate(const Spgl1Options& options);

/// SPGL1 outcome.
struct Spgl1Result {
  linalg::Vector coefficients;  ///< Recovered α.
  double tau = 0.0;             ///< Final ℓ1 radius on the Pareto curve.
  double residual_norm = 0.0;   ///< φ(τ) at exit.
  int root_iterations = 0;
  int total_inner_iterations = 0;
  bool converged = false;       ///< |φ(τ) − σ| within tolerance.
};

/// Solves min ‖α‖₁ s.t. ‖Aα − y‖₂ ≤ σ by Pareto root-finding.
/// σ must satisfy 0 ≤ σ < ‖y‖₂ (otherwise α = 0 is the trivial answer,
/// which is returned with converged = true).
Spgl1Result solve_bpdn_spgl1(const linalg::LinearOperator& a,
                             const linalg::Vector& y, double sigma,
                             const Spgl1Options& options = {});

}  // namespace csecg::recovery

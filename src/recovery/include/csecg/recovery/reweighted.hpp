// Iteratively reweighted ℓ1 (Candès–Wakin–Boyd 2008).
//
// Enhances BPDN by alternating: solve the weighted problem, then set
// wᵢ = 1/(|αᵢ| + ε) so established coefficients stop paying ℓ1 rent.
// In the paper's framing this is a *software* route to fewer measurements
// (better recovery per measurement); the hybrid's low-resolution channel
// is the *hardware* route — the ablate_reweighted bench puts them side by
// side on ECG windows.
#pragma once

#include <optional>

#include "csecg/recovery/pdhg.hpp"

namespace csecg::recovery {

/// Reweighting options.
struct ReweightedOptions {
  int rounds = 3;        ///< Reweighting rounds (1 = plain BPDN).
  double epsilon = 0.0;  ///< Weight damping; 0 = auto (0.1·max|α| of the
                         ///< first round, the reference heuristic).
  PdhgOptions solver;    ///< Inner-solve options.
};

/// Validates ReweightedOptions; throws std::invalid_argument on nonsense.
void validate(const ReweightedOptions& options);

/// Solves min Σ wᵢ|（Ψᵀx)ᵢ| s.t. ‖Φx−y‖ ≤ σ [, box] with iteratively
/// refined weights.  Returns the final round's PdhgResult; `objective` is
/// the *unweighted* ‖Ψᵀx‖₁ for comparability.
PdhgResult solve_reweighted_bpdn(
    const linalg::LinearOperator& phi, const linalg::LinearOperator& psi,
    const linalg::Vector& y, double sigma,
    const std::optional<BoxConstraint>& box = std::nullopt,
    const ReweightedOptions& options = {});

}  // namespace csecg::recovery

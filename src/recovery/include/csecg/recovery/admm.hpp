// ADMM for the synthesis-form LASSO with a dense measurement matrix.
//
//   min_α  ½‖Aα − y‖₂² + λ‖α‖₁
//
// Splitting α/z with the classic scaled-dual ADMM.  The α-update solves
// (AᵀA + ρI)α = Aᵀy + ρ(z − u); for the fat matrices of CS (m ≪ n) the
// inverse is applied through the Woodbury identity using one m×m Cholesky
// factored at setup, so each iteration costs two gemv's.  Second solver
// baseline for the ablation bench (same optimum as FISTA, different path).
#pragma once

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::recovery {

/// ADMM options.
struct AdmmOptions {
  int max_iterations = 500;
  double rho = 1.0;            ///< Augmented-Lagrangian penalty.
  double abs_tol = 1e-6;       ///< Absolute primal/dual residual floor.
  double rel_tol = 1e-5;       ///< Relative residual tolerance.
};

/// Validates AdmmOptions; throws std::invalid_argument on nonsense.
void validate(const AdmmOptions& options);

/// ADMM outcome.
struct AdmmResult {
  linalg::Vector coefficients;  ///< Recovered α (the z iterate: sparse).
  int iterations = 0;
  bool converged = false;
  double objective = 0.0;
  double primal_residual = 0.0;  ///< ‖α − z‖₂ at exit.
  double dual_residual = 0.0;    ///< ρ‖z − z_prev‖₂ at exit.
};

/// Runs ADMM on min ½‖Aα−y‖² + λ‖α‖₁ with a dense A (m ≤ n enforced).
AdmmResult solve_lasso_admm(const linalg::Matrix& a, const linalg::Vector& y,
                            double lambda, const AdmmOptions& options = {});

}  // namespace csecg::recovery

// Model-based (structured) sparse recovery.
//
// The paper's introduction points at "model-based and similar structural
// sparse recovery techniques" (Baraniuk et al., IEEE TIT 2010; the
// authors' own BioCAS'11 comparison) as the other way to shrink the
// measurement count.  This module implements the two classic structured
// models for wavelet-sparse signals:
//
//  * BlockModel — coefficients live in contiguous blocks (QRS complexes
//    excite bursts of neighbouring wavelet coefficients).  Model-CoSaMP
//    replaces per-coefficient selection with per-block selection.
//  * TreeModel — significant wavelet coefficients form a rooted subtree
//    of the dyadic parent/child pyramid.  tree_project() computes a
//    greedy ancestor-closed approximation used by tree-structured CoSaMP.
//
// The ablate_structured bench compares both against plain pursuit on real
// ECG windows.
#pragma once

#include <cstddef>
#include <vector>

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/vector.hpp"
#include "csecg/recovery/greedy.hpp"

namespace csecg::recovery {

/// Contiguous-block structured-sparsity model.
struct BlockModel {
  std::size_t block_size = 4;  ///< Coefficients per block (must divide n).
};

/// Validates a BlockModel for a signal length; throws on nonsense.
void validate(const BlockModel& model, std::size_t n);

/// Keeps the k blocks with the largest ℓ2 energy, zeroing the rest.
linalg::Vector block_project(const linalg::Vector& coeffs,
                             const BlockModel& model, std::size_t k_blocks);

/// Indices of the k highest-energy blocks' coefficients (sorted).
std::vector<std::size_t> block_support(const linalg::Vector& coeffs,
                                       const BlockModel& model,
                                       std::size_t k_blocks);

/// Dyadic wavelet tree for the pyramid coefficient layout produced by
/// csecg::dsp::Dwt: [approx | detail_L | ... | detail_1].
struct TreeModel {
  std::size_t n = 0;   ///< Total coefficients (power-of-two multiple).
  int levels = 0;      ///< Decomposition levels.

  /// Parent index of coefficient i, or npos for roots (approx band and
  /// the coarsest detail band).
  std::size_t parent(std::size_t i) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Validates a TreeModel; throws std::invalid_argument on nonsense.
void validate(const TreeModel& model);

/// Greedy ancestor-closed k-sparse approximation: picks coefficients in
/// descending magnitude, adding every not-yet-selected ancestor with it,
/// until the budget k is met (possibly slightly exceeded by one closure).
/// The result is always a rooted subtree of the wavelet pyramid.
linalg::Vector tree_project(const linalg::Vector& coeffs,
                            const TreeModel& model, std::size_t k);

/// CoSaMP with a block model: identification takes the 2k best blocks of
/// the proxy, pruning keeps the k best blocks of the least-squares fit.
GreedyResult solve_block_cosamp(const linalg::Matrix& a,
                                const linalg::Vector& y,
                                const BlockModel& model,
                                std::size_t k_blocks,
                                const GreedyOptions& options = {});

}  // namespace csecg::recovery

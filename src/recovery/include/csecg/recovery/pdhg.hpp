// Primal-dual (Chambolle–Pock / PDHG) solver for the paper's problem (1).
//
// The paper solves, with SDPT3,
//
//   min ‖α‖₁  s.t.  ‖ΦΨα − y‖₂ ≤ σ,   ẋ ≤ Ψα ≤ ẋ + d            (1)
//
// With an *orthonormal* Ψ this is equivalent, through x = Ψα, to the
// analysis form
//
//   min ‖Ψᵀx‖₁  s.t.  ‖Φx − y‖₂ ≤ σ,   l ≤ x ≤ u
//
// which PDHG handles with only Φ/Φᵀ and Ψ/Ψᵀ products: write it as
// G(x) + F(Kx) with G = ‖Ψᵀ·‖₁ (prox = Ψ∘soft∘Ψᵀ), K = [Φ; I], and
// F(q₁,q₂) = δ_ball(q₁) + δ_box(q₂) (prox of F* by Moreau).  Dropping the
// box block gives the "normal CS" baseline of Fig. 7/8 — the same
// constrained basis-pursuit-denoise the paper's non-hybrid decoder solves.
#pragma once

#include <optional>

#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::recovery {

/// Optional per-sample box constraint l ≤ x ≤ u.
struct BoxConstraint {
  linalg::Vector lower;
  linalg::Vector upper;
};

/// PDHG options.
struct PdhgOptions {
  int max_iterations = 2000;
  /// Relative x-change stopping tolerance.
  double tol = 1e-6;
  /// Allowed constraint violation at exit, relative to ‖y‖ (ball) and to
  /// the box width (box).
  double feasibility_tol = 1e-4;
  /// Check convergence every this many iterations.
  int check_every = 10;
  /// Over-relaxation θ (1 = plain CP).
  double theta = 1.0;
  /// Safety factor on the 1/‖K‖ step sizes.
  double step_safety = 0.99;
  /// Ratio σ_dual/τ_primal (1 = balanced); tuning knob only.
  double dual_primal_ratio = 1.0;
  /// Known ‖Φ‖₂, to skip the internal power iteration when the caller
  /// reuses one sensing operator across many solves.  0 = estimate.
  double phi_norm_hint = 0.0;
  /// Optional warm start for the primal variable (empty = default start:
  /// box midpoint when a box is given, zero otherwise).  A measurement-
  /// consistent start such as the least-norm solution Φᵀ(ΦΦᵀ)⁻¹y cuts the
  /// iteration count dramatically for the unconstrained baseline.
  linalg::Vector x0;
  /// Optional per-coefficient ℓ1 weights (empty = all ones): the objective
  /// becomes Σᵢ wᵢ·|（Ψᵀx)ᵢ|.  Used by the reweighted-ℓ1 wrapper.
  linalg::Vector coefficient_weights;
};

/// Validates PdhgOptions; throws std::invalid_argument on nonsense.
void validate(const PdhgOptions& options);

/// Solver outcome.
struct PdhgResult {
  linalg::Vector x;        ///< Recovered sample-domain signal.
  int iterations = 0;
  bool converged = false;  ///< Tolerances met before the iteration cap.
  double objective = 0.0;  ///< ‖Ψᵀx‖₁ at exit.
  double ball_violation = 0.0;  ///< max(0, ‖Φx−y‖₂ − σ) at exit.
  double box_violation = 0.0;   ///< max over samples of box violation.
};

/// Solves   min ‖Ψᵀx‖₁  s.t. ‖Φx−y‖₂ ≤ σ  [and l ≤ x ≤ u if box given].
///
/// `phi` is the m×n measurement operator, `psi` the n×n orthonormal
/// synthesis operator (apply = Ψ, apply_adjoint = Ψᵀ), `sigma` the fidelity
/// radius (≥ 0).  The box, when present, must have matching dimensions and
/// non-empty cells.  Throws std::invalid_argument on dimension errors.
PdhgResult solve_bpdn(const linalg::LinearOperator& phi,
                      const linalg::LinearOperator& psi,
                      const linalg::Vector& y, double sigma,
                      const std::optional<BoxConstraint>& box = std::nullopt,
                      const PdhgOptions& options = {});

}  // namespace csecg::recovery

// FISTA for the synthesis-form LASSO.
//
//   min_α  ½‖Aα − y‖₂² + λ‖α‖₁,     A = ΦΨ
//
// The accelerated proximal-gradient baseline: O(1/k²) objective decay with
// only A/Aᵀ products.  Used as an unconstrained baseline and for the
// solver-ablation bench; the paper's own decoders are the constrained
// forms in pdhg.hpp.
#pragma once

#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::recovery {

/// FISTA options.
struct FistaOptions {
  int max_iterations = 500;
  double tol = 1e-8;        ///< Relative α-change stopping tolerance.
  double lipschitz_hint = 0.0;  ///< Known ‖A‖² (0 = estimate).
};

/// Validates FistaOptions; throws std::invalid_argument on nonsense.
void validate(const FistaOptions& options);

/// FISTA outcome.
struct FistaResult {
  linalg::Vector coefficients;  ///< Recovered α.
  int iterations = 0;
  bool converged = false;
  double objective = 0.0;  ///< ½‖Aα−y‖² + λ‖α‖₁ at exit.
};

/// Runs FISTA on min ½‖Aα−y‖² + λ‖α‖₁.  λ must be positive.
FistaResult solve_lasso_fista(const linalg::LinearOperator& a,
                              const linalg::Vector& y, double lambda,
                              const FistaOptions& options = {});

}  // namespace csecg::recovery

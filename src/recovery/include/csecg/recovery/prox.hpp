// Proximal operators and projections used by the first-order solvers.
#pragma once

#include "csecg/linalg/vector.hpp"

namespace csecg::recovery {

/// Scalar soft-thresholding: sign(v)·max(|v| − threshold, 0).
double soft_threshold(double value, double threshold) noexcept;

/// Element-wise soft-thresholding (prox of threshold·‖·‖₁).
linalg::Vector soft_threshold(const linalg::Vector& v, double threshold);

/// Projection onto the ℓ2 ball of given radius centered at `center`:
/// argmin_{‖z−center‖≤radius} ‖z−v‖.  radius must be ≥ 0.
linalg::Vector project_l2_ball(const linalg::Vector& v,
                               const linalg::Vector& center, double radius);

/// Projection onto the box [lower, upper] element-wise.  Dimensions must
/// match and lower ≤ upper element-wise (validated).
linalg::Vector project_box(const linalg::Vector& v,
                           const linalg::Vector& lower,
                           const linalg::Vector& upper);

}  // namespace csecg::recovery

#include "csecg/power/node_energy.hpp"

#include "csecg/common/check.hpp"

namespace csecg::power {
namespace {

NodeEnergy assemble(double analog_watts, const NodeEnergyParams& node,
                    std::size_t air_bits, double window_seconds) {
  CSECG_CHECK(window_seconds > 0.0,
              "window_energy: window duration must be positive");
  NodeEnergy out;
  out.analog = analog_watts * window_seconds;
  out.radio = static_cast<double>(air_bits) * node.radio_nj_per_bit * 1e-9;
  out.digital =
      static_cast<double>(air_bits) * node.mcu_nj_per_coded_bit * 1e-9;
  return out;
}

}  // namespace

void validate(const NodeEnergyParams& params) {
  CSECG_CHECK(params.radio_nj_per_bit >= 0.0 &&
                  params.mcu_nj_per_coded_bit >= 0.0 &&
                  params.radio_rx_nj_per_bit >= 0.0,
              "NodeEnergyParams: energies must be non-negative");
}

NodeEnergy window_energy(const HybridDesign& design,
                         const TechnologyParams& tech,
                         const NodeEnergyParams& node,
                         std::size_t air_bits, double window_seconds) {
  validate(node);
  return assemble(hybrid_power(design, tech).total(), node, air_bits,
                  window_seconds);
}

NodeEnergy window_energy(const RmpiDesign& design,
                         const TechnologyParams& tech,
                         const NodeEnergyParams& node,
                         std::size_t air_bits, double window_seconds) {
  validate(node);
  return assemble(rmpi_power(design, tech).total(), node, air_bits,
                  window_seconds);
}

namespace {

NodeEnergy assemble_link(double analog_watts, const NodeEnergyParams& node,
                         std::size_t tx_bits, std::size_t rx_bits,
                         double window_seconds) {
  NodeEnergy out = assemble(analog_watts, node, tx_bits, window_seconds);
  out.radio +=
      static_cast<double>(rx_bits) * node.radio_rx_nj_per_bit * 1e-9;
  return out;
}

}  // namespace

NodeEnergy link_window_energy(const HybridDesign& design,
                              const TechnologyParams& tech,
                              const NodeEnergyParams& node,
                              std::size_t tx_bits, std::size_t rx_bits,
                              double window_seconds) {
  validate(node);
  return assemble_link(hybrid_power(design, tech).total(), node, tx_bits,
                       rx_bits, window_seconds);
}

NodeEnergy link_window_energy(const RmpiDesign& design,
                              const TechnologyParams& tech,
                              const NodeEnergyParams& node,
                              std::size_t tx_bits, std::size_t rx_bits,
                              double window_seconds) {
  validate(node);
  return assemble_link(rmpi_power(design, tech).total(), node, tx_bits,
                       rx_bits, window_seconds);
}

double average_power(const NodeEnergy& energy, double window_seconds) {
  CSECG_CHECK(window_seconds > 0.0,
              "average_power: window duration must be positive");
  return energy.total() / window_seconds;
}

}  // namespace csecg::power

#include "csecg/power/models.hpp"

#include <cmath>
#include <numbers>

#include "csecg/common/check.hpp"

namespace csecg::power {
namespace {

constexpr double kBoltzmann = 1.380649e-23;      // J/K.
constexpr double kElectronCharge = 1.602176634e-19;  // C.

}  // namespace

void validate(const TechnologyParams& params) {
  CSECG_CHECK(params.fom_j_per_conv > 0.0,
              "TechnologyParams: FOM must be positive");
  CSECG_CHECK(params.vdd > 0.0, "TechnologyParams: VDD must be positive");
  CSECG_CHECK(params.nef > 0.0, "TechnologyParams: NEF must be positive");
  CSECG_CHECK(params.temperature_k > 0.0,
              "TechnologyParams: temperature must be positive");
  CSECG_CHECK(params.cp_farad > 0.0,
              "TechnologyParams: Cp must be positive");
  CSECG_CHECK(params.gain_db > 0.0,
              "TechnologyParams: gain must be positive");
}

void validate(const RmpiDesign& design) {
  CSECG_CHECK(design.channels > 0, "RmpiDesign: channels must be positive");
  CSECG_CHECK(design.window > 0, "RmpiDesign: window must be positive");
  CSECG_CHECK(design.channels <= design.window,
              "RmpiDesign: more channels than window samples");
  CSECG_CHECK(design.adc_bits >= 1 && design.adc_bits <= 24,
              "RmpiDesign: adc_bits out of range");
  CSECG_CHECK(design.amp_output_bits >= 1 && design.amp_output_bits <= 24,
              "RmpiDesign: amp_output_bits out of range");
  CSECG_CHECK(design.nyquist_hz > 0.0,
              "RmpiDesign: nyquist_hz must be positive");
}

void validate(const HybridDesign& design) {
  validate(design.cs_path);
  CSECG_CHECK(design.lowres_bits >= 1 && design.lowres_bits <= 24,
              "HybridDesign: lowres_bits out of range");
}

double adc_power(std::size_t channels, std::size_t window, int adc_bits,
                 double nyquist_hz, const TechnologyParams& params) {
  validate(params);
  CSECG_CHECK(channels > 0 && window > 0 && nyquist_hz > 0.0,
              "adc_power: invalid design point");
  // Eq. 4: each of the m ADCs converts once per n-sample window.
  const double conversions_per_second =
      static_cast<double>(channels) / static_cast<double>(window) *
      nyquist_hz;
  return conversions_per_second * params.fom_j_per_conv *
         std::pow(2.0, adc_bits);
}

double integrator_power(std::size_t channels, std::size_t window,
                        double nyquist_hz, const TechnologyParams& params) {
  validate(params);
  CSECG_CHECK(channels > 0 && window > 0 && nyquist_hz > 0.0,
              "integrator_power: invalid design point");
  // Eq. 5 with BW_f = fs/2.
  const double bw = nyquist_hz / 2.0;
  return 2.0 * bw * static_cast<double>(channels) * params.vdd * params.vdd *
         10.0 * std::numbers::pi * static_cast<double>(window) *
         params.cp_farad / 16.0;
}

double amplifier_power(std::size_t channels, std::size_t window,
                       int amp_output_bits, double nyquist_hz,
                       const TechnologyParams& params) {
  validate(params);
  CSECG_CHECK(channels > 0 && window > 0 && nyquist_hz > 0.0,
              "amplifier_power: invalid design point");
  // Eq. 9 with BW = fs/2.
  const double bw = nyquist_hz / 2.0;
  const double gain_linear = std::pow(10.0, params.gain_db / 20.0);
  const double kt = kBoltzmann * params.temperature_k;
  return 2.0 * bw * 3.0 * static_cast<double>(channels) *
         static_cast<double>(window) *
         std::pow(2.0, 2.0 * amp_output_bits) *
         (gain_linear * gain_linear * params.nef * params.nef / params.vdd) *
         std::numbers::pi * kt * kt / kElectronCharge;
}

PowerBreakdown rmpi_power(const RmpiDesign& design,
                          const TechnologyParams& params) {
  validate(design);
  PowerBreakdown out;
  out.adc = adc_power(design.channels, design.window, design.adc_bits,
                      design.nyquist_hz, params);
  out.integrator = integrator_power(design.channels, design.window,
                                    design.nyquist_hz, params);
  out.amplifier =
      amplifier_power(design.channels, design.window, design.amp_output_bits,
                      design.nyquist_hz, params);
  return out;
}

double lowres_adc_power(int bits, double nyquist_hz,
                        const TechnologyParams& params) {
  validate(params);
  CSECG_CHECK(bits >= 1 && bits <= 24, "lowres_adc_power: bits out of range");
  CSECG_CHECK(nyquist_hz > 0.0, "lowres_adc_power: fs must be positive");
  // One conversion per Nyquist sample.
  return nyquist_hz * params.fom_j_per_conv * std::pow(2.0, bits);
}

HybridPowerBreakdown hybrid_power(const HybridDesign& design,
                                  const TechnologyParams& params) {
  validate(design);
  HybridPowerBreakdown out;
  out.cs = rmpi_power(design.cs_path, params);
  out.lowres_adc = lowres_adc_power(design.lowres_bits,
                                    design.cs_path.nyquist_hz, params);
  return out;
}

std::vector<SweepPoint> frequency_sweep(const RmpiDesign& design,
                                        const TechnologyParams& params,
                                        double f_lo_hz, double f_hi_hz,
                                        int points) {
  validate(design);
  CSECG_CHECK(f_lo_hz > 0.0 && f_hi_hz > f_lo_hz,
              "frequency_sweep: need 0 < f_lo < f_hi");
  CSECG_CHECK(points >= 2, "frequency_sweep: need at least 2 points");
  std::vector<SweepPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  const double log_lo = std::log10(f_lo_hz);
  const double log_hi = std::log10(f_hi_hz);
  for (int i = 0; i < points; ++i) {
    const double frac = static_cast<double>(i) / (points - 1);
    RmpiDesign point = design;
    point.nyquist_hz = std::pow(10.0, log_lo + frac * (log_hi - log_lo));
    out.push_back({point.nyquist_hz, rmpi_power(point, params)});
  }
  return out;
}

}  // namespace csecg::power

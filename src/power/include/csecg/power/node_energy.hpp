// Whole-node energy model: analog front-end + radio.
//
// The paper prices the analog front-end (Eq. 4/5/9); a WBSN node also
// pays the radio per transmitted bit — the very cost compression exists
// to cut (the authors' TBME'11 paper frames CS-ECG exactly this way).
// Combining both exposes the system-level optimum: more channels cost
// analog power *and* air bits, so node energy is monotone in m and the
// question becomes how few channels the decoder can tolerate — which is
// what the hybrid changes.
#pragma once

#include <cstddef>

#include "csecg/power/models.hpp"

namespace csecg::power {

/// Radio / digital energy constants (typical 2.4 GHz WBSN numbers).
struct NodeEnergyParams {
  double radio_nj_per_bit = 50.0;  ///< TX energy per air bit.
  double mcu_nj_per_coded_bit = 2.0;  ///< Huffman/packing digital cost.
  double radio_rx_nj_per_bit = 35.0;  ///< RX energy per feedback (ACK) bit.
};

/// Validates NodeEnergyParams; throws std::invalid_argument on negatives.
void validate(const NodeEnergyParams& params);

/// Per-window node energy breakdown (joules).
struct NodeEnergy {
  double analog = 0.0;  ///< Front-end power × window duration.
  double radio = 0.0;   ///< Air bits × energy/bit.
  double digital = 0.0; ///< Coded bits × MCU energy/bit.
  double total() const noexcept { return analog + radio + digital; }
};

/// Energy of one processing window for a hybrid design transmitting
/// `air_bits` (CS measurements + coded low-res stream).
/// `window_seconds` = n / fs.
NodeEnergy window_energy(const HybridDesign& design,
                         const TechnologyParams& tech,
                         const NodeEnergyParams& node,
                         std::size_t air_bits, double window_seconds);

/// Same for a plain RMPI design (no side channel).
NodeEnergy window_energy(const RmpiDesign& design,
                         const TechnologyParams& tech,
                         const NodeEnergyParams& node,
                         std::size_t air_bits, double window_seconds);

/// Per-window energy over a lossy telemetry link: `tx_bits` put on the
/// air (first transmissions + ARQ retransmissions) and `rx_bits` of
/// ACK/NAK feedback the node had to receive.  This is where a
/// retransmission policy becomes a power number.
NodeEnergy link_window_energy(const HybridDesign& design,
                              const TechnologyParams& tech,
                              const NodeEnergyParams& node,
                              std::size_t tx_bits, std::size_t rx_bits,
                              double window_seconds);

/// Same for a plain RMPI design (no side channel).
NodeEnergy link_window_energy(const RmpiDesign& design,
                              const TechnologyParams& tech,
                              const NodeEnergyParams& node,
                              std::size_t tx_bits, std::size_t rx_bits,
                              double window_seconds);

/// Average node power in watts given per-window energy and duration.
double average_power(const NodeEnergy& energy, double window_seconds);

}  // namespace csecg::power

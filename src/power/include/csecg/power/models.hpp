// Analytical power models of the RMPI / hybrid front-ends (paper §VI).
//
// The paper evaluates power purely from the closed-form block models of
// Chen, Chandrakasan & Stojanovic (JSSC 2012, 90 nm), reproduced here
// verbatim:
//
//   ADC array    P_ADC = (m/n)·FOM·2^B·fs                        (Eq. 4)
//   Integrator   P_Int = 2·BW_f · m·V_DD²·10π·n·C_p / 16         (Eq. 5)
//   Amplifiers   P_amp = 2·BW · 3mn·2^(2·B_y) · G_A²·NEF²/V_DD
//                        · π(kT)²/q                              (Eq. 9)
//
// with BW = BW_f = fs/2 the signal bandwidth.  Every block's power is
// proportional to the channel count m, which is why the paper's headline
// ratios (240/96 ≈ 2.5×, 176/16 = 11×) follow directly from the
// measurement counts the recovery experiments produce; the hybrid design
// only adds one Nyquist-rate low-resolution ADC on top.
#pragma once

#include <cstddef>
#include <vector>

namespace csecg::power {

/// Process/circuit constants (90 nm defaults per the paper's references).
struct TechnologyParams {
  double fom_j_per_conv = 100e-15;  ///< ADC figure of merit, J/conv-step.
  double vdd = 1.0;                 ///< Supply voltage (V).
  double nef = 2.5;                 ///< Amplifier noise-efficiency factor
                                    ///< (paper: "between 2 and 3").
  double temperature_k = 300.0;     ///< Absolute temperature.
  double cp_farad = 1e-12;          ///< OTA dominant-pole capacitance.
  double gain_db = 40.0;            ///< G_A, total front-end voltage gain
                                    ///< (paper: 40 dB for ECG).
};

/// Validates TechnologyParams; throws std::invalid_argument on nonsense.
void validate(const TechnologyParams& params);

/// One front-end design point.
struct RmpiDesign {
  std::size_t channels = 240;  ///< m — parallel channels.
  std::size_t window = 512;    ///< n — samples per processing window.
  int adc_bits = 12;           ///< B — per-channel measurement ADC.
  int amp_output_bits = 10;    ///< B_y — resolution preserved by the amp.
  double nyquist_hz = 720.0;   ///< fs — the input Nyquist sampling rate;
                               ///< signal bandwidth is fs/2.
};

/// Validates an RmpiDesign; throws std::invalid_argument on nonsense.
void validate(const RmpiDesign& design);

/// Eq. 4: power of the array of m window-rate ADCs, in watts.
double adc_power(std::size_t channels, std::size_t window, int adc_bits,
                 double nyquist_hz, const TechnologyParams& params);

/// Eq. 5: power of the m integrators + sample/hold, in watts.
double integrator_power(std::size_t channels, std::size_t window,
                        double nyquist_hz, const TechnologyParams& params);

/// Eq. 9: power of the m front-end amplifiers, in watts.
double amplifier_power(std::size_t channels, std::size_t window,
                       int amp_output_bits, double nyquist_hz,
                       const TechnologyParams& params);

/// Block-level breakdown (watts).
struct PowerBreakdown {
  double adc = 0.0;
  double integrator = 0.0;
  double amplifier = 0.0;
  double total() const noexcept { return adc + integrator + amplifier; }
};

/// Full RMPI power at a design point.
PowerBreakdown rmpi_power(const RmpiDesign& design,
                          const TechnologyParams& params);

/// Hybrid front-end: a CS path with (fewer) channels plus the parallel
/// Nyquist-rate low-resolution ADC.
struct HybridDesign {
  RmpiDesign cs_path;      ///< With the hybrid's reduced channel count.
  int lowres_bits = 7;     ///< Resolution of the parallel ADC.
};

/// Validates a HybridDesign; throws std::invalid_argument on nonsense.
void validate(const HybridDesign& design);

/// Hybrid breakdown: CS-path blocks plus the low-resolution ADC.
struct HybridPowerBreakdown {
  PowerBreakdown cs;
  double lowres_adc = 0.0;
  double total() const noexcept { return cs.total() + lowres_adc; }
};

/// Power of the Nyquist-rate low-resolution ADC alone: FOM·2^bits·fs.
double lowres_adc_power(int bits, double nyquist_hz,
                        const TechnologyParams& params);

/// Full hybrid power at a design point.
HybridPowerBreakdown hybrid_power(const HybridDesign& design,
                                  const TechnologyParams& params);

/// One row of the Fig. 11 sweep.
struct SweepPoint {
  double nyquist_hz = 0.0;
  PowerBreakdown breakdown;
};

/// Logarithmic frequency sweep of an RMPI design (Fig. 11): the design is
/// evaluated at `points` frequencies geometrically spaced over
/// [f_lo, f_hi].  Throws std::invalid_argument unless 0 < f_lo < f_hi and
/// points ≥ 2.
std::vector<SweepPoint> frequency_sweep(const RmpiDesign& design,
                                        const TechnologyParams& params,
                                        double f_lo_hz, double f_hi_hz,
                                        int points);

}  // namespace csecg::power

#include "csecg/linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "csecg/common/check.hpp"

namespace csecg::linalg {

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) {
    throw std::out_of_range("Matrix::at index out of range");
  }
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) {
    throw std::out_of_range("Matrix::at index out of range");
  }
  return (*this)(i, j);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

namespace {

/// Dot product with four independent accumulators: breaks the serial
/// dependency chain of a single running sum so the FPU pipelines (and the
/// auto-vectorizer) can overlap the multiply-adds.
inline double dot4(const double* row, const double* x, std::size_t n) {
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc0 += row[j] * x[j];
    acc1 += row[j + 1] * x[j + 1];
    acc2 += row[j + 2] * x[j + 2];
    acc3 += row[j + 3] * x[j + 3];
  }
  for (; j < n; ++j) acc0 += row[j] * x[j];
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace

void multiply_into(const Matrix& a, const Vector& x, Vector& y) {
  CSECG_CHECK(x.size() == a.cols(), "gemv dimension mismatch: A is "
                                        << a.rows() << "x" << a.cols()
                                        << ", x has " << x.size());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  y.resize(m);
  const double* xp = x.data();
  // Row blocks of four: x is streamed once per block instead of once per
  // row, and each row keeps its own four-way unrolled accumulators.
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* r0 = a.row(i);
    const double* r1 = a.row(i + 1);
    const double* r2 = a.row(i + 2);
    const double* r3 = a.row(i + 3);
    double y0 = 0.0;
    double y1 = 0.0;
    double y2 = 0.0;
    double y3 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double xj = xp[j];
      y0 += r0[j] * xj;
      y1 += r1[j] * xj;
      y2 += r2[j] * xj;
      y3 += r3[j] * xj;
    }
    y[i] = y0;
    y[i + 1] = y1;
    y[i + 2] = y2;
    y[i + 3] = y3;
  }
  for (; i < m; ++i) y[i] = dot4(a.row(i), xp, n);
}

Vector multiply(const Matrix& a, const Vector& x) {
  Vector y;
  multiply_into(a, x, y);
  return y;
}

void multiply_transpose_into(const Matrix& a, const Vector& x, Vector& y) {
  CSECG_CHECK(x.size() == a.rows(), "gemv^T dimension mismatch: A is "
                                        << a.rows() << "x" << a.cols()
                                        << ", x has " << x.size());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  y.resize(n);
  double* yp = y.data();
  for (std::size_t j = 0; j < n; ++j) yp[j] = 0.0;
  // Row blocks of four: one branch-free pass over y per block (4× less
  // write traffic than the row-at-a-time axpy sweep).
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* r0 = a.row(i);
    const double* r1 = a.row(i + 1);
    const double* r2 = a.row(i + 2);
    const double* r3 = a.row(i + 3);
    const double x0 = x[i];
    const double x1 = x[i + 1];
    const double x2 = x[i + 2];
    const double x3 = x[i + 3];
    for (std::size_t j = 0; j < n; ++j) {
      yp[j] += (r0[j] * x0 + r1[j] * x1) + (r2[j] * x2 + r3[j] * x3);
    }
  }
  for (; i < m; ++i) {
    const double* row = a.row(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < n; ++j) yp[j] += row[j] * xi;
  }
}

Vector multiply_transpose(const Matrix& a, const Vector& x) {
  Vector y;
  multiply_transpose_into(a, x, y);
  return y;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  CSECG_CHECK(a.cols() == b.rows(), "gemm dimension mismatch: "
                                        << a.rows() << "x" << a.cols()
                                        << " times " << b.rows() << "x"
                                        << b.cols());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* row = a.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      double* grow = g.row(i);
      for (std::size_t j = i; j < a.cols(); ++j) grow[j] += v * row[j];
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

double frobenius_norm(const Matrix& a) noexcept {
  double acc = 0.0;
  const double* p = a.data();
  const std::size_t total = a.rows() * a.cols();
  for (std::size_t i = 0; i < total; ++i) acc += p[i] * p[i];
  return std::sqrt(acc);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  CSECG_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "max_abs_diff shape mismatch");
  double acc = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t total = a.rows() * a.cols();
  for (std::size_t i = 0; i < total; ++i) {
    acc = std::max(acc, std::abs(pa[i] - pb[i]));
  }
  return acc;
}

void normalize_columns(Matrix& a) noexcept {
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) acc += a(i, j) * a(i, j);
    const double norm = std::sqrt(acc);
    if (norm == 0.0) continue;
    const double inv = 1.0 / norm;
    for (std::size_t i = 0; i < a.rows(); ++i) a(i, j) *= inv;
  }
}

}  // namespace csecg::linalg

#include "csecg/linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "csecg/common/check.hpp"

namespace csecg::linalg {

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) {
    throw std::out_of_range("Matrix::at index out of range");
  }
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) {
    throw std::out_of_range("Matrix::at index out of range");
  }
  return (*this)(i, j);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Vector multiply(const Matrix& a, const Vector& x) {
  CSECG_CHECK(x.size() == a.cols(), "gemv dimension mismatch: A is "
                                        << a.rows() << "x" << a.cols()
                                        << ", x has " << x.size());
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Vector multiply_transpose(const Matrix& a, const Vector& x) {
  CSECG_CHECK(x.size() == a.rows(), "gemv^T dimension mismatch: A is "
                                        << a.rows() << "x" << a.cols()
                                        << ", x has " << x.size());
  Vector y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  CSECG_CHECK(a.cols() == b.rows(), "gemm dimension mismatch: "
                                        << a.rows() << "x" << a.cols()
                                        << " times " << b.rows() << "x"
                                        << b.cols());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* row = a.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      double* grow = g.row(i);
      for (std::size_t j = i; j < a.cols(); ++j) grow[j] += v * row[j];
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

double frobenius_norm(const Matrix& a) noexcept {
  double acc = 0.0;
  const double* p = a.data();
  const std::size_t total = a.rows() * a.cols();
  for (std::size_t i = 0; i < total; ++i) acc += p[i] * p[i];
  return std::sqrt(acc);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  CSECG_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "max_abs_diff shape mismatch");
  double acc = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t total = a.rows() * a.cols();
  for (std::size_t i = 0; i < total; ++i) {
    acc = std::max(acc, std::abs(pa[i] - pb[i]));
  }
  return acc;
}

void normalize_columns(Matrix& a) noexcept {
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) acc += a(i, j) * a(i, j);
    const double norm = std::sqrt(acc);
    if (norm == 0.0) continue;
    const double inv = 1.0 / norm;
    for (std::size_t i = 0; i < a.rows(); ++i) a(i, j) *= inv;
  }
}

}  // namespace csecg::linalg

#include "csecg/linalg/solve.hpp"

#include <cmath>
#include <stdexcept>

#include "csecg/common/check.hpp"

namespace csecg::linalg {

Cholesky::Cholesky(const Matrix& a) {
  CSECG_CHECK(a.rows() == a.cols(),
              "Cholesky requires a square matrix, got " << a.rows() << "x"
                                                        << a.cols());
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0) {
      throw std::runtime_error(
          "Cholesky: matrix is not positive definite (pivot " +
          std::to_string(diag) + " at column " + std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / ljj;
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  CSECG_CHECK(b.size() == l_.rows(), "Cholesky::solve dimension mismatch");
  const Vector y = solve_lower(l_, b);
  // Back substitution with Lᵀ without forming the transpose.
  const std::size_t n = l_.rows();
  Vector x = y;
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

HouseholderQr::HouseholderQr(const Matrix& a) : qr_(a), beta_(a.cols()) {
  CSECG_CHECK(a.rows() >= a.cols(),
              "HouseholderQr requires rows >= cols, got "
                  << a.rows() << "x" << a.cols());
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // Normalize the reflector so v[k] == 1 (stored implicitly).
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    beta_[k] = -v0 / alpha;
    qr_(k, k) = alpha;
    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

Vector HouseholderQr::apply_qt(const Vector& b) const {
  CSECG_CHECK(b.size() == rows(), "apply_qt dimension mismatch");
  const std::size_t m = rows();
  const std::size_t n = cols();
  Vector y = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= beta_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vector HouseholderQr::solve(const Vector& b) const {
  const std::size_t n = cols();
  const Vector y = apply_qt(b);
  Vector x(n);
  constexpr double kRankTol = 1e-12;
  double rmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) rmax = std::max(rmax, std::abs(qr_(i, i)));
  for (std::size_t ii = n; ii-- > 0;) {
    const double rkk = qr_(ii, ii);
    if (std::abs(rkk) <= kRankTol * std::max(1.0, rmax)) {
      throw std::runtime_error("HouseholderQr::solve: rank-deficient system");
    }
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= qr_(ii, j) * x[j];
    x[ii] = acc / rkk;
  }
  return x;
}

Matrix HouseholderQr::r() const {
  const std::size_t n = cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  CSECG_CHECK(l.rows() == l.cols(), "solve_lower requires square matrix");
  CSECG_CHECK(b.size() == l.rows(), "solve_lower dimension mismatch");
  const std::size_t n = l.rows();
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * x[j];
    CSECG_CHECK(l(i, i) != 0.0, "solve_lower: zero diagonal at " << i);
    x[i] = acc / l(i, i);
  }
  return x;
}

Vector solve_upper(const Matrix& u, const Vector& b) {
  CSECG_CHECK(u.rows() == u.cols(), "solve_upper requires square matrix");
  CSECG_CHECK(b.size() == u.rows(), "solve_upper dimension mismatch");
  const std::size_t n = u.rows();
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= u(ii, j) * x[j];
    CSECG_CHECK(u(ii, ii) != 0.0, "solve_upper: zero diagonal at " << ii);
    x[ii] = acc / u(ii, ii);
  }
  return x;
}

Vector least_squares(const Matrix& a, const Vector& b) {
  return HouseholderQr(a).solve(b);
}

}  // namespace csecg::linalg

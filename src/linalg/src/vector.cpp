#include "csecg/linalg/vector.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "csecg/common/check.hpp"

namespace csecg::linalg {

void Vector::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Vector& Vector::operator+=(const Vector& rhs) {
  CSECG_CHECK(size() == rhs.size(),
              "vector += dimension mismatch: " << size() << " vs "
                                               << rhs.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  CSECG_CHECK(size() == rhs.size(),
              "vector -= dimension mismatch: " << size() << " vs "
                                               << rhs.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Vector operator+(const Vector& a, const Vector& b) {
  Vector out = a;
  out += b;
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  Vector out = a;
  out -= b;
  return out;
}

Vector operator*(double scalar, const Vector& v) {
  Vector out = v;
  out *= scalar;
  return out;
}

Vector operator*(const Vector& v, double scalar) { return scalar * v; }

double dot(const Vector& a, const Vector& b) {
  CSECG_CHECK(a.size() == b.size(),
              "dot dimension mismatch: " << a.size() << " vs " << b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  CSECG_CHECK(x.size() == y.size(),
              "axpy dimension mismatch: " << x.size() << " vs " << y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(const Vector& v) noexcept { return std::sqrt(norm2_squared(v)); }

double norm2_squared(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return acc;
}

double norm1(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

double norm_inf(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc = std::max(acc, std::abs(x));
  return acc;
}

std::size_t count_above(const Vector& v, double tol) noexcept {
  std::size_t count = 0;
  for (double x : v) {
    if (std::abs(x) > tol) ++count;
  }
  return count;
}

double mean(const Vector& v) noexcept {
  if (v.empty()) return 0.0;
  const double sum = std::accumulate(v.begin(), v.end(), 0.0);
  return sum / static_cast<double>(v.size());
}

}  // namespace csecg::linalg

#include "csecg/linalg/operator.hpp"

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>

#include "csecg/common/check.hpp"

namespace csecg::linalg {

LinearOperator::LinearOperator(std::size_t rows, std::size_t cols,
                               Apply forward, Apply adjoint)
    : rows_(rows),
      cols_(cols),
      forward_(std::move(forward)),
      adjoint_(std::move(adjoint)) {
  CSECG_CHECK(rows_ > 0 && cols_ > 0, "LinearOperator needs positive dims");
  CSECG_CHECK(forward_ && adjoint_, "LinearOperator needs both callables");
}

LinearOperator::LinearOperator(std::size_t rows, std::size_t cols,
                               Apply forward, Apply adjoint,
                               ApplyInto forward_into, ApplyInto adjoint_into)
    : LinearOperator(rows, cols, std::move(forward), std::move(adjoint)) {
  forward_into_ = std::move(forward_into);
  adjoint_into_ = std::move(adjoint_into);
  CSECG_CHECK(forward_into_ && adjoint_into_,
              "LinearOperator needs both destination callables");
}

LinearOperator LinearOperator::from_matrix(const Matrix& a) {
  CSECG_CHECK(a.rows() > 0 && a.cols() > 0, "from_matrix: empty matrix");
  // One shared copy of the matrix across all four callables.
  const auto shared = std::make_shared<const Matrix>(a);
  return LinearOperator(
      a.rows(), a.cols(),
      [shared](const Vector& x) { return multiply(*shared, x); },
      [shared](const Vector& y) { return multiply_transpose(*shared, y); },
      [shared](const Vector& x, Vector& y) { multiply_into(*shared, x, y); },
      [shared](const Vector& y, Vector& x) {
        multiply_transpose_into(*shared, y, x);
      });
}

LinearOperator LinearOperator::identity(std::size_t n) {
  auto id = [](const Vector& x) { return x; };
  auto id_into = [](const Vector& x, Vector& y) { y = x; };
  return LinearOperator(n, n, id, id, id_into, id_into);
}

LinearOperator LinearOperator::vstack(const LinearOperator& top,
                                      const LinearOperator& bottom) {
  CSECG_CHECK(top.cols() == bottom.cols(),
              "vstack column mismatch: " << top.cols() << " vs "
                                         << bottom.cols());
  const std::size_t m1 = top.rows();
  const std::size_t m2 = bottom.rows();
  const std::size_t n = top.cols();
  auto forward = [top, bottom, m1, m2](const Vector& x) {
    const Vector y1 = top.apply(x);
    const Vector y2 = bottom.apply(x);
    Vector y(m1 + m2);
    for (std::size_t i = 0; i < m1; ++i) y[i] = y1[i];
    for (std::size_t i = 0; i < m2; ++i) y[m1 + i] = y2[i];
    return y;
  };
  auto adjoint = [top, bottom, m1, m2](const Vector& y) {
    Vector y1(m1);
    Vector y2(m2);
    for (std::size_t i = 0; i < m1; ++i) y1[i] = y[i];
    for (std::size_t i = 0; i < m2; ++i) y2[i] = y[m1 + i];
    Vector x = top.apply_adjoint(y1);
    x += bottom.apply_adjoint(y2);
    return x;
  };
  // Destination variants still need split/merge temporaries (the operand
  // interfaces take whole vectors) but skip the final stacked copy.
  auto forward_into = [top, bottom, m1, m2](const Vector& x, Vector& y) {
    y.resize(m1 + m2);
    Vector part;
    top.apply_into(x, part);
    for (std::size_t i = 0; i < m1; ++i) y[i] = part[i];
    bottom.apply_into(x, part);
    for (std::size_t i = 0; i < m2; ++i) y[m1 + i] = part[i];
  };
  auto adjoint_into = [top, bottom, m1, m2](const Vector& y, Vector& x) {
    Vector y1(m1);
    for (std::size_t i = 0; i < m1; ++i) y1[i] = y[i];
    top.apply_adjoint_into(y1, x);
    Vector y2(m2);
    for (std::size_t i = 0; i < m2; ++i) y2[i] = y[m1 + i];
    Vector part;
    bottom.apply_adjoint_into(y2, part);
    x += part;
  };
  return LinearOperator(m1 + m2, n, forward, adjoint, forward_into,
                        adjoint_into);
}

LinearOperator LinearOperator::compose(const LinearOperator& other) const {
  CSECG_CHECK(cols() == other.rows(),
              "compose dimension mismatch: " << cols() << " vs "
                                             << other.rows());
  const LinearOperator outer = *this;
  const LinearOperator inner = other;
  return LinearOperator(
      outer.rows(), inner.cols(),
      [outer, inner](const Vector& x) { return outer.apply(inner.apply(x)); },
      [outer, inner](const Vector& y) {
        return inner.apply_adjoint(outer.apply_adjoint(y));
      },
      [outer, inner](const Vector& x, Vector& y) {
        Vector mid;
        inner.apply_into(x, mid);
        outer.apply_into(mid, y);
      },
      [outer, inner](const Vector& y, Vector& x) {
        Vector mid;
        outer.apply_adjoint_into(y, mid);
        inner.apply_adjoint_into(mid, x);
      });
}

Vector LinearOperator::apply(const Vector& x) const {
  CSECG_CHECK(forward_, "LinearOperator::apply on empty operator");
  CSECG_CHECK(x.size() == cols_, "apply dimension mismatch: expected "
                                     << cols_ << ", got " << x.size());
  return forward_(x);
}

Vector LinearOperator::apply_adjoint(const Vector& y) const {
  CSECG_CHECK(adjoint_, "LinearOperator::apply_adjoint on empty operator");
  CSECG_CHECK(y.size() == rows_, "apply_adjoint dimension mismatch: expected "
                                     << rows_ << ", got " << y.size());
  return adjoint_(y);
}

void LinearOperator::apply_into(const Vector& x, Vector& y) const {
  CSECG_CHECK(forward_, "LinearOperator::apply_into on empty operator");
  CSECG_CHECK(x.size() == cols_, "apply_into dimension mismatch: expected "
                                     << cols_ << ", got " << x.size());
  if (forward_into_) {
    y.resize(rows_);
    forward_into_(x, y);
  } else {
    y = forward_(x);
  }
}

void LinearOperator::apply_adjoint_into(const Vector& y, Vector& x) const {
  CSECG_CHECK(adjoint_, "LinearOperator::apply_adjoint_into on empty operator");
  CSECG_CHECK(y.size() == rows_,
              "apply_adjoint_into dimension mismatch: expected "
                  << rows_ << ", got " << y.size());
  if (adjoint_into_) {
    x.resize(cols_);
    adjoint_into_(y, x);
  } else {
    x = adjoint_(y);
  }
}

double operator_norm_estimate(const LinearOperator& op, int iterations) {
  CSECG_CHECK(iterations > 0, "operator_norm_estimate needs iterations > 0");
  // Deterministic quasi-random start vector.
  Vector v(op.cols());
  std::uint64_t s = 0x853C49E6748FEA9BULL;
  for (std::size_t i = 0; i < v.size(); ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    v[i] = static_cast<double>(s >> 40) / 16777216.0 - 0.5;
  }
  double nv = norm2(v);
  if (nv == 0.0) {
    v[0] = 1.0;
    nv = 1.0;
  }
  v *= 1.0 / nv;
  double sigma = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Vector w = op.apply_adjoint(op.apply(v));
    const double nw = norm2(w);
    if (nw == 0.0) return 0.0;
    sigma = std::sqrt(nw);
    w *= 1.0 / nw;
    v = w;
  }
  return sigma;
}

CgResult conjugate_gradient(const LinearOperator& a, const Vector& b,
                            int max_iterations, double tol) {
  CSECG_CHECK(a.rows() == a.cols(), "conjugate_gradient requires square op");
  CSECG_CHECK(b.size() == a.rows(), "conjugate_gradient dimension mismatch");
  CgResult out;
  out.x = Vector(b.size());
  Vector r = b;
  Vector p = r;
  double rs = norm2_squared(r);
  const double bnorm = std::max(norm2(b), 1e-300);
  for (int it = 0; it < max_iterations; ++it) {
    if (std::sqrt(rs) / bnorm <= tol) {
      out.converged = true;
      break;
    }
    const Vector ap = a.apply(p);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // Not SPD (or numerical breakdown).
    const double alpha = rs / pap;
    axpy(alpha, p, out.x);
    axpy(-alpha, ap, r);
    const double rs_next = norm2_squared(r);
    const double beta = rs_next / rs;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rs = rs_next;
    out.iterations = it + 1;
  }
  out.residual_norm = std::sqrt(rs);
  if (std::sqrt(rs) / bnorm <= tol) out.converged = true;
  return out;
}

double adjoint_mismatch(const LinearOperator& op, int probes,
                        unsigned long long seed) {
  CSECG_CHECK(probes > 0, "adjoint_mismatch needs probes > 0");
  std::uint64_t s = seed ^ 0x2545F4914F6CDD1DULL;
  auto next_unit = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<double>(s >> 11) * 0x1.0p-53 - 0.5;
  };
  double worst = 0.0;
  for (int p = 0; p < probes; ++p) {
    Vector x(op.cols());
    Vector y(op.rows());
    for (auto& v : x) v = next_unit();
    for (auto& v : y) v = next_unit();
    const double lhs = dot(op.apply(x), y);
    const double rhs = dot(x, op.apply_adjoint(y));
    const double scale =
        std::max({std::abs(lhs), std::abs(rhs), 1e-12});
    worst = std::max(worst, std::abs(lhs - rhs) / scale);
  }
  return worst;
}

}  // namespace csecg::linalg

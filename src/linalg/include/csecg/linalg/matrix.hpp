// Dense real matrix (row-major) and BLAS-2/3 style kernels.
//
// Sensing matrices in csecg are m×n with m,n ≤ a few hundred, so a plain
// row-major dense type with straightforward triple loops (ikj order for
// gemm) is fast enough and keeps the code auditable.
#pragma once

#include <cstddef>
#include <vector>

#include "csecg/linalg/vector.hpp"

namespace csecg::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Pointer to the start of row i (contiguous, cols() entries).
  double* row(std::size_t i) noexcept { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const noexcept {
    return data_.data() + i * cols_;
  }

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A·x.  Requires x.size() == A.cols().
Vector multiply(const Matrix& a, const Vector& x);

/// y = Aᵀ·x.  Requires x.size() == A.rows().
Vector multiply_transpose(const Matrix& a, const Vector& x);

/// y = A·x written into a caller-owned vector (resized to A.rows());
/// allocation-free when y already has the right size.  The kernel blocks
/// rows in groups of four with four independent accumulators each, so x
/// is streamed once per block and the reduction has no loop-carried
/// dependency chain.
void multiply_into(const Matrix& a, const Vector& x, Vector& y);

/// y = Aᵀ·x written into a caller-owned vector (resized to A.cols());
/// allocation-free when y already has the right size.  Blocks rows in
/// groups of four (branch-free, one pass over y per block).
void multiply_transpose_into(const Matrix& a, const Vector& x, Vector& y);

/// C = A·B.  Requires a.cols() == b.rows().
Matrix multiply(const Matrix& a, const Matrix& b);

/// Aᵀ as a new matrix.
Matrix transpose(const Matrix& a);

/// Gram matrix AᵀA (n×n, symmetric).
Matrix gram(const Matrix& a);

/// Frobenius norm.
double frobenius_norm(const Matrix& a) noexcept;

/// Largest |entry| of A - B; shapes must match.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Scales every column of A to unit Euclidean norm in place; zero columns
/// are left untouched.  CS sensing matrices are conventionally column-
/// normalized so restricted-isometry behaviour is comparable across
/// ensembles.
void normalize_columns(Matrix& a) noexcept;

}  // namespace csecg::linalg

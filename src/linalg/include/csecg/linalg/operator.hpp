// Matrix-free linear operators and iterative methods.
//
// The recovery solvers only ever need y = K·x and x = Kᵀ·y products, so
// they are written against LinearOperator; a dense Matrix, a stacked
// operator [Φ; I], or a fast wavelet transform all plug in uniformly.
#pragma once

#include <cstddef>
#include <functional>

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::linalg {

/// A linear map R^cols → R^rows given by callables for K and Kᵀ.
class LinearOperator {
 public:
  using Apply = std::function<Vector(const Vector&)>;

  LinearOperator() = default;

  /// Wraps forward/adjoint callables with explicit dimensions.
  LinearOperator(std::size_t rows, std::size_t cols, Apply forward,
                 Apply adjoint);

  /// Wraps a dense matrix (copies it).
  static LinearOperator from_matrix(const Matrix& a);

  /// Identity operator of order n.
  static LinearOperator identity(std::size_t n);

  /// Vertical stack [top; bottom]; operand column counts must match.
  static LinearOperator vstack(const LinearOperator& top,
                               const LinearOperator& bottom);

  /// Composition this∘other, i.e. x ↦ this(other(x)).
  LinearOperator compose(const LinearOperator& other) const;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  /// K·x.  Validates the input dimension.
  Vector apply(const Vector& x) const;

  /// Kᵀ·y.  Validates the input dimension.
  Vector apply_adjoint(const Vector& y) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Apply forward_;
  Apply adjoint_;
};

/// Estimates the operator norm ‖K‖₂ (largest singular value) by power
/// iteration on KᵀK.  Deterministic given the fixed internal start vector.
/// `iterations` caps the work; 50 is plenty for the step-size safety use.
double operator_norm_estimate(const LinearOperator& op, int iterations = 50);

/// Result of a conjugate-gradient solve.
struct CgResult {
  Vector x;              ///< Approximate solution.
  int iterations = 0;    ///< Iterations performed.
  double residual_norm = 0.0;  ///< ‖b − A·x‖₂ at exit.
  bool converged = false;      ///< True if tolerance met within budget.
};

/// Solves A·x = b for symmetric positive-definite A (as an operator) by
/// conjugate gradients.  `tol` is relative to ‖b‖₂.
CgResult conjugate_gradient(const LinearOperator& a, const Vector& b,
                            int max_iterations = 200, double tol = 1e-10);

/// Checks ⟨K·x, y⟩ == ⟨x, Kᵀ·y⟩ on random probes; returns the largest
/// relative mismatch.  Used by tests to validate hand-written adjoints.
double adjoint_mismatch(const LinearOperator& op, int probes = 5,
                        unsigned long long seed = 42);

}  // namespace csecg::linalg

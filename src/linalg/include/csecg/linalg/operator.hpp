// Matrix-free linear operators and iterative methods.
//
// The recovery solvers only ever need y = K·x and x = Kᵀ·y products, so
// they are written against LinearOperator; a dense Matrix, a stacked
// operator [Φ; I], or a fast wavelet transform all plug in uniformly.
#pragma once

#include <cstddef>
#include <functional>

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::linalg {

/// A linear map R^cols → R^rows given by callables for K and Kᵀ.
class LinearOperator {
 public:
  using Apply = std::function<Vector(const Vector&)>;
  /// Destination-passing form: writes the product into a caller-owned
  /// vector (already sized correctly) without allocating.
  using ApplyInto = std::function<void(const Vector&, Vector&)>;

  LinearOperator() = default;

  /// Wraps forward/adjoint callables with explicit dimensions.
  LinearOperator(std::size_t rows, std::size_t cols, Apply forward,
                 Apply adjoint);

  /// Wraps forward/adjoint callables plus allocation-free destination
  /// variants.  The *_into callables must compute the same products as
  /// their allocating counterparts; solvers pick whichever is cheaper.
  LinearOperator(std::size_t rows, std::size_t cols, Apply forward,
                 Apply adjoint, ApplyInto forward_into,
                 ApplyInto adjoint_into);

  /// Wraps a dense matrix (copies it).
  static LinearOperator from_matrix(const Matrix& a);

  /// Identity operator of order n.
  static LinearOperator identity(std::size_t n);

  /// Vertical stack [top; bottom]; operand column counts must match.
  static LinearOperator vstack(const LinearOperator& top,
                               const LinearOperator& bottom);

  /// Composition this∘other, i.e. x ↦ this(other(x)).
  LinearOperator compose(const LinearOperator& other) const;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  /// K·x.  Validates the input dimension.
  Vector apply(const Vector& x) const;

  /// Kᵀ·y.  Validates the input dimension.
  Vector apply_adjoint(const Vector& y) const;

  /// y ← K·x into a caller-owned vector (resized to rows()).  Uses the
  /// native destination callable when available (allocation-free for
  /// from_matrix operators), otherwise falls back to apply().  `x` and
  /// `y` must not alias.
  void apply_into(const Vector& x, Vector& y) const;

  /// x ← Kᵀ·y into a caller-owned vector (resized to cols()); same
  /// contract as apply_into.
  void apply_adjoint_into(const Vector& y, Vector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Apply forward_;
  Apply adjoint_;
  ApplyInto forward_into_;
  ApplyInto adjoint_into_;
};

/// Estimates the operator norm ‖K‖₂ (largest singular value) by power
/// iteration on KᵀK.  Deterministic given the fixed internal start vector.
/// `iterations` caps the work; 50 is plenty for the step-size safety use.
double operator_norm_estimate(const LinearOperator& op, int iterations = 50);

/// Result of a conjugate-gradient solve.
struct CgResult {
  Vector x;              ///< Approximate solution.
  int iterations = 0;    ///< Iterations performed.
  double residual_norm = 0.0;  ///< ‖b − A·x‖₂ at exit.
  bool converged = false;      ///< True if tolerance met within budget.
};

/// Solves A·x = b for symmetric positive-definite A (as an operator) by
/// conjugate gradients.  `tol` is relative to ‖b‖₂.
CgResult conjugate_gradient(const LinearOperator& a, const Vector& b,
                            int max_iterations = 200, double tol = 1e-10);

/// Checks ⟨K·x, y⟩ == ⟨x, Kᵀ·y⟩ on random probes; returns the largest
/// relative mismatch.  Used by tests to validate hand-written adjoints.
double adjoint_mismatch(const LinearOperator& op, int probes = 5,
                        unsigned long long seed = 42);

}  // namespace csecg::linalg

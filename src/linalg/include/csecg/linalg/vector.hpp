// Dense real vector and BLAS-1 style kernels.
//
// csecg works with short dense vectors (ECG windows of a few hundred
// samples), so Vector is a value type backed by contiguous storage with
// simple, cache-friendly loops; no expression templates and no aliasing
// surprises.  Debug builds bounds-check via at(); release-path operator[]
// is unchecked.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace csecg::linalg {

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;

  /// Creates a zero vector of dimension n.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}

  /// Creates a vector of dimension n with all entries equal to fill.
  Vector(std::size_t n, double fill) : data_(n, fill) {}

  /// Creates a vector from an explicit list of entries.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Adopts the contents of a std::vector (no copy).
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator[](std::size_t i) noexcept { return data_[i]; }
  double operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t i) { return data_.at(i); }
  double at(std::size_t i) const { return data_.at(i); }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  auto begin() noexcept { return data_.begin(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto end() const noexcept { return data_.end(); }

  /// Underlying storage (read-only); handy for interop with std algorithms.
  const std::vector<double>& std() const noexcept { return data_; }

  /// Resizes to n entries; new entries are zero.
  void resize(std::size_t n) { data_.resize(n, 0.0); }

  /// Sets every entry to value.
  void fill(double value);

  /// In-place arithmetic (element-wise; dimensions must match).
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scalar) noexcept;

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> data_;
};

/// Element-wise sum; dimensions must match.
Vector operator+(const Vector& a, const Vector& b);
/// Element-wise difference; dimensions must match.
Vector operator-(const Vector& a, const Vector& b);
/// Scalar product.
Vector operator*(double scalar, const Vector& v);
Vector operator*(const Vector& v, double scalar);

/// Dot product ⟨a, b⟩; dimensions must match.
double dot(const Vector& a, const Vector& b);

/// y ← alpha·x + y; dimensions must match.
void axpy(double alpha, const Vector& x, Vector& y);

/// Euclidean norm ‖v‖₂.
double norm2(const Vector& v) noexcept;

/// Squared Euclidean norm ‖v‖₂².
double norm2_squared(const Vector& v) noexcept;

/// ℓ1 norm ‖v‖₁.
double norm1(const Vector& v) noexcept;

/// ℓ∞ norm max|vᵢ| (0 for the empty vector).
double norm_inf(const Vector& v) noexcept;

/// Number of entries with |vᵢ| > tol (sparsity diagnostic).
std::size_t count_above(const Vector& v, double tol) noexcept;

/// Arithmetic mean (0 for the empty vector).
double mean(const Vector& v) noexcept;

}  // namespace csecg::linalg

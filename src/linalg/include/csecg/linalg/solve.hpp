// Direct dense solvers: Cholesky, Householder QR, least squares.
//
// These back the greedy recovery algorithms (OMP/CoSaMP solve small
// least-squares subproblems every iteration) and various tests.  All
// factorizations are value types holding their own storage.
#pragma once

#include <cstddef>

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::linalg {

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
/// Construction throws std::invalid_argument if A is not square and
/// std::runtime_error if a non-positive pivot is met (A not SPD).
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  /// Solves A·x = b.
  Vector solve(const Vector& b) const;

  /// Lower-triangular factor.
  const Matrix& factor() const noexcept { return l_; }

 private:
  Matrix l_;
};

/// Householder QR factorization A = Q·R for m×n with m ≥ n.
/// Stores the Householder vectors compactly; Q is applied implicitly.
class HouseholderQr {
 public:
  /// Factorizes A.  Throws std::invalid_argument if rows < cols.
  explicit HouseholderQr(const Matrix& a);

  /// Least-squares solution argmin ‖A·x − b‖₂.  Throws std::runtime_error
  /// if A is numerically rank-deficient (|r_kk| below tolerance).
  Vector solve(const Vector& b) const;

  /// Applies Qᵀ to a vector of length rows().
  Vector apply_qt(const Vector& b) const;

  /// Upper-triangular factor R (n×n leading block).
  Matrix r() const;

  std::size_t rows() const noexcept { return qr_.rows(); }
  std::size_t cols() const noexcept { return qr_.cols(); }

 private:
  Matrix qr_;    // R in the upper triangle, Householder vectors below.
  Vector beta_;  // Householder scalars.
};

/// Solves L·x = b with L lower triangular (forward substitution).
Vector solve_lower(const Matrix& l, const Vector& b);

/// Solves U·x = b with U upper triangular (back substitution).
Vector solve_upper(const Matrix& u, const Vector& b);

/// Convenience: least-squares solution of A·x = b via Householder QR.
Vector least_squares(const Matrix& a, const Vector& b);

}  // namespace csecg::linalg

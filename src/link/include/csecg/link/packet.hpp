// Over-the-air packet framing for the telemetry link.
//
// A serialized Frame never travels as one radio burst: the node's MAC
// fragments it into MTU-sized packets, each independently decodable so a
// lost packet costs only its own rows/samples.  Wire layout (big-endian,
// 14-byte header + payload + 2-byte CRC over header+payload):
//
//   [magic u8] [kind u8] [stream u16] [window u16]
//   [pkt_seq u8] [pkt_count u8] [first u16] [count u16] [payload_bits u16]
//   [payload bytes...] [crc16 u16]
//
// `kind` tags what the payload carries; `first`/`count` locate it inside
// the window (measurement indices for CS packets, sample indices for
// low-res packets, byte offsets for codebook blobs), so reassembly needs
// no packet ordering and tolerates any subset arriving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace csecg::link {

/// What a packet's payload carries.
enum class PayloadKind : std::uint8_t {
  kCsMeasurements = 0,  ///< Quantized CS measurement codes (bit-packed).
  kLowRes = 1,          ///< Delta-Huffman coded low-res sample range.
  kCodebook = 2,        ///< Opaque provisioning bytes (codebook shipping).
};

/// Parsed packet header.
struct PacketHeader {
  PayloadKind kind = PayloadKind::kCsMeasurements;
  std::uint16_t stream_id = 0;    ///< Sensor stream the packet belongs to.
  std::uint16_t window_seq = 0;   ///< Window sequence number (mod 2^16).
  std::uint8_t packet_seq = 0;    ///< Index within the window's train.
  std::uint8_t packet_count = 1;  ///< Train length for the window.
  std::uint16_t first = 0;        ///< First measurement/sample/byte index.
  std::uint16_t count = 0;        ///< Measurements/samples/bytes carried.
  std::uint16_t payload_bits = 0; ///< Exact payload bits before padding.
};

/// Fixed framing overhead: 14 header bytes + 2 CRC bytes.
inline constexpr std::size_t kPacketHeaderBytes = 14;
inline constexpr std::size_t kPacketCrcBytes = 2;
inline constexpr std::size_t kPacketOverheadBytes =
    kPacketHeaderBytes + kPacketCrcBytes;

/// A parsed, CRC-verified packet.
struct Packet {
  PacketHeader header;
  std::vector<std::uint8_t> payload;
};

/// Frames header+payload with the magic byte and trailing CRC-16.
/// Throws std::invalid_argument if the payload exceeds the format's
/// 16-bit bit-count field.
std::vector<std::uint8_t> serialize_packet(
    const PacketHeader& header, const std::vector<std::uint8_t>& payload);

/// Parses one packet: checks the magic byte, structural consistency
/// (declared payload size vs. actual bytes) and the CRC.  Returns
/// std::nullopt on any damage — never throws, never reads out of bounds.
std::optional<Packet> parse_packet(const std::vector<std::uint8_t>& bytes);

}  // namespace csecg::link

// ARQ (automatic repeat request) policies over the lossy channel.
//
// The whole point of CS telemetry is that retransmission is OPTIONAL:
// measurements are democratic, so a dropped packet costs a little SNR
// instead of the window.  The ARQ layer makes that trade explicit —
// every policy reports exactly how many bits it put on the air, and the
// power model prices them:
//
//   kNone           fire and forget; loss goes to the decoder.
//   kStopAndWait    per-packet ACK; retransmit up to max_retries with
//                   exponential backoff.  State machine per packet:
//                     SEND → WAIT ─ok─→ DONE
//                              └fail→ BACKOFF → SEND   (≤ max_retries)
//   kSelectiveRepeat  send a window of packets, read one bitmap ACK,
//                   retransmit only the failures; up to max_retries
//                   rounds per window.
//
// The simulation collapses the receiver into the loop: a packet "fails"
// when the channel erases it or the CRC rejects it, which is exactly the
// information a real NAK would carry.
#pragma once

#include <cstdint>
#include <vector>

#include "csecg/link/channel.hpp"

namespace csecg::link {

/// Retransmission policy.
enum class ArqMode {
  kNone,
  kStopAndWait,
  kSelectiveRepeat,
};

/// ARQ parameters.
struct ArqConfig {
  ArqMode mode = ArqMode::kNone;
  /// Retransmission attempts per packet (stop-and-wait) or extra rounds
  /// per window (selective repeat).
  int max_retries = 3;
  /// Packets per selective-repeat round trip.
  std::size_t sr_window = 8;
  /// Air bits of one ACK/NAK feedback frame (RX cost on the node).
  std::size_t feedback_bits = 64;
  /// Exponential backoff: first retry waits backoff_base_ms, each further
  /// retry multiplies by backoff_factor.  Pure latency accounting.
  double backoff_base_ms = 1.0;
  double backoff_factor = 2.0;
};

/// Validates an ArqConfig; throws std::invalid_argument on nonsense.
void validate(const ArqConfig& config);

/// Per-window link accounting (LinkSession adds the decode-side fields).
struct LinkStats {
  std::size_t packets = 0;          ///< Unique packets in the train.
  std::size_t delivered = 0;        ///< Unique packets that got through.
  std::size_t dropped = 0;          ///< Unique packets lost for good.
  std::size_t retransmissions = 0;  ///< Extra transmissions beyond the first.
  std::size_t crc_failures = 0;     ///< Deliveries rejected by the CRC.
  std::size_t data_bits = 0;        ///< TX data bits incl. retransmissions.
  std::size_t feedback_bits = 0;    ///< RX ACK/NAK bits.
  double backoff_ms = 0.0;          ///< Cumulative backoff latency.
  std::size_t effective_m = 0;      ///< Φ rows alive at the decoder.
  std::size_t boxed_samples = 0;    ///< Samples with a live box constraint.
};

/// Pushes one window's packet train through the channel under the given
/// policy.  Returns the packets that reached the receiver with a valid
/// CRC (in train order) and fills the transmission half of `stats`.
std::vector<std::vector<std::uint8_t>> transmit_packets(
    const std::vector<std::vector<std::uint8_t>>& packets, Channel& channel,
    const ArqConfig& arq, LinkStats& stats);

}  // namespace csecg::link

// End-to-end telemetry session: the sensor's encoder, the link (packetizer
// → channel → ARQ → reassembly) and the receiver's loss-resilient decoder,
// wired into the parallel experiment runner.
//
// Determinism under threading: a Channel is stateful (RNG + Markov state),
// so the session never shares one across windows.  Each window draws its
// own Channel from a substream seed mixed (SplitMix64) from the configured
// channel seed, the stream id and the window's global sequence number —
// the loss pattern of window k is the same whatever thread decodes it and
// whatever order windows complete in, so parallel link experiments are
// bit-identical to serial runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "csecg/coding/delta_huffman_codec.hpp"
#include "csecg/core/config.hpp"
#include "csecg/core/frontend.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/link/arq.hpp"
#include "csecg/link/channel.hpp"
#include "csecg/link/packetizer.hpp"
#include "csecg/parallel/thread_pool.hpp"
#include "csecg/power/models.hpp"
#include "csecg/power/node_energy.hpp"

namespace csecg::link {

/// Everything about the link below the frame layer.
struct LinkSessionConfig {
  PacketizerConfig packetizer;
  ChannelConfig channel;
  ArqConfig arq;
  /// Energy pricing of the node (analog model + radio constants).
  power::TechnologyParams tech;
  power::NodeEnergyParams node;
  /// Input Nyquist rate, for window duration (MIT-BIH format: 360 Hz).
  double nyquist_hz = 360.0;
};

/// Outcome of one window crossing the link.
struct WindowResult {
  core::LossyDecodeResult decoded;
  LinkStats stats;
  power::NodeEnergy energy;  ///< Analog + TX/RX radio + digital, priced
                             ///< from the bits the ARQ actually spent.
};

/// Owns a matched encoder/decoder pair plus the link between them.
class LinkSession {
 public:
  /// The codec is required iff the low-resolution channel is enabled;
  /// throws std::invalid_argument when the front-end has no measurement
  /// ADC (nothing to packetize) or the MTU cannot carry the frame fields.
  LinkSession(core::FrontEndConfig config,
              std::optional<coding::DeltaHuffmanCodec> lowres_codec,
              LinkSessionConfig link);

  const core::FrontEndConfig& config() const noexcept {
    return encoder_.config();
  }
  const LinkSessionConfig& link_config() const noexcept { return link_; }
  const core::Encoder& encoder() const noexcept { return encoder_; }
  const core::Decoder& decoder() const noexcept { return decoder_; }

  /// Deterministic per-window channel substream seed.
  std::uint64_t channel_seed(std::uint32_t sequence) const noexcept;

  /// encode → packetize → impair → ARQ → reassemble → decode_lossy for one
  /// raw window (length n, record-unit ADC codes).  `sequence` is the
  /// window's global index; it selects the channel substream and stamps
  /// the packets' window_seq (mod 2^16).  Never throws on link loss.
  /// Thread-safe: all shared state is read-only.
  WindowResult transmit_window(const linalg::Vector& window,
                               std::uint32_t sequence) const;

 private:
  core::Encoder encoder_;
  core::Decoder decoder_;
  LinkSessionConfig link_;
  Packetizer packetizer_;
  Reassembler reassembler_;
};

/// Per-window link experiment metrics (quality + link accounting).
struct LinkWindowMetrics {
  double prd = 0.0;  ///< Zero-mean PRD (%) against the raw window.
  double snr = 0.0;  ///< −20·log10(PRD/100) in dB.
  LinkStats stats;
  double energy_j = 0.0;  ///< Whole-node energy for the window.
  bool lowres_only = false;
  bool converged = false;
  int iterations = 0;             ///< Solver iterations (0 on low-res-only).
  double ball_violation = 0.0;    ///< Residual excess at solver exit.
  std::uint64_t window_ns = 0;    ///< encode→decode wall time (0 if obs off).
};

/// Aggregate over one record crossing the link.
///
/// The convergence block mirrors core::RecordReport: `solved_windows`
/// excludes the low-res-only fallbacks (no solver ran there), so
/// converged + non_converged == solved_windows always holds.
struct LinkRecordReport {
  std::string record_name;
  std::vector<LinkWindowMetrics> windows;
  double mean_prd = 0.0;
  double mean_snr = 0.0;
  double delivery_rate = 1.0;   ///< Unique packets delivered / sent.
  double mean_energy_j = 0.0;
  std::size_t retransmissions = 0;
  std::size_t lowres_only_windows = 0;
  // --- Solver convergence (ISSUE 3) ---------------------------------------
  std::size_t solved_windows = 0;         ///< Windows where a solve ran.
  std::size_t converged_windows = 0;
  std::size_t non_converged_windows = 0;  ///< Hit the iteration cap.
  std::uint64_t total_solver_iterations = 0;
  double max_ball_violation = 0.0;
  // --- Wall time across the whole link pipeline (0 when obs disabled) -----
  double window_seconds = 0.0;
  // --- Quality-outlier flagging (ISSUE 4) ----------------------------------
  /// Windows whose SNR fell below the robust MAD fence over this record
  /// (median − 3.5·1.4826·MAD) — typically the ones the channel hurt most.
  std::vector<std::size_t> outlier_windows;
  /// The SNR fence (dB) the flags above were cut at.
  double outlier_snr_threshold_db = 0.0;
};

/// Streams `window_count` windows of one record through the session,
/// decoding windows concurrently on the pool.  `base_sequence` offsets the
/// windows' global sequence numbers so different records draw disjoint
/// channel substreams.  Pre-sized slots + ordered reduction keep the
/// report bit-identical for any thread count.
LinkRecordReport run_link_record(const LinkSession& session,
                                 const ecg::EcgRecord& record,
                                 std::size_t window_count,
                                 std::uint32_t base_sequence,
                                 parallel::ThreadPool& pool);

/// run_link_record on the process-wide pool.
LinkRecordReport run_link_record(const LinkSession& session,
                                 const ecg::EcgRecord& record,
                                 std::size_t window_count,
                                 std::uint32_t base_sequence = 0);

/// Runs the first `record_count` database records through the link,
/// fanning records across the pool; record r's windows use sequences
/// [r·windows_per_record, (r+1)·windows_per_record).
std::vector<LinkRecordReport> run_link_database(
    const LinkSession& session, const ecg::SyntheticDatabase& database,
    std::size_t record_count, std::size_t windows_per_record,
    parallel::ThreadPool& pool);

/// run_link_database on the process-wide pool.
std::vector<LinkRecordReport> run_link_database(
    const LinkSession& session, const ecg::SyntheticDatabase& database,
    std::size_t record_count, std::size_t windows_per_record);

/// Mean of per-record mean SNRs.
double averaged_link_snr(const std::vector<LinkRecordReport>& reports);

/// Mean of per-record mean per-window energies (joules).
double averaged_link_energy(const std::vector<LinkRecordReport>& reports);

}  // namespace csecg::link

// Content-aware fragmentation of a Frame into link packets, and the
// matching reassembly into a core::LossyWindow.
//
// The split respects decode boundaries so every packet is independently
// useful:
//  * CS measurements are bit-packed ADC codes; a packet carries a
//    contiguous index range [first, first+count) and its loss removes
//    exactly those rows of Φ (measurement democracy does the rest).
//  * The low-resolution stream is delta-Huffman coded, which is
//    sequential — a mid-stream gap would destroy everything after it.
//    The packetizer therefore re-chunks the stream: each packet holds an
//    independently decodable range (raw first code + coded deltas), sized
//    greedily against the MTU with the codebook's exact bit costs.  The
//    per-packet raw restart is the framing tax a real node would pay for
//    loss containment.
//  * Codebook provisioning blobs ship as opaque byte ranges.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "csecg/coding/delta_huffman_codec.hpp"
#include "csecg/core/frame.hpp"
#include "csecg/core/frontend.hpp"
#include "csecg/link/packet.hpp"
#include "csecg/sensing/quantizer.hpp"

namespace csecg::link {

/// Fragmentation knobs.
struct PacketizerConfig {
  /// Total packet size cap, header and CRC included (BLE-class radios sit
  /// between 27 and 251 bytes).
  std::size_t mtu_bytes = 64;
  std::uint16_t stream_id = 1;
};

/// Validates a PacketizerConfig against the frame geometry it must carry;
/// throws std::invalid_argument when the MTU cannot fit one measurement.
void validate(const PacketizerConfig& config, int measurement_bits,
              int lowres_code_bits);

/// Sensor-side fragmenter.
class Packetizer {
 public:
  /// `measurement_adc` is the CS channel's quantizer (shared design
  /// knowledge, same as serialize_frame); the codec is required iff
  /// frames carry a low-resolution payload.
  Packetizer(PacketizerConfig config, sensing::Quantizer measurement_adc,
             std::optional<coding::DeltaHuffmanCodec> lowres_codec);

  const PacketizerConfig& config() const noexcept { return config_; }

  /// Splits one frame into its packet train (serialized, CRC-framed).
  /// Throws std::invalid_argument if the frame shape does not fit the
  /// header fields (e.g. > 255 packets per window).
  std::vector<std::vector<std::uint8_t>> packetize(
      const core::Frame& frame, std::uint16_t window_seq) const;

  /// Splits an opaque provisioning blob (e.g. a serialized codebook) into
  /// kCodebook packets.
  std::vector<std::vector<std::uint8_t>> packetize_blob(
      const std::vector<std::uint8_t>& blob, std::uint16_t window_seq) const;

 private:
  PacketizerConfig config_;
  sensing::Quantizer measurement_adc_;
  std::optional<coding::DeltaHuffmanCodec> codec_;
};

/// What reassembly recovered for one window, plus link accounting.
struct ReassemblyResult {
  core::LossyWindow window;
  std::size_t packets_accepted = 0;
  /// Packets that failed parsing, CRC, or semantic validation (bad
  /// indices / illegal codes behind a colliding CRC).
  std::size_t packets_rejected = 0;
};

/// Receiver-side defragmenter.  Stateless per window: feed it whatever
/// subset of the train the channel delivered, in any order.
class Reassembler {
 public:
  Reassembler(std::size_t measurements, std::size_t window,
              sensing::Quantizer measurement_adc,
              std::optional<coding::DeltaHuffmanCodec> lowres_codec,
              std::uint16_t stream_id);

  /// Rebuilds the lossy window from delivered packet bytes.  Damaged or
  /// foreign packets are dropped, never fatal; duplicated packets simply
  /// overwrite their own range.
  ReassemblyResult reassemble(
      std::uint16_t window_seq,
      const std::vector<std::vector<std::uint8_t>>& delivered) const;

  /// Reassembles a kCodebook blob train; nullopt unless every byte range
  /// of the blob arrived intact.
  static std::optional<std::vector<std::uint8_t>> reassemble_blob(
      const std::vector<std::vector<std::uint8_t>>& delivered);

 private:
  std::size_t measurements_;
  std::size_t window_;
  sensing::Quantizer measurement_adc_;
  std::optional<coding::DeltaHuffmanCodec> codec_;
  std::uint16_t stream_id_;
};

}  // namespace csecg::link

// Channel impairment models for the telemetry link.
//
// Three classic radio abstractions, all driven by csecg::rng so every
// experiment is bit-reproducible:
//  * i.i.d. bit-error  — each payload bit flips with probability BER
//    (the CRC then catches essentially every hit).
//  * i.i.d. packet erasure — each packet vanishes with probability p
//    (interference, MAC collisions).
//  * Gilbert–Elliott — a two-state Markov chain (good/bad) with
//    per-state erasure probabilities; the standard model for the bursty
//    fading a body-worn 2.4 GHz radio actually sees.  Stationary loss is
//    π_bad·p_bad + π_good·p_good with π_bad = g→b / (g→b + b→g).
#pragma once

#include <cstdint>
#include <vector>

#include "csecg/rng/xoshiro.hpp"

namespace csecg::link {

/// Which impairment to apply.
enum class ChannelKind {
  kPerfect,        ///< Delivers everything untouched.
  kBitError,       ///< i.i.d. bit flips at `bit_error_rate`.
  kPacketErasure,  ///< i.i.d. packet drops at `erasure_rate`.
  kGilbertElliott, ///< Two-state burst erasures.
};

/// Channel parameters (only the fields of the selected kind are read).
struct ChannelConfig {
  ChannelKind kind = ChannelKind::kPerfect;
  double bit_error_rate = 0.0;   ///< kBitError: per-bit flip probability.
  double erasure_rate = 0.0;     ///< kPacketErasure: per-packet drop.
  double ge_good_to_bad = 0.02;  ///< kGilbertElliott: P(good→bad).
  double ge_bad_to_good = 0.25;  ///< kGilbertElliott: P(bad→good).
  double ge_erasure_good = 0.0;  ///< Drop probability in the good state.
  double ge_erasure_bad = 0.5;   ///< Drop probability in the bad state.
  std::uint64_t seed = 0x2EC6;   ///< Substream seed (see Channel ctor).
};

/// Validates a ChannelConfig; throws std::invalid_argument when any
/// probability leaves [0, 1] or a Gilbert–Elliott chain cannot mix.
void validate(const ChannelConfig& config);

/// One directional lossy pipe.  Holds the RNG and (for Gilbert–Elliott)
/// the Markov state, so a Channel instance is NOT thread-safe; create one
/// per window from a per-window substream seed for deterministic parallel
/// experiments (LinkSession does exactly that).
class Channel {
 public:
  explicit Channel(const ChannelConfig& config);

  /// Same, but with the RNG seeded from `seed_override` instead of
  /// config.seed — the hook for per-window substreams.
  Channel(const ChannelConfig& config, std::uint64_t seed_override);

  const ChannelConfig& config() const noexcept { return config_; }

  /// Pushes one packet through the channel.  Returns false when the
  /// packet is erased; otherwise the bytes may have been corrupted in
  /// place (bit-error kind).
  bool transmit(std::vector<std::uint8_t>& packet);

  /// Long-run packet erasure probability of the configured model (0 for
  /// kPerfect/kBitError — those never erase whole packets).
  double expected_erasure_rate() const noexcept;

 private:
  ChannelConfig config_;
  rng::Xoshiro256 gen_;
  bool ge_bad_ = false;
};

}  // namespace csecg::link

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection) — the
// checksum of choice for short sensor-radio packets (it is the one
// Bluetooth/802.15.4-class stacks descend from).  Guarantees detection of
// all single- and double-bit errors and every burst up to 16 bits, which
// is exactly the damage profile of the link module's bit-error channels.
#pragma once

#include <cstddef>
#include <cstdint>

namespace csecg::link {

/// CRC over `size` bytes.  crc16_ccitt("123456789") == 0x29B1.
std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size);

/// Incremental form for header+payload framing: feed an initial value of
/// 0xFFFF, then chain.
std::uint16_t crc16_ccitt_update(std::uint16_t crc, const std::uint8_t* data,
                                 std::size_t size);

}  // namespace csecg::link

#include "csecg/link/session.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "csecg/common/check.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/metrics/stats.hpp"
#include "csecg/obs/json.hpp"
#include "csecg/obs/ledger.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/span.hpp"
#include "csecg/obs/trace.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::link {
namespace {

Packetizer make_packetizer(const core::Encoder& encoder,
                           const LinkSessionConfig& link,
                           const std::optional<coding::DeltaHuffmanCodec>&
                               lowres_codec) {
  CSECG_CHECK(encoder.measurement_adc().has_value(),
              "LinkSession: the front-end needs a measurement ADC "
              "(measurement_adc_bits > 0) to packetize frames");
  return Packetizer(link.packetizer, *encoder.measurement_adc(),
                    lowres_codec);
}

Reassembler make_reassembler(const core::Encoder& encoder,
                             const LinkSessionConfig& link,
                             const std::optional<coding::DeltaHuffmanCodec>&
                                 lowres_codec) {
  const core::FrontEndConfig& config = encoder.config();
  return Reassembler(config.measurements, config.window,
                     *encoder.measurement_adc(), lowres_codec,
                     link.packetizer.stream_id);
}

power::NodeEnergy price_window(const core::FrontEndConfig& config,
                               const LinkSessionConfig& link,
                               const LinkStats& stats) {
  power::RmpiDesign cs_path;
  cs_path.channels = config.measurements;
  cs_path.window = config.window;
  cs_path.adc_bits = config.measurement_adc_bits;
  cs_path.nyquist_hz = link.nyquist_hz;
  const double window_seconds =
      static_cast<double>(config.window) / link.nyquist_hz;
  if (config.lowres_bits > 0) {
    power::HybridDesign design;
    design.cs_path = cs_path;
    design.lowres_bits = config.lowres_bits;
    return power::link_window_energy(design, link.tech, link.node,
                                     stats.data_bits, stats.feedback_bits,
                                     window_seconds);
  }
  return power::link_window_energy(cs_path, link.tech, link.node,
                                   stats.data_bits, stats.feedback_bits,
                                   window_seconds);
}

/// One quality-ledger JSONL row for a window that crossed the link.  Only
/// deterministic fields (the channel substream is seeded per sequence, so
/// loss accounting is deterministic too); wall-clock timing stays in the
/// trace and histograms.
std::string link_ledger_row(const LinkRecordReport& report, std::size_t w,
                            std::uint64_t seq,
                            const core::FrontEndConfig& config,
                            double sigma_full, bool outlier) {
  const LinkWindowMetrics& m = report.windows[w];
  const auto full_m = static_cast<double>(config.measurements);
  const double sigma_eff =
      m.lowres_only
          ? 0.0
          : sigma_full * std::sqrt(
                             static_cast<double>(m.stats.effective_m) / full_m);
  std::string row;
  row.reserve(420);
  row += "{\"kind\":\"link_window\",\"record\":";
  obs::append_json_string(row, report.record_name);
  row += ",\"seq\":";
  obs::append_json_u64(row, seq);
  row += ",\"window\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(w));
  row += ",\"m\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(config.measurements));
  row += ",\"m_eff\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.stats.effective_m));
  row += ",\"sigma\":";
  obs::append_json_double(row, sigma_eff);
  row += ",\"solver\":\"pdhg\",\"decode_mode\":\"";
  row += m.lowres_only ? "lowres_only" : "lossy";
  row += "\",\"iterations\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(
                                m.iterations < 0 ? 0 : m.iterations));
  row += ",\"converged\":";
  obs::append_json_bool(row, m.converged);
  row += ",\"ball_violation\":";
  obs::append_json_double(row, m.ball_violation);
  row += ",\"prd\":";
  obs::append_json_double(row, m.prd);
  row += ",\"snr\":";
  obs::append_json_double(row, m.snr);
  row += ",\"packets\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.stats.packets));
  row += ",\"delivered\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.stats.delivered));
  row += ",\"dropped\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.stats.dropped));
  row += ",\"retransmissions\":";
  obs::append_json_u64(row,
                       static_cast<std::uint64_t>(m.stats.retransmissions));
  row += ",\"crc_failures\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.stats.crc_failures));
  row += ",\"data_bits\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.stats.data_bits));
  row += ",\"feedback_bits\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.stats.feedback_bits));
  row += ",\"boxed_samples\":";
  obs::append_json_u64(row,
                       static_cast<std::uint64_t>(m.stats.boxed_samples));
  row += ",\"energy_j\":";
  obs::append_json_double(row, m.energy_j);
  row += ",\"outlier\":";
  obs::append_json_bool(row, outlier);
  row += '}';
  return row;
}

}  // namespace

LinkSession::LinkSession(core::FrontEndConfig config,
                         std::optional<coding::DeltaHuffmanCodec> lowres_codec,
                         LinkSessionConfig link)
    : encoder_(config, lowres_codec),
      decoder_(config, lowres_codec),
      link_(std::move(link)),
      packetizer_(make_packetizer(encoder_, link_, lowres_codec)),
      reassembler_(make_reassembler(encoder_, link_, lowres_codec)) {
  validate(link_.channel);
  validate(link_.arq);
  power::validate(link_.tech);
  power::validate(link_.node);
  CSECG_CHECK(link_.nyquist_hz > 0.0,
              "LinkSessionConfig: nyquist_hz must be positive");
}

std::uint64_t LinkSession::channel_seed(std::uint32_t sequence) const noexcept {
  // SplitMix64 substream derivation: mix the base seed first so nearby
  // configured seeds do not produce nearby substreams, then fold in the
  // stream identity and the window sequence.
  std::uint64_t state = link_.channel.seed;
  state = rng::splitmix64(state);
  state ^= (static_cast<std::uint64_t>(link_.packetizer.stream_id) << 32) ^
           static_cast<std::uint64_t>(sequence);
  return rng::splitmix64(state);
}

WindowResult LinkSession::transmit_window(const linalg::Vector& window,
                                          std::uint32_t sequence) const {
  static obs::Histogram& packetize_hist =
      obs::histogram("link.packetize_ns");
  static obs::Histogram& transmit_hist = obs::histogram("link.transmit_ns");
  static obs::Counter& link_windows = obs::counter("link.windows");
  static obs::Counter& link_packets = obs::counter("link.packets");
  static obs::Counter& link_dropped = obs::counter("link.dropped_packets");
  static obs::Counter& link_retransmissions =
      obs::counter("link.arq.retransmissions");
  static obs::Counter& link_crc_failures = obs::counter("link.crc_failures");

  obs::TraceScope window_trace("link.window", "link", "sequence",
                               static_cast<std::uint64_t>(sequence));
  const core::Frame frame = encoder_.encode(window);
  const auto window_seq = static_cast<std::uint16_t>(sequence & 0xFFFFu);
  obs::Span packetize_span(packetize_hist);
  obs::TraceScope packetize_trace("link.packetize", "link");
  const auto packets = packetizer_.packetize(frame, window_seq);
  packetize_trace.stop();
  packetize_span.stop();

  WindowResult out;
  Channel channel(link_.channel, channel_seed(sequence));
  obs::Span transmit_span(transmit_hist);
  obs::TraceScope transmit_trace("link.transmit", "link", "packets",
                                 static_cast<std::uint64_t>(packets.size()));
  const auto delivered =
      transmit_packets(packets, channel, link_.arq, out.stats);
  transmit_trace.stop();
  transmit_span.stop();
  const ReassemblyResult reassembled =
      reassembler_.reassemble(window_seq, delivered);

  out.decoded = decoder_.decode_lossy(reassembled.window);
  out.stats.effective_m = out.decoded.effective_m;
  out.stats.boxed_samples = out.decoded.boxed_samples;
  out.energy = price_window(encoder_.config(), link_, out.stats);

  link_windows.add();
  link_packets.add(out.stats.packets);
  link_dropped.add(out.stats.dropped);
  link_retransmissions.add(out.stats.retransmissions);
  link_crc_failures.add(out.stats.crc_failures);
  return out;
}

LinkRecordReport run_link_record(const LinkSession& session,
                                 const ecg::EcgRecord& record,
                                 std::size_t window_count,
                                 std::uint32_t base_sequence,
                                 parallel::ThreadPool& pool) {
  CSECG_CHECK(window_count > 0,
              "run_link_record: window_count must be positive");
  const core::FrontEndConfig& config = session.config();
  const auto windows =
      ecg::extract_windows(record, config.window, window_count);

  LinkRecordReport report;
  report.record_name = record.name;

  // Pre-sized slots + per-window channel substreams: the loss pattern and
  // hence the report are identical for any pool size (see run_record).
  report.windows.resize(windows.size());
  pool.parallel_for(0, windows.size(), [&](std::size_t w) {
    const bool timed = obs::enabled();
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    const WindowResult result = session.transmit_window(
        windows[w], base_sequence + static_cast<std::uint32_t>(w));
    const std::uint64_t t1 = timed ? obs::monotonic_ns() : 0;

    LinkWindowMetrics m;
    m.prd = metrics::prd_zero_mean(windows[w], result.decoded.x);
    m.snr = metrics::snr_from_prd(m.prd);
    m.stats = result.stats;
    m.energy_j = result.energy.total();
    m.lowres_only = result.decoded.lowres_only;
    m.converged = result.decoded.solver.converged;
    m.iterations = result.decoded.solver.iterations;
    m.ball_violation = result.decoded.solver.ball_violation;
    m.window_ns = t1 - t0;
    report.windows[w] = m;
  });

  double prd_sum = 0.0;
  double snr_sum = 0.0;
  double energy_sum = 0.0;
  std::uint64_t window_ns_sum = 0;
  std::size_t sent = 0;
  std::size_t delivered = 0;
  for (const auto& m : report.windows) {
    prd_sum += m.prd;
    snr_sum += m.snr;
    energy_sum += m.energy_j;
    sent += m.stats.packets;
    delivered += m.stats.delivered;
    report.retransmissions += m.stats.retransmissions;
    window_ns_sum += m.window_ns;
    if (m.lowres_only) {
      // No solver ran: the decoder emitted the low-res staircase.
      ++report.lowres_only_windows;
    } else {
      ++report.solved_windows;
      if (m.converged) {
        ++report.converged_windows;
      } else {
        ++report.non_converged_windows;
      }
      report.total_solver_iterations +=
          static_cast<std::uint64_t>(m.iterations);
      report.max_ball_violation =
          std::max(report.max_ball_violation, m.ball_violation);
    }
  }
  const auto count = static_cast<double>(report.windows.size());
  report.mean_prd = prd_sum / count;
  report.mean_snr = snr_sum / count;
  report.mean_energy_j = energy_sum / count;
  report.window_seconds = static_cast<double>(window_ns_sum) * 1e-9;
  report.delivery_rate =
      sent == 0 ? 1.0
                : static_cast<double>(delivered) / static_cast<double>(sent);

  // Same robust fence as core::run_record; on a lossy link the flagged
  // windows are usually the ones whose CS train took the worst losses.
  std::vector<double> snrs(report.windows.size());
  for (std::size_t w = 0; w < report.windows.size(); ++w) {
    snrs[w] = report.windows[w].snr;
  }
  report.outlier_snr_threshold_db = metrics::mad_low_threshold(snrs);
  report.outlier_windows = metrics::mad_low_outliers(snrs);

  if (obs::ledger_enabled()) {
    const double sigma_full = session.decoder().sigma();
    std::size_t next_outlier = 0;
    for (std::size_t w = 0; w < report.windows.size(); ++w) {
      const bool outlier = next_outlier < report.outlier_windows.size() &&
                           report.outlier_windows[next_outlier] == w;
      if (outlier) ++next_outlier;
      const std::uint64_t seq = static_cast<std::uint64_t>(base_sequence) + w;
      obs::Ledger::global().append(
          seq, link_ledger_row(report, w, seq, config, sigma_full, outlier));
    }
  }
  return report;
}

LinkRecordReport run_link_record(const LinkSession& session,
                                 const ecg::EcgRecord& record,
                                 std::size_t window_count,
                                 std::uint32_t base_sequence) {
  return run_link_record(session, record, window_count, base_sequence,
                         parallel::global_pool());
}

std::vector<LinkRecordReport> run_link_database(
    const LinkSession& session, const ecg::SyntheticDatabase& database,
    std::size_t record_count, std::size_t windows_per_record,
    parallel::ThreadPool& pool) {
  CSECG_CHECK(record_count > 0 && record_count <= database.size(),
              "run_link_database: record_count out of range");
  std::vector<LinkRecordReport> reports(record_count);
  pool.parallel_for(0, record_count, [&](std::size_t r) {
    const auto base = static_cast<std::uint32_t>(r * windows_per_record);
    reports[r] = run_link_record(session, database.record(r),
                                 windows_per_record, base, pool);
  });
  return reports;
}

std::vector<LinkRecordReport> run_link_database(
    const LinkSession& session, const ecg::SyntheticDatabase& database,
    std::size_t record_count, std::size_t windows_per_record) {
  return run_link_database(session, database, record_count,
                           windows_per_record, parallel::global_pool());
}

double averaged_link_snr(const std::vector<LinkRecordReport>& reports) {
  CSECG_CHECK(!reports.empty(), "averaged_link_snr: no reports");
  double sum = 0.0;
  for (const auto& r : reports) sum += r.mean_snr;
  return sum / static_cast<double>(reports.size());
}

double averaged_link_energy(const std::vector<LinkRecordReport>& reports) {
  CSECG_CHECK(!reports.empty(), "averaged_link_energy: no reports");
  double sum = 0.0;
  for (const auto& r : reports) sum += r.mean_energy_j;
  return sum / static_cast<double>(reports.size());
}

}  // namespace csecg::link

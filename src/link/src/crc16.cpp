#include "csecg/link/crc16.hpp"

#include <array>

namespace csecg::link {
namespace {

constexpr std::uint16_t kPoly = 0x1021;

constexpr std::array<std::uint16_t, 256> make_table() {
  std::array<std::uint16_t, 256> table{};
  for (int byte = 0; byte < 256; ++byte) {
    std::uint16_t crc = static_cast<std::uint16_t>(byte << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = static_cast<std::uint16_t>(
          (crc & 0x8000) ? (crc << 1) ^ kPoly : (crc << 1));
    }
    table[static_cast<std::size_t>(byte)] = crc;
  }
  return table;
}

constexpr std::array<std::uint16_t, 256> kTable = make_table();

}  // namespace

std::uint16_t crc16_ccitt_update(std::uint16_t crc, const std::uint8_t* data,
                                 std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    crc = static_cast<std::uint16_t>(
        (crc << 8) ^ kTable[((crc >> 8) ^ data[i]) & 0xFF]);
  }
  return crc;
}

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size) {
  return crc16_ccitt_update(0xFFFF, data, size);
}

}  // namespace csecg::link

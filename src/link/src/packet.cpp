#include "csecg/link/packet.hpp"

#include "csecg/common/check.hpp"
#include "csecg/link/crc16.hpp"

namespace csecg::link {
namespace {

constexpr std::uint8_t kMagic = 0xA7;

void push_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

std::uint16_t peek_u16(const std::uint8_t* bytes) {
  return static_cast<std::uint16_t>((bytes[0] << 8) | bytes[1]);
}

}  // namespace

std::vector<std::uint8_t> serialize_packet(
    const PacketHeader& header, const std::vector<std::uint8_t>& payload) {
  CSECG_CHECK(payload.size() * 8 <= 0xFFFF,
              "serialize_packet: payload too large for the bit-count field");
  CSECG_CHECK((header.payload_bits + 7) / 8 == payload.size(),
              "serialize_packet: payload_bits "
                  << header.payload_bits << " does not match "
                  << payload.size() << " payload bytes");

  std::vector<std::uint8_t> out;
  out.reserve(kPacketOverheadBytes + payload.size());
  out.push_back(kMagic);
  out.push_back(static_cast<std::uint8_t>(header.kind));
  push_u16(out, header.stream_id);
  push_u16(out, header.window_seq);
  out.push_back(header.packet_seq);
  out.push_back(header.packet_count);
  push_u16(out, header.first);
  push_u16(out, header.count);
  push_u16(out, header.payload_bits);
  out.insert(out.end(), payload.begin(), payload.end());
  push_u16(out, crc16_ccitt(out.data(), out.size()));
  return out;
}

std::optional<Packet> parse_packet(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kPacketOverheadBytes) return std::nullopt;
  if (bytes[0] != kMagic) return std::nullopt;
  const std::uint8_t kind = bytes[1];
  if (kind > static_cast<std::uint8_t>(PayloadKind::kCodebook)) {
    return std::nullopt;
  }

  Packet packet;
  packet.header.kind = static_cast<PayloadKind>(kind);
  packet.header.stream_id = peek_u16(bytes.data() + 2);
  packet.header.window_seq = peek_u16(bytes.data() + 4);
  packet.header.packet_seq = bytes[6];
  packet.header.packet_count = bytes[7];
  packet.header.first = peek_u16(bytes.data() + 8);
  packet.header.count = peek_u16(bytes.data() + 10);
  packet.header.payload_bits = peek_u16(bytes.data() + 12);

  const std::size_t payload_bytes =
      (static_cast<std::size_t>(packet.header.payload_bits) + 7) / 8;
  if (bytes.size() != kPacketOverheadBytes + payload_bytes) {
    return std::nullopt;
  }
  const std::uint16_t crc =
      crc16_ccitt(bytes.data(), kPacketHeaderBytes + payload_bytes);
  if (crc != peek_u16(bytes.data() + kPacketHeaderBytes + payload_bytes)) {
    return std::nullopt;
  }
  packet.payload.assign(
      bytes.begin() + static_cast<long>(kPacketHeaderBytes),
      bytes.begin() + static_cast<long>(kPacketHeaderBytes + payload_bytes));
  return packet;
}

}  // namespace csecg::link

#include "csecg/link/arq.hpp"

#include <algorithm>
#include <utility>

#include "csecg/common/check.hpp"
#include "csecg/link/packet.hpp"

namespace csecg::link {
namespace {

/// One attempt: channel impairment, then the receiver's CRC gate.
/// Returns the delivered bytes only when they parse cleanly.
std::optional<std::vector<std::uint8_t>> attempt(
    const std::vector<std::uint8_t>& packet, Channel& channel,
    LinkStats& stats) {
  std::vector<std::uint8_t> bytes = packet;
  stats.data_bits += bytes.size() * 8;
  if (!channel.transmit(bytes)) return std::nullopt;
  if (!parse_packet(bytes).has_value()) {
    ++stats.crc_failures;
    return std::nullopt;
  }
  return bytes;
}

double backoff_for_retry(const ArqConfig& arq, int retry) {
  double wait = arq.backoff_base_ms;
  for (int i = 1; i < retry; ++i) wait *= arq.backoff_factor;
  return wait;
}

}  // namespace

void validate(const ArqConfig& config) {
  CSECG_CHECK(config.max_retries >= 0,
              "ArqConfig: max_retries must be non-negative");
  CSECG_CHECK(config.mode != ArqMode::kSelectiveRepeat ||
                  config.sr_window > 0,
              "ArqConfig: selective repeat needs a positive window");
  CSECG_CHECK(config.backoff_base_ms >= 0.0 && config.backoff_factor >= 1.0,
              "ArqConfig: backoff must be non-negative and non-shrinking");
}

std::vector<std::vector<std::uint8_t>> transmit_packets(
    const std::vector<std::vector<std::uint8_t>>& packets, Channel& channel,
    const ArqConfig& arq, LinkStats& stats) {
  validate(arq);
  stats.packets += packets.size();
  std::vector<std::vector<std::uint8_t>> received;
  received.reserve(packets.size());

  switch (arq.mode) {
    case ArqMode::kNone: {
      for (const auto& packet : packets) {
        if (auto bytes = attempt(packet, channel, stats)) {
          received.push_back(*std::move(bytes));
          ++stats.delivered;
        } else {
          ++stats.dropped;
        }
      }
      break;
    }
    case ArqMode::kStopAndWait: {
      for (const auto& packet : packets) {
        bool done = false;
        for (int try_index = 0; try_index <= arq.max_retries; ++try_index) {
          // Every attempt earns one ACK/NAK from the receiver.
          stats.feedback_bits += arq.feedback_bits;
          if (try_index > 0) {
            ++stats.retransmissions;
            stats.backoff_ms += backoff_for_retry(arq, try_index);
          }
          if (auto bytes = attempt(packet, channel, stats)) {
            received.push_back(*std::move(bytes));
            ++stats.delivered;
            done = true;
            break;
          }
        }
        if (!done) ++stats.dropped;
      }
      break;
    }
    case ArqMode::kSelectiveRepeat: {
      for (std::size_t base = 0; base < packets.size();
           base += arq.sr_window) {
        const std::size_t group_end =
            std::min(base + arq.sr_window, packets.size());
        std::vector<std::size_t> pending;
        for (std::size_t i = base; i < group_end; ++i) pending.push_back(i);

        for (int round = 0; round <= arq.max_retries && !pending.empty();
             ++round) {
          // One bitmap ACK per round trip covers the whole group.
          stats.feedback_bits += arq.feedback_bits;
          if (round > 0) {
            stats.retransmissions += pending.size();
            stats.backoff_ms += backoff_for_retry(arq, round);
          }
          std::vector<std::size_t> still_missing;
          for (const std::size_t i : pending) {
            if (auto bytes = attempt(packets[i], channel, stats)) {
              received.push_back(*std::move(bytes));
              ++stats.delivered;
            } else {
              still_missing.push_back(i);
            }
          }
          pending = std::move(still_missing);
        }
        stats.dropped += pending.size();
      }
      break;
    }
  }
  return received;
}

}  // namespace csecg::link

#include "csecg/link/packetizer.hpp"

#include <algorithm>
#include <utility>

#include "csecg/coding/bitstream.hpp"
#include "csecg/coding/decode_error.hpp"
#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"

namespace csecg::link {
namespace {

std::size_t payload_budget_bits(const PacketizerConfig& config) {
  return (config.mtu_bytes - kPacketOverheadBytes) * 8;
}

}  // namespace

void validate(const PacketizerConfig& config, int measurement_bits,
              int lowres_code_bits) {
  CSECG_CHECK(config.mtu_bytes > kPacketOverheadBytes,
              "PacketizerConfig: mtu " << config.mtu_bytes
                                       << " bytes leaves no payload room");
  CSECG_CHECK(config.mtu_bytes <= 2048,
              "PacketizerConfig: mtu exceeds the 16-bit bit-count format");
  const std::size_t budget = payload_budget_bits(config);
  CSECG_CHECK(measurement_bits <= 0 ||
                  budget >= static_cast<std::size_t>(measurement_bits),
              "PacketizerConfig: mtu cannot fit one measurement code");
  CSECG_CHECK(lowres_code_bits <= 0 ||
                  budget >= static_cast<std::size_t>(lowres_code_bits),
              "PacketizerConfig: mtu cannot fit one low-res code");
}

Packetizer::Packetizer(PacketizerConfig config,
                       sensing::Quantizer measurement_adc,
                       std::optional<coding::DeltaHuffmanCodec> lowres_codec)
    : config_(config),
      measurement_adc_(std::move(measurement_adc)),
      codec_(std::move(lowres_codec)) {
  validate(config_, measurement_adc_.bits(),
           codec_ ? codec_->code_bits() : 0);
}

std::vector<std::vector<std::uint8_t>> Packetizer::packetize(
    const core::Frame& frame, std::uint16_t window_seq) const {
  CSECG_CHECK(frame.measurement_bits == measurement_adc_.bits(),
              "Packetizer: frame carries " << frame.measurement_bits
                                           << "-bit measurements, ADC has "
                                           << measurement_adc_.bits());
  CSECG_CHECK(frame.window > 0 && frame.window <= 0xFFFF &&
                  frame.measurements.size() <= 0xFFFF,
              "Packetizer: frame shape exceeds the header format");
  CSECG_CHECK(frame.lowres_payload.empty() || codec_.has_value(),
              "Packetizer: frame has a low-res payload but no codec given");

  const std::size_t budget = payload_budget_bits(config_);
  const auto bits =
      static_cast<std::size_t>(frame.measurement_bits);
  const std::size_t m = frame.measurements.size();

  struct Chunk {
    PayloadKind kind;
    std::size_t first;
    std::size_t count;
  };
  std::vector<Chunk> chunks;

  // CS measurements: fixed-width codes, so the split is arithmetic.
  const std::size_t per_packet = std::max<std::size_t>(budget / bits, 1);
  for (std::size_t first = 0; first < m; first += per_packet) {
    chunks.push_back({PayloadKind::kCsMeasurements, first,
                      std::min(per_packet, m - first)});
  }

  // Low-res stream: greedy ranges against the codebook's exact bit costs.
  // Each range restarts with a raw B-bit code, so it decodes on its own.
  std::vector<std::int64_t> codes;
  if (!frame.lowres_payload.empty()) {
    codes = codec_->decode(frame.lowres_payload, frame.window);
    const auto code_bits = static_cast<std::size_t>(codec_->code_bits());
    const std::size_t escape_cost =
        static_cast<std::size_t>(
            codec_->codebook().code_length(codec_->escape_symbol())) +
        code_bits + 1;
    std::size_t first = 0;
    while (first < codes.size()) {
      std::size_t used = code_bits;  // Raw restart code.
      std::size_t end = first + 1;
      while (end < codes.size()) {
        const std::int64_t diff = codes[end] - codes[end - 1];
        const std::size_t cost =
            codec_->codebook().contains(diff)
                ? static_cast<std::size_t>(
                      codec_->codebook().code_length(diff))
                : escape_cost;
        if (used + cost > budget) break;
        used += cost;
        ++end;
      }
      chunks.push_back({PayloadKind::kLowRes, first, end - first});
      first = end;
    }
  }

  CSECG_CHECK(chunks.size() <= 0xFF,
              "Packetizer: window needs " << chunks.size()
                                          << " packets, format caps at 255");

  std::vector<std::vector<std::uint8_t>> train;
  train.reserve(chunks.size());
  for (std::size_t p = 0; p < chunks.size(); ++p) {
    const Chunk& chunk = chunks[p];
    PacketHeader header;
    header.kind = chunk.kind;
    header.stream_id = config_.stream_id;
    header.window_seq = window_seq;
    header.packet_seq = static_cast<std::uint8_t>(p);
    header.packet_count = static_cast<std::uint8_t>(chunks.size());
    header.first = static_cast<std::uint16_t>(chunk.first);
    header.count = static_cast<std::uint16_t>(chunk.count);

    std::vector<std::uint8_t> payload;
    std::size_t payload_bits = 0;
    if (chunk.kind == PayloadKind::kCsMeasurements) {
      coding::BitWriter writer;
      for (std::size_t i = 0; i < chunk.count; ++i) {
        writer.write(static_cast<std::uint64_t>(measurement_adc_.code(
                         frame.measurements[chunk.first + i])),
                     frame.measurement_bits);
      }
      payload_bits = writer.bit_count();
      payload = writer.finish();
    } else {
      const std::vector<std::int64_t> range(
          codes.begin() + static_cast<long>(chunk.first),
          codes.begin() + static_cast<long>(chunk.first + chunk.count));
      payload = codec_->encode(range, payload_bits);
    }
    header.payload_bits = static_cast<std::uint16_t>(payload_bits);
    train.push_back(serialize_packet(header, payload));
  }
  return train;
}

std::vector<std::vector<std::uint8_t>> Packetizer::packetize_blob(
    const std::vector<std::uint8_t>& blob, std::uint16_t window_seq) const {
  CSECG_CHECK(!blob.empty(), "Packetizer: empty provisioning blob");
  CSECG_CHECK(blob.size() <= 0xFFFF,
              "Packetizer: blob exceeds the 16-bit offset format");
  const std::size_t per_packet = payload_budget_bits(config_) / 8;
  const std::size_t count = (blob.size() + per_packet - 1) / per_packet;
  CSECG_CHECK(count <= 0xFF, "Packetizer: blob needs more than 255 packets");

  std::vector<std::vector<std::uint8_t>> train;
  train.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    const std::size_t first = p * per_packet;
    const std::size_t size = std::min(per_packet, blob.size() - first);
    PacketHeader header;
    header.kind = PayloadKind::kCodebook;
    header.stream_id = config_.stream_id;
    header.window_seq = window_seq;
    header.packet_seq = static_cast<std::uint8_t>(p);
    header.packet_count = static_cast<std::uint8_t>(count);
    header.first = static_cast<std::uint16_t>(first);
    header.count = static_cast<std::uint16_t>(size);
    header.payload_bits = static_cast<std::uint16_t>(size * 8);
    train.push_back(serialize_packet(
        header, std::vector<std::uint8_t>(
                    blob.begin() + static_cast<long>(first),
                    blob.begin() + static_cast<long>(first + size))));
  }
  return train;
}

// ---------------------------------------------------------------------------
// Reassembler.

Reassembler::Reassembler(std::size_t measurements, std::size_t window,
                         sensing::Quantizer measurement_adc,
                         std::optional<coding::DeltaHuffmanCodec> lowres_codec,
                         std::uint16_t stream_id)
    : measurements_(measurements),
      window_(window),
      measurement_adc_(std::move(measurement_adc)),
      codec_(std::move(lowres_codec)),
      stream_id_(stream_id) {
  CSECG_CHECK(measurements_ > 0 && window_ > 0,
              "Reassembler: degenerate frame geometry");
}

ReassemblyResult Reassembler::reassemble(
    std::uint16_t window_seq,
    const std::vector<std::vector<std::uint8_t>>& delivered) const {
  ReassemblyResult result;
  core::LossyWindow& out = result.window;
  out.window = window_;
  out.measurements = linalg::Vector(measurements_);
  out.measurement_mask.assign(measurements_, 0);
  if (codec_.has_value()) {
    out.lowres_codes.assign(window_, 0);
    out.lowres_mask.assign(window_, 0);
  }

  const auto bits = static_cast<std::size_t>(measurement_adc_.bits());
  for (const auto& bytes : delivered) {
    const std::optional<Packet> parsed = parse_packet(bytes);
    if (!parsed.has_value() || parsed->header.stream_id != stream_id_ ||
        parsed->header.window_seq != window_seq) {
      ++result.packets_rejected;
      continue;
    }
    const PacketHeader& header = parsed->header;
    const std::size_t first = header.first;
    const std::size_t count = header.count;

    if (header.kind == PayloadKind::kCsMeasurements) {
      if (count == 0 || first + count > measurements_ ||
          header.payload_bits != count * bits) {
        ++result.packets_rejected;
        continue;
      }
      coding::BitReader reader(parsed->payload);
      std::vector<std::int64_t> codes(count);
      bool valid = true;
      for (std::size_t i = 0; i < count; ++i) {
        codes[i] = static_cast<std::int64_t>(
            reader.read(measurement_adc_.bits()));
        if (codes[i] >= measurement_adc_.levels()) {
          valid = false;
          break;
        }
      }
      if (!valid) {
        ++result.packets_rejected;
        continue;
      }
      for (std::size_t i = 0; i < count; ++i) {
        out.measurements[first + i] = measurement_adc_.reconstruct(codes[i]);
        out.measurement_mask[first + i] = 1;
      }
      ++result.packets_accepted;
    } else if (header.kind == PayloadKind::kLowRes) {
      if (!codec_.has_value() || count == 0 || first + count > window_) {
        ++result.packets_rejected;
        continue;
      }
      std::vector<std::int64_t> codes;
      try {
        codes = codec_->decode(parsed->payload, count);
      } catch (const coding::DecodeError&) {
        // A CRC collision let a mangled range through — drop it.  Only
        // the typed decode error is survivable here; anything else is a
        // programming bug and must surface.
        static obs::Counter& payload_errors =
            obs::counter("decode.payload_errors");
        payload_errors.add();
        ++result.packets_rejected;
        continue;
      }
      const std::int64_t levels = std::int64_t{1} << codec_->code_bits();
      const bool valid =
          std::all_of(codes.begin(), codes.end(), [levels](std::int64_t c) {
            return c >= 0 && c < levels;
          });
      if (!valid) {
        ++result.packets_rejected;
        continue;
      }
      for (std::size_t i = 0; i < count; ++i) {
        out.lowres_codes[first + i] = codes[i];
        out.lowres_mask[first + i] = 1;
      }
      ++result.packets_accepted;
    } else {
      // Provisioning traffic is not part of a window; count it accepted
      // so ARQ accounting stays consistent, but contribute nothing.
      ++result.packets_accepted;
    }
  }
  return result;
}

std::optional<std::vector<std::uint8_t>> Reassembler::reassemble_blob(
    const std::vector<std::vector<std::uint8_t>>& delivered) {
  std::vector<Packet> parts;
  for (const auto& bytes : delivered) {
    std::optional<Packet> parsed = parse_packet(bytes);
    if (parsed.has_value() &&
        parsed->header.kind == PayloadKind::kCodebook) {
      parts.push_back(*std::move(parsed));
    }
  }
  if (parts.empty()) return std::nullopt;
  const std::uint8_t expected = parts.front().header.packet_count;
  std::sort(parts.begin(), parts.end(),
            [](const Packet& a, const Packet& b) {
              return a.header.first < b.header.first;
            });
  std::vector<std::uint8_t> blob;
  std::size_t offset = 0;
  for (const Packet& part : parts) {
    if (part.header.packet_count != expected ||
        part.header.first != offset ||
        part.payload.size() != part.header.count) {
      return std::nullopt;
    }
    blob.insert(blob.end(), part.payload.begin(), part.payload.end());
    offset += part.header.count;
  }
  if (parts.size() != expected) return std::nullopt;
  return blob;
}

}  // namespace csecg::link

#include "csecg/link/channel.hpp"

#include "csecg/common/check.hpp"
#include "csecg/rng/distributions.hpp"

namespace csecg::link {
namespace {

bool is_probability(double p) { return p >= 0.0 && p <= 1.0; }

double stationary_bad(const ChannelConfig& config) {
  return config.ge_good_to_bad /
         (config.ge_good_to_bad + config.ge_bad_to_good);
}

}  // namespace

void validate(const ChannelConfig& config) {
  CSECG_CHECK(is_probability(config.bit_error_rate) &&
                  is_probability(config.erasure_rate) &&
                  is_probability(config.ge_good_to_bad) &&
                  is_probability(config.ge_bad_to_good) &&
                  is_probability(config.ge_erasure_good) &&
                  is_probability(config.ge_erasure_bad),
              "ChannelConfig: probabilities must lie in [0, 1]");
  if (config.kind == ChannelKind::kGilbertElliott) {
    CSECG_CHECK(config.ge_good_to_bad + config.ge_bad_to_good > 0.0,
                "ChannelConfig: Gilbert–Elliott chain cannot mix "
                "(both transition probabilities zero)");
  }
}

Channel::Channel(const ChannelConfig& config)
    : Channel(config, config.seed) {}

Channel::Channel(const ChannelConfig& config, std::uint64_t seed_override)
    : config_(config), gen_(seed_override) {
  validate(config_);
  if (config_.kind == ChannelKind::kGilbertElliott) {
    // Start from the stationary distribution so short packet trains see
    // the model's long-run loss rate without a burn-in bias.
    ge_bad_ = rng::uniform01(gen_) < stationary_bad(config_);
  }
}

bool Channel::transmit(std::vector<std::uint8_t>& packet) {
  switch (config_.kind) {
    case ChannelKind::kPerfect:
      return true;
    case ChannelKind::kBitError: {
      if (config_.bit_error_rate <= 0.0) return true;
      for (auto& byte : packet) {
        for (int bit = 0; bit < 8; ++bit) {
          if (rng::bernoulli(gen_, config_.bit_error_rate)) {
            byte = static_cast<std::uint8_t>(byte ^ (1u << bit));
          }
        }
      }
      return true;
    }
    case ChannelKind::kPacketErasure:
      return !rng::bernoulli(gen_, config_.erasure_rate);
    case ChannelKind::kGilbertElliott: {
      const double p_loss =
          ge_bad_ ? config_.ge_erasure_bad : config_.ge_erasure_good;
      const bool delivered = !rng::bernoulli(gen_, p_loss);
      const double p_flip =
          ge_bad_ ? config_.ge_bad_to_good : config_.ge_good_to_bad;
      if (rng::bernoulli(gen_, p_flip)) ge_bad_ = !ge_bad_;
      return delivered;
    }
  }
  return true;
}

double Channel::expected_erasure_rate() const noexcept {
  switch (config_.kind) {
    case ChannelKind::kPerfect:
    case ChannelKind::kBitError:
      return 0.0;
    case ChannelKind::kPacketErasure:
      return config_.erasure_rate;
    case ChannelKind::kGilbertElliott: {
      const double pi_bad = stationary_bad(config_);
      return pi_bad * config_.ge_erasure_bad +
             (1.0 - pi_bad) * config_.ge_erasure_good;
    }
  }
  return 0.0;
}

}  // namespace csecg::link

// Front-end configuration — the single knob set shared by the encoder
// (sensor node) and decoder (receiver).
//
// Both ends construct their sensing operator from (ensemble, m, n, seed),
// so nothing about Φ travels over the air; this mirrors how the real node
// and base station share a PRBS polynomial and seed.
#pragma once

#include <cstdint>

#include "csecg/dsp/wavelet.hpp"
#include "csecg/recovery/pdhg.hpp"
#include "csecg/sensing/matrices.hpp"

namespace csecg::core {

/// Complete description of one front-end design point.
struct FrontEndConfig {
  // --- Processing window -------------------------------------------------
  std::size_t window = 512;  ///< n — samples per fixed-size window; must be
                             ///< divisible by 2^wavelet_levels.

  // --- CS channel (paper §III-A) ------------------------------------------
  std::size_t measurements = 96;  ///< m — RMPI channels.
  /// Sensing ensemble.  kRademacher is the RMPI-realizable default and
  /// runs through the time-domain simulator; the other ensembles use an
  /// ideal y = Φx matrix path (ablation only — they have no ±1-chip analog
  /// realization) and are incompatible with integrator_leakage.
  sensing::Ensemble ensemble = sensing::Ensemble::kRademacher;
  std::uint64_t chip_seed = 2015;    ///< Shared PRBS seed.
  int measurement_adc_bits = 12;     ///< Per-channel measurement ADC.
  double integrator_leakage = 0.0;   ///< RMPI integrator non-ideality λ.

  // --- Low-resolution parallel channel (paper §II) ------------------------
  int lowres_bits = 7;  ///< B of the parallel ADC; 0 disables the channel
                        ///< (plain single-lead CS front-end).

  // --- Input format --------------------------------------------------------
  int record_bits = 11;    ///< Resolution of the raw input codes (MIT-BIH).
  int original_bits = 12;  ///< Reference resolution for CR accounting
                           ///< (paper Eq. 2 assumes 12-bit originals).

  // --- Reconstruction -------------------------------------------------------
  dsp::WaveletFamily wavelet = dsp::WaveletFamily::kDb4;
  int wavelet_levels = 5;
  double sigma_scale = 1.5;  ///< Fidelity radius σ = scale × expected
                             ///< measurement-ADC quantization noise norm.
  /// PDHG defaults tuned for ADC-unit ECG windows: the 0.01 dual/primal
  /// ratio enlarges the primal step to match the coefficient scale, which
  /// converges the unconstrained baseline ~10× faster (see EXPERIMENTS.md).
  recovery::PdhgOptions solver = [] {
    recovery::PdhgOptions options;
    options.max_iterations = 2000;
    options.tol = 1e-5;
    options.dual_primal_ratio = 0.01;
    return options;
  }();

  /// Mid-scale DC reference subtracted before the CS mixers (the analog
  /// front-end is AC-coupled); derived from record_bits.
  double dc_reference() const noexcept;

  /// CR of the CS channel per Eq. 3 against original_bits-bit samples,
  /// in percent.  With measurement_adc_bits == original_bits this is
  /// (1 − m/n)·100, the paper's x-axis.
  double cs_compression_ratio() const noexcept;

  /// Number of measurements that realizes a target CS-channel CR (percent),
  /// clamped to [1, n].
  std::size_t measurements_for_cr(double cr_percent) const noexcept;
};

/// Validates a FrontEndConfig; throws std::invalid_argument on nonsense
/// (window/level mismatch, m > n, bad bit depths, ...).
void validate(const FrontEndConfig& config);

}  // namespace csecg::core

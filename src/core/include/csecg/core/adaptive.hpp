// Adaptive measurement-rate extension.
//
// The paper fixes m at design time; a natural extension (its trade-off
// section invites it) is letting the node pick m per window from signal
// activity it can observe for free: the low-resolution channel's delta
// stream.  Quiet diastolic windows compress with few channels; windows
// dense in QRS complexes or motion artifact get more.  Hardware-wise this
// is power-gating unused RD channels, so the average analog power scales
// with the *average* m.
//
// Both ends stay synchronized without side information because the chip
// matrix rows are generated sequentially from the shared seed: the first
// m rows of the m_max-channel bank equal the m-channel bank, and the
// frame itself carries how many measurements were sent.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "csecg/core/frontend.hpp"

namespace csecg::core {

/// Controller policy: maps low-res delta activity to a channel count.
struct AdaptiveRateConfig {
  std::size_t m_min = 32;
  std::size_t m_max = 192;
  /// Activity (fraction of non-zero low-res deltas) mapped linearly onto
  /// [m_min, m_max] between these two points.
  double low_activity = 0.05;
  double high_activity = 0.35;
};

/// Validates an AdaptiveRateConfig against a front-end config; throws
/// std::invalid_argument on nonsense (m_min > m_max, m_max > n, ...).
void validate(const AdaptiveRateConfig& rate, const FrontEndConfig& base);

/// Fraction of non-zero deltas in a low-res code stream (the activity
/// signal; 0 = flat line, → 1 = busy).
double delta_activity(const std::vector<std::int64_t>& codes);

/// Channel count for an activity level under a policy.
std::size_t channels_for_activity(double activity,
                                  const AdaptiveRateConfig& rate);

/// Encoder+decoder pair with per-window rate adaptation.
class AdaptiveCodec {
 public:
  /// `base` supplies everything but m (its `measurements` is ignored);
  /// the low-resolution channel must be enabled — it is both the box
  /// side-information and the activity sensor.
  AdaptiveCodec(FrontEndConfig base, AdaptiveRateConfig rate,
                coding::DeltaHuffmanCodec lowres_codec);

  const FrontEndConfig& base_config() const noexcept { return base_; }
  const AdaptiveRateConfig& rate_config() const noexcept { return rate_; }

  /// Encodes one window with an activity-chosen channel count.
  Frame encode(const linalg::Vector& window) const;

  /// Channel count the last encode() picked.
  std::size_t last_channels() const noexcept { return last_m_; }

  /// Decodes any frame whose measurement count is in [m_min, m_max]
  /// (decoders are built lazily per distinct m and cached).
  DecodeResult decode(const Frame& frame,
                      DecodeMode mode = DecodeMode::kAuto) const;

 private:
  const Encoder& encoder_for(std::size_t m) const;
  const Decoder& decoder_for(std::size_t m) const;

  FrontEndConfig base_;
  AdaptiveRateConfig rate_;
  coding::DeltaHuffmanCodec codec_;
  sensing::LowResChannel lowres_;
  mutable std::map<std::size_t, std::unique_ptr<Encoder>> encoders_;
  mutable std::map<std::size_t, std::unique_ptr<Decoder>> decoders_;
  mutable std::size_t last_m_ = 0;
};

}  // namespace csecg::core

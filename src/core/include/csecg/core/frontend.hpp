// The hybrid CS ECG front-end: encoder (sensor node) and decoder
// (receiver) — the paper's primary contribution, assembled from the
// substrate libraries.
//
// Encoder per window (Fig. 1):
//   1. AC-couple: subtract the mid-scale DC reference.
//   2. CS channel: RMPI chip–integrate–dump over the window, quantize each
//      channel with the measurement ADC → y.
//   3. Low-resolution channel: B-bit Nyquist-rate ADC on the raw window,
//      delta + Huffman coded with the offline codebook → payload.
//
// Decoder per window:
//   1. Regenerate Φ from the shared chip seed (leakage-aware).
//   2. Rebuild the low-resolution staircase ẋ and the per-sample box
//      [ẋ, ẋ+d].
//   3. Solve problem (1) by PDHG: min ‖Ψᵀx‖₁ s.t. ‖Φ(x−dc)−y‖ ≤ σ and
//      ẋ ≤ x ≤ ẋ+d.  Without the box this is the "normal CS" baseline.
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "csecg/linalg/solve.hpp"

#include "csecg/coding/delta_huffman_codec.hpp"
#include "csecg/core/config.hpp"
#include "csecg/core/frame.hpp"
#include "csecg/dsp/dwt.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/recovery/pdhg.hpp"
#include "csecg/sensing/lowres_channel.hpp"
#include "csecg/sensing/rmpi.hpp"

namespace csecg::core {

/// Trains the low-resolution channel's delta-Huffman codebook offline over
/// windows drawn from database records [0, training_records).  Uses the
/// config's lowres_bits; throws std::invalid_argument if the channel is
/// disabled (lowres_bits == 0) or training_records == 0.
coding::DeltaHuffmanCodec train_lowres_codec(
    const FrontEndConfig& config, const ecg::SyntheticDatabase& database,
    std::size_t training_records = 8, std::size_t windows_per_record = 4);

/// The sensor-node side.
class Encoder {
 public:
  /// The codec is required iff the low-resolution channel is enabled.
  Encoder(FrontEndConfig config,
          std::optional<coding::DeltaHuffmanCodec> lowres_codec);

  const FrontEndConfig& config() const noexcept { return config_; }

  /// The CS-channel measurement ADC (needed to serialize frames); absent
  /// only when measurement_adc_bits == 0.
  const std::optional<sensing::Quantizer>& measurement_adc() const noexcept;

  /// Encodes one raw window (length n, record-unit ADC codes as doubles).
  Frame encode(const linalg::Vector& window) const;

 private:
  FrontEndConfig config_;
  sensing::RmpiSimulator rmpi_;
  /// Ideal-matrix path for the non-Rademacher ablation ensembles.
  std::optional<linalg::Matrix> phi_alt_;
  std::optional<sensing::LowResChannel> lowres_;
  std::optional<coding::DeltaHuffmanCodec> codec_;
};

/// How the decoder uses the side channel.
enum class DecodeMode {
  kAuto,      ///< Hybrid when the frame carries a low-res payload.
  kHybrid,    ///< Require the box constraint (throws if absent).
  kNormalCs,  ///< Ignore the side channel (the Fig. 7 "CS" baseline).
};

/// Decoder output.
struct DecodeResult {
  linalg::Vector x;            ///< Reconstructed raw-unit window.
  recovery::PdhgResult solver;  ///< Convergence diagnostics.
  bool used_box = false;       ///< True when the hybrid constraint was on.
};

/// A window as it survived a lossy link: per-measurement and per-sample
/// delivery masks, produced by the link layer's reassembler
/// (csecg::link::Reassembler).  Entries whose mask is 0 are undefined.
struct LossyWindow {
  std::size_t window = 0;  ///< n — must match the decoder config.
  /// Measurement values (ADC reconstruction levels), length m.
  linalg::Vector measurements;
  /// 1 where the measurement's packet arrived with a valid CRC, length m.
  std::vector<std::uint8_t> measurement_mask;
  /// Low-resolution codes, length n (empty when the side channel is off
  /// or nothing of it arrived).
  std::vector<std::int64_t> lowres_codes;
  /// 1 where the sample's low-res packet arrived, length n (empty with
  /// lowres_codes).
  std::vector<std::uint8_t> lowres_mask;
};

/// Outcome of a loss-resilient decode.
struct LossyDecodeResult {
  linalg::Vector x;             ///< Reconstructed raw-unit window.
  recovery::PdhgResult solver;  ///< Convergence diagnostics (default-
                                ///< initialized on the low-res-only path).
  std::size_t effective_m = 0;  ///< Φ rows that survived the link.
  std::size_t boxed_samples = 0;  ///< Samples with a live box constraint.
  bool used_box = false;        ///< Any box constraint was active.
  bool lowres_only = false;     ///< Whole CS train lost — staircase output.
};

/// The receiver side.
class Decoder {
 public:
  Decoder(FrontEndConfig config,
          std::optional<coding::DeltaHuffmanCodec> lowres_codec);

  const FrontEndConfig& config() const noexcept { return config_; }

  /// Reconstructs a window from its frame.  Thread-safe: decode only
  /// reads shared state, so one decoder can serve many windows
  /// concurrently (the experiment runner relies on this).
  DecodeResult decode(const Frame& frame,
                      DecodeMode mode = DecodeMode::kAuto) const;

  /// Reconstructs a window from whatever the link delivered.  CS
  /// measurements are democratic, so lost rows of Φ and y are simply
  /// dropped before the solve (σ shrinks with √(m_eff/m)); samples whose
  /// low-res packet was lost keep only the trivial full-scale box; a
  /// whole-CS-train loss falls back to the low-resolution staircase.
  /// Never throws on any mask combination — only on shape mismatches
  /// against the config (API misuse).  With everything delivered this is
  /// bit-identical to decode(frame, kAuto).  Thread-safe like decode().
  LossyDecodeResult decode_lossy(const LossyWindow& window) const;

  /// Dense synthesis dictionary A = Φ·Ψ (columns are measured wavelet
  /// atoms) — the operator coefficient-domain solvers (FISTA, SPGL1,
  /// greedy pursuit) consume.  Built on first use and cached for the
  /// decoder's lifetime so callers stop re-materializing the Φ∘Ψ chain
  /// per window; safe to call from several threads.
  const linalg::Matrix& synthesis_dictionary() const;

  /// The fidelity radius σ the full-measurement solves use
  /// (sigma_scale × expected quantization-noise norm); lossy decodes
  /// shrink it by √(m_eff/m).  Exposed so the quality ledger can record
  /// the per-window radius next to the solver residual.
  double sigma() const noexcept { return sigma_; }

 private:
  /// Box [ẋ−dc, ẋ+d−dc] from decoded low-res codes, in the AC domain the
  /// solver works in.  Shared by the lossless and lossy decode paths so
  /// they cannot drift numerically.
  recovery::BoxConstraint box_from_codes(
      const std::vector<std::int64_t>& codes) const;

  /// The full-Φ solve both decode paths funnel through (per-window
  /// options, warm start, DC shift).
  DecodeResult solve_window(const linalg::Vector& y,
                            std::optional<recovery::BoxConstraint> box) const;

  FrontEndConfig config_;
  sensing::RmpiSimulator rmpi_;
  std::optional<sensing::LowResChannel> lowres_;
  std::optional<coding::DeltaHuffmanCodec> codec_;
  dsp::Dwt dwt_;
  /// Dense Φ, kept for the lossy path's row dropping.
  linalg::Matrix phi_dense_;
  linalg::LinearOperator phi_;
  /// Ψ as an operator, materialized once (decode used to rebuild it per
  /// window).
  linalg::LinearOperator psi_;
  mutable std::once_flag dictionary_once_;
  mutable linalg::Matrix phi_psi_dense_;
  /// Cholesky of ΦΦᵀ, cached for the least-norm warm start of the
  /// unconstrained (normal-CS) solves.
  std::unique_ptr<linalg::Cholesky> gram_chol_;
  double phi_norm_ = 0.0;
  double sigma_ = 0.0;
};

/// Convenience wrapper owning a matched encoder/decoder pair.
class Codec {
 public:
  Codec(FrontEndConfig config,
        std::optional<coding::DeltaHuffmanCodec> lowres_codec);

  const FrontEndConfig& config() const noexcept { return encoder_.config(); }
  const Encoder& encoder() const noexcept { return encoder_; }
  const Decoder& decoder() const noexcept { return decoder_; }

  /// encode + decode in one call.
  DecodeResult roundtrip(const linalg::Vector& window,
                         DecodeMode mode = DecodeMode::kAuto) const;

 private:
  Encoder encoder_;
  Decoder decoder_;
};

}  // namespace csecg::core

// Streaming (sample-at-a-time) front-end API.
//
// A real sensor node never sees whole windows: the ADC delivers one
// sample per tick and the radio wants a frame every n samples.
// StreamingEncoder buffers the incoming samples, emits a Frame per filled
// window, and StreamingDecoder reassembles the reconstructed signal on
// the receiver — including the paper's "fixed time window" transmission
// cadence (Fig. 1) and per-window bookkeeping for duty-cycle analysis.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "csecg/core/frontend.hpp"

namespace csecg::core {

/// Sample-driven wrapper around Encoder.
class StreamingEncoder {
 public:
  /// Same construction contract as Encoder.
  StreamingEncoder(FrontEndConfig config,
                   std::optional<coding::DeltaHuffmanCodec> lowres_codec);

  const FrontEndConfig& config() const noexcept { return encoder_.config(); }

  /// Feeds one raw ADC sample.  Returns a frame exactly when this sample
  /// completes a window, otherwise std::nullopt.
  std::optional<Frame> push(double sample);

  /// Samples currently buffered toward the next frame.
  std::size_t pending() const noexcept { return buffer_fill_; }

  /// Frames emitted so far.
  std::size_t frames_emitted() const noexcept { return frames_emitted_; }

  /// Total air bits emitted so far (for duty-cycle math).
  std::size_t bits_emitted() const noexcept { return bits_emitted_; }

  /// Discards any partially filled window (e.g. on lead-off).
  void reset() noexcept;

 private:
  Encoder encoder_;
  linalg::Vector buffer_;
  std::size_t buffer_fill_ = 0;
  std::size_t frames_emitted_ = 0;
  std::size_t bits_emitted_ = 0;
};

/// Frame-driven wrapper around Decoder that reassembles the signal.
class StreamingDecoder {
 public:
  StreamingDecoder(FrontEndConfig config,
                   std::optional<coding::DeltaHuffmanCodec> lowres_codec,
                   DecodeMode mode = DecodeMode::kAuto);

  const FrontEndConfig& config() const noexcept { return decoder_.config(); }

  /// Decodes one frame and appends its window to the reconstruction.
  /// Returns the decoded window.
  const linalg::Vector& push(const Frame& frame);

  /// Everything reconstructed so far, in sample order.
  const linalg::Vector& signal() const noexcept { return signal_; }

  /// Windows decoded so far.
  std::size_t frames_decoded() const noexcept { return frames_decoded_; }

 private:
  Decoder decoder_;
  DecodeMode mode_;
  linalg::Vector signal_;
  linalg::Vector last_window_;
  std::size_t frames_decoded_ = 0;
};

}  // namespace csecg::core

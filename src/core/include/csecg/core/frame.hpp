// The per-window transmission frame (paper Fig. 1: "collected data from
// both paths are transmitted at a fixed time window").
//
// serialize_frame()/deserialize_frame() define the over-the-air byte
// layout, so the encoder and decoder can live on different machines:
//
//   [magic u16] [window u16] [m u16] [meas_bits u8] [lowres flag u8]
//   [measurement codes, meas_bits each, MSB-first]
//   [lowres_bits u32] [lowres payload bytes]
//
// Measurements are transported as their ADC codes (the decoder re-derives
// the reconstruction values from the shared Quantizer), which is what the
// radio of a real node would send.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "csecg/linalg/vector.hpp"
#include "csecg/sensing/quantizer.hpp"

namespace csecg::core {

/// One window's payload: the CS channel's quantized measurements plus the
/// delta-Huffman-coded low-resolution stream.
struct Frame {
  /// Quantized measurement values y (reconstruction levels of the
  /// measurement ADC, in input units).
  linalg::Vector measurements;
  /// Bits per transmitted measurement (the measurement ADC resolution).
  int measurement_bits = 0;

  /// Entropy-coded low-resolution payload; empty when the parallel channel
  /// is disabled.
  std::vector<std::uint8_t> lowres_payload;
  /// Exact low-resolution bit count before byte padding.
  std::size_t lowres_bits = 0;

  /// Window length n the frame describes.
  std::size_t window = 0;

  /// Air bits spent by the CS channel.
  std::size_t cs_bits() const noexcept {
    return measurements.size() * static_cast<std::size_t>(measurement_bits);
  }

  /// Total air bits of the frame.
  std::size_t total_bits() const noexcept { return cs_bits() + lowres_bits; }
};

/// Serializes a frame to the over-the-air byte layout.  `measurement_adc`
/// must be the CS channel's measurement quantizer (shared design
/// knowledge); it converts measurement values to codes.  Throws
/// std::invalid_argument if a measurement is outside the ADC range or the
/// frame shape exceeds the format's 16-bit fields.
std::vector<std::uint8_t> serialize_frame(
    const Frame& frame, const sensing::Quantizer& measurement_adc);

/// Typed parse failure for over-the-air input, so receivers can tell
/// "the radio delivered garbage" apart from other failures by type.
/// Derives from std::invalid_argument to stay compatible with callers
/// that catch the historical exception type.
class FrameError : public std::invalid_argument {
 public:
  explicit FrameError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Parses a serialized frame without throwing on malformed input: every
/// read is bounds-checked, field values are validated against the shared
/// ADC design knowledge (bit depth, code range), and trailing garbage is
/// rejected.  Returns std::nullopt on any defect; when `error` is non-null
/// it receives a description of the first defect found.
std::optional<Frame> try_deserialize_frame(
    const std::vector<std::uint8_t>& bytes,
    const sensing::Quantizer& measurement_adc,
    std::string* error = nullptr);

/// Parses a serialized frame.  Throws FrameError on malformed or
/// truncated input (same validation as try_deserialize_frame).
Frame deserialize_frame(const std::vector<std::uint8_t>& bytes,
                        const sensing::Quantizer& measurement_adc);

}  // namespace csecg::core

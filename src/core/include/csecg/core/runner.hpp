// Experiment runner: streams records through a codec and aggregates the
// paper's metrics (PRD/SNR per window, CR and side-channel overhead per
// record).  The Fig. 7/8 benches and the examples are thin wrappers over
// these calls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csecg/core/frontend.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/parallel/thread_pool.hpp"

namespace csecg::core {

/// Quality/cost metrics of one decoded window.
///
/// Two PRD conventions are reported.  The headline `prd`/`snr` is the
/// zero-mean variant (reference energy excludes the ~1024-code ADC
/// baseline): it lands in the paper's 0–25 dB value range and makes the
/// high-CR collapse of normal CS visible, exactly as in Fig. 7.  The raw
/// variant (baseline included, the literal §IV formula) is also recorded;
/// it shifts both methods up by the same baseline-energy factor.
struct WindowMetrics {
  double prd = 0.0;       ///< Zero-mean PRD (%) — headline metric.
  double snr = 0.0;       ///< −20·log10(PRD/100) in dB.
  double prd_raw = 0.0;   ///< Raw-sample PRD (%).
  double snr_raw = 0.0;   ///< SNR from raw PRD.
  std::size_t cs_bits = 0;
  std::size_t lowres_bits = 0;
  bool converged = false;
  int iterations = 0;
  double ball_violation = 0.0;   ///< max(0, ‖Φx−y‖−σ) at solver exit.
  std::uint64_t encode_ns = 0;   ///< Encode wall time (0 if obs disabled).
  std::uint64_t decode_ns = 0;   ///< Decode wall time (0 if obs disabled).
};

/// Aggregate over one record.
///
/// The convergence block exists because mean_prd/mean_snr alone cannot be
/// trusted: a window whose solver hit the iteration cap still contributes
/// its (possibly garbage) PRD to the mean.  Consumers should treat any
/// report with non_converged_windows > 0 as suspect and inspect the
/// per-window `converged` flags (the counters also surface globally under
/// `runner.*` in obs::snapshot_json()).
struct RecordReport {
  std::string record_name;
  std::vector<WindowMetrics> windows;
  double mean_prd = 0.0;
  double mean_snr = 0.0;
  double cs_cr_percent = 0.0;       ///< CS-channel CR (config-determined).
  double overhead_percent = 0.0;    ///< Measured side-channel overhead Dᵢ.
  double net_cr_percent = 0.0;      ///< cs_cr − overhead.
  // --- Solver convergence (ISSUE 3) ---------------------------------------
  std::size_t converged_windows = 0;
  std::size_t non_converged_windows = 0;  ///< Hit the iteration cap.
  std::uint64_t total_solver_iterations = 0;
  int max_solver_iterations = 0;          ///< Worst window.
  double max_ball_violation = 0.0;        ///< Worst residual excess at exit.
  // --- Per-stage wall time (zero when obs::set_enabled(false)) ------------
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  // --- Quality-outlier flagging (ISSUE 4) ----------------------------------
  /// Indices of windows whose SNR fell below the robust (MAD-based) lower
  /// fence `median − 3.5·1.4826·MAD` over this record's windows.  Empty for
  /// clean records; the same indices are marked `"outlier":true` in the
  /// quality ledger rows.
  std::vector<std::size_t> outlier_windows;
  /// The SNR fence (dB) the flags above were cut at.
  double outlier_snr_threshold_db = 0.0;
};

/// Encodes/decodes `window_count` windows of one record, decoding windows
/// concurrently on the given pool.  Every window's metrics are written
/// into a pre-sized slot and the aggregates are reduced in window order,
/// so the report is bit-identical for any thread count.  Throws
/// std::invalid_argument if the record is too short.
///
/// When obs::ledger_enabled(), one quality-ledger row per window is
/// appended during the ordered reduction with sequence `ledger_base + w`;
/// rows carry only deterministic fields, so the merged ledger is
/// bit-identical across thread counts too.
RecordReport run_record(const Codec& codec, const ecg::EcgRecord& record,
                        std::size_t window_count, DecodeMode mode,
                        parallel::ThreadPool& pool,
                        std::uint64_t ledger_base = 0);

/// run_record on the process-wide pool (CSECG_THREADS controls its size).
RecordReport run_record(const Codec& codec, const ecg::EcgRecord& record,
                        std::size_t window_count,
                        DecodeMode mode = DecodeMode::kAuto,
                        std::uint64_t ledger_base = 0);

/// Runs the first `record_count` database records, fanning records out
/// across the pool (window decodes inside each record then run inline).
/// Deterministic: reports land in pre-sized per-record slots, so the
/// result is bit-identical to the serial run.
std::vector<RecordReport> run_database(const Codec& codec,
                                       const ecg::SyntheticDatabase& database,
                                       std::size_t record_count,
                                       std::size_t windows_per_record,
                                       DecodeMode mode,
                                       parallel::ThreadPool& pool);

/// run_database on the process-wide pool.
std::vector<RecordReport> run_database(const Codec& codec,
                                       const ecg::SyntheticDatabase& database,
                                       std::size_t record_count,
                                       std::size_t windows_per_record,
                                       DecodeMode mode = DecodeMode::kAuto);

/// Mean of per-record mean SNRs (the paper's "averaged SNR over records").
double averaged_snr(const std::vector<RecordReport>& reports);

/// Mean of per-record mean PRDs.
double averaged_prd(const std::vector<RecordReport>& reports);

/// Per-record mean SNRs, in record order (Fig. 8 box-plot samples).
std::vector<double> per_record_snr(const std::vector<RecordReport>& reports);

}  // namespace csecg::core

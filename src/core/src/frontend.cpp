#include "csecg/core/frontend.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "csecg/coding/decode_error.hpp"
#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/span.hpp"
#include "csecg/obs/trace.hpp"

namespace csecg::core {
namespace {

/// The sensing matrix the decoder (and the ideal-matrix encoder path)
/// must use: the leakage-aware chip matrix for Rademacher, the configured
/// ensemble otherwise.
linalg::Matrix sensing_matrix_for(const FrontEndConfig& config,
                                  const sensing::RmpiSimulator& rmpi) {
  if (config.ensemble == sensing::Ensemble::kRademacher) {
    return rmpi.effective_matrix();
  }
  sensing::SensingConfig sensing_config;
  sensing_config.ensemble = config.ensemble;
  sensing_config.measurements = config.measurements;
  sensing_config.window = config.window;
  sensing_config.seed = config.chip_seed;
  return sensing::make_sensing_matrix(sensing_config);
}

sensing::RmpiConfig rmpi_config_from(const FrontEndConfig& config) {
  sensing::RmpiConfig rmpi;
  rmpi.channels = config.measurements;
  rmpi.window = config.window;
  rmpi.chip_seed = config.chip_seed;
  rmpi.integrator_leakage = config.integrator_leakage;
  rmpi.adc_bits = config.measurement_adc_bits;
  // After AC-coupling the signal swings within ±half of the record range.
  rmpi.input_full_scale = config.dc_reference();
  return rmpi;
}

std::optional<sensing::LowResChannel> lowres_from(
    const FrontEndConfig& config) {
  if (config.lowres_bits == 0) return std::nullopt;
  sensing::LowResConfig lowres;
  lowres.bits = config.lowres_bits;
  lowres.full_scale_bits = config.record_bits;
  return sensing::LowResChannel(lowres);
}

void check_codec_consistency(
    const FrontEndConfig& config,
    const std::optional<coding::DeltaHuffmanCodec>& codec) {
  if (config.lowres_bits == 0) return;
  CSECG_CHECK(codec.has_value(),
              "front-end: low-resolution channel enabled but no codec given");
  CSECG_CHECK(codec->code_bits() == config.lowres_bits,
              "front-end: codec trained for " << codec->code_bits()
                                              << "-bit codes, config uses "
                                              << config.lowres_bits);
}

}  // namespace

coding::DeltaHuffmanCodec train_lowres_codec(
    const FrontEndConfig& config, const ecg::SyntheticDatabase& database,
    std::size_t training_records, std::size_t windows_per_record) {
  validate(config);
  CSECG_CHECK(config.lowres_bits > 0,
              "train_lowres_codec: low-resolution channel is disabled");
  CSECG_CHECK(training_records > 0 && windows_per_record > 0,
              "train_lowres_codec: empty training request");
  CSECG_CHECK(training_records <= database.size(),
              "train_lowres_codec: only " << database.size()
                                          << " records available");
  const auto lowres = lowres_from(config);
  std::vector<std::vector<std::int64_t>> corpus;
  corpus.reserve(training_records * windows_per_record);
  for (std::size_t r = 0; r < training_records; ++r) {
    const auto windows = ecg::extract_windows(database.record(r),
                                              config.window,
                                              windows_per_record);
    for (const auto& window : windows) {
      corpus.push_back(lowres->sample(window).codes);
    }
  }
  return coding::DeltaHuffmanCodec::train(corpus, config.lowres_bits);
}

// ---------------------------------------------------------------------------
// Encoder.

Encoder::Encoder(FrontEndConfig config,
                 std::optional<coding::DeltaHuffmanCodec> lowres_codec)
    : config_(std::move(config)),
      rmpi_(rmpi_config_from(config_)),
      lowres_(lowres_from(config_)),
      codec_(std::move(lowres_codec)) {
  validate(config_);
  check_codec_consistency(config_, codec_);
  if (config_.ensemble != sensing::Ensemble::kRademacher) {
    phi_alt_ = sensing_matrix_for(config_, rmpi_);
  }
}

const std::optional<sensing::Quantizer>& Encoder::measurement_adc()
    const noexcept {
  return rmpi_.adc();
}

Frame Encoder::encode(const linalg::Vector& window) const {
  static obs::Histogram& encode_hist = obs::histogram("encode.window_ns");
  static obs::Counter& encoded_windows = obs::counter("encode.windows");
  const obs::Span encode_span(encode_hist);
  obs::TraceScope encode_trace("encode", "core");
  encoded_windows.add();
  CSECG_CHECK(window.size() == config_.window,
              "Encoder::encode: window has " << window.size()
                                             << " samples, expected "
                                             << config_.window);
  Frame frame;
  frame.window = config_.window;
  frame.measurement_bits = config_.measurement_adc_bits;

  // CS channel on the AC-coupled signal.
  const double dc = config_.dc_reference();
  linalg::Vector ac = window;
  for (auto& v : ac) v -= dc;
  if (phi_alt_) {
    // Ideal-matrix ablation path, quantized by the same measurement ADC.
    frame.measurements = linalg::multiply(*phi_alt_, ac);
    if (rmpi_.adc()) {
      for (auto& v : frame.measurements) {
        v = rmpi_.adc()->reconstruct(rmpi_.adc()->code(v));
      }
    }
  } else {
    frame.measurements = rmpi_.measure(ac);
  }

  // Low-resolution channel on the raw signal.
  if (lowres_) {
    const sensing::LowResOutput out = lowres_->sample(window);
    frame.lowres_payload = codec_->encode(out.codes, frame.lowres_bits);
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Decoder.

Decoder::Decoder(FrontEndConfig config,
                 std::optional<coding::DeltaHuffmanCodec> lowres_codec)
    : config_((validate(config), std::move(config))),
      rmpi_(rmpi_config_from(config_)),
      lowres_(lowres_from(config_)),
      codec_(std::move(lowres_codec)),
      dwt_(config_.wavelet, config_.window, config_.wavelet_levels),
      phi_dense_(sensing_matrix_for(config_, rmpi_)),
      phi_(linalg::LinearOperator::from_matrix(phi_dense_)),
      psi_(dwt_.synthesis_operator()) {
  check_codec_consistency(config_, codec_);
  phi_norm_ = linalg::operator_norm_estimate(phi_, 60);
  sigma_ = config_.sigma_scale * rmpi_.expected_quantization_noise_norm();
  gram_chol_ = std::make_unique<linalg::Cholesky>(
      linalg::multiply(phi_dense_, linalg::transpose(phi_dense_)));
}

DecodeResult Decoder::decode(const Frame& frame, DecodeMode mode) const {
  static obs::Counter& decoded_windows = obs::counter("decode.windows");
  obs::TraceScope decode_trace("decode", "core");
  decoded_windows.add();
  CSECG_CHECK(frame.window == config_.window,
              "Decoder::decode: frame window " << frame.window
                                               << " != config window "
                                               << config_.window);
  CSECG_CHECK(frame.measurements.size() == config_.measurements,
              "Decoder::decode: frame carries "
                  << frame.measurements.size() << " measurements, expected "
                  << config_.measurements);
  const bool frame_has_box = !frame.lowres_payload.empty();
  bool use_box = false;
  switch (mode) {
    case DecodeMode::kAuto:
      use_box = frame_has_box && lowres_.has_value();
      break;
    case DecodeMode::kHybrid:
      CSECG_CHECK(frame_has_box && lowres_.has_value(),
                  "Decoder::decode: hybrid mode requires the low-res payload"
                  " and an enabled channel");
      use_box = true;
      break;
    case DecodeMode::kNormalCs:
      use_box = false;
      break;
  }

  // The solve runs in the AC-coupled domain (x_ac = x − dc·1): the DC
  // reference is a design constant known at both ends, exactly as the
  // baseline sits outside the paper's recovery problem.  The box from the
  // low-resolution channel is shifted into the same domain.
  std::optional<recovery::BoxConstraint> box;
  if (use_box) {
    static obs::Counter& payload_errors =
        obs::counter("decode.payload_errors");
    try {
      const std::vector<std::int64_t> codes =
          codec_->decode(frame.lowres_payload, config_.window);
      // A corrupt-but-decodable stream can yield codes outside the B-bit
      // alphabet; box_from_codes would then reach into the quantizer with
      // garbage.  Treat them as payload corruption, not API misuse.
      const std::int64_t levels = std::int64_t{1} << config_.lowres_bits;
      for (const std::int64_t code : codes) {
        CSECG_DECODE_CHECK(code >= 0 && code < levels,
                           "Decoder::decode: low-res code "
                               << code << " outside the "
                               << config_.lowres_bits << "-bit range");
      }
      box = box_from_codes(codes);
    } catch (const coding::DecodeError&) {
      // The side channel is garbage for this window.  kAuto degrades to
      // the normal-CS solve (the window survives, a few dB worse);
      // kHybrid promised the caller a box, so the typed error propagates.
      payload_errors.add();
      if (mode == DecodeMode::kHybrid) throw;
      box.reset();
    }
  }
  return solve_window(frame.measurements, std::move(box));
}

recovery::BoxConstraint Decoder::box_from_codes(
    const std::vector<std::int64_t>& codes) const {
  const double dc = config_.dc_reference();
  const linalg::Vector lower = lowres_->reconstruct(codes);
  recovery::BoxConstraint constraint;
  constraint.lower = lower;
  constraint.upper = lower;
  const double step = lowres_->step();
  for (std::size_t i = 0; i < config_.window; ++i) {
    constraint.lower[i] -= dc;
    constraint.upper[i] += step - dc;
  }
  return constraint;
}

DecodeResult Decoder::solve_window(
    const linalg::Vector& y,
    std::optional<recovery::BoxConstraint> box) const {
  recovery::PdhgOptions options = config_.solver;
  options.phi_norm_hint = phi_norm_;
  if (!box) {
    // Least-norm warm start Φᵀ(ΦΦᵀ)⁻¹y: measurement-consistent from
    // iteration zero, so PDHG only has to shrink the ℓ1 objective.
    options.x0 = phi_.apply_adjoint(gram_chol_->solve(y));
  }

  DecodeResult result;
  result.used_box = box.has_value();
  result.solver = recovery::solve_bpdn(phi_, psi_, y, sigma_, box, options);
  result.x = result.solver.x;
  const double dc = config_.dc_reference();
  for (auto& v : result.x) v += dc;
  return result;
}

LossyDecodeResult Decoder::decode_lossy(const LossyWindow& window) const {
  static obs::Counter& lossy_windows = obs::counter("decode.lossy_windows");
  obs::TraceScope decode_trace("decode_lossy", "core", "m_eff");
  lossy_windows.add();
  const std::size_t n = config_.window;
  const std::size_t m = config_.measurements;
  CSECG_CHECK(window.window == n,
              "Decoder::decode_lossy: window length " << window.window
                                                      << " != config "
                                                      << n);
  CSECG_CHECK(window.measurements.size() == m &&
                  window.measurement_mask.size() == m,
              "Decoder::decode_lossy: measurement fields must have length "
                  << m);
  const bool has_lowres_fields = !window.lowres_mask.empty();
  CSECG_CHECK(!has_lowres_fields || (window.lowres_mask.size() == n &&
                                     window.lowres_codes.size() == n),
              "Decoder::decode_lossy: low-res fields must have length "
                  << n);

  LossyDecodeResult result;
  for (const std::uint8_t bit : window.measurement_mask) {
    result.effective_m += (bit != 0);
  }
  decode_trace.set_arg(result.effective_m);

  // Sanitize the side channel: a sample only keeps its box when its
  // packet arrived AND its code is a legal B-bit value (the reassembler
  // validates, but a CRC collision could still smuggle garbage through —
  // the decoder must never throw on a lossy stream).
  const double dc = config_.dc_reference();
  std::vector<std::int64_t> codes;
  std::vector<std::uint8_t> code_mask;
  if (has_lowres_fields && lowres_.has_value()) {
    const std::int64_t levels = std::int64_t{1} << config_.lowres_bits;
    codes.assign(n, 0);
    code_mask.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t code = window.lowres_codes[i];
      if (window.lowres_mask[i] != 0 && code >= 0 && code < levels) {
        codes[i] = code;
        code_mask[i] = 1;
        ++result.boxed_samples;
      }
    }
  }

  // Whole-CS-train loss: the decoder still owes an output — emit the
  // low-resolution staircase (cell midpoints), forward-filling samples
  // whose low-res packets also vanished; with nothing at all, the
  // flat DC reference.
  if (result.effective_m < m) {
    static obs::Counter& dropped =
        obs::counter("decode.dropped_measurements");
    dropped.add(static_cast<std::uint64_t>(m - result.effective_m));
  }

  if (result.effective_m == 0) {
    static obs::Counter& lowres_only_windows =
        obs::counter("decode.lowres_only_windows");
    lowres_only_windows.add();
    result.lowres_only = true;
    result.used_box = false;
    result.x = linalg::Vector(n);
    double fill = dc;
    if (result.boxed_samples > 0) {
      const double half_step = 0.5 * lowres_->step();
      for (std::size_t i = 0; i < n; ++i) {
        if (code_mask[i] != 0) {
          fill = lowres_->reconstruct({codes[i]})[0] + half_step;
          break;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (code_mask[i] != 0) {
          fill = lowres_->reconstruct({codes[i]})[0] + half_step;
        }
        result.x[i] = fill;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) result.x[i] = dc;
    }
    return result;
  }

  // Box constraint: exact cells where the low-res stream arrived, the
  // trivial full-scale cell where it did not (constraining nothing), no
  // box at all when the whole side channel is gone.
  std::optional<recovery::BoxConstraint> box;
  if (result.boxed_samples == n) {
    box = box_from_codes(codes);
  } else if (result.boxed_samples > 0) {
    recovery::BoxConstraint widened = box_from_codes(codes);
    const double lo_rail = -dc;
    const double hi_rail =
        static_cast<double>(std::int64_t{1} << config_.record_bits) - dc;
    for (std::size_t i = 0; i < n; ++i) {
      if (code_mask[i] == 0) {
        widened.lower[i] = lo_rail;
        widened.upper[i] = hi_rail;
      }
    }
    box = std::move(widened);
  }
  result.used_box = box.has_value();

  if (result.effective_m == m) {
    // Nothing dropped on the CS side: run the cached-operator path, which
    // makes the zero-loss link pipeline bit-identical to decode().
    DecodeResult full = solve_window(window.measurements, std::move(box));
    result.x = std::move(full.x);
    result.solver = std::move(full.solver);
    return result;
  }

  // Measurement democracy: drop the lost rows of Φ and the matching
  // entries of y, shrink σ with the surviving row count (the expected
  // quantization-noise norm scales with √m), and solve the same problem.
  const std::size_t eff_m = result.effective_m;
  linalg::Matrix sub(eff_m, n);
  linalg::Vector y_kept(eff_m);
  std::size_t row = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (window.measurement_mask[i] == 0) continue;
    const double* src = phi_dense_.row(i);
    std::copy(src, src + n, sub.row(row));
    y_kept[row] = window.measurements[i];
    ++row;
  }
  const linalg::LinearOperator phi_sub =
      linalg::LinearOperator::from_matrix(sub);

  recovery::PdhgOptions options = config_.solver;
  // ‖Φ_sub‖₂ ≤ ‖Φ‖₂ for a row submatrix, and PDHG only needs an upper
  // bound to size its steps, so the cached full-matrix norm serves here.
  options.phi_norm_hint = phi_norm_;
  const double sigma_eff =
      sigma_ * std::sqrt(static_cast<double>(eff_m) /
                         static_cast<double>(m));
  if (!box) {
    try {
      const linalg::Cholesky chol(
          linalg::multiply(sub, linalg::transpose(sub)));
      options.x0 = phi_sub.apply_adjoint(chol.solve(y_kept));
    } catch (const std::exception&) {
      // Surviving rows numerically dependent — cold start instead.
    }
  }

  result.solver =
      recovery::solve_bpdn(phi_sub, psi_, y_kept, sigma_eff, box, options);
  result.x = result.solver.x;
  for (auto& v : result.x) v += dc;
  return result;
}

const linalg::Matrix& Decoder::synthesis_dictionary() const {
  std::call_once(dictionary_once_, [this] {
    const std::size_t n = config_.window;
    const linalg::Matrix phi_dense = sensing_matrix_for(config_, rmpi_);
    linalg::Matrix a(phi_dense.rows(), n);
    linalg::Vector unit(n);
    linalg::Vector atom(n);
    linalg::Vector column(phi_dense.rows());
    for (std::size_t j = 0; j < n; ++j) {
      unit[j] = 1.0;
      dwt_.inverse_into(unit, atom);
      linalg::multiply_into(phi_dense, atom, column);
      for (std::size_t i = 0; i < phi_dense.rows(); ++i) a(i, j) = column[i];
      unit[j] = 0.0;
    }
    phi_psi_dense_ = std::move(a);
  });
  return phi_psi_dense_;
}

// ---------------------------------------------------------------------------
// Codec.

Codec::Codec(FrontEndConfig config,
             std::optional<coding::DeltaHuffmanCodec> lowres_codec)
    : encoder_(config, lowres_codec), decoder_(config, lowres_codec) {}

DecodeResult Codec::roundtrip(const linalg::Vector& window,
                              DecodeMode mode) const {
  return decoder_.decode(encoder_.encode(window), mode);
}

}  // namespace csecg::core

#include "csecg/core/runner.hpp"

#include <algorithm>

#include "csecg/common/check.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/metrics/stats.hpp"
#include "csecg/obs/json.hpp"
#include "csecg/obs/ledger.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/trace.hpp"

namespace csecg::core {

namespace {

const char* decode_mode_name(DecodeMode mode) {
  switch (mode) {
    case DecodeMode::kHybrid:
      return "hybrid";
    case DecodeMode::kNormalCs:
      return "normal_cs";
    case DecodeMode::kAuto:
    default:
      return "auto";
  }
}

/// One quality-ledger JSONL row for a cleanly decoded window.  Every field
/// is deterministic (no wall-clock times — those live in the trace and the
/// histograms), which is what makes the merged ledger bit-identical across
/// CSECG_THREADS settings.
std::string ledger_row(const RecordReport& report, std::size_t w,
                       std::uint64_t seq, const FrontEndConfig& config,
                       double sigma, DecodeMode mode, bool outlier) {
  const WindowMetrics& m = report.windows[w];
  std::string row;
  row.reserve(320);
  row += "{\"kind\":\"window\",\"record\":";
  obs::append_json_string(row, report.record_name);
  row += ",\"seq\":";
  obs::append_json_u64(row, seq);
  row += ",\"window\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(w));
  row += ",\"m\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(config.measurements));
  row += ",\"sigma\":";
  obs::append_json_double(row, sigma);
  row += ",\"solver\":\"pdhg\",\"decode_mode\":\"";
  row += decode_mode_name(mode);
  row += "\",\"iterations\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(
                                m.iterations < 0 ? 0 : m.iterations));
  row += ",\"converged\":";
  obs::append_json_bool(row, m.converged);
  row += ",\"ball_violation\":";
  obs::append_json_double(row, m.ball_violation);
  row += ",\"prd\":";
  obs::append_json_double(row, m.prd);
  row += ",\"snr\":";
  obs::append_json_double(row, m.snr);
  row += ",\"prd_raw\":";
  obs::append_json_double(row, m.prd_raw);
  row += ",\"snr_raw\":";
  obs::append_json_double(row, m.snr_raw);
  row += ",\"cs_bits\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.cs_bits));
  row += ",\"lowres_bits\":";
  obs::append_json_u64(row, static_cast<std::uint64_t>(m.lowres_bits));
  row += ",\"outlier\":";
  obs::append_json_bool(row, outlier);
  row += '}';
  return row;
}

}  // namespace

RecordReport run_record(const Codec& codec, const ecg::EcgRecord& record,
                        std::size_t window_count, DecodeMode mode,
                        parallel::ThreadPool& pool,
                        std::uint64_t ledger_base) {
  CSECG_CHECK(window_count > 0, "run_record: window_count must be positive");
  const FrontEndConfig& config = codec.config();
  const auto windows =
      ecg::extract_windows(record, config.window, window_count);

  RecordReport report;
  report.record_name = record.name;
  report.cs_cr_percent = config.cs_compression_ratio();

  // Each window encodes/decodes independently into its pre-sized slot;
  // the aggregation below then runs in window order, so the report is
  // bit-identical whatever the pool size.
  report.windows.resize(windows.size());
  pool.parallel_for(0, windows.size(), [&](std::size_t w) {
    obs::TraceScope window_trace("runner.window", "runner", "window",
                                 static_cast<std::uint64_t>(w));
    const linalg::Vector& window = windows[w];
    const bool timed = obs::enabled();
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    const Frame frame = codec.encoder().encode(window);
    const std::uint64_t t1 = timed ? obs::monotonic_ns() : 0;
    const DecodeResult decoded = codec.decoder().decode(frame, mode);
    const std::uint64_t t2 = timed ? obs::monotonic_ns() : 0;

    WindowMetrics m;
    m.prd = metrics::prd_zero_mean(window, decoded.x);
    m.snr = metrics::snr_from_prd(m.prd);
    m.prd_raw = metrics::prd(window, decoded.x);
    m.snr_raw = metrics::snr_from_prd(m.prd_raw);
    m.cs_bits = frame.cs_bits();
    m.lowres_bits = frame.lowres_bits;
    m.converged = decoded.solver.converged;
    m.iterations = decoded.solver.iterations;
    m.ball_violation = decoded.solver.ball_violation;
    m.encode_ns = t1 - t0;
    m.decode_ns = t2 - t1;
    report.windows[w] = m;
  });

  double prd_sum = 0.0;
  double snr_sum = 0.0;
  double lowres_bits_sum = 0.0;
  std::uint64_t encode_ns_sum = 0;
  std::uint64_t decode_ns_sum = 0;
  for (const auto& m : report.windows) {
    prd_sum += m.prd;
    snr_sum += m.snr;
    lowres_bits_sum += static_cast<double>(m.lowres_bits);
    if (m.converged) {
      ++report.converged_windows;
    } else {
      ++report.non_converged_windows;
    }
    report.total_solver_iterations +=
        static_cast<std::uint64_t>(m.iterations);
    report.max_solver_iterations =
        std::max(report.max_solver_iterations, m.iterations);
    report.max_ball_violation =
        std::max(report.max_ball_violation, m.ball_violation);
    encode_ns_sum += m.encode_ns;
    decode_ns_sum += m.decode_ns;
  }
  report.encode_seconds = static_cast<double>(encode_ns_sum) * 1e-9;
  report.decode_seconds = static_cast<double>(decode_ns_sum) * 1e-9;

  static obs::Counter& runner_windows = obs::counter("runner.windows");
  static obs::Counter& runner_non_converged =
      obs::counter("runner.non_converged_windows");
  static obs::Counter& runner_records = obs::counter("runner.records");
  runner_windows.add(report.windows.size());
  runner_non_converged.add(report.non_converged_windows);
  runner_records.add();

  const auto count = static_cast<double>(report.windows.size());
  report.mean_prd = prd_sum / count;
  report.mean_snr = snr_sum / count;
  const double original_bits_per_window =
      static_cast<double>(config.window) *
      static_cast<double>(config.original_bits);
  report.overhead_percent =
      lowres_bits_sum / count / original_bits_per_window * 100.0;
  report.net_cr_percent =
      metrics::net_compression_ratio(report.cs_cr_percent,
                                     report.overhead_percent);

  // Robust per-record quality fence: a window is an outlier when its SNR
  // drops below median − 3.5·1.4826·MAD over this record.  The fence and
  // flags depend only on the (deterministic) per-window metrics, so both
  // the report and the ledger rows below are thread-count-invariant.
  std::vector<double> snrs(report.windows.size());
  for (std::size_t w = 0; w < report.windows.size(); ++w) {
    snrs[w] = report.windows[w].snr;
  }
  report.outlier_snr_threshold_db = metrics::mad_low_threshold(snrs);
  report.outlier_windows = metrics::mad_low_outliers(snrs);

  if (obs::ledger_enabled()) {
    const double sigma = codec.decoder().sigma();
    std::size_t next_outlier = 0;
    for (std::size_t w = 0; w < report.windows.size(); ++w) {
      const bool outlier = next_outlier < report.outlier_windows.size() &&
                           report.outlier_windows[next_outlier] == w;
      if (outlier) ++next_outlier;
      obs::Ledger::global().append(
          ledger_base + w,
          ledger_row(report, w, ledger_base + w, config, sigma, mode,
                     outlier));
    }
  }
  return report;
}

RecordReport run_record(const Codec& codec, const ecg::EcgRecord& record,
                        std::size_t window_count, DecodeMode mode,
                        std::uint64_t ledger_base) {
  return run_record(codec, record, window_count, mode,
                    parallel::global_pool(), ledger_base);
}

std::vector<RecordReport> run_database(const Codec& codec,
                                       const ecg::SyntheticDatabase& database,
                                       std::size_t record_count,
                                       std::size_t windows_per_record,
                                       DecodeMode mode,
                                       parallel::ThreadPool& pool) {
  CSECG_CHECK(record_count > 0 && record_count <= database.size(),
              "run_database: record_count out of range");
  // Records fan out across the pool; the nested window loop inside
  // run_record detects it is already on a pool thread and runs inline.
  // Per-record slots keep the report order (and values) identical to the
  // serial run.
  std::vector<RecordReport> reports(record_count);
  pool.parallel_for(0, record_count, [&](std::size_t r) {
    // Ledger sequence numbers tile the database run: record r owns
    // [r·wpr, (r+1)·wpr), so the merged ledger sorts into database order.
    reports[r] =
        run_record(codec, database.record(r), windows_per_record, mode, pool,
                   static_cast<std::uint64_t>(r * windows_per_record));
  });
  return reports;
}

std::vector<RecordReport> run_database(const Codec& codec,
                                       const ecg::SyntheticDatabase& database,
                                       std::size_t record_count,
                                       std::size_t windows_per_record,
                                       DecodeMode mode) {
  return run_database(codec, database, record_count, windows_per_record,
                      mode, parallel::global_pool());
}

double averaged_snr(const std::vector<RecordReport>& reports) {
  CSECG_CHECK(!reports.empty(), "averaged_snr: no reports");
  double sum = 0.0;
  for (const auto& r : reports) sum += r.mean_snr;
  return sum / static_cast<double>(reports.size());
}

double averaged_prd(const std::vector<RecordReport>& reports) {
  CSECG_CHECK(!reports.empty(), "averaged_prd: no reports");
  double sum = 0.0;
  for (const auto& r : reports) sum += r.mean_prd;
  return sum / static_cast<double>(reports.size());
}

std::vector<double> per_record_snr(
    const std::vector<RecordReport>& reports) {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& r : reports) out.push_back(r.mean_snr);
  return out;
}

}  // namespace csecg::core

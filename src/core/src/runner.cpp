#include "csecg/core/runner.hpp"

#include <algorithm>

#include "csecg/common/check.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/obs/registry.hpp"

namespace csecg::core {

RecordReport run_record(const Codec& codec, const ecg::EcgRecord& record,
                        std::size_t window_count, DecodeMode mode,
                        parallel::ThreadPool& pool) {
  CSECG_CHECK(window_count > 0, "run_record: window_count must be positive");
  const FrontEndConfig& config = codec.config();
  const auto windows =
      ecg::extract_windows(record, config.window, window_count);

  RecordReport report;
  report.record_name = record.name;
  report.cs_cr_percent = config.cs_compression_ratio();

  // Each window encodes/decodes independently into its pre-sized slot;
  // the aggregation below then runs in window order, so the report is
  // bit-identical whatever the pool size.
  report.windows.resize(windows.size());
  pool.parallel_for(0, windows.size(), [&](std::size_t w) {
    const linalg::Vector& window = windows[w];
    const bool timed = obs::enabled();
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    const Frame frame = codec.encoder().encode(window);
    const std::uint64_t t1 = timed ? obs::monotonic_ns() : 0;
    const DecodeResult decoded = codec.decoder().decode(frame, mode);
    const std::uint64_t t2 = timed ? obs::monotonic_ns() : 0;

    WindowMetrics m;
    m.prd = metrics::prd_zero_mean(window, decoded.x);
    m.snr = metrics::snr_from_prd(m.prd);
    m.prd_raw = metrics::prd(window, decoded.x);
    m.snr_raw = metrics::snr_from_prd(m.prd_raw);
    m.cs_bits = frame.cs_bits();
    m.lowres_bits = frame.lowres_bits;
    m.converged = decoded.solver.converged;
    m.iterations = decoded.solver.iterations;
    m.ball_violation = decoded.solver.ball_violation;
    m.encode_ns = t1 - t0;
    m.decode_ns = t2 - t1;
    report.windows[w] = m;
  });

  double prd_sum = 0.0;
  double snr_sum = 0.0;
  double lowres_bits_sum = 0.0;
  std::uint64_t encode_ns_sum = 0;
  std::uint64_t decode_ns_sum = 0;
  for (const auto& m : report.windows) {
    prd_sum += m.prd;
    snr_sum += m.snr;
    lowres_bits_sum += static_cast<double>(m.lowres_bits);
    if (m.converged) {
      ++report.converged_windows;
    } else {
      ++report.non_converged_windows;
    }
    report.total_solver_iterations +=
        static_cast<std::uint64_t>(m.iterations);
    report.max_solver_iterations =
        std::max(report.max_solver_iterations, m.iterations);
    report.max_ball_violation =
        std::max(report.max_ball_violation, m.ball_violation);
    encode_ns_sum += m.encode_ns;
    decode_ns_sum += m.decode_ns;
  }
  report.encode_seconds = static_cast<double>(encode_ns_sum) * 1e-9;
  report.decode_seconds = static_cast<double>(decode_ns_sum) * 1e-9;

  static obs::Counter& runner_windows = obs::counter("runner.windows");
  static obs::Counter& runner_non_converged =
      obs::counter("runner.non_converged_windows");
  static obs::Counter& runner_records = obs::counter("runner.records");
  runner_windows.add(report.windows.size());
  runner_non_converged.add(report.non_converged_windows);
  runner_records.add();

  const auto count = static_cast<double>(report.windows.size());
  report.mean_prd = prd_sum / count;
  report.mean_snr = snr_sum / count;
  const double original_bits_per_window =
      static_cast<double>(config.window) *
      static_cast<double>(config.original_bits);
  report.overhead_percent =
      lowres_bits_sum / count / original_bits_per_window * 100.0;
  report.net_cr_percent =
      metrics::net_compression_ratio(report.cs_cr_percent,
                                     report.overhead_percent);
  return report;
}

RecordReport run_record(const Codec& codec, const ecg::EcgRecord& record,
                        std::size_t window_count, DecodeMode mode) {
  return run_record(codec, record, window_count, mode,
                    parallel::global_pool());
}

std::vector<RecordReport> run_database(const Codec& codec,
                                       const ecg::SyntheticDatabase& database,
                                       std::size_t record_count,
                                       std::size_t windows_per_record,
                                       DecodeMode mode,
                                       parallel::ThreadPool& pool) {
  CSECG_CHECK(record_count > 0 && record_count <= database.size(),
              "run_database: record_count out of range");
  // Records fan out across the pool; the nested window loop inside
  // run_record detects it is already on a pool thread and runs inline.
  // Per-record slots keep the report order (and values) identical to the
  // serial run.
  std::vector<RecordReport> reports(record_count);
  pool.parallel_for(0, record_count, [&](std::size_t r) {
    reports[r] =
        run_record(codec, database.record(r), windows_per_record, mode, pool);
  });
  return reports;
}

std::vector<RecordReport> run_database(const Codec& codec,
                                       const ecg::SyntheticDatabase& database,
                                       std::size_t record_count,
                                       std::size_t windows_per_record,
                                       DecodeMode mode) {
  return run_database(codec, database, record_count, windows_per_record,
                      mode, parallel::global_pool());
}

double averaged_snr(const std::vector<RecordReport>& reports) {
  CSECG_CHECK(!reports.empty(), "averaged_snr: no reports");
  double sum = 0.0;
  for (const auto& r : reports) sum += r.mean_snr;
  return sum / static_cast<double>(reports.size());
}

double averaged_prd(const std::vector<RecordReport>& reports) {
  CSECG_CHECK(!reports.empty(), "averaged_prd: no reports");
  double sum = 0.0;
  for (const auto& r : reports) sum += r.mean_prd;
  return sum / static_cast<double>(reports.size());
}

std::vector<double> per_record_snr(
    const std::vector<RecordReport>& reports) {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& r : reports) out.push_back(r.mean_snr);
  return out;
}

}  // namespace csecg::core

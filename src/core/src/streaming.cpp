#include "csecg/core/streaming.hpp"

namespace csecg::core {

StreamingEncoder::StreamingEncoder(
    FrontEndConfig config,
    std::optional<coding::DeltaHuffmanCodec> lowres_codec)
    : encoder_(std::move(config), std::move(lowres_codec)),
      buffer_(encoder_.config().window) {}

std::optional<Frame> StreamingEncoder::push(double sample) {
  buffer_[buffer_fill_++] = sample;
  if (buffer_fill_ < encoder_.config().window) return std::nullopt;
  buffer_fill_ = 0;
  Frame frame = encoder_.encode(buffer_);
  ++frames_emitted_;
  bits_emitted_ += frame.total_bits();
  return frame;
}

void StreamingEncoder::reset() noexcept { buffer_fill_ = 0; }

StreamingDecoder::StreamingDecoder(
    FrontEndConfig config,
    std::optional<coding::DeltaHuffmanCodec> lowres_codec, DecodeMode mode)
    : decoder_(std::move(config), std::move(lowres_codec)), mode_(mode) {}

const linalg::Vector& StreamingDecoder::push(const Frame& frame) {
  DecodeResult result = decoder_.decode(frame, mode_);
  last_window_ = std::move(result.x);
  const std::size_t old_size = signal_.size();
  signal_.resize(old_size + last_window_.size());
  for (std::size_t i = 0; i < last_window_.size(); ++i) {
    signal_[old_size + i] = last_window_[i];
  }
  ++frames_decoded_;
  return last_window_;
}

}  // namespace csecg::core

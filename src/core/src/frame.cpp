#include "csecg/core/frame.hpp"

#include "csecg/coding/bitstream.hpp"
#include "csecg/common/check.hpp"

namespace csecg::core {
namespace {

constexpr std::uint16_t kMagic = 0xC5E6;  // "CSEc[g]".

void push_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  push_u16(out, static_cast<std::uint16_t>(value >> 16));
  push_u16(out, static_cast<std::uint16_t>(value & 0xFFFF));
}

/// Bounds-checked big-endian reads for the parse path: each returns false
/// instead of reading past the buffer, so try_deserialize_frame never
/// touches out-of-range memory no matter how the input was mangled.
bool read_u16(const std::vector<std::uint8_t>& bytes, std::size_t& offset,
              std::uint16_t& out) noexcept {
  if (bytes.size() - offset < 2) return false;
  out = static_cast<std::uint16_t>((bytes[offset] << 8) | bytes[offset + 1]);
  offset += 2;
  return true;
}

bool read_u32(const std::vector<std::uint8_t>& bytes, std::size_t& offset,
              std::uint32_t& out) noexcept {
  std::uint16_t hi = 0;
  std::uint16_t lo = 0;
  if (!read_u16(bytes, offset, hi) || !read_u16(bytes, offset, lo)) {
    return false;
  }
  out = (static_cast<std::uint32_t>(hi) << 16) | lo;
  return true;
}

std::optional<Frame> parse_failure(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
  return std::nullopt;
}

}  // namespace

std::vector<std::uint8_t> serialize_frame(
    const Frame& frame, const sensing::Quantizer& measurement_adc) {
  CSECG_CHECK(frame.measurement_bits == measurement_adc.bits(),
              "serialize_frame: frame carries "
                  << frame.measurement_bits << "-bit measurements, ADC has "
                  << measurement_adc.bits());
  CSECG_CHECK(frame.window > 0 && frame.window <= 0xFFFF,
              "serialize_frame: window out of format range");
  CSECG_CHECK(frame.measurements.size() <= 0xFFFF,
              "serialize_frame: too many measurements");
  CSECG_CHECK(frame.lowres_bits <= 0xFFFFFFFFull,
              "serialize_frame: low-res payload too large");

  std::vector<std::uint8_t> out;
  push_u16(out, kMagic);
  push_u16(out, static_cast<std::uint16_t>(frame.window));
  push_u16(out, static_cast<std::uint16_t>(frame.measurements.size()));
  out.push_back(static_cast<std::uint8_t>(frame.measurement_bits));
  out.push_back(frame.lowres_payload.empty() ? 0 : 1);

  coding::BitWriter writer;
  for (double value : frame.measurements) {
    writer.write(static_cast<std::uint64_t>(measurement_adc.code(value)),
                 frame.measurement_bits);
  }
  const auto code_bytes = writer.finish();
  out.insert(out.end(), code_bytes.begin(), code_bytes.end());

  if (!frame.lowres_payload.empty()) {
    push_u32(out, static_cast<std::uint32_t>(frame.lowres_bits));
    out.insert(out.end(), frame.lowres_payload.begin(),
               frame.lowres_payload.end());
  }
  return out;
}

std::optional<Frame> try_deserialize_frame(
    const std::vector<std::uint8_t>& bytes,
    const sensing::Quantizer& measurement_adc, std::string* error) {
  std::size_t offset = 0;
  std::uint16_t magic = 0;
  std::uint16_t window = 0;
  std::uint16_t m = 0;
  if (!read_u16(bytes, offset, magic) || !read_u16(bytes, offset, window) ||
      !read_u16(bytes, offset, m) || bytes.size() - offset < 2) {
    return parse_failure(error, "truncated header");
  }
  if (magic != kMagic) return parse_failure(error, "bad magic");
  if (window == 0) return parse_failure(error, "zero window length");

  Frame frame;
  frame.window = window;
  frame.measurement_bits = bytes[offset++];
  const std::uint8_t lowres_flag = bytes[offset++];
  if (lowres_flag > 1) return parse_failure(error, "bad low-res flag");
  if (frame.measurement_bits != measurement_adc.bits()) {
    return parse_failure(error, "measurement bit-depth mismatch");
  }

  // m ≤ 0xFFFF and bits ≤ 0xFF, so the bit count fits a size_t with no
  // overflow on any platform.
  const std::size_t code_bytes =
      (static_cast<std::size_t>(m) *
           static_cast<std::size_t>(frame.measurement_bits) +
       7) /
      8;
  if (bytes.size() - offset < code_bytes) {
    return parse_failure(error, "truncated measurements");
  }
  coding::BitReader reader(std::vector<std::uint8_t>(
      bytes.begin() + static_cast<long>(offset),
      bytes.begin() + static_cast<long>(offset + code_bytes)));
  offset += code_bytes;
  frame.measurements = linalg::Vector(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto code =
        static_cast<std::int64_t>(reader.read(frame.measurement_bits));
    if (code >= measurement_adc.levels()) {
      return parse_failure(error, "measurement code out of ADC range");
    }
    frame.measurements[i] = measurement_adc.reconstruct(code);
  }

  if (lowres_flag != 0) {
    std::uint32_t lowres_bits = 0;
    if (!read_u32(bytes, offset, lowres_bits)) {
      return parse_failure(error, "truncated low-res length");
    }
    frame.lowres_bits = lowres_bits;
    const std::size_t payload_bytes = (frame.lowres_bits + 7) / 8;
    if (bytes.size() - offset < payload_bytes) {
      return parse_failure(error, "truncated low-res payload");
    }
    frame.lowres_payload.assign(
        bytes.begin() + static_cast<long>(offset),
        bytes.begin() + static_cast<long>(offset + payload_bytes));
    offset += payload_bytes;
    if (frame.lowres_payload.empty()) {
      return parse_failure(error, "empty low-res payload with flag set");
    }
  }
  if (offset != bytes.size()) {
    return parse_failure(error, "trailing bytes after frame");
  }
  return frame;
}

Frame deserialize_frame(const std::vector<std::uint8_t>& bytes,
                        const sensing::Quantizer& measurement_adc) {
  std::string error;
  std::optional<Frame> frame =
      try_deserialize_frame(bytes, measurement_adc, &error);
  if (!frame.has_value()) {
    throw FrameError("deserialize_frame: " + error);
  }
  return *std::move(frame);
}

}  // namespace csecg::core

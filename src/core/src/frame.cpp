#include "csecg/core/frame.hpp"

#include "csecg/coding/bitstream.hpp"
#include "csecg/common/check.hpp"

namespace csecg::core {
namespace {

constexpr std::uint16_t kMagic = 0xC5E6;  // "CSEc[g]".

void push_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  push_u16(out, static_cast<std::uint16_t>(value >> 16));
  push_u16(out, static_cast<std::uint16_t>(value & 0xFFFF));
}

std::uint16_t read_u16(const std::vector<std::uint8_t>& bytes,
                       std::size_t& offset) {
  CSECG_CHECK(offset + 2 <= bytes.size(), "frame: truncated header");
  const std::uint16_t value = static_cast<std::uint16_t>(
      (bytes[offset] << 8) | bytes[offset + 1]);
  offset += 2;
  return value;
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& bytes,
                       std::size_t& offset) {
  const std::uint32_t hi = read_u16(bytes, offset);
  const std::uint32_t lo = read_u16(bytes, offset);
  return (hi << 16) | lo;
}

}  // namespace

std::vector<std::uint8_t> serialize_frame(
    const Frame& frame, const sensing::Quantizer& measurement_adc) {
  CSECG_CHECK(frame.measurement_bits == measurement_adc.bits(),
              "serialize_frame: frame carries "
                  << frame.measurement_bits << "-bit measurements, ADC has "
                  << measurement_adc.bits());
  CSECG_CHECK(frame.window > 0 && frame.window <= 0xFFFF,
              "serialize_frame: window out of format range");
  CSECG_CHECK(frame.measurements.size() <= 0xFFFF,
              "serialize_frame: too many measurements");
  CSECG_CHECK(frame.lowres_bits <= 0xFFFFFFFFull,
              "serialize_frame: low-res payload too large");

  std::vector<std::uint8_t> out;
  push_u16(out, kMagic);
  push_u16(out, static_cast<std::uint16_t>(frame.window));
  push_u16(out, static_cast<std::uint16_t>(frame.measurements.size()));
  out.push_back(static_cast<std::uint8_t>(frame.measurement_bits));
  out.push_back(frame.lowres_payload.empty() ? 0 : 1);

  coding::BitWriter writer;
  for (double value : frame.measurements) {
    writer.write(static_cast<std::uint64_t>(measurement_adc.code(value)),
                 frame.measurement_bits);
  }
  const auto code_bytes = writer.finish();
  out.insert(out.end(), code_bytes.begin(), code_bytes.end());

  if (!frame.lowres_payload.empty()) {
    push_u32(out, static_cast<std::uint32_t>(frame.lowres_bits));
    out.insert(out.end(), frame.lowres_payload.begin(),
               frame.lowres_payload.end());
  }
  return out;
}

Frame deserialize_frame(const std::vector<std::uint8_t>& bytes,
                        const sensing::Quantizer& measurement_adc) {
  std::size_t offset = 0;
  CSECG_CHECK(read_u16(bytes, offset) == kMagic,
              "deserialize_frame: bad magic");
  Frame frame;
  frame.window = read_u16(bytes, offset);
  const std::size_t m = read_u16(bytes, offset);
  CSECG_CHECK(offset + 2 <= bytes.size(), "deserialize_frame: truncated");
  frame.measurement_bits = bytes[offset++];
  const bool has_lowres = bytes[offset++] != 0;
  CSECG_CHECK(frame.measurement_bits == measurement_adc.bits(),
              "deserialize_frame: measurement bit-depth mismatch");

  const std::size_t code_bytes =
      (m * static_cast<std::size_t>(frame.measurement_bits) + 7) / 8;
  CSECG_CHECK(offset + code_bytes <= bytes.size(),
              "deserialize_frame: truncated measurements");
  coding::BitReader reader(std::vector<std::uint8_t>(
      bytes.begin() + static_cast<long>(offset),
      bytes.begin() + static_cast<long>(offset + code_bytes)));
  offset += code_bytes;
  frame.measurements = linalg::Vector(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto code =
        static_cast<std::int64_t>(reader.read(frame.measurement_bits));
    frame.measurements[i] = measurement_adc.reconstruct(code);
  }

  if (has_lowres) {
    frame.lowres_bits = read_u32(bytes, offset);
    const std::size_t payload_bytes = (frame.lowres_bits + 7) / 8;
    CSECG_CHECK(offset + payload_bytes <= bytes.size(),
                "deserialize_frame: truncated low-res payload");
    frame.lowres_payload.assign(
        bytes.begin() + static_cast<long>(offset),
        bytes.begin() + static_cast<long>(offset + payload_bytes));
    offset += payload_bytes;
  }
  CSECG_CHECK(offset == bytes.size(),
              "deserialize_frame: trailing bytes after frame");
  return frame;
}

}  // namespace csecg::core

#include "csecg/core/config.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/dsp/dwt.hpp"

namespace csecg::core {

double FrontEndConfig::dc_reference() const noexcept {
  return static_cast<double>(std::int64_t{1} << (record_bits - 1));
}

double FrontEndConfig::cs_compression_ratio() const noexcept {
  const double orig =
      static_cast<double>(window) * static_cast<double>(original_bits);
  const double comp = static_cast<double>(measurements) *
                      static_cast<double>(measurement_adc_bits);
  return (orig - comp) / orig * 100.0;
}

std::size_t FrontEndConfig::measurements_for_cr(
    double cr_percent) const noexcept {
  const double orig =
      static_cast<double>(window) * static_cast<double>(original_bits);
  const double comp_bits = orig * (1.0 - cr_percent / 100.0);
  const double m =
      std::round(comp_bits / static_cast<double>(measurement_adc_bits));
  return static_cast<std::size_t>(
      std::clamp(m, 1.0, static_cast<double>(window)));
}

void validate(const FrontEndConfig& config) {
  CSECG_CHECK(config.window > 0, "FrontEndConfig: window must be positive");
  CSECG_CHECK(config.measurements > 0 &&
                  config.measurements <= config.window,
              "FrontEndConfig: need 0 < m <= n, got m="
                  << config.measurements << ", n=" << config.window);
  CSECG_CHECK(config.measurement_adc_bits >= 1 &&
                  config.measurement_adc_bits <= 24,
              "FrontEndConfig: measurement_adc_bits out of range");
  CSECG_CHECK(config.lowres_bits >= 0 &&
                  config.lowres_bits <= config.record_bits,
              "FrontEndConfig: lowres_bits must be in [0, record_bits]");
  CSECG_CHECK(config.record_bits >= 2 && config.record_bits <= 24,
              "FrontEndConfig: record_bits out of range");
  CSECG_CHECK(config.original_bits >= config.record_bits,
              "FrontEndConfig: original_bits below record resolution");
  CSECG_CHECK(config.wavelet_levels >= 1, "FrontEndConfig: need >= 1 level");
  CSECG_CHECK(config.wavelet_levels <= dsp::Dwt::max_levels(config.window),
              "FrontEndConfig: window " << config.window
                                        << " not divisible by 2^"
                                        << config.wavelet_levels);
  CSECG_CHECK(config.sigma_scale >= 0.0,
              "FrontEndConfig: sigma_scale must be non-negative");
  CSECG_CHECK(config.integrator_leakage >= 0.0 &&
                  config.integrator_leakage < 1.0,
              "FrontEndConfig: leakage out of [0, 1)");
  CSECG_CHECK(config.ensemble == sensing::Ensemble::kRademacher ||
                  config.integrator_leakage == 0.0,
              "FrontEndConfig: integrator leakage models the RMPI chip "
              "path; only the Rademacher ensemble supports it");
  validate(config.solver);
}

}  // namespace csecg::core

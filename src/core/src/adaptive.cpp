#include "csecg/core/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "csecg/coding/delta.hpp"
#include "csecg/common/check.hpp"

namespace csecg::core {

void validate(const AdaptiveRateConfig& rate, const FrontEndConfig& base) {
  CSECG_CHECK(rate.m_min >= 1 && rate.m_min <= rate.m_max,
              "AdaptiveRateConfig: need 1 <= m_min <= m_max");
  CSECG_CHECK(rate.m_max <= base.window,
              "AdaptiveRateConfig: m_max " << rate.m_max
                                           << " exceeds window "
                                           << base.window);
  CSECG_CHECK(rate.low_activity >= 0.0 &&
                  rate.high_activity > rate.low_activity &&
                  rate.high_activity <= 1.0,
              "AdaptiveRateConfig: need 0 <= low < high <= 1");
  CSECG_CHECK(base.lowres_bits > 0,
              "AdaptiveRateConfig: requires the low-resolution channel "
              "(it is the activity sensor)");
}

double delta_activity(const std::vector<std::int64_t>& codes) {
  CSECG_CHECK(codes.size() >= 2, "delta_activity: need at least 2 codes");
  const coding::DeltaEncoded enc = coding::delta_encode(codes);
  std::size_t nonzero = 0;
  for (std::int64_t diff : enc.diffs) {
    if (diff != 0) ++nonzero;
  }
  return static_cast<double>(nonzero) /
         static_cast<double>(enc.diffs.size());
}

std::size_t channels_for_activity(double activity,
                                  const AdaptiveRateConfig& rate) {
  const double t = std::clamp(
      (activity - rate.low_activity) /
          (rate.high_activity - rate.low_activity),
      0.0, 1.0);
  const double m = static_cast<double>(rate.m_min) +
                   t * static_cast<double>(rate.m_max - rate.m_min);
  return static_cast<std::size_t>(std::lround(m));
}

AdaptiveCodec::AdaptiveCodec(FrontEndConfig base, AdaptiveRateConfig rate,
                             coding::DeltaHuffmanCodec lowres_codec)
    : base_(std::move(base)),
      rate_(rate),
      codec_(std::move(lowres_codec)),
      lowres_(sensing::LowResConfig{base_.lowres_bits, base_.record_bits}) {
  validate(base_);
  validate(rate_, base_);
}

const Encoder& AdaptiveCodec::encoder_for(std::size_t m) const {
  auto it = encoders_.find(m);
  if (it == encoders_.end()) {
    FrontEndConfig config = base_;
    config.measurements = m;
    it = encoders_.emplace(m, std::make_unique<Encoder>(config, codec_))
             .first;
  }
  return *it->second;
}

const Decoder& AdaptiveCodec::decoder_for(std::size_t m) const {
  auto it = decoders_.find(m);
  if (it == decoders_.end()) {
    FrontEndConfig config = base_;
    config.measurements = m;
    it = decoders_.emplace(m, std::make_unique<Decoder>(config, codec_))
             .first;
  }
  return *it->second;
}

Frame AdaptiveCodec::encode(const linalg::Vector& window) const {
  CSECG_CHECK(window.size() == base_.window,
              "AdaptiveCodec::encode: window has "
                  << window.size() << " samples, expected " << base_.window);
  const auto lowres_out = lowres_.sample(window);
  const double activity = delta_activity(lowres_out.codes);
  last_m_ = channels_for_activity(activity, rate_);
  return encoder_for(last_m_).encode(window);
}

DecodeResult AdaptiveCodec::decode(const Frame& frame,
                                   DecodeMode mode) const {
  const std::size_t m = frame.measurements.size();
  CSECG_CHECK(m >= rate_.m_min && m <= rate_.m_max,
              "AdaptiveCodec::decode: frame carries "
                  << m << " measurements, outside [" << rate_.m_min << ", "
                  << rate_.m_max << "]");
  return decoder_for(m).decode(frame, mode);
}

}  // namespace csecg::core

#include "csecg/sensing/diagnostics.hpp"

#include <cmath>
#include <vector>

#include "csecg/common/check.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::sensing {

double mutual_coherence(const linalg::Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  CSECG_CHECK(n >= 2, "mutual_coherence: need at least 2 columns");
  std::vector<double> norms(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) norms[j] += a(i, j) * a(i, j);
    norms[j] = std::sqrt(norms[j]);
    CSECG_CHECK(norms[j] > 0.0, "mutual_coherence: zero column " << j);
  }
  double mu = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      double inner = 0.0;
      for (std::size_t i = 0; i < m; ++i) inner += a(i, p) * a(i, q);
      mu = std::max(mu, std::abs(inner) / (norms[p] * norms[q]));
    }
  }
  return mu;
}

double welch_bound(std::size_t m, std::size_t n) {
  CSECG_CHECK(m >= 1 && n > m, "welch_bound: need 1 <= m < n");
  return std::sqrt(static_cast<double>(n - m) /
                   (static_cast<double>(m) * static_cast<double>(n - 1)));
}

double RipEstimate::delta() const noexcept {
  return std::max(sigma_max * sigma_max - 1.0,
                  1.0 - sigma_min * sigma_min);
}

RipEstimate restricted_isometry_estimate(const linalg::Matrix& a,
                                         std::size_t k, int trials,
                                         std::uint64_t seed) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  CSECG_CHECK(k >= 1 && k <= m && m <= n,
              "restricted_isometry_estimate: need 1 <= k <= m <= n, got k="
                  << k << ", " << m << "x" << n);
  CSECG_CHECK(trials >= 1, "restricted_isometry_estimate: trials >= 1");

  // Normalize columns once.
  linalg::Matrix an = a;
  linalg::normalize_columns(an);

  rng::Xoshiro256 gen(seed);
  RipEstimate out;
  out.sigma_min = 1e300;
  out.sigma_max = 0.0;
  std::vector<std::size_t> support(k);
  std::vector<bool> used(n, false);
  for (int t = 0; t < trials; ++t) {
    // Draw a random size-k support.
    std::fill(used.begin(), used.end(), false);
    for (std::size_t picked = 0; picked < k;) {
      const auto idx =
          static_cast<std::size_t>(rng::uniform_below(gen, n));
      if (used[idx]) continue;
      used[idx] = true;
      support[picked++] = idx;
    }
    linalg::Matrix sub(m, k);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < k; ++j) sub(i, j) = an(i, support[j]);
    }
    const auto op = linalg::LinearOperator::from_matrix(sub);
    const double smax = linalg::operator_norm_estimate(op, 80);
    // σ_min via the shifted gram: λ_min(G) = s − λ_max(sI − G) with
    // s ≥ λ_max(G).
    const linalg::Matrix gram_sub = linalg::gram(sub);
    const double shift = smax * smax + 1e-9;
    linalg::Matrix shifted(k, k);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        shifted(i, j) = (i == j ? shift : 0.0) - gram_sub(i, j);
      }
    }
    const double lambda_shift_max = linalg::operator_norm_estimate(
        linalg::LinearOperator::from_matrix(shifted), 120);
    const double lambda_min = std::max(shift - lambda_shift_max, 0.0);
    out.sigma_max = std::max(out.sigma_max, smax);
    out.sigma_min = std::min(out.sigma_min, std::sqrt(lambda_min));
  }
  return out;
}

}  // namespace csecg::sensing

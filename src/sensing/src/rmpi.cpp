#include "csecg/sensing/rmpi.hpp"

#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"

namespace csecg::sensing {

void validate(const RmpiConfig& config) {
  CSECG_CHECK(config.channels > 0 && config.window > 0,
              "RmpiConfig: dimensions must be positive");
  CSECG_CHECK(config.channels <= config.window,
              "RmpiConfig: more channels (" << config.channels
                                            << ") than chips ("
                                            << config.window << ")");
  CSECG_CHECK(config.integrator_leakage >= 0.0 &&
                  config.integrator_leakage < 1.0,
              "RmpiConfig: leakage must be in [0, 1), got "
                  << config.integrator_leakage);
  CSECG_CHECK(config.adc_bits >= 0 && config.adc_bits <= 24,
              "RmpiConfig: adc_bits out of range: " << config.adc_bits);
  CSECG_CHECK(config.adc_range >= 0.0, "RmpiConfig: negative adc_range");
  CSECG_CHECK(config.input_full_scale > 0.0,
              "RmpiConfig: input_full_scale must be positive");
}

namespace {

double resolve_adc_range(const RmpiConfig& config) {
  if (config.adc_range > 0.0) return config.adc_range;
  // Design-time range: ±(input full scale · √n) covers the integrator
  // output at > 4σ for zero-mean chip sums while wasting at most ~2 bits.
  return config.input_full_scale *
         std::sqrt(static_cast<double>(config.window));
}

}  // namespace

RmpiSimulator::RmpiSimulator(RmpiConfig config)
    : config_(config),
      chips_(chipping_sequences(config.channels, config.window,
                                config.chip_seed)) {
  validate(config_);
  if (config_.adc_bits > 0) {
    const double range = resolve_adc_range(config_);
    adc_.emplace(config_.adc_bits, -range, range, QuantizerMode::kRound);
  }
}

linalg::Matrix RmpiSimulator::effective_matrix() const {
  linalg::Matrix phi = chips_;
  const double lambda = config_.integrator_leakage;
  if (lambda > 0.0) {
    const std::size_t n = config_.window;
    for (std::size_t k = 0; k < n; ++k) {
      const double weight =
          std::pow(1.0 - lambda, static_cast<double>(n - 1 - k));
      for (std::size_t c = 0; c < config_.channels; ++c) {
        phi(c, k) *= weight;
      }
    }
  }
  return phi;
}

linalg::LinearOperator RmpiSimulator::effective_operator() const {
  return linalg::LinearOperator::from_matrix(effective_matrix());
}

linalg::Vector RmpiSimulator::measure_unquantized(
    const linalg::Vector& x) const {
  CSECG_CHECK(x.size() == config_.window,
              "RmpiSimulator::measure expected window of "
                  << config_.window << ", got " << x.size());
  const double keep = 1.0 - config_.integrator_leakage;
  linalg::Vector y(config_.channels);
  for (std::size_t c = 0; c < config_.channels; ++c) {
    const double* chip_row = chips_.row(c);
    double acc = 0.0;
    for (std::size_t k = 0; k < config_.window; ++k) {
      acc = acc * keep + chip_row[k] * x[k];
    }
    if (!std::isfinite(acc)) {
      // A NaN integrator output means a NaN input sample — fail with the
      // channel index instead of letting the ADC see it.  ±inf (saturated
      // accumulation) is counted and left for the ADC to clamp.
      CSECG_CHECK(!std::isnan(acc),
                  "RmpiSimulator::measure: NaN integrator output on channel "
                      << c);
      static obs::Counter& nonfinite =
          obs::counter("rmpi.nonfinite_integrator_outputs");
      nonfinite.add();
    }
    y[c] = acc;
  }
  return y;
}

linalg::Vector RmpiSimulator::measure(const linalg::Vector& x) const {
  linalg::Vector y = measure_unquantized(x);
  if (adc_) {
    for (auto& v : y) v = adc_->reconstruct(adc_->code(v));
  }
  return y;
}

double RmpiSimulator::expected_quantization_noise_norm() const noexcept {
  if (!adc_) return 0.0;
  const double per_channel = adc_->step() / std::sqrt(12.0);
  return per_channel * std::sqrt(static_cast<double>(config_.channels));
}

}  // namespace csecg::sensing

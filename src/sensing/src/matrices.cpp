#include "csecg/sensing/matrices.hpp"

#include <vector>

#include "csecg/common/check.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::sensing {

std::string ensemble_name(Ensemble ensemble) {
  switch (ensemble) {
    case Ensemble::kRademacher:
      return "rademacher";
    case Ensemble::kGaussian:
      return "gaussian";
    case Ensemble::kSparseBinary:
      return "sparse-binary";
  }
  return "?";
}

void validate(const SensingConfig& config) {
  CSECG_CHECK(config.measurements > 0 && config.window > 0,
              "SensingConfig: dimensions must be positive");
  CSECG_CHECK(config.measurements <= config.window,
              "SensingConfig: m=" << config.measurements
                                  << " exceeds n=" << config.window
                                  << " (not a compression)");
  if (config.ensemble == Ensemble::kSparseBinary) {
    CSECG_CHECK(config.sparse_column_weight >= 1 &&
                    static_cast<std::size_t>(config.sparse_column_weight) <=
                        config.measurements,
                "SensingConfig: sparse_column_weight "
                    << config.sparse_column_weight
                    << " infeasible for m=" << config.measurements);
  }
}

linalg::Matrix make_sensing_matrix(const SensingConfig& config) {
  validate(config);
  rng::Xoshiro256 gen(config.seed);
  const std::size_t m = config.measurements;
  const std::size_t n = config.window;
  linalg::Matrix phi(m, n);
  switch (config.ensemble) {
    case Ensemble::kRademacher:
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          phi(i, j) = static_cast<double>(rng::rademacher(gen));
        }
      }
      break;
    case Ensemble::kGaussian:
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) phi(i, j) = rng::normal(gen);
      }
      break;
    case Ensemble::kSparseBinary: {
      const auto weight =
          static_cast<std::size_t>(config.sparse_column_weight);
      std::vector<std::size_t> rows(m);
      for (std::size_t j = 0; j < n; ++j) {
        // Partial Fisher–Yates draw of `weight` distinct rows.
        for (std::size_t i = 0; i < m; ++i) rows[i] = i;
        for (std::size_t k = 0; k < weight; ++k) {
          const std::size_t pick =
              k + static_cast<std::size_t>(rng::uniform_below(gen, m - k));
          std::swap(rows[k], rows[pick]);
          phi(rows[k], j) = 1.0;
        }
      }
      break;
    }
  }
  return phi;
}

linalg::Matrix chipping_sequences(std::size_t channels, std::size_t window,
                                  std::uint64_t seed) {
  SensingConfig config;
  config.ensemble = Ensemble::kRademacher;
  config.measurements = channels;
  config.window = window;
  config.seed = seed;
  return make_sensing_matrix(config);
}

}  // namespace csecg::sensing

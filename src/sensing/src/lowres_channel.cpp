#include "csecg/sensing/lowres_channel.hpp"

#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"

namespace csecg::sensing {

void validate(const LowResConfig& config) {
  CSECG_CHECK(config.bits >= 1, "LowResConfig: bits must be >= 1");
  CSECG_CHECK(config.bits <= config.full_scale_bits,
              "LowResConfig: bits " << config.bits
                                    << " exceeds full-scale resolution "
                                    << config.full_scale_bits);
  CSECG_CHECK(config.full_scale_bits <= 24,
              "LowResConfig: full_scale_bits out of range");
}

namespace {

Quantizer make_quantizer(const LowResConfig& config) {
  validate(config);
  const double hi = static_cast<double>(std::int64_t{1}
                                        << config.full_scale_bits);
  return Quantizer(config.bits, 0.0, hi, QuantizerMode::kFloor);
}

}  // namespace

LowResChannel::LowResChannel(LowResConfig config)
    : config_(config), quantizer_(make_quantizer(config)) {}

LowResOutput LowResChannel::sample(const linalg::Vector& window) const {
  LowResOutput out;
  out.step = quantizer_.step();
  out.codes.resize(window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    // NaN would throw inside the quantizer anyway; checking here names
    // the offending sample.  Out-of-range samples (including ±inf) clamp
    // to the rails below but break the box guarantee, so count them.
    const double value = window[i];
    CSECG_CHECK(!std::isnan(value),
                "LowResChannel::sample: NaN at sample " << i);
    if (value < quantizer_.lo() || value >= quantizer_.hi()) {
      static obs::Counter& out_of_range =
          obs::counter("lowres.out_of_range_samples");
      out_of_range.add();
    }
    out.codes[i] = quantizer_.code(value);
  }
  quantizer_.boxes(window, out.lower, out.upper);
  return out;
}

linalg::Vector LowResChannel::reconstruct(
    const std::vector<std::int64_t>& codes) const {
  linalg::Vector out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = quantizer_.reconstruct(codes[i]);
  }
  return out;
}

}  // namespace csecg::sensing

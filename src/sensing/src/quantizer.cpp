#include "csecg/sensing/quantizer.hpp"

#include <cmath>

#include "csecg/common/check.hpp"
#include "csecg/obs/registry.hpp"

namespace csecg::sensing {

Quantizer::Quantizer(int bits, double lo, double hi, QuantizerMode mode)
    : bits_(bits), lo_(lo), hi_(hi), mode_(mode) {
  CSECG_CHECK(bits >= 1 && bits <= 30,
              "Quantizer: bits out of range: " << bits);
  CSECG_CHECK(lo < hi, "Quantizer: need lo < hi, got [" << lo << ", " << hi
                                                        << ")");
  levels_ = std::int64_t{1} << bits;
  step_ = (hi_ - lo_) / static_cast<double>(levels_);
}

std::int64_t Quantizer::code(double value) const {
  if (!std::isfinite(value)) {
    // NaN fails every comparison: it would fall through both clamp
    // branches into a static_cast of an unrepresentable double (UB).
    CSECG_CHECK(!std::isnan(value), "Quantizer::code: NaN input");
    static obs::Counter& nonfinite = obs::counter("quantizer.nonfinite");
    nonfinite.add();
    return value < 0.0 ? 0 : levels_ - 1;
  }
  const double idx = std::floor((value - lo_) / step_);
  if (idx < 0.0) {
    static obs::Counter& clamped_low = obs::counter("quantizer.clamped_low");
    clamped_low.add();
    return 0;
  }
  if (idx >= static_cast<double>(levels_)) {
    static obs::Counter& clamped_high = obs::counter("quantizer.clamped_high");
    clamped_high.add();
    return levels_ - 1;
  }
  return static_cast<std::int64_t>(idx);
}

double Quantizer::lower_edge(std::int64_t code_value) const {
  CSECG_CHECK(code_value >= 0 && code_value < levels_,
              "Quantizer::lower_edge: code " << code_value << " out of [0, "
                                             << levels_ << ")");
  return lo_ + static_cast<double>(code_value) * step_;
}

double Quantizer::reconstruct(std::int64_t code_value) const {
  const double edge = lower_edge(code_value);
  return mode_ == QuantizerMode::kFloor ? edge : edge + 0.5 * step_;
}

linalg::Vector Quantizer::quantize(const linalg::Vector& x) const {
  linalg::Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = reconstruct(code(x[i]));
  }
  return out;
}

void Quantizer::boxes(const linalg::Vector& x, linalg::Vector& lower,
                      linalg::Vector& upper) const {
  CSECG_CHECK(mode_ == QuantizerMode::kFloor,
              "Quantizer::boxes requires kFloor mode");
  lower.resize(x.size());
  upper.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double edge = lower_edge(code(x[i]));
    lower[i] = edge;
    upper[i] = edge + step_;
  }
}

}  // namespace csecg::sensing

// Random Modulator Pre-Integrator (RMPI) simulator (paper §III-A, Fig. 3).
//
// Each of the m parallel channels multiplies the input by a ±1 chipping
// sequence, integrates over the processing window (integrate-and-dump) and
// samples the result once per window through a per-channel ADC.  On the
// Nyquist sample grid this is exactly y = Φx with Φ the chip matrix, so
// the simulator doubles as a validation oracle for the ideal matrix path;
// it additionally models two hardware non-idealities:
//
//  * integrator leakage — a lossy integrator decays by a factor (1−λ) per
//    chip period, weighting early samples by (1−λ)^(n−1−k);
//  * measurement-ADC quantization — each channel output is digitized by a
//    B-bit rounding quantizer with a design-time fixed full-scale range.
//
// effective_operator() returns the *true* linear map including leakage, so
// a decoder can stay consistent with the hardware (ablation: decode with
// the ideal Φ while the hardware leaks).
#pragma once

#include <cstdint>
#include <optional>

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/vector.hpp"
#include "csecg/sensing/matrices.hpp"
#include "csecg/sensing/quantizer.hpp"

namespace csecg::sensing {

/// RMPI configuration.
struct RmpiConfig {
  std::size_t channels = 128;       ///< m — parallel RD channels.
  std::size_t window = 512;         ///< n — chips per processing window.
  std::uint64_t chip_seed = 1;      ///< PRBS seed (shared with decoder).
  double integrator_leakage = 0.0;  ///< λ ∈ [0, 1): per-chip decay.
  int adc_bits = 12;                ///< Measurement ADC resolution; 0 = ideal.
  double adc_range = 0.0;           ///< Full scale ±adc_range; 0 = auto
                                    ///< (input_full_scale·√n).
  double input_full_scale = 2048.0; ///< Max |input| in ADC units (drives the
                                    ///< auto range).
};

/// Validates an RmpiConfig; throws std::invalid_argument on nonsense.
void validate(const RmpiConfig& config);

/// Time-domain RMPI model.
class RmpiSimulator {
 public:
  explicit RmpiSimulator(RmpiConfig config = {});

  const RmpiConfig& config() const noexcept { return config_; }

  /// The ±1 chipping matrix (m×n).
  const linalg::Matrix& chips() const noexcept { return chips_; }

  /// The effective measurement matrix including integrator leakage.
  /// Equals chips() when λ = 0.
  linalg::Matrix effective_matrix() const;

  /// effective_matrix() wrapped as a LinearOperator (what decoders use).
  linalg::LinearOperator effective_operator() const;

  /// Runs the analog front-end on one window: chip, integrate (with
  /// leakage), dump, and quantize.  Input length must equal window.
  linalg::Vector measure(const linalg::Vector& x) const;

  /// Same, without the measurement ADC (infinite-resolution output).
  linalg::Vector measure_unquantized(const linalg::Vector& x) const;

  /// The measurement ADC, if adc_bits > 0.
  const std::optional<Quantizer>& adc() const noexcept { return adc_; }

  /// Expected ‖quantization error‖₂ of one window's measurement vector
  /// (step/√12 per channel, √m channels); 0 for an ideal ADC.  Decoders
  /// use this as the fidelity radius σ in problem (1).
  double expected_quantization_noise_norm() const noexcept;

 private:
  RmpiConfig config_;
  linalg::Matrix chips_;
  std::optional<Quantizer> adc_;
};

}  // namespace csecg::sensing

// Sensing-matrix ensembles.
//
// The RMPI front-end realizes y = Φx with Φ built from ±1 chipping
// sequences (Rademacher ensemble); Gaussian and sparse-binary ensembles
// are provided as ablation baselines — the paper's architecture argument
// only depends on the number of rows m (one analog channel per row), not
// on the ensemble.
#pragma once

#include <cstdint>
#include <string>

#include "csecg/linalg/matrix.hpp"

namespace csecg::sensing {

/// Random matrix ensembles for Φ.
enum class Ensemble {
  kRademacher,    ///< i.i.d. ±1 chips (RMPI-realizable).
  kGaussian,      ///< i.i.d. N(0,1).
  kSparseBinary,  ///< Fixed number of ones per column (LDPC-like).
};

/// Human-readable ensemble name.
std::string ensemble_name(Ensemble ensemble);

/// Sensing-matrix generation parameters.
struct SensingConfig {
  Ensemble ensemble = Ensemble::kRademacher;
  std::size_t measurements = 128;  ///< m — also the RMPI channel count.
  std::size_t window = 512;        ///< n.
  std::uint64_t seed = 1;          ///< Chip-sequence seed (shared with the
                                   ///< decoder — both ends regenerate Φ).
  int sparse_column_weight = 8;    ///< Ones per column for kSparseBinary.
};

/// Validates a SensingConfig; throws std::invalid_argument when m > n,
/// dimensions are zero, or the sparse weight is infeasible.
void validate(const SensingConfig& config);

/// Builds the m×n sensing matrix for a configuration.  Deterministic in
/// (ensemble, m, n, seed): encoder and decoder call this independently and
/// obtain the same Φ, which is how the real system avoids transmitting Φ.
linalg::Matrix make_sensing_matrix(const SensingConfig& config);

/// Convenience: the ±1 chipping sequences of an m-channel RMPI as an m×n
/// matrix (identical to make_sensing_matrix with kRademacher).
linalg::Matrix chipping_sequences(std::size_t channels, std::size_t window,
                                  std::uint64_t seed);

}  // namespace csecg::sensing

// Compressed-sensing design diagnostics.
//
// The paper's argument starts from the m = s·log(n/s) measurement bound;
// these utilities let a user audit a concrete Φ (or Φ·Ψ product) the way
// the CS literature does: mutual coherence against the Welch bound, and a
// Monte-Carlo restricted-isometry proxy (extremal singular values of
// random k-column submatrices).  The phase_transition bench builds the
// classic empirical recovery map from the same pieces.
#pragma once

#include <cstdint>

#include "csecg/linalg/matrix.hpp"

namespace csecg::sensing {

/// Mutual coherence μ(A) = max_{i≠j} |⟨aᵢ, aⱼ⟩| / (‖aᵢ‖·‖aⱼ‖).
/// Throws std::invalid_argument for matrices with < 2 columns or a zero
/// column.
double mutual_coherence(const linalg::Matrix& a);

/// The Welch lower bound √((n−m)/(m(n−1))) on coherence for an m×n frame.
/// Throws std::invalid_argument unless 1 ≤ m < n.
double welch_bound(std::size_t m, std::size_t n);

/// Extremal-singular-value estimate of random k-column submatrices.
struct RipEstimate {
  double sigma_min = 0.0;  ///< Smallest σ_min(A_S) over the trials.
  double sigma_max = 0.0;  ///< Largest σ_max(A_S) over the trials.
  /// RIP-style constant for unit-norm columns: max(σ_max²−1, 1−σ_min²).
  double delta() const noexcept;
};

/// Monte-Carlo RIP proxy: draws `trials` random supports of size k and
/// measures the extremal singular values of the corresponding column
/// submatrices (columns are normalized internally).  Throws
/// std::invalid_argument unless 1 ≤ k ≤ m ≤ n and trials ≥ 1.
RipEstimate restricted_isometry_estimate(const linalg::Matrix& a,
                                         std::size_t k, int trials,
                                         std::uint64_t seed = 1);

}  // namespace csecg::sensing

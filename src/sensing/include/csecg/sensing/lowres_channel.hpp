// The ultra-low-power low-resolution parallel channel (paper §II).
//
// A B-bit ADC samples the same signal at Nyquist rate.  Its output ẋ is a
// coarsely quantized copy of x; the decoder uses it as the per-sample box
// constraint ẋ ≤ Ψα ≤ ẋ + d of problem (1), and the encoder delta-Huffman
// codes it for transmission (§III-B).
//
// The channel is defined over the raw ADC-unit scale of the record
// (MIT-BIH: 11-bit codes in [0, 2048)), so an i-bit low-resolution channel
// has step d = 2^(11−i) ADC units.
#pragma once

#include <cstdint>
#include <vector>

#include "csecg/linalg/vector.hpp"
#include "csecg/sensing/quantizer.hpp"

namespace csecg::sensing {

/// Low-resolution channel configuration.
struct LowResConfig {
  int bits = 7;            ///< Channel resolution (paper's trade-off pick).
  int full_scale_bits = 11;  ///< Resolution of the underlying record.
};

/// Validates a LowResConfig; throws std::invalid_argument unless
/// 1 ≤ bits ≤ full_scale_bits ≤ 24.
void validate(const LowResConfig& config);

/// Output of the channel for one processing window.
struct LowResOutput {
  std::vector<std::int64_t> codes;  ///< Raw B-bit codes (entropy-coder input).
  linalg::Vector lower;             ///< Box lower bounds ẋ (ADC units).
  linalg::Vector upper;             ///< Box upper bounds ẋ + d.
  double step = 0.0;                ///< Resolution depth step d.
};

/// The Nyquist-rate low-resolution ADC path.
class LowResChannel {
 public:
  explicit LowResChannel(LowResConfig config = {});

  const LowResConfig& config() const noexcept { return config_; }

  /// Quantization step d in ADC units: 2^(full_scale_bits − bits).
  double step() const noexcept { return quantizer_.step(); }

  /// Samples a window (raw ADC-unit values) through the channel.
  LowResOutput sample(const linalg::Vector& window) const;

  /// Reconstructs the staircase ẋ from transmitted codes.
  linalg::Vector reconstruct(const std::vector<std::int64_t>& codes) const;

 private:
  LowResConfig config_;
  Quantizer quantizer_;
};

}  // namespace csecg::sensing

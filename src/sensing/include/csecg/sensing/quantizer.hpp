// Uniform scalar quantizer (ADC model).
//
// Two rounding modes are provided because the two channels of the paper's
// front-end use them differently:
//  * kFloor — truncation, what a low-resolution ADC effectively does when
//    dropping LSBs.  Crucially, the floor mode gives the *exact* per-sample
//    box of problem (1): the true sample always lies in
//    [lower_edge(code), lower_edge(code) + step).
//  * kRound — round-to-nearest, used for the CS-channel measurement ADC
//    where only reconstruction error (not a bound) matters.
#pragma once

#include <cstdint>

#include "csecg/linalg/vector.hpp"

namespace csecg::sensing {

/// Rounding behaviour of the quantizer.
enum class QuantizerMode {
  kFloor,  ///< Truncate toward the lower cell edge.
  kRound,  ///< Round to the nearest cell midpoint.
};

/// Uniform B-bit quantizer over the half-open range [lo, hi).
class Quantizer {
 public:
  /// Throws std::invalid_argument unless 1 ≤ bits ≤ 30 and lo < hi.
  Quantizer(int bits, double lo, double hi,
            QuantizerMode mode = QuantizerMode::kFloor);

  int bits() const noexcept { return bits_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  QuantizerMode mode() const noexcept { return mode_; }

  /// Cell width (hi − lo) / 2^bits.
  double step() const noexcept { return step_; }

  /// Number of codes, 2^bits.
  std::int64_t levels() const noexcept { return levels_; }

  /// Quantizes a value to its code, clipping at the rails.  ±inf clamps
  /// to the corresponding rail (counted under `quantizer.nonfinite`);
  /// NaN throws std::invalid_argument — it carries no orderable value, so
  /// any code would be silent garbage.
  std::int64_t code(double value) const;

  /// Lower edge of a code's cell.  Throws std::invalid_argument for codes
  /// outside [0, levels).
  double lower_edge(std::int64_t code_value) const;

  /// Reconstruction value of a code: lower edge in kFloor mode (so the box
  /// [value, value+step) always contains the original), midpoint in kRound.
  double reconstruct(std::int64_t code_value) const;

  /// Quantize-and-reconstruct a whole vector.
  linalg::Vector quantize(const linalg::Vector& x) const;

  /// Per-sample reconstruction boxes [lower, upper] with upper−lower ==
  /// step(), containing the original sample whenever it was in range.
  /// Only meaningful in kFloor mode; throws otherwise.
  void boxes(const linalg::Vector& x, linalg::Vector& lower,
             linalg::Vector& upper) const;

 private:
  int bits_;
  double lo_;
  double hi_;
  QuantizerMode mode_;
  double step_;
  std::int64_t levels_;
};

}  // namespace csecg::sensing

#include "csecg/dsp/dwt.hpp"

#include <memory>
#include <vector>

#include "csecg/common/check.hpp"

namespace csecg::dsp {

Dwt::Dwt(WaveletFamily family, std::size_t n, int levels)
    : wavelet_(make_wavelet(family)), n_(n), levels_(levels) {
  CSECG_CHECK(n > 0, "Dwt: signal length must be positive");
  CSECG_CHECK(levels >= 1, "Dwt: need at least one level, got " << levels);
  CSECG_CHECK(levels <= max_levels(n),
              "Dwt: " << levels << " levels not supported for n=" << n);
}

int Dwt::max_levels(std::size_t n) {
  int levels = 0;
  while (n % 2 == 0 && n > 1) {
    n /= 2;
    ++levels;
  }
  return levels;
}

void Dwt::analyze_one_level(const double* input, std::size_t len,
                            double* approx, double* detail) const {
  const std::size_t half = len / 2;
  const std::size_t flen = wavelet_.length();
  const double* h = wavelet_.lowpass.data();
  const double* g = wavelet_.highpass.data();
  // Taps stay in range (2i + flen ≤ len) for the first main_count outputs;
  // only the tail needs the periodic wraparound, so the hot loop carries
  // no modulo.
  const std::size_t main_count = len >= flen ? (len - flen) / 2 + 1 : 0;
  for (std::size_t i = 0; i < main_count; ++i) {
    const double* in = input + 2 * i;
    double a = 0.0;
    double d = 0.0;
    for (std::size_t k = 0; k < flen; ++k) {
      const double v = in[k];
      a += h[k] * v;
      d += g[k] * v;
    }
    approx[i] = a;
    detail[i] = d;
  }
  for (std::size_t i = main_count; i < half; ++i) {
    double a = 0.0;
    double d = 0.0;
    const std::size_t base = 2 * i;
    for (std::size_t k = 0; k < flen; ++k) {
      const double v = input[(base + k) % len];
      a += h[k] * v;
      d += g[k] * v;
    }
    approx[i] = a;
    detail[i] = d;
  }
}

void Dwt::synthesize_one_level(const double* approx, const double* detail,
                               std::size_t half, double* output) const {
  const std::size_t len = 2 * half;
  const std::size_t flen = wavelet_.length();
  const double* h = wavelet_.lowpass.data();
  const double* g = wavelet_.highpass.data();
  for (std::size_t j = 0; j < len; ++j) output[j] = 0.0;
  const std::size_t main_count = len >= flen ? (len - flen) / 2 + 1 : 0;
  for (std::size_t i = 0; i < main_count; ++i) {
    const double a = approx[i];
    const double d = detail[i];
    double* out = output + 2 * i;
    for (std::size_t k = 0; k < flen; ++k) {
      out[k] += h[k] * a + g[k] * d;
    }
  }
  for (std::size_t i = main_count; i < half; ++i) {
    const double a = approx[i];
    const double d = detail[i];
    const std::size_t base = 2 * i;
    for (std::size_t k = 0; k < flen; ++k) {
      output[(base + k) % len] += h[k] * a + g[k] * d;
    }
  }
}

void Dwt::forward_into(const linalg::Vector& x,
                       linalg::Vector& coeffs) const {
  CSECG_CHECK(x.size() == n_, "Dwt::forward expected length "
                                  << n_ << ", got " << x.size());
  coeffs.resize(n_);
  // One scratch allocation (the per-level workspace); kept local so a
  // shared Dwt stays safe to use from several threads at once.
  std::vector<double> scratch(n_ + n_ / 2);
  double* current = scratch.data();
  double* approx = scratch.data() + n_;
  for (std::size_t i = 0; i < n_; ++i) current[i] = x[i];
  std::size_t len = n_;
  for (int level = 0; level < levels_; ++level) {
    const std::size_t half = len / 2;
    // Details for this level land at the tail of the active region.
    analyze_one_level(current, len, approx, coeffs.data() + half);
    for (std::size_t i = 0; i < half; ++i) current[i] = approx[i];
    len = half;
  }
  for (std::size_t i = 0; i < len; ++i) coeffs[i] = current[i];
}

linalg::Vector Dwt::forward(const linalg::Vector& x) const {
  linalg::Vector coeffs;
  forward_into(x, coeffs);
  return coeffs;
}

void Dwt::inverse_into(const linalg::Vector& coeffs,
                       linalg::Vector& x) const {
  CSECG_CHECK(coeffs.size() == n_, "Dwt::inverse expected length "
                                       << n_ << ", got " << coeffs.size());
  x = coeffs;
  std::vector<double> merged(n_);
  std::size_t half = n_ >> levels_;
  for (int level = levels_ - 1; level >= 0; --level) {
    synthesize_one_level(x.data(), x.data() + half, half, merged.data());
    const std::size_t len = 2 * half;
    for (std::size_t i = 0; i < len; ++i) x[i] = merged[i];
    half = len;
  }
}

linalg::Vector Dwt::inverse(const linalg::Vector& coeffs) const {
  linalg::Vector x;
  inverse_into(coeffs, x);
  return x;
}

linalg::LinearOperator Dwt::synthesis_operator() const {
  // One shared transform instance behind all four callables.
  const auto self = std::make_shared<const Dwt>(*this);
  return linalg::LinearOperator(
      n_, n_,
      [self](const linalg::Vector& coeffs) { return self->inverse(coeffs); },
      [self](const linalg::Vector& x) { return self->forward(x); },
      [self](const linalg::Vector& coeffs, linalg::Vector& x) {
        self->inverse_into(coeffs, x);
      },
      [self](const linalg::Vector& x, linalg::Vector& coeffs) {
        self->forward_into(x, coeffs);
      });
}

}  // namespace csecg::dsp

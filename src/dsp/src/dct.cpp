#include "csecg/dsp/dct.hpp"

#include <cmath>
#include <numbers>

#include "csecg/common/check.hpp"

namespace csecg::dsp {

Dct::Dct(std::size_t n) : n_(n) {
  CSECG_CHECK(n >= 1, "Dct: length must be >= 1");
  table_.resize(n * n);
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    const double scale = k == 0 ? norm0 : norm;
    for (std::size_t i = 0; i < n; ++i) {
      table_[k * n + i] =
          scale * std::cos(std::numbers::pi *
                           (2.0 * static_cast<double>(i) + 1.0) *
                           static_cast<double>(k) /
                           (2.0 * static_cast<double>(n)));
    }
  }
}

linalg::Vector Dct::forward(const linalg::Vector& x) const {
  CSECG_CHECK(x.size() == n_, "Dct::forward expected length "
                                  << n_ << ", got " << x.size());
  linalg::Vector coeffs(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double* row = table_.data() + k * n_;
    double acc = 0.0;
    for (std::size_t i = 0; i < n_; ++i) acc += row[i] * x[i];
    coeffs[k] = acc;
  }
  return coeffs;
}

linalg::Vector Dct::inverse(const linalg::Vector& coeffs) const {
  CSECG_CHECK(coeffs.size() == n_, "Dct::inverse expected length "
                                       << n_ << ", got " << coeffs.size());
  linalg::Vector x(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double ck = coeffs[k];
    if (ck == 0.0) continue;
    const double* row = table_.data() + k * n_;
    for (std::size_t i = 0; i < n_; ++i) x[i] += ck * row[i];
  }
  return x;
}

linalg::LinearOperator Dct::synthesis_operator() const {
  const Dct self = *this;
  return linalg::LinearOperator(
      n_, n_,
      [self](const linalg::Vector& coeffs) { return self.inverse(coeffs); },
      [self](const linalg::Vector& x) { return self.forward(x); });
}

}  // namespace csecg::dsp

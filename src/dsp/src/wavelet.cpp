#include "csecg/dsp/wavelet.hpp"

#include <stdexcept>

#include "csecg/common/check.hpp"

namespace csecg::dsp {
namespace {

// Scaling (lowpass) analysis filters, normalized so Σh = √2.  Values are
// the standard published Daubechies / Symlet / Coiflet coefficients.
const std::vector<double>& scaling_filter(WaveletFamily family) {
  static const std::vector<double> haar = {
      0.7071067811865476, 0.7071067811865476};
  static const std::vector<double> db2 = {
      0.48296291314469025, 0.836516303737469, 0.22414386804185735,
      -0.12940952255092145};
  static const std::vector<double> db3 = {
      0.3326705529509569, 0.8068915093133388, 0.4598775021193313,
      -0.13501102001039084, -0.08544127388224149, 0.035226291882100656};
  static const std::vector<double> db4 = {
      0.23037781330885523, 0.7148465705525415, 0.6308807679295904,
      -0.02798376941698385, -0.18703481171888114, 0.030841381835986965,
      0.032883011666982945, -0.010597401784997278};
  static const std::vector<double> db5 = {
      0.160102397974125, 0.6038292697974729, 0.7243085284385744,
      0.13842814590110342, -0.24229488706619015, -0.03224486958502952,
      0.07757149384006515, -0.006241490213011705, -0.012580751999015526,
      0.003335725285001549};
  static const std::vector<double> db6 = {
      0.11154074335008017, 0.4946238903983854, 0.7511339080215775,
      0.3152503517092432, -0.22626469396516913, -0.12976686756709563,
      0.09750160558707936, 0.02752286553001629, -0.031582039318031156,
      0.0005538422009938016, 0.004777257511010651, -0.00107730108499558};
  static const std::vector<double> db7 = {
      0.07785205408506236, 0.39653931948230575, 0.7291320908465551,
      0.4697822874053586, -0.14390600392910627, -0.22403618499416572,
      0.07130921926705004, 0.08061260915107307, -0.03802993693503463,
      -0.01657454163101562, 0.012550998556013784, 0.00042957797300470274,
      -0.0018016407039998328, 0.0003537138000010399};
  static const std::vector<double> db8 = {
      0.05441584224308161, 0.3128715909144659, 0.6756307362980128,
      0.5853546836548691, -0.015829105256023893, -0.2840155429624281,
      0.00047248457399797254, 0.128747426620186, -0.01736930100202211,
      -0.04408825393106472, 0.013981027917015516, 0.008746094047015655,
      -0.00487035299301066, -0.0003917403729959771, 0.0006754494059985568,
      -0.00011747678400228192};
  static const std::vector<double> db9 = {
      0.03807794736316728, 0.24383467463766728, 0.6048231236767786,
      0.6572880780366389, 0.13319738582208895, -0.29327378327258685,
      -0.09684078322087904, 0.14854074933476008, 0.030725681478322865,
      -0.06763282905952399, 0.00025094711499193845, 0.022361662123515244,
      -0.004723204757894831, -0.004281503681904723, 0.0018476468829611268,
      0.00023038576399541288, -0.0002519631889981789,
      3.9347319995026124e-05};
  static const std::vector<double> db10 = {
      0.026670057900950818, 0.18817680007762133, 0.5272011889309198,
      0.6884590394525921, 0.2811723436604265, -0.24984642432648865,
      -0.19594627437659665, 0.12736934033574265, 0.09305736460380659,
      -0.07139414716586077, -0.02945753682194567, 0.03321267405893324,
      0.0036065535669883944, -0.010733175482979604, 0.0013953517469940798,
      0.00199240529499085, -0.0006858566950046825, -0.0001164668549943862,
      9.358867000108985e-05, -1.326420300235487e-05};
  static const std::vector<double> sym4 = {
      -0.07576571478927333, -0.02963552764599851, 0.49761866763201545,
      0.8037387518059161, 0.29785779560527736, -0.09921954357684722,
      -0.012603967262037833, 0.0322231006040427};
  static const std::vector<double> sym5 = {
      0.027333068345077982, 0.029519490925774643, -0.039134249302383094,
      0.1993975339773936, 0.7234076904024206, 0.6339789634582119,
      0.01660210576452232, -0.17532808990845047, -0.021101834024758855,
      0.019538882735286728};
  static const std::vector<double> sym6 = {
      0.015404109327027373, 0.0034907120842174702, -0.11799011114819057,
      -0.048311742585633, 0.4910559419267466, 0.787641141030194,
      0.3379294217276218, -0.07263752278646252, -0.021060292512300564,
      0.04472490177066578, 0.0017677118642428036, -0.007800708325034148};
  static const std::vector<double> sym8 = {
      -0.0033824159510061256, -0.0005421323317911481, 0.03169508781149298,
      0.007607487324917605, -0.1432942383508097, -0.061273359067658524,
      0.4813596512583722, 0.7771857517005235, 0.3644418948353314,
      -0.05194583810770904, -0.027219029917056003, 0.049137179673607506,
      0.003808752013890615, -0.01495225833704823, -0.0003029205147213668,
      0.0018899503327594609};
  static const std::vector<double> coif1 = {
      -0.01565572813546454, -0.0727326195128539, 0.38486484686420286,
      0.8525720202122554, 0.3378976624578092, -0.0727326195128539};
  static const std::vector<double> coif2 = {
      -0.0007205494453645122, -0.0018232088707029932, 0.0056114348193944995,
      0.023680171946334084, -0.0594344186464569, -0.0764885990783064,
      0.41700518442169254, 0.8127236354455423, 0.3861100668211622,
      -0.06737255472196302, -0.04146493678175915, 0.016387336463522112};

  switch (family) {
    case WaveletFamily::kHaar:
      return haar;
    case WaveletFamily::kDb2:
      return db2;
    case WaveletFamily::kDb3:
      return db3;
    case WaveletFamily::kDb4:
      return db4;
    case WaveletFamily::kDb5:
      return db5;
    case WaveletFamily::kDb6:
      return db6;
    case WaveletFamily::kDb7:
      return db7;
    case WaveletFamily::kDb8:
      return db8;
    case WaveletFamily::kDb9:
      return db9;
    case WaveletFamily::kDb10:
      return db10;
    case WaveletFamily::kSym4:
      return sym4;
    case WaveletFamily::kSym5:
      return sym5;
    case WaveletFamily::kSym6:
      return sym6;
    case WaveletFamily::kSym8:
      return sym8;
    case WaveletFamily::kCoif1:
      return coif1;
    case WaveletFamily::kCoif2:
      return coif2;
  }
  throw std::invalid_argument("unknown WaveletFamily");
}

}  // namespace

const std::vector<WaveletFamily>& all_wavelet_families() {
  static const std::vector<WaveletFamily> families = {
      WaveletFamily::kHaar, WaveletFamily::kDb2,  WaveletFamily::kDb3,
      WaveletFamily::kDb4,  WaveletFamily::kDb5,  WaveletFamily::kDb6,
      WaveletFamily::kDb7,  WaveletFamily::kDb8,  WaveletFamily::kDb9,
      WaveletFamily::kDb10, WaveletFamily::kSym4, WaveletFamily::kSym5,
      WaveletFamily::kSym6, WaveletFamily::kSym8, WaveletFamily::kCoif1,
      WaveletFamily::kCoif2};
  return families;
}

std::string wavelet_name(WaveletFamily family) {
  switch (family) {
    case WaveletFamily::kHaar:
      return "haar";
    case WaveletFamily::kDb2:
      return "db2";
    case WaveletFamily::kDb3:
      return "db3";
    case WaveletFamily::kDb4:
      return "db4";
    case WaveletFamily::kDb5:
      return "db5";
    case WaveletFamily::kDb6:
      return "db6";
    case WaveletFamily::kDb7:
      return "db7";
    case WaveletFamily::kDb8:
      return "db8";
    case WaveletFamily::kDb9:
      return "db9";
    case WaveletFamily::kDb10:
      return "db10";
    case WaveletFamily::kSym4:
      return "sym4";
    case WaveletFamily::kSym5:
      return "sym5";
    case WaveletFamily::kSym6:
      return "sym6";
    case WaveletFamily::kSym8:
      return "sym8";
    case WaveletFamily::kCoif1:
      return "coif1";
    case WaveletFamily::kCoif2:
      return "coif2";
  }
  throw std::invalid_argument("unknown WaveletFamily");
}

WaveletFamily wavelet_from_name(const std::string& name) {
  for (WaveletFamily family : all_wavelet_families()) {
    if (wavelet_name(family) == name) return family;
  }
  throw std::invalid_argument("unknown wavelet name: " + name);
}

Wavelet make_wavelet(WaveletFamily family) {
  Wavelet w;
  w.family = family;
  w.lowpass = scaling_filter(family);
  const std::size_t len = w.lowpass.size();
  w.highpass.resize(len);
  for (std::size_t k = 0; k < len; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    w.highpass[k] = sign * w.lowpass[len - 1 - k];
  }
  return w;
}

}  // namespace csecg::dsp

#include "csecg/dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "csecg/common/check.hpp"

namespace csecg::dsp {
namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  CSECG_CHECK(is_power_of_two(n), "fft: length must be a power of two, got "
                                      << n);
  if (n == 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson–Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& value : data) value *= scale;
  }
}

std::vector<std::complex<double>> fft_real(const linalg::Vector& x) {
  std::vector<std::complex<double>> data(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = x[i];
  fft(data);
  return data;
}

linalg::Vector magnitude_spectrum(const linalg::Vector& x) {
  const auto spectrum = fft_real(x);
  linalg::Vector out(x.size() / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = std::abs(spectrum[k]);
  }
  return out;
}

void validate(const WelchConfig& config) {
  CSECG_CHECK(is_power_of_two(config.segment) && config.segment >= 8,
              "WelchConfig: segment must be a power of two >= 8, got "
                  << config.segment);
  CSECG_CHECK(config.overlap >= 0.0 && config.overlap < 1.0,
              "WelchConfig: overlap must be in [0, 1)");
  CSECG_CHECK(config.fs_hz > 0.0, "WelchConfig: fs must be positive");
}

Psd welch_psd(const linalg::Vector& x, const WelchConfig& config) {
  validate(config);
  const std::size_t seg = config.segment;
  CSECG_CHECK(x.size() >= seg, "welch_psd: signal shorter than one segment");
  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(seg) * (1.0 - config.overlap))));

  // Hann window and its power normalization.
  std::vector<double> window(seg);
  double window_power = 0.0;
  for (std::size_t i = 0; i < seg; ++i) {
    window[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                                     static_cast<double>(i) /
                                     static_cast<double>(seg - 1));
    window_power += window[i] * window[i];
  }

  Psd psd;
  psd.frequency_hz.resize(seg / 2 + 1);
  psd.power.assign(seg / 2 + 1, 0.0);
  for (std::size_t k = 0; k <= seg / 2; ++k) {
    psd.frequency_hz[k] =
        static_cast<double>(k) * config.fs_hz / static_cast<double>(seg);
  }

  std::size_t segments = 0;
  std::vector<std::complex<double>> buffer(seg);
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    // Detrend (remove segment mean) and window.
    double mean = 0.0;
    for (std::size_t i = 0; i < seg; ++i) mean += x[start + i];
    mean /= static_cast<double>(seg);
    for (std::size_t i = 0; i < seg; ++i) {
      buffer[i] = (x[start + i] - mean) * window[i];
    }
    fft(buffer);
    for (std::size_t k = 0; k <= seg / 2; ++k) {
      const double mag2 = std::norm(buffer[k]);
      // One-sided density; interior bins double.
      const double scale = (k == 0 || k == seg / 2) ? 1.0 : 2.0;
      psd.power[k] += scale * mag2 / (window_power * config.fs_hz);
    }
    ++segments;
  }
  for (auto& p : psd.power) p /= static_cast<double>(segments);
  return psd;
}

double band_power(const Psd& psd, double f_lo_hz, double f_hi_hz) {
  CSECG_CHECK(f_lo_hz >= 0.0 && f_hi_hz > f_lo_hz,
              "band_power: need 0 <= f_lo < f_hi");
  CSECG_CHECK(psd.frequency_hz.size() >= 2, "band_power: empty psd");
  double total = 0.0;
  for (std::size_t k = 1; k < psd.frequency_hz.size(); ++k) {
    const double f0 = psd.frequency_hz[k - 1];
    const double f1 = psd.frequency_hz[k];
    if (f1 < f_lo_hz || f0 > f_hi_hz) continue;
    total += 0.5 * (psd.power[k - 1] + psd.power[k]) * (f1 - f0);
  }
  return total;
}

double spectral_distortion_db(const linalg::Vector& original,
                              const linalg::Vector& reconstructed,
                              const WelchConfig& config, double f_lo_hz,
                              double f_hi_hz) {
  CSECG_CHECK(original.size() == reconstructed.size(),
              "spectral_distortion_db: size mismatch");
  const Psd a = welch_psd(original, config);
  const Psd b = welch_psd(reconstructed, config);
  double acc = 0.0;
  std::size_t bins = 0;
  constexpr double kFloor = 1e-20;
  for (std::size_t k = 0; k < a.frequency_hz.size(); ++k) {
    const double f = a.frequency_hz[k];
    if (f < f_lo_hz || f > f_hi_hz) continue;
    const double da = 10.0 * std::log10(std::max(a.power[k], kFloor));
    const double db = 10.0 * std::log10(std::max(b.power[k], kFloor));
    acc += (da - db) * (da - db);
    ++bins;
  }
  CSECG_CHECK(bins > 0, "spectral_distortion_db: empty band");
  return std::sqrt(acc / static_cast<double>(bins));
}

}  // namespace csecg::dsp

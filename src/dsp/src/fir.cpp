#include "csecg/dsp/fir.hpp"

#include <cmath>
#include <numbers>

#include "csecg/common/check.hpp"

namespace csecg::dsp {

std::vector<double> design_lowpass(double cutoff_normalized,
                                   std::size_t taps) {
  CSECG_CHECK(cutoff_normalized > 0.0 && cutoff_normalized < 0.5,
              "design_lowpass cutoff must be in (0, 0.5), got "
                  << cutoff_normalized);
  CSECG_CHECK(taps >= 3 && taps % 2 == 1,
              "design_lowpass taps must be odd and >= 3, got " << taps);
  std::vector<double> h(taps);
  const auto mid = static_cast<double>(taps - 1) / 2.0;
  const double two_pi = 2.0 * std::numbers::pi;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double sinc = (t == 0.0)
                            ? 2.0 * cutoff_normalized
                            : std::sin(two_pi * cutoff_normalized * t) /
                                  (std::numbers::pi * t);
    const double window =
        0.54 - 0.46 * std::cos(two_pi * static_cast<double>(i) /
                               static_cast<double>(taps - 1));
    h[i] = sinc * window;
    sum += h[i];
  }
  // Normalize to unit DC gain.
  for (double& v : h) v /= sum;
  return h;
}

linalg::Vector convolve(const linalg::Vector& x,
                        const std::vector<double>& h) {
  CSECG_CHECK(!x.empty() && !h.empty(), "convolve: empty operand");
  linalg::Vector y(x.size() + h.size() - 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = 0; k < h.size(); ++k) y[i + k] += xi * h[k];
  }
  return y;
}

linalg::Vector filter_same(const linalg::Vector& x,
                           const std::vector<double>& h) {
  CSECG_CHECK(h.size() % 2 == 1, "filter_same requires odd-length filter");
  const linalg::Vector full = convolve(x, h);
  const std::size_t delay = (h.size() - 1) / 2;
  linalg::Vector y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = full[i + delay];
  return y;
}

linalg::Vector circular_convolve(const linalg::Vector& x,
                                 const std::vector<double>& h) {
  CSECG_CHECK(!x.empty() && !h.empty(), "circular_convolve: empty operand");
  const std::size_t n = x.size();
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size(); ++k) {
      acc += h[k] * x[(i + n - (k % n)) % n];
    }
    y[i] = acc;
  }
  return y;
}

linalg::Vector decimate(const linalg::Vector& x, std::size_t factor) {
  CSECG_CHECK(factor >= 1, "decimate factor must be >= 1");
  linalg::Vector y((x.size() + factor - 1) / factor);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = x[i * factor];
  return y;
}

linalg::Vector moving_average(const linalg::Vector& x, std::size_t window) {
  CSECG_CHECK(window >= 1 && window % 2 == 1,
              "moving_average window must be odd and >= 1, got " << window);
  const std::size_t half = window / 2;
  const std::size_t n = x.size();
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    double acc = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) acc += x[j];
    y[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return y;
}

}  // namespace csecg::dsp

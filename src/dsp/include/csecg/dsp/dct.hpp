// Orthonormal DCT-II dictionary.
//
// The paper's conclusion motivates the hybrid front-end for high-frequency
// A2I conversion, where the signal of interest is a few tones and flash
// ADCs cap out near 8 ENOB at GHz rates.  Tone-sparse real signals are
// sparse under the DCT, so this transform plays the Ψ role for the HF
// demo (examples/hf_a2i.cpp) the way the wavelet DWT does for ECG.
//
//   forward:  C[k] = s_k · Σ_i x[i] · cos(π(2i+1)k / 2n)
//   inverse:  the transpose (the transform is orthonormal)
//
// with s_0 = √(1/n), s_k = √(2/n).  Direct O(n²) evaluation with a
// precomputed cosine table — exact, allocation-free per apply, and fast
// enough for the window sizes csecg uses (n ≤ a few thousand).
#pragma once

#include <cstddef>
#include <vector>

#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::dsp {

/// Orthonormal DCT-II for fixed length n.
class Dct {
 public:
  /// Throws std::invalid_argument unless n ≥ 1.
  explicit Dct(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Analysis: DCT coefficients of x (length n).
  linalg::Vector forward(const linalg::Vector& x) const;

  /// Synthesis: signal from coefficients (the inverse/transpose).
  linalg::Vector inverse(const linalg::Vector& coeffs) const;

  /// The synthesis operator Ψ (apply = inverse, adjoint = forward).
  linalg::LinearOperator synthesis_operator() const;

 private:
  std::size_t n_;
  std::vector<double> table_;  // table_[k·n + i] = s_k·cos(π(2i+1)k/2n).
};

}  // namespace csecg::dsp

// FIR filtering utilities.
//
// Used by the ECG synthesis path (band-limiting before decimation) and by
// the RMPI simulator (anti-alias behaviour of the integrate-and-dump stage
// is validated against an explicit lowpass).
#pragma once

#include <cstddef>
#include <vector>

#include "csecg/linalg/vector.hpp"

namespace csecg::dsp {

/// Designs a linear-phase windowed-sinc lowpass FIR.
/// `cutoff_normalized` is the -6 dB cutoff as a fraction of the sampling
/// rate (0 < cutoff < 0.5); `taps` must be odd and ≥ 3.  Hamming window.
std::vector<double> design_lowpass(double cutoff_normalized, std::size_t taps);

/// Full linear convolution; output length = x.size() + h.size() − 1.
linalg::Vector convolve(const linalg::Vector& x,
                        const std::vector<double>& h);

/// "Same"-size filtering with zero-phase group-delay compensation for
/// odd-length linear-phase filters: output[i] aligns with input[i].
linalg::Vector filter_same(const linalg::Vector& x,
                           const std::vector<double>& h);

/// Circular convolution of x with h (period = x.size()).
linalg::Vector circular_convolve(const linalg::Vector& x,
                                 const std::vector<double>& h);

/// Keeps every `factor`-th sample starting at index 0.
linalg::Vector decimate(const linalg::Vector& x, std::size_t factor);

/// Centered moving average of the given odd window length (edge samples
/// use a shrunken window); used for baseline trend estimation.
linalg::Vector moving_average(const linalg::Vector& x, std::size_t window);

}  // namespace csecg::dsp

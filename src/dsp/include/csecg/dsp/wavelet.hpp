// Orthogonal wavelet filter banks.
//
// ECG windows are sparse in Daubechies-family wavelet bases; the authors'
// earlier TBME'11 work (ref [1] of the paper) used such a dictionary, and
// this module provides the orthonormal filters the DWT is built from.
// Every family here satisfies the quadrature-mirror-filter (QMF)
// orthonormality conditions Σ h[k]·h[k+2j] = δ_j and Σ h[k] = √2, which
// the test suite verifies for all families to 1e-12.
#pragma once

#include <string>
#include <vector>

namespace csecg::dsp {

/// Supported orthogonal wavelet families.
enum class WaveletFamily {
  kHaar,
  kDb2,
  kDb3,
  kDb4,
  kDb5,
  kDb6,
  kDb7,
  kDb8,
  kDb9,
  kDb10,
  kSym4,
  kSym5,
  kSym6,
  kSym8,
  kCoif1,
  kCoif2,
};

/// All families, in declaration order (for sweeps/tests).
const std::vector<WaveletFamily>& all_wavelet_families();

/// Human-readable family name ("db4", "sym8", ...).
std::string wavelet_name(WaveletFamily family);

/// Parses a family name; throws std::invalid_argument on unknown names.
WaveletFamily wavelet_from_name(const std::string& name);

/// An orthonormal two-channel filter bank.
struct Wavelet {
  WaveletFamily family;
  /// Lowpass (scaling) analysis filter h, Σh = √2.
  std::vector<double> lowpass;
  /// Highpass (wavelet) analysis filter g, derived from h by the QMF rule
  /// g[k] = (-1)^k · h[L−1−k].
  std::vector<double> highpass;

  std::size_t length() const noexcept { return lowpass.size(); }
};

/// Builds the filter bank for a family.
Wavelet make_wavelet(WaveletFamily family);

}  // namespace csecg::dsp

// Periodized multi-level discrete wavelet transform.
//
// The transform is orthonormal: forward() is an orthogonal change of basis
// (Ψᵀ), inverse() its transpose (Ψ).  Coefficient layout after L levels on
// a length-n signal (n divisible by 2^L):
//
//   [ approx(n/2^L) | detail level L (n/2^L) | ... | detail level 1 (n/2) ]
//
// which matches the conventional "pyramid" ordering so coarse coefficients
// (where ECG energy concentrates) come first.
#pragma once

#include <cstddef>

#include "csecg/dsp/wavelet.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/vector.hpp"

namespace csecg::dsp {

/// Multi-level periodized orthonormal DWT for fixed signal length.
class Dwt {
 public:
  /// Creates a transform for signals of length n with the given number of
  /// decomposition levels.  Throws std::invalid_argument unless n is
  /// divisible by 2^levels, levels ≥ 1, and the coarsest band length
  /// n/2^levels is at least 1.
  Dwt(WaveletFamily family, std::size_t n, int levels);

  std::size_t size() const noexcept { return n_; }
  int levels() const noexcept { return levels_; }
  WaveletFamily family() const noexcept { return wavelet_.family; }

  /// Analysis: coefficients = Ψᵀ·x.  Input length must equal size().
  linalg::Vector forward(const linalg::Vector& x) const;

  /// Synthesis: x = Ψ·coefficients.  Input length must equal size().
  linalg::Vector inverse(const linalg::Vector& coeffs) const;

  /// forward() into a caller-owned vector (resized to size()); avoids the
  /// output allocation on the solver hot path.  x and coeffs must not
  /// alias.  Thread-safe (scratch is per call).
  void forward_into(const linalg::Vector& x, linalg::Vector& coeffs) const;

  /// inverse() into a caller-owned vector; same contract as forward_into.
  void inverse_into(const linalg::Vector& coeffs, linalg::Vector& x) const;

  /// The synthesis operator Ψ (cols = coefficient index, rows = samples);
  /// apply() is inverse(), apply_adjoint() is forward().  This is the
  /// dictionary handed to the recovery solvers.
  linalg::LinearOperator synthesis_operator() const;

  /// Largest level count usable for signals of length n with this family
  /// (limited only by divisibility by two here; periodization handles
  /// filters longer than the band).
  static int max_levels(std::size_t n);

 private:
  void analyze_one_level(const double* input, std::size_t len, double* approx,
                         double* detail) const;
  void synthesize_one_level(const double* approx, const double* detail,
                            std::size_t half, double* output) const;

  Wavelet wavelet_;
  std::size_t n_ = 0;
  int levels_ = 0;
};

}  // namespace csecg::dsp

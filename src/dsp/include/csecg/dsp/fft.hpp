// Radix-2 FFT, real-signal spectra, and Welch PSD estimation.
//
// Supports the spectral-distortion quality metric (clinicians read ECG
// partly in the frequency domain: QRS energy 5–15 Hz, T waves below 5 Hz)
// and general signal diagnostics on the synthesizer output.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "csecg/linalg/vector.hpp"

namespace csecg::dsp {

/// In-place iterative radix-2 decimation-in-time FFT.
/// data.size() must be a power of two ≥ 1; inverse applies 1/n scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// FFT of a real signal (length must be a power of two); returns the full
/// complex spectrum (n bins, conjugate-symmetric).
std::vector<std::complex<double>> fft_real(const linalg::Vector& x);

/// One-sided magnitude spectrum |X[k]| for k = 0..n/2 of a real signal.
linalg::Vector magnitude_spectrum(const linalg::Vector& x);

/// Welch PSD options.
struct WelchConfig {
  std::size_t segment = 256;  ///< Power-of-two segment length.
  double overlap = 0.5;       ///< Fractional overlap in [0, 1).
  double fs_hz = 360.0;       ///< Sampling rate (sets the bin frequencies).
};

/// Validates a WelchConfig; throws std::invalid_argument on nonsense.
void validate(const WelchConfig& config);

/// Welch PSD estimate result.
struct Psd {
  std::vector<double> frequency_hz;  ///< Bin centers, 0..fs/2.
  std::vector<double> power;         ///< Power density per bin.
};

/// Hann-windowed, averaged-periodogram PSD of a real signal.  The signal
/// must contain at least one full segment.
Psd welch_psd(const linalg::Vector& x, const WelchConfig& config = {});

/// Band power of a PSD over [f_lo, f_hi] (trapezoidal sum).
double band_power(const Psd& psd, double f_lo_hz, double f_hi_hz);

/// Spectral distortion between an original and reconstructed signal:
/// RMS difference of their Welch PSDs in dB over [f_lo, f_hi] — the
/// frequency-domain companion of PRD.  Throws on size mismatch.
double spectral_distortion_db(const linalg::Vector& original,
                              const linalg::Vector& reconstructed,
                              const WelchConfig& config = {},
                              double f_lo_hz = 0.5, double f_hi_hz = 40.0);

}  // namespace csecg::dsp

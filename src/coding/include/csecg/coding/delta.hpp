// Delta coding of the low-resolution channel (paper §III-B).
//
// Consecutive low-resolution codes are highly redundant, so the encoder
// transmits the first code raw and the differences thereafter; the
// difference distribution is sharply peaked at zero (Fig. 4), which is
// what the Huffman stage exploits.
#pragma once

#include <cstdint>
#include <vector>

namespace csecg::coding {

/// Delta-encoded window: the raw first value plus consecutive differences
/// (diffs[i] = codes[i+1] − codes[i]).
struct DeltaEncoded {
  std::int64_t first = 0;
  std::vector<std::int64_t> diffs;
};

/// Delta-encodes a code sequence.  Throws std::invalid_argument on an
/// empty input.
DeltaEncoded delta_encode(const std::vector<std::int64_t>& codes);

/// Inverts delta_encode.
std::vector<std::int64_t> delta_decode(const DeltaEncoded& encoded);

/// Histogram of values (for codebook training and the Fig. 4 PDF).
/// Returned as sorted (value, count) pairs.
std::vector<std::pair<std::int64_t, std::uint64_t>> histogram(
    const std::vector<std::int64_t>& values);

/// Shannon entropy in bits/symbol of a histogram.  Returns 0 for empty or
/// single-symbol histograms.
double entropy_bits(
    const std::vector<std::pair<std::int64_t, std::uint64_t>>& hist);

}  // namespace csecg::coding

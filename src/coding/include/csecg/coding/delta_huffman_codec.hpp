// The low-resolution channel's transmission codec (paper §III-B).
//
// Per window: the first B-bit code is sent raw, every following sample as
// the Huffman code of its delta.  Deltas absent from the offline-trained
// codebook are escape-coded: the reserved escape symbol followed by the
// raw delta in (B+1)-bit two's complement.  The codebook is trained once
// over a training corpus (offline, as in the paper) and stored on the
// node; storage_bytes() of the embedded codebook is the Fig. 5 metric.
#pragma once

#include <cstdint>
#include <vector>

#include "csecg/coding/huffman.hpp"

namespace csecg::coding {

/// Offline-trained delta-Huffman codec for B-bit low-resolution codes.
class DeltaHuffmanCodec {
 public:
  /// Trains a codebook from windows of raw low-resolution codes.
  /// `code_bits` is the channel resolution B (1..16).  Throws
  /// std::invalid_argument if the corpus is empty or codes exceed B bits.
  static DeltaHuffmanCodec train(
      const std::vector<std::vector<std::int64_t>>& training_windows,
      int code_bits);

  /// Reconstructs a codec from a serialized codebook (node provisioning).
  DeltaHuffmanCodec(HuffmanCodebook codebook, int code_bits);

  int code_bits() const noexcept { return code_bits_; }
  const HuffmanCodebook& codebook() const noexcept { return codebook_; }

  /// The reserved escape symbol: 2^B (outside the legal delta alphabet of
  /// a B-bit channel only in magnitude-coded form; legal deltas span
  /// (−2^B, 2^B)).
  std::int64_t escape_symbol() const noexcept;

  /// Encodes one window of codes.  Returns the payload bytes and reports
  /// the exact bit count (before byte padding) via `bits_out`.
  std::vector<std::uint8_t> encode(const std::vector<std::int64_t>& codes,
                                   std::size_t& bits_out) const;

  /// Exact encoded size in bits without materializing the payload.
  std::size_t encoded_bits(const std::vector<std::int64_t>& codes) const;

  /// Decodes a payload back to `count` codes.  The payload is untrusted:
  /// truncated or desynchronized streams throw coding::DecodeError;
  /// allocation never exceeds `count` entries.  Decoded codes may still
  /// fall outside [0, 2^B) on a corrupt-but-decodable stream — callers
  /// on the receive path must range-check them.
  std::vector<std::int64_t> decode(const std::vector<std::uint8_t>& payload,
                                   std::size_t count) const;

 private:
  void check_codes(const std::vector<std::int64_t>& codes) const;

  HuffmanCodebook codebook_;
  int code_bits_;
};

}  // namespace csecg::coding

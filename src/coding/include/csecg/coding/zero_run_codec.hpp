// Zero-run extension of the delta-Huffman codec.
//
// A scalar Huffman code cannot spend less than 1 bit per symbol, but at
// low quantization depths the delta stream of the low-resolution channel
// is dominated by long runs of exact zeros (Fig. 4), so the paper's
// sub-1-bit/sample Table I rows are only reachable by coding runs as
// units.  This codec replaces each maximal run of z ≥ 1 zero deltas with
// a RUN marker followed by the Elias-gamma code of z; everything else
// (non-zero deltas, escape) is coded exactly as in DeltaHuffmanCodec.
// The ablate_rle bench quantifies the gain over the scalar codec.
#pragma once

#include <cstdint>
#include <vector>

#include "csecg/coding/bitstream.hpp"
#include "csecg/coding/huffman.hpp"

namespace csecg::coding {

/// Writes the Elias-gamma code of value ≥ 1.
void elias_gamma_encode(std::uint64_t value, BitWriter& writer);

/// Reads an Elias-gamma code.  Throws coding::DecodeError on truncation
/// or when the zero prefix exceeds 63 bits (no 64-bit value encodes to a
/// longer prefix, so such a stream is necessarily corrupt).
std::uint64_t elias_gamma_decode(BitReader& reader);

/// Number of bits elias_gamma_encode(value) writes.
int elias_gamma_bits(std::uint64_t value) noexcept;

/// Offline-trained zero-run delta-Huffman codec for B-bit codes.
class ZeroRunDeltaCodec {
 public:
  /// Trains from windows of raw low-resolution codes (same corpus
  /// contract as DeltaHuffmanCodec::train).
  static ZeroRunDeltaCodec train(
      const std::vector<std::vector<std::int64_t>>& training_windows,
      int code_bits);

  /// Reconstructs a codec from a serialized codebook.
  ZeroRunDeltaCodec(HuffmanCodebook codebook, int code_bits);

  int code_bits() const noexcept { return code_bits_; }
  const HuffmanCodebook& codebook() const noexcept { return codebook_; }

  /// Reserved symbols: escape = 2^B (raw (B+1)-bit delta follows), run
  /// marker = 2^B + 1 (gamma-coded zero-run length follows).
  std::int64_t escape_symbol() const noexcept;
  std::int64_t run_symbol() const noexcept;

  /// Encodes one window; reports the exact bit count via `bits_out`.
  std::vector<std::uint8_t> encode(const std::vector<std::int64_t>& codes,
                                   std::size_t& bits_out) const;

  /// Exact encoded size in bits without materializing the payload.
  std::size_t encoded_bits(const std::vector<std::int64_t>& codes) const;

  /// Decodes a payload back to `count` codes.  The payload is untrusted:
  /// truncation, desynchronized codes, and oversized runs throw
  /// coding::DecodeError; allocation never exceeds `count` entries.
  std::vector<std::int64_t> decode(const std::vector<std::uint8_t>& payload,
                                   std::size_t count) const;

 private:
  void check_codes(const std::vector<std::int64_t>& codes) const;

  HuffmanCodebook codebook_;
  int code_bits_;
};

}  // namespace csecg::coding

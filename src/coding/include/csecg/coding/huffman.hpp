// Canonical Huffman coding with an offline-trained codebook.
//
// The paper stores an offline-generated codebook on the sensor node
// (Fig. 5 quantifies its size) and Huffman-codes the delta stream of the
// low-resolution channel with it.  Canonical codes are used so the stored
// codebook is just (symbol, length) pairs — lengths determine the codes —
// which is what makes the 68-byte footprint of the 7-bit codebook
// possible.
#pragma once

#include <cstdint>
#include <vector>

#include "csecg/coding/bitstream.hpp"

namespace csecg::coding {

/// A canonical Huffman codebook over int64 symbols.
class HuffmanCodebook {
 public:
  /// One canonical entry.
  struct Entry {
    std::int64_t symbol = 0;
    int length = 0;          ///< Code length in bits.
    std::uint64_t code = 0;  ///< Canonical code (MSB-first).
  };

  /// Builds an optimal prefix code from a histogram of (symbol, count)
  /// pairs (counts must be positive; at least one symbol).  A
  /// single-symbol alphabet gets a 1-bit code.
  static HuffmanCodebook build(
      const std::vector<std::pair<std::int64_t, std::uint64_t>>& histogram);

  /// Entries in canonical order (sorted by length, then symbol).
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// True if the symbol is in the codebook.
  bool contains(std::int64_t symbol) const noexcept;

  /// Writes the symbol's code.  Throws std::invalid_argument for symbols
  /// outside the codebook (callers escape-code those).
  void encode(std::int64_t symbol, BitWriter& writer) const;

  /// Code length of a symbol in bits; throws if absent.
  int code_length(std::int64_t symbol) const;

  /// Decodes one symbol from the reader.  Throws coding::DecodeError when
  /// the stream ends mid-code or the bits match no codebook entry.
  std::int64_t decode(BitReader& reader) const;

  /// Expected code length (bits/symbol) under a usage histogram.  Symbols
  /// absent from the codebook contribute `escape_bits` each.
  double expected_bits_per_symbol(
      const std::vector<std::pair<std::int64_t, std::uint64_t>>& histogram,
      double escape_bits) const;

  /// On-node storage footprint in bytes of the canonical serialization
  /// (the Fig. 5 metric): 2-byte header + one byte per populated code
  /// length + each symbol at the narrowest width holding the alphabet.
  std::size_t storage_bytes() const noexcept;

  /// Serializes to the canonical byte layout (matching storage_bytes()).
  std::vector<std::uint8_t> serialize() const;

  /// Reconstructs a codebook from serialize() output.  The bytes are
  /// untrusted (codebooks ship over the provisioning link): truncation,
  /// size mismatches, Kraft-inconsistent length tables, duplicate or
  /// out-of-canonical-order symbols, and empty tables all throw
  /// coding::DecodeError.  Allocation is bounded by the input size.
  static HuffmanCodebook deserialize(const std::vector<std::uint8_t>& bytes);

 private:
  void rebuild_decode_tables();

  std::vector<Entry> entries_;  // Canonical order.
  // Per-length decode acceleration (index = length).
  std::vector<std::uint64_t> first_code_;
  std::vector<std::size_t> first_index_;
  std::vector<std::size_t> count_;
  int max_length_ = 0;
};

}  // namespace csecg::coding

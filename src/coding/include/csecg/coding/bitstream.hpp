// Bit-level I/O for the transmission payloads.
//
// MSB-first within each byte, which keeps streams byte-compatible with the
// usual paper-and-pencil Huffman examples and makes the serialized frames
// deterministic across platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace csecg::coding {

/// Accumulates bits MSB-first into a byte vector.
class BitWriter {
 public:
  /// Appends the lowest `count` bits of `bits`, most significant first.
  /// count must be in [0, 64].
  void write(std::uint64_t bits, int count);

  /// Appends a single bit.
  void write_bit(bool bit);

  /// Number of bits written so far.
  std::size_t bit_count() const noexcept { return bit_count_; }

  /// Finishes the stream (zero-pads the last byte) and returns the bytes.
  /// The writer remains usable for inspection but not for further writes.
  std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
  bool finished_ = false;
};

/// Reads bits MSB-first from a byte span.
class BitReader {
 public:
  /// The reader keeps a reference-free copy of the bytes.
  explicit BitReader(std::vector<std::uint8_t> bytes);

  /// Reads `count` bits (0..64) into the low bits of the result.
  /// Throws coding::DecodeError past the end of the stream (the reader
  /// sits on the untrusted-input boundary; see decode_error.hpp).
  std::uint64_t read(int count);

  /// Reads a single bit.
  bool read_bit();

  /// Bits remaining (including any zero padding of the final byte).
  std::size_t bits_remaining() const noexcept;

  /// Bits consumed so far.
  std::size_t bit_position() const noexcept { return position_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t position_ = 0;
};

}  // namespace csecg::coding

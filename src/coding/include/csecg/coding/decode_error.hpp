// The typed failure of every untrusted-input decoder.
//
// Frames, packets, codebooks, and entropy-coded payloads arrive over the
// lossy telemetry link, so the bytes any decoder sees are adversarial: a
// bit-flip the CRC missed, a truncation, or a crafted stream.  Every
// decoder in the tree obeys one contract on arbitrary bytes:
//
//   * return a decoded value, or
//   * throw DecodeError —
//
// never undefined behaviour, never an abort, and never an allocation
// larger than a small constant multiple of the input size (declared
// lengths are validated *before* any resize/reserve).  The fuzz harness
// (csecg::fuzz) enforces this contract mechanically; std::invalid_argument
// from CSECG_CHECK remains reserved for API misuse (bad dimensions,
// out-of-range parameters chosen by the caller, not by the wire).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace csecg::coding {

/// Malformed untrusted input: the bytes cannot decode under the format.
/// Deliberately a std::runtime_error (not logic_error): the program is
/// correct, the input is hostile.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_decode_failure(const char* condition,
                                              const std::string& message) {
  std::ostringstream oss;
  oss << "csecg decode error: " << condition;
  if (!message.empty()) oss << " — " << message;
  throw DecodeError(oss.str());
}

}  // namespace detail
}  // namespace csecg::coding

/// Validates a property of untrusted input; throws coding::DecodeError
/// when violated.  `msg` may use stream syntax like CSECG_CHECK.
#define CSECG_DECODE_CHECK(cond, msg)                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream csecg_decode_oss;                              \
      csecg_decode_oss << msg;                                          \
      ::csecg::coding::detail::throw_decode_failure(                    \
          #cond, csecg_decode_oss.str());                               \
    }                                                                   \
  } while (false)

#include "csecg/coding/delta_huffman_codec.hpp"

#include <map>

#include "csecg/coding/delta.hpp"
#include "csecg/common/check.hpp"

namespace csecg::coding {

DeltaHuffmanCodec::DeltaHuffmanCodec(HuffmanCodebook codebook, int code_bits)
    : codebook_(std::move(codebook)), code_bits_(code_bits) {
  CSECG_CHECK(code_bits_ >= 1 && code_bits_ <= 16,
              "DeltaHuffmanCodec: code_bits out of range: " << code_bits_);
  CSECG_CHECK(codebook_.contains(escape_symbol()),
              "DeltaHuffmanCodec: codebook lacks the escape symbol");
}

std::int64_t DeltaHuffmanCodec::escape_symbol() const noexcept {
  return std::int64_t{1} << code_bits_;
}

DeltaHuffmanCodec DeltaHuffmanCodec::train(
    const std::vector<std::vector<std::int64_t>>& training_windows,
    int code_bits) {
  CSECG_CHECK(code_bits >= 1 && code_bits <= 16,
              "DeltaHuffmanCodec::train: code_bits out of range: "
                  << code_bits);
  CSECG_CHECK(!training_windows.empty(),
              "DeltaHuffmanCodec::train: empty corpus");
  const std::int64_t max_code = (std::int64_t{1} << code_bits) - 1;
  std::map<std::int64_t, std::uint64_t> counts;
  for (const auto& window : training_windows) {
    CSECG_CHECK(!window.empty(),
                "DeltaHuffmanCodec::train: empty training window");
    for (std::int64_t code : window) {
      CSECG_CHECK(code >= 0 && code <= max_code,
                  "DeltaHuffmanCodec::train: code " << code
                                                    << " exceeds " << code_bits
                                                    << " bits");
    }
    const DeltaEncoded enc = delta_encode(window);
    for (std::int64_t diff : enc.diffs) ++counts[diff];
  }
  // Reserve the escape with a single count so rare unseen deltas stay
  // representable without distorting the learned distribution.
  const std::int64_t escape = std::int64_t{1} << code_bits;
  counts[escape] += 1;
  std::vector<std::pair<std::int64_t, std::uint64_t>> hist(counts.begin(),
                                                           counts.end());
  return DeltaHuffmanCodec(HuffmanCodebook::build(hist), code_bits);
}

void DeltaHuffmanCodec::check_codes(
    const std::vector<std::int64_t>& codes) const {
  CSECG_CHECK(!codes.empty(), "DeltaHuffmanCodec: empty window");
  const std::int64_t max_code = (std::int64_t{1} << code_bits_) - 1;
  for (std::int64_t code : codes) {
    CSECG_CHECK(code >= 0 && code <= max_code,
                "DeltaHuffmanCodec: code " << code << " exceeds "
                                           << code_bits_ << " bits");
  }
}

std::vector<std::uint8_t> DeltaHuffmanCodec::encode(
    const std::vector<std::int64_t>& codes, std::size_t& bits_out) const {
  check_codes(codes);
  BitWriter writer;
  const DeltaEncoded enc = delta_encode(codes);
  writer.write(static_cast<std::uint64_t>(enc.first), code_bits_);
  const int raw_bits = code_bits_ + 1;
  const std::uint64_t raw_mask = (std::uint64_t{1} << raw_bits) - 1;
  for (std::int64_t diff : enc.diffs) {
    if (codebook_.contains(diff)) {
      codebook_.encode(diff, writer);
    } else {
      codebook_.encode(escape_symbol(), writer);
      writer.write(static_cast<std::uint64_t>(diff) & raw_mask, raw_bits);
    }
  }
  bits_out = writer.bit_count();
  return writer.finish();
}

std::size_t DeltaHuffmanCodec::encoded_bits(
    const std::vector<std::int64_t>& codes) const {
  check_codes(codes);
  const DeltaEncoded enc = delta_encode(codes);
  std::size_t bits = static_cast<std::size_t>(code_bits_);
  const int escape_cost =
      codebook_.code_length(escape_symbol()) + code_bits_ + 1;
  for (std::int64_t diff : enc.diffs) {
    bits += codebook_.contains(diff)
                ? static_cast<std::size_t>(codebook_.code_length(diff))
                : static_cast<std::size_t>(escape_cost);
  }
  return bits;
}

std::vector<std::int64_t> DeltaHuffmanCodec::decode(
    const std::vector<std::uint8_t>& payload, std::size_t count) const {
  CSECG_CHECK(count > 0, "DeltaHuffmanCodec::decode: count must be > 0");
  BitReader reader(payload);
  DeltaEncoded enc;
  enc.first = static_cast<std::int64_t>(reader.read(code_bits_));
  enc.diffs.reserve(count - 1);
  const int raw_bits = code_bits_ + 1;
  for (std::size_t i = 1; i < count; ++i) {
    std::int64_t symbol = codebook_.decode(reader);
    if (symbol == escape_symbol()) {
      std::uint64_t raw = reader.read(raw_bits);
      // Sign-extend from raw_bits.
      const std::uint64_t sign_bit = std::uint64_t{1} << (raw_bits - 1);
      if (raw & sign_bit) raw |= ~((std::uint64_t{1} << raw_bits) - 1);
      symbol = static_cast<std::int64_t>(raw);
    }
    enc.diffs.push_back(symbol);
  }
  return delta_decode(enc);
}

}  // namespace csecg::coding

#include "csecg/coding/huffman.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "csecg/coding/decode_error.hpp"
#include "csecg/common/check.hpp"

namespace csecg::coding {
namespace {

/// Computes optimal code lengths via the standard two-queue Huffman
/// construction (counts pre-sorted), which is O(n log n) overall and
/// deterministic under ties.
std::vector<int> code_lengths(const std::vector<std::uint64_t>& counts) {
  const std::size_t n = counts.size();
  if (n == 1) return {1};
  // Nodes 0..n-1 are leaves; internal nodes are appended as pairs merge.
  struct Children {
    int left = -1;
    int right = -1;
  };
  std::vector<Children> children(n);
  using HeapItem = std::pair<std::uint64_t, int>;  // (weight, node index).
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t i = 0; i < n; ++i) {
    heap.emplace(counts[i], static_cast<int>(i));
  }
  while (heap.size() > 1) {
    const auto [w1, i1] = heap.top();
    heap.pop();
    const auto [w2, i2] = heap.top();
    heap.pop();
    children.push_back({i1, i2});
    heap.emplace(w1 + w2, static_cast<int>(children.size()) - 1);
  }
  // Depth-first traversal assigning depths to leaves.
  std::vector<int> lengths(n, 0);
  std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    if (node < static_cast<int>(n)) {
      lengths[static_cast<std::size_t>(node)] = std::max(depth, 1);
      continue;
    }
    const Children& c = children[static_cast<std::size_t>(node)];
    stack.emplace_back(c.left, depth + 1);
    stack.emplace_back(c.right, depth + 1);
  }
  return lengths;
}

}  // namespace

HuffmanCodebook HuffmanCodebook::build(
    const std::vector<std::pair<std::int64_t, std::uint64_t>>& histogram) {
  CSECG_CHECK(!histogram.empty(), "HuffmanCodebook::build: empty histogram");
  for (const auto& [symbol, count] : histogram) {
    CSECG_CHECK(count > 0, "HuffmanCodebook::build: zero count for symbol "
                               << symbol);
  }
  // Unique symbols required.
  std::vector<std::pair<std::int64_t, std::uint64_t>> hist = histogram;
  std::sort(hist.begin(), hist.end());
  for (std::size_t i = 1; i < hist.size(); ++i) {
    CSECG_CHECK(hist[i].first != hist[i - 1].first,
                "HuffmanCodebook::build: duplicate symbol "
                    << hist[i].first);
  }

  std::vector<std::uint64_t> counts(hist.size());
  for (std::size_t i = 0; i < hist.size(); ++i) counts[i] = hist[i].second;
  const std::vector<int> lengths = code_lengths(counts);

  HuffmanCodebook book;
  book.entries_.resize(hist.size());
  for (std::size_t i = 0; i < hist.size(); ++i) {
    book.entries_[i].symbol = hist[i].first;
    book.entries_[i].length = lengths[i];
  }
  // Canonical order: by (length, symbol).
  std::sort(book.entries_.begin(), book.entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.length != b.length ? a.length < b.length
                                          : a.symbol < b.symbol;
            });
  // Canonical code assignment.
  std::uint64_t code = 0;
  int prev_length = book.entries_.front().length;
  for (auto& entry : book.entries_) {
    code <<= (entry.length - prev_length);
    entry.code = code;
    ++code;
    prev_length = entry.length;
  }
  book.rebuild_decode_tables();
  return book;
}

void HuffmanCodebook::rebuild_decode_tables() {
  max_length_ = 0;
  for (const Entry& e : entries_) max_length_ = std::max(max_length_, e.length);
  first_code_.assign(static_cast<std::size_t>(max_length_) + 1, 0);
  first_index_.assign(static_cast<std::size_t>(max_length_) + 1, 0);
  count_.assign(static_cast<std::size_t>(max_length_) + 1, 0);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto len = static_cast<std::size_t>(entries_[i].length);
    if (count_[len] == 0) {
      first_code_[len] = entries_[i].code;
      first_index_[len] = i;
    }
    ++count_[len];
  }
}

bool HuffmanCodebook::contains(std::int64_t symbol) const noexcept {
  for (const Entry& e : entries_) {
    if (e.symbol == symbol) return true;
  }
  return false;
}

void HuffmanCodebook::encode(std::int64_t symbol, BitWriter& writer) const {
  for (const Entry& e : entries_) {
    if (e.symbol == symbol) {
      writer.write(e.code, e.length);
      return;
    }
  }
  throw std::invalid_argument("HuffmanCodebook::encode: symbol " +
                              std::to_string(symbol) + " not in codebook");
}

int HuffmanCodebook::code_length(std::int64_t symbol) const {
  for (const Entry& e : entries_) {
    if (e.symbol == symbol) return e.length;
  }
  throw std::invalid_argument("HuffmanCodebook::code_length: symbol " +
                              std::to_string(symbol) + " not in codebook");
}

std::int64_t HuffmanCodebook::decode(BitReader& reader) const {
  std::uint64_t code = 0;
  for (int len = 1; len <= max_length_; ++len) {
    code = (code << 1) | static_cast<std::uint64_t>(reader.read_bit());
    const auto l = static_cast<std::size_t>(len);
    if (count_[l] > 0 && code >= first_code_[l] &&
        code < first_code_[l] + count_[l]) {
      return entries_[first_index_[l] + (code - first_code_[l])].symbol;
    }
  }
  throw DecodeError("HuffmanCodebook::decode: invalid code");
}

double HuffmanCodebook::expected_bits_per_symbol(
    const std::vector<std::pair<std::int64_t, std::uint64_t>>& histogram,
    double escape_bits) const {
  std::uint64_t total = 0;
  double bits = 0.0;
  for (const auto& [symbol, count] : histogram) {
    total += count;
    bool found = false;
    for (const Entry& e : entries_) {
      if (e.symbol == symbol) {
        bits += static_cast<double>(count) * e.length;
        found = true;
        break;
      }
    }
    if (!found) bits += static_cast<double>(count) * escape_bits;
  }
  CSECG_CHECK(total > 0, "expected_bits_per_symbol: empty histogram");
  return bits / static_cast<double>(total);
}

std::size_t HuffmanCodebook::storage_bytes() const noexcept {
  // Header: symbol width (1 byte) + max length (1 byte).
  // Body: count-per-length table (max_length bytes) + symbols.
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (const Entry& e : entries_) {
    lo = std::min(lo, e.symbol);
    hi = std::max(hi, e.symbol);
  }
  const std::size_t symbol_bytes =
      (lo >= -128 && hi <= 127) ? 1 : (lo >= -32768 && hi <= 32767) ? 2 : 4;
  return 2 + static_cast<std::size_t>(max_length_) +
         entries_.size() * symbol_bytes;
}

std::vector<std::uint8_t> HuffmanCodebook::serialize() const {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (const Entry& e : entries_) {
    lo = std::min(lo, e.symbol);
    hi = std::max(hi, e.symbol);
  }
  const std::uint8_t symbol_bytes =
      (lo >= -128 && hi <= 127) ? 1 : (lo >= -32768 && hi <= 32767) ? 2 : 4;
  // The wire format stores max_length and each per-length count in one
  // byte; lengths beyond 63 cannot round-trip (codes live in uint64) and
  // counts beyond 255 would silently truncate.  Fail loudly instead.
  CSECG_CHECK(max_length_ >= 1 && max_length_ <= 63,
              "HuffmanCodebook::serialize: max code length "
                  << max_length_ << " exceeds the format's 63-bit cap");
  for (int len = 1; len <= max_length_; ++len) {
    CSECG_CHECK(count_[static_cast<std::size_t>(len)] <= 0xFF,
                "HuffmanCodebook::serialize: "
                    << count_[static_cast<std::size_t>(len)]
                    << " codes of length " << len
                    << " exceed the format's one-byte count");
  }
  std::vector<std::uint8_t> out;
  out.push_back(symbol_bytes);
  out.push_back(static_cast<std::uint8_t>(max_length_));
  for (int len = 1; len <= max_length_; ++len) {
    out.push_back(
        static_cast<std::uint8_t>(count_[static_cast<std::size_t>(len)]));
  }
  for (const Entry& e : entries_) {
    const auto u = static_cast<std::uint64_t>(e.symbol);
    for (int b = 0; b < symbol_bytes; ++b) {
      out.push_back(static_cast<std::uint8_t>(u >> (8 * b)));
    }
  }
  return out;
}

HuffmanCodebook HuffmanCodebook::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  CSECG_DECODE_CHECK(bytes.size() >= 2,
                     "HuffmanCodebook::deserialize: truncated");
  const std::uint8_t symbol_bytes = bytes[0];
  CSECG_DECODE_CHECK(
      symbol_bytes == 1 || symbol_bytes == 2 || symbol_bytes == 4,
      "HuffmanCodebook::deserialize: bad symbol width " << int{symbol_bytes});
  const int max_length = bytes[1];
  // serialize() caps lengths at 63 (codes live in uint64); anything wider
  // can only come from a corrupt or crafted stream.
  CSECG_DECODE_CHECK(max_length >= 1 && max_length <= 63,
                     "HuffmanCodebook::deserialize: bad max length "
                         << max_length);
  CSECG_DECODE_CHECK(bytes.size() >= 2 + static_cast<std::size_t>(max_length),
                     "HuffmanCodebook::deserialize: truncated length table");
  // Kraft consistency: a canonical code with these per-length counts must
  // be exactly complete (build() always emits complete codes).  Walk the
  // code space top-down — `room` is how many codes of the current length
  // remain unassigned; it at most doubles per level, so with max_length
  // ≤ 63 it fits a uint64.  Over-subscription here is the bug that used
  // to yield overlapping/overflowing codes and silent wrong symbols.
  std::size_t total_symbols = 0;
  std::uint64_t room = 1;
  for (int len = 1; len <= max_length; ++len) {
    const std::uint64_t count = bytes[1 + static_cast<std::size_t>(len)];
    room <<= 1;
    CSECG_DECODE_CHECK(count <= room,
                       "HuffmanCodebook::deserialize: length table "
                       "over-subscribes the code space at length "
                           << len << " (Kraft sum > 1)");
    room -= count;
    total_symbols += count;
  }
  // build() emits complete codes except for the single-symbol alphabet,
  // which gets a lone 1-bit code (Kraft sum ½) — the one legal
  // incomplete shape.
  CSECG_DECODE_CHECK(room == 0 || (total_symbols == 1 && max_length == 1),
                     "HuffmanCodebook::deserialize: length table leaves "
                     "the code incomplete (Kraft sum < 1)");
  CSECG_DECODE_CHECK(total_symbols > 0,
                     "HuffmanCodebook::deserialize: empty codebook");
  const std::size_t body_start = 2 + static_cast<std::size_t>(max_length);
  // Exact-size check before the reserve below: allocation is bounded by
  // the input size, never by an attacker-declared length alone.
  CSECG_DECODE_CHECK(bytes.size() == body_start + total_symbols * symbol_bytes,
                     "HuffmanCodebook::deserialize: size mismatch");

  HuffmanCodebook book;
  book.entries_.reserve(total_symbols);
  std::size_t offset = body_start;
  for (int len = 1; len <= max_length; ++len) {
    const std::size_t count = bytes[1 + static_cast<std::size_t>(len)];
    for (std::size_t k = 0; k < count; ++k) {
      std::uint64_t u = 0;
      for (int b = 0; b < symbol_bytes; ++b) {
        u |= static_cast<std::uint64_t>(bytes[offset++]) << (8 * b);
      }
      // Sign-extend.
      std::int64_t symbol = 0;
      if (symbol_bytes == 1) {
        symbol = static_cast<std::int8_t>(u);
      } else if (symbol_bytes == 2) {
        symbol = static_cast<std::int16_t>(u);
      } else {
        symbol = static_cast<std::int32_t>(u);
      }
      // Canonical order within a length is strictly increasing symbols
      // (what serialize() writes); this also rejects duplicates within
      // the length run.
      CSECG_DECODE_CHECK(k == 0 || book.entries_.back().symbol < symbol,
                         "HuffmanCodebook::deserialize: symbols of length "
                             << len << " out of canonical order");
      Entry entry;
      entry.symbol = symbol;
      entry.length = len;
      book.entries_.push_back(entry);
    }
  }
  // Symbol uniqueness across lengths, mirroring build()'s duplicate check
  // — a duplicate would make encode/decode disagree silently.
  std::vector<std::int64_t> symbols(book.entries_.size());
  for (std::size_t i = 0; i < book.entries_.size(); ++i) {
    symbols[i] = book.entries_[i].symbol;
  }
  std::sort(symbols.begin(), symbols.end());
  for (std::size_t i = 1; i < symbols.size(); ++i) {
    CSECG_DECODE_CHECK(symbols[i] != symbols[i - 1],
                       "HuffmanCodebook::deserialize: duplicate symbol "
                           << symbols[i]);
  }
  // Reassign canonical codes.
  std::uint64_t code = 0;
  int prev_length = book.entries_.front().length;
  for (auto& entry : book.entries_) {
    code <<= (entry.length - prev_length);
    entry.code = code;
    ++code;
    prev_length = entry.length;
  }
  book.rebuild_decode_tables();
  return book;
}

}  // namespace csecg::coding

#include "csecg/coding/delta.hpp"

#include <cmath>
#include <map>

#include "csecg/common/check.hpp"

namespace csecg::coding {

DeltaEncoded delta_encode(const std::vector<std::int64_t>& codes) {
  CSECG_CHECK(!codes.empty(), "delta_encode: empty input");
  DeltaEncoded out;
  out.first = codes.front();
  out.diffs.reserve(codes.size() - 1);
  for (std::size_t i = 1; i < codes.size(); ++i) {
    out.diffs.push_back(codes[i] - codes[i - 1]);
  }
  return out;
}

std::vector<std::int64_t> delta_decode(const DeltaEncoded& encoded) {
  std::vector<std::int64_t> out;
  out.reserve(encoded.diffs.size() + 1);
  out.push_back(encoded.first);
  for (std::int64_t diff : encoded.diffs) {
    out.push_back(out.back() + diff);
  }
  return out;
}

std::vector<std::pair<std::int64_t, std::uint64_t>> histogram(
    const std::vector<std::int64_t>& values) {
  std::map<std::int64_t, std::uint64_t> counts;
  for (std::int64_t v : values) ++counts[v];
  return {counts.begin(), counts.end()};
}

double entropy_bits(
    const std::vector<std::pair<std::int64_t, std::uint64_t>>& hist) {
  std::uint64_t total = 0;
  for (const auto& [value, count] : hist) total += count;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : hist) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace csecg::coding

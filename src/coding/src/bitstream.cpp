#include "csecg/coding/bitstream.hpp"

#include <stdexcept>

#include "csecg/coding/decode_error.hpp"
#include "csecg/common/check.hpp"

namespace csecg::coding {

void BitWriter::write(std::uint64_t bits, int count) {
  CSECG_CHECK(count >= 0 && count <= 64,
              "BitWriter::write: count out of range: " << count);
  CSECG_CHECK(!finished_, "BitWriter::write after finish()");
  for (int i = count - 1; i >= 0; --i) {
    write_bit((bits >> i) & 1u);
  }
}

void BitWriter::write_bit(bool bit) {
  CSECG_CHECK(!finished_, "BitWriter::write_bit after finish()");
  const std::size_t byte_index = bit_count_ / 8;
  if (byte_index == bytes_.size()) bytes_.push_back(0);
  if (bit) {
    bytes_[byte_index] |=
        static_cast<std::uint8_t>(0x80u >> (bit_count_ % 8));
  }
  ++bit_count_;
}

std::vector<std::uint8_t> BitWriter::finish() {
  finished_ = true;
  return bytes_;
}

BitReader::BitReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {}

std::uint64_t BitReader::read(int count) {
  CSECG_CHECK(count >= 0 && count <= 64,
              "BitReader::read: count out of range: " << count);
  std::uint64_t out = 0;
  for (int i = 0; i < count; ++i) {
    out = (out << 1) | static_cast<std::uint64_t>(read_bit());
  }
  return out;
}

bool BitReader::read_bit() {
  if (position_ >= bytes_.size() * 8) {
    throw DecodeError("BitReader: read past end of stream");
  }
  const bool bit =
      (bytes_[position_ / 8] >> (7 - position_ % 8)) & 1u;
  ++position_;
  return bit;
}

std::size_t BitReader::bits_remaining() const noexcept {
  return bytes_.size() * 8 - position_;
}

}  // namespace csecg::coding

#include "csecg/coding/zero_run_codec.hpp"

#include <map>

#include "csecg/coding/decode_error.hpp"
#include "csecg/coding/delta.hpp"
#include "csecg/common/check.hpp"

namespace csecg::coding {

void elias_gamma_encode(std::uint64_t value, BitWriter& writer) {
  CSECG_CHECK(value >= 1, "elias_gamma_encode: value must be >= 1");
  int bits = 0;
  for (std::uint64_t v = value; v > 1; v >>= 1) ++bits;
  for (int i = 0; i < bits; ++i) writer.write_bit(false);
  writer.write(value, bits + 1);
}

std::uint64_t elias_gamma_decode(BitReader& reader) {
  // The zero-prefix length equals the payload bit count, so a prefix of
  // 64+ zeros cannot come from elias_gamma_encode (values are 64-bit).
  // On a corrupt stream it used to drive the shift below past the width
  // of value — undefined behaviour, and the wrapped result could slip
  // past downstream run-length checks.  Cap the prefix at 63 bits.
  int bits = 0;
  while (!reader.read_bit()) {
    if (++bits > 63) {
      throw DecodeError(
          "elias_gamma_decode: zero prefix exceeds 63 bits — corrupt "
          "stream");
    }
  }
  std::uint64_t value = 1;
  for (int i = 0; i < bits; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(reader.read_bit());
  }
  return value;
}

int elias_gamma_bits(std::uint64_t value) noexcept {
  int bits = 0;
  for (std::uint64_t v = value; v > 1; v >>= 1) ++bits;
  return 2 * bits + 1;
}

ZeroRunDeltaCodec::ZeroRunDeltaCodec(HuffmanCodebook codebook, int code_bits)
    : codebook_(std::move(codebook)), code_bits_(code_bits) {
  CSECG_CHECK(code_bits_ >= 1 && code_bits_ <= 16,
              "ZeroRunDeltaCodec: code_bits out of range: " << code_bits_);
  CSECG_CHECK(codebook_.contains(escape_symbol()),
              "ZeroRunDeltaCodec: codebook lacks the escape symbol");
  CSECG_CHECK(codebook_.contains(run_symbol()),
              "ZeroRunDeltaCodec: codebook lacks the run symbol");
}

std::int64_t ZeroRunDeltaCodec::escape_symbol() const noexcept {
  return std::int64_t{1} << code_bits_;
}

std::int64_t ZeroRunDeltaCodec::run_symbol() const noexcept {
  return (std::int64_t{1} << code_bits_) + 1;
}

ZeroRunDeltaCodec ZeroRunDeltaCodec::train(
    const std::vector<std::vector<std::int64_t>>& training_windows,
    int code_bits) {
  CSECG_CHECK(code_bits >= 1 && code_bits <= 16,
              "ZeroRunDeltaCodec::train: code_bits out of range: "
                  << code_bits);
  CSECG_CHECK(!training_windows.empty(),
              "ZeroRunDeltaCodec::train: empty corpus");
  const std::int64_t max_code = (std::int64_t{1} << code_bits) - 1;
  const std::int64_t run = (std::int64_t{1} << code_bits) + 1;
  std::map<std::int64_t, std::uint64_t> counts;
  for (const auto& window : training_windows) {
    CSECG_CHECK(!window.empty(),
                "ZeroRunDeltaCodec::train: empty training window");
    for (std::int64_t code : window) {
      CSECG_CHECK(code >= 0 && code <= max_code,
                  "ZeroRunDeltaCodec::train: code " << code << " exceeds "
                                                    << code_bits << " bits");
    }
    const DeltaEncoded enc = delta_encode(window);
    std::size_t i = 0;
    while (i < enc.diffs.size()) {
      if (enc.diffs[i] == 0) {
        ++counts[run];
        while (i < enc.diffs.size() && enc.diffs[i] == 0) ++i;
      } else {
        ++counts[enc.diffs[i]];
        ++i;
      }
    }
  }
  counts[std::int64_t{1} << code_bits] += 1;  // Escape reservation.
  counts[run] += 1;                           // Ensure RUN always present.
  std::vector<std::pair<std::int64_t, std::uint64_t>> hist(counts.begin(),
                                                           counts.end());
  return ZeroRunDeltaCodec(HuffmanCodebook::build(hist), code_bits);
}

void ZeroRunDeltaCodec::check_codes(
    const std::vector<std::int64_t>& codes) const {
  CSECG_CHECK(!codes.empty(), "ZeroRunDeltaCodec: empty window");
  const std::int64_t max_code = (std::int64_t{1} << code_bits_) - 1;
  for (std::int64_t code : codes) {
    CSECG_CHECK(code >= 0 && code <= max_code,
                "ZeroRunDeltaCodec: code " << code << " exceeds "
                                           << code_bits_ << " bits");
  }
}

std::vector<std::uint8_t> ZeroRunDeltaCodec::encode(
    const std::vector<std::int64_t>& codes, std::size_t& bits_out) const {
  check_codes(codes);
  BitWriter writer;
  const DeltaEncoded enc = delta_encode(codes);
  writer.write(static_cast<std::uint64_t>(enc.first), code_bits_);
  const int raw_bits = code_bits_ + 1;
  const std::uint64_t raw_mask = (std::uint64_t{1} << raw_bits) - 1;
  std::size_t i = 0;
  while (i < enc.diffs.size()) {
    const std::int64_t diff = enc.diffs[i];
    if (diff == 0) {
      std::uint64_t run_length = 0;
      while (i < enc.diffs.size() && enc.diffs[i] == 0) {
        ++run_length;
        ++i;
      }
      codebook_.encode(run_symbol(), writer);
      elias_gamma_encode(run_length, writer);
    } else {
      if (codebook_.contains(diff)) {
        codebook_.encode(diff, writer);
      } else {
        codebook_.encode(escape_symbol(), writer);
        writer.write(static_cast<std::uint64_t>(diff) & raw_mask, raw_bits);
      }
      ++i;
    }
  }
  bits_out = writer.bit_count();
  return writer.finish();
}

std::size_t ZeroRunDeltaCodec::encoded_bits(
    const std::vector<std::int64_t>& codes) const {
  std::size_t bits = 0;
  const auto payload_unused = encode(codes, bits);
  (void)payload_unused;
  return bits;
}

std::vector<std::int64_t> ZeroRunDeltaCodec::decode(
    const std::vector<std::uint8_t>& payload, std::size_t count) const {
  CSECG_CHECK(count > 0, "ZeroRunDeltaCodec::decode: count must be > 0");
  BitReader reader(payload);
  DeltaEncoded enc;
  enc.first = static_cast<std::int64_t>(reader.read(code_bits_));
  enc.diffs.reserve(count - 1);
  const int raw_bits = code_bits_ + 1;
  while (enc.diffs.size() + 1 < count) {
    std::int64_t symbol = codebook_.decode(reader);
    if (symbol == run_symbol()) {
      const std::uint64_t run_length = elias_gamma_decode(reader);
      // Compare against the remaining room instead of summing — the sum
      // form wraps for run lengths near 2^64 and a wrapped value would
      // pass the bound, then push until allocation failure.  The loop
      // condition guarantees count ≥ diffs.size() + 2 here, so the
      // subtraction cannot underflow.
      const std::uint64_t room = count - 1 - enc.diffs.size();
      CSECG_DECODE_CHECK(run_length <= room,
                         "ZeroRunDeltaCodec::decode: run of "
                             << run_length << " overflows the window");
      for (std::uint64_t k = 0; k < run_length; ++k) enc.diffs.push_back(0);
      continue;
    }
    if (symbol == escape_symbol()) {
      std::uint64_t raw = reader.read(raw_bits);
      const std::uint64_t sign_bit = std::uint64_t{1} << (raw_bits - 1);
      if (raw & sign_bit) raw |= ~((std::uint64_t{1} << raw_bits) - 1);
      symbol = static_cast<std::int64_t>(raw);
    }
    enc.diffs.push_back(symbol);
  }
  return delta_decode(enc);
}

}  // namespace csecg::coding

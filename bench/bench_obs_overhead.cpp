// Observability overhead tracker (ISSUE 3).
//
// Runs the same run_database workload as bench_runner_throughput twice —
// with timing instrumentation armed (obs::set_enabled(true), the default)
// and disarmed — interleaving the arms over several repetitions so slow
// drift (turbo, thermal) hits both equally, and reports the throughput
// cost of instrumentation.  The acceptance bar for the tentpole is a
// < 2% slowdown for the enabled configuration; the bench exits non-zero
// above a 5% guard band so CI catches a regression without flaking on
// machine noise.  Results land in BENCH_obs.json.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/parallel/thread_pool.hpp"

namespace {

using namespace csecg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  bench::print_header("bench_obs_overhead",
                      "ISSUE 3 — observability throughput cost");

  const auto& database = bench::shared_database();
  core::FrontEndConfig config;
  const auto lowres_codec = core::train_lowres_codec(config, database, 3, 3);
  const core::Codec codec(config, lowres_codec);

  const std::size_t records = std::min<std::size_t>(bench::records_budget(), 8);
  const std::size_t windows = std::max<std::size_t>(bench::windows_budget(), 2);
  const std::size_t total_windows = records * windows;
  parallel::ThreadPool pool(1);  // Serial: per-window cost is not hidden
                                 // behind thread scheduling noise.

  // Warm caches (record generation, operator setup, first-touch shard
  // registration) before any timed arm.
  for (std::size_t r = 0; r < records; ++r) (void)database.record(r);
  obs::set_enabled(true);
  (void)core::run_database(codec, database, records, windows,
                           core::DecodeMode::kAuto, pool);

  // Container-tenancy load spikes at the ~second scale make a 2% effect
  // hard to see in 5 samples; best-of-9 keeps the floor estimate honest.
  constexpr int kReps = 9;
  double on_best = 1e300;
  double off_best = 1e300;
  std::printf("arm,rep,seconds,windows_per_sec\n");
  for (int rep = 0; rep < kReps; ++rep) {
    obs::set_enabled(false);
    auto start = Clock::now();
    (void)core::run_database(codec, database, records, windows,
                             core::DecodeMode::kAuto, pool);
    const double off_seconds = seconds_since(start);
    off_best = std::min(off_best, off_seconds);
    std::printf("off,%d,%.4f,%.2f\n", rep, off_seconds,
                static_cast<double>(total_windows) / off_seconds);

    obs::set_enabled(true);
    start = Clock::now();
    (void)core::run_database(codec, database, records, windows,
                             core::DecodeMode::kAuto, pool);
    const double on_seconds = seconds_since(start);
    on_best = std::min(on_best, on_seconds);
    std::printf("on,%d,%.4f,%.2f\n", rep, on_seconds,
                static_cast<double>(total_windows) / on_seconds);
  }
  obs::set_enabled(true);  // Leave the process in the default state.

  // Best-of-reps throughput: robust to one-off scheduler hiccups, which
  // otherwise dominate a ratio of two ~second-scale measurements.
  const double on_wps = static_cast<double>(total_windows) / on_best;
  const double off_wps = static_cast<double>(total_windows) / off_best;
  const double overhead_percent = (off_wps / on_wps - 1.0) * 100.0;
  std::printf("# instrumented-on:  %.2f windows/s\n", on_wps);
  std::printf("# instrumented-off: %.2f windows/s\n", off_wps);
  std::printf("# overhead: %.2f%% (target < 2%%, CI gate at 5%%)\n",
              overhead_percent);

  std::FILE* json = std::fopen("BENCH_obs.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(json,
               "  \"workload\": {\"records\": %zu, \"windows_per_record\": "
               "%zu, \"window\": %zu, \"measurements\": %zu, \"reps\": %d},\n",
               records, windows, config.window, config.measurements, kReps);
  std::fprintf(json,
               "  \"instrumented_on\": {\"best_seconds\": %.4f, "
               "\"windows_per_sec\": %.3f},\n",
               on_best, on_wps);
  std::fprintf(json,
               "  \"instrumented_off\": {\"best_seconds\": %.4f, "
               "\"windows_per_sec\": %.3f},\n",
               off_best, off_wps);
  std::fprintf(json, "  \"overhead_percent\": %.3f,\n", overhead_percent);
  std::fprintf(json, "  \"target_percent\": 2.0,\n");
  std::fprintf(json, "  \"gate_percent\": 5.0\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("# wrote BENCH_obs.json\n");

  return overhead_percent < 5.0 ? 0 : 2;
}

// Ablation — entropy coder (DESIGN.md §5.5).  Scalar delta-Huffman (what
// the paper's 68-byte codebook implies) vs the zero-run extension that
// breaks the 1 bit/sample Huffman floor, vs the delta-entropy ideal.
// Shows which Table I rows each coder can reach.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "csecg/coding/delta.hpp"
#include "csecg/coding/zero_run_codec.hpp"
#include "csecg/sensing/lowres_channel.hpp"

int main() {
  using namespace csecg;
  bench::print_header("ablate_rle",
                      "coder ablation — scalar Huffman vs zero-run vs "
                      "entropy ideal, overhead D_i (%)");

  const auto& database = bench::shared_database();
  const std::size_t train_records = bench::records_budget();
  const std::size_t windows =
      std::max<std::size_t>(bench::windows_budget(), 4);
  const std::size_t eval_start = train_records;
  const std::size_t eval_count = std::min<std::size_t>(8, 48 - eval_start);

  std::printf("bits,huffman_D,zero_run_D,entropy_D,paper_D\n");
  const double paper[] = {2.3, 3.1, 4.2, 5.6, 7.8, 11.4, 17.6, 26.3};
  int row = 0;
  for (int bits = 3; bits <= 10; ++bits, ++row) {
    sensing::LowResConfig lowres_config;
    lowres_config.bits = bits;
    const sensing::LowResChannel channel(lowres_config);

    // Shared training corpus.
    std::vector<std::vector<std::int64_t>> corpus;
    for (std::size_t r = 0; r < train_records; ++r) {
      for (const auto& window :
           ecg::extract_windows(database.record(r), 512, windows)) {
        corpus.push_back(channel.sample(window).codes);
      }
    }
    core::FrontEndConfig config;
    config.lowres_bits = bits;
    const auto scalar =
        core::train_lowres_codec(config, database, train_records, windows);
    const auto zero_run = coding::ZeroRunDeltaCodec::train(corpus, bits);

    double scalar_bits = 0.0;
    double rle_bits = 0.0;
    double samples = 0.0;
    std::map<std::int64_t, std::uint64_t> delta_counts;
    for (std::size_t r = eval_start; r < eval_start + eval_count; ++r) {
      for (const auto& window :
           ecg::extract_windows(database.record(r), 512, windows)) {
        const auto codes = channel.sample(window).codes;
        scalar_bits += static_cast<double>(scalar.encoded_bits(codes));
        rle_bits += static_cast<double>(zero_run.encoded_bits(codes));
        samples += static_cast<double>(codes.size());
        for (auto diff : coding::delta_encode(codes).diffs) {
          ++delta_counts[diff];
        }
      }
    }
    const std::vector<std::pair<std::int64_t, std::uint64_t>> hist(
        delta_counts.begin(), delta_counts.end());
    std::printf("%d,%.2f,%.2f,%.2f,%.1f\n", bits,
                scalar_bits / samples / 12.0 * 100.0,
                rle_bits / samples / 12.0 * 100.0,
                coding::entropy_bits(hist) / 12.0 * 100.0, paper[row]);
  }
  std::printf("# zero-run coding reaches the paper's sub-1-bit/sample "
              "low-depth rows that scalar Huffman cannot\n");
  return 0;
}

// Shared helpers for the experiment benches.
//
// Every figure/table bench honours two environment variables so the full
// 48-record MIT-BIH-scale sweep can be reproduced when CPU time allows:
//   CSECG_RECORDS  — records to evaluate (default 8, max 48)
//   CSECG_WINDOWS  — analysis windows per record (default 1)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "csecg/core/frontend.hpp"
#include "csecg/ecg/record.hpp"

namespace csecg::bench {

inline std::size_t env_or(const char* name, std::size_t fallback,
                          std::size_t max_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  if (parsed < 1) return fallback;
  return std::min(static_cast<std::size_t>(parsed), max_value);
}

inline std::size_t records_budget() { return env_or("CSECG_RECORDS", 8, 48); }
inline std::size_t windows_budget() { return env_or("CSECG_WINDOWS", 1, 64); }

/// The database every bench evaluates on: 60-second surrogate records,
/// fixed seed 2015 so all benches and EXPERIMENTS.md agree.
inline const ecg::SyntheticDatabase& shared_database() {
  static const ecg::SyntheticDatabase database = [] {
    ecg::RecordConfig config;
    config.duration_seconds = 60.0;
    return ecg::SyntheticDatabase(config, 2015);
  }();
  return database;
}

/// The paper's Fig. 7 CR grid (percent).
inline const std::vector<double>& fig7_cr_grid() {
  static const std::vector<double> grid = {50.0, 56.0, 62.0, 69.0, 75.0,
                                           81.0, 88.0, 94.0, 97.0};
  return grid;
}

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("# %s\n", experiment);
  std::printf("# reproduces: %s\n", paper_ref);
  std::printf("# workload: %zu records x %zu windows (CSECG_RECORDS / "
              "CSECG_WINDOWS to rescale)\n",
              records_budget(), windows_budget());
}

}  // namespace csecg::bench

// Microbenchmarks (google-benchmark) for the kernels that dominate
// end-to-end runtime: the DWT pair, RMPI measurement, the PDHG solve at
// the paper's operating point, delta-Huffman coding, and the dense gemv
// that underlies everything.
#include <benchmark/benchmark.h>

#include "csecg/core/frontend.hpp"
#include "csecg/dsp/dwt.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/sensing/rmpi.hpp"

namespace {

using namespace csecg;

const ecg::EcgRecord& bench_record() {
  static const ecg::EcgRecord record = [] {
    ecg::RecordConfig config;
    config.duration_seconds = 10.0;
    return ecg::generate_record(ecg::mitbih_surrogate_profiles()[0], config,
                                42);
  }();
  return record;
}

void BM_DwtForward(benchmark::State& state) {
  const dsp::Dwt dwt(dsp::WaveletFamily::kDb4, 512, 5);
  const linalg::Vector x = bench_record().window(720, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwt.forward(x));
  }
}
BENCHMARK(BM_DwtForward);

void BM_DwtInverse(benchmark::State& state) {
  const dsp::Dwt dwt(dsp::WaveletFamily::kDb4, 512, 5);
  const linalg::Vector coeffs = dwt.forward(bench_record().window(720, 512));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwt.inverse(coeffs));
  }
}
BENCHMARK(BM_DwtInverse);

void BM_RmpiMeasure(benchmark::State& state) {
  sensing::RmpiConfig config;
  config.channels = static_cast<std::size_t>(state.range(0));
  config.window = 512;
  const sensing::RmpiSimulator rmpi(config);
  const linalg::Vector x = bench_record().window(720, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmpi.measure(x));
  }
}
BENCHMARK(BM_RmpiMeasure)->Arg(96)->Arg(240);

void BM_HuffmanRoundtrip(benchmark::State& state) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  core::FrontEndConfig config;
  const auto codec = core::train_lowres_codec(config, database, 4, 4);
  sensing::LowResConfig lowres_config;
  const sensing::LowResChannel channel(lowres_config);
  const auto codes = channel.sample(bench_record().window(720, 512)).codes;
  for (auto _ : state) {
    std::size_t bits = 0;
    const auto payload = codec.encode(codes, bits);
    benchmark::DoNotOptimize(codec.decode(payload, codes.size()));
  }
}
BENCHMARK(BM_HuffmanRoundtrip);

void BM_HybridDecode(benchmark::State& state) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  core::FrontEndConfig config;
  config.measurements = static_cast<std::size_t>(state.range(0));
  config.solver.max_iterations = 500;  // Fixed work per solve.
  config.solver.tol = 1e-12;           // Never stop early.
  const auto lowres_codec = core::train_lowres_codec(config, database, 4, 2);
  const core::Codec codec(config, lowres_codec);
  const core::Frame frame =
      codec.encoder().encode(bench_record().window(720, 512));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.decoder().decode(frame, core::DecodeMode::kHybrid));
  }
}
BENCHMARK(BM_HybridDecode)->Arg(96)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks (google-benchmark) for the kernels that dominate
// end-to-end runtime: the DWT pair, RMPI measurement, the PDHG solve at
// the paper's operating point, delta-Huffman coding, and the dense gemv
// that underlies everything.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "csecg/core/frontend.hpp"
#include "csecg/dsp/dwt.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/linalg/matrix.hpp"
#include "csecg/parallel/thread_pool.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"
#include "csecg/sensing/rmpi.hpp"

namespace {

using namespace csecg;

const ecg::EcgRecord& bench_record() {
  static const ecg::EcgRecord record = [] {
    ecg::RecordConfig config;
    config.duration_seconds = 10.0;
    return ecg::generate_record(ecg::mitbih_surrogate_profiles()[0], config,
                                42);
  }();
  return record;
}

void BM_DwtForward(benchmark::State& state) {
  const dsp::Dwt dwt(dsp::WaveletFamily::kDb4, 512, 5);
  const linalg::Vector x = bench_record().window(720, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwt.forward(x));
  }
}
BENCHMARK(BM_DwtForward);

void BM_DwtInverse(benchmark::State& state) {
  const dsp::Dwt dwt(dsp::WaveletFamily::kDb4, 512, 5);
  const linalg::Vector coeffs = dwt.forward(bench_record().window(720, 512));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwt.inverse(coeffs));
  }
}
BENCHMARK(BM_DwtInverse);

void BM_RmpiMeasure(benchmark::State& state) {
  sensing::RmpiConfig config;
  config.channels = static_cast<std::size_t>(state.range(0));
  config.window = 512;
  const sensing::RmpiSimulator rmpi(config);
  const linalg::Vector x = bench_record().window(720, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmpi.measure(x));
  }
}
BENCHMARK(BM_RmpiMeasure)->Arg(96)->Arg(240);

void BM_HuffmanRoundtrip(benchmark::State& state) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  core::FrontEndConfig config;
  const auto codec = core::train_lowres_codec(config, database, 4, 4);
  sensing::LowResConfig lowres_config;
  const sensing::LowResChannel channel(lowres_config);
  const auto codes = channel.sample(bench_record().window(720, 512)).codes;
  for (auto _ : state) {
    std::size_t bits = 0;
    const auto payload = codec.encode(codes, bits);
    benchmark::DoNotOptimize(codec.decode(payload, codes.size()));
  }
}
BENCHMARK(BM_HuffmanRoundtrip);

void BM_HybridDecode(benchmark::State& state) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  core::FrontEndConfig config;
  config.measurements = static_cast<std::size_t>(state.range(0));
  config.solver.max_iterations = 500;  // Fixed work per solve.
  config.solver.tol = 1e-12;           // Never stop early.
  const auto lowres_codec = core::train_lowres_codec(config, database, 4, 2);
  const core::Codec codec(config, lowres_codec);
  const core::Frame frame =
      codec.encoder().encode(bench_record().window(720, 512));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.decoder().decode(frame, core::DecodeMode::kHybrid));
  }
}
BENCHMARK(BM_HybridDecode)->Arg(96)->Unit(benchmark::kMillisecond);

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols) {
  rng::Xoshiro256 g(7);
  linalg::Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) a(i, j) = rng::normal(g);
  }
  return a;
}

// Size sweep over the blocked gemv: the operating points the codec hits
// (96×512, 240×512) plus square shapes around them.  items_processed
// reports flop-equivalents (2mn per product).
void BM_GemvSweep(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const linalg::Matrix a = random_matrix(m, n);
  linalg::Vector x(n, 1.0);
  linalg::Vector y(m);
  for (auto _ : state) {
    linalg::multiply_into(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * n));
}
BENCHMARK(BM_GemvSweep)
    ->Args({64, 64})
    ->Args({96, 512})
    ->Args({240, 512})
    ->Args({256, 256})
    ->Args({512, 512})
    ->Args({1024, 1024});

void BM_GemvTransposeSweep(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const linalg::Matrix a = random_matrix(m, n);
  linalg::Vector y(m, 1.0);
  linalg::Vector x(n);
  for (auto _ : state) {
    linalg::multiply_transpose_into(a, y, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * n));
}
BENCHMARK(BM_GemvTransposeSweep)
    ->Args({64, 64})
    ->Args({96, 512})
    ->Args({240, 512})
    ->Args({512, 512});

// ThreadPool scaling on an embarrassingly parallel compute-bound loop.
// On a single-core host the >1-thread variants measure the pool's
// scheduling overhead rather than speedup.
void BM_ThreadPoolScaling(benchmark::State& state) {
  parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kSpin = 20000;
  std::vector<double> out(kTasks);
  for (auto _ : state) {
    pool.parallel_for(0, kTasks, [&](std::size_t i) {
      double acc = static_cast<double>(i) + 1.0;
      for (std::size_t k = 0; k < kSpin; ++k) {
        acc = acc * 1.0000001 + 1e-9;
      }
      out[i] = acc;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
}
BENCHMARK(BM_ThreadPoolScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// parallel_for dispatch overhead on an empty body: the fixed cost a
// caller pays to fan out work.
void BM_ThreadPoolDispatchOverhead(benchmark::State& state) {
  parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(0, pool.threads(), [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolDispatchOverhead)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

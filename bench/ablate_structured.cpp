// Ablation — structured recovery (paper §I: "model-based and similar
// structural sparse recovery techniques ... exploit additional
// information").  On real ECG windows with a *small* measurement count,
// compares plain CoSaMP against block-structured CoSaMP over the wavelet
// dictionary, and both against the hybrid box decoder: two different
// kinds of side information attacking the same m-reduction problem.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/recovery/model_based.hpp"

namespace {

using namespace csecg;

linalg::Matrix dense_phi_psi(const linalg::Matrix& phi, const dsp::Dwt& dwt) {
  const std::size_t n = phi.cols();
  linalg::Matrix a(phi.rows(), n);
  linalg::Vector unit(n);
  for (std::size_t j = 0; j < n; ++j) {
    unit[j] = 1.0;
    const linalg::Vector column = linalg::multiply(phi, dwt.inverse(unit));
    for (std::size_t i = 0; i < phi.rows(); ++i) a(i, j) = column[i];
    unit[j] = 0.0;
  }
  return a;
}

}  // namespace

int main() {
  bench::print_header("ablate_structured",
                      "structured recovery — plain vs block CoSaMP vs "
                      "hybrid box at low m");

  const auto& database = bench::shared_database();
  const std::size_t records =
      std::min<std::size_t>(bench::records_budget(), 6);

  std::printf("m,plain_cosamp_snr,block_cosamp_snr,hybrid_pdhg_snr\n");
  for (std::size_t m : {48u, 64u, 96u}) {
    core::FrontEndConfig config;
    config.measurements = m;
    const auto lowres_codec = core::train_lowres_codec(config, database);
    const core::Codec codec(config, lowres_codec);

    sensing::RmpiConfig rmpi_config;
    rmpi_config.channels = m;
    rmpi_config.window = config.window;
    rmpi_config.chip_seed = config.chip_seed;
    rmpi_config.input_full_scale = config.dc_reference();
    const sensing::RmpiSimulator rmpi(rmpi_config);
    const dsp::Dwt dwt(config.wavelet, config.window, config.wavelet_levels);
    const linalg::Matrix a = dense_phi_psi(rmpi.chips(), dwt);
    const double dc = config.dc_reference();

    double snr_plain = 0.0;
    double snr_block = 0.0;
    double snr_hybrid = 0.0;
    for (std::size_t r = 0; r < records; ++r) {
      const linalg::Vector window = database.record(r).window(720, 512);
      const core::Frame frame = codec.encoder().encode(window);
      const linalg::Vector& y = frame.measurements;

      recovery::GreedyOptions options;
      options.max_sparsity = std::min<std::size_t>(m / 2, 40);
      options.residual_tol = 1e-3;
      const auto plain = recovery::solve_cosamp(a, y, options);
      linalg::Vector x_plain = dwt.inverse(plain.coefficients);
      for (auto& v : x_plain) v += dc;
      snr_plain += metrics::snr_from_prd(
          metrics::prd_zero_mean(window, x_plain));

      const recovery::BlockModel model{4};
      const std::size_t k_blocks =
          std::max<std::size_t>(1, options.max_sparsity / 4);
      const auto block =
          recovery::solve_block_cosamp(a, y, model, k_blocks, options);
      linalg::Vector x_block = dwt.inverse(block.coefficients);
      for (auto& v : x_block) v += dc;
      snr_block += metrics::snr_from_prd(
          metrics::prd_zero_mean(window, x_block));

      const auto hybrid =
          codec.decoder().decode(frame, core::DecodeMode::kHybrid);
      snr_hybrid += metrics::snr_from_prd(
          metrics::prd_zero_mean(window, hybrid.x));
    }
    const auto denom = static_cast<double>(records);
    std::printf("%zu,%.2f,%.2f,%.2f\n", m, snr_plain / denom,
                snr_block / denom, snr_hybrid / denom);
  }
  std::printf("# block structure helps greedy pursuit, but the hybrid box "
              "(a *per-sample* constraint) dominates at every m\n");
  return 0;
}

// Ablation — the side-channel resolution trade-off that justified the
// paper's 7-bit pick (DESIGN.md §5.3).  Sweeps the low-resolution bit
// depth at fixed m: more bits tighten the box (better SNR) but raise the
// overhead Dᵢ, so the *net* compression ratio peaks in the middle.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"

int main() {
  using namespace csecg;
  bench::print_header("ablate_lowres_bits",
                      "design ablation — side-channel bit depth at m=64");

  const auto& database = bench::shared_database();
  const std::size_t records = std::min<std::size_t>(bench::records_budget(),
                                                    6);
  const std::size_t windows = bench::windows_budget();

  std::printf("lowres_bits,hybrid_snr_db,overhead_percent,net_cr_percent,"
              "codebook_bytes\n");
  for (int bits = 3; bits <= 10; ++bits) {
    core::FrontEndConfig config;
    config.measurements = 64;
    config.lowres_bits = bits;
    const auto lowres_codec = core::train_lowres_codec(config, database);
    const core::Codec codec(config, lowres_codec);
    const auto reports = core::run_database(codec, database, records, windows,
                                            core::DecodeMode::kHybrid);
    double overhead = 0.0;
    double net_cr = 0.0;
    for (const auto& r : reports) {
      overhead += r.overhead_percent;
      net_cr += r.net_cr_percent;
    }
    overhead /= static_cast<double>(reports.size());
    net_cr /= static_cast<double>(reports.size());
    std::printf("%d,%.2f,%.2f,%.2f,%zu\n", bits,
                core::averaged_snr(reports), overhead, net_cr,
                lowres_codec.codebook().storage_bytes());
  }
  std::printf("# expectation: SNR rises ~6 dB/bit, overhead rises too; "
              "the knee near 7 bits is the paper's design point\n");
  return 0;
}

// Fig. 5 — on-node storage (bytes) of the offline-generated Huffman
// codebook for quantization depths 3..10 bits.  Paper anchor: ~68 bytes at
// 7 bits, rising steeply toward 10 bits (~550 B).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace csecg;
  bench::print_header("fig5_codebook_storage",
                      "Fig. 5 — Huffman codebook storage vs quantization "
                      "depth");

  const auto& database = bench::shared_database();
  const std::size_t records = bench::records_budget();
  const std::size_t windows =
      std::max<std::size_t>(bench::windows_budget(), 4);

  std::printf("bits,codebook_entries,storage_bytes\n");
  for (int bits = 3; bits <= 10; ++bits) {
    core::FrontEndConfig config;
    config.lowres_bits = bits;
    const auto codec =
        core::train_lowres_codec(config, database, records, windows);
    std::printf("%d,%zu,%zu\n", bits, codec.codebook().entries().size(),
                codec.codebook().storage_bytes());
  }
  std::printf("# paper anchor: 68 B at 7-bit\n");
  return 0;
}

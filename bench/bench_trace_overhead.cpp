// Tracing/ledger overhead tracker (ISSUE 4).
//
// Three interleaved arms over the run_database workload:
//
//   dark     obs off, trace off, ledger off — the floor.
//   default  obs on (the shipping default), trace + ledger off.  The gated
//            number is this arm's cost over `dark`: the tracing hooks sit
//            on the encode/decode/solver hot paths even when disarmed, so
//            this catches a disabled-path regression (a branch that became
//            an allocation, say).  Bar < 2%, CI gate 5%.
//   tracing  obs + trace + ledger on — the cost of actually recording a
//            timeline and a quality ledger.  Reported for the record, not
//            gated: rings fill and the arm pays for JSON-able strings.
//
// Results land in BENCH_trace.json.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/obs/ledger.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/trace.hpp"
#include "csecg/parallel/thread_pool.hpp"

namespace {

using namespace csecg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void arm(bool obs_on, bool trace_on, bool ledger_on) {
  obs::set_enabled(obs_on);
  obs::set_trace_enabled(trace_on);
  obs::set_ledger_enabled(ledger_on);
  // Start each rep from empty buffers: a full ring silently stops costing
  // anything, which would flatter the tracing arm.
  obs::trace_reset();
  obs::ledger_reset();
}

}  // namespace

int main() {
  bench::print_header("bench_trace_overhead",
                      "ISSUE 4 — tracing + ledger throughput cost");

  const auto& database = bench::shared_database();
  core::FrontEndConfig config;
  const auto lowres_codec = core::train_lowres_codec(config, database, 3, 3);
  const core::Codec codec(config, lowres_codec);

  const std::size_t records = std::min<std::size_t>(bench::records_budget(), 8);
  const std::size_t windows = std::max<std::size_t>(bench::windows_budget(), 2);
  const std::size_t total_windows = records * windows;
  parallel::ThreadPool pool(1);  // Serial: per-window cost is not hidden
                                 // behind thread scheduling noise.

  for (std::size_t r = 0; r < records; ++r) (void)database.record(r);
  arm(true, false, false);
  (void)core::run_database(codec, database, records, windows,
                           core::DecodeMode::kAuto, pool);

  constexpr int kReps = 9;
  double dark_best = 1e300;
  double default_best = 1e300;
  double tracing_best = 1e300;
  // Machine-load drift across ~second-scale reps dwarfs a 2% effect.
  // Load only ever adds time, so best-of-reps approximates each arm's
  // unloaded floor and the best-of ratio is the real overhead — the same
  // estimator bench_obs_overhead uses, with more reps because this bench
  // compares three arms.
  std::printf("arm,rep,seconds,windows_per_sec\n");
  for (int rep = 0; rep < kReps; ++rep) {
    arm(false, false, false);
    auto start = Clock::now();
    (void)core::run_database(codec, database, records, windows,
                             core::DecodeMode::kAuto, pool);
    const double dark_seconds = seconds_since(start);
    dark_best = std::min(dark_best, dark_seconds);
    std::printf("dark,%d,%.4f,%.2f\n", rep, dark_seconds,
                static_cast<double>(total_windows) / dark_seconds);

    arm(true, false, false);
    start = Clock::now();
    (void)core::run_database(codec, database, records, windows,
                             core::DecodeMode::kAuto, pool);
    const double default_seconds = seconds_since(start);
    default_best = std::min(default_best, default_seconds);
    std::printf("default,%d,%.4f,%.2f\n", rep, default_seconds,
                static_cast<double>(total_windows) / default_seconds);

    arm(true, true, true);
    start = Clock::now();
    (void)core::run_database(codec, database, records, windows,
                             core::DecodeMode::kAuto, pool);
    const double tracing_seconds = seconds_since(start);
    tracing_best = std::min(tracing_best, tracing_seconds);
    std::printf("tracing,%d,%.4f,%.2f\n", rep, tracing_seconds,
                static_cast<double>(total_windows) / tracing_seconds);
  }
  arm(true, false, false);  // Leave the process in the shipping default.

  const double dark_wps = static_cast<double>(total_windows) / dark_best;
  const double default_wps = static_cast<double>(total_windows) / default_best;
  const double tracing_wps = static_cast<double>(total_windows) / tracing_best;
  const double default_overhead = (default_best / dark_best - 1.0) * 100.0;
  const double tracing_overhead = (tracing_best / dark_best - 1.0) * 100.0;
  std::printf("# dark:    %.2f windows/s\n", dark_wps);
  std::printf("# default: %.2f windows/s (%.2f%% over dark; "
              "target < 2%%, CI gate 5%%)\n",
              default_wps, default_overhead);
  std::printf("# tracing: %.2f windows/s (%.2f%% over dark; informational)\n",
              tracing_wps, tracing_overhead);

  std::FILE* json = std::fopen("BENCH_trace.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_trace.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"trace_overhead\",\n");
  std::fprintf(json,
               "  \"workload\": {\"records\": %zu, \"windows_per_record\": "
               "%zu, \"window\": %zu, \"measurements\": %zu, \"reps\": %d},\n",
               records, windows, config.window, config.measurements, kReps);
  std::fprintf(json,
               "  \"dark\": {\"best_seconds\": %.4f, "
               "\"windows_per_sec\": %.3f},\n",
               dark_best, dark_wps);
  std::fprintf(json,
               "  \"default\": {\"best_seconds\": %.4f, "
               "\"windows_per_sec\": %.3f},\n",
               default_best, default_wps);
  std::fprintf(json,
               "  \"tracing\": {\"best_seconds\": %.4f, "
               "\"windows_per_sec\": %.3f},\n",
               tracing_best, tracing_wps);
  std::fprintf(json, "  \"overhead_percent\": %.3f,\n", default_overhead);
  std::fprintf(json, "  \"tracing_overhead_percent\": %.3f,\n",
               tracing_overhead);
  std::fprintf(json, "  \"target_percent\": 2.0,\n");
  std::fprintf(json, "  \"gate_percent\": 5.0\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("# wrote BENCH_trace.json\n");

  return default_overhead < 5.0 ? 0 : 2;
}

// Fig. 7 — averaged SNR (top) and PRD (bottom) over records, as a function
// of CS-channel compression ratio, for Hybrid CS vs normal CS.
//
// The paper's qualitative claims this bench must reproduce:
//  * Hybrid CS outperforms normal CS at every CR;
//  * the advantage explodes at high CR, where normal CS fails to converge;
//  * "good" quality is reached at ~81% CR hybrid vs ~53% normal.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"

int main() {
  using namespace csecg;
  bench::print_header("fig7_snr_prd_vs_cr",
                      "Fig. 7 — averaged SNR/PRD vs CR, Hybrid vs normal "
                      "CS");

  const auto& database = bench::shared_database();
  const std::size_t records = bench::records_budget();
  const std::size_t windows = bench::windows_budget();

  core::FrontEndConfig base;
  const auto lowres_codec = core::train_lowres_codec(base, database);

  std::printf("cr_percent,m,hybrid_snr_db,cs_snr_db,hybrid_prd,cs_prd,"
              "hybrid_net_cr\n");
  for (double cr : bench::fig7_cr_grid()) {
    core::FrontEndConfig config = base;
    config.measurements = config.measurements_for_cr(cr);
    const core::Codec codec(config, lowres_codec);
    const auto hybrid = core::run_database(codec, database, records, windows,
                                           core::DecodeMode::kHybrid);
    const auto normal = core::run_database(codec, database, records, windows,
                                           core::DecodeMode::kNormalCs);
    std::printf("%.0f,%zu,%.2f,%.2f,%.2f,%.2f,%.2f\n", cr,
                config.measurements, core::averaged_snr(hybrid),
                core::averaged_snr(normal), core::averaged_prd(hybrid),
                core::averaged_prd(normal),
                hybrid.front().net_cr_percent);
  }
  std::printf("# paper: hybrid ~22 dB at CR 50 falling to ~14 dB at CR 97; "
              "normal CS collapses above ~CR 70\n");
  return 0;
}

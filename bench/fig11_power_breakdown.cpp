// Fig. 11 — power-consumption breakdown (P_adc, P_int, P_amp, P_total) vs
// sampling frequency, swept 100 Hz .. 100 MHz, for (a) the RMPI design at
// m = 240 and (b) the Hybrid CS design at m = 96 + low-res ADC — the
// paper's SNR = 20 dB operating points.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/power/models.hpp"

namespace {

void sweep(const char* title, std::size_t channels, int lowres_bits) {
  using namespace csecg;
  power::TechnologyParams tech;
  power::RmpiDesign design;
  design.channels = channels;
  design.window = 512;

  std::printf("%s (m=%zu)\n", title, channels);
  std::printf("fs_mhz,p_adc_uw,p_int_uw,p_amp_uw,p_lowres_uw,p_total_uw\n");
  for (const auto& point :
       power::frequency_sweep(design, tech, 100.0, 1e8, 25)) {
    double lowres = 0.0;
    if (lowres_bits > 0) {
      lowres = power::lowres_adc_power(lowres_bits, point.nyquist_hz, tech);
    }
    std::printf("%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n", point.nyquist_hz / 1e6,
                point.breakdown.adc * 1e6, point.breakdown.integrator * 1e6,
                point.breakdown.amplifier * 1e6, lowres * 1e6,
                (point.breakdown.total() + lowres) * 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace csecg;
  bench::print_header("fig11_power_breakdown",
                      "Fig. 11 — power breakdown vs sampling frequency, "
                      "RMPI (m=240) and Hybrid (m=96)");
  sweep("(a) RMPI", 240, 0);
  sweep("(b) Hybrid CS", 96, 7);

  // The paper's comparison at the ECG operating point.
  power::TechnologyParams tech;
  power::RmpiDesign normal;
  normal.channels = 240;
  power::HybridDesign hybrid;
  hybrid.cs_path = normal;
  hybrid.cs_path.channels = 96;
  const double ratio = power::rmpi_power(normal, tech).total() /
                       power::hybrid_power(hybrid, tech).total();
  std::printf("# total power ratio RMPI(m=240)/Hybrid(m=96) = %.2fx "
              "(paper: ~2.5x); amplifier dominates both\n",
              ratio);
  return 0;
}

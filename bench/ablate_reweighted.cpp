// Ablation — software vs hardware routes to fewer measurements.  The
// paper argues recovery-side tricks ("model-based and similar structural
// sparse recovery") can only partially close the measurement gap; the
// hybrid's low-resolution hardware channel closes it decisively.  This
// bench pits iteratively reweighted ℓ1 (the strongest generic software
// enhancement) against the hybrid box at the same channel counts.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/recovery/reweighted.hpp"

int main() {
  using namespace csecg;
  bench::print_header("ablate_reweighted",
                      "reweighted l1 (software) vs hybrid box (hardware) "
                      "per channel count");

  const auto& database = bench::shared_database();
  const std::size_t records =
      std::min<std::size_t>(bench::records_budget(), 6);

  std::printf("m,cs_snr_db,reweighted_snr_db,hybrid_snr_db\n");
  for (std::size_t m : {64u, 96u, 128u, 192u}) {
    core::FrontEndConfig config;
    config.measurements = m;
    const auto lowres_codec = core::train_lowres_codec(config, database);
    const core::Codec codec(config, lowres_codec);

    sensing::RmpiConfig rmpi_config;
    rmpi_config.channels = m;
    rmpi_config.window = config.window;
    rmpi_config.chip_seed = config.chip_seed;
    rmpi_config.input_full_scale = config.dc_reference();
    const sensing::RmpiSimulator rmpi(rmpi_config);
    const dsp::Dwt dwt(config.wavelet, config.window, config.wavelet_levels);
    const auto phi = rmpi.effective_operator();
    const auto psi = dwt.synthesis_operator();
    const double sigma =
        config.sigma_scale * rmpi.expected_quantization_noise_norm();
    const double dc = config.dc_reference();

    double snr_cs = 0.0;
    double snr_rw = 0.0;
    double snr_hybrid = 0.0;
    for (std::size_t r = 0; r < records; ++r) {
      const linalg::Vector window = database.record(r).window(720, 512);
      const core::Frame frame = codec.encoder().encode(window);

      const auto normal =
          codec.decoder().decode(frame, core::DecodeMode::kNormalCs);
      snr_cs += metrics::snr_from_prd(
          metrics::prd_zero_mean(window, normal.x));

      recovery::ReweightedOptions rw;
      rw.rounds = 3;
      rw.solver = config.solver;
      const auto reweighted = recovery::solve_reweighted_bpdn(
          phi, psi, frame.measurements, sigma, std::nullopt, rw);
      linalg::Vector x_rw = reweighted.x;
      for (auto& v : x_rw) v += dc;
      snr_rw +=
          metrics::snr_from_prd(metrics::prd_zero_mean(window, x_rw));

      const auto hybrid =
          codec.decoder().decode(frame, core::DecodeMode::kHybrid);
      snr_hybrid += metrics::snr_from_prd(
          metrics::prd_zero_mean(window, hybrid.x));
    }
    const auto denom = static_cast<double>(records);
    std::printf("%zu,%.2f,%.2f,%.2f\n", m, snr_cs / denom, snr_rw / denom,
                snr_hybrid / denom);
  }
  std::printf("# expectation: reweighting buys 1-3 dB over plain BPDN; the "
              "hybrid box buys far more at small m\n");
  return 0;
}

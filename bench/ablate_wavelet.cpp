// Ablation — sparsifying dictionary choice (DESIGN.md §5.2).  Sweeps the
// wavelet family at the paper's m = 96 operating point and reports hybrid
// and normal-CS SNR.  The authors' earlier work picked Daubechies wavelets
// for ECG; this quantifies how much the family matters once the hybrid box
// is in play.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"

int main() {
  using namespace csecg;
  bench::print_header("ablate_wavelet",
                      "design ablation — wavelet family at m=96");

  const auto& database = bench::shared_database();
  const std::size_t records = std::min<std::size_t>(bench::records_budget(),
                                                    6);
  const std::size_t windows = bench::windows_budget();
  core::FrontEndConfig base;
  const auto lowres_codec = core::train_lowres_codec(base, database);

  std::printf("wavelet,hybrid_snr_db,cs_snr_db\n");
  for (dsp::WaveletFamily family :
       {dsp::WaveletFamily::kHaar, dsp::WaveletFamily::kDb2,
        dsp::WaveletFamily::kDb4, dsp::WaveletFamily::kDb8,
        dsp::WaveletFamily::kSym4, dsp::WaveletFamily::kSym8,
        dsp::WaveletFamily::kCoif2}) {
    core::FrontEndConfig config = base;
    config.wavelet = family;
    const core::Codec codec(config, lowres_codec);
    const auto hybrid = core::run_database(codec, database, records, windows,
                                           core::DecodeMode::kHybrid);
    const auto normal = core::run_database(codec, database, records, windows,
                                           core::DecodeMode::kNormalCs);
    std::printf("%s,%.2f,%.2f\n", dsp::wavelet_name(family).c_str(),
                core::averaged_snr(hybrid), core::averaged_snr(normal));
  }
  std::printf("# expectation: longer Daubechies/Symlet filters beat Haar "
              "for normal CS; the hybrid box flattens the gap\n");
  return 0;
}

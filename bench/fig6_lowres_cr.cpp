// Fig. 6 — average compression ratio of the low-resolution path for bit
// resolutions 3..10: the fraction of the raw B-bit stream the delta-Huffman
// coder actually transmits (compressed/original; higher resolution ⇒ less
// compressible deltas ⇒ larger fraction).
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/sensing/lowres_channel.hpp"

int main() {
  using namespace csecg;
  bench::print_header("fig6_lowres_cr",
                      "Fig. 6 — average compression ratio of the "
                      "low-resolution path vs bit resolution");

  const auto& database = bench::shared_database();
  const std::size_t train_records = bench::records_budget();
  const std::size_t windows =
      std::max<std::size_t>(bench::windows_budget(), 4);
  // Held-out evaluation records (wrap around the database).
  const std::size_t eval_start = train_records;
  const std::size_t eval_count = std::min<std::size_t>(8, 48 - eval_start);

  std::printf("bits,compressed_fraction,bits_per_sample\n");
  for (int bits = 3; bits <= 10; ++bits) {
    core::FrontEndConfig config;
    config.lowres_bits = bits;
    const auto codec =
        core::train_lowres_codec(config, database, train_records, windows);
    sensing::LowResConfig lowres_config;
    lowres_config.bits = bits;
    const sensing::LowResChannel channel(lowres_config);

    double total_bits = 0.0;
    double total_raw_bits = 0.0;
    double total_samples = 0.0;
    for (std::size_t r = eval_start; r < eval_start + eval_count; ++r) {
      for (const auto& window :
           ecg::extract_windows(database.record(r), 512, windows)) {
        const auto out = channel.sample(window);
        total_bits += static_cast<double>(codec.encoded_bits(out.codes));
        total_raw_bits += static_cast<double>(window.size()) * bits;
        total_samples += static_cast<double>(window.size());
      }
    }
    std::printf("%d,%.4f,%.3f\n", bits, total_bits / total_raw_bits,
                total_bits / total_samples);
  }
  std::printf("# paper shape: fraction rises with resolution (deltas "
              "approach uniform)\n");
  return 0;
}

// §VI headline — the power gains of the hybrid design at fixed
// reconstruction quality.  For each SNR target the bench searches the
// smallest channel count m reaching it (per decode mode, averaged over the
// evaluation records), then prices both designs with the Eq. 4/5/9 models.
//
// Paper anchors: SNR=20 dB needs m=96 (hybrid) vs 240 (normal) → ~2.5×;
// SNR=17 dB needs m=16 vs 176 → ~11×.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/power/models.hpp"

namespace {

using namespace csecg;

double snr_at(const core::FrontEndConfig& base, std::size_t m,
              const coding::DeltaHuffmanCodec& codec, std::size_t records,
              std::size_t windows, core::DecodeMode mode) {
  core::FrontEndConfig config = base;
  config.measurements = m;
  const core::Codec front_end(config, codec);
  const auto reports = core::run_database(front_end, bench::shared_database(),
                                          records, windows, mode);
  return core::averaged_snr(reports);
}

std::size_t min_m(const core::FrontEndConfig& base, double target,
                  const coding::DeltaHuffmanCodec& codec,
                  std::size_t records, std::size_t windows,
                  core::DecodeMode mode, double* achieved) {
  static const std::vector<std::size_t> grid = {
      16, 24, 32, 48, 64, 96, 128, 160, 192, 240, 288, 352, 448, 512};
  for (std::size_t m : grid) {
    const double snr = snr_at(base, m, codec, records, windows, mode);
    if (snr >= target) {
      *achieved = snr;
      return m;
    }
  }
  *achieved = snr_at(base, 512, codec, records, windows, mode);
  return 512;
}

}  // namespace

int main() {
  bench::print_header("headline_power_gain",
                      "§VI — min-m search per SNR target and resulting "
                      "power ratio (paper: 2.5x @20 dB, 11x @17 dB)");

  const auto& database = bench::shared_database();
  const std::size_t records = std::min<std::size_t>(bench::records_budget(),
                                                    6);
  const std::size_t windows = bench::windows_budget();
  core::FrontEndConfig base;
  const auto codec = core::train_lowres_codec(base, database);

  std::printf("target_snr_db,m_hybrid,snr_hybrid,m_normal,snr_normal,"
              "power_ratio\n");
  for (double target : {14.0, 15.5, 17.0}) {
    double snr_h = 0.0;
    double snr_n = 0.0;
    const std::size_t m_hybrid =
        min_m(base, target, codec, records, windows,
              core::DecodeMode::kHybrid, &snr_h);
    const std::size_t m_normal =
        min_m(base, target, codec, records, windows,
              core::DecodeMode::kNormalCs, &snr_n);

    power::TechnologyParams tech;
    power::RmpiDesign normal_design;
    normal_design.channels = m_normal;
    normal_design.window = base.window;
    power::HybridDesign hybrid_design;
    hybrid_design.cs_path = normal_design;
    hybrid_design.cs_path.channels = m_hybrid;
    hybrid_design.lowres_bits = base.lowres_bits;
    const double ratio = power::rmpi_power(normal_design, tech).total() /
                         power::hybrid_power(hybrid_design, tech).total();
    std::printf("%.1f,%zu,%.2f,%zu,%.2f,%.1f\n", target, m_hybrid, snr_h,
                m_normal, snr_n, ratio);
  }
  std::printf("# power ratio tracks m_normal/m_hybrid because every analog "
              "block scales linearly in m (§VI)\n");
  return 0;
}

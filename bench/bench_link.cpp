// Telemetry-link bench (ISSUE 2): quality and energy across the lossy
// channel.
//
// Arms:
//  * Loss sweep — SNR/PRD/delivery vs. i.i.d. packet-erasure rate over
//    0–30%, no ARQ, multi-record on the thread pool.  The acceptance bar
//    is graceful degradation: at 10% erasure the averaged SNR must sit
//    within 6 dB of the lossless run, and every record must complete
//    without throwing at every loss rate.
//  * ARQ arm — energy per window vs. retransmission policy (none /
//    stop-and-wait / selective repeat) on a bursty Gilbert–Elliott channel
//    with ~10% stationary loss.
// Results land in BENCH_link.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "csecg/link/session.hpp"
#include "csecg/parallel/thread_pool.hpp"

namespace {

using namespace csecg;

core::FrontEndConfig bench_config() {
  core::FrontEndConfig config;
  config.window = 256;
  config.measurements = 48;
  config.wavelet_levels = 4;
  config.solver.max_iterations = 400;
  return config;
}

struct SweepRow {
  double erasure = 0.0;
  double mean_snr = 0.0;
  double mean_prd = 0.0;
  double delivery_rate = 0.0;
  double mean_energy_uj = 0.0;
  std::size_t lowres_only_windows = 0;
};

const char* arq_name(link::ArqMode mode) {
  switch (mode) {
    case link::ArqMode::kNone: return "none";
    case link::ArqMode::kStopAndWait: return "stop_and_wait";
    case link::ArqMode::kSelectiveRepeat: return "selective_repeat";
  }
  return "?";
}

struct ArqRow {
  link::ArqMode mode = link::ArqMode::kNone;
  double mean_snr = 0.0;
  double delivery_rate = 0.0;
  double mean_energy_uj = 0.0;
  std::size_t retransmissions = 0;
};

}  // namespace

int main() {
  bench::print_header("bench_link",
                      "ISSUE 2 — telemetry link loss/energy trade-off");

  const auto& database = bench::shared_database();
  const core::FrontEndConfig config = bench_config();
  const auto lowres_codec = core::train_lowres_codec(config, database, 3, 3);

  // The acceptance bar runs every record: all 48 must complete at every
  // loss rate.  CSECG_RECORDS can shrink this for quick local runs.
  const std::size_t records =
      std::min<std::size_t>(bench::records_budget() == 8
                                ? database.size()
                                : bench::records_budget(),
                            database.size());
  const std::size_t windows = bench::windows_budget();
  parallel::ThreadPool pool;

  const std::vector<double> loss_grid = {0.0,  0.05, 0.10, 0.15,
                                         0.20, 0.25, 0.30};
  std::vector<SweepRow> sweep;
  std::printf("erasure,mean_snr_db,mean_prd,delivery,energy_uJ,"
              "lowres_only\n");
  for (const double erasure : loss_grid) {
    link::LinkSessionConfig link;
    link.channel.kind = erasure == 0.0 ? link::ChannelKind::kPerfect
                                       : link::ChannelKind::kPacketErasure;
    link.channel.erasure_rate = erasure;
    const link::LinkSession session(config, lowres_codec, link);
    const auto reports =
        link::run_link_database(session, database, records, windows, pool);

    SweepRow row;
    row.erasure = erasure;
    row.mean_snr = link::averaged_link_snr(reports);
    row.mean_energy_uj = link::averaged_link_energy(reports) * 1e6;
    double prd_sum = 0.0;
    double delivery_sum = 0.0;
    for (const auto& r : reports) {
      prd_sum += r.mean_prd;
      delivery_sum += r.delivery_rate;
      row.lowres_only_windows += r.lowres_only_windows;
    }
    row.mean_prd = prd_sum / static_cast<double>(reports.size());
    row.delivery_rate = delivery_sum / static_cast<double>(reports.size());
    sweep.push_back(row);
    std::printf("%.2f,%.3f,%.3f,%.4f,%.3f,%zu\n", row.erasure, row.mean_snr,
                row.mean_prd, row.delivery_rate, row.mean_energy_uj,
                row.lowres_only_windows);
  }
  const double snr_drop_10 = sweep[0].mean_snr - sweep[2].mean_snr;
  std::printf("# SNR drop at 10%% erasure (no ARQ): %.3f dB (bar: < 6)\n",
              snr_drop_10);

  // ARQ arm: bursty channel with ~10% stationary loss.
  std::vector<ArqRow> arq_rows;
  std::printf("arq,mean_snr_db,delivery,energy_uJ,retransmissions\n");
  for (const link::ArqMode mode :
       {link::ArqMode::kNone, link::ArqMode::kStopAndWait,
        link::ArqMode::kSelectiveRepeat}) {
    link::LinkSessionConfig link;
    link.channel.kind = link::ChannelKind::kGilbertElliott;
    link.channel.ge_good_to_bad = 0.05;
    link.channel.ge_bad_to_good = 0.20;
    link.channel.ge_erasure_bad = 0.5;  // π_bad = 0.2 → 10% stationary.
    link.arq.mode = mode;
    link.arq.max_retries = 4;
    const link::LinkSession session(config, lowres_codec, link);
    const auto reports =
        link::run_link_database(session, database, records, windows, pool);

    ArqRow row;
    row.mode = mode;
    row.mean_snr = link::averaged_link_snr(reports);
    row.mean_energy_uj = link::averaged_link_energy(reports) * 1e6;
    double delivery_sum = 0.0;
    for (const auto& r : reports) {
      delivery_sum += r.delivery_rate;
      row.retransmissions += r.retransmissions;
    }
    row.delivery_rate = delivery_sum / static_cast<double>(reports.size());
    arq_rows.push_back(row);
    std::printf("%s,%.3f,%.4f,%.3f,%zu\n", arq_name(mode), row.mean_snr,
                row.delivery_rate, row.mean_energy_uj, row.retransmissions);
  }

  std::FILE* json = std::fopen("BENCH_link.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_link.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"link\",\n");
  std::fprintf(json,
               "  \"workload\": {\"records\": %zu, \"windows_per_record\": "
               "%zu, \"window\": %zu, \"measurements\": %zu, \"threads\": "
               "%zu},\n",
               records, windows, config.window, config.measurements,
               pool.threads());
  std::fprintf(json, "  \"loss_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& row = sweep[i];
    std::fprintf(json,
                 "    {\"erasure_rate\": %.2f, \"mean_snr_db\": %.4f, "
                 "\"mean_prd\": %.4f, \"delivery_rate\": %.4f, "
                 "\"mean_energy_uj\": %.4f, \"lowres_only_windows\": %zu}%s\n",
                 row.erasure, row.mean_snr, row.mean_prd, row.delivery_rate,
                 row.mean_energy_uj, row.lowres_only_windows,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"snr_drop_db_at_10pct_no_arq\": %.4f,\n",
               snr_drop_10);
  std::fprintf(json, "  \"graceful_degradation\": %s,\n",
               snr_drop_10 < 6.0 ? "true" : "false");
  std::fprintf(json, "  \"all_records_completed\": true,\n");
  std::fprintf(json, "  \"arq_ge_10pct\": [\n");
  for (std::size_t i = 0; i < arq_rows.size(); ++i) {
    const ArqRow& row = arq_rows[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"mean_snr_db\": %.4f, "
                 "\"delivery_rate\": %.4f, \"mean_energy_uj\": %.4f, "
                 "\"retransmissions\": %zu}%s\n",
                 arq_name(row.mode), row.mean_snr, row.delivery_rate,
                 row.mean_energy_uj, row.retransmissions,
                 i + 1 < arq_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("# wrote BENCH_link.json\n");
  return snr_drop_10 < 6.0 ? 0 : 2;
}

// Ablation — adaptive per-window measurement rate (extension feature).
// Streams windows of quiet and ectopy-heavy records through the adaptive
// codec and a fixed-m codec matched to the adaptive scheme's *average*
// channel count, comparing quality at equal average analog power
// (P ∝ mean m per §VI).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/adaptive.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/metrics/quality.hpp"

int main() {
  using namespace csecg;
  bench::print_header("ablate_adaptive",
                      "adaptive vs fixed measurement rate at equal average "
                      "channel count");

  const auto& database = bench::shared_database();
  const std::size_t windows =
      std::max<std::size_t>(bench::windows_budget(), 3);

  core::FrontEndConfig base;
  const auto lowres_codec = core::train_lowres_codec(base, database);
  core::AdaptiveRateConfig rate;
  rate.m_min = 48;
  rate.m_max = 160;
  rate.low_activity = 0.05;
  rate.high_activity = 0.30;
  const core::AdaptiveCodec adaptive(base, rate, lowres_codec);

  std::printf("record,mean_m_adaptive,adaptive_snr_db,fixed_snr_db\n");
  // "100" is quiet; "208" carries a heavy PVC burden.
  for (const char* name : {"100", "208", "119", "112"}) {
    std::size_t index = 0;
    for (std::size_t i = 0; i < database.size(); ++i) {
      if (database.name(i) == name) index = i;
    }
    const auto& record = database.record(index);
    const auto raw_windows =
        ecg::extract_windows(record, base.window, windows);

    double m_sum = 0.0;
    double snr_adaptive = 0.0;
    std::vector<core::Frame> frames;
    for (const auto& window : raw_windows) {
      frames.push_back(adaptive.encode(window));
      m_sum += static_cast<double>(adaptive.last_channels());
    }
    const auto mean_m = static_cast<std::size_t>(
        std::lround(m_sum / static_cast<double>(raw_windows.size())));
    for (std::size_t w = 0; w < raw_windows.size(); ++w) {
      const auto decoded = adaptive.decode(frames[w]);
      snr_adaptive += metrics::snr_from_prd(
          metrics::prd_zero_mean(raw_windows[w], decoded.x));
    }
    snr_adaptive /= static_cast<double>(raw_windows.size());

    core::FrontEndConfig fixed_config = base;
    fixed_config.measurements = mean_m;
    const core::Codec fixed(fixed_config, lowres_codec);
    double snr_fixed = 0.0;
    for (const auto& window : raw_windows) {
      const auto decoded = fixed.roundtrip(window);
      snr_fixed += metrics::snr_from_prd(
          metrics::prd_zero_mean(window, decoded.x));
    }
    snr_fixed /= static_cast<double>(raw_windows.size());

    std::printf("%s,%zu,%.2f,%.2f\n", name, mean_m, snr_adaptive,
                snr_fixed);
  }
  std::printf("# adaptive spends channels where the signal is busy; at "
              "matched average m it should match or beat fixed-rate\n");
  return 0;
}

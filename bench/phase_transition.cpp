// Empirical phase-transition map (supporting analysis for the paper's §I
// measurement-bound discussion): probability of exact sparse recovery as
// a function of undersampling δ = m/n and sparsity ρ = s/m, for the
// RMPI-realizable Rademacher ensemble.  OMP is used as the (fast)
// recovery oracle, which yields the classic sharp transition ridge; the
// hybrid front-end's whole point is operating far below this ridge.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/recovery/greedy.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/sensing/matrices.hpp"

int main() {
  using namespace csecg;
  bench::print_header("phase_transition",
                      "empirical (delta, rho) exact-recovery map for the "
                      "Rademacher ensemble");

  const std::size_t n = 128;
  const int trials = 12;
  std::printf("delta,rho,success_rate\n");
  rng::Xoshiro256 gen(99);
  for (double delta : {0.125, 0.25, 0.375, 0.5, 0.75}) {
    const auto m = static_cast<std::size_t>(delta * n);
    for (double rho : {0.1, 0.2, 0.3, 0.4, 0.6}) {
      const auto s = std::max<std::size_t>(
          1, static_cast<std::size_t>(rho * static_cast<double>(m)));
      int successes = 0;
      for (int t = 0; t < trials; ++t) {
        sensing::SensingConfig config;
        config.measurements = m;
        config.window = n;
        config.seed = gen.next();
        linalg::Matrix phi = sensing::make_sensing_matrix(config);
        linalg::normalize_columns(phi);
        linalg::Vector x(n);
        for (std::size_t picked = 0; picked < s;) {
          const auto idx =
              static_cast<std::size_t>(rng::uniform_below(gen, n));
          if (x[idx] != 0.0) continue;
          x[idx] = static_cast<double>(rng::rademacher(gen)) *
                   rng::uniform(gen, 1.0, 2.0);
          ++picked;
        }
        const linalg::Vector y = linalg::multiply(phi, x);
        recovery::GreedyOptions options;
        options.max_sparsity = s;
        const auto result = recovery::solve_omp(phi, y, options);
        const double err = linalg::norm2(result.coefficients - x) /
                           linalg::norm2(x);
        if (err < 1e-6) ++successes;
      }
      std::printf("%.3f,%.1f,%.2f\n", delta, rho,
                  static_cast<double>(successes) / trials);
    }
  }
  std::printf("# expectation: success collapses as rho grows, faster at "
              "small delta — the s·log(n/s) wall the hybrid sidesteps\n");
  return 0;
}

// System-level energy trade-off: total node energy (analog + radio +
// digital) per window as a function of the operating point, for the
// hybrid front-end and the normal-CS front-end sized to deliver the same
// reconstruction SNR.  The paper's 11× claim is analog-only; with the
// radio included the hybrid's smaller m *and* competitive net CR both
// show up in the node budget.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/power/node_energy.hpp"

int main() {
  using namespace csecg;
  bench::print_header("node_energy_tradeoff",
                      "whole-node energy per window, hybrid vs normal CS "
                      "at matched SNR");

  const auto& database = bench::shared_database();
  const std::size_t records =
      std::min<std::size_t>(bench::records_budget(), 6);
  const std::size_t windows = bench::windows_budget();

  power::TechnologyParams tech;
  power::NodeEnergyParams node;
  const double window_seconds = 512.0 / 360.0;  // n / fs.

  // Matched-quality pairs from the headline search (hybrid m / normal m).
  struct Pair {
    std::size_t m_hybrid;
    std::size_t m_normal;
  };
  std::printf("m_hybrid,m_normal,hybrid_snr,normal_snr,hybrid_total_uj,"
              "normal_total_uj,energy_ratio\n");
  for (const Pair pair : {Pair{16, 240}, Pair{64, 288}, Pair{96, 352}}) {
    core::FrontEndConfig hybrid_config;
    hybrid_config.measurements = pair.m_hybrid;
    const auto lowres_codec =
        core::train_lowres_codec(hybrid_config, database);
    const core::Codec hybrid_codec(hybrid_config, lowres_codec);
    const auto hybrid_reports =
        core::run_database(hybrid_codec, database, records, windows,
                           core::DecodeMode::kHybrid);

    core::FrontEndConfig normal_config;
    normal_config.measurements = pair.m_normal;
    const core::Codec normal_codec(normal_config, lowres_codec);
    const auto normal_reports =
        core::run_database(normal_codec, database, records, windows,
                           core::DecodeMode::kNormalCs);

    // Air bits per window, averaged (hybrid pays the side channel).
    double hybrid_bits = 0.0;
    std::size_t count = 0;
    for (const auto& report : hybrid_reports) {
      for (const auto& w : report.windows) {
        hybrid_bits += static_cast<double>(w.cs_bits + w.lowres_bits);
        ++count;
      }
    }
    hybrid_bits /= static_cast<double>(count);
    const double normal_bits =
        static_cast<double>(pair.m_normal) * 12.0;

    power::HybridDesign hybrid_design;
    hybrid_design.cs_path.channels = pair.m_hybrid;
    hybrid_design.cs_path.window = 512;
    const auto hybrid_energy = power::window_energy(
        hybrid_design, tech, node,
        static_cast<std::size_t>(hybrid_bits), window_seconds);

    power::RmpiDesign normal_design;
    normal_design.channels = pair.m_normal;
    normal_design.window = 512;
    const auto normal_energy = power::window_energy(
        normal_design, tech, node,
        static_cast<std::size_t>(normal_bits), window_seconds);

    std::printf("%zu,%zu,%.2f,%.2f,%.3f,%.3f,%.1f\n", pair.m_hybrid,
                pair.m_normal, core::averaged_snr(hybrid_reports),
                core::averaged_snr(normal_reports),
                hybrid_energy.total() * 1e6, normal_energy.total() * 1e6,
                normal_energy.total() / hybrid_energy.total());
  }
  std::printf("# the analog block dominates at these design constants, so "
              "the node-level ratio tracks the paper's analog-only claim\n");
  return 0;
}

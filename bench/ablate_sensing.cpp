// Ablation — sensing ensemble (DESIGN.md §5.4).  The paper's architecture
// argument needs Φ realizable as ±1 chipping sequences; this bench checks
// that the Rademacher ensemble costs nothing in reconstruction quality
// against the ideal Gaussian ensemble and a sparse-binary one.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"

int main() {
  using namespace csecg;
  bench::print_header("ablate_sensing",
                      "design ablation — sensing ensemble at m=96");

  const auto& database = bench::shared_database();
  const std::size_t records = std::min<std::size_t>(bench::records_budget(),
                                                    6);
  const std::size_t windows = bench::windows_budget();
  core::FrontEndConfig base;
  const auto lowres_codec = core::train_lowres_codec(base, database);

  std::printf("ensemble,hybrid_snr_db,cs_snr_db\n");
  for (sensing::Ensemble ensemble :
       {sensing::Ensemble::kRademacher, sensing::Ensemble::kGaussian,
        sensing::Ensemble::kSparseBinary}) {
    core::FrontEndConfig config = base;
    config.ensemble = ensemble;
    const core::Codec codec(config, lowres_codec);
    const auto hybrid = core::run_database(codec, database, records, windows,
                                           core::DecodeMode::kHybrid);
    const auto normal = core::run_database(codec, database, records, windows,
                                           core::DecodeMode::kNormalCs);
    std::printf("%s,%.2f,%.2f\n", sensing::ensemble_name(ensemble).c_str(),
                core::averaged_snr(hybrid), core::averaged_snr(normal));
  }
  std::printf("# expectation: Rademacher ~ Gaussian (universality); "
              "sparse-binary trails slightly\n");
  return 0;
}

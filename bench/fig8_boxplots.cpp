// Fig. 8 — box plots of per-record SNR across the database, per CR, for
// normal (top) and Hybrid (bottom) CS reconstruction.  Prints the five
// box-plot numbers (whiskers at 1.5·IQR, MATLAB convention) plus outlier
// counts for each CR and method.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/metrics/stats.hpp"

namespace {

void print_boxes(const char* method, csecg::core::DecodeMode mode,
                 const csecg::core::FrontEndConfig& base,
                 const csecg::coding::DeltaHuffmanCodec& lowres_codec) {
  using namespace csecg;
  const auto& database = bench::shared_database();
  const std::size_t records = bench::records_budget();
  const std::size_t windows = bench::windows_budget();

  std::printf("%s\n", method);
  std::printf("cr_percent,whisker_low,q1,median,q3,whisker_high,outliers\n");
  for (double cr : bench::fig7_cr_grid()) {
    core::FrontEndConfig config = base;
    config.measurements = config.measurements_for_cr(cr);
    const core::Codec codec(config, lowres_codec);
    const auto reports =
        core::run_database(codec, database, records, windows, mode);
    const auto box = metrics::box_stats(core::per_record_snr(reports));
    std::printf("%.0f,%.2f,%.2f,%.2f,%.2f,%.2f,%zu\n", cr, box.whisker_low,
                box.q1, box.median, box.q3, box.whisker_high,
                box.outliers.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace csecg;
  bench::print_header("fig8_boxplots",
                      "Fig. 8 — per-record SNR box plots vs CR, normal "
                      "(top) and Hybrid (bottom)");
  core::FrontEndConfig base;
  const auto lowres_codec =
      core::train_lowres_codec(base, bench::shared_database());
  print_boxes("normal CS (paper top panel)", core::DecodeMode::kNormalCs,
              base, lowres_codec);
  print_boxes("Hybrid CS (paper bottom panel)", core::DecodeMode::kHybrid,
              base, lowres_codec);
  std::printf("# paper: hybrid boxes sit in 14-24 dB with small spread; "
              "normal boxes fall toward 0 at high CR\n");
  return 0;
}

// Ablation — noise stress (the MIT-BIH NST methodology applied to the
// front-end).  Regenerates one record profile with increasing EMG noise
// and measures reconstruction quality for both decoders at m = 96.
// In-band broadband noise is incompressible, so it bounds what any
// CS decoder can do; the hybrid's box tracks the *noisy* signal and keeps
// degrading gracefully.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"

int main() {
  using namespace csecg;
  bench::print_header("ablate_noise_stress",
                      "noise stress — EMG level vs reconstruction SNR at "
                      "m=96");

  core::FrontEndConfig config;
  config.measurements = 96;
  const auto lowres_codec =
      core::train_lowres_codec(config, bench::shared_database());
  const core::Codec codec(config, lowres_codec);

  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const std::size_t windows =
      std::max<std::size_t>(bench::windows_budget(), 2);

  std::printf("emg_mv,hybrid_snr_db,cs_snr_db\n");
  for (double emg_mv : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    ecg::RecordProfile profile = ecg::mitbih_surrogate_profiles()[0];
    profile.noise.emg_mv = emg_mv;
    const ecg::EcgRecord record =
        ecg::generate_record(profile, record_config, 2015);
    const auto hybrid =
        core::run_record(codec, record, windows, core::DecodeMode::kHybrid);
    const auto normal =
        core::run_record(codec, record, windows,
                         core::DecodeMode::kNormalCs);
    std::printf("%.2f,%.2f,%.2f\n", emg_mv, hybrid.mean_snr,
                normal.mean_snr);
  }
  std::printf("# expectation: both decoders approach the in-band noise "
              "ceiling; the hybrid stays above normal CS throughout\n");
  return 0;
}

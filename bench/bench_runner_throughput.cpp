// Experiment-runner throughput tracker (ISSUE 1).
//
// Measures end-to-end run_database decode throughput (windows/sec) for the
// optimized path at 1 and CSECG_THREADS threads, against a faithful
// emulation of the seed's serial per-window path: naive single-accumulator
// gemv/gemvᵀ behind generic std::function operators, with the Ψ operator
// chain re-materialized every window — exactly what the seed decoder did.
// Also measures the dense gemv kernel in GFLOP/s (blocked vs naive) and
// verifies the determinism guarantee (1-thread vs N-thread reports are
// bit-identical).  Results land in BENCH_runner.json so the perf
// trajectory is tracked from this PR onward.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/parallel/thread_pool.hpp"
#include "csecg/recovery/pdhg.hpp"
#include "csecg/sensing/lowres_channel.hpp"
#include "csecg/sensing/rmpi.hpp"

namespace {

using namespace csecg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The seed's gemv: one accumulator, no blocking (matrix.cpp @ v0).
linalg::Vector naive_multiply(const linalg::Matrix& a,
                              const linalg::Vector& x) {
  linalg::Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

/// The seed's gemvᵀ: row-major axpy sweep with the per-row zero branch.
linalg::Vector naive_multiply_transpose(const linalg::Matrix& a,
                                        const linalg::Vector& x) {
  linalg::Vector y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

/// Re-runs run_database's per-window work the way the seed did it: Φ as a
/// generic allocating operator over the naive kernels, Ψ re-materialized
/// per window, the same PDHG solve.  One-time setup (codebook training,
/// RMPI matrix, Φ norm estimate) happens before the clock starts, mirroring
/// what the seed decoder did at construction; only the per-window loop is
/// timed (seconds returned through `elapsed_seconds`).
std::size_t run_seed_path(const core::Codec& codec,
                          const coding::DeltaHuffmanCodec& lowres_codec,
                          const ecg::SyntheticDatabase& database,
                          std::size_t record_count,
                          std::size_t windows_per_record,
                          double& elapsed_seconds) {
  const core::FrontEndConfig& config = codec.config();
  sensing::RmpiConfig rmpi_config;
  rmpi_config.channels = config.measurements;
  rmpi_config.window = config.window;
  rmpi_config.chip_seed = config.chip_seed;
  rmpi_config.integrator_leakage = config.integrator_leakage;
  rmpi_config.adc_bits = config.measurement_adc_bits;
  rmpi_config.input_full_scale = config.dc_reference();
  const sensing::RmpiSimulator rmpi(rmpi_config);
  const linalg::Matrix phi_dense = rmpi.effective_matrix();
  const linalg::LinearOperator phi(
      phi_dense.rows(), phi_dense.cols(),
      [&phi_dense](const linalg::Vector& v) {
        return naive_multiply(phi_dense, v);
      },
      [&phi_dense](const linalg::Vector& v) {
        return naive_multiply_transpose(phi_dense, v);
      });
  const double phi_norm = linalg::operator_norm_estimate(phi, 60);
  const double sigma =
      config.sigma_scale * rmpi.expected_quantization_noise_norm();

  sensing::LowResConfig lowres_config;
  lowres_config.bits = config.lowres_bits;
  lowres_config.full_scale_bits = config.record_bits;
  const sensing::LowResChannel lowres(lowres_config);
  const dsp::Dwt dwt(config.wavelet, config.window, config.wavelet_levels);
  const double dc = config.dc_reference();

  std::size_t decoded = 0;
  const auto start = Clock::now();
  for (std::size_t r = 0; r < record_count; ++r) {
    const auto windows = ecg::extract_windows(database.record(r),
                                              config.window,
                                              windows_per_record);
    for (const auto& window : windows) {
      const core::Frame frame = codec.encoder().encode(window);
      const auto codes =
          lowres_codec.decode(frame.lowres_payload, config.window);
      const linalg::Vector lower = lowres.reconstruct(codes);
      recovery::BoxConstraint box;
      box.lower = lower;
      box.upper = lower;
      const double step = lowres.step();
      for (std::size_t i = 0; i < config.window; ++i) {
        box.lower[i] -= dc;
        box.upper[i] += step - dc;
      }
      recovery::PdhgOptions options = config.solver;
      options.phi_norm_hint = phi_norm;
      // Fresh operator chain per window, as in the seed decoder.
      const auto result = recovery::solve_bpdn(
          phi, dwt.synthesis_operator(), frame.measurements, sigma, box,
          options);
      ++decoded;
      (void)result;
    }
  }
  elapsed_seconds = seconds_since(start);
  return decoded;
}

struct KernelRates {
  double blocked_gflops = 0.0;
  double naive_gflops = 0.0;
};

KernelRates gemv_rates(std::size_t m, std::size_t n) {
  linalg::Matrix a(m, n);
  linalg::Vector x(n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = 1e-3 * static_cast<double>((i * 31 + j * 7) % 97) - 0.05;
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = 1e-2 * static_cast<double>((j * 13) % 89) - 0.4;
  }
  const double flops_per_call = 2.0 * static_cast<double>(m * n);
  const int reps = 2000;
  KernelRates rates;
  double sink = 0.0;

  linalg::Vector y(m);
  auto start = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    linalg::multiply_into(a, x, y);
    sink += y[0];
  }
  rates.blocked_gflops = flops_per_call * reps / seconds_since(start) / 1e9;

  start = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    const linalg::Vector z = naive_multiply(a, x);
    sink += z[0];
  }
  rates.naive_gflops = flops_per_call * reps / seconds_since(start) / 1e9;
  if (sink == 12345.6789) std::printf("#\n");  // Defeat dead-code removal.
  return rates;
}

bool reports_bit_identical(const std::vector<core::RecordReport>& a,
                           const std::vector<core::RecordReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].mean_prd != b[r].mean_prd || a[r].mean_snr != b[r].mean_snr ||
        a[r].overhead_percent != b[r].overhead_percent ||
        a[r].windows.size() != b[r].windows.size()) {
      return false;
    }
    for (std::size_t w = 0; w < a[r].windows.size(); ++w) {
      const auto& wa = a[r].windows[w];
      const auto& wb = b[r].windows[w];
      if (wa.prd != wb.prd || wa.snr != wb.snr ||
          wa.prd_raw != wb.prd_raw || wa.cs_bits != wb.cs_bits ||
          wa.lowres_bits != wb.lowres_bits ||
          wa.iterations != wb.iterations ||
          wa.converged != wb.converged) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_header("bench_runner_throughput",
                      "ISSUE 1 — parallel runner + solver hot path");

  const auto& database = bench::shared_database();
  core::FrontEndConfig config;
  const auto lowres_codec = core::train_lowres_codec(config, database, 3, 3);
  const core::Codec codec(config, lowres_codec);

  const std::size_t records = std::min<std::size_t>(bench::records_budget(), 8);
  const std::size_t windows = std::max<std::size_t>(bench::windows_budget(), 2);
  const std::size_t total_windows = records * windows;
  const std::size_t thread_count = parallel::default_thread_count() > 1
                                       ? parallel::default_thread_count()
                                       : 4;

  // Warm the record cache so generation cost is excluded from every arm.
  for (std::size_t r = 0; r < records; ++r) (void)database.record(r);

  std::printf("path,threads,seconds,windows_per_sec\n");

  double seed_seconds = 0.0;
  const std::size_t seed_windows = run_seed_path(
      codec, lowres_codec, database, records, windows, seed_seconds);
  const double seed_wps = static_cast<double>(seed_windows) / seed_seconds;
  std::printf("seed-serial,1,%.3f,%.2f\n", seed_seconds, seed_wps);

  parallel::ThreadPool serial_pool(1);
  auto start = Clock::now();
  const auto serial_reports = core::run_database(
      codec, database, records, windows, core::DecodeMode::kAuto,
      serial_pool);
  const double serial_seconds = seconds_since(start);
  const double serial_wps =
      static_cast<double>(total_windows) / serial_seconds;
  std::printf("optimized,1,%.3f,%.2f\n", serial_seconds, serial_wps);

  parallel::ThreadPool pool(thread_count);
  start = Clock::now();
  const auto threaded_reports = core::run_database(
      codec, database, records, windows, core::DecodeMode::kAuto, pool);
  const double threaded_seconds = seconds_since(start);
  const double threaded_wps =
      static_cast<double>(total_windows) / threaded_seconds;
  std::printf("optimized,%zu,%.3f,%.2f\n", thread_count, threaded_seconds,
              threaded_wps);

  const bool identical =
      reports_bit_identical(serial_reports, threaded_reports);
  const KernelRates rates = gemv_rates(config.measurements, config.window);

  std::printf("# determinism: %s\n",
              identical ? "bit-identical" : "MISMATCH");
  std::printf("# gemv %zux%zu: blocked %.2f GFLOP/s, naive %.2f GFLOP/s\n",
              config.measurements, config.window, rates.blocked_gflops,
              rates.naive_gflops);

  std::FILE* json = std::fopen("BENCH_runner.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_runner.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"runner_throughput\",\n");
  std::fprintf(json,
               "  \"workload\": {\"records\": %zu, \"windows_per_record\": "
               "%zu, \"window\": %zu, \"measurements\": %zu},\n",
               records, windows, config.window, config.measurements);
  std::fprintf(json,
               "  \"seed_serial\": {\"seconds\": %.4f, \"windows_per_sec\": "
               "%.3f},\n",
               seed_seconds, seed_wps);
  std::fprintf(json,
               "  \"optimized_serial\": {\"seconds\": %.4f, "
               "\"windows_per_sec\": %.3f},\n",
               serial_seconds, serial_wps);
  std::fprintf(json,
               "  \"optimized_threads\": {\"threads\": %zu, \"seconds\": "
               "%.4f, \"windows_per_sec\": %.3f},\n",
               thread_count, threaded_seconds, threaded_wps);
  std::fprintf(json, "  \"speedup_serial_vs_seed\": %.3f,\n",
               serial_wps / seed_wps);
  std::fprintf(json, "  \"speedup_threads_vs_seed\": %.3f,\n",
               threaded_wps / seed_wps);
  std::fprintf(json, "  \"speedup_threads_vs_serial\": %.3f,\n",
               threaded_wps / serial_wps);
  std::fprintf(json, "  \"bit_identical_across_threads\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json,
               "  \"gemv\": {\"m\": %zu, \"n\": %zu, \"blocked_gflops\": "
               "%.3f, \"naive_gflops\": %.3f}\n",
               config.measurements, config.window, rates.blocked_gflops,
               rates.naive_gflops);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("# wrote BENCH_runner.json\n");
  return identical ? 0 : 2;
}

// Ablation — recovery algorithm (DESIGN.md §5.1).  Same windows, same Φ,
// same wavelet dictionary; compares the constrained PDHG decoders (the
// paper's problem (1) with and without the box) against the unconstrained
// LASSO solvers (FISTA, ADMM) and greedy pursuit (OMP, CoSaMP) on the
// synthesis dictionary A = ΦΨ.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/recovery/admm.hpp"
#include "csecg/recovery/fista.hpp"
#include "csecg/recovery/greedy.hpp"
#include "csecg/recovery/spgl1.hpp"

namespace {

using namespace csecg;

struct Timed {
  double snr = 0.0;
  double millis = 0.0;
};

template <typename Fn>
Timed timed_snr(const linalg::Vector& window, Fn&& reconstruct) {
  const auto start = std::chrono::steady_clock::now();
  const linalg::Vector x = reconstruct();
  const auto stop = std::chrono::steady_clock::now();
  Timed out;
  out.snr = metrics::snr_from_prd(metrics::prd_zero_mean(window, x));
  out.millis = std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

}  // namespace

int main() {
  bench::print_header("ablate_solver",
                      "design ablation — recovery algorithm at m=128");

  const auto& database = bench::shared_database();
  core::FrontEndConfig config;
  config.measurements = 128;
  const auto lowres_codec = core::train_lowres_codec(config, database);
  const core::Codec codec(config, lowres_codec);

  // Shared ingredients for the non-core solvers.
  sensing::RmpiConfig rmpi_config;
  rmpi_config.channels = config.measurements;
  rmpi_config.window = config.window;
  rmpi_config.chip_seed = config.chip_seed;
  rmpi_config.input_full_scale = config.dc_reference();
  const sensing::RmpiSimulator rmpi(rmpi_config);
  const dsp::Dwt dwt(config.wavelet, config.window, config.wavelet_levels);
  // Dense A = ΦΨ, built once and cached inside the decoder (it uses the
  // same leakage-aware Φ its own solves see).
  const linalg::Matrix& a = codec.decoder().synthesis_dictionary();
  const auto a_op = linalg::LinearOperator::from_matrix(a);

  const std::size_t record_count =
      std::min<std::size_t>(bench::records_budget(), 4);
  std::printf("solver,mean_snr_db,mean_ms\n");

  struct Accumulator {
    double snr = 0.0;
    double ms = 0.0;
    int count = 0;
    void add(const Timed& t) {
      snr += t.snr;
      ms += t.millis;
      ++count;
    }
  };
  Accumulator pdhg_hybrid, pdhg_normal, spgl1, fista, admm, omp, cosamp;

  for (std::size_t r = 0; r < record_count; ++r) {
    const linalg::Vector window = database.record(r).window(720, 512);
    const core::Frame frame = codec.encoder().encode(window);
    const linalg::Vector& y = frame.measurements;
    const double dc = config.dc_reference();

    pdhg_hybrid.add(timed_snr(window, [&] {
      return codec.decoder().decode(frame, core::DecodeMode::kHybrid).x;
    }));
    pdhg_normal.add(timed_snr(window, [&] {
      return codec.decoder().decode(frame, core::DecodeMode::kNormalCs).x;
    }));
    spgl1.add(timed_snr(window, [&] {
      recovery::Spgl1Options options;
      options.max_root_iterations = 10;
      options.max_inner_iterations = 150;
      const double sigma = 1.5 * rmpi.expected_quantization_noise_norm();
      const auto result = recovery::solve_bpdn_spgl1(
          linalg::LinearOperator::from_matrix(a), y, sigma, options);
      linalg::Vector x = dwt.inverse(result.coefficients);
      for (auto& v : x) v += dc;
      return x;
    }));
    fista.add(timed_snr(window, [&] {
      recovery::FistaOptions options;
      options.max_iterations = 400;
      const auto result = recovery::solve_lasso_fista(a_op, y, 50.0, options);
      linalg::Vector x = dwt.inverse(result.coefficients);
      for (auto& v : x) v += dc;
      return x;
    }));
    admm.add(timed_snr(window, [&] {
      recovery::AdmmOptions options;
      options.max_iterations = 400;
      const auto result = recovery::solve_lasso_admm(a, y, 50.0, options);
      linalg::Vector x = dwt.inverse(result.coefficients);
      for (auto& v : x) v += dc;
      return x;
    }));
    omp.add(timed_snr(window, [&] {
      recovery::GreedyOptions options;
      options.max_sparsity = 48;
      options.residual_tol = 1e-3;
      const auto result = recovery::solve_omp(a, y, options);
      linalg::Vector x = dwt.inverse(result.coefficients);
      for (auto& v : x) v += dc;
      return x;
    }));
    cosamp.add(timed_snr(window, [&] {
      recovery::GreedyOptions options;
      options.max_sparsity = 48;
      options.residual_tol = 1e-3;
      const auto result = recovery::solve_cosamp(a, y, options);
      linalg::Vector x = dwt.inverse(result.coefficients);
      for (auto& v : x) v += dc;
      return x;
    }));
  }

  auto print_row = [](const char* name, const Accumulator& acc) {
    std::printf("%s,%.2f,%.1f\n", name, acc.snr / acc.count,
                acc.ms / acc.count);
  };
  print_row("pdhg-hybrid (problem 1)", pdhg_hybrid);
  print_row("pdhg-normal (bpdn)", pdhg_normal);
  print_row("spgl1 (bpdn)", spgl1);
  print_row("fista-lasso", fista);
  print_row("admm-lasso", admm);
  print_row("omp", omp);
  print_row("cosamp", cosamp);
  std::printf("# expectation: hybrid PDHG dominates; unconstrained solvers "
              "cluster below it; greedy trails at this m/n\n");
  return 0;
}

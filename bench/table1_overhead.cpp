// Table I — average overhead Dᵢ (%) of the low-resolution channel versus a
// 12-bit original, for bit resolutions 10..3 (Eq. 2: Dᵢ = CRᵢ·i/12).
// Paper row: 26.3, 17.6, 11.4, 7.8, 5.6, 4.2, 3.1, 2.3.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "csecg/coding/delta.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/sensing/lowres_channel.hpp"

int main() {
  using namespace csecg;
  bench::print_header("table1_overhead",
                      "Table I — side-channel overhead Dᵢ for bit "
                      "resolutions 10..3");

  const auto& database = bench::shared_database();
  const std::size_t train_records = bench::records_budget();
  const std::size_t windows =
      std::max<std::size_t>(bench::windows_budget(), 4);
  const std::size_t eval_start = train_records;
  const std::size_t eval_count = std::min<std::size_t>(8, 48 - eval_start);

  const double paper[] = {26.3, 17.6, 11.4, 7.8, 5.6, 4.2, 3.1, 2.3};
  std::printf("bits,huffman_overhead_percent,entropy_overhead_percent,"
              "paper_percent\n");
  int row = 0;
  for (int bits = 10; bits >= 3; --bits, ++row) {
    core::FrontEndConfig config;
    config.lowres_bits = bits;
    const auto codec =
        core::train_lowres_codec(config, database, train_records, windows);
    sensing::LowResConfig lowres_config;
    lowres_config.bits = bits;
    const sensing::LowResChannel channel(lowres_config);

    double total_bits = 0.0;
    double total_raw_bits = 0.0;
    std::map<std::int64_t, std::uint64_t> delta_counts;
    double total_samples = 0.0;
    for (std::size_t r = eval_start; r < eval_start + eval_count; ++r) {
      for (const auto& window :
           ecg::extract_windows(database.record(r), 512, windows)) {
        const auto codes = channel.sample(window).codes;
        total_bits += static_cast<double>(codec.encoded_bits(codes));
        total_raw_bits += static_cast<double>(window.size()) * bits;
        total_samples += static_cast<double>(window.size());
        for (auto diff : coding::delta_encode(codes).diffs) {
          ++delta_counts[diff];
        }
      }
    }
    const double fraction = total_bits / total_raw_bits;  // CRᵢ of Eq. 2.
    const double overhead = metrics::side_channel_overhead(fraction, bits);
    const std::vector<std::pair<std::int64_t, std::uint64_t>> hist(
        delta_counts.begin(), delta_counts.end());
    const double entropy_overhead =
        coding::entropy_bits(hist) / 12.0 * 100.0;
    std::printf("%d,%.2f,%.2f,%.1f\n", bits, overhead, entropy_overhead,
                paper[row]);
  }
  std::printf("# Dᵢ = CRᵢ·i/12 per Eq. 2.  Scalar Huffman floors at 1 "
              "bit/sample; the entropy column is the block-coding ideal "
              "the paper's low-depth rows track\n");
  return 0;
}

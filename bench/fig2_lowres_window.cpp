// Fig. 2 — one fixed-size window seen by the low-resolution path: the
// original ECG, the 7-bit staircase, and the reconstruction bound area.
// Emits the plot series as CSV rows (time, original, low-res lower bound,
// upper bound) plus containment diagnostics.
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/sensing/lowres_channel.hpp"

int main() {
  using namespace csecg;
  bench::print_header("fig2_lowres_window",
                      "Fig. 2 — example 7-bit low-resolution window and "
                      "bound area");

  const auto& database = bench::shared_database();
  const ecg::EcgRecord& record = database.record(0);
  const std::size_t n = 360;  // One second at 360 Hz, as plotted.
  const linalg::Vector window = record.window(720, n);

  sensing::LowResConfig config;
  config.bits = 7;
  const sensing::LowResChannel channel(config);
  const sensing::LowResOutput out = channel.sample(window);

  std::printf("step d = %.0f ADC units (7-bit over 11-bit range)\n",
              out.step);
  std::printf("sec,original,lowres_lower,lowres_upper\n");
  std::size_t contained = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (out.lower[i] <= window[i] && window[i] <= out.upper[i]) ++contained;
    if (i % 4 == 0) {  // Decimate the printout; shape is unaffected.
      std::printf("%.4f,%.0f,%.0f,%.0f\n",
                  static_cast<double>(i) / record.config.fs_hz, window[i],
                  out.lower[i], out.upper[i]);
    }
  }
  std::printf("# bound containment: %zu/%zu samples inside [lower, upper]\n",
              contained, n);
  return 0;
}

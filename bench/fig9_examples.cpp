// Fig. 9 — example original vs hybrid-reconstructed windows at
// δ = m/n ∈ {6%, 12%, 25%}, with the achieved SNR in each title.  Paper
// anchors: δ = 6% → 18.7 dB, δ = 12% → 19.7 dB (raw-PRD convention; both
// conventions are printed here).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/metrics/quality.hpp"

int main() {
  using namespace csecg;
  bench::print_header("fig9_examples",
                      "Fig. 9 — example reconstructions at delta = m/n of "
                      "6/12/25%");

  const auto& database = bench::shared_database();
  core::FrontEndConfig base;
  const auto lowres_codec = core::train_lowres_codec(base, database);
  const linalg::Vector window = database.record(0).window(720, 512);

  for (double delta : {0.06, 0.12, 0.25}) {
    core::FrontEndConfig config = base;
    config.measurements = static_cast<std::size_t>(
        std::lround(delta * static_cast<double>(config.window)));
    const core::Codec codec(config, lowres_codec);
    const auto result = codec.roundtrip(window, core::DecodeMode::kHybrid);
    const double snr_zm =
        metrics::snr_from_prd(metrics::prd_zero_mean(window, result.x));
    const double snr_raw =
        metrics::snr_from_prd(metrics::prd(window, result.x));
    std::printf("delta=%.0f%% (m=%zu) -> SNR %.1f dB zero-mean / %.1f dB "
                "raw\n",
                delta * 100.0, config.measurements, snr_zm, snr_raw);
    // Print a decimated overlay of the original and reconstruction.
    std::printf("sec,original_mv,reconstructed_mv\n");
    const auto& rc = database.record(0).config;
    for (std::size_t i = 0; i < window.size(); i += 8) {
      std::printf("%.4f,%.4f,%.4f\n",
                  static_cast<double>(i) / rc.fs_hz,
                  (window[i] - rc.adc_offset) / rc.adc_gain,
                  (result.x[i] - rc.adc_offset) / rc.adc_gain);
    }
    std::printf("\n");
  }
  std::printf("# paper: delta=6%% -> 18.7 dB, delta=12%% -> 19.7 dB\n");
  return 0;
}

// Fig. 4 — probability density of the difference between consecutive
// quantized samples of the low-resolution channel, for 10/8/6/4-bit
// resolution.  The paper's point: the delta distribution is sharply
// non-uniform, so Huffman coding compresses it well.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "csecg/coding/delta.hpp"
#include "csecg/sensing/lowres_channel.hpp"

int main() {
  using namespace csecg;
  bench::print_header("fig4_delta_pdf",
                      "Fig. 4 — pdf of quantized-sample differences at "
                      "10/8/6/4-bit resolution");

  const auto& database = bench::shared_database();
  const std::size_t records = bench::records_budget();
  const std::size_t windows = std::max<std::size_t>(bench::windows_budget(),
                                                    4);

  for (int bits : {10, 8, 6, 4}) {
    sensing::LowResConfig config;
    config.bits = bits;
    const sensing::LowResChannel channel(config);
    std::map<std::int64_t, std::uint64_t> counts;
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < records; ++r) {
      for (const auto& window :
           ecg::extract_windows(database.record(r), 512, windows)) {
        const auto out = channel.sample(window);
        const auto enc = coding::delta_encode(out.codes);
        for (auto diff : enc.diffs) {
          ++counts[diff];
          ++total;
        }
      }
    }
    // Print the pdf over the paper's [-15, 15] delta axis.
    std::printf("bits=%d  (peak at zero = %.3f)\n", bits,
                counts.count(0)
                    ? static_cast<double>(counts.at(0)) /
                          static_cast<double>(total)
                    : 0.0);
    std::printf("difference,pdf\n");
    for (std::int64_t d = -15; d <= 15; ++d) {
      const double p = counts.count(d)
                           ? static_cast<double>(counts.at(d)) /
                                 static_cast<double>(total)
                           : 0.0;
      std::printf("%lld,%.6f\n", static_cast<long long>(d), p);
    }
    std::vector<std::pair<std::int64_t, std::uint64_t>> hist(counts.begin(),
                                                             counts.end());
    std::printf("# entropy: %.3f bits/sample\n\n",
                coding::entropy_bits(hist));
  }
  return 0;
}

// run_report: one-command observability report for a front-end run.
//
// Runs a synthetic-database experiment with the quality ledger (and
// optionally tracing) armed, then prints a human-readable report: the
// per-record table, the worst-N windows by SNR, the MAD-flagged outliers
// and the headline pipeline counters.  On request it also drops the raw
// artifacts next to the report:
//
//   --records N      records to run (default 4)
//   --windows N      windows per record (default 6)
//   --worst N        worst windows to list (default 5)
//   --link           run the lossy-link pipeline instead of the clean codec
//   --ledger FILE    write the per-window quality ledger (JSONL)
//   --trace FILE     enable tracing and write Chrome trace-event JSON
//                    (open in ui.perfetto.dev or chrome://tracing)
//   --snapshot FILE  write the obs counters/histograms snapshot JSON
//
// The ledger rows contain only deterministic fields, so two runs with
// different CSECG_THREADS settings produce byte-identical --ledger output.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "csecg/core/runner.hpp"
#include "csecg/link/session.hpp"
#include "csecg/obs/ledger.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/trace.hpp"

namespace {

using namespace csecg;

struct Options {
  std::size_t records = 4;
  std::size_t windows = 6;
  std::size_t worst = 5;
  bool link = false;
  const char* ledger_path = nullptr;
  const char* trace_path = nullptr;
  const char* snapshot_path = nullptr;
};

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr,
               "run_report: %s\n"
               "usage: run_report [--records N] [--windows N] [--worst N] "
               "[--link] [--ledger FILE] [--trace FILE] [--snapshot FILE]\n",
               message);
  std::exit(1);
}

std::size_t parse_count(const char* text, const char* flag) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 1) {
    std::fprintf(stderr, "run_report: %s expects a positive integer, got '%s'\n",
                 flag, text);
    std::exit(1);
  }
  return static_cast<std::size_t>(value);
}

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--records") == 0 && has_value) {
      opts.records = parse_count(argv[++i], arg);
    } else if (std::strcmp(arg, "--windows") == 0 && has_value) {
      opts.windows = parse_count(argv[++i], arg);
    } else if (std::strcmp(arg, "--worst") == 0 && has_value) {
      opts.worst = parse_count(argv[++i], arg);
    } else if (std::strcmp(arg, "--link") == 0) {
      opts.link = true;
    } else if (std::strcmp(arg, "--ledger") == 0 && has_value) {
      opts.ledger_path = argv[++i];
    } else if (std::strcmp(arg, "--trace") == 0 && has_value) {
      opts.trace_path = argv[++i];
    } else if (std::strcmp(arg, "--snapshot") == 0 && has_value) {
      opts.snapshot_path = argv[++i];
    } else {
      usage_error(arg);
    }
  }
  return opts;
}

bool write_file(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "run_report: cannot write %s\n", path);
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

/// A window flattened out of its record report, for the worst-N ranking.
struct RankedWindow {
  std::string record;
  std::size_t window = 0;
  double snr = 0.0;
  double prd = 0.0;
  int iterations = 0;
  bool converged = false;
  bool outlier = false;
};

void print_worst(std::vector<RankedWindow> ranked, std::size_t worst) {
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedWindow& a, const RankedWindow& b) {
              if (a.snr != b.snr) return a.snr < b.snr;
              if (a.record != b.record) return a.record < b.record;
              return a.window < b.window;
            });
  const std::size_t n = std::min(worst, ranked.size());
  std::printf("\nworst %zu windows by SNR:\n", n);
  std::printf("  %-10s %6s %9s %9s %6s %5s %s\n", "record", "win", "snr(dB)",
              "prd(%)", "iters", "conv", "flag");
  for (std::size_t i = 0; i < n; ++i) {
    const RankedWindow& w = ranked[i];
    std::printf("  %-10s %6zu %9.2f %9.2f %6d %5s %s\n", w.record.c_str(),
                w.window, w.snr, w.prd, w.iterations,
                w.converged ? "yes" : "NO", w.outlier ? "OUTLIER" : "");
  }
}

int run_clean(const Options& opts) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);

  core::FrontEndConfig config;
  config.window = 256;
  config.measurements = 48;
  config.wavelet_levels = 4;
  config.solver.max_iterations = 400;
  const auto lowres_codec = core::train_lowres_codec(config, database, 3, 3);
  const core::Codec codec(config, lowres_codec);

  const auto reports = core::run_database(codec, database, opts.records,
                                          opts.windows, core::DecodeMode::kAuto);

  std::printf("clean-codec run: %zu records x %zu windows (n=%zu, m=%zu)\n\n",
              opts.records, opts.windows, config.window, config.measurements);
  std::printf("  %-10s %9s %9s %8s %6s %9s\n", "record", "snr(dB)", "prd(%)",
              "netCR%", "conv", "outliers");
  std::vector<RankedWindow> ranked;
  for (const auto& r : reports) {
    std::printf("  %-10s %9.2f %9.2f %8.1f %3zu/%zu %9zu\n",
                r.record_name.c_str(), r.mean_snr, r.mean_prd,
                r.net_cr_percent, r.converged_windows, r.windows.size(),
                r.outlier_windows.size());
    std::size_t next_outlier = 0;
    for (std::size_t w = 0; w < r.windows.size(); ++w) {
      const bool outlier = next_outlier < r.outlier_windows.size() &&
                           r.outlier_windows[next_outlier] == w;
      if (outlier) ++next_outlier;
      ranked.push_back({r.record_name, w, r.windows[w].snr, r.windows[w].prd,
                        r.windows[w].iterations, r.windows[w].converged,
                        outlier});
    }
  }
  print_worst(std::move(ranked), opts.worst);
  return 0;
}

int run_link(const Options& opts) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);

  core::FrontEndConfig config;
  config.window = 256;
  config.measurements = 48;
  config.wavelet_levels = 4;
  config.solver.max_iterations = 400;
  const auto lowres_codec = core::train_lowres_codec(config, database, 3, 3);

  // The telemetry_link example's ~5% burst-loss channel with selective
  // repeat — the configuration whose outliers are worth staring at.
  link::LinkSessionConfig link;
  link.channel.kind = link::ChannelKind::kGilbertElliott;
  link.channel.ge_good_to_bad = 0.02;
  link.channel.ge_bad_to_good = 0.20;
  link.channel.ge_erasure_bad = 0.55;
  link.arq.mode = link::ArqMode::kSelectiveRepeat;
  link.arq.max_retries = 4;
  const link::LinkSession session(config, lowres_codec, link);

  const auto reports = link::run_link_database(session, database, opts.records,
                                               opts.windows);

  std::printf(
      "lossy-link run: %zu records x %zu windows (n=%zu, m=%zu, ~5%% loss)\n\n",
      opts.records, opts.windows, config.window, config.measurements);
  std::printf("  %-10s %9s %9s %9s %6s %6s %9s\n", "record", "snr(dB)",
              "prd(%)", "delivery", "retx", "conv", "outliers");
  std::vector<RankedWindow> ranked;
  for (const auto& r : reports) {
    std::printf("  %-10s %9.2f %9.2f %8.1f%% %6zu %3zu/%zu %9zu\n",
                r.record_name.c_str(), r.mean_snr, r.mean_prd,
                r.delivery_rate * 100.0, r.retransmissions,
                r.converged_windows, r.solved_windows,
                r.outlier_windows.size());
    std::size_t next_outlier = 0;
    for (std::size_t w = 0; w < r.windows.size(); ++w) {
      const bool outlier = next_outlier < r.outlier_windows.size() &&
                           r.outlier_windows[next_outlier] == w;
      if (outlier) ++next_outlier;
      ranked.push_back({r.record_name, w, r.windows[w].snr, r.windows[w].prd,
                        r.windows[w].iterations, r.windows[w].converged,
                        outlier});
    }
  }
  print_worst(std::move(ranked), opts.worst);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);

  // The ledger is this tool's raison d'être; tracing only when asked (it
  // costs a per-thread ring buffer).
  obs::set_ledger_enabled(true);
  if (opts.trace_path != nullptr) obs::set_trace_enabled(true);

  const int status = opts.link ? run_link(opts) : run_clean(opts);
  if (status != 0) return status;

  // Headline counters, straight from the registry the run fed.
  std::printf("\npipeline counters:\n");
  for (const char* name :
       {"runner.windows", "runner.non_converged_windows", "link.windows",
        "link.packets", "link.dropped_packets", "link.arq.retransmissions",
        "solver.pdhg.solves", "solver.pdhg.iterations",
        "trace.dropped_events"}) {
    const std::uint64_t value = obs::counter(name).value();
    if (value > 0) std::printf("  %-28s %12llu\n", name,
                               static_cast<unsigned long long>(value));
  }

  if (opts.ledger_path != nullptr &&
      write_file(opts.ledger_path, obs::ledger_jsonl())) {
    std::printf("\nwrote %s (%zu rows)\n", opts.ledger_path,
                obs::ledger_size());
  }
  if (opts.trace_path != nullptr &&
      write_file(opts.trace_path, obs::trace_json())) {
    std::printf("wrote %s (%zu events — open in ui.perfetto.dev)\n",
                opts.trace_path, obs::trace_event_count());
  }
  if (opts.snapshot_path != nullptr &&
      write_file(opts.snapshot_path, obs::snapshot_json())) {
    std::printf("wrote %s\n", opts.snapshot_path);
  }
  return 0;
}

// fuzz_driver: the deterministic fuzz harness as an operator command.
//
// Runs the structure-aware mutation campaign from src/fuzz against one or
// all untrusted-input decoders and reports the outcome statistics.  The
// campaign is a pure function of (target, seed, iterations), so any
// contract violation it prints is reproducible with the same flags on
// any machine — CI runs the exact invocations documented in DESIGN.md §9.
//
//   --target NAME    one of frame, codebook, zero_run, delta_huffman,
//                    bitreader, packet, reassembler, or "all" (default)
//   --seed N         campaign seed (default 1)
//   --iters N        iterations per target (default 100000)
//   --corpus DIR     replay every .bin under DIR/<target>/ before fuzzing
//   --write-corpus DIR  write the curated regression corpus and exit
//   --list           print the target names and exit
//
// Exit status: 0 when every campaign and replay honours the decoder
// contract, 1 on the first violation (its message carries the input as
// hex), 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "csecg/fuzz/targets.hpp"

namespace {

using namespace csecg;

struct Options {
  const char* target = "all";
  std::uint64_t seed = 1;
  std::uint64_t iters = 100000;
  const char* corpus_dir = nullptr;
  const char* write_corpus_dir = nullptr;
};

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr,
               "fuzz_driver: %s\n"
               "usage: fuzz_driver [--target NAME|all] [--seed N] "
               "[--iters N] [--corpus DIR] [--write-corpus DIR] [--list]\n",
               message);
  std::exit(2);
}

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "fuzz_driver: %s expects an integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return value;
}

std::vector<fuzz::Target> selected_targets(const Options& options) {
  if (std::strcmp(options.target, "all") == 0) return fuzz::all_targets();
  const auto target = fuzz::target_from_name(options.target);
  if (!target.has_value()) usage_error("unknown --target name");
  return {*target};
}

// Replays every committed corpus file for `target` through run_one.
// Returns the number of files replayed.
std::size_t replay_corpus(fuzz::Target target, const char* dir) {
  const std::filesystem::path target_dir =
      std::filesystem::path(dir) / std::string(fuzz::target_name(target));
  if (!std::filesystem::is_directory(target_dir)) return 0;
  std::size_t replayed = 0;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(target_dir)) {
    if (entry.path().extension() == ".bin") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    (void)fuzz::run_one(target, bytes);
    ++replayed;
  }
  return replayed;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing flag value");
      return argv[++i];
    };
    if (std::strcmp(arg, "--target") == 0) {
      options.target = value();
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.seed = parse_u64(value(), "--seed");
    } else if (std::strcmp(arg, "--iters") == 0) {
      options.iters = parse_u64(value(), "--iters");
    } else if (std::strcmp(arg, "--corpus") == 0) {
      options.corpus_dir = value();
    } else if (std::strcmp(arg, "--write-corpus") == 0) {
      options.write_corpus_dir = value();
    } else if (std::strcmp(arg, "--list") == 0) {
      for (const fuzz::Target target : fuzz::all_targets()) {
        std::printf("%.*s\n",
                    static_cast<int>(fuzz::target_name(target).size()),
                    fuzz::target_name(target).data());
      }
      return 0;
    } else {
      usage_error("unknown flag");
    }
  }

  try {
    if (options.write_corpus_dir != nullptr) {
      const std::size_t written =
          fuzz::write_regression_corpus(options.write_corpus_dir);
      std::printf("wrote %zu corpus files under %s\n", written,
                  options.write_corpus_dir);
      return 0;
    }

    for (const fuzz::Target target : selected_targets(options)) {
      const std::string name(fuzz::target_name(target));
      if (options.corpus_dir != nullptr) {
        const std::size_t replayed =
            replay_corpus(target, options.corpus_dir);
        std::printf("%-14s corpus replay: %zu files ok\n", name.c_str(),
                    replayed);
      }
      const fuzz::FuzzReport report =
          fuzz::run_target(target, options.seed, options.iters);
      std::printf(
          "%-14s seed=%llu iters=%llu accepted=%llu rejected=%llu "
          "pool=%zu fingerprint=%016llx\n",
          name.c_str(),
          static_cast<unsigned long long>(options.seed),
          static_cast<unsigned long long>(report.iterations),
          static_cast<unsigned long long>(report.accepted),
          static_cast<unsigned long long>(report.rejected),
          report.pool_size,
          static_cast<unsigned long long>(report.fingerprint));
    }
  } catch (const fuzz::ContractViolation& e) {
    std::fprintf(stderr, "fuzz_driver: %s\n", e.what());
    return 1;
  }
  return 0;
}

# Empty compiler generated dependencies file for csecg_core.
# This may be replaced when dependencies are built.

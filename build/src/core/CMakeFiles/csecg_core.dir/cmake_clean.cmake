file(REMOVE_RECURSE
  "CMakeFiles/csecg_core.dir/src/adaptive.cpp.o"
  "CMakeFiles/csecg_core.dir/src/adaptive.cpp.o.d"
  "CMakeFiles/csecg_core.dir/src/config.cpp.o"
  "CMakeFiles/csecg_core.dir/src/config.cpp.o.d"
  "CMakeFiles/csecg_core.dir/src/frame.cpp.o"
  "CMakeFiles/csecg_core.dir/src/frame.cpp.o.d"
  "CMakeFiles/csecg_core.dir/src/frontend.cpp.o"
  "CMakeFiles/csecg_core.dir/src/frontend.cpp.o.d"
  "CMakeFiles/csecg_core.dir/src/runner.cpp.o"
  "CMakeFiles/csecg_core.dir/src/runner.cpp.o.d"
  "CMakeFiles/csecg_core.dir/src/streaming.cpp.o"
  "CMakeFiles/csecg_core.dir/src/streaming.cpp.o.d"
  "libcsecg_core.a"
  "libcsecg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

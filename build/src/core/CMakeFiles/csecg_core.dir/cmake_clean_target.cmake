file(REMOVE_RECURSE
  "libcsecg_core.a"
)

# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Release")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/rng/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/linalg/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/dsp/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/metrics/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/ecg/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sensing/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/recovery/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/coding/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/power/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/rng/libcsecg_rng.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/linalg/libcsecg_linalg.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/dsp/libcsecg_dsp.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/metrics/libcsecg_metrics.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/ecg/libcsecg_ecg.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sensing/libcsecg_sensing.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/recovery/libcsecg_recovery.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/coding/libcsecg_coding.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/power/libcsecg_power.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libcsecg_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/common/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/rng/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/linalg/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/dsp/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/metrics/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/ecg/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/sensing/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/recovery/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/coding/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/power/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/core/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/csecg/csecgConfig.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/csecg/csecgConfig.cmake"
         "/root/repo/build/src/CMakeFiles/Export/905b39d5c3c6ea273f00133b2a0681af/csecgConfig.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/csecg/csecgConfig-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/csecg/csecgConfig.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/csecg" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/905b39d5c3c6ea273f00133b2a0681af/csecgConfig.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ee][Aa][Ss][Ee])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/csecg" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/905b39d5c3c6ea273f00133b2a0681af/csecgConfig-release.cmake")
  endif()
endif()


file(REMOVE_RECURSE
  "CMakeFiles/csecg_coding.dir/src/bitstream.cpp.o"
  "CMakeFiles/csecg_coding.dir/src/bitstream.cpp.o.d"
  "CMakeFiles/csecg_coding.dir/src/delta.cpp.o"
  "CMakeFiles/csecg_coding.dir/src/delta.cpp.o.d"
  "CMakeFiles/csecg_coding.dir/src/delta_huffman_codec.cpp.o"
  "CMakeFiles/csecg_coding.dir/src/delta_huffman_codec.cpp.o.d"
  "CMakeFiles/csecg_coding.dir/src/huffman.cpp.o"
  "CMakeFiles/csecg_coding.dir/src/huffman.cpp.o.d"
  "CMakeFiles/csecg_coding.dir/src/zero_run_codec.cpp.o"
  "CMakeFiles/csecg_coding.dir/src/zero_run_codec.cpp.o.d"
  "libcsecg_coding.a"
  "libcsecg_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcsecg_coding.a"
)

# Empty dependencies file for csecg_coding.
# This may be replaced when dependencies are built.

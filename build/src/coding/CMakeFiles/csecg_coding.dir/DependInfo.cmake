
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/src/bitstream.cpp" "src/coding/CMakeFiles/csecg_coding.dir/src/bitstream.cpp.o" "gcc" "src/coding/CMakeFiles/csecg_coding.dir/src/bitstream.cpp.o.d"
  "/root/repo/src/coding/src/delta.cpp" "src/coding/CMakeFiles/csecg_coding.dir/src/delta.cpp.o" "gcc" "src/coding/CMakeFiles/csecg_coding.dir/src/delta.cpp.o.d"
  "/root/repo/src/coding/src/delta_huffman_codec.cpp" "src/coding/CMakeFiles/csecg_coding.dir/src/delta_huffman_codec.cpp.o" "gcc" "src/coding/CMakeFiles/csecg_coding.dir/src/delta_huffman_codec.cpp.o.d"
  "/root/repo/src/coding/src/huffman.cpp" "src/coding/CMakeFiles/csecg_coding.dir/src/huffman.cpp.o" "gcc" "src/coding/CMakeFiles/csecg_coding.dir/src/huffman.cpp.o.d"
  "/root/repo/src/coding/src/zero_run_codec.cpp" "src/coding/CMakeFiles/csecg_coding.dir/src/zero_run_codec.cpp.o" "gcc" "src/coding/CMakeFiles/csecg_coding.dir/src/zero_run_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcsecg_metrics.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/src/quality.cpp" "src/metrics/CMakeFiles/csecg_metrics.dir/src/quality.cpp.o" "gcc" "src/metrics/CMakeFiles/csecg_metrics.dir/src/quality.cpp.o.d"
  "/root/repo/src/metrics/src/stats.cpp" "src/metrics/CMakeFiles/csecg_metrics.dir/src/stats.cpp.o" "gcc" "src/metrics/CMakeFiles/csecg_metrics.dir/src/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/csecg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/csecg_metrics.dir/src/quality.cpp.o"
  "CMakeFiles/csecg_metrics.dir/src/quality.cpp.o.d"
  "CMakeFiles/csecg_metrics.dir/src/stats.cpp.o"
  "CMakeFiles/csecg_metrics.dir/src/stats.cpp.o.d"
  "libcsecg_metrics.a"
  "libcsecg_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for csecg_metrics.
# This may be replaced when dependencies are built.

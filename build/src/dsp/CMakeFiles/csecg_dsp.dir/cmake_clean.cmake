file(REMOVE_RECURSE
  "CMakeFiles/csecg_dsp.dir/src/dct.cpp.o"
  "CMakeFiles/csecg_dsp.dir/src/dct.cpp.o.d"
  "CMakeFiles/csecg_dsp.dir/src/dwt.cpp.o"
  "CMakeFiles/csecg_dsp.dir/src/dwt.cpp.o.d"
  "CMakeFiles/csecg_dsp.dir/src/fft.cpp.o"
  "CMakeFiles/csecg_dsp.dir/src/fft.cpp.o.d"
  "CMakeFiles/csecg_dsp.dir/src/fir.cpp.o"
  "CMakeFiles/csecg_dsp.dir/src/fir.cpp.o.d"
  "CMakeFiles/csecg_dsp.dir/src/wavelet.cpp.o"
  "CMakeFiles/csecg_dsp.dir/src/wavelet.cpp.o.d"
  "libcsecg_dsp.a"
  "libcsecg_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/src/dct.cpp" "src/dsp/CMakeFiles/csecg_dsp.dir/src/dct.cpp.o" "gcc" "src/dsp/CMakeFiles/csecg_dsp.dir/src/dct.cpp.o.d"
  "/root/repo/src/dsp/src/dwt.cpp" "src/dsp/CMakeFiles/csecg_dsp.dir/src/dwt.cpp.o" "gcc" "src/dsp/CMakeFiles/csecg_dsp.dir/src/dwt.cpp.o.d"
  "/root/repo/src/dsp/src/fft.cpp" "src/dsp/CMakeFiles/csecg_dsp.dir/src/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/csecg_dsp.dir/src/fft.cpp.o.d"
  "/root/repo/src/dsp/src/fir.cpp" "src/dsp/CMakeFiles/csecg_dsp.dir/src/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/csecg_dsp.dir/src/fir.cpp.o.d"
  "/root/repo/src/dsp/src/wavelet.cpp" "src/dsp/CMakeFiles/csecg_dsp.dir/src/wavelet.cpp.o" "gcc" "src/dsp/CMakeFiles/csecg_dsp.dir/src/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/csecg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcsecg_dsp.a"
)

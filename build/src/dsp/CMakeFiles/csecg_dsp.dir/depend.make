# Empty dependencies file for csecg_dsp.
# This may be replaced when dependencies are built.

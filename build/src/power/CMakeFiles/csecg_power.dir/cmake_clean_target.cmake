file(REMOVE_RECURSE
  "libcsecg_power.a"
)

# Empty compiler generated dependencies file for csecg_power.
# This may be replaced when dependencies are built.

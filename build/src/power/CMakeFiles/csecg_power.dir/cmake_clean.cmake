file(REMOVE_RECURSE
  "CMakeFiles/csecg_power.dir/src/models.cpp.o"
  "CMakeFiles/csecg_power.dir/src/models.cpp.o.d"
  "CMakeFiles/csecg_power.dir/src/node_energy.cpp.o"
  "CMakeFiles/csecg_power.dir/src/node_energy.cpp.o.d"
  "libcsecg_power.a"
  "libcsecg_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

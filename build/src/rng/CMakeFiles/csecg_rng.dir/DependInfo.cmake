
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/src/distributions.cpp" "src/rng/CMakeFiles/csecg_rng.dir/src/distributions.cpp.o" "gcc" "src/rng/CMakeFiles/csecg_rng.dir/src/distributions.cpp.o.d"
  "/root/repo/src/rng/src/xoshiro.cpp" "src/rng/CMakeFiles/csecg_rng.dir/src/xoshiro.cpp.o" "gcc" "src/rng/CMakeFiles/csecg_rng.dir/src/xoshiro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

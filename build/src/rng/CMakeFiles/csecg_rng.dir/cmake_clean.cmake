file(REMOVE_RECURSE
  "CMakeFiles/csecg_rng.dir/src/distributions.cpp.o"
  "CMakeFiles/csecg_rng.dir/src/distributions.cpp.o.d"
  "CMakeFiles/csecg_rng.dir/src/xoshiro.cpp.o"
  "CMakeFiles/csecg_rng.dir/src/xoshiro.cpp.o.d"
  "libcsecg_rng.a"
  "libcsecg_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for csecg_rng.
# This may be replaced when dependencies are built.

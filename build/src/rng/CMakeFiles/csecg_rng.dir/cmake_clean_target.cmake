file(REMOVE_RECURSE
  "libcsecg_rng.a"
)

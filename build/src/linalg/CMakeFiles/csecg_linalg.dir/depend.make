# Empty dependencies file for csecg_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcsecg_linalg.a"
)

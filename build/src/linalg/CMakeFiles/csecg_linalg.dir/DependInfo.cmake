
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/src/matrix.cpp" "src/linalg/CMakeFiles/csecg_linalg.dir/src/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/csecg_linalg.dir/src/matrix.cpp.o.d"
  "/root/repo/src/linalg/src/operator.cpp" "src/linalg/CMakeFiles/csecg_linalg.dir/src/operator.cpp.o" "gcc" "src/linalg/CMakeFiles/csecg_linalg.dir/src/operator.cpp.o.d"
  "/root/repo/src/linalg/src/solve.cpp" "src/linalg/CMakeFiles/csecg_linalg.dir/src/solve.cpp.o" "gcc" "src/linalg/CMakeFiles/csecg_linalg.dir/src/solve.cpp.o.d"
  "/root/repo/src/linalg/src/vector.cpp" "src/linalg/CMakeFiles/csecg_linalg.dir/src/vector.cpp.o" "gcc" "src/linalg/CMakeFiles/csecg_linalg.dir/src/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

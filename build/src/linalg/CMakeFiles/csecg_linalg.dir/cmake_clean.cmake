file(REMOVE_RECURSE
  "CMakeFiles/csecg_linalg.dir/src/matrix.cpp.o"
  "CMakeFiles/csecg_linalg.dir/src/matrix.cpp.o.d"
  "CMakeFiles/csecg_linalg.dir/src/operator.cpp.o"
  "CMakeFiles/csecg_linalg.dir/src/operator.cpp.o.d"
  "CMakeFiles/csecg_linalg.dir/src/solve.cpp.o"
  "CMakeFiles/csecg_linalg.dir/src/solve.cpp.o.d"
  "CMakeFiles/csecg_linalg.dir/src/vector.cpp.o"
  "CMakeFiles/csecg_linalg.dir/src/vector.cpp.o.d"
  "libcsecg_linalg.a"
  "libcsecg_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

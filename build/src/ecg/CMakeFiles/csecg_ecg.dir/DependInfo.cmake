
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecg/src/beats.cpp" "src/ecg/CMakeFiles/csecg_ecg.dir/src/beats.cpp.o" "gcc" "src/ecg/CMakeFiles/csecg_ecg.dir/src/beats.cpp.o.d"
  "/root/repo/src/ecg/src/ecgsyn.cpp" "src/ecg/CMakeFiles/csecg_ecg.dir/src/ecgsyn.cpp.o" "gcc" "src/ecg/CMakeFiles/csecg_ecg.dir/src/ecgsyn.cpp.o.d"
  "/root/repo/src/ecg/src/io.cpp" "src/ecg/CMakeFiles/csecg_ecg.dir/src/io.cpp.o" "gcc" "src/ecg/CMakeFiles/csecg_ecg.dir/src/io.cpp.o.d"
  "/root/repo/src/ecg/src/noise.cpp" "src/ecg/CMakeFiles/csecg_ecg.dir/src/noise.cpp.o" "gcc" "src/ecg/CMakeFiles/csecg_ecg.dir/src/noise.cpp.o.d"
  "/root/repo/src/ecg/src/qrs.cpp" "src/ecg/CMakeFiles/csecg_ecg.dir/src/qrs.cpp.o" "gcc" "src/ecg/CMakeFiles/csecg_ecg.dir/src/qrs.cpp.o.d"
  "/root/repo/src/ecg/src/record.cpp" "src/ecg/CMakeFiles/csecg_ecg.dir/src/record.cpp.o" "gcc" "src/ecg/CMakeFiles/csecg_ecg.dir/src/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/csecg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/csecg_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/csecg_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

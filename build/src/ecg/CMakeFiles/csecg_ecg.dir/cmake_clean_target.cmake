file(REMOVE_RECURSE
  "libcsecg_ecg.a"
)

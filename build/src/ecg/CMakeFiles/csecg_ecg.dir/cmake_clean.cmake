file(REMOVE_RECURSE
  "CMakeFiles/csecg_ecg.dir/src/beats.cpp.o"
  "CMakeFiles/csecg_ecg.dir/src/beats.cpp.o.d"
  "CMakeFiles/csecg_ecg.dir/src/ecgsyn.cpp.o"
  "CMakeFiles/csecg_ecg.dir/src/ecgsyn.cpp.o.d"
  "CMakeFiles/csecg_ecg.dir/src/io.cpp.o"
  "CMakeFiles/csecg_ecg.dir/src/io.cpp.o.d"
  "CMakeFiles/csecg_ecg.dir/src/noise.cpp.o"
  "CMakeFiles/csecg_ecg.dir/src/noise.cpp.o.d"
  "CMakeFiles/csecg_ecg.dir/src/qrs.cpp.o"
  "CMakeFiles/csecg_ecg.dir/src/qrs.cpp.o.d"
  "CMakeFiles/csecg_ecg.dir/src/record.cpp.o"
  "CMakeFiles/csecg_ecg.dir/src/record.cpp.o.d"
  "libcsecg_ecg.a"
  "libcsecg_ecg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_ecg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for csecg_ecg.
# This may be replaced when dependencies are built.

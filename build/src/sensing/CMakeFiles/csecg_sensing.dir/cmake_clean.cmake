file(REMOVE_RECURSE
  "CMakeFiles/csecg_sensing.dir/src/diagnostics.cpp.o"
  "CMakeFiles/csecg_sensing.dir/src/diagnostics.cpp.o.d"
  "CMakeFiles/csecg_sensing.dir/src/lowres_channel.cpp.o"
  "CMakeFiles/csecg_sensing.dir/src/lowres_channel.cpp.o.d"
  "CMakeFiles/csecg_sensing.dir/src/matrices.cpp.o"
  "CMakeFiles/csecg_sensing.dir/src/matrices.cpp.o.d"
  "CMakeFiles/csecg_sensing.dir/src/quantizer.cpp.o"
  "CMakeFiles/csecg_sensing.dir/src/quantizer.cpp.o.d"
  "CMakeFiles/csecg_sensing.dir/src/rmpi.cpp.o"
  "CMakeFiles/csecg_sensing.dir/src/rmpi.cpp.o.d"
  "libcsecg_sensing.a"
  "libcsecg_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensing/src/diagnostics.cpp" "src/sensing/CMakeFiles/csecg_sensing.dir/src/diagnostics.cpp.o" "gcc" "src/sensing/CMakeFiles/csecg_sensing.dir/src/diagnostics.cpp.o.d"
  "/root/repo/src/sensing/src/lowres_channel.cpp" "src/sensing/CMakeFiles/csecg_sensing.dir/src/lowres_channel.cpp.o" "gcc" "src/sensing/CMakeFiles/csecg_sensing.dir/src/lowres_channel.cpp.o.d"
  "/root/repo/src/sensing/src/matrices.cpp" "src/sensing/CMakeFiles/csecg_sensing.dir/src/matrices.cpp.o" "gcc" "src/sensing/CMakeFiles/csecg_sensing.dir/src/matrices.cpp.o.d"
  "/root/repo/src/sensing/src/quantizer.cpp" "src/sensing/CMakeFiles/csecg_sensing.dir/src/quantizer.cpp.o" "gcc" "src/sensing/CMakeFiles/csecg_sensing.dir/src/quantizer.cpp.o.d"
  "/root/repo/src/sensing/src/rmpi.cpp" "src/sensing/CMakeFiles/csecg_sensing.dir/src/rmpi.cpp.o" "gcc" "src/sensing/CMakeFiles/csecg_sensing.dir/src/rmpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/csecg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/csecg_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for csecg_sensing.
# This may be replaced when dependencies are built.

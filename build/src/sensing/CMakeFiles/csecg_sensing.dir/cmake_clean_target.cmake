file(REMOVE_RECURSE
  "libcsecg_sensing.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/src/admm.cpp" "src/recovery/CMakeFiles/csecg_recovery.dir/src/admm.cpp.o" "gcc" "src/recovery/CMakeFiles/csecg_recovery.dir/src/admm.cpp.o.d"
  "/root/repo/src/recovery/src/fista.cpp" "src/recovery/CMakeFiles/csecg_recovery.dir/src/fista.cpp.o" "gcc" "src/recovery/CMakeFiles/csecg_recovery.dir/src/fista.cpp.o.d"
  "/root/repo/src/recovery/src/greedy.cpp" "src/recovery/CMakeFiles/csecg_recovery.dir/src/greedy.cpp.o" "gcc" "src/recovery/CMakeFiles/csecg_recovery.dir/src/greedy.cpp.o.d"
  "/root/repo/src/recovery/src/model_based.cpp" "src/recovery/CMakeFiles/csecg_recovery.dir/src/model_based.cpp.o" "gcc" "src/recovery/CMakeFiles/csecg_recovery.dir/src/model_based.cpp.o.d"
  "/root/repo/src/recovery/src/pdhg.cpp" "src/recovery/CMakeFiles/csecg_recovery.dir/src/pdhg.cpp.o" "gcc" "src/recovery/CMakeFiles/csecg_recovery.dir/src/pdhg.cpp.o.d"
  "/root/repo/src/recovery/src/prox.cpp" "src/recovery/CMakeFiles/csecg_recovery.dir/src/prox.cpp.o" "gcc" "src/recovery/CMakeFiles/csecg_recovery.dir/src/prox.cpp.o.d"
  "/root/repo/src/recovery/src/reweighted.cpp" "src/recovery/CMakeFiles/csecg_recovery.dir/src/reweighted.cpp.o" "gcc" "src/recovery/CMakeFiles/csecg_recovery.dir/src/reweighted.cpp.o.d"
  "/root/repo/src/recovery/src/spgl1.cpp" "src/recovery/CMakeFiles/csecg_recovery.dir/src/spgl1.cpp.o" "gcc" "src/recovery/CMakeFiles/csecg_recovery.dir/src/spgl1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/csecg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for csecg_recovery.
# This may be replaced when dependencies are built.

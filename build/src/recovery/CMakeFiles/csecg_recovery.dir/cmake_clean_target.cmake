file(REMOVE_RECURSE
  "libcsecg_recovery.a"
)

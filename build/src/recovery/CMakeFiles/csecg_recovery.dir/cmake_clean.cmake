file(REMOVE_RECURSE
  "CMakeFiles/csecg_recovery.dir/src/admm.cpp.o"
  "CMakeFiles/csecg_recovery.dir/src/admm.cpp.o.d"
  "CMakeFiles/csecg_recovery.dir/src/fista.cpp.o"
  "CMakeFiles/csecg_recovery.dir/src/fista.cpp.o.d"
  "CMakeFiles/csecg_recovery.dir/src/greedy.cpp.o"
  "CMakeFiles/csecg_recovery.dir/src/greedy.cpp.o.d"
  "CMakeFiles/csecg_recovery.dir/src/model_based.cpp.o"
  "CMakeFiles/csecg_recovery.dir/src/model_based.cpp.o.d"
  "CMakeFiles/csecg_recovery.dir/src/pdhg.cpp.o"
  "CMakeFiles/csecg_recovery.dir/src/pdhg.cpp.o.d"
  "CMakeFiles/csecg_recovery.dir/src/prox.cpp.o"
  "CMakeFiles/csecg_recovery.dir/src/prox.cpp.o.d"
  "CMakeFiles/csecg_recovery.dir/src/reweighted.cpp.o"
  "CMakeFiles/csecg_recovery.dir/src/reweighted.cpp.o.d"
  "CMakeFiles/csecg_recovery.dir/src/spgl1.cpp.o"
  "CMakeFiles/csecg_recovery.dir/src/spgl1.cpp.o.d"
  "libcsecg_recovery.a"
  "libcsecg_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csecg_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "csecg::csecg_rng" for configuration "Release"
set_property(TARGET csecg::csecg_rng APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_rng PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_rng.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_rng )
list(APPEND _cmake_import_check_files_for_csecg::csecg_rng "${_IMPORT_PREFIX}/lib/libcsecg_rng.a" )

# Import target "csecg::csecg_linalg" for configuration "Release"
set_property(TARGET csecg::csecg_linalg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_linalg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_linalg.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_linalg )
list(APPEND _cmake_import_check_files_for_csecg::csecg_linalg "${_IMPORT_PREFIX}/lib/libcsecg_linalg.a" )

# Import target "csecg::csecg_dsp" for configuration "Release"
set_property(TARGET csecg::csecg_dsp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_dsp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_dsp.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_dsp )
list(APPEND _cmake_import_check_files_for_csecg::csecg_dsp "${_IMPORT_PREFIX}/lib/libcsecg_dsp.a" )

# Import target "csecg::csecg_metrics" for configuration "Release"
set_property(TARGET csecg::csecg_metrics APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_metrics PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_metrics.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_metrics )
list(APPEND _cmake_import_check_files_for_csecg::csecg_metrics "${_IMPORT_PREFIX}/lib/libcsecg_metrics.a" )

# Import target "csecg::csecg_ecg" for configuration "Release"
set_property(TARGET csecg::csecg_ecg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_ecg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_ecg.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_ecg )
list(APPEND _cmake_import_check_files_for_csecg::csecg_ecg "${_IMPORT_PREFIX}/lib/libcsecg_ecg.a" )

# Import target "csecg::csecg_sensing" for configuration "Release"
set_property(TARGET csecg::csecg_sensing APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_sensing PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_sensing.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_sensing )
list(APPEND _cmake_import_check_files_for_csecg::csecg_sensing "${_IMPORT_PREFIX}/lib/libcsecg_sensing.a" )

# Import target "csecg::csecg_recovery" for configuration "Release"
set_property(TARGET csecg::csecg_recovery APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_recovery PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_recovery.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_recovery )
list(APPEND _cmake_import_check_files_for_csecg::csecg_recovery "${_IMPORT_PREFIX}/lib/libcsecg_recovery.a" )

# Import target "csecg::csecg_coding" for configuration "Release"
set_property(TARGET csecg::csecg_coding APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_coding PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_coding.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_coding )
list(APPEND _cmake_import_check_files_for_csecg::csecg_coding "${_IMPORT_PREFIX}/lib/libcsecg_coding.a" )

# Import target "csecg::csecg_power" for configuration "Release"
set_property(TARGET csecg::csecg_power APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_power PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_power.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_power )
list(APPEND _cmake_import_check_files_for_csecg::csecg_power "${_IMPORT_PREFIX}/lib/libcsecg_power.a" )

# Import target "csecg::csecg_core" for configuration "Release"
set_property(TARGET csecg::csecg_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(csecg::csecg_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libcsecg_core.a"
  )

list(APPEND _cmake_import_check_targets csecg::csecg_core )
list(APPEND _cmake_import_check_files_for_csecg::csecg_core "${_IMPORT_PREFIX}/lib/libcsecg_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)

file(REMOVE_RECURSE
  "../bench/ablate_structured"
  "../bench/ablate_structured.pdb"
  "CMakeFiles/ablate_structured.dir/ablate_structured.cpp.o"
  "CMakeFiles/ablate_structured.dir/ablate_structured.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_structured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablate_structured.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/node_energy_tradeoff"
  "../bench/node_energy_tradeoff.pdb"
  "CMakeFiles/node_energy_tradeoff.dir/node_energy_tradeoff.cpp.o"
  "CMakeFiles/node_energy_tradeoff.dir/node_energy_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_energy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

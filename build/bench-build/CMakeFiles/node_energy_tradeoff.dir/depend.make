# Empty dependencies file for node_energy_tradeoff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablate_rle"
  "../bench/ablate_rle.pdb"
  "CMakeFiles/ablate_rle.dir/ablate_rle.cpp.o"
  "CMakeFiles/ablate_rle.dir/ablate_rle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

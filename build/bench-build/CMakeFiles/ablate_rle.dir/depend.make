# Empty dependencies file for ablate_rle.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablate_reweighted"
  "../bench/ablate_reweighted.pdb"
  "CMakeFiles/ablate_reweighted.dir/ablate_reweighted.cpp.o"
  "CMakeFiles/ablate_reweighted.dir/ablate_reweighted.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reweighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablate_reweighted.
# This may be replaced when dependencies are built.

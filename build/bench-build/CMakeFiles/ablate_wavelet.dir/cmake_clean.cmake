file(REMOVE_RECURSE
  "../bench/ablate_wavelet"
  "../bench/ablate_wavelet.pdb"
  "CMakeFiles/ablate_wavelet.dir/ablate_wavelet.cpp.o"
  "CMakeFiles/ablate_wavelet.dir/ablate_wavelet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_wavelet.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig5_codebook_storage"
  "../bench/fig5_codebook_storage.pdb"
  "CMakeFiles/fig5_codebook_storage.dir/fig5_codebook_storage.cpp.o"
  "CMakeFiles/fig5_codebook_storage.dir/fig5_codebook_storage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_codebook_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

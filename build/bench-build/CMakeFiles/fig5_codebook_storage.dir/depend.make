# Empty dependencies file for fig5_codebook_storage.
# This may be replaced when dependencies are built.

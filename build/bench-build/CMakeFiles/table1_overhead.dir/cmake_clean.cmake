file(REMOVE_RECURSE
  "../bench/table1_overhead"
  "../bench/table1_overhead.pdb"
  "CMakeFiles/table1_overhead.dir/table1_overhead.cpp.o"
  "CMakeFiles/table1_overhead.dir/table1_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

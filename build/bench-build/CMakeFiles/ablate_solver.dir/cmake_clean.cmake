file(REMOVE_RECURSE
  "../bench/ablate_solver"
  "../bench/ablate_solver.pdb"
  "CMakeFiles/ablate_solver.dir/ablate_solver.cpp.o"
  "CMakeFiles/ablate_solver.dir/ablate_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_solver.
# This may be replaced when dependencies are built.

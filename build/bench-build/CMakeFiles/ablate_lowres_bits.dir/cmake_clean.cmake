file(REMOVE_RECURSE
  "../bench/ablate_lowres_bits"
  "../bench/ablate_lowres_bits.pdb"
  "CMakeFiles/ablate_lowres_bits.dir/ablate_lowres_bits.cpp.o"
  "CMakeFiles/ablate_lowres_bits.dir/ablate_lowres_bits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_lowres_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_lowres_bits.
# This may be replaced when dependencies are built.

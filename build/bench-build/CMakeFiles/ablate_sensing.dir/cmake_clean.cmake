file(REMOVE_RECURSE
  "../bench/ablate_sensing"
  "../bench/ablate_sensing.pdb"
  "CMakeFiles/ablate_sensing.dir/ablate_sensing.cpp.o"
  "CMakeFiles/ablate_sensing.dir/ablate_sensing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

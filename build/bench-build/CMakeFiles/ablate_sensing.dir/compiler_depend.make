# Empty compiler generated dependencies file for ablate_sensing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig9_examples"
  "../bench/fig9_examples.pdb"
  "CMakeFiles/fig9_examples.dir/fig9_examples.cpp.o"
  "CMakeFiles/fig9_examples.dir/fig9_examples.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig9_examples.
# This may be replaced when dependencies are built.

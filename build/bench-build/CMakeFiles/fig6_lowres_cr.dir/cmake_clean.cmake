file(REMOVE_RECURSE
  "../bench/fig6_lowres_cr"
  "../bench/fig6_lowres_cr.pdb"
  "CMakeFiles/fig6_lowres_cr.dir/fig6_lowres_cr.cpp.o"
  "CMakeFiles/fig6_lowres_cr.dir/fig6_lowres_cr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lowres_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_lowres_cr.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for headline_power_gain.
# This may be replaced when dependencies are built.

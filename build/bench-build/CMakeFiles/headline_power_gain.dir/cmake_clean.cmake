file(REMOVE_RECURSE
  "../bench/headline_power_gain"
  "../bench/headline_power_gain.pdb"
  "CMakeFiles/headline_power_gain.dir/headline_power_gain.cpp.o"
  "CMakeFiles/headline_power_gain.dir/headline_power_gain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_power_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig4_delta_pdf"
  "../bench/fig4_delta_pdf.pdb"
  "CMakeFiles/fig4_delta_pdf.dir/fig4_delta_pdf.cpp.o"
  "CMakeFiles/fig4_delta_pdf.dir/fig4_delta_pdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_delta_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

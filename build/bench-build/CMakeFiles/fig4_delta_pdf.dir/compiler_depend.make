# Empty compiler generated dependencies file for fig4_delta_pdf.
# This may be replaced when dependencies are built.

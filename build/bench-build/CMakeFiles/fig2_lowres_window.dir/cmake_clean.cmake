file(REMOVE_RECURSE
  "../bench/fig2_lowres_window"
  "../bench/fig2_lowres_window.pdb"
  "CMakeFiles/fig2_lowres_window.dir/fig2_lowres_window.cpp.o"
  "CMakeFiles/fig2_lowres_window.dir/fig2_lowres_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lowres_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_lowres_window.
# This may be replaced when dependencies are built.

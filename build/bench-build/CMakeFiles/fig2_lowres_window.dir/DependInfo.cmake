
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_lowres_window.cpp" "bench-build/CMakeFiles/fig2_lowres_window.dir/fig2_lowres_window.cpp.o" "gcc" "bench-build/CMakeFiles/fig2_lowres_window.dir/fig2_lowres_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/csecg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/csecg_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ecg/CMakeFiles/csecg_ecg.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/csecg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/csecg_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/csecg_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/csecg_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/csecg_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/csecg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/csecg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "../bench/fig8_boxplots"
  "../bench/fig8_boxplots.pdb"
  "CMakeFiles/fig8_boxplots.dir/fig8_boxplots.cpp.o"
  "CMakeFiles/fig8_boxplots.dir/fig8_boxplots.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_boxplots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

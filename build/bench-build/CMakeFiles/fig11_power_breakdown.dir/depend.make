# Empty dependencies file for fig11_power_breakdown.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig7_snr_prd_vs_cr.
# This may be replaced when dependencies are built.

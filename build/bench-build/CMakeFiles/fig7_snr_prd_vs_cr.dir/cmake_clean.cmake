file(REMOVE_RECURSE
  "../bench/fig7_snr_prd_vs_cr"
  "../bench/fig7_snr_prd_vs_cr.pdb"
  "CMakeFiles/fig7_snr_prd_vs_cr.dir/fig7_snr_prd_vs_cr.cpp.o"
  "CMakeFiles/fig7_snr_prd_vs_cr.dir/fig7_snr_prd_vs_cr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_snr_prd_vs_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

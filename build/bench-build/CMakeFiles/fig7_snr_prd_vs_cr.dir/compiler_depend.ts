# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_snr_prd_vs_cr.

file(REMOVE_RECURSE
  "../bench/ablate_adaptive"
  "../bench/ablate_adaptive.pdb"
  "CMakeFiles/ablate_adaptive.dir/ablate_adaptive.cpp.o"
  "CMakeFiles/ablate_adaptive.dir/ablate_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_adaptive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablate_noise_stress"
  "../bench/ablate_noise_stress.pdb"
  "CMakeFiles/ablate_noise_stress.dir/ablate_noise_stress.cpp.o"
  "CMakeFiles/ablate_noise_stress.dir/ablate_noise_stress.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_noise_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

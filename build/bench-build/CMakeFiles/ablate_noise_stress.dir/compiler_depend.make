# Empty compiler generated dependencies file for ablate_noise_stress.
# This may be replaced when dependencies are built.

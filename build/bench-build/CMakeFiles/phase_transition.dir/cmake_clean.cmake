file(REMOVE_RECURSE
  "../bench/phase_transition"
  "../bench/phase_transition.pdb"
  "CMakeFiles/phase_transition.dir/phase_transition.cpp.o"
  "CMakeFiles/phase_transition.dir/phase_transition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

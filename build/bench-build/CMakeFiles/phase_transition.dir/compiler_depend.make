# Empty compiler generated dependencies file for phase_transition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/diagnostic_quality.dir/diagnostic_quality.cpp.o"
  "CMakeFiles/diagnostic_quality.dir/diagnostic_quality.cpp.o.d"
  "diagnostic_quality"
  "diagnostic_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnostic_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for diagnostic_quality.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/holter_compression.dir/holter_compression.cpp.o"
  "CMakeFiles/holter_compression.dir/holter_compression.cpp.o.d"
  "holter_compression"
  "holter_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holter_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for holter_compression.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for codebook_provisioning.
# This may be replaced when dependencies are built.

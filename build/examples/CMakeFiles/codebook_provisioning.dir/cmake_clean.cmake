file(REMOVE_RECURSE
  "CMakeFiles/codebook_provisioning.dir/codebook_provisioning.cpp.o"
  "CMakeFiles/codebook_provisioning.dir/codebook_provisioning.cpp.o.d"
  "codebook_provisioning"
  "codebook_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codebook_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

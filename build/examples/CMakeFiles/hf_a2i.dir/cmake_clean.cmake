file(REMOVE_RECURSE
  "CMakeFiles/hf_a2i.dir/hf_a2i.cpp.o"
  "CMakeFiles/hf_a2i.dir/hf_a2i.cpp.o.d"
  "hf_a2i"
  "hf_a2i.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_a2i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hf_a2i.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_qrs.
# This may be replaced when dependencies are built.

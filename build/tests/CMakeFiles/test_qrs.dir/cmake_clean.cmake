file(REMOVE_RECURSE
  "CMakeFiles/test_qrs.dir/qrs_test.cpp.o"
  "CMakeFiles/test_qrs.dir/qrs_test.cpp.o.d"
  "test_qrs"
  "test_qrs.pdb"
  "test_qrs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

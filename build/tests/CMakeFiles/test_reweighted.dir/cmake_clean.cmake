file(REMOVE_RECURSE
  "CMakeFiles/test_reweighted.dir/reweighted_test.cpp.o"
  "CMakeFiles/test_reweighted.dir/reweighted_test.cpp.o.d"
  "test_reweighted"
  "test_reweighted.pdb"
  "test_reweighted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reweighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

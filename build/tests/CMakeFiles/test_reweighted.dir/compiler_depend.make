# Empty compiler generated dependencies file for test_reweighted.
# This may be replaced when dependencies are built.

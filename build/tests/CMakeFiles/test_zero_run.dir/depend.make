# Empty dependencies file for test_zero_run.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_zero_run.dir/zero_run_test.cpp.o"
  "CMakeFiles/test_zero_run.dir/zero_run_test.cpp.o.d"
  "test_zero_run"
  "test_zero_run.pdb"
  "test_zero_run[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_node_energy.dir/node_energy_test.cpp.o"
  "CMakeFiles/test_node_energy.dir/node_energy_test.cpp.o.d"
  "test_node_energy"
  "test_node_energy.pdb"
  "test_node_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

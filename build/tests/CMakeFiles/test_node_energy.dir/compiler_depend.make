# Empty compiler generated dependencies file for test_node_energy.
# This may be replaced when dependencies are built.

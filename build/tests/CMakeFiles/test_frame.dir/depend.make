# Empty dependencies file for test_frame.
# This may be replaced when dependencies are built.

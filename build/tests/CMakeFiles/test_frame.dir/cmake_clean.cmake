file(REMOVE_RECURSE
  "CMakeFiles/test_frame.dir/frame_test.cpp.o"
  "CMakeFiles/test_frame.dir/frame_test.cpp.o.d"
  "test_frame"
  "test_frame.pdb"
  "test_frame[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_spgl1.dir/spgl1_test.cpp.o"
  "CMakeFiles/test_spgl1.dir/spgl1_test.cpp.o.d"
  "test_spgl1"
  "test_spgl1.pdb"
  "test_spgl1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgl1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_spgl1.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_ecg.
# This may be replaced when dependencies are built.

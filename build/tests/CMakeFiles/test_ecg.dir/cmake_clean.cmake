file(REMOVE_RECURSE
  "CMakeFiles/test_ecg.dir/ecg_test.cpp.o"
  "CMakeFiles/test_ecg.dir/ecg_test.cpp.o.d"
  "test_ecg"
  "test_ecg.pdb"
  "test_ecg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

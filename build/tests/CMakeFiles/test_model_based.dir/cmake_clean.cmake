file(REMOVE_RECURSE
  "CMakeFiles/test_model_based.dir/model_based_test.cpp.o"
  "CMakeFiles/test_model_based.dir/model_based_test.cpp.o.d"
  "test_model_based"
  "test_model_based.pdb"
  "test_model_based[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_ecg[1]_include.cmake")
include("/root/repo/build/tests/test_sensing[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_coding[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_zero_run[1]_include.cmake")
include("/root/repo/build/tests/test_qrs[1]_include.cmake")
include("/root/repo/build/tests/test_frame[1]_include.cmake")
include("/root/repo/build/tests/test_model_based[1]_include.cmake")
include("/root/repo/build/tests/test_diagnostics[1]_include.cmake")
include("/root/repo/build/tests/test_streaming[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_reweighted[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_node_energy[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_spgl1[1]_include.cmake")

// Diagnostic quality under compression: does the reconstructed ECG still
// support R-peak detection?  Streams a contiguous segment of a record
// through the codec window-by-window, stitches the reconstruction, runs
// the same Pan–Tompkins-style detector on original and reconstruction,
// and scores both against the synthesizer's ground-truth beats — the
// "diagnostic quality" the paper's §IV metric stands in for.
//
//   $ ./diagnostic_quality [cr_percent] [seconds]
//
// Defaults: CR = 88%, 40 s of record 208 (heavy PVC burden — the hard
// case for morphology preservation).
#include <cstdio>
#include <cstdlib>

#include "csecg/core/frontend.hpp"
#include "csecg/ecg/qrs.hpp"

namespace {

using namespace csecg;

linalg::Vector stitch_decode(const core::Codec& codec,
                             const ecg::EcgRecord& record, std::size_t start,
                             std::size_t window_count,
                             core::DecodeMode mode) {
  const std::size_t n = codec.config().window;
  linalg::Vector out(window_count * n);
  for (std::size_t w = 0; w < window_count; ++w) {
    const linalg::Vector window = record.window(start + w * n, n);
    const core::DecodeResult decoded =
        codec.decoder().decode(codec.encoder().encode(window), mode);
    for (std::size_t i = 0; i < n; ++i) out[w * n + i] = decoded.x[i];
  }
  return out;
}

void report(const char* label, const linalg::Vector& signal,
            const std::vector<std::size_t>& reference, double fs_hz) {
  ecg::QrsDetectorConfig detector;
  detector.fs_hz = fs_hz;
  const auto detected = ecg::detect_qrs(signal, detector);
  const auto tolerance = static_cast<std::size_t>(0.05 * fs_hz);  // ±50 ms.
  const auto stats = ecg::match_beats(detected, reference, tolerance);
  std::printf("  %-14s: %3zu detections | Se %.3f  PPV %.3f  F1 %.3f  "
              "jitter %.1f samples\n",
              label, detected.size(), stats.sensitivity, stats.ppv, stats.f1,
              stats.mean_jitter_samples);
}

}  // namespace

int main(int argc, char** argv) {
  const double cr = argc > 1 ? std::strtod(argv[1], nullptr) : 88.0;
  const double seconds = argc > 2 ? std::strtod(argv[2], nullptr) : 40.0;

  ecg::RecordConfig record_config;
  record_config.duration_seconds = seconds + 5.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  // Record "208": one of the heavy-ectopy surrogates.
  std::size_t index = 0;
  for (std::size_t i = 0; i < database.size(); ++i) {
    if (database.name(i) == "208") index = i;
  }
  const ecg::EcgRecord& record = database.record(index);

  core::FrontEndConfig config;
  config.measurements = config.measurements_for_cr(cr);
  const auto lowres_codec = core::train_lowres_codec(config, database);
  const core::Codec codec(config, lowres_codec);

  const std::size_t start = 360;  // Skip the first second.
  const auto window_count = static_cast<std::size_t>(
      seconds * record.config.fs_hz / static_cast<double>(config.window));
  const std::size_t total = window_count * config.window;
  const linalg::Vector original = record.window(start, total);
  const auto reference =
      ecg::annotations_in_window(record.beats, start, total);

  std::printf("record %s, %.0f s (%zu ground-truth beats), CS CR %.1f%% "
              "(m=%zu)\n",
              record.name.c_str(), seconds, reference.size(), cr,
              config.measurements);

  report("original", original, reference, record.config.fs_hz);
  const linalg::Vector hybrid = stitch_decode(codec, record, start,
                                              window_count,
                                              core::DecodeMode::kHybrid);
  report("hybrid CS", hybrid, reference, record.config.fs_hz);
  const linalg::Vector normal = stitch_decode(codec, record, start,
                                              window_count,
                                              core::DecodeMode::kNormalCs);
  report("normal CS", normal, reference, record.config.fs_hz);

  std::printf("\nInterpretation: at high CR the hybrid reconstruction keeps "
              "R peaks detectable (F1 ~ original);\nnormal CS loses "
              "morphology first, so its F1 collapses with the SNR.\n");
  return 0;
}

// Telemetry over a lossy radio: one record crossing a 5% burst-loss
// Gilbert–Elliott channel with and without ARQ.
//
// Shows the trade the link layer makes explicit: CS measurements are
// democratic, so fire-and-forget keeps most of the reconstruction quality
// while spending no retransmission energy; ARQ buys the last dB back at a
// measurable per-window energy cost.
//
//   $ ./telemetry_link [record_index] [windows]
//
// Defaults: record 0, 24 windows.
#include <cstdio>
#include <cstdlib>

#include "csecg/link/session.hpp"
#include "csecg/obs/ledger.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/trace.hpp"

namespace {

/// Writes `text` to `path`; returns false (with a stderr note) on failure.
bool write_file(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csecg;
  const std::size_t record_index =
      argc > 1 ? static_cast<std::size_t>(std::strtol(argv[1], nullptr, 10))
               : 0;
  const std::size_t windows =
      argc > 2 ? static_cast<std::size_t>(std::strtol(argv[2], nullptr, 10))
               : 24;

  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);

  core::FrontEndConfig config;
  config.window = 256;
  config.measurements = 48;
  config.wavelet_levels = 4;
  config.solver.max_iterations = 400;
  const auto codec = core::train_lowres_codec(config, database, 3, 3);

  // A bursty body-area channel with ~5% stationary packet loss:
  // π_bad = 0.02/0.22 ≈ 0.09, × 0.55 erasure in the bad state ≈ 5%.
  link::LinkSessionConfig base;
  base.channel.kind = link::ChannelKind::kGilbertElliott;
  base.channel.ge_good_to_bad = 0.02;
  base.channel.ge_bad_to_good = 0.20;
  base.channel.ge_erasure_bad = 0.55;

  std::printf("record %zu over a ~%.1f%% burst-loss channel, %zu windows\n\n",
              record_index, base.channel.ge_good_to_bad /
                      (base.channel.ge_good_to_bad +
                       base.channel.ge_bad_to_good) *
                      base.channel.ge_erasure_bad * 100.0,
              windows);
  std::printf("%-16s  %8s  %9s  %7s  %11s  %7s\n", "arq", "snr(dB)",
              "delivery", "retx", "energy(uJ)", "radio%");

  for (const link::ArqMode mode :
       {link::ArqMode::kNone, link::ArqMode::kStopAndWait,
        link::ArqMode::kSelectiveRepeat}) {
    link::LinkSessionConfig link = base;
    link.arq.mode = mode;
    link.arq.max_retries = 4;
    const link::LinkSession session(config, codec, link);

    const link::LinkRecordReport report = link::run_link_record(
        session, database.record(record_index), windows, 0);
    if (report.non_converged_windows > 0) {
      std::printf("# warning: %zu/%zu solves hit the iteration cap\n",
                  report.non_converged_windows, report.solved_windows);
    }

    double radio_j = 0.0;
    double total_j = 0.0;
    for (const auto& w : report.windows) total_j += w.energy_j;
    {
      // Re-price the radio share for the table.
      for (const auto& w : report.windows) {
        link::LinkSessionConfig pricing = link;
        (void)pricing;
        radio_j += static_cast<double>(w.stats.data_bits) *
                       link.node.radio_nj_per_bit * 1e-9 +
                   static_cast<double>(w.stats.feedback_bits) *
                       link.node.radio_rx_nj_per_bit * 1e-9;
      }
    }
    const char* name = mode == link::ArqMode::kNone ? "none"
                       : mode == link::ArqMode::kStopAndWait
                           ? "stop-and-wait"
                           : "selective-repeat";
    std::printf("%-16s  %8.2f  %8.1f%%  %7zu  %11.2f  %6.1f%%\n", name,
                report.mean_snr, report.delivery_rate * 100.0,
                report.retransmissions,
                report.mean_energy_j * 1e6,
                radio_j / total_j * 100.0);
  }

  std::printf("\nlossless reference: ");
  link::LinkSessionConfig perfect;
  const link::LinkSession reference(config, codec, perfect);
  const link::LinkRecordReport clean = link::run_link_record(
      reference, database.record(record_index), windows, 0);
  std::printf("%.2f dB at %.2f uJ/window\n", clean.mean_snr,
              clean.mean_energy_j * 1e6);

  // Everything the run recorded — solver convergence, ARQ rounds, stage
  // timings — in one scrape (pipe through `jq` for a pretty view).
  std::printf("\nobs snapshot:\n%s\n", obs::snapshot_json().c_str());

  // With CSECG_TRACE=1 / CSECG_LEDGER=1 the run also leaves artifacts
  // behind: a Perfetto-loadable timeline and the per-window quality ledger.
  if (obs::trace_enabled() && write_file("trace.json", obs::trace_json())) {
    std::printf("wrote trace.json (%zu events — open in ui.perfetto.dev)\n",
                obs::trace_event_count());
  }
  if (obs::ledger_enabled() &&
      write_file("ledger.jsonl", obs::ledger_jsonl())) {
    std::printf("wrote ledger.jsonl (%zu rows)\n", obs::ledger_size());
  }
  return 0;
}

// High-frequency A2I conversion — the paper's concluding application.
//
// "One of the main potential applications for analog implementation of CS
//  is in HF applications where the sampling frequency is so large [that]
//  the equivalent number of bits (ENOB) on a real ADC is very poor ...
//  Our design has the potential to be used in such a configuration as a
//  super resolution path."
//
// This example simulates exactly that: a tone-sparse HF signal is acquired
// by (a) a flash ADC alone at its poor ENOB, (b) an RMPI CS channel alone,
// and (c) the hybrid — CS channel + the coarse flash samples as the box
// constraint — showing the CS path acting as the super-resolution path on
// top of a low-ENOB converter.  Time is normalized: one window of n
// Nyquist samples, whatever the absolute rate.
//
//   $ ./hf_a2i [tones] [m]
//
// Without an explicit m the demo sweeps m to expose the three regimes:
// below the CS phase transition the hybrid still delivers the flash
// ADC's quality (graceful degradation), above it the CS path lifts the
// output 20+ dB past the flash ENOB limit.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "csecg/dsp/dct.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/recovery/pdhg.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/sensing/quantizer.hpp"
#include "csecg/sensing/rmpi.hpp"

namespace {

struct HfPoint {
  double flash_snr = 0.0;
  double cs_snr = 0.0;
  double hybrid_snr = 0.0;
};

HfPoint run_point(std::size_t tones, std::size_t m);

}  // namespace

int main(int argc, char** argv) {
  const std::size_t tones =
      argc > 1 ? static_cast<std::size_t>(std::strtol(argv[1], nullptr, 10))
               : 6;
  if (argc > 2) {
    const auto m = static_cast<std::size_t>(std::strtol(argv[2], nullptr, 10));
    const HfPoint p = run_point(tones, m);
    std::printf("m=%zu: flash %.2f dB | CS alone %.2f dB | hybrid %.2f dB\n",
                m, p.flash_snr, p.cs_snr, p.hybrid_snr);
    return 0;
  }
  std::printf("HF A2I sweep: %zu tones in n=512, 6-bit flash ADC\n", tones);
  std::printf("%6s  %12s  %12s  %12s\n", "m", "flash(dB)", "CS alone(dB)",
              "hybrid(dB)");
  for (std::size_t m : {16u, 24u, 32u, 48u, 64u, 96u}) {
    const HfPoint p = run_point(tones, m);
    std::printf("%6zu  %12.2f  %12.2f  %12.2f\n", m, p.flash_snr, p.cs_snr,
                p.hybrid_snr);
  }
  std::printf(
      "\nBelow the CS phase transition the hybrid falls back to the flash "
      "ADC's quality;\nabove it the CS channel is the super-resolution "
      "path of the paper's conclusion,\nlifting the output far past the "
      "flash ENOB limit at a fraction of Nyquist channels.\n");
  return 0;
}

namespace {

HfPoint run_point(std::size_t tones, std::size_t m) {
  using namespace csecg;
  const std::size_t n = 512;
  const int flash_bits = 6;  // A fast flash ADC's effective resolution.

  // Tone-sparse test signal on DCT bins (frequencies land exactly on the
  // dictionary so sparsity is exact, as in the RMPI literature's demos).
  rng::Xoshiro256 gen(7);
  const dsp::Dct dct(n);
  linalg::Vector coeffs(n);
  for (std::size_t t = 0; t < tones; ++t) {
    std::size_t bin = 0;
    do {
      bin = 8 + static_cast<std::size_t>(rng::uniform_below(gen, n - 16));
    } while (coeffs[bin] != 0.0);
    coeffs[bin] = static_cast<double>(rng::rademacher(gen)) *
                  rng::uniform(gen, 0.5, 1.0);
  }
  const linalg::Vector x = dct.inverse(coeffs);
  const double peak = linalg::norm_inf(x);

  // (a) Flash ADC alone: 6-bit quantization of the Nyquist samples.
  const sensing::Quantizer flash(flash_bits, -1.2 * peak, 1.2 * peak,
                                 sensing::QuantizerMode::kFloor);
  const linalg::Vector x_flash = flash.quantize(x);
  // Report against the cell midpoint (the flash path's best estimate).
  linalg::Vector x_flash_mid = x_flash;
  for (auto& v : x_flash_mid) v += flash.step() / 2.0;

  // (b) CS channel alone: m-channel RMPI + BPDN over the DCT dictionary.
  sensing::RmpiConfig rmpi_config;
  rmpi_config.channels = m;
  rmpi_config.window = n;
  rmpi_config.adc_bits = 12;
  rmpi_config.input_full_scale = 1.2 * peak;
  const sensing::RmpiSimulator rmpi(rmpi_config);
  const linalg::Vector y = rmpi.measure(x);
  const double sigma = 1.5 * rmpi.expected_quantization_noise_norm();
  recovery::PdhgOptions options;
  options.max_iterations = 3000;
  options.dual_primal_ratio = 0.01;
  const auto psi = dct.synthesis_operator();
  const auto phi = rmpi.effective_operator();
  const auto cs_only =
      recovery::solve_bpdn(phi, psi, y, sigma, std::nullopt, options);

  // (c) Hybrid: CS + the flash staircase as a per-sample box.
  recovery::BoxConstraint box;
  linalg::Vector upper;
  flash.boxes(x, box.lower, upper);
  box.upper = upper;
  const auto hybrid = recovery::solve_bpdn(phi, psi, y, sigma, box, options);

  HfPoint point;
  point.flash_snr =
      metrics::snr_from_prd(metrics::prd_zero_mean(x, x_flash_mid));
  point.cs_snr = metrics::snr_from_prd(metrics::prd_zero_mean(x, cs_only.x));
  point.hybrid_snr =
      metrics::snr_from_prd(metrics::prd_zero_mean(x, hybrid.x));
  return point;
}

}  // namespace

// Power explorer: the paper's §VI analysis as an interactive tool.  Given
// a target reconstruction SNR, search the smallest channel count m that
// reaches it for the hybrid and the normal front-end, then price both
// designs with the analytical 90 nm power models and report the savings.
//
//   $ ./power_explorer [target-snr-db] [records]
//
// Defaults: 17 dB (the paper's 11× operating point), 4 records.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "csecg/core/frontend.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/power/models.hpp"

namespace {

double mean_snr_at(const csecg::core::FrontEndConfig& base, std::size_t m,
                   const csecg::coding::DeltaHuffmanCodec& codec,
                   const csecg::ecg::SyntheticDatabase& database,
                   std::size_t records, csecg::core::DecodeMode mode) {
  csecg::core::FrontEndConfig config = base;
  config.measurements = m;
  const csecg::core::Codec front_end(config, codec);
  const auto reports =
      csecg::core::run_database(front_end, database, records, 1, mode);
  return csecg::core::averaged_snr(reports);
}

/// Smallest m on a coarse-to-fine grid reaching the target SNR.
std::size_t min_measurements(const csecg::core::FrontEndConfig& base,
                             double target_snr,
                             const csecg::coding::DeltaHuffmanCodec& codec,
                             const csecg::ecg::SyntheticDatabase& database,
                             std::size_t records,
                             csecg::core::DecodeMode mode) {
  const std::vector<std::size_t> grid = {16,  24,  32,  48,  64,  96,
                                         128, 160, 192, 240, 320, 448};
  for (std::size_t m : grid) {
    const double snr =
        mean_snr_at(base, m, codec, database, records, mode);
    std::printf("    m=%4zu -> %.2f dB\n", m, snr);
    if (snr >= target_snr) return m;
  }
  return base.window;  // Even Nyquist-count channels didn't reach it.
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csecg;
  const double target = argc > 1 ? std::strtod(argv[1], nullptr) : 17.0;
  const std::size_t records =
      argc > 2 ? static_cast<std::size_t>(std::strtol(argv[2], nullptr, 10))
               : 4;

  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  core::FrontEndConfig config;
  const auto codec = core::train_lowres_codec(config, database);

  std::printf("searching smallest m reaching %.1f dB over %zu records\n",
              target, records);
  std::printf("  hybrid CS:\n");
  const std::size_t m_hybrid = min_measurements(
      config, target, codec, database, records, core::DecodeMode::kHybrid);
  std::printf("  normal CS:\n");
  const std::size_t m_normal = min_measurements(
      config, target, codec, database, records, core::DecodeMode::kNormalCs);

  power::TechnologyParams tech;
  power::RmpiDesign normal_design;
  normal_design.channels = m_normal;
  normal_design.window = config.window;
  power::HybridDesign hybrid_design;
  hybrid_design.cs_path = normal_design;
  hybrid_design.cs_path.channels = m_hybrid;
  hybrid_design.lowres_bits = config.lowres_bits;

  const auto p_normal = power::rmpi_power(normal_design, tech);
  const auto p_hybrid = power::hybrid_power(hybrid_design, tech);

  std::printf("\ndesign points @ %.1f dB target:\n", target);
  std::printf("  normal CS : m=%4zu  P=%10.3f uW (amp %.3f, int %.3f, adc "
              "%.3f)\n",
              m_normal, p_normal.total() * 1e6, p_normal.amplifier * 1e6,
              p_normal.integrator * 1e6, p_normal.adc * 1e6);
  std::printf("  hybrid CS : m=%4zu  P=%10.3f uW (CS path %.3f + low-res ADC "
              "%.5f)\n",
              m_hybrid, p_hybrid.total() * 1e6, p_hybrid.cs.total() * 1e6,
              p_hybrid.lowres_adc * 1e6);
  std::printf("  power reduction: %.1fx\n",
              p_normal.total() / p_hybrid.total());
  return 0;
}

// Codebook provisioning: the offline half of the paper's §III-B workflow.
// Trains the low-resolution channel's delta-Huffman codebook for each
// candidate bit depth, prints the code table, and emits the exact byte
// image a node would store — reproducing the trade-off study behind the
// paper's choice of 7 bits (68-byte codebook, 7.86% overhead).
//
//   $ ./codebook_provisioning [bits]
//
// Default: print the trade-off sweep 3..10 plus the full 7-bit table.
#include <cstdio>
#include <cstdlib>

#include "csecg/coding/delta.hpp"
#include "csecg/core/frontend.hpp"
#include "csecg/ecg/record.hpp"

int main(int argc, char** argv) {
  using namespace csecg;
  const int detail_bits =
      argc > 1 ? static_cast<int>(std::strtol(argv[1], nullptr, 10)) : 7;

  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, 2015);

  std::printf("bit-depth trade-off (trained on 8 records x 4 windows):\n");
  std::printf("%5s  %8s  %10s  %12s\n", "bits", "entries", "storage(B)",
              "bits/sample");
  for (int bits = 3; bits <= 10; ++bits) {
    core::FrontEndConfig config;
    config.lowres_bits = bits;
    const auto codec = core::train_lowres_codec(config, database);
    // Average coded size over held-out windows.
    double total_bits = 0.0;
    double total_samples = 0.0;
    for (std::size_t r = 8; r < 12; ++r) {
      sensing::LowResConfig lowres_config;
      lowres_config.bits = bits;
      const sensing::LowResChannel channel(lowres_config);
      for (const auto& window :
           ecg::extract_windows(database.record(r), config.window, 2)) {
        total_bits += static_cast<double>(
            codec.encoded_bits(channel.sample(window).codes));
        total_samples += static_cast<double>(window.size());
      }
    }
    std::printf("%5d  %8zu  %10zu  %12.3f\n", bits,
                codec.codebook().entries().size(),
                codec.codebook().storage_bytes(),
                total_bits / total_samples);
  }

  core::FrontEndConfig config;
  config.lowres_bits = detail_bits;
  const auto codec = core::train_lowres_codec(config, database);
  std::printf("\n%d-bit codebook (escape symbol = %lld):\n", detail_bits,
              static_cast<long long>(codec.escape_symbol()));
  std::printf("%8s  %6s  %s\n", "delta", "bits", "canonical code");
  for (const auto& entry : codec.codebook().entries()) {
    char code_str[65] = {};
    for (int b = 0; b < entry.length; ++b) {
      code_str[b] =
          ((entry.code >> (entry.length - 1 - b)) & 1u) ? '1' : '0';
    }
    std::printf("%8lld  %6d  %s\n", static_cast<long long>(entry.symbol),
                entry.length, code_str);
  }

  const auto image = codec.codebook().serialize();
  std::printf("\nnode storage image (%zu bytes):\n", image.size());
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::printf("%02x%s", image[i], (i % 16 == 15) ? "\n" : " ");
  }
  std::printf("\n");
  return 0;
}

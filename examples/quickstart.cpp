// Quickstart: compress and reconstruct one ECG window with the hybrid
// CS front-end.
//
//   $ ./quickstart
//
// Walks through the full public API in ~40 lines: synthesize a record,
// train the low-resolution channel's codebook offline, build the codec,
// encode one window, decode it in both hybrid and normal-CS modes, and
// print the paper's metrics.
#include <cstdio>

#include "csecg/core/frontend.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/metrics/quality.hpp"

int main() {
  using namespace csecg;

  // A 48-record synthetic stand-in for MIT-BIH (360 Hz, 11-bit).
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 30.0;
  const ecg::SyntheticDatabase database(record_config, /*seed=*/2015);

  // Front-end design point: n = 512 window, m = 96 RMPI channels
  // (CR = 81.25%), 7-bit low-resolution side channel.
  core::FrontEndConfig config;
  config.measurements = 96;

  // Offline codebook training for the side channel (stored on the node).
  const auto lowres_codec = core::train_lowres_codec(config, database);
  std::printf("low-res codebook: %zu entries, %zu bytes on-node storage\n",
              lowres_codec.codebook().entries().size(),
              lowres_codec.codebook().storage_bytes());

  const core::Codec codec(config, lowres_codec);

  // Grab one window of record "100" (raw 11-bit ADC codes).
  const linalg::Vector window = database.record(0).window(720, 512);

  // Sensor side: one frame = CS measurements + coded low-res stream.
  const core::Frame frame = codec.encoder().encode(window);
  std::printf("frame: %zu CS bits + %zu low-res bits (CS CR %.2f%%)\n",
              frame.cs_bits(), frame.lowres_bits,
              config.cs_compression_ratio());

  // Receiver side, both reconstruction modes.
  const core::DecodeResult hybrid =
      codec.decoder().decode(frame, core::DecodeMode::kHybrid);
  const core::DecodeResult normal =
      codec.decoder().decode(frame, core::DecodeMode::kNormalCs);

  const double snr_hybrid =
      metrics::snr_from_prd(metrics::prd_zero_mean(window, hybrid.x));
  const double snr_normal =
      metrics::snr_from_prd(metrics::prd_zero_mean(window, normal.x));
  std::printf("hybrid CS : SNR %6.2f dB  (solver: %d iterations)\n",
              snr_hybrid, hybrid.solver.iterations);
  std::printf("normal CS : SNR %6.2f dB  (solver: %d iterations)\n",
              snr_normal, normal.solver.iterations);
  std::printf("hybrid advantage: %+.2f dB at the same channel count\n",
              snr_hybrid - snr_normal);
  return 0;
}

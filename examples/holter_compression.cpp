// Holter-style streaming compression: run whole records through the
// front-end, window by window, and report per-record diagnostics — the
// workload the paper's WBSN motivation describes (continuous ambulatory
// monitoring under a strict power budget).
//
//   $ ./holter_compression [records] [windows-per-record]
//
// Defaults: 6 records, 4 windows each.  Prints a per-record table (SNR,
// PRD, net CR, convergence) and a database-level summary for both decoder
// modes.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "csecg/core/frontend.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/metrics/stats.hpp"

namespace {

std::size_t arg_or(int argc, char** argv, int index, std::size_t fallback) {
  if (argc <= index) return fallback;
  const long value = std::strtol(argv[index], nullptr, 10);
  return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csecg;
  const std::size_t records = arg_or(argc, argv, 1, 6);
  const std::size_t windows = arg_or(argc, argv, 2, 4);

  ecg::RecordConfig record_config;
  record_config.duration_seconds = 60.0;
  const ecg::SyntheticDatabase database(record_config, 2015);

  core::FrontEndConfig config;
  config.measurements = 96;  // CR = 81.25%, the paper's "good" point.
  const auto lowres_codec = core::train_lowres_codec(config, database);
  const core::Codec codec(config, lowres_codec);

  std::printf("Holter compression: %zu records x %zu windows, n=%zu, m=%zu "
              "(CS CR %.2f%%), 7-bit side channel\n\n",
              records, windows, config.window, config.measurements,
              config.cs_compression_ratio());
  std::printf("%-7s | %-28s | %-28s | %s\n", "record",
              "hybrid  SNR(dB)  PRD(%)", "normal  SNR(dB)  PRD(%)",
              "net CR(%)");
  std::printf("--------+------------------------------+----------------------"
              "--------+----------\n");

  std::vector<double> hybrid_snrs;
  std::vector<double> normal_snrs;
  double net_cr = 0.0;
  for (std::size_t r = 0; r < records; ++r) {
    const auto& record = database.record(r);
    const auto hybrid =
        core::run_record(codec, record, windows, core::DecodeMode::kHybrid);
    const auto normal =
        core::run_record(codec, record, windows, core::DecodeMode::kNormalCs);
    hybrid_snrs.push_back(hybrid.mean_snr);
    normal_snrs.push_back(normal.mean_snr);
    net_cr = hybrid.net_cr_percent;
    std::printf("%-7s |        %7.2f  %7.2f       |        %7.2f  %7.2f     "
                "  | %7.2f\n",
                record.name.c_str(), hybrid.mean_snr, hybrid.mean_prd,
                normal.mean_snr, normal.mean_prd, hybrid.net_cr_percent);
  }

  const auto hybrid_stats = metrics::summarize(hybrid_snrs);
  const auto normal_stats = metrics::summarize(normal_snrs);
  std::printf("\nsummary over %zu records (mean ± sd):\n", records);
  std::printf("  hybrid CS : %6.2f ± %.2f dB   (net CR %.2f%%)\n",
              hybrid_stats.mean, hybrid_stats.stddev, net_cr);
  std::printf("  normal CS : %6.2f ± %.2f dB   (CR %.2f%%)\n",
              normal_stats.mean, normal_stats.stddev,
              codec.config().cs_compression_ratio());
  std::printf("  hybrid gain: %+.2f dB at identical channel count\n",
              hybrid_stats.mean - normal_stats.mean);
  return 0;
}

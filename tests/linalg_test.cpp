// Unit tests for csecg::linalg — vectors, matrices, factorizations,
// operators, iterative solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/solve.hpp"
#include "csecg/linalg/vector.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) a(i, j) = rng::normal(g);
  }
  return a;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  Vector v(n);
  for (auto& x : v) x = rng::normal(g);
  return v;
}

TEST(Vector, ConstructionAndFill) {
  Vector v(5);
  EXPECT_EQ(v.size(), 5u);
  for (double x : v) EXPECT_EQ(x, 0.0);
  v.fill(2.5);
  for (double x : v) EXPECT_EQ(x, 2.5);
}

TEST(Vector, InitializerListAndEquality) {
  const Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v, (Vector{1.0, 2.0, 3.0}));
  EXPECT_NE(v, (Vector{1.0, 2.0, 4.0}));
}

TEST(Vector, Arithmetic) {
  const Vector a{1.0, 2.0};
  const Vector b{10.0, 20.0};
  EXPECT_EQ(a + b, (Vector{11.0, 22.0}));
  EXPECT_EQ(b - a, (Vector{9.0, 18.0}));
  EXPECT_EQ(2.0 * a, (Vector{2.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Vector{2.0, 4.0}));
}

TEST(Vector, DimensionMismatchThrows) {
  Vector a(3);
  const Vector b(4);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(axpy(1.0, b, a), std::invalid_argument);
}

TEST(Vector, DotAndNorms) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm2_squared(a), 25.0);
  EXPECT_DOUBLE_EQ(norm1(a), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
}

TEST(Vector, NormsOfNegativeEntries) {
  const Vector a{-3.0, 4.0, -1.0};
  EXPECT_DOUBLE_EQ(norm1(a), 8.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
}

TEST(Vector, AxpyAccumulates) {
  const Vector x{1.0, -1.0};
  Vector y{10.0, 10.0};
  axpy(3.0, x, y);
  EXPECT_EQ(y, (Vector{13.0, 7.0}));
}

TEST(Vector, CountAboveAndMean) {
  const Vector v{0.0, 0.5, -2.0, 1e-9};
  EXPECT_EQ(count_above(v, 1e-6), 2u);
  EXPECT_DOUBLE_EQ(mean(v), (0.5 - 2.0 + 1e-9) / 4.0);
  EXPECT_DOUBLE_EQ(mean(Vector{}), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{}), 0.0);
}

TEST(Matrix, IdentityAndAccess) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
  EXPECT_THROW(eye.at(3, 0), std::out_of_range);
  EXPECT_THROW(eye.at(0, 3), std::out_of_range);
}

TEST(Matrix, MultiplyVector) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector x{1.0, 0.0, -1.0};
  const Vector y = multiply(a, x);
  EXPECT_EQ(y, (Vector{-2.0, -2.0}));
  EXPECT_THROW(multiply(a, Vector(2)), std::invalid_argument);
}

TEST(Matrix, MultiplyTransposeMatchesExplicitTranspose) {
  const Matrix a = random_matrix(6, 4, 1);
  const Vector y = random_vector(6, 2);
  const Vector via_fast = multiply_transpose(a, y);
  const Vector via_explicit = multiply(transpose(a), y);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(via_fast[i], via_explicit[i], 1e-12);
  }
}

namespace {

// Straightforward row-dot reference kernels the blocked/unrolled production
// gemv paths are checked against.
Vector naive_gemv(const Matrix& a, const Vector& x) {
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * x[j];
    y[i] = sum;
  }
  return y;
}

Vector naive_gemv_transpose(const Matrix& a, const Vector& y) {
  Vector x(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += a(i, j) * y[i];
    x[j] = sum;
  }
  return x;
}

}  // namespace

TEST(Matrix, BlockedGemvMatchesNaiveOnOddAndNonSquareShapes) {
  // Shapes straddle the 4-row blocking: multiples of 4, remainders 1–3,
  // tall, wide, and single-row/column edge cases.
  const std::size_t shapes[][2] = {{1, 1},  {1, 7},  {3, 5},  {4, 4},
                                   {5, 3},  {7, 1},  {8, 12}, {9, 2},
                                   {13, 6}, {64, 256}, {255, 33}};
  int seed = 100;
  for (const auto& shape : shapes) {
    const Matrix a = random_matrix(shape[0], shape[1], seed++);
    const Vector x = random_vector(shape[1], seed++);
    const Vector blocked = multiply(a, x);
    const Vector naive = naive_gemv(a, x);
    ASSERT_EQ(blocked.size(), naive.size());
    for (std::size_t i = 0; i < blocked.size(); ++i) {
      EXPECT_NEAR(blocked[i], naive[i], 1e-11 * (1.0 + std::abs(naive[i])))
          << shape[0] << "x" << shape[1] << " row " << i;
    }

    Vector into(shape[0]);
    multiply_into(a, x, into);
    EXPECT_EQ(into, blocked);  // same kernel, bit-identical
  }
}

TEST(Matrix, BlockedGemvTransposeMatchesNaiveOnOddAndNonSquareShapes) {
  const std::size_t shapes[][2] = {{1, 1}, {1, 9}, {2, 7},  {4, 4},
                                   {5, 5}, {6, 3}, {11, 8}, {33, 255}};
  int seed = 300;
  for (const auto& shape : shapes) {
    const Matrix a = random_matrix(shape[0], shape[1], seed++);
    const Vector y = random_vector(shape[0], seed++);
    const Vector blocked = multiply_transpose(a, y);
    const Vector naive = naive_gemv_transpose(a, y);
    ASSERT_EQ(blocked.size(), naive.size());
    for (std::size_t j = 0; j < blocked.size(); ++j) {
      EXPECT_NEAR(blocked[j], naive[j], 1e-11 * (1.0 + std::abs(naive[j])))
          << shape[0] << "x" << shape[1] << " col " << j;
    }

    Vector into(shape[1]);
    multiply_transpose_into(a, y, into);
    EXPECT_EQ(into, blocked);
  }
}

TEST(Matrix, BlockedGemvTransposeHandlesZeroEntriesInY) {
  // The seed kernel skipped rows where y[i] == 0; the blocked kernel is
  // branch-free and must produce the same result.
  Matrix a(6, 3);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a(i, j) = static_cast<double>(i * 3 + j + 1);
    }
  }
  const Vector y{0.0, 2.0, 0.0, -1.0, 0.0, 0.5};
  const Vector fast = multiply_transpose(a, y);
  const Vector naive = naive_gemv_transpose(a, y);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(fast[j], naive[j]);
}

TEST(Matrix, MultiplyIntoValidatesShapes) {
  const Matrix a = random_matrix(4, 6, 42);
  Vector y(4);
  EXPECT_THROW(multiply_into(a, Vector(5), y), std::invalid_argument);
  Vector x(6);
  EXPECT_THROW(multiply_transpose_into(a, Vector(3), x),
               std::invalid_argument);
  // Destination is resized, not validated.
  Vector wrong_size(1);
  multiply_into(a, Vector(6), wrong_size);
  EXPECT_EQ(wrong_size.size(), 4u);
}

TEST(Matrix, MatrixMultiplyAssociatesWithIdentity) {
  const Matrix a = random_matrix(4, 5, 3);
  const Matrix ai = multiply(a, Matrix::identity(5));
  const Matrix ia = multiply(Matrix::identity(4), a);
  EXPECT_LT(max_abs_diff(a, ai), 1e-15);
  EXPECT_LT(max_abs_diff(a, ia), 1e-15);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  const Matrix a = random_matrix(7, 3, 4);
  const Matrix g1 = gram(a);
  const Matrix g2 = multiply(transpose(a), a);
  EXPECT_LT(max_abs_diff(g1, g2), 1e-12);
}

TEST(Matrix, NormalizeColumnsUnitNorm) {
  Matrix a = random_matrix(10, 4, 5);
  normalize_columns(a);
  for (std::size_t j = 0; j < 4; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < 10; ++i) acc += a(i, j) * a(i, j);
    EXPECT_NEAR(acc, 1.0, 1e-12);
  }
}

TEST(Matrix, NormalizeColumnsLeavesZeroColumn) {
  Matrix a(3, 2);
  a(0, 1) = 2.0;
  normalize_columns(a);
  EXPECT_EQ(a(0, 0), 0.0);
  EXPECT_NEAR(a(0, 1), 1.0, 1e-15);
}

TEST(Cholesky, SolvesSpdSystem) {
  const Matrix b = random_matrix(5, 5, 6);
  Matrix spd = gram(b);
  for (std::size_t i = 0; i < 5; ++i) spd(i, i) += 5.0;
  const Vector x_true = random_vector(5, 7);
  const Vector rhs = multiply(spd, x_true);
  const Vector x = Cholesky(spd).solve(rhs);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky(Matrix(3, 4)), std::invalid_argument);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::identity(2);
  a(1, 1) = -1.0;
  EXPECT_THROW(Cholesky{a}, std::runtime_error);
}

TEST(Cholesky, FactorReproducesMatrix) {
  const Matrix b = random_matrix(4, 4, 8);
  Matrix spd = gram(b);
  for (std::size_t i = 0; i < 4; ++i) spd(i, i) += 3.0;
  const Cholesky chol(spd);
  const Matrix l = chol.factor();
  const Matrix llt = multiply(l, transpose(l));
  EXPECT_LT(max_abs_diff(spd, llt), 1e-10);
}

TEST(HouseholderQr, SolvesSquareSystem) {
  const Matrix a = random_matrix(6, 6, 9);
  const Vector x_true = random_vector(6, 10);
  const Vector b = multiply(a, x_true);
  const Vector x = HouseholderQr(a).solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(HouseholderQr, LeastSquaresResidualOrthogonal) {
  const Matrix a = random_matrix(12, 5, 11);
  const Vector b = random_vector(12, 12);
  const Vector x = least_squares(a, b);
  // Normal equations: Aᵀ(b − Ax) = 0.
  Vector r = b - multiply(a, x);
  const Vector atr = multiply_transpose(a, r);
  EXPECT_LT(norm_inf(atr), 1e-9);
}

TEST(HouseholderQr, RejectsUnderdetermined) {
  EXPECT_THROW(HouseholderQr(Matrix(3, 5)), std::invalid_argument);
}

TEST(HouseholderQr, DetectsRankDeficiency) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // Dependent column.
  }
  EXPECT_THROW(HouseholderQr(a).solve(Vector(4)), std::runtime_error);
}

TEST(HouseholderQr, RFactorIsUpperTriangularAndConsistent) {
  const Matrix a = random_matrix(8, 4, 13);
  const HouseholderQr qr(a);
  const Matrix r = qr.r();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(r(i, j), 0.0);
  }
  // ‖R‖F == ‖A‖F for an orthogonal factorization.
  EXPECT_NEAR(frobenius_norm(r), frobenius_norm(a), 1e-9);
}

TEST(TriangularSolvers, RoundTrip) {
  Matrix l(3, 3);
  l(0, 0) = 2;
  l(1, 0) = 1;
  l(1, 1) = 3;
  l(2, 0) = -1;
  l(2, 1) = 0.5;
  l(2, 2) = 4;
  const Vector x_true{1.0, -2.0, 0.5};
  EXPECT_EQ(solve_lower(l, multiply(l, x_true)).size(), 3u);
  const Vector x = solve_lower(l, multiply(l, x_true));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
  const Matrix u = transpose(l);
  const Vector xu = solve_upper(u, multiply(u, x_true));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(xu[i], x_true[i], 1e-12);
}

TEST(TriangularSolvers, ZeroDiagonalThrows) {
  Matrix l = Matrix::identity(2);
  l(1, 1) = 0.0;
  EXPECT_THROW(solve_lower(l, Vector(2)), std::invalid_argument);
  EXPECT_THROW(solve_upper(l, Vector(2)), std::invalid_argument);
}

TEST(LinearOperator, FromMatrixMatchesDense) {
  const Matrix a = random_matrix(4, 6, 14);
  const LinearOperator op = LinearOperator::from_matrix(a);
  EXPECT_EQ(op.rows(), 4u);
  EXPECT_EQ(op.cols(), 6u);
  const Vector x = random_vector(6, 15);
  const Vector y1 = op.apply(x);
  const Vector y2 = multiply(a, x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(LinearOperator, DimensionValidation) {
  const LinearOperator op =
      LinearOperator::from_matrix(random_matrix(4, 6, 16));
  EXPECT_THROW(op.apply(Vector(4)), std::invalid_argument);
  EXPECT_THROW(op.apply_adjoint(Vector(6)), std::invalid_argument);
}

TEST(LinearOperator, VstackStacksAndAdjoints) {
  const Matrix a = random_matrix(3, 5, 17);
  const Matrix b = random_matrix(2, 5, 18);
  const LinearOperator stacked = LinearOperator::vstack(
      LinearOperator::from_matrix(a), LinearOperator::from_matrix(b));
  EXPECT_EQ(stacked.rows(), 5u);
  EXPECT_EQ(stacked.cols(), 5u);
  EXPECT_LT(adjoint_mismatch(stacked), 1e-12);
  const Vector x = random_vector(5, 19);
  const Vector y = stacked.apply(x);
  const Vector ya = multiply(a, x);
  const Vector yb = multiply(b, x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], ya[i], 1e-14);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_NEAR(y[3 + i], yb[i], 1e-14);
}

TEST(LinearOperator, ComposeMatchesProduct) {
  const Matrix a = random_matrix(3, 4, 20);
  const Matrix b = random_matrix(4, 6, 21);
  const LinearOperator composed = LinearOperator::from_matrix(a).compose(
      LinearOperator::from_matrix(b));
  const Matrix ab = multiply(a, b);
  const Vector x = random_vector(6, 22);
  const Vector y1 = composed.apply(x);
  const Vector y2 = multiply(ab, x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
  EXPECT_LT(adjoint_mismatch(composed), 1e-12);
}

TEST(LinearOperator, IdentityIsIdentity) {
  const LinearOperator id = LinearOperator::identity(4);
  const Vector x = random_vector(4, 23);
  EXPECT_EQ(id.apply(x), x);
  EXPECT_EQ(id.apply_adjoint(x), x);
}

TEST(OperatorNorm, MatchesKnownSingularValue) {
  // Diagonal operator: norm is max |diag|.
  Matrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = -7.0;
  d(2, 2) = 3.0;
  const double est =
      operator_norm_estimate(LinearOperator::from_matrix(d), 200);
  EXPECT_NEAR(est, 7.0, 1e-6);
}

TEST(OperatorNorm, IdentityHasUnitNorm) {
  EXPECT_NEAR(operator_norm_estimate(LinearOperator::identity(10), 30), 1.0,
              1e-9);
}

TEST(ConjugateGradient, SolvesSpdSystem) {
  const Matrix b = random_matrix(8, 8, 24);
  Matrix spd = gram(b);
  for (std::size_t i = 0; i < 8; ++i) spd(i, i) += 4.0;
  const Vector x_true = random_vector(8, 25);
  const Vector rhs = multiply(spd, x_true);
  const CgResult res =
      conjugate_gradient(LinearOperator::from_matrix(spd), rhs, 200, 1e-12);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-7);
}

TEST(ConjugateGradient, ZeroRhsGivesZero) {
  const CgResult res = conjugate_gradient(LinearOperator::identity(5),
                                          Vector(5), 10, 1e-12);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.x, Vector(5));
}

TEST(AdjointMismatch, DetectsWrongAdjoint) {
  // Deliberately wrong adjoint (scaled by 2).
  const LinearOperator bad(
      3, 3, [](const Vector& x) { return x; },
      [](const Vector& y) { return 2.0 * y; });
  EXPECT_GT(adjoint_mismatch(bad), 0.1);
}

}  // namespace
}  // namespace csecg::linalg

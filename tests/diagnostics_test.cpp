// Unit tests for sensing diagnostics (coherence, Welch bound, RIP proxy)
// and the DCT dictionary.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "csecg/dsp/dct.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"
#include "csecg/sensing/diagnostics.hpp"
#include "csecg/sensing/matrices.hpp"

namespace csecg {
namespace {

using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Coherence / Welch bound.

TEST(MutualCoherence, OrthogonalColumnsZero) {
  EXPECT_DOUBLE_EQ(sensing::mutual_coherence(Matrix::identity(4)), 0.0);
}

TEST(MutualCoherence, DuplicateColumnsOne) {
  Matrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  EXPECT_NEAR(sensing::mutual_coherence(a), 1.0, 1e-12);
}

TEST(MutualCoherence, KnownPairValue) {
  // Columns (1,0) and (1,1)/√2: coherence = 1/√2.
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(1, 1) = 1.0;
  EXPECT_NEAR(sensing::mutual_coherence(a), 1.0 / std::numbers::sqrt2,
              1e-12);
}

TEST(MutualCoherence, Validation) {
  EXPECT_THROW(sensing::mutual_coherence(Matrix(3, 1)),
               std::invalid_argument);
  EXPECT_THROW(sensing::mutual_coherence(Matrix(3, 3)),
               std::invalid_argument);  // Zero columns.
}

TEST(WelchBound, KnownValuesAndValidation) {
  // m=2, n=4: √(2/(2·3)) = 1/√3.
  EXPECT_NEAR(sensing::welch_bound(2, 4), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_THROW(sensing::welch_bound(4, 4), std::invalid_argument);
  EXPECT_THROW(sensing::welch_bound(0, 4), std::invalid_argument);
}

TEST(WelchBound, RademacherCoherenceAboveBound) {
  sensing::SensingConfig config;
  config.measurements = 32;
  config.window = 96;
  const Matrix phi = sensing::make_sensing_matrix(config);
  const double mu = sensing::mutual_coherence(phi);
  EXPECT_GE(mu, sensing::welch_bound(32, 96) - 1e-12);
  EXPECT_LT(mu, 0.8);  // Far from degenerate.
}

// ---------------------------------------------------------------------------
// RIP proxy.

TEST(RipEstimate, Validation) {
  const Matrix a(8, 16);
  EXPECT_THROW(sensing::restricted_isometry_estimate(a, 0, 3),
               std::invalid_argument);
  EXPECT_THROW(sensing::restricted_isometry_estimate(a, 9, 3),
               std::invalid_argument);
  EXPECT_THROW(sensing::restricted_isometry_estimate(a, 4, 0),
               std::invalid_argument);
}

TEST(RipEstimate, IdentityIsPerfectIsometry) {
  const auto est = sensing::restricted_isometry_estimate(
      Matrix::identity(16), 4, 5);
  EXPECT_NEAR(est.sigma_min, 1.0, 1e-6);
  EXPECT_NEAR(est.sigma_max, 1.0, 1e-6);
  EXPECT_NEAR(est.delta(), 0.0, 1e-5);
}

TEST(RipEstimate, GaussianNearIsometryAtLowSparsity) {
  sensing::SensingConfig config;
  config.ensemble = sensing::Ensemble::kGaussian;
  config.measurements = 96;
  config.window = 192;
  const Matrix phi = sensing::make_sensing_matrix(config);
  const auto est = sensing::restricted_isometry_estimate(phi, 4, 10, 7);
  EXPECT_GT(est.sigma_min, 0.6);
  EXPECT_LT(est.sigma_max, 1.4);
  EXPECT_LT(est.delta(), 1.0);
}

TEST(RipEstimate, DeltaGrowsWithSparsity) {
  sensing::SensingConfig config;
  config.measurements = 48;
  config.window = 128;
  const Matrix phi = sensing::make_sensing_matrix(config);
  const auto small_k = sensing::restricted_isometry_estimate(phi, 2, 20, 3);
  const auto big_k = sensing::restricted_isometry_estimate(phi, 24, 20, 3);
  EXPECT_LT(small_k.delta(), big_k.delta());
}

// ---------------------------------------------------------------------------
// DCT.

TEST(Dct, Validation) {
  EXPECT_THROW(dsp::Dct(0), std::invalid_argument);
  const dsp::Dct dct(8);
  EXPECT_THROW(dct.forward(Vector(7)), std::invalid_argument);
  EXPECT_THROW(dct.inverse(Vector(9)), std::invalid_argument);
}

TEST(Dct, PerfectReconstruction) {
  const dsp::Dct dct(64);
  rng::Xoshiro256 gen(11);
  Vector x(64);
  for (auto& v : x) v = rng::normal(gen);
  const Vector rec = dct.inverse(dct.forward(x));
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(rec[i], x[i], 1e-10);
}

TEST(Dct, EnergyPreserved) {
  const dsp::Dct dct(128);
  rng::Xoshiro256 gen(12);
  Vector x(128);
  for (auto& v : x) v = rng::normal(gen);
  EXPECT_NEAR(linalg::norm2(dct.forward(x)), linalg::norm2(x), 1e-10);
}

TEST(Dct, ConstantSignalIsDcOnly) {
  const dsp::Dct dct(32);
  const Vector x(32, 3.0);
  const Vector coeffs = dct.forward(x);
  EXPECT_NEAR(coeffs[0], 3.0 * std::sqrt(32.0), 1e-10);
  for (std::size_t k = 1; k < 32; ++k) EXPECT_NEAR(coeffs[k], 0.0, 1e-10);
}

TEST(Dct, PureToneIsOneCoefficient) {
  const std::size_t n = 64;
  const dsp::Dct dct(n);
  // DCT-II basis vector k=5 as the signal: coefficients = e_5.
  Vector unit(n);
  unit[5] = 1.0;
  const Vector tone = dct.inverse(unit);
  const Vector coeffs = dct.forward(tone);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(coeffs[k], k == 5 ? 1.0 : 0.0, 1e-10);
  }
}

TEST(Dct, SynthesisOperatorOrthonormal) {
  const dsp::Dct dct(48);
  const auto psi = dct.synthesis_operator();
  EXPECT_LT(linalg::adjoint_mismatch(psi), 1e-12);
  EXPECT_NEAR(linalg::operator_norm_estimate(psi, 60), 1.0, 1e-8);
}

}  // namespace
}  // namespace csecg

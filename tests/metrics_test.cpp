// Unit tests for csecg::metrics — PRD/SNR/CR definitions and the summary /
// box-plot statistics used by the experiment harness.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "csecg/metrics/quality.hpp"
#include "csecg/metrics/stats.hpp"

namespace csecg::metrics {
namespace {

using linalg::Vector;

TEST(Prd, PerfectReconstructionIsZero) {
  const Vector x{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(prd(x, x), 0.0);
}

TEST(Prd, KnownValue) {
  const Vector x{3.0, 4.0};          // ‖x‖ = 5
  const Vector y{3.0, 3.0};          // error norm = 1
  EXPECT_DOUBLE_EQ(prd(x, y), 20.0);  // 1/5·100
}

TEST(Prd, MismatchedSizesThrow) {
  EXPECT_THROW(prd(Vector{1.0}, Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(prd(Vector{}, Vector{}), std::invalid_argument);
  EXPECT_THROW(prd(Vector{0.0, 0.0}, Vector{1.0, 1.0}),
               std::invalid_argument);
}

TEST(Prd, ZeroMeanVariantIgnoresSharedBaseline) {
  // Raw PRD shrinks when a large DC offset inflates ‖x‖; the zero-mean
  // variant is invariant to it.
  const Vector x{1.0, -1.0, 1.0, -1.0};
  const Vector y{0.5, -0.5, 0.5, -0.5};
  Vector x_off = x;
  Vector y_off = y;
  for (std::size_t i = 0; i < 4; ++i) {
    x_off[i] += 1000.0;
    y_off[i] += 1000.0;
  }
  EXPECT_NEAR(prd_zero_mean(x, y), prd_zero_mean(x_off, y_off), 1e-9);
  EXPECT_LT(prd(x_off, y_off), prd(x, y));
}

TEST(Prd, ZeroMeanConstantReferenceThrows) {
  EXPECT_THROW(prd_zero_mean(Vector{2.0, 2.0}, Vector{1.0, 1.0}),
               std::invalid_argument);
}

TEST(Snr, PrdSnrRoundTrip) {
  for (double p : {0.5, 1.0, 5.0, 20.0, 100.0}) {
    EXPECT_NEAR(prd_from_snr(snr_from_prd(p)), p, 1e-9);
  }
}

TEST(Snr, PaperAnchorValues) {
  // PRD = 1% ⇒ SNR = 40 dB; PRD = 10% ⇒ 20 dB; PRD = 100% ⇒ 0 dB.
  EXPECT_NEAR(snr_from_prd(1.0), 40.0, 1e-12);
  EXPECT_NEAR(snr_from_prd(10.0), 20.0, 1e-12);
  EXPECT_NEAR(snr_from_prd(100.0), 0.0, 1e-12);
}

TEST(Snr, PerfectReconstructionReturnsCapInsteadOfThrowing) {
  // A window that reconstructs exactly (PRD == 0, reachable via the
  // zero-loss decode_lossy fallback on a constant window) is a success;
  // it must not abort the whole run (ISSUE 3).
  EXPECT_DOUBLE_EQ(snr_from_prd(0.0), kSnrCapDb);
  EXPECT_DOUBLE_EQ(snr_from_prd(kPrdFloorPercent), kSnrCapDb);
  EXPECT_DOUBLE_EQ(snr_from_prd(kPrdFloorPercent / 10.0), kSnrCapDb);
  // Just above the floor: the exact formula again, continuous at the cap.
  EXPECT_NEAR(snr_from_prd(kPrdFloorPercent * 1.0001), kSnrCapDb, 1e-2);
  // The cap is consistent with the documented floor.
  EXPECT_NEAR(prd_from_snr(kSnrCapDb), kPrdFloorPercent, 1e-22);
}

TEST(Snr, NegativeOrNanPrdStillThrows) {
  EXPECT_THROW(snr_from_prd(-1.0), std::invalid_argument);
  EXPECT_THROW(snr_from_prd(std::nan("")), std::invalid_argument);
}

TEST(Snr, IdenticalSignalsYieldCappedSnrEndToEnd) {
  const Vector x{3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(snr(x, x), kSnrCapDb);
}

TEST(Snr, DirectMatchesViaPrd) {
  const Vector x{3.0, 4.0};
  const Vector y{3.0, 3.0};
  EXPECT_NEAR(snr(x, y), snr_from_prd(prd(x, y)), 1e-12);
}

TEST(CompressionRatio, Equation3) {
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 500), 50.0);
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 1000), 0.0);
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 0), 100.0);
  // Expansion yields a negative CR rather than a silent clamp.
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 1200), -20.0);
  EXPECT_THROW(compression_ratio(0, 10), std::invalid_argument);
}

TEST(Overhead, Equation2PaperAnchor) {
  // Paper §IV: 7-bit channel ⇒ 7.86% overhead ⇒ compressed fraction 13.47%.
  const double di = side_channel_overhead(0.1347, 7);
  EXPECT_NEAR(di, 7.86, 0.01);
  EXPECT_THROW(side_channel_overhead(-0.1, 7), std::invalid_argument);
  EXPECT_THROW(side_channel_overhead(0.5, 0), std::invalid_argument);
}

TEST(Overhead, ScalesLinearlyInBits) {
  const double d4 = side_channel_overhead(0.25, 4);
  const double d8 = side_channel_overhead(0.25, 8);
  EXPECT_NEAR(d8, 2.0 * d4, 1e-12);
}

TEST(NetCr, PaperAnchor) {
  // 81% CS CR − 7.86% overhead ≈ 73.14% net (paper §V).
  EXPECT_NEAR(net_compression_ratio(81.0, 7.86), 73.14, 1e-9);
}

TEST(Summary, BasicMoments) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, SingleValue) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Summary, EmptyThrows) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 17.5);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(BoxStats, NoOutliers) {
  const BoxStats b = box_stats({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 5.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(BoxStats, DetectsOutliers) {
  // 100 is far beyond q3 + 1.5·IQR.
  const BoxStats b = box_stats({1.0, 2.0, 3.0, 4.0, 5.0, 100.0});
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100.0);
  // Whisker stops at the most extreme inlier, matching MATLAB boxplot.
  EXPECT_DOUBLE_EQ(b.whisker_high, 5.0);
}

TEST(BoxStats, AllEqualValues) {
  const BoxStats b = box_stats({2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.q3, 2.0);
  EXPECT_DOUBLE_EQ(b.whisker_low, 2.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 2.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(MadOutliers, KnownFence) {
  // median = 20, |v − 20| = {10, 5, 0, 5, 10} → MAD = 5.
  const std::vector<double> values{10.0, 15.0, 20.0, 25.0, 30.0};
  EXPECT_DOUBLE_EQ(mad_low_threshold(values, 2.0),
                   20.0 - 2.0 * 1.4826 * 5.0);
}

TEST(MadOutliers, FlagsOnlyTheLowTail) {
  // One window collapsed; the fence must catch it and nothing else.
  const std::vector<double> values{21.0, 22.0, 20.0, 21.5, 2.0, 22.5};
  const auto outliers = mad_low_outliers(values);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], 4u);
  // A symmetric high value is NOT flagged: the fence is one-sided (low
  // quality hurts; unusually good windows do not).
  const std::vector<double> high{21.0, 22.0, 20.0, 21.5, 40.0, 22.5};
  EXPECT_TRUE(mad_low_outliers(high).empty());
}

TEST(MadOutliers, DegenerateMadFlagsNothing) {
  // All-equal samples: MAD = 0, fence = median, and the comparison is
  // strict, so nothing is an outlier.
  const std::vector<double> values{7.0, 7.0, 7.0, 7.0};
  EXPECT_DOUBLE_EQ(mad_low_threshold(values), 7.0);
  EXPECT_TRUE(mad_low_outliers(values).empty());
}

TEST(MadOutliers, EmptyAndNegativeKThrow) {
  EXPECT_THROW(mad_low_threshold({}), std::invalid_argument);
  EXPECT_THROW(mad_low_threshold({1.0}, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace csecg::metrics

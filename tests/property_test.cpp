// Parameterized property suites: invariants that must hold across whole
// parameter ranges, not just at single design points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "csecg/coding/delta_huffman_codec.hpp"
#include "csecg/coding/zero_run_codec.hpp"
#include "csecg/core/frontend.hpp"
#include "csecg/dsp/dwt.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/power/models.hpp"
#include "csecg/recovery/pdhg.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/sensing/lowres_channel.hpp"
#include "csecg/sensing/matrices.hpp"
#include "csecg/sensing/quantizer.hpp"

namespace csecg {
namespace {

using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Quantizer invariants over every bit depth.

class QuantizerBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerBitsTest, FloorBoxAlwaysContainsSample) {
  const int bits = GetParam();
  const sensing::Quantizer q(bits, 0.0, 2048.0,
                             sensing::QuantizerMode::kFloor);
  rng::Xoshiro256 gen(static_cast<std::uint64_t>(bits));
  for (int i = 0; i < 500; ++i) {
    const double v = rng::uniform(gen, 0.0, 2047.999);
    const double edge = q.lower_edge(q.code(v));
    ASSERT_LE(edge, v);
    ASSERT_GT(edge + q.step(), v);
  }
}

TEST_P(QuantizerBitsTest, RoundErrorHalfStep) {
  const int bits = GetParam();
  const sensing::Quantizer q(bits, -100.0, 100.0,
                             sensing::QuantizerMode::kRound);
  rng::Xoshiro256 gen(static_cast<std::uint64_t>(bits) + 100);
  for (int i = 0; i < 500; ++i) {
    const double v = rng::uniform(gen, -100.0, 99.999);
    ASSERT_LE(std::abs(q.reconstruct(q.code(v)) - v),
              q.step() / 2.0 + 1e-12);
  }
}

TEST_P(QuantizerBitsTest, StepTimesLevelsIsRange) {
  const int bits = GetParam();
  const sensing::Quantizer q(bits, 0.0, 2048.0);
  EXPECT_NEAR(q.step() * static_cast<double>(q.levels()), 2048.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BitDepths, QuantizerBitsTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12));

// ---------------------------------------------------------------------------
// Low-res channel + entropy codecs across every paper bit depth.

class LowResBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(LowResBitsTest, ScalarAndZeroRunCodecsRoundTrip) {
  const int bits = GetParam();
  sensing::LowResConfig config;
  config.bits = bits;
  const sensing::LowResChannel channel(config);

  rng::Xoshiro256 gen(static_cast<std::uint64_t>(bits) * 7 + 1);
  std::vector<std::vector<std::int64_t>> corpus;
  for (int w = 0; w < 6; ++w) {
    Vector window(256);
    double level = 1024.0;
    for (auto& v : window) {
      level += rng::normal(gen, 0.0, 8.0);
      level = std::clamp(level, 0.0, 2047.0);
      v = level;
    }
    corpus.push_back(channel.sample(window).codes);
  }
  const auto scalar = coding::DeltaHuffmanCodec::train(corpus, bits);
  const auto zero_run = coding::ZeroRunDeltaCodec::train(corpus, bits);
  for (const auto& codes : corpus) {
    std::size_t bits_out = 0;
    ASSERT_EQ(scalar.decode(scalar.encode(codes, bits_out), codes.size()),
              codes);
    ASSERT_EQ(
        zero_run.decode(zero_run.encode(codes, bits_out), codes.size()),
        codes);
  }
}

TEST_P(LowResBitsTest, BoxWidthIsExactStep) {
  const int bits = GetParam();
  sensing::LowResConfig config;
  config.bits = bits;
  const sensing::LowResChannel channel(config);
  EXPECT_DOUBLE_EQ(channel.step(),
                   std::pow(2.0, 11 - bits));
}

INSTANTIATE_TEST_SUITE_P(PaperBitRange, LowResBitsTest,
                         ::testing::Range(3, 11));

// ---------------------------------------------------------------------------
// DWT invariants across (family, levels).

using DwtParam = std::tuple<dsp::WaveletFamily, int>;
class DwtLevelsTest : public ::testing::TestWithParam<DwtParam> {};

TEST_P(DwtLevelsTest, PerfectReconstructionAndEnergy) {
  const auto [family, levels] = GetParam();
  const std::size_t n = 256;
  const dsp::Dwt dwt(family, n, levels);
  rng::Xoshiro256 gen(static_cast<std::uint64_t>(levels) * 31 + 5);
  Vector x(n);
  for (auto& v : x) v = rng::normal(gen);
  const Vector coeffs = dwt.forward(x);
  ASSERT_NEAR(linalg::norm2(coeffs), linalg::norm2(x), 1e-9);
  const Vector rec = dwt.inverse(coeffs);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(rec[i], x[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndLevels, DwtLevelsTest,
    ::testing::Combine(::testing::Values(dsp::WaveletFamily::kHaar,
                                         dsp::WaveletFamily::kDb4,
                                         dsp::WaveletFamily::kSym6),
                       ::testing::Values(1, 2, 4, 6)));

// ---------------------------------------------------------------------------
// PDHG invariants across measurement counts.

class PdhgMeasurementsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PdhgMeasurementsTest, SolutionFeasibleAndL1Minimal) {
  const std::size_t m = GetParam();
  const std::size_t n = 128;
  rng::Xoshiro256 gen(m);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng::normal(gen);
  }
  linalg::normalize_columns(a);
  Vector x_true(n);
  for (int k = 0; k < 4; ++k) {
    std::size_t idx = 0;
    do {
      idx = static_cast<std::size_t>(rng::uniform_below(gen, n));
    } while (x_true[idx] != 0.0);
    x_true[idx] = static_cast<double>(rng::rademacher(gen)) *
                  rng::uniform(gen, 1.0, 2.0);
  }
  const Vector y = linalg::multiply(a, x_true);
  const double sigma = 1e-4;
  recovery::PdhgOptions options;
  options.max_iterations = 3000;
  const auto result =
      recovery::solve_bpdn(linalg::LinearOperator::from_matrix(a),
                           linalg::LinearOperator::identity(n), y, sigma,
                           std::nullopt, options);
  // Feasibility: within the ball up to the solver's advertised slack.
  const double resid = linalg::norm2(linalg::multiply(a, result.x) - y);
  EXPECT_LE(resid,
            sigma + options.feasibility_tol * linalg::norm2(y) + 1e-9);
  // ℓ1 minimality vs the (feasible) ground truth.
  EXPECT_LE(linalg::norm1(result.x),
            linalg::norm1(x_true) * (1.0 + 5e-2));
}

INSTANTIATE_TEST_SUITE_P(MeasurementCounts, PdhgMeasurementsTest,
                         ::testing::Values(24, 32, 48, 64, 96));

// ---------------------------------------------------------------------------
// Front-end invariants across channel counts.

class FrontEndSweepTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static void SetUpTestSuite() {
    ecg::RecordConfig record_config;
    record_config.duration_seconds = 12.0;
    database_ = new ecg::SyntheticDatabase(record_config, 2015);
    base_ = new core::FrontEndConfig();
    base_->window = 256;
    base_->wavelet_levels = 4;
    base_->solver.max_iterations = 600;
    codec_ = new coding::DeltaHuffmanCodec(
        core::train_lowres_codec(*base_, *database_, 2, 2));
  }
  static void TearDownTestSuite() {
    delete codec_;
    delete base_;
    delete database_;
  }
  static ecg::SyntheticDatabase* database_;
  static core::FrontEndConfig* base_;
  static coding::DeltaHuffmanCodec* codec_;
};

ecg::SyntheticDatabase* FrontEndSweepTest::database_ = nullptr;
core::FrontEndConfig* FrontEndSweepTest::base_ = nullptr;
coding::DeltaHuffmanCodec* FrontEndSweepTest::codec_ = nullptr;

TEST_P(FrontEndSweepTest, HybridNeverWorseThanNormalAndBoxBounded) {
  core::FrontEndConfig config = *base_;
  config.measurements = GetParam();
  const core::Codec codec(config, *codec_);
  const Vector window = database_->record(0).window(500, 256);
  const auto hybrid = codec.roundtrip(window, core::DecodeMode::kHybrid);
  const auto normal = codec.roundtrip(window, core::DecodeMode::kNormalCs);
  const double snr_h =
      metrics::snr_from_prd(metrics::prd_zero_mean(window, hybrid.x));
  const double snr_n =
      metrics::snr_from_prd(metrics::prd_zero_mean(window, normal.x));
  EXPECT_GE(snr_h, snr_n - 0.5);  // Never meaningfully worse.
  // Box keeps the hybrid within two staircase steps everywhere.
  for (std::size_t i = 0; i < window.size(); ++i) {
    ASSERT_NEAR(hybrid.x[i], window[i], 32.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ChannelCounts, FrontEndSweepTest,
                         ::testing::Values(16, 32, 64, 96, 128));

// ---------------------------------------------------------------------------
// Power-model invariants across designs.

class PowerLinearityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(PowerLinearityTest, TotalPowerLinearInChannels) {
  const auto [window, fs] = GetParam();
  power::TechnologyParams tech;
  power::RmpiDesign a;
  a.window = window;
  a.nyquist_hz = fs;
  a.channels = 32;
  power::RmpiDesign b = a;
  b.channels = 128;
  const double pa = power::rmpi_power(a, tech).total();
  const double pb = power::rmpi_power(b, tech).total();
  EXPECT_NEAR(pb / pa, 4.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, PowerLinearityTest,
    ::testing::Combine(::testing::Values(std::size_t{256}, std::size_t{512},
                                         std::size_t{1024}),
                       ::testing::Values(360.0, 720.0, 1e6)));

// ---------------------------------------------------------------------------
// Sensing ensembles: adjoint consistency at several shapes.

using EnsembleParam = std::tuple<sensing::Ensemble, std::size_t>;
class EnsembleShapeTest : public ::testing::TestWithParam<EnsembleParam> {};

TEST_P(EnsembleShapeTest, OperatorAdjointConsistent) {
  const auto [ensemble, m] = GetParam();
  sensing::SensingConfig config;
  config.ensemble = ensemble;
  config.measurements = m;
  config.window = 128;
  const Matrix phi = sensing::make_sensing_matrix(config);
  EXPECT_LT(
      linalg::adjoint_mismatch(linalg::LinearOperator::from_matrix(phi)),
      1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    EnsemblesAndShapes, EnsembleShapeTest,
    ::testing::Combine(::testing::Values(sensing::Ensemble::kRademacher,
                                         sensing::Ensemble::kGaussian,
                                         sensing::Ensemble::kSparseBinary),
                       ::testing::Values(std::size_t{16}, std::size_t{64},
                                         std::size_t{128})));

}  // namespace
}  // namespace csecg

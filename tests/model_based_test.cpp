// Unit tests for model-based (structured) recovery: block projection,
// wavelet-tree projection, and block-CoSaMP recovery gains.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "csecg/linalg/matrix.hpp"
#include "csecg/recovery/greedy.hpp"
#include "csecg/recovery/model_based.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::recovery {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix gaussian_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng::normal(gen);
  }
  linalg::normalize_columns(a);
  return a;
}

/// k_blocks-block-sparse vector with the given block size.
Vector block_sparse_vector(std::size_t n, std::size_t block_size,
                           std::size_t k_blocks, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Vector x(n);
  const std::size_t blocks = n / block_size;
  std::set<std::size_t> chosen;
  while (chosen.size() < k_blocks) {
    chosen.insert(
        static_cast<std::size_t>(rng::uniform_below(gen, blocks)));
  }
  for (std::size_t b : chosen) {
    for (std::size_t i = 0; i < block_size; ++i) {
      x[b * block_size + i] = static_cast<double>(rng::rademacher(gen)) *
                              rng::uniform(gen, 1.0, 2.0);
    }
  }
  return x;
}

// ---------------------------------------------------------------------------
// Block model.

TEST(BlockModel, Validation) {
  EXPECT_THROW(validate(BlockModel{0}, 16), std::invalid_argument);
  EXPECT_THROW(validate(BlockModel{5}, 16), std::invalid_argument);
  EXPECT_NO_THROW(validate(BlockModel{4}, 16));
}

TEST(BlockProject, KeepsTopEnergyBlocks) {
  // Blocks of 2: energies 1, 100, 25 → keep blocks 1 and 2.
  const Vector coeffs{1.0, 0.0, 10.0, 0.0, 3.0, 4.0};
  const Vector out = block_project(coeffs, BlockModel{2}, 2);
  EXPECT_EQ(out, (Vector{0.0, 0.0, 10.0, 0.0, 3.0, 4.0}));
}

TEST(BlockProject, AllBlocksWhenKLarge) {
  const Vector coeffs{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(block_project(coeffs, BlockModel{2}, 99), coeffs);
}

TEST(BlockSupport, SortedIndices) {
  const Vector coeffs{0.0, 0.0, 5.0, 5.0, 1.0, 1.0};
  const auto support = block_support(coeffs, BlockModel{2}, 1);
  EXPECT_EQ(support, (std::vector<std::size_t>{2, 3}));
}

// ---------------------------------------------------------------------------
// Tree model.

TEST(TreeModel, Validation) {
  TreeModel bad;
  bad.n = 0;
  bad.levels = 2;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad.n = 12;  // Not divisible by 2^3.
  bad.levels = 3;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(TreeModel, ParentStructure) {
  // n=16, 2 levels: approx [0,4), detail2 [4,8), detail1 [8,16).
  TreeModel model;
  model.n = 16;
  model.levels = 2;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(model.parent(i), TreeModel::npos);
  }
  // detail2 parents sit in the approximation band at the same position.
  EXPECT_EQ(model.parent(4), 0u);
  EXPECT_EQ(model.parent(7), 3u);
  // detail1 parents sit in detail2, two children per parent.
  EXPECT_EQ(model.parent(8), 4u);
  EXPECT_EQ(model.parent(9), 4u);
  EXPECT_EQ(model.parent(14), 7u);
  EXPECT_EQ(model.parent(15), 7u);
  EXPECT_THROW(model.parent(16), std::invalid_argument);
}

TEST(TreeProject, ResultIsAncestorClosed) {
  TreeModel model;
  model.n = 32;
  model.levels = 3;
  rng::Xoshiro256 gen(3);
  Vector coeffs(32);
  for (auto& v : coeffs) v = rng::normal(gen);
  const Vector projected = tree_project(coeffs, model, 10);
  for (std::size_t i = 0; i < 32; ++i) {
    if (projected[i] == 0.0) continue;
    const std::size_t p = model.parent(i);
    if (p != TreeModel::npos) {
      EXPECT_NE(projected[p], 0.0) << "orphan coefficient " << i;
    }
  }
}

TEST(TreeProject, KeepsLargestWhenAlreadyTree) {
  // A single deep coefficient forces its ancestor chain in.
  TreeModel model;
  model.n = 16;
  model.levels = 2;
  Vector coeffs(16);
  coeffs[9] = 10.0;  // detail1; parent 4 (detail2); grandparent 0 (approx).
  const Vector projected = tree_project(coeffs, model, 3);
  EXPECT_EQ(projected[9], 10.0);
  // Ancestors are selected (value 0 in input, so they stay 0 in output,
  // but the chain must not have displaced the main coefficient).
  EXPECT_EQ(linalg::count_above(projected, 1e-12), 1u);
}

TEST(TreeProject, BudgetRoughlyRespected) {
  TreeModel model;
  model.n = 64;
  model.levels = 4;
  rng::Xoshiro256 gen(4);
  Vector coeffs(64);
  for (auto& v : coeffs) v = rng::normal(gen);
  const Vector projected = tree_project(coeffs, model, 12);
  const std::size_t kept = linalg::count_above(projected, 0.0) +
                           // count_above uses strict >, count zeros kept:
                           0;
  // Selected count may exceed k by at most one ancestor chain (≤ levels).
  EXPECT_LE(kept, 12u + 4u);
}

// ---------------------------------------------------------------------------
// Block CoSaMP.

TEST(BlockCoSaMp, Validation) {
  const Matrix a = gaussian_matrix(32, 64, 5);
  EXPECT_THROW(solve_block_cosamp(a, Vector(31), BlockModel{4}, 2),
               std::invalid_argument);
  EXPECT_THROW(solve_block_cosamp(a, Vector(32), BlockModel{5}, 2),
               std::invalid_argument);
  EXPECT_THROW(solve_block_cosamp(a, Vector(32), BlockModel{4}, 0),
               std::invalid_argument);
  EXPECT_THROW(solve_block_cosamp(a, Vector(32), BlockModel{4}, 99),
               std::invalid_argument);
}

TEST(BlockCoSaMp, ExactRecoveryOfBlockSparse) {
  const std::size_t n = 256;
  const std::size_t m = 64;
  const BlockModel model{4};
  const Matrix a = gaussian_matrix(m, n, 6);
  const Vector x_true = block_sparse_vector(n, 4, 4, 7);  // 16 nonzeros.
  const Vector y = linalg::multiply(a, x_true);
  GreedyOptions options;
  options.max_sparsity = 16;
  const GreedyResult res = solve_block_cosamp(a, y, model, 4, options);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(linalg::norm2(res.coefficients - x_true) /
                linalg::norm2(x_true),
            1e-6);
}

TEST(BlockCoSaMp, BeatsPlainCosampAtLowMeasurements) {
  // 16 nonzeros in 4 blocks; m = 56 is too small for plain CoSaMP's
  // per-atom selection but ample once the model collapses the support
  // search to 4 blocks (10/10 across seeds in calibration).
  const std::size_t n = 256;
  const std::size_t m = 56;
  const BlockModel model{4};
  const Matrix a = gaussian_matrix(m, n, 8);
  const Vector x_true = block_sparse_vector(n, 4, 4, 9);
  const Vector y = linalg::multiply(a, x_true);
  GreedyOptions options;
  options.max_sparsity = 16;
  const GreedyResult structured =
      solve_block_cosamp(a, y, model, 4, options);
  const GreedyResult plain = solve_cosamp(a, y, options);
  const double err_structured =
      linalg::norm2(structured.coefficients - x_true);
  const double err_plain = linalg::norm2(plain.coefficients - x_true);
  EXPECT_LT(err_structured, 0.5 * err_plain + 1e-9);
}

TEST(BlockCoSaMp, SupportIsUnionOfBlocks) {
  const std::size_t n = 128;
  const BlockModel model{8};
  const Matrix a = gaussian_matrix(64, n, 10);
  const Vector x_true = block_sparse_vector(n, 8, 2, 11);
  const Vector y = linalg::multiply(a, x_true);
  GreedyOptions options;
  options.max_sparsity = 16;
  const GreedyResult res = solve_block_cosamp(a, y, model, 2, options);
  EXPECT_EQ(res.support.size() % 8, 0u);
  for (std::size_t i = 0; i + 1 < res.support.size(); ++i) {
    if (res.support[i] % 8 != 7) {
      EXPECT_EQ(res.support[i + 1], res.support[i] + 1);
    }
  }
}

}  // namespace
}  // namespace csecg::recovery

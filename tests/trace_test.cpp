// Tests for the tracing ring buffers, the Chrome trace-event export, the
// per-window quality ledger, and the MAD outlier flags the runners attach
// to their reports (ISSUE 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "csecg/core/runner.hpp"
#include "csecg/link/session.hpp"
#include "csecg/obs/ledger.hpp"
#include "csecg/obs/registry.hpp"
#include "csecg/obs/trace.hpp"
#include "csecg/parallel/thread_pool.hpp"

namespace csecg {
namespace {

// The trace/ledger gates are process-wide, so every test pins them to the
// state it needs and drops back to disabled on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::set_ledger_enabled(false);
    obs::trace_reset();
    obs::ledger_reset();
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::set_ledger_enabled(false);
    obs::trace_reset();
    obs::ledger_reset();
  }
};

// Cheap structural JSON sanity: balanced braces/brackets outside strings.
void expect_balanced_json(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // Skip the escaped character.
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced at byte " << i;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceTest, ScopeEmitsCompleteEventWithArg) {
  obs::set_trace_enabled(true);
  {
    obs::TraceScope scope("trace_test.scope", "test", "items");
    scope.set_arg(42);
  }
  EXPECT_GE(obs::trace_event_count(), 1u);
  const std::string json = obs::trace_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trace_test.scope\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"items\":42}"), std::string::npos);
}

TEST_F(TraceTest, DisabledScopeRecordsNothingAndReadsNoClock) {
  ASSERT_FALSE(obs::trace_enabled());
  {
    obs::TraceScope scope("trace_test.dark", "test");
    obs::trace_instant("trace_test.dark_instant", "test");
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
  const std::string json = obs::trace_json();
  EXPECT_EQ(json.find("trace_test.dark"), std::string::npos);
}

TEST_F(TraceTest, InstantEventsCarryScopeMarker) {
  obs::set_trace_enabled(true);
  obs::trace_instant("trace_test.instant", "test", "iteration", 7);
  const std::string json = obs::trace_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"name\":\"trace_test.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"iteration\":7}"), std::string::npos);
}

TEST_F(TraceTest, FullRingDropsAndCountsInsteadOfGrowing) {
  obs::set_trace_enabled(true);
  const std::size_t capacity = obs::trace_capacity();
  const std::uint64_t dropped_before =
      obs::counter("trace.dropped_events").value();
  const std::size_t count_before = obs::trace_event_count();

  constexpr std::size_t kOverflow = 100;
  for (std::size_t i = 0; i < capacity + kOverflow; ++i) {
    obs::trace_instant("trace_test.flood", "test");
  }
  // This thread's buffer holds exactly `capacity` events; the overflow was
  // dropped and counted, never written.
  EXPECT_EQ(obs::trace_event_count() - count_before, capacity);
  EXPECT_GE(obs::counter("trace.dropped_events").value() - dropped_before,
            kOverflow);
}

TEST_F(TraceTest, ResetEmptiesEveryBuffer) {
  obs::set_trace_enabled(true);
  obs::trace_instant("trace_test.pre_reset", "test");
  ASSERT_GE(obs::trace_event_count(), 1u);
  obs::trace_reset();
  EXPECT_EQ(obs::trace_event_count(), 0u);
  EXPECT_EQ(obs::trace_json().find("trace_test.pre_reset"),
            std::string::npos);
}

TEST_F(TraceTest, ConcurrentWritersAllLand) {
  obs::set_trace_enabled(true);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        obs::trace_instant("trace_test.mt", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(obs::trace_event_count(), kThreads * kPerThread);
  expect_balanced_json(obs::trace_json());
}

TEST_F(TraceTest, LedgerMergesOutOfOrderAppendsBySequence) {
  obs::Ledger ledger;
  ledger.append(2, "{\"w\":2}");
  ledger.append(0, "{\"w\":0}");
  ledger.append(1, "{\"w\":1}");
  EXPECT_EQ(ledger.size(), 3u);
  EXPECT_EQ(ledger.jsonl(), "{\"w\":0}\n{\"w\":1}\n{\"w\":2}\n");
  ledger.reset();
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.jsonl(), "");
}

TEST_F(TraceTest, LedgerMergesAppendsFromManyThreads) {
  obs::Ledger ledger;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRows = 64;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, t] {
      for (std::size_t i = t; i < kRows; i += kThreads) {
        ledger.append(i, "{\"row\":" + std::to_string(i) + "}");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ledger.size(), kRows);
  std::string expected;
  for (std::size_t i = 0; i < kRows; ++i) {
    expected += "{\"row\":" + std::to_string(i) + "}\n";
  }
  EXPECT_EQ(ledger.jsonl(), expected);
}

// A small but real front end, shared by the end-to-end ledger tests.
core::FrontEndConfig small_config() {
  core::FrontEndConfig config;
  config.window = 256;
  config.measurements = 48;
  config.wavelet_levels = 4;
  config.solver.max_iterations = 300;
  return config;
}

TEST_F(TraceTest, RunRecordLedgerIsBitIdenticalAcrossThreadCounts) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 20.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  const core::FrontEndConfig config = small_config();
  const auto codec_book = core::train_lowres_codec(config, database, 2, 2);
  const core::Codec codec(config, codec_book);

  obs::set_ledger_enabled(true);

  parallel::ThreadPool serial(1);
  (void)core::run_database(codec, database, 2, 4, core::DecodeMode::kAuto,
                           serial);
  const std::string serial_ledger = obs::ledger_jsonl();
  obs::ledger_reset();

  parallel::ThreadPool threaded(4);
  (void)core::run_database(codec, database, 2, 4, core::DecodeMode::kAuto,
                           threaded);
  const std::string threaded_ledger = obs::ledger_jsonl();

  ASSERT_FALSE(serial_ledger.empty());
  EXPECT_EQ(serial_ledger, threaded_ledger);
  // 2 records × 4 windows, one row each, newline-terminated.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(serial_ledger.begin(), serial_ledger.end(), '\n')),
            8u);
  EXPECT_NE(serial_ledger.find("\"kind\":\"window\""), std::string::npos);
  EXPECT_NE(serial_ledger.find("\"solver\":\"pdhg\""), std::string::npos);
  EXPECT_NE(serial_ledger.find("\"decode_mode\":\"auto\""),
            std::string::npos);
  EXPECT_NE(serial_ledger.find("\"sigma\":"), std::string::npos);
  // Locale-proof doubles: no decimal commas anywhere in a ledger number.
  EXPECT_EQ(serial_ledger.find(",\","), std::string::npos);
}

TEST_F(TraceTest, LedgerDisabledRecordsNoRows) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 20.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  const core::FrontEndConfig config = small_config();
  const auto codec_book = core::train_lowres_codec(config, database, 2, 2);
  const core::Codec codec(config, codec_book);

  ASSERT_FALSE(obs::ledger_enabled());
  parallel::ThreadPool pool(1);
  (void)core::run_record(codec, database.record(0), 2,
                         core::DecodeMode::kAuto, pool);
  EXPECT_EQ(obs::ledger_size(), 0u);
}

TEST_F(TraceTest, LinkLedgerRowsCarryLossAccounting) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 20.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  const core::FrontEndConfig config = small_config();
  const auto codec_book = core::train_lowres_codec(config, database, 2, 2);

  link::LinkSessionConfig link_config;
  link_config.channel.kind = link::ChannelKind::kPacketErasure;
  link_config.channel.erasure_rate = 0.1;
  const link::LinkSession session(config, codec_book, link_config);

  obs::set_ledger_enabled(true);
  parallel::ThreadPool pool(2);
  const link::LinkRecordReport report =
      link::run_link_record(session, database.record(0), 4, 0, pool);

  const std::string ledger = obs::ledger_jsonl();
  ASSERT_FALSE(ledger.empty());
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(ledger.begin(), ledger.end(), '\n')),
            4u);
  EXPECT_NE(ledger.find("\"kind\":\"link_window\""), std::string::npos);
  EXPECT_NE(ledger.find("\"m_eff\":"), std::string::npos);
  EXPECT_NE(ledger.find("\"retransmissions\":"), std::string::npos);
  EXPECT_NE(ledger.find("\"energy_j\":"), std::string::npos);
  EXPECT_NE(ledger.find("\"boxed_samples\":"), std::string::npos);

  // The outlier fence is a real number and the flags point inside range.
  EXPECT_TRUE(std::isfinite(report.outlier_snr_threshold_db));
  for (const std::size_t w : report.outlier_windows) {
    EXPECT_LT(w, report.windows.size());
    EXPECT_LT(report.windows[w].snr, report.outlier_snr_threshold_db);
  }
}

TEST_F(TraceTest, RunRecordFlagsMadOutliers) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 20.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  const core::FrontEndConfig config = small_config();
  const auto codec_book = core::train_lowres_codec(config, database, 2, 2);
  const core::Codec codec(config, codec_book);

  parallel::ThreadPool pool(1);
  const core::RecordReport report = core::run_record(
      codec, database.record(0), 4, core::DecodeMode::kAuto, pool);
  EXPECT_TRUE(std::isfinite(report.outlier_snr_threshold_db));
  // Every flagged index is in range and strictly below the fence;
  // unflagged windows are at or above it.
  std::vector<bool> flagged(report.windows.size(), false);
  for (const std::size_t w : report.outlier_windows) {
    ASSERT_LT(w, report.windows.size());
    flagged[w] = true;
    EXPECT_LT(report.windows[w].snr, report.outlier_snr_threshold_db);
  }
  for (std::size_t w = 0; w < report.windows.size(); ++w) {
    if (!flagged[w]) {
      EXPECT_GE(report.windows[w].snr, report.outlier_snr_threshold_db);
    }
  }
}

TEST_F(TraceTest, PipelineStagesShowUpInTrace) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 20.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  const core::FrontEndConfig config = small_config();
  const auto codec_book = core::train_lowres_codec(config, database, 2, 2);
  const core::Codec codec(config, codec_book);

  obs::set_trace_enabled(true);
  obs::trace_reset();  // Drop anything the codec setup itself traced.
  parallel::ThreadPool pool(2);
  (void)core::run_record(codec, database.record(0), 3,
                         core::DecodeMode::kAuto, pool);

  const std::string json = obs::trace_json();
  expect_balanced_json(json);
  for (const char* stage :
       {"\"name\":\"runner.window\"", "\"name\":\"encode\"",
        "\"name\":\"decode\"", "\"name\":\"solver.pdhg.solve\""}) {
    EXPECT_NE(json.find(stage), std::string::npos) << stage;
  }
}

}  // namespace
}  // namespace csecg

// Unit tests for csecg::dsp — wavelet filter banks (QMF orthonormality for
// every family), DWT perfect reconstruction / orthonormality, FIR tools.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "csecg/dsp/dwt.hpp"
#include "csecg/dsp/fir.hpp"
#include "csecg/dsp/wavelet.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::dsp {
namespace {

using linalg::Vector;

Vector random_signal(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  Vector v(n);
  for (auto& x : v) x = rng::normal(g);
  return v;
}

// ---------------------------------------------------------------------------
// Wavelet filters: property tests over every family.

class WaveletFamilyTest : public ::testing::TestWithParam<WaveletFamily> {};

TEST_P(WaveletFamilyTest, LowpassSumsToSqrt2) {
  const Wavelet w = make_wavelet(GetParam());
  double sum = 0.0;
  for (double h : w.lowpass) sum += h;
  EXPECT_NEAR(sum, std::numbers::sqrt2, 1e-10) << wavelet_name(GetParam());
}

TEST_P(WaveletFamilyTest, HighpassSumsToZero) {
  const Wavelet w = make_wavelet(GetParam());
  double sum = 0.0;
  for (double g : w.highpass) sum += g;
  EXPECT_NEAR(sum, 0.0, 1e-10);
}

TEST_P(WaveletFamilyTest, QmfOrthonormality) {
  // Σ h[k]·h[k+2j] = δ_j and the same for g; cross products vanish.
  const Wavelet w = make_wavelet(GetParam());
  const auto len = w.length();
  for (std::size_t shift = 0; shift < len; shift += 2) {
    double hh = 0.0;
    double gg = 0.0;
    double hg = 0.0;
    for (std::size_t k = 0; k + shift < len; ++k) {
      hh += w.lowpass[k] * w.lowpass[k + shift];
      gg += w.highpass[k] * w.highpass[k + shift];
      hg += w.lowpass[k] * w.highpass[k + shift];
    }
    const double expected = shift == 0 ? 1.0 : 0.0;
    EXPECT_NEAR(hh, expected, 1e-10) << "shift " << shift;
    EXPECT_NEAR(gg, expected, 1e-10) << "shift " << shift;
    if (shift == 0) {
      EXPECT_NEAR(hg, 0.0, 1e-10);
    }
  }
}

TEST_P(WaveletFamilyTest, FilterLengthEven) {
  EXPECT_EQ(make_wavelet(GetParam()).length() % 2, 0u);
}

TEST_P(WaveletFamilyTest, NameRoundTrips) {
  const WaveletFamily family = GetParam();
  EXPECT_EQ(wavelet_from_name(wavelet_name(family)), family);
}

TEST_P(WaveletFamilyTest, PerfectReconstructionN128) {
  const Dwt dwt(GetParam(), 128, 3);
  const Vector x = random_signal(128, 99);
  const Vector rec = dwt.inverse(dwt.forward(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(rec[i], x[i], 1e-9) << wavelet_name(GetParam()) << " @" << i;
  }
}

TEST_P(WaveletFamilyTest, TransformPreservesEnergy) {
  const Dwt dwt(GetParam(), 256, 4);
  const Vector x = random_signal(256, 123);
  const Vector c = dwt.forward(x);
  EXPECT_NEAR(linalg::norm2(c), linalg::norm2(x), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, WaveletFamilyTest,
    ::testing::ValuesIn(all_wavelet_families()),
    [](const ::testing::TestParamInfo<WaveletFamily>& param_info) {
      return wavelet_name(param_info.param);
    });

TEST(Wavelet, UnknownNameThrows) {
  EXPECT_THROW(wavelet_from_name("db99"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DWT structure.

TEST(Dwt, RejectsBadConfigurations) {
  EXPECT_THROW(Dwt(WaveletFamily::kDb4, 0, 1), std::invalid_argument);
  EXPECT_THROW(Dwt(WaveletFamily::kDb4, 128, 0), std::invalid_argument);
  EXPECT_THROW(Dwt(WaveletFamily::kDb4, 100, 3), std::invalid_argument);
  EXPECT_THROW(Dwt(WaveletFamily::kDb4, 128, 8), std::invalid_argument);
}

TEST(Dwt, MaxLevels) {
  EXPECT_EQ(Dwt::max_levels(512), 9);
  EXPECT_EQ(Dwt::max_levels(360), 3);
  EXPECT_EQ(Dwt::max_levels(7), 0);
}

TEST(Dwt, ForwardRejectsWrongLength) {
  const Dwt dwt(WaveletFamily::kHaar, 64, 2);
  EXPECT_THROW(dwt.forward(Vector(63)), std::invalid_argument);
  EXPECT_THROW(dwt.inverse(Vector(65)), std::invalid_argument);
}

TEST(Dwt, HaarSingleLevelKnownValues) {
  const Dwt dwt(WaveletFamily::kHaar, 4, 1);
  const Vector x{1.0, 3.0, 5.0, 7.0};
  const Vector c = dwt.forward(x);
  const double s = std::numbers::sqrt2;
  // approx = (x0+x1)/√2, (x2+x3)/√2 ; detail = (x0−x1)/√2, (x2−x3)/√2.
  EXPECT_NEAR(c[0], 4.0 / s, 1e-12);
  EXPECT_NEAR(c[1], 12.0 / s, 1e-12);
  EXPECT_NEAR(c[2], -2.0 / s, 1e-12);
  EXPECT_NEAR(c[3], -2.0 / s, 1e-12);
}

TEST(Dwt, ConstantSignalAllEnergyInApprox) {
  const Dwt dwt(WaveletFamily::kDb4, 128, 3);
  const Vector x(128, 5.0);
  const Vector c = dwt.forward(x);
  // Every detail coefficient vanishes (filters have a vanishing moment).
  for (std::size_t i = 128 / 8; i < 128; ++i) EXPECT_NEAR(c[i], 0.0, 1e-9);
  // Energy preserved in the approximation band.
  double approx_energy = 0.0;
  for (std::size_t i = 0; i < 128 / 8; ++i) approx_energy += c[i] * c[i];
  EXPECT_NEAR(approx_energy, linalg::norm2_squared(x), 1e-7);
}

TEST(Dwt, LinearRampSparseUnderDb2) {
  // db2 has two vanishing moments: details of a linear ramp vanish away
  // from the periodic wrap-around.
  const std::size_t n = 64;
  const Dwt dwt(WaveletFamily::kDb2, n, 1);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i);
  const Vector c = dwt.forward(x);
  // Interior detail coefficients ~0 (skip the few affected by wrap).
  for (std::size_t i = n / 2 + 1; i < n - 2; ++i) {
    EXPECT_NEAR(c[i], 0.0, 1e-9) << i;
  }
}

TEST(Dwt, SynthesisOperatorIsOrthonormal) {
  const Dwt dwt(WaveletFamily::kSym6, 128, 4);
  const linalg::LinearOperator psi = dwt.synthesis_operator();
  EXPECT_LT(linalg::adjoint_mismatch(psi), 1e-12);
  EXPECT_NEAR(linalg::operator_norm_estimate(psi, 60), 1.0, 1e-8);
}

TEST(Dwt, MultiLevelMatchesRepeatedSingleLevel) {
  const std::size_t n = 64;
  const Vector x = random_signal(n, 7);
  const Dwt two(WaveletFamily::kDb3, n, 2);
  const Dwt one_full(WaveletFamily::kDb3, n, 1);
  const Dwt one_half(WaveletFamily::kDb3, n / 2, 1);
  const Vector c1 = one_full.forward(x);
  Vector approx(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) approx[i] = c1[i];
  const Vector c2 = one_half.forward(approx);
  const Vector c_ref = two.forward(x);
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(c_ref[i], c2[i], 1e-10);               // Coarse part.
    EXPECT_NEAR(c_ref[n / 2 + i], c1[n / 2 + i], 1e-10);  // Level-1 details.
  }
}

// ---------------------------------------------------------------------------
// FIR utilities.

TEST(Fir, LowpassUnitDcGain) {
  const auto h = design_lowpass(0.1, 31);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Fir, LowpassIsSymmetric) {
  const auto h = design_lowpass(0.2, 21);
  for (std::size_t i = 0; i < h.size() / 2; ++i) {
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
  }
}

TEST(Fir, LowpassRejectsBadArgs) {
  EXPECT_THROW(design_lowpass(0.0, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.5, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.1, 30), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.1, 1), std::invalid_argument);
}

TEST(Fir, LowpassAttenuatesHighFrequency) {
  const auto h = design_lowpass(0.05, 101);
  const std::size_t n = 512;
  Vector low(n);
  Vector high(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    low[i] = std::sin(2.0 * std::numbers::pi * 0.01 * t);
    high[i] = std::sin(2.0 * std::numbers::pi * 0.25 * t);
  }
  const Vector low_out = filter_same(low, h);
  const Vector high_out = filter_same(high, h);
  // Measure in the interior to avoid edge transients.
  double low_rms = 0.0;
  double high_rms = 0.0;
  for (std::size_t i = 128; i < n - 128; ++i) {
    low_rms += low_out[i] * low_out[i];
    high_rms += high_out[i] * high_out[i];
  }
  EXPECT_GT(low_rms, 50.0 * high_rms);
}

TEST(Fir, ConvolveKnownSequence) {
  const Vector x{1.0, 2.0, 3.0};
  const std::vector<double> h{1.0, -1.0};
  const Vector y = convolve(x, h);
  EXPECT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
  EXPECT_DOUBLE_EQ(y[3], -3.0);
}

TEST(Fir, ConvolveEmptyThrows) {
  EXPECT_THROW(convolve(Vector{}, {1.0}), std::invalid_argument);
  EXPECT_THROW(convolve(Vector{1.0}, {}), std::invalid_argument);
}

TEST(Fir, FilterSameIdentityImpulse) {
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> delta{0.0, 1.0, 0.0};
  const Vector y = filter_same(x, delta);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Fir, CircularConvolveImpulseShifts) {
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> h{0.0, 1.0};  // One-sample circular delay.
  const Vector y = circular_convolve(x, h);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
  EXPECT_DOUBLE_EQ(y[3], 3.0);
}

TEST(Fir, DecimateKeepsEveryKth) {
  Vector x(10);
  for (std::size_t i = 0; i < 10; ++i) x[i] = static_cast<double>(i);
  const Vector y = decimate(x, 3);
  EXPECT_EQ(y, (Vector{0.0, 3.0, 6.0, 9.0}));
  EXPECT_THROW(decimate(x, 0), std::invalid_argument);
}

TEST(Fir, MovingAverageConstantIsIdentity) {
  const Vector x(20, 3.5);
  const Vector y = moving_average(x, 5);
  for (double v : y) EXPECT_NEAR(v, 3.5, 1e-12);
  EXPECT_THROW(moving_average(x, 4), std::invalid_argument);
}

TEST(Fir, MovingAverageSmoothsNoise) {
  const Vector x = random_signal(400, 44);
  const Vector y = moving_average(x, 21);
  EXPECT_LT(linalg::norm2(y), linalg::norm2(x) * 0.5);
}

}  // namespace
}  // namespace csecg::dsp

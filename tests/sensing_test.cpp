// Unit tests for csecg::sensing — ensembles, quantizers, the low-res
// channel box guarantee, and RMPI simulator consistency with y = Φx.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "csecg/linalg/matrix.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"
#include "csecg/sensing/lowres_channel.hpp"
#include "csecg/sensing/matrices.hpp"
#include "csecg/sensing/quantizer.hpp"
#include "csecg/sensing/rmpi.hpp"

namespace csecg::sensing {
namespace {

using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Ensembles.

TEST(SensingConfigValidation, RejectsNonsense) {
  SensingConfig bad;
  bad.measurements = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = SensingConfig{};
  bad.measurements = 600;
  bad.window = 512;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = SensingConfig{};
  bad.ensemble = Ensemble::kSparseBinary;
  bad.sparse_column_weight = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad.sparse_column_weight = 200;
  bad.measurements = 128;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Ensembles, RademacherEntriesArePlusMinusOne) {
  SensingConfig config;
  config.measurements = 16;
  config.window = 64;
  const Matrix phi = make_sensing_matrix(config);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      EXPECT_TRUE(phi(i, j) == 1.0 || phi(i, j) == -1.0);
    }
  }
}

TEST(Ensembles, RademacherRoughlyBalanced) {
  SensingConfig config;
  config.measurements = 64;
  config.window = 512;
  const Matrix phi = make_sensing_matrix(config);
  double sum = 0.0;
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 512; ++j) sum += phi(i, j);
  }
  EXPECT_LT(std::abs(sum) / (64.0 * 512.0), 0.03);
}

TEST(Ensembles, DeterministicInSeed) {
  SensingConfig config;
  config.measurements = 8;
  config.window = 32;
  config.seed = 77;
  EXPECT_EQ(make_sensing_matrix(config), make_sensing_matrix(config));
  SensingConfig other = config;
  other.seed = 78;
  EXPECT_NE(make_sensing_matrix(config), make_sensing_matrix(other));
}

TEST(Ensembles, GaussianMomentsPlausible) {
  SensingConfig config;
  config.ensemble = Ensemble::kGaussian;
  config.measurements = 64;
  config.window = 512;
  const Matrix phi = make_sensing_matrix(config);
  double sum = 0.0;
  double sum2 = 0.0;
  const double total = 64.0 * 512.0;
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 512; ++j) {
      sum += phi(i, j);
      sum2 += phi(i, j) * phi(i, j);
    }
  }
  EXPECT_NEAR(sum / total, 0.0, 0.02);
  EXPECT_NEAR(sum2 / total, 1.0, 0.05);
}

TEST(Ensembles, SparseBinaryColumnWeightExact) {
  SensingConfig config;
  config.ensemble = Ensemble::kSparseBinary;
  config.measurements = 32;
  config.window = 128;
  config.sparse_column_weight = 6;
  const Matrix phi = make_sensing_matrix(config);
  for (std::size_t j = 0; j < 128; ++j) {
    int ones = 0;
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_TRUE(phi(i, j) == 0.0 || phi(i, j) == 1.0);
      if (phi(i, j) == 1.0) ++ones;
    }
    EXPECT_EQ(ones, 6);
  }
}

TEST(Ensembles, NamesDistinct) {
  EXPECT_NE(ensemble_name(Ensemble::kRademacher),
            ensemble_name(Ensemble::kGaussian));
  EXPECT_NE(ensemble_name(Ensemble::kGaussian),
            ensemble_name(Ensemble::kSparseBinary));
}

TEST(Chipping, MatchesRademacherEnsemble) {
  SensingConfig config;
  config.measurements = 12;
  config.window = 48;
  config.seed = 5;
  EXPECT_EQ(chipping_sequences(12, 48, 5), make_sensing_matrix(config));
}

// ---------------------------------------------------------------------------
// Quantizer.

TEST(Quantizer, Validation) {
  EXPECT_THROW(Quantizer(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Quantizer(31, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Quantizer(4, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Quantizer(4, 2.0, 1.0), std::invalid_argument);
}

TEST(Quantizer, StepAndLevels) {
  const Quantizer q(3, 0.0, 8.0);
  EXPECT_EQ(q.levels(), 8);
  EXPECT_DOUBLE_EQ(q.step(), 1.0);
}

TEST(Quantizer, FloorCodes) {
  const Quantizer q(2, 0.0, 4.0, QuantizerMode::kFloor);
  EXPECT_EQ(q.code(0.0), 0);
  EXPECT_EQ(q.code(0.99), 0);
  EXPECT_EQ(q.code(1.0), 1);
  EXPECT_EQ(q.code(3.99), 3);
}

TEST(Quantizer, ClipsOutOfRange) {
  const Quantizer q(2, 0.0, 4.0);
  EXPECT_EQ(q.code(-5.0), 0);
  EXPECT_EQ(q.code(100.0), 3);
}

TEST(Quantizer, InfinitiesClampToRails) {
  // The seed computed floor((inf - lo)/step) and cast the result to
  // int64 — UB that happened to wrap on x86 (ISSUE 3).  Infinities are
  // "very out of range" and must clamp like any saturated sample.
  const Quantizer q(3, -4.0, 4.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(q.code(inf), q.levels() - 1);
  EXPECT_EQ(q.code(-inf), 0);
}

TEST(Quantizer, NanInputThrows) {
  // A NaN carries no ordering information, so there is no defensible
  // rail; silently emitting code 0 would corrupt the frame downstream.
  const Quantizer q(3, -4.0, 4.0);
  const double nan = std::nan("");
  EXPECT_THROW(q.code(nan), std::invalid_argument);
  EXPECT_THROW(q.quantize(Vector{0.0, nan}), std::invalid_argument);
  Vector lower;
  Vector upper;
  EXPECT_THROW(q.boxes(Vector{nan}, lower, upper), std::invalid_argument);
}

TEST(Quantizer, UpperBoundaryValueClampsToTopCode) {
  // value == hi lands exactly on the one-past-the-last lower edge; the
  // float index equals `levels` and must clamp, not overflow the cast.
  const Quantizer q(2, 0.0, 4.0);
  EXPECT_EQ(q.code(4.0), 3);
  // Just below hi stays in the top bin; far above clamps to it.
  EXPECT_EQ(q.code(std::nextafter(4.0, 0.0)), 3);
  EXPECT_EQ(q.code(std::nextafter(4.0, 8.0)), 3);
}

TEST(Quantizer, LowerEdgeValidation) {
  const Quantizer q(2, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(q.lower_edge(2), 2.0);
  EXPECT_THROW(q.lower_edge(-1), std::invalid_argument);
  EXPECT_THROW(q.lower_edge(4), std::invalid_argument);
}

TEST(Quantizer, ReconstructFloorVsRound) {
  const Quantizer floor_q(2, 0.0, 4.0, QuantizerMode::kFloor);
  const Quantizer round_q(2, 0.0, 4.0, QuantizerMode::kRound);
  EXPECT_DOUBLE_EQ(floor_q.reconstruct(1), 1.0);
  EXPECT_DOUBLE_EQ(round_q.reconstruct(1), 1.5);
}

TEST(Quantizer, RoundModeErrorBounded) {
  const Quantizer q(6, -10.0, 10.0, QuantizerMode::kRound);
  rng::Xoshiro256 gen(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng::uniform(gen, -10.0, 9.999);
    const double rec = q.reconstruct(q.code(v));
    EXPECT_LE(std::abs(rec - v), q.step() / 2.0 + 1e-12);
  }
}

TEST(Quantizer, FloorBoxContainsOriginal) {
  const Quantizer q(5, 0.0, 2048.0, QuantizerMode::kFloor);
  rng::Xoshiro256 gen(4);
  Vector x(256);
  for (auto& v : x) v = rng::uniform(gen, 0.0, 2047.9);
  Vector lower;
  Vector upper;
  q.boxes(x, lower, upper);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(lower[i], x[i]);
    EXPECT_GE(upper[i], x[i]);
    EXPECT_DOUBLE_EQ(upper[i] - lower[i], q.step());
  }
}

TEST(Quantizer, BoxesRequireFloorMode) {
  const Quantizer q(5, 0.0, 1.0, QuantizerMode::kRound);
  Vector lower;
  Vector upper;
  EXPECT_THROW(q.boxes(Vector{0.5}, lower, upper), std::invalid_argument);
}

TEST(Quantizer, QuantizeVectorMatchesScalarPath) {
  const Quantizer q(4, 0.0, 16.0);
  const Vector x{0.3, 5.7, 15.2};
  const Vector out = q.quantize(x);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
  EXPECT_DOUBLE_EQ(out[2], 15.0);
}

// ---------------------------------------------------------------------------
// Low-resolution channel.

TEST(LowRes, Validation) {
  LowResConfig bad;
  bad.bits = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = LowResConfig{};
  bad.bits = 12;
  bad.full_scale_bits = 11;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(LowRes, StepMatchesPaperGeometry) {
  // 7-bit channel over an 11-bit record: d = 2^4 = 16 ADC units.
  const LowResChannel channel(LowResConfig{7, 11});
  EXPECT_DOUBLE_EQ(channel.step(), 16.0);
  const LowResChannel coarse(LowResConfig{4, 11});
  EXPECT_DOUBLE_EQ(coarse.step(), 128.0);
}

TEST(LowRes, BoxAlwaysContainsSample) {
  const LowResChannel channel(LowResConfig{6, 11});
  rng::Xoshiro256 gen(9);
  Vector window(512);
  for (auto& v : window) v = rng::uniform(gen, 0.0, 2047.0);
  const LowResOutput out = channel.sample(window);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_LE(out.lower[i], window[i]);
    EXPECT_GE(out.upper[i], window[i]);
    EXPECT_DOUBLE_EQ(out.upper[i] - out.lower[i], channel.step());
  }
}

TEST(LowRes, ReconstructMatchesLowerBound) {
  const LowResChannel channel(LowResConfig{7, 11});
  const Vector window{0.0, 100.0, 1024.0, 2047.0};
  const LowResOutput out = channel.sample(window);
  const Vector rec = channel.reconstruct(out.codes);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_DOUBLE_EQ(rec[i], out.lower[i]);
  }
}

TEST(LowRes, CodesFitInBits) {
  const LowResChannel channel(LowResConfig{5, 11});
  Vector window(100);
  for (std::size_t i = 0; i < 100; ++i) {
    window[i] = static_cast<double>(i) * 20.0;
  }
  const LowResOutput out = channel.sample(window);
  for (auto c : out.codes) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 32);
  }
}

// ---------------------------------------------------------------------------
// RMPI simulator.

TEST(Rmpi, Validation) {
  RmpiConfig bad;
  bad.channels = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = RmpiConfig{};
  bad.channels = 600;
  bad.window = 512;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = RmpiConfig{};
  bad.integrator_leakage = 1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = RmpiConfig{};
  bad.adc_bits = 30;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Rmpi, IdealPathEqualsMatrixProduct) {
  RmpiConfig config;
  config.channels = 32;
  config.window = 128;
  config.adc_bits = 0;  // No measurement ADC.
  const RmpiSimulator rmpi(config);
  rng::Xoshiro256 gen(10);
  Vector x(128);
  for (auto& v : x) v = rng::uniform(gen, 900.0, 1200.0);
  const Vector y_sim = rmpi.measure(x);
  const Vector y_mat = linalg::multiply(rmpi.chips(), x);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_NEAR(y_sim[i], y_mat[i], 1e-6);
}

TEST(Rmpi, QuantizedPathWithinHalfStep) {
  RmpiConfig config;
  config.channels = 16;
  config.window = 128;
  config.adc_bits = 12;
  const RmpiSimulator rmpi(config);
  rng::Xoshiro256 gen(11);
  // Zero-mean input: the front-end AC-couples before the mixers, so the
  // chip-sum stays well inside the design-time ADC range.
  Vector x(128);
  for (auto& v : x) v = rng::uniform(gen, -150.0, 150.0);
  const Vector y_q = rmpi.measure(x);
  const Vector y = rmpi.measure_unquantized(x);
  ASSERT_TRUE(rmpi.adc().has_value());
  const double half_step = rmpi.adc()->step() / 2.0;
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_LE(std::abs(y_q[i] - y[i]), half_step + 1e-9);
  }
}

TEST(Rmpi, LeakageMatchesEffectiveMatrix) {
  RmpiConfig config;
  config.channels = 8;
  config.window = 64;
  config.adc_bits = 0;
  config.integrator_leakage = 0.01;
  const RmpiSimulator rmpi(config);
  rng::Xoshiro256 gen(12);
  Vector x(64);
  for (auto& v : x) v = rng::normal(gen, 1000.0, 100.0);
  const Vector y_sim = rmpi.measure(x);
  const Vector y_eff = linalg::multiply(rmpi.effective_matrix(), x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(y_sim[i], y_eff[i], 1e-6);
}

TEST(Rmpi, LeakageDampsEarlySamples) {
  RmpiConfig config;
  config.channels = 4;
  config.window = 32;
  config.integrator_leakage = 0.1;
  const RmpiSimulator rmpi(config);
  const linalg::Matrix eff = rmpi.effective_matrix();
  // First column is scaled by (1−λ)^(n−1), last by 1.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_LT(std::abs(eff(c, 0)), 0.05);
    EXPECT_DOUBLE_EQ(std::abs(eff(c, 31)), 1.0);
  }
}

TEST(Rmpi, EffectiveOperatorAdjointConsistent) {
  RmpiConfig config;
  config.channels = 16;
  config.window = 64;
  config.integrator_leakage = 0.02;
  const RmpiSimulator rmpi(config);
  EXPECT_LT(linalg::adjoint_mismatch(rmpi.effective_operator()), 1e-12);
}

TEST(Rmpi, NoiseNormZeroWithoutAdc) {
  RmpiConfig config;
  config.adc_bits = 0;
  config.channels = 16;
  config.window = 64;
  EXPECT_EQ(RmpiSimulator(config).expected_quantization_noise_norm(), 0.0);
}

TEST(Rmpi, NoiseNormScalesWithChannels) {
  RmpiConfig a;
  a.channels = 16;
  a.window = 256;
  RmpiConfig b = a;
  b.channels = 64;
  const double na = RmpiSimulator(a).expected_quantization_noise_norm();
  const double nb = RmpiSimulator(b).expected_quantization_noise_norm();
  EXPECT_NEAR(nb / na, 2.0, 1e-9);
}

TEST(Rmpi, MeasureRejectsWrongLength) {
  RmpiConfig config;
  config.channels = 8;
  config.window = 64;
  const RmpiSimulator rmpi(config);
  EXPECT_THROW(rmpi.measure(Vector(63)), std::invalid_argument);
}

TEST(Rmpi, ExplicitAdcRangeHonored) {
  RmpiConfig config;
  config.channels = 4;
  config.window = 16;
  config.adc_bits = 8;
  config.adc_range = 100.0;
  const RmpiSimulator rmpi(config);
  ASSERT_TRUE(rmpi.adc().has_value());
  EXPECT_DOUBLE_EQ(rmpi.adc()->lo(), -100.0);
  EXPECT_DOUBLE_EQ(rmpi.adc()->hi(), 100.0);
}

}  // namespace
}  // namespace csecg::sensing

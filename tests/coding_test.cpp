// Unit tests for csecg::coding — bit I/O, delta coding, canonical Huffman
// (optimality, prefix property, serialization round-trip), and the
// delta-Huffman window codec (round-trip, escape coding).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "csecg/coding/bitstream.hpp"
#include "csecg/coding/decode_error.hpp"
#include "csecg/coding/delta.hpp"
#include "csecg/coding/delta_huffman_codec.hpp"
#include "csecg/coding/huffman.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::coding {
namespace {

// ---------------------------------------------------------------------------
// Bitstream.

TEST(Bitstream, SingleBitsRoundTrip) {
  BitWriter writer;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) writer.write_bit(b);
  EXPECT_EQ(writer.bit_count(), 7u);
  BitReader reader(writer.finish());
  for (bool b : pattern) EXPECT_EQ(reader.read_bit(), b);
}

TEST(Bitstream, MultiBitFieldsRoundTrip) {
  BitWriter writer;
  writer.write(0b101, 3);
  writer.write(0xDEADBEEF, 32);
  writer.write(0, 1);
  writer.write(0x3FF, 10);
  BitReader reader(writer.finish());
  EXPECT_EQ(reader.read(3), 0b101u);
  EXPECT_EQ(reader.read(32), 0xDEADBEEFu);
  EXPECT_EQ(reader.read(1), 0u);
  EXPECT_EQ(reader.read(10), 0x3FFu);
}

TEST(Bitstream, MsbFirstByteLayout) {
  BitWriter writer;
  writer.write(0b1, 1);
  writer.write(0, 7);
  const auto bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);
}

TEST(Bitstream, ReadPastEndThrows) {
  BitWriter writer;
  writer.write(0xFF, 8);
  BitReader reader(writer.finish());
  reader.read(8);
  EXPECT_THROW(reader.read_bit(), DecodeError);
}

TEST(Bitstream, WriteAfterFinishThrows) {
  BitWriter writer;
  writer.write_bit(true);
  writer.finish();
  EXPECT_THROW(writer.write_bit(true), std::invalid_argument);
}

TEST(Bitstream, CountValidation) {
  BitWriter writer;
  EXPECT_THROW(writer.write(0, 65), std::invalid_argument);
  EXPECT_THROW(writer.write(0, -1), std::invalid_argument);
  BitReader reader({0xFF});
  EXPECT_THROW(reader.read(65), std::invalid_argument);
}

TEST(Bitstream, BitsRemainingAccounting) {
  BitReader reader({0xAA, 0x55});
  EXPECT_EQ(reader.bits_remaining(), 16u);
  reader.read(5);
  EXPECT_EQ(reader.bits_remaining(), 11u);
  EXPECT_EQ(reader.bit_position(), 5u);
}

// ---------------------------------------------------------------------------
// Delta coding.

TEST(Delta, RoundTrip) {
  const std::vector<std::int64_t> codes{64, 64, 65, 63, 63, 70};
  const DeltaEncoded enc = delta_encode(codes);
  EXPECT_EQ(enc.first, 64);
  EXPECT_EQ(enc.diffs, (std::vector<std::int64_t>{0, 1, -2, 0, 7}));
  EXPECT_EQ(delta_decode(enc), codes);
}

TEST(Delta, SingleElement) {
  const DeltaEncoded enc = delta_encode({42});
  EXPECT_TRUE(enc.diffs.empty());
  EXPECT_EQ(delta_decode(enc), (std::vector<std::int64_t>{42}));
}

TEST(Delta, EmptyThrows) {
  EXPECT_THROW(delta_encode({}), std::invalid_argument);
}

TEST(Histogram, CountsAndSorts) {
  const auto hist = histogram({3, 1, 3, 3, -2});
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], (std::pair<std::int64_t, std::uint64_t>{-2, 1}));
  EXPECT_EQ(hist[1], (std::pair<std::int64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(hist[2], (std::pair<std::int64_t, std::uint64_t>{3, 3}));
}

TEST(Entropy, KnownValues) {
  // Uniform over 4 symbols → 2 bits.
  EXPECT_NEAR(entropy_bits({{0, 5}, {1, 5}, {2, 5}, {3, 5}}), 2.0, 1e-12);
  // Deterministic → 0 bits.
  EXPECT_NEAR(entropy_bits({{7, 100}}), 0.0, 1e-12);
  EXPECT_EQ(entropy_bits({}), 0.0);
}

// ---------------------------------------------------------------------------
// Huffman.

TEST(Huffman, BuildValidation) {
  EXPECT_THROW(HuffmanCodebook::build({}), std::invalid_argument);
  EXPECT_THROW(HuffmanCodebook::build({{0, 0}}), std::invalid_argument);
  EXPECT_THROW(HuffmanCodebook::build({{0, 1}, {0, 2}}),
               std::invalid_argument);
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  const auto book = HuffmanCodebook::build({{5, 10}});
  ASSERT_EQ(book.entries().size(), 1u);
  EXPECT_EQ(book.entries()[0].length, 1);
  BitWriter writer;
  book.encode(5, writer);
  BitReader reader(writer.finish());
  EXPECT_EQ(book.decode(reader), 5);
}

TEST(Huffman, SkewedDistributionShortCodeForFrequent) {
  const auto book =
      HuffmanCodebook::build({{0, 1000}, {1, 10}, {2, 5}, {3, 1}});
  EXPECT_EQ(book.code_length(0), 1);
  EXPECT_GT(book.code_length(3), book.code_length(0));
}

TEST(Huffman, PrefixProperty) {
  const auto book = HuffmanCodebook::build(
      {{-3, 2}, {-2, 7}, {-1, 30}, {0, 100}, {1, 28}, {2, 9}, {3, 1}});
  const auto& entries = book.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (i == j) continue;
      const auto& a = entries[i];
      const auto& b = entries[j];
      if (a.length > b.length) continue;
      // a's code must not prefix b's code.
      EXPECT_NE(a.code, b.code >> (b.length - a.length))
          << "symbol " << a.symbol << " prefixes " << b.symbol;
    }
  }
}

TEST(Huffman, KraftEqualityHolds) {
  const auto book = HuffmanCodebook::build(
      {{0, 40}, {1, 30}, {2, 15}, {3, 10}, {4, 5}});
  double kraft = 0.0;
  for (const auto& e : book.entries()) kraft += std::pow(2.0, -e.length);
  EXPECT_NEAR(kraft, 1.0, 1e-12);  // Huffman codes are complete.
}

TEST(Huffman, OptimalityWithinOneBitOfEntropy) {
  std::vector<std::pair<std::int64_t, std::uint64_t>> hist;
  // Geometric-ish distribution like the delta stream.
  std::uint64_t c = 1 << 12;
  for (std::int64_t s = 0; s < 10; ++s) {
    hist.push_back({s, c});
    c = std::max<std::uint64_t>(c / 3, 1);
  }
  const auto book = HuffmanCodebook::build(hist);
  const double avg = book.expected_bits_per_symbol(hist, 0.0);
  const double h = entropy_bits(hist);
  EXPECT_GE(avg, h - 1e-12);
  EXPECT_LE(avg, h + 1.0);
}

TEST(Huffman, EncodeDecodeStream) {
  const auto book = HuffmanCodebook::build(
      {{-2, 5}, {-1, 20}, {0, 60}, {1, 18}, {2, 4}});
  rng::Xoshiro256 gen(1);
  std::vector<std::int64_t> symbols;
  for (int i = 0; i < 500; ++i) {
    symbols.push_back(static_cast<std::int64_t>(rng::uniform_below(gen, 5)) -
                      2);
  }
  BitWriter writer;
  for (auto s : symbols) book.encode(s, writer);
  BitReader reader(writer.finish());
  for (auto s : symbols) EXPECT_EQ(book.decode(reader), s);
}

TEST(Huffman, UnknownSymbolThrows) {
  const auto book = HuffmanCodebook::build({{0, 2}, {1, 1}});
  BitWriter writer;
  EXPECT_THROW(book.encode(7, writer), std::invalid_argument);
  EXPECT_THROW(book.code_length(7), std::invalid_argument);
  EXPECT_FALSE(book.contains(7));
  EXPECT_TRUE(book.contains(1));
}

TEST(Huffman, SerializeRoundTrip) {
  const auto book = HuffmanCodebook::build(
      {{-5, 3}, {-1, 50}, {0, 200}, {1, 45}, {2, 8}, {128, 1}});
  const auto bytes = book.serialize();
  EXPECT_EQ(bytes.size(), book.storage_bytes());
  const auto restored = HuffmanCodebook::deserialize(bytes);
  ASSERT_EQ(restored.entries().size(), book.entries().size());
  for (std::size_t i = 0; i < book.entries().size(); ++i) {
    EXPECT_EQ(restored.entries()[i].symbol, book.entries()[i].symbol);
    EXPECT_EQ(restored.entries()[i].length, book.entries()[i].length);
    EXPECT_EQ(restored.entries()[i].code, book.entries()[i].code);
  }
}

TEST(Huffman, DeserializeRejectsGarbage) {
  EXPECT_THROW(HuffmanCodebook::deserialize({}), DecodeError);
  EXPECT_THROW(HuffmanCodebook::deserialize({1}), DecodeError);
  EXPECT_THROW(HuffmanCodebook::deserialize({3, 1, 1, 0}), DecodeError);
}

TEST(Huffman, StorageGrowsWithAlphabet) {
  std::vector<std::pair<std::int64_t, std::uint64_t>> small{{0, 10}, {1, 5}};
  std::vector<std::pair<std::int64_t, std::uint64_t>> big;
  for (std::int64_t s = -20; s <= 20; ++s) {
    big.push_back({s, static_cast<std::uint64_t>(50 - std::abs(s))});
  }
  EXPECT_GT(HuffmanCodebook::build(big).storage_bytes(),
            HuffmanCodebook::build(small).storage_bytes());
}

TEST(Huffman, WideSymbolsUseTwoBytes) {
  const auto narrow = HuffmanCodebook::build({{-100, 1}, {100, 1}});
  const auto wide = HuffmanCodebook::build({{-1000, 1}, {1000, 1}});
  // Same entry count, wider symbols → more storage.
  EXPECT_GT(wide.storage_bytes(), narrow.storage_bytes());
  // Round-trip still works with 2-byte symbols.
  const auto restored = HuffmanCodebook::deserialize(wide.serialize());
  EXPECT_TRUE(restored.contains(-1000));
  EXPECT_TRUE(restored.contains(1000));
}

// ---------------------------------------------------------------------------
// Delta-Huffman codec.

std::vector<std::vector<std::int64_t>> staircase_corpus(int code_bits,
                                                        std::uint64_t seed) {
  // Slowly varying staircases mimic the low-res channel output.
  rng::Xoshiro256 gen(seed);
  std::vector<std::vector<std::int64_t>> corpus;
  const std::int64_t max_code = (std::int64_t{1} << code_bits) - 1;
  for (int w = 0; w < 20; ++w) {
    std::vector<std::int64_t> window;
    std::int64_t level = max_code / 2;
    for (int i = 0; i < 256; ++i) {
      const double u = rng::uniform01(gen);
      if (u < 0.1) level += 1;
      if (u > 0.9) level -= 1;
      if (u > 0.495 && u < 0.505) level += 5;  // Occasional QRS-like jump.
      level = std::clamp<std::int64_t>(level, 0, max_code);
      window.push_back(level);
    }
    corpus.push_back(std::move(window));
  }
  return corpus;
}

TEST(DeltaHuffman, TrainValidation) {
  EXPECT_THROW(DeltaHuffmanCodec::train({}, 7), std::invalid_argument);
  EXPECT_THROW(DeltaHuffmanCodec::train({{1, 2}}, 0), std::invalid_argument);
  EXPECT_THROW(DeltaHuffmanCodec::train({{1, 300}}, 7),
               std::invalid_argument);  // Code exceeds 7 bits.
  EXPECT_THROW(DeltaHuffmanCodec::train({{-1, 2}}, 7),
               std::invalid_argument);
}

TEST(DeltaHuffman, RoundTripOnCorpusWindows) {
  const auto corpus = staircase_corpus(7, 11);
  const auto codec = DeltaHuffmanCodec::train(corpus, 7);
  for (const auto& window : corpus) {
    std::size_t bits = 0;
    const auto payload = codec.encode(window, bits);
    EXPECT_EQ(codec.decode(payload, window.size()), window);
    EXPECT_EQ(bits, codec.encoded_bits(window));
    EXPECT_LE(payload.size(), bits / 8 + 1);
  }
}

TEST(DeltaHuffman, CompressesRedundantStaircase) {
  const auto corpus = staircase_corpus(7, 12);
  const auto codec = DeltaHuffmanCodec::train(corpus, 7);
  const auto& window = corpus.front();
  const std::size_t bits = codec.encoded_bits(window);
  const std::size_t raw_bits = window.size() * 7;
  EXPECT_LT(bits, raw_bits / 2);  // At least 2:1 on staircase data.
}

TEST(DeltaHuffman, EscapeHandlesUnseenDeltas) {
  const auto corpus = staircase_corpus(7, 13);
  const auto codec = DeltaHuffmanCodec::train(corpus, 7);
  // A window with a wild jump the training corpus never produced.
  std::vector<std::int64_t> window(64, 60);
  window[30] = 5;    // Delta −55.
  window[31] = 120;  // Delta +115.
  std::size_t bits = 0;
  const auto payload = codec.encode(window, bits);
  EXPECT_EQ(codec.decode(payload, window.size()), window);
}

TEST(DeltaHuffman, EncodedBitsMatchesPayload) {
  const auto corpus = staircase_corpus(5, 14);
  const auto codec = DeltaHuffmanCodec::train(corpus, 5);
  std::size_t bits = 0;
  const auto payload = codec.encode(corpus[3], bits);
  EXPECT_EQ(payload.size(), (bits + 7) / 8);
}

TEST(DeltaHuffman, CodebookContainsEscape) {
  const auto corpus = staircase_corpus(6, 15);
  const auto codec = DeltaHuffmanCodec::train(corpus, 6);
  EXPECT_EQ(codec.escape_symbol(), 64);
  EXPECT_TRUE(codec.codebook().contains(64));
}

TEST(DeltaHuffman, ProvisioningFromSerializedCodebook) {
  const auto corpus = staircase_corpus(7, 16);
  const auto trained = DeltaHuffmanCodec::train(corpus, 7);
  const auto bytes = trained.codebook().serialize();
  const DeltaHuffmanCodec provisioned(HuffmanCodebook::deserialize(bytes), 7);
  std::size_t bits1 = 0;
  std::size_t bits2 = 0;
  const auto p1 = trained.encode(corpus[0], bits1);
  const auto p2 = provisioned.encode(corpus[0], bits2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(bits1, bits2);
}

TEST(DeltaHuffman, RejectsCodebookWithoutEscape) {
  const auto book = HuffmanCodebook::build({{0, 5}, {1, 3}});
  EXPECT_THROW(DeltaHuffmanCodec(book, 7), std::invalid_argument);
}

TEST(DeltaHuffman, DecodeCountValidation) {
  const auto corpus = staircase_corpus(7, 17);
  const auto codec = DeltaHuffmanCodec::train(corpus, 7);
  std::size_t bits = 0;
  const auto payload = codec.encode(corpus[0], bits);
  EXPECT_THROW(codec.decode(payload, 0), std::invalid_argument);
  // Asking for more symbols than encoded exhausts the stream.
  EXPECT_THROW(codec.decode(payload, corpus[0].size() + 999), DecodeError);
}

}  // namespace
}  // namespace csecg::coding

// Unit tests for the FFT / Welch PSD / spectral-distortion utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "csecg/dsp/fft.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::dsp {
namespace {

using linalg::Vector;

Vector tone(std::size_t n, double freq_hz, double fs_hz,
            double amplitude = 1.0) {
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amplitude * std::sin(2.0 * std::numbers::pi * freq_hz *
                                static_cast<double>(i) / fs_hz);
  }
  return x;
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(Fft, SinglePointIdentity) {
  std::vector<std::complex<double>> data{{3.0, -1.0}};
  fft(data);
  EXPECT_DOUBLE_EQ(data[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(data[0].imag(), -1.0);
}

TEST(Fft, ImpulseIsFlat) {
  std::vector<std::complex<double>> data(8);
  data[0] = 1.0;
  fft(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ForwardInverseRoundTrip) {
  rng::Xoshiro256 gen(1);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> original(64);
  for (std::size_t i = 0; i < 64; ++i) {
    data[i] = {rng::normal(gen), rng::normal(gen)};
    original[i] = data[i];
  }
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  rng::Xoshiro256 gen(2);
  Vector x(128);
  for (auto& v : x) v = rng::normal(gen);
  const auto spectrum = fft_real(x);
  double time_energy = linalg::norm2_squared(x);
  double freq_energy = 0.0;
  for (const auto& bin : spectrum) freq_energy += std::norm(bin);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-9);
}

TEST(Fft, ToneLandsOnExpectedBin) {
  // 45 Hz tone at fs=360, n=128 → bin 16 exactly.
  const Vector x = tone(128, 45.0, 360.0);
  const Vector mag = magnitude_spectrum(x);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    if (mag[k] > mag[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 16u);
}

TEST(Welch, ConfigValidation) {
  WelchConfig bad;
  bad.segment = 100;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = WelchConfig{};
  bad.overlap = 1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = WelchConfig{};
  bad.fs_hz = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Welch, RequiresFullSegment) {
  WelchConfig config;
  config.segment = 256;
  EXPECT_THROW(welch_psd(Vector(100), config), std::invalid_argument);
}

TEST(Welch, TonePeaksAtToneFrequency) {
  WelchConfig config;
  config.segment = 256;
  config.fs_hz = 360.0;
  const Vector x = tone(2048, 30.0, 360.0);
  const Psd psd = welch_psd(x, config);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < psd.power.size(); ++k) {
    if (psd.power[k] > psd.power[argmax]) argmax = k;
  }
  EXPECT_NEAR(psd.frequency_hz[argmax], 30.0, 1.5);
}

TEST(Welch, BandPowerCapturesTone) {
  WelchConfig config;
  config.segment = 256;
  config.fs_hz = 360.0;
  const Vector x = tone(4096, 30.0, 360.0, 2.0);
  const Psd psd = welch_psd(x, config);
  const double in_band = band_power(psd, 25.0, 35.0);
  const double out_band = band_power(psd, 60.0, 120.0);
  EXPECT_GT(in_band, 100.0 * out_band);
  // Total power ≈ A²/2 = 2.0.
  EXPECT_NEAR(band_power(psd, 0.0, 180.0), 2.0, 0.3);
}

TEST(Welch, WhiteNoiseFlatSpectrum) {
  rng::Xoshiro256 gen(3);
  Vector x(8192);
  for (auto& v : x) v = rng::normal(gen);
  WelchConfig config;
  config.segment = 256;
  const Psd psd = welch_psd(x, config);
  // Compare low and high halves of the band.
  const double low = band_power(psd, 5.0, 85.0);
  const double high = band_power(psd, 95.0, 175.0);
  EXPECT_NEAR(low / high, 1.0, 0.35);
}

TEST(SpectralDistortion, ZeroForIdenticalSignals) {
  const Vector x = tone(2048, 10.0, 360.0);
  EXPECT_NEAR(spectral_distortion_db(x, x), 0.0, 1e-9);
}

TEST(SpectralDistortion, GrowsWithAddedNoise) {
  rng::Xoshiro256 gen(4);
  const Vector x = tone(2048, 10.0, 360.0);
  Vector mild = x;
  Vector heavy = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double noise = rng::normal(gen);
    mild[i] += 0.01 * noise;
    heavy[i] += 0.3 * noise;
  }
  const double d_mild = spectral_distortion_db(x, mild);
  const double d_heavy = spectral_distortion_db(x, heavy);
  EXPECT_LT(d_mild, d_heavy);
}

TEST(SpectralDistortion, SizeMismatchThrows) {
  EXPECT_THROW(spectral_distortion_db(Vector(512), Vector(511)),
               std::invalid_argument);
}

}  // namespace
}  // namespace csecg::dsp

// Tests for the adaptive measurement-rate extension.
#include <gtest/gtest.h>

#include <stdexcept>

#include "csecg/core/adaptive.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/sensing/matrices.hpp"

namespace csecg::core {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::RecordConfig record_config;
    record_config.duration_seconds = 15.0;
    database_ = new ecg::SyntheticDatabase(record_config, 2015);
    base_ = new FrontEndConfig();
    base_->window = 256;
    base_->wavelet_levels = 4;
    base_->solver.max_iterations = 500;
    codec_ = new coding::DeltaHuffmanCodec(
        train_lowres_codec(*base_, *database_, 2, 3));
  }
  static void TearDownTestSuite() {
    delete codec_;
    delete base_;
    delete database_;
  }
  static const ecg::SyntheticDatabase& database() { return *database_; }
  static const FrontEndConfig& base() { return *base_; }
  static const coding::DeltaHuffmanCodec& lowres() { return *codec_; }

 private:
  static ecg::SyntheticDatabase* database_;
  static FrontEndConfig* base_;
  static coding::DeltaHuffmanCodec* codec_;
};

ecg::SyntheticDatabase* AdaptiveTest::database_ = nullptr;
FrontEndConfig* AdaptiveTest::base_ = nullptr;
coding::DeltaHuffmanCodec* AdaptiveTest::codec_ = nullptr;

TEST(ChipPrefixProperty, SmallBankIsPrefixOfLargeBank) {
  // The synchronization bedrock of the adaptive scheme: the m-channel
  // chip matrix is the first m rows of the m_max-channel one.
  const auto big = sensing::chipping_sequences(64, 128, 42);
  const auto small = sensing::chipping_sequences(16, 128, 42);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 128; ++j) {
      ASSERT_EQ(small(i, j), big(i, j));
    }
  }
}

TEST(DeltaActivity, FlatAndBusySignals) {
  EXPECT_DOUBLE_EQ(delta_activity({5, 5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(delta_activity({1, 2, 3, 4, 5}), 1.0);
  EXPECT_DOUBLE_EQ(delta_activity({5, 5, 6, 6, 7}), 0.5);
  EXPECT_THROW(delta_activity({5}), std::invalid_argument);
}

TEST(ChannelsForActivity, LinearPolicyWithClamping) {
  AdaptiveRateConfig rate;
  rate.m_min = 32;
  rate.m_max = 192;
  rate.low_activity = 0.1;
  rate.high_activity = 0.3;
  EXPECT_EQ(channels_for_activity(0.0, rate), 32u);
  EXPECT_EQ(channels_for_activity(0.1, rate), 32u);
  EXPECT_EQ(channels_for_activity(0.2, rate), 112u);
  EXPECT_EQ(channels_for_activity(0.3, rate), 192u);
  EXPECT_EQ(channels_for_activity(1.0, rate), 192u);
}

TEST_F(AdaptiveTest, ConfigValidation) {
  AdaptiveRateConfig rate;
  rate.m_min = 0;
  EXPECT_THROW(validate(rate, base()), std::invalid_argument);
  rate = AdaptiveRateConfig{};
  rate.m_max = 512;  // > window 256.
  EXPECT_THROW(validate(rate, base()), std::invalid_argument);
  rate = AdaptiveRateConfig{};
  rate.low_activity = 0.5;
  rate.high_activity = 0.4;
  EXPECT_THROW(validate(rate, base()), std::invalid_argument);
  FrontEndConfig no_lowres = base();
  no_lowres.lowres_bits = 0;
  rate = AdaptiveRateConfig{};
  rate.m_max = 192;
  EXPECT_THROW(validate(rate, no_lowres), std::invalid_argument);
}

TEST_F(AdaptiveTest, RoundTripAtAdaptedRate) {
  AdaptiveRateConfig rate;
  rate.m_min = 32;
  rate.m_max = 128;
  const AdaptiveCodec codec(base(), rate, lowres());
  const linalg::Vector window = database().record(0).window(500, 256);
  const Frame frame = codec.encode(window);
  EXPECT_GE(frame.measurements.size(), 32u);
  EXPECT_LE(frame.measurements.size(), 128u);
  EXPECT_EQ(frame.measurements.size(), codec.last_channels());
  const DecodeResult result = codec.decode(frame);
  const double snr = metrics::snr_from_prd(
      metrics::prd_zero_mean(window, result.x));
  EXPECT_GT(snr, 10.0);
}

TEST_F(AdaptiveTest, MatchesFixedRateCodecAtSameM) {
  AdaptiveRateConfig rate;
  rate.m_min = 32;
  rate.m_max = 128;
  const AdaptiveCodec adaptive(base(), rate, lowres());
  const linalg::Vector window = database().record(0).window(500, 256);
  const Frame frame = adaptive.encode(window);

  FrontEndConfig fixed_config = base();
  fixed_config.measurements = frame.measurements.size();
  const Codec fixed(fixed_config, lowres());
  const Frame fixed_frame = fixed.encoder().encode(window);
  EXPECT_EQ(frame.measurements, fixed_frame.measurements);
  EXPECT_EQ(adaptive.decode(frame).x, fixed.decoder().decode(frame).x);
}

TEST_F(AdaptiveTest, BusyWindowsGetMoreChannels) {
  AdaptiveRateConfig rate;
  rate.m_min = 32;
  rate.m_max = 128;
  rate.low_activity = 0.02;
  rate.high_activity = 0.5;
  const AdaptiveCodec codec(base(), rate, lowres());
  // Flat synthetic window: minimal activity.
  const linalg::Vector flat(256, 1024.0);
  codec.encode(flat);
  const std::size_t m_flat = codec.last_channels();
  // Busy window: alternating large steps.
  linalg::Vector busy(256);
  for (std::size_t i = 0; i < 256; ++i) {
    busy[i] = 1024.0 + ((i / 4) % 2 == 0 ? 200.0 : -200.0);
  }
  codec.encode(busy);
  const std::size_t m_busy = codec.last_channels();
  EXPECT_EQ(m_flat, 32u);
  EXPECT_GT(m_busy, 2 * m_flat);
}

TEST_F(AdaptiveTest, DecodeRejectsOutOfRangeM) {
  AdaptiveRateConfig rate;
  rate.m_min = 48;
  rate.m_max = 128;
  const AdaptiveCodec codec(base(), rate, lowres());
  FrontEndConfig small = base();
  small.measurements = 32;  // Below m_min.
  const Encoder encoder(small, lowres());
  const Frame frame =
      encoder.encode(database().record(0).window(500, 256));
  EXPECT_THROW(codec.decode(frame), std::invalid_argument);
}

}  // namespace
}  // namespace csecg::core

// Supplemental edge-case coverage across modules: error paths, boundary
// sizes, and cross-module operator composition.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "csecg/coding/huffman.hpp"
#include "csecg/dsp/dwt.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/linalg/solve.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"
#include "csecg/sensing/lowres_channel.hpp"
#include "csecg/sensing/rmpi.hpp"

namespace csecg {
namespace {

using linalg::LinearOperator;
using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// linalg edges.

TEST(OperatorEdges, VstackColumnMismatchThrows) {
  const auto a = LinearOperator::identity(4);
  const auto b = LinearOperator::identity(5);
  EXPECT_THROW(LinearOperator::vstack(a, b), std::invalid_argument);
}

TEST(OperatorEdges, ComposeDimensionMismatchThrows) {
  Matrix m1(3, 4);
  Matrix m2(5, 6);
  EXPECT_THROW(LinearOperator::from_matrix(m1).compose(
                   LinearOperator::from_matrix(m2)),
               std::invalid_argument);
}

TEST(OperatorEdges, EmptyOperatorApplyThrows) {
  const LinearOperator empty;
  EXPECT_THROW(empty.apply(Vector(1)), std::invalid_argument);
  EXPECT_THROW(empty.apply_adjoint(Vector(1)), std::invalid_argument);
}

TEST(OperatorEdges, NormOfZeroOperatorIsZero) {
  const Matrix zero(4, 4);
  EXPECT_DOUBLE_EQ(
      linalg::operator_norm_estimate(LinearOperator::from_matrix(zero), 20),
      0.0);
}

TEST(CholeskyEdges, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = 4.0;
  const linalg::Cholesky chol(a);
  EXPECT_DOUBLE_EQ(chol.factor()(0, 0), 2.0);
  const Vector x = chol.solve(Vector{8.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(CgEdges, NonSpdBreaksGracefully) {
  Matrix indefinite = Matrix::identity(2);
  indefinite(1, 1) = -1.0;
  const auto result = linalg::conjugate_gradient(
      LinearOperator::from_matrix(indefinite), Vector{0.0, 1.0}, 50, 1e-12);
  // Breakdown reported, no crash, no NaN.
  EXPECT_FALSE(result.converged);
  for (double v : result.x) EXPECT_TRUE(std::isfinite(v));
}

// ---------------------------------------------------------------------------
// dsp / sensing composition.

TEST(Composition, PhiPsiOperatorAdjointConsistent) {
  // The decoder's implicit A = Φ·Ψ as an operator composition.
  sensing::RmpiConfig config;
  config.channels = 32;
  config.window = 128;
  const sensing::RmpiSimulator rmpi(config);
  const dsp::Dwt dwt(dsp::WaveletFamily::kDb4, 128, 3);
  const auto a =
      rmpi.effective_operator().compose(dwt.synthesis_operator());
  EXPECT_EQ(a.rows(), 32u);
  EXPECT_EQ(a.cols(), 128u);
  EXPECT_LT(linalg::adjoint_mismatch(a), 1e-12);
}

TEST(Composition, OperatorNormOfPhiPsiEqualsPhiNorm) {
  // Orthonormal Ψ preserves the spectral norm of Φ.
  sensing::RmpiConfig config;
  config.channels = 24;
  config.window = 64;
  const sensing::RmpiSimulator rmpi(config);
  const dsp::Dwt dwt(dsp::WaveletFamily::kSym4, 64, 2);
  const double norm_phi =
      linalg::operator_norm_estimate(rmpi.effective_operator(), 80);
  const double norm_a = linalg::operator_norm_estimate(
      rmpi.effective_operator().compose(dwt.synthesis_operator()), 80);
  EXPECT_NEAR(norm_a, norm_phi, 1e-6 * norm_phi);
}

TEST(DwtEdges, SingleLevelOnMinimumLength) {
  // n = 2 with Haar: the smallest legal transform.
  const dsp::Dwt dwt(dsp::WaveletFamily::kHaar, 2, 1);
  const Vector x{3.0, 1.0};
  const Vector c = dwt.forward(x);
  const Vector rec = dwt.inverse(c);
  EXPECT_NEAR(rec[0], 3.0, 1e-12);
  EXPECT_NEAR(rec[1], 1.0, 1e-12);
}

TEST(DwtEdges, LongFilterOnShortSignalPeriodizes) {
  // db10 (20 taps) on a 16-sample band still reconstructs exactly thanks
  // to periodization.
  const dsp::Dwt dwt(dsp::WaveletFamily::kDb10, 16, 1);
  rng::Xoshiro256 gen(5);
  Vector x(16);
  for (auto& v : x) v = rng::normal(gen);
  const Vector rec = dwt.inverse(dwt.forward(x));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(rec[i], x[i], 1e-9);
}

// ---------------------------------------------------------------------------
// sensing edges.

TEST(RmpiEdges, ChipsAreStableAcrossCalls) {
  sensing::RmpiConfig config;
  config.channels = 8;
  config.window = 32;
  const sensing::RmpiSimulator a(config);
  const sensing::RmpiSimulator b(config);
  EXPECT_EQ(a.chips(), b.chips());
}

TEST(RmpiEdges, SingleChannel) {
  sensing::RmpiConfig config;
  config.channels = 1;
  config.window = 16;
  config.adc_bits = 0;
  const sensing::RmpiSimulator rmpi(config);
  const Vector x(16, 1.0);
  const Vector y = rmpi.measure(x);
  ASSERT_EQ(y.size(), 1u);
  // ±1 chips on a constant: |y| ≤ n, parity matches chip sum.
  double chip_sum = 0.0;
  for (std::size_t j = 0; j < 16; ++j) chip_sum += rmpi.chips()(0, j);
  EXPECT_DOUBLE_EQ(y[0], chip_sum);
}

TEST(LowResEdges, OneBitChannel) {
  const sensing::LowResChannel channel(sensing::LowResConfig{1, 11});
  EXPECT_DOUBLE_EQ(channel.step(), 1024.0);
  const auto out = channel.sample(Vector{0.0, 1023.0, 1024.0, 2047.0});
  EXPECT_EQ(out.codes, (std::vector<std::int64_t>{0, 0, 1, 1}));
}

// ---------------------------------------------------------------------------
// Huffman edges.

TEST(HuffmanEdges, ExpectedBitsWithEscape) {
  const auto book = coding::HuffmanCodebook::build({{0, 8}, {1, 2}});
  // Histogram containing a symbol outside the codebook costs escape_bits.
  const double avg =
      book.expected_bits_per_symbol({{0, 1}, {99, 1}}, 10.0);
  // 0 codes in 1 bit; 99 escapes at 10: mean 5.5.
  EXPECT_NEAR(avg, 5.5, 1e-12);
}

TEST(HuffmanEdges, TwoEqualSymbolsOneBitEach) {
  const auto book = coding::HuffmanCodebook::build({{-1, 5}, {1, 5}});
  EXPECT_EQ(book.code_length(-1), 1);
  EXPECT_EQ(book.code_length(1), 1);
}

TEST(HuffmanEdges, DeepSkewStillDecodes) {
  // Exponentially skewed counts create a maximal-depth code.
  std::vector<std::pair<std::int64_t, std::uint64_t>> hist;
  std::uint64_t c = 1;
  for (std::int64_t s = 0; s < 20; ++s) {
    hist.push_back({s, c});
    c *= 2;
  }
  const auto book = coding::HuffmanCodebook::build(hist);
  coding::BitWriter writer;
  for (const auto& [symbol, count] : hist) book.encode(symbol, writer);
  coding::BitReader reader(writer.finish());
  for (const auto& [symbol, count] : hist) {
    EXPECT_EQ(book.decode(reader), symbol);
  }
  EXPECT_EQ(book.code_length(0), 19);  // Deepest leaf.
  EXPECT_EQ(book.code_length(19), 1);  // Most frequent.
}

}  // namespace
}  // namespace csecg

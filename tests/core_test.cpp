// Integration tests for csecg::core — the full encoder/decoder pipeline on
// synthetic records: config validation, frame accounting, hybrid-vs-normal
// quality ordering (the paper's central claim), box feasibility, and the
// experiment runner.
#include <gtest/gtest.h>

#include <stdexcept>

#include "csecg/core/config.hpp"
#include "csecg/core/frontend.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/metrics/quality.hpp"

namespace csecg::core {
namespace {

// Shared fixture: a short database and a fast codec configuration.
class FrontEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::RecordConfig record_config;
    record_config.duration_seconds = 20.0;
    database_ = new ecg::SyntheticDatabase(record_config, 2015);
    config_ = new FrontEndConfig();
    config_->window = 256;
    config_->measurements = 64;
    config_->wavelet_levels = 4;
    config_->solver.max_iterations = 800;
    codec_ = new coding::DeltaHuffmanCodec(
        train_lowres_codec(*config_, *database_, 3, 3));
  }
  static void TearDownTestSuite() {
    delete codec_;
    delete config_;
    delete database_;
  }

  static const ecg::SyntheticDatabase& database() { return *database_; }
  static const FrontEndConfig& config() { return *config_; }
  static const coding::DeltaHuffmanCodec& lowres_codec() { return *codec_; }
  static linalg::Vector test_window() {
    return database().record(0).window(400, config().window);
  }

 private:
  static ecg::SyntheticDatabase* database_;
  static FrontEndConfig* config_;
  static coding::DeltaHuffmanCodec* codec_;
};

ecg::SyntheticDatabase* FrontEndTest::database_ = nullptr;
FrontEndConfig* FrontEndTest::config_ = nullptr;
coding::DeltaHuffmanCodec* FrontEndTest::codec_ = nullptr;

// ---------------------------------------------------------------------------
// Config.

TEST(FrontEndConfig_, DefaultIsValid) {
  EXPECT_NO_THROW(validate(FrontEndConfig{}));
}

TEST(FrontEndConfig_, RejectsNonsense) {
  FrontEndConfig bad;
  bad.measurements = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = FrontEndConfig{};
  bad.measurements = 1024;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = FrontEndConfig{};
  bad.window = 500;  // Not divisible by 2^5.
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = FrontEndConfig{};
  bad.lowres_bits = 12;  // > record_bits.
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = FrontEndConfig{};
  bad.original_bits = 10;  // < record_bits.
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(FrontEndConfig_, DcReferenceIsMidScale) {
  FrontEndConfig config;
  EXPECT_DOUBLE_EQ(config.dc_reference(), 1024.0);
  config.record_bits = 12;
  EXPECT_DOUBLE_EQ(config.dc_reference(), 2048.0);
}

TEST(FrontEndConfig_, CompressionRatioMatchesPaperAxis) {
  FrontEndConfig config;  // n=512, 12-bit measurements vs 12-bit original.
  config.measurements = 256;
  EXPECT_NEAR(config.cs_compression_ratio(), 50.0, 1e-12);
  config.measurements = 96;
  EXPECT_NEAR(config.cs_compression_ratio(), 81.25, 1e-12);
}

TEST(FrontEndConfig_, MeasurementsForCrRoundTrips) {
  FrontEndConfig config;
  for (double cr : {50.0, 62.0, 75.0, 88.0, 97.0}) {
    config.measurements = config.measurements_for_cr(cr);
    EXPECT_NEAR(config.cs_compression_ratio(), cr, 0.2);
  }
  // Clamped at the extremes rather than degenerate.
  EXPECT_GE(config.measurements_for_cr(100.0), 1u);
  EXPECT_LE(config.measurements_for_cr(0.0), config.window);
}

// ---------------------------------------------------------------------------
// Codec training.

TEST_F(FrontEndTest, TrainLowResCodecProducesCompactCodebook) {
  const auto& codec = lowres_codec();
  EXPECT_EQ(codec.code_bits(), 7);
  // The Fig. 5 ballpark: tens of bytes, not kilobytes.
  EXPECT_LT(codec.codebook().storage_bytes(), 300u);
  EXPECT_GE(codec.codebook().entries().size(), 3u);
}

TEST_F(FrontEndTest, TrainRejectsDisabledChannel) {
  FrontEndConfig no_lowres = config();
  no_lowres.lowres_bits = 0;
  EXPECT_THROW(train_lowres_codec(no_lowres, database(), 2, 2),
               std::invalid_argument);
  EXPECT_THROW(train_lowres_codec(config(), database(), 0, 2),
               std::invalid_argument);
  EXPECT_THROW(train_lowres_codec(config(), database(), 99, 2),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Encoder.

TEST_F(FrontEndTest, EncoderRequiresCodecWhenChannelEnabled) {
  EXPECT_THROW(Encoder(config(), std::nullopt), std::invalid_argument);
}

TEST_F(FrontEndTest, EncoderRejectsMismatchedCodec) {
  FrontEndConfig other = config();
  other.lowres_bits = 5;
  // 7-bit codec against a 5-bit channel.
  EXPECT_THROW(Encoder(other, lowres_codec()), std::invalid_argument);
}

TEST_F(FrontEndTest, EncodeValidatesWindowLength) {
  const Encoder encoder(config(), lowres_codec());
  EXPECT_THROW(encoder.encode(linalg::Vector(255)), std::invalid_argument);
}

TEST_F(FrontEndTest, FrameBitAccounting) {
  const Encoder encoder(config(), lowres_codec());
  const Frame frame = encoder.encode(test_window());
  EXPECT_EQ(frame.window, 256u);
  EXPECT_EQ(frame.measurements.size(), 64u);
  EXPECT_EQ(frame.measurement_bits, 12);
  EXPECT_EQ(frame.cs_bits(), 64u * 12u);
  EXPECT_GT(frame.lowres_bits, 0u);
  EXPECT_EQ(frame.total_bits(), frame.cs_bits() + frame.lowres_bits);
  // The payload is tightly packed.
  EXPECT_EQ(frame.lowres_payload.size(), (frame.lowres_bits + 7) / 8);
}

TEST_F(FrontEndTest, EncodeDeterministic) {
  const Encoder encoder(config(), lowres_codec());
  const Frame a = encoder.encode(test_window());
  const Frame b = encoder.encode(test_window());
  EXPECT_EQ(a.measurements, b.measurements);
  EXPECT_EQ(a.lowres_payload, b.lowres_payload);
}

TEST_F(FrontEndTest, DisabledLowResGivesEmptyPayload) {
  FrontEndConfig normal_only = config();
  normal_only.lowres_bits = 0;
  const Encoder encoder(normal_only, std::nullopt);
  const Frame frame = encoder.encode(test_window());
  EXPECT_TRUE(frame.lowres_payload.empty());
  EXPECT_EQ(frame.lowres_bits, 0u);
}

// ---------------------------------------------------------------------------
// Decoder / roundtrip.

TEST_F(FrontEndTest, HybridReconstructionQuality) {
  const Codec codec(config(), lowres_codec());
  const linalg::Vector window = test_window();
  const DecodeResult result = codec.roundtrip(window);
  EXPECT_TRUE(result.used_box);
  // Zero-mean SNR in the paper's "reasonable" range even at m/n = 0.25.
  EXPECT_GT(metrics::snr_from_prd(metrics::prd_zero_mean(window, result.x)),
            12.0);
}

TEST_F(FrontEndTest, HybridStaysInsideBox) {
  const Codec codec(config(), lowres_codec());
  const linalg::Vector window = test_window();
  const DecodeResult result = codec.roundtrip(window);
  // The staircase box has width 16 (7-bit over 11-bit range); allow the
  // solver's feasibility slack.
  const double step = 16.0;
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_NEAR(result.x[i], window[i], 2.0 * step);
  }
}

TEST_F(FrontEndTest, HybridBeatsNormalCs) {
  // The paper's Fig. 7 ordering at high compression.
  const Codec codec(config(), lowres_codec());
  const linalg::Vector window = test_window();
  const DecodeResult hybrid = codec.roundtrip(window, DecodeMode::kHybrid);
  const DecodeResult normal = codec.roundtrip(window, DecodeMode::kNormalCs);
  EXPECT_FALSE(normal.used_box);
  const double snr_hybrid =
      metrics::snr_from_prd(metrics::prd_zero_mean(window, hybrid.x));
  const double snr_normal =
      metrics::snr_from_prd(metrics::prd_zero_mean(window, normal.x));
  EXPECT_GT(snr_hybrid, snr_normal + 3.0);
}

TEST_F(FrontEndTest, DecodeModeValidation) {
  FrontEndConfig normal_only = config();
  normal_only.lowres_bits = 0;
  const Encoder encoder(normal_only, std::nullopt);
  const Decoder decoder(normal_only, std::nullopt);
  const Frame frame = encoder.encode(test_window());
  EXPECT_THROW(decoder.decode(frame, DecodeMode::kHybrid),
               std::invalid_argument);
  EXPECT_NO_THROW(decoder.decode(frame, DecodeMode::kAuto));
}

TEST_F(FrontEndTest, DecodeValidatesFrameShape) {
  const Decoder decoder(config(), lowres_codec());
  Frame bad;
  bad.window = 128;
  bad.measurements = linalg::Vector(64);
  bad.measurement_bits = 12;
  EXPECT_THROW(decoder.decode(bad), std::invalid_argument);
  bad.window = 256;
  bad.measurements = linalg::Vector(32);
  EXPECT_THROW(decoder.decode(bad), std::invalid_argument);
}

TEST_F(FrontEndTest, DecodeDeterministic) {
  const Codec codec(config(), lowres_codec());
  const linalg::Vector window = test_window();
  const DecodeResult a = codec.roundtrip(window);
  const DecodeResult b = codec.roundtrip(window);
  EXPECT_EQ(a.x, b.x);
}

TEST_F(FrontEndTest, LeakyIntegratorStillDecodes) {
  // The decoder regenerates the leakage-aware operator, so a mildly lossy
  // integrator must not break reconstruction.
  FrontEndConfig leaky = config();
  leaky.integrator_leakage = 0.001;
  const Codec codec(leaky, lowres_codec());
  const linalg::Vector window = test_window();
  const DecodeResult result = codec.roundtrip(window);
  EXPECT_GT(metrics::snr_from_prd(metrics::prd_zero_mean(window, result.x)),
            10.0);
}

// ---------------------------------------------------------------------------
// Runner.

TEST_F(FrontEndTest, RunRecordAggregates) {
  const Codec codec(config(), lowres_codec());
  const RecordReport report = run_record(codec, database().record(0), 2);
  EXPECT_EQ(report.record_name, "100");
  ASSERT_EQ(report.windows.size(), 2u);
  for (const auto& w : report.windows) {
    EXPECT_GT(w.snr, 0.0);
    EXPECT_GT(w.snr_raw, w.snr);  // Baseline energy inflates raw SNR.
    EXPECT_EQ(w.cs_bits, 64u * 12u);
    EXPECT_GT(w.lowres_bits, 0u);
  }
  // CS CR for m=64, n=256: (1 − 64/256)·100 = 75%.
  EXPECT_NEAR(report.cs_cr_percent, 75.0, 1e-9);
  EXPECT_GT(report.overhead_percent, 2.0);
  EXPECT_LT(report.overhead_percent, 25.0);
  EXPECT_NEAR(report.net_cr_percent,
              report.cs_cr_percent - report.overhead_percent, 1e-9);
}

TEST_F(FrontEndTest, RunDatabaseAndAggregates) {
  const Codec codec(config(), lowres_codec());
  const auto reports = run_database(codec, database(), 2, 1);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].record_name, "100");
  EXPECT_EQ(reports[1].record_name, "101");
  const double avg_snr = averaged_snr(reports);
  const double avg_prd = averaged_prd(reports);
  EXPECT_GT(avg_snr, 0.0);
  EXPECT_GT(avg_prd, 0.0);
  const auto snrs = per_record_snr(reports);
  ASSERT_EQ(snrs.size(), 2u);
  EXPECT_NEAR((snrs[0] + snrs[1]) / 2.0, avg_snr, 1e-12);
}

TEST_F(FrontEndTest, ReportCountsNonConvergedWindowsInsteadOfAveraging) {
  // With an iteration budget far too small to converge, every window must
  // land in non_converged_windows — the report may not silently fold
  // garbage reconstructions into the means without flagging it (ISSUE 3).
  FrontEndConfig starved = config();
  starved.solver.max_iterations = 3;
  const Codec codec(starved, lowres_codec());
  const RecordReport report = run_record(codec, database().record(0), 3);
  ASSERT_EQ(report.windows.size(), 3u);
  EXPECT_EQ(report.converged_windows + report.non_converged_windows,
            report.windows.size());
  EXPECT_EQ(report.non_converged_windows, report.windows.size());
  EXPECT_EQ(report.converged_windows, 0u);
  // Each window burned the full budget, and the totals reflect that.
  EXPECT_EQ(report.max_solver_iterations, 3);
  EXPECT_EQ(report.total_solver_iterations, 3u * 3u);
  EXPECT_GT(report.max_ball_violation, 0.0);
  for (const auto& w : report.windows) {
    EXPECT_FALSE(w.converged);
    EXPECT_EQ(w.iterations, 3);
  }
}

TEST_F(FrontEndTest, ReportCarriesConvergenceAndStageTimings) {
  const Codec codec(config(), lowres_codec());
  const RecordReport report = run_record(codec, database().record(0), 2);
  EXPECT_EQ(report.converged_windows + report.non_converged_windows,
            report.windows.size());
  EXPECT_GT(report.total_solver_iterations, 0u);
  EXPECT_GT(report.max_solver_iterations, 0);
  // obs is enabled by default, so the per-stage wall clocks are populated.
  EXPECT_GT(report.encode_seconds, 0.0);
  EXPECT_GT(report.decode_seconds, 0.0);
  for (const auto& w : report.windows) {
    EXPECT_GT(w.encode_ns, 0u);
    EXPECT_GT(w.decode_ns, 0u);
  }
}

TEST_F(FrontEndTest, RunnerValidation) {
  const Codec codec(config(), lowres_codec());
  EXPECT_THROW(run_record(codec, database().record(0), 0),
               std::invalid_argument);
  EXPECT_THROW(run_database(codec, database(), 0, 1), std::invalid_argument);
  EXPECT_THROW(run_database(codec, database(), 49, 1),
               std::invalid_argument);
}


TEST_F(FrontEndTest, LowResDisabledRunsThroughRunner) {
  FrontEndConfig normal_only = config();
  normal_only.lowres_bits = 0;
  const Codec codec(normal_only, std::nullopt);
  const RecordReport report = run_record(codec, database().record(0), 1);
  EXPECT_EQ(report.windows[0].lowres_bits, 0u);
  EXPECT_NEAR(report.overhead_percent, 0.0, 1e-12);
  EXPECT_NEAR(report.net_cr_percent, report.cs_cr_percent, 1e-12);
}

TEST_F(FrontEndTest, AutoModeWithoutPayloadFallsBackToNormal) {
  // A hybrid-capable decoder receiving a frame with no side channel must
  // decode it as normal CS rather than failing.
  FrontEndConfig normal_only = config();
  normal_only.lowres_bits = 0;
  const Encoder bare_encoder(normal_only, std::nullopt);
  const Decoder hybrid_decoder(config(), lowres_codec());
  const Frame frame = bare_encoder.encode(test_window());
  const DecodeResult result = hybrid_decoder.decode(frame, DecodeMode::kAuto);
  EXPECT_FALSE(result.used_box);
}

TEST_F(FrontEndTest, NonTwelveBitMeasurementAdcChangesCr) {
  FrontEndConfig narrow = config();
  narrow.measurement_adc_bits = 8;
  // CR = (n*12 - m*8)/(n*12): fewer bits per measurement, higher CR.
  EXPECT_GT(narrow.cs_compression_ratio(), config().cs_compression_ratio());
  const auto lowres = train_lowres_codec(narrow, database(), 2, 2);
  const Codec codec(narrow, lowres);
  const DecodeResult result = codec.roundtrip(test_window());
  EXPECT_GT(metrics::snr_from_prd(
                metrics::prd_zero_mean(test_window(), result.x)),
            8.0);
}

TEST_F(FrontEndTest, SigmaScaleZeroStillDecodes) {
  // Zero fidelity slack: equality-constrained data term.
  FrontEndConfig exact = config();
  exact.sigma_scale = 0.0;
  const Codec codec(exact, lowres_codec());
  const DecodeResult result = codec.roundtrip(test_window());
  EXPECT_GT(metrics::snr_from_prd(
                metrics::prd_zero_mean(test_window(), result.x)),
            10.0);
}
}  // namespace
}  // namespace csecg::core

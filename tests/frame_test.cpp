// Tests for the over-the-air frame serialization.
#include <gtest/gtest.h>

#include <stdexcept>

#include "csecg/core/frame.hpp"
#include "csecg/core/frontend.hpp"
#include "csecg/ecg/record.hpp"

namespace csecg::core {
namespace {

class FrameTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::RecordConfig record_config;
    record_config.duration_seconds = 15.0;
    database_ = new ecg::SyntheticDatabase(record_config, 2015);
    config_ = new FrontEndConfig();
    config_->window = 256;
    config_->measurements = 48;
    config_->wavelet_levels = 4;
    config_->solver.max_iterations = 400;
    codec_ = new coding::DeltaHuffmanCodec(
        train_lowres_codec(*config_, *database_, 2, 3));
  }
  static void TearDownTestSuite() {
    delete codec_;
    delete config_;
    delete database_;
  }

  static const ecg::SyntheticDatabase& database() { return *database_; }
  static const FrontEndConfig& config() { return *config_; }
  static const coding::DeltaHuffmanCodec& lowres() { return *codec_; }

 private:
  static ecg::SyntheticDatabase* database_;
  static FrontEndConfig* config_;
  static coding::DeltaHuffmanCodec* codec_;
};

ecg::SyntheticDatabase* FrameTest::database_ = nullptr;
FrontEndConfig* FrameTest::config_ = nullptr;
coding::DeltaHuffmanCodec* FrameTest::codec_ = nullptr;

TEST_F(FrameTest, RoundTripPreservesEverything) {
  const Encoder encoder(config(), lowres());
  ASSERT_TRUE(encoder.measurement_adc().has_value());
  const Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  const auto bytes = serialize_frame(frame, *encoder.measurement_adc());
  const Frame restored =
      deserialize_frame(bytes, *encoder.measurement_adc());
  EXPECT_EQ(restored.window, frame.window);
  EXPECT_EQ(restored.measurement_bits, frame.measurement_bits);
  EXPECT_EQ(restored.lowres_bits, frame.lowres_bits);
  EXPECT_EQ(restored.lowres_payload, frame.lowres_payload);
  // Measurement values survive exactly: they are ADC reconstruction
  // levels, and codes round-trip losslessly.
  EXPECT_EQ(restored.measurements, frame.measurements);
}

TEST_F(FrameTest, DecoderAcceptsDeserializedFrame) {
  const Encoder encoder(config(), lowres());
  const Decoder decoder(config(), lowres());
  const linalg::Vector window = database().record(0).window(400, 256);
  const Frame original_frame = encoder.encode(window);
  const auto bytes =
      serialize_frame(original_frame, *encoder.measurement_adc());
  const Frame wire_frame =
      deserialize_frame(bytes, *encoder.measurement_adc());
  const DecodeResult direct = decoder.decode(original_frame);
  const DecodeResult via_wire = decoder.decode(wire_frame);
  EXPECT_EQ(direct.x, via_wire.x);
}

TEST_F(FrameTest, WireSizeMatchesBitAccounting) {
  const Encoder encoder(config(), lowres());
  const Frame frame =
      encoder.encode(database().record(1).window(500, 256));
  const auto bytes = serialize_frame(frame, *encoder.measurement_adc());
  // Header: 2+2+2+1+1 = 8 bytes; measurements packed; +4 length + payload.
  const std::size_t expected = 8 + (frame.cs_bits() + 7) / 8 + 4 +
                               frame.lowres_payload.size();
  EXPECT_EQ(bytes.size(), expected);
}

TEST_F(FrameTest, FrameWithoutLowResSerializes) {
  FrontEndConfig no_lowres = config();
  no_lowres.lowres_bits = 0;
  const Encoder encoder(no_lowres, std::nullopt);
  const Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  const auto bytes = serialize_frame(frame, *encoder.measurement_adc());
  const Frame restored =
      deserialize_frame(bytes, *encoder.measurement_adc());
  EXPECT_TRUE(restored.lowres_payload.empty());
  EXPECT_EQ(restored.measurements, frame.measurements);
}

TEST_F(FrameTest, MalformedInputRejected) {
  const Encoder encoder(config(), lowres());
  const auto& adc = *encoder.measurement_adc();
  const Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  auto bytes = serialize_frame(frame, adc);

  // Bad magic.
  auto corrupted = bytes;
  corrupted[0] ^= 0xFF;
  EXPECT_THROW(deserialize_frame(corrupted, adc), std::invalid_argument);

  // Truncation at every interesting boundary.
  for (std::size_t cut : {std::size_t{1}, std::size_t{5}, std::size_t{9},
                          bytes.size() - 1}) {
    std::vector<std::uint8_t> shortened(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<long>(cut));
    EXPECT_THROW(deserialize_frame(shortened, adc), std::invalid_argument);
  }

  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0x00);
  EXPECT_THROW(deserialize_frame(padded, adc), std::invalid_argument);
}

TEST_F(FrameTest, AdcMismatchRejected) {
  const Encoder encoder(config(), lowres());
  const Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  const sensing::Quantizer other_adc(10, -100.0, 100.0,
                                     sensing::QuantizerMode::kRound);
  EXPECT_THROW(serialize_frame(frame, other_adc), std::invalid_argument);
  const auto bytes = serialize_frame(frame, *encoder.measurement_adc());
  EXPECT_THROW(deserialize_frame(bytes, other_adc), std::invalid_argument);
}

}  // namespace
}  // namespace csecg::core

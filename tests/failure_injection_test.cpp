// Failure-injection tests: corrupted payloads, clipping, and hostile
// inputs must surface as exceptions or graceful degradation — never
// silent corruption.  Also compiles the umbrella header.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "csecg/csecg.hpp"

namespace csecg {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::RecordConfig record_config;
    record_config.duration_seconds = 15.0;
    database_ = new ecg::SyntheticDatabase(record_config, 2015);
    config_ = new core::FrontEndConfig();
    config_->window = 256;
    config_->measurements = 64;
    config_->wavelet_levels = 4;
    config_->solver.max_iterations = 400;
    codec_ = new coding::DeltaHuffmanCodec(
        core::train_lowres_codec(*config_, *database_, 2, 3));
  }
  static void TearDownTestSuite() {
    delete codec_;
    delete config_;
    delete database_;
  }
  static const ecg::SyntheticDatabase& database() { return *database_; }
  static const core::FrontEndConfig& config() { return *config_; }
  static const coding::DeltaHuffmanCodec& lowres() { return *codec_; }

 private:
  static ecg::SyntheticDatabase* database_;
  static core::FrontEndConfig* config_;
  static coding::DeltaHuffmanCodec* codec_;
};

ecg::SyntheticDatabase* FailureTest::database_ = nullptr;
core::FrontEndConfig* FailureTest::config_ = nullptr;
coding::DeltaHuffmanCodec* FailureTest::codec_ = nullptr;

TEST_F(FailureTest, TruncatedLowResPayloadThrows) {
  const core::Encoder encoder(config(), lowres());
  const core::Decoder decoder(config(), lowres());
  core::Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  // Radio dropped the tail of the payload.
  frame.lowres_payload.resize(frame.lowres_payload.size() / 4);
  EXPECT_THROW(decoder.decode(frame, core::DecodeMode::kHybrid),
               coding::DecodeError);
}

TEST_F(FailureTest, CorruptedPayloadEitherThrowsOrDecodesSomething) {
  // Bit errors in a Huffman stream either desynchronize (throw) or decode
  // to wrong-but-in-range codes; both are acceptable, crashes are not.
  const core::Encoder encoder(config(), lowres());
  const core::Decoder decoder(config(), lowres());
  core::Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  for (std::size_t byte = 0; byte < frame.lowres_payload.size();
       byte += 3) {
    core::Frame corrupted = frame;
    corrupted.lowres_payload[byte] ^= 0x5A;
    try {
      const auto result =
          decoder.decode(corrupted, core::DecodeMode::kHybrid);
      EXPECT_EQ(result.x.size(), 256u);
    } catch (const coding::DecodeError&) {
    }
  }
}

TEST_F(FailureTest, NormalCsModeImmuneToPayloadCorruption) {
  // The CS-only decode path never touches the side channel.
  const core::Encoder encoder(config(), lowres());
  const core::Decoder decoder(config(), lowres());
  core::Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  const auto clean = decoder.decode(frame, core::DecodeMode::kNormalCs);
  for (auto& byte : frame.lowres_payload) byte ^= 0xFF;
  const auto after = decoder.decode(frame, core::DecodeMode::kNormalCs);
  EXPECT_EQ(clean.x, after.x);
}

TEST_F(FailureTest, RailedInputStillEncodes) {
  // Lead-off / saturation: all samples at an ADC rail.  The rail sits at
  // the measurement ADC's design full-scale, so a third of the chip sums
  // clip and the data term fights the box — graceful degradation means
  // staying within a few staircase steps of the rail, not exactness.
  // Clipped measurements can be inconsistent with *any* box point, so the
  // solver compromises; the guarantee is bounded, finite output in the
  // upper part of the range — no NaNs, no runaway.
  const core::Codec codec(config(), lowres());
  const linalg::Vector railed(256, 2047.0);
  const auto result = codec.roundtrip(railed);
  ASSERT_EQ(result.x.size(), 256u);
  for (double v : result.x) {
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 1024.0);
    EXPECT_LT(v, 2048.0 + 512.0);
  }
}

TEST_F(FailureTest, MeasurementTamperingDegradesButStaysInBox) {
  core::FrontEndConfig patient = config();
  patient.solver.max_iterations = 2500;  // Let the duals enforce the box.
  const core::Encoder encoder(patient, lowres());
  const core::Decoder decoder(patient, lowres());
  const linalg::Vector window = database().record(0).window(400, 256);
  core::Frame frame = encoder.encode(window);
  // Saturate a few measurements (e.g. interference burst).
  for (std::size_t i = 0; i < 5; ++i) frame.measurements[i] *= 10.0;
  const auto result = decoder.decode(frame, core::DecodeMode::kHybrid);
  // The corrupted measurements are inconsistent with the box, so the
  // solver compromises — but the side channel caps the damage at a
  // handful of staircase steps (calibrated max ≈ 84 units = 5·d), versus
  // unbounded distortion without it.
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_NEAR(result.x[i], window[i], 128.0);
  }
}

TEST_F(FailureTest, SolverBudgetExhaustionIsReported) {
  core::FrontEndConfig tight = config();
  tight.solver.max_iterations = 2;
  tight.solver.tol = 1e-15;
  const core::Codec codec(tight, lowres());
  const auto result =
      codec.roundtrip(database().record(0).window(400, 256));
  EXPECT_FALSE(result.solver.converged);
  EXPECT_EQ(result.solver.iterations, 2);
}

TEST(UmbrellaHeader, PullsEverythingIn) {
  // Touch one symbol from each subsystem to prove the umbrella compiles
  // and links.
  rng::Xoshiro256 gen(1);
  EXPECT_NO_THROW(rng::uniform01(gen));
  EXPECT_EQ(linalg::Matrix::identity(2)(0, 0), 1.0);
  EXPECT_EQ(dsp::wavelet_name(dsp::WaveletFamily::kDb4), "db4");
  EXPECT_EQ(ecg::beat_type_code(ecg::BeatType::kPvc), std::string("V"));
  EXPECT_GT(sensing::welch_bound(8, 32), 0.0);
  EXPECT_EQ(recovery::soft_threshold(2.0, 1.0), 1.0);
  EXPECT_EQ(coding::histogram({1, 1}).size(), 1u);
  EXPECT_GT(power::TechnologyParams{}.vdd, 0.0);
  EXPECT_NEAR(metrics::snr_from_prd(100.0), 0.0, 1e-12);
  EXPECT_NO_THROW(validate(core::FrontEndConfig{}));
}

}  // namespace
}  // namespace csecg

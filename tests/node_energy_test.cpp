// Tests for the whole-node energy model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "csecg/power/node_energy.hpp"

namespace csecg::power {
namespace {

TEST(NodeEnergy, Validation) {
  NodeEnergyParams bad;
  bad.radio_nj_per_bit = -1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  HybridDesign design;
  EXPECT_THROW(window_energy(design, TechnologyParams{},
                             NodeEnergyParams{}, 1000, 0.0),
               std::invalid_argument);
}

TEST(NodeEnergy, RadioEnergyExactPerBit) {
  NodeEnergyParams node;
  node.radio_nj_per_bit = 50.0;
  node.mcu_nj_per_coded_bit = 0.0;
  RmpiDesign design;
  const NodeEnergy e =
      window_energy(design, TechnologyParams{}, node, 1000, 1.0);
  EXPECT_NEAR(e.radio, 1000.0 * 50e-9, 1e-15);
  EXPECT_DOUBLE_EQ(e.digital, 0.0);
}

TEST(NodeEnergy, AnalogEqualsPowerTimesDuration) {
  TechnologyParams tech;
  RmpiDesign design;
  const double duration = 512.0 / 360.0;
  const NodeEnergy e = window_energy(design, tech, NodeEnergyParams{}, 0,
                                     duration);
  EXPECT_NEAR(e.analog, rmpi_power(design, tech).total() * duration,
              1e-15);
  EXPECT_DOUBLE_EQ(e.radio, 0.0);
}

TEST(NodeEnergy, HybridIncludesLowResAdc) {
  TechnologyParams tech;
  HybridDesign hybrid;
  hybrid.cs_path.channels = 96;
  RmpiDesign plain = hybrid.cs_path;
  const NodeEnergy eh =
      window_energy(hybrid, tech, NodeEnergyParams{}, 0, 1.0);
  const NodeEnergy ep =
      window_energy(plain, tech, NodeEnergyParams{}, 0, 1.0);
  EXPECT_GT(eh.analog, ep.analog);  // Low-res ADC adds (a little).
  EXPECT_LT(eh.analog, ep.analog * 1.01);
}

TEST(NodeEnergy, TotalsAndAveragePower) {
  NodeEnergy e;
  e.analog = 1e-6;
  e.radio = 2e-6;
  e.digital = 0.5e-6;
  EXPECT_DOUBLE_EQ(e.total(), 3.5e-6);
  EXPECT_NEAR(average_power(e, 2.0), 1.75e-6, 1e-18);
  EXPECT_THROW(average_power(e, 0.0), std::invalid_argument);
}

TEST(NodeEnergy, FewerChannelsAlwaysCheaper) {
  TechnologyParams tech;
  NodeEnergyParams node;
  HybridDesign small;
  small.cs_path.channels = 16;
  HybridDesign big;
  big.cs_path.channels = 240;
  const double duration = 512.0 / 360.0;
  // Air bits scale with m too (12 bits per measurement).
  const NodeEnergy e_small =
      window_energy(small, tech, node, 16 * 12 + 700, duration);
  const NodeEnergy e_big =
      window_energy(big, tech, node, 240 * 12 + 700, duration);
  EXPECT_LT(e_small.total(), e_big.total());
}

}  // namespace
}  // namespace csecg::power

// Tests for the iteratively reweighted ℓ1 solver and the weighted-prox
// extension of PDHG.
#include <gtest/gtest.h>

#include <stdexcept>

#include "csecg/linalg/matrix.hpp"
#include "csecg/recovery/reweighted.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::recovery {
namespace {

using linalg::LinearOperator;
using linalg::Matrix;
using linalg::Vector;

Matrix gaussian_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng::normal(gen);
  }
  linalg::normalize_columns(a);
  return a;
}

Vector sparse_vector(std::size_t n, std::size_t k, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Vector x(n);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t idx = 0;
    do {
      idx = static_cast<std::size_t>(rng::uniform_below(gen, n));
    } while (x[idx] != 0.0);
    x[idx] = static_cast<double>(rng::rademacher(gen)) *
             rng::uniform(gen, 1.0, 3.0);
  }
  return x;
}

TEST(Reweighted, OptionsValidation) {
  ReweightedOptions bad;
  bad.rounds = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = ReweightedOptions{};
  bad.epsilon = -1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Reweighted, OneRoundEqualsPlainBpdn) {
  const std::size_t n = 64;
  const Matrix a = gaussian_matrix(24, n, 1);
  const Vector y = linalg::multiply(a, sparse_vector(n, 4, 2));
  ReweightedOptions options;
  options.rounds = 1;
  options.solver.max_iterations = 2000;
  const auto rw =
      solve_reweighted_bpdn(LinearOperator::from_matrix(a),
                            LinearOperator::identity(n), y, 1e-6,
                            std::nullopt, options);
  const auto plain =
      solve_bpdn(LinearOperator::from_matrix(a),
                 LinearOperator::identity(n), y, 1e-6, std::nullopt,
                 options.solver);
  EXPECT_LT(linalg::norm2(rw.x - plain.x), 1e-10);
}

TEST(Reweighted, ImprovesRecoveryNearTheEdge) {
  // m just below what plain BPDN needs (calibrated: at m=30 plain BPDN
  // averages 0.15 relative error, reweighting halves it; deep failure at
  // m≈22 is beyond any reweighting).
  const std::size_t n = 128;
  const std::size_t m = 30;
  const std::size_t k = 7;
  double err_plain = 0.0;
  double err_rw = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Matrix a = gaussian_matrix(m, n, 10 + seed);
    const Vector x_true = sparse_vector(n, k, 20 + seed);
    const Vector y = linalg::multiply(a, x_true);
    ReweightedOptions options;
    options.rounds = 4;
    options.solver.max_iterations = 2500;
    const auto rw =
        solve_reweighted_bpdn(LinearOperator::from_matrix(a),
                              LinearOperator::identity(n), y, 1e-6,
                              std::nullopt, options);
    ReweightedOptions one = options;
    one.rounds = 1;
    const auto plain =
        solve_reweighted_bpdn(LinearOperator::from_matrix(a),
                              LinearOperator::identity(n), y, 1e-6,
                              std::nullopt, one);
    err_rw += linalg::norm2(rw.x - x_true) / linalg::norm2(x_true);
    err_plain += linalg::norm2(plain.x - x_true) / linalg::norm2(x_true);
  }
  EXPECT_LT(err_rw, 0.7 * err_plain);
}

TEST(Reweighted, RespectsBoxConstraint) {
  const std::size_t n = 64;
  const Matrix a = gaussian_matrix(16, n, 30);
  const Vector x_true = sparse_vector(n, 3, 31);
  const Vector y = linalg::multiply(a, x_true);
  BoxConstraint box;
  box.lower = Vector(n);
  box.upper = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    box.lower[i] = x_true[i] - 0.1;
    box.upper[i] = x_true[i] + 0.1;
  }
  ReweightedOptions options;
  options.rounds = 3;
  options.solver.max_iterations = 1500;
  const auto result =
      solve_reweighted_bpdn(LinearOperator::from_matrix(a),
                            LinearOperator::identity(n), y, 1e-6, box,
                            options);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(result.x[i], box.lower[i] - 0.01);
    EXPECT_LE(result.x[i], box.upper[i] + 0.01);
  }
}

TEST(WeightedPdhg, WeightsValidation) {
  const Matrix a = gaussian_matrix(8, 16, 40);
  PdhgOptions options;
  options.coefficient_weights = Vector(15);  // Wrong length.
  EXPECT_THROW(solve_bpdn(LinearOperator::from_matrix(a),
                          LinearOperator::identity(16), Vector(8), 0.1,
                          std::nullopt, options),
               std::invalid_argument);
  options.coefficient_weights = Vector(16, -1.0);  // Negative.
  EXPECT_THROW(solve_bpdn(LinearOperator::from_matrix(a),
                          LinearOperator::identity(16), Vector(8), 0.1,
                          std::nullopt, options),
               std::invalid_argument);
}

TEST(WeightedPdhg, ZeroWeightFreesCoefficient) {
  // With zero weight on the true support and huge weights elsewhere, the
  // solution must concentrate exactly there.
  const std::size_t n = 32;
  const Matrix a = gaussian_matrix(12, n, 41);
  Vector x_true(n);
  x_true[5] = 2.0;
  x_true[20] = -1.5;
  const Vector y = linalg::multiply(a, x_true);
  PdhgOptions options;
  options.max_iterations = 3000;
  options.coefficient_weights = Vector(n, 50.0);
  options.coefficient_weights[5] = 0.0;
  options.coefficient_weights[20] = 0.0;
  const auto result =
      solve_bpdn(LinearOperator::from_matrix(a),
                 LinearOperator::identity(n), y, 1e-6, std::nullopt,
                 options);
  EXPECT_NEAR(result.x[5], 2.0, 1e-2);
  EXPECT_NEAR(result.x[20], -1.5, 1e-2);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 5 || i == 20) continue;
    EXPECT_NEAR(result.x[i], 0.0, 1e-2);
  }
}

}  // namespace
}  // namespace csecg::recovery

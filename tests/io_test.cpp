// Tests for record persistence (.csrec round-trip, CSV export).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "csecg/ecg/io.hpp"
#include "csecg/ecg/record.hpp"

namespace csecg::ecg {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("csecg_io_test_") + name))
      .string();
}

EcgRecord make_record() {
  RecordConfig config;
  config.duration_seconds = 5.0;
  return generate_record(mitbih_surrogate_profiles()[2], config, 77);
}

TEST(RecordIo, SaveLoadRoundTrip) {
  const EcgRecord original = make_record();
  const std::string path = temp_path("roundtrip.csrec");
  save_record(original, path);
  const EcgRecord loaded = load_record(path);
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.samples, original.samples);
  EXPECT_DOUBLE_EQ(loaded.config.fs_hz, original.config.fs_hz);
  EXPECT_DOUBLE_EQ(loaded.config.adc_gain, original.config.adc_gain);
  EXPECT_EQ(loaded.config.adc_offset, original.config.adc_offset);
  EXPECT_EQ(loaded.config.adc_bits, original.config.adc_bits);
  ASSERT_EQ(loaded.beats.size(), original.beats.size());
  for (std::size_t i = 0; i < loaded.beats.size(); ++i) {
    EXPECT_EQ(loaded.beats[i].sample, original.beats[i].sample);
    EXPECT_EQ(loaded.beats[i].type, original.beats[i].type);
  }
  std::remove(path.c_str());
}

TEST(RecordIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_record(temp_path("does_not_exist.csrec")),
               std::runtime_error);
}

TEST(RecordIo, LoadGarbageThrows) {
  const std::string path = temp_path("garbage.csrec");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a csrec file";
  }
  EXPECT_THROW(load_record(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(RecordIo, LoadTruncatedThrows) {
  const EcgRecord original = make_record();
  const std::string path = temp_path("truncated.csrec");
  save_record(original, path);
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_record(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(RecordIo, CsvExportWellFormed) {
  const EcgRecord record = make_record();
  const std::string path = temp_path("export.csv");
  export_csv(record, path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "sample,adc_code,mv");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, record.samples.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csecg::ecg

// Unit tests for the zero-run delta-Huffman codec and Elias-gamma coding.
#include <gtest/gtest.h>

#include <stdexcept>

#include "csecg/coding/decode_error.hpp"
#include "csecg/coding/delta_huffman_codec.hpp"
#include "csecg/coding/zero_run_codec.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::coding {
namespace {

TEST(EliasGamma, KnownCodes) {
  // 1 -> "1", 2 -> "010", 3 -> "011", 4 -> "00100".
  BitWriter writer;
  elias_gamma_encode(1, writer);
  elias_gamma_encode(2, writer);
  elias_gamma_encode(3, writer);
  elias_gamma_encode(4, writer);
  EXPECT_EQ(writer.bit_count(), 1u + 3u + 3u + 5u);
  BitReader reader(writer.finish());
  EXPECT_EQ(elias_gamma_decode(reader), 1u);
  EXPECT_EQ(elias_gamma_decode(reader), 2u);
  EXPECT_EQ(elias_gamma_decode(reader), 3u);
  EXPECT_EQ(elias_gamma_decode(reader), 4u);
}

TEST(EliasGamma, BitsFormula) {
  EXPECT_EQ(elias_gamma_bits(1), 1);
  EXPECT_EQ(elias_gamma_bits(2), 3);
  EXPECT_EQ(elias_gamma_bits(3), 3);
  EXPECT_EQ(elias_gamma_bits(4), 5);
  EXPECT_EQ(elias_gamma_bits(255), 15);
  EXPECT_EQ(elias_gamma_bits(256), 17);
}

TEST(EliasGamma, RoundTripRange) {
  BitWriter writer;
  for (std::uint64_t v = 1; v <= 600; ++v) elias_gamma_encode(v, writer);
  BitReader reader(writer.finish());
  for (std::uint64_t v = 1; v <= 600; ++v) {
    ASSERT_EQ(elias_gamma_decode(reader), v);
  }
}

TEST(EliasGamma, RejectsZero) {
  BitWriter writer;
  EXPECT_THROW(elias_gamma_encode(0, writer), std::invalid_argument);
}

std::vector<std::vector<std::int64_t>> staircase_corpus(
    int code_bits, std::uint64_t seed, double change_probability = 0.05) {
  rng::Xoshiro256 gen(seed);
  std::vector<std::vector<std::int64_t>> corpus;
  const std::int64_t max_code = (std::int64_t{1} << code_bits) - 1;
  for (int w = 0; w < 16; ++w) {
    std::vector<std::int64_t> window;
    std::int64_t level = max_code / 2;
    for (int i = 0; i < 256; ++i) {
      const double u = rng::uniform01(gen);
      if (u < change_probability) level += 1;
      if (u > 1.0 - change_probability) level -= 1;
      level = std::clamp<std::int64_t>(level, 0, max_code);
      window.push_back(level);
    }
    corpus.push_back(std::move(window));
  }
  return corpus;
}

TEST(ZeroRun, TrainValidation) {
  EXPECT_THROW(ZeroRunDeltaCodec::train({}, 5), std::invalid_argument);
  EXPECT_THROW(ZeroRunDeltaCodec::train({{1}}, 0), std::invalid_argument);
  EXPECT_THROW(ZeroRunDeltaCodec::train({{64}}, 5), std::invalid_argument);
}

TEST(ZeroRun, ReservedSymbolsDistinct) {
  const auto codec = ZeroRunDeltaCodec::train(staircase_corpus(5, 1), 5);
  EXPECT_EQ(codec.escape_symbol(), 32);
  EXPECT_EQ(codec.run_symbol(), 33);
  EXPECT_TRUE(codec.codebook().contains(32));
  EXPECT_TRUE(codec.codebook().contains(33));
}

TEST(ZeroRun, RoundTripOnCorpus) {
  const auto corpus = staircase_corpus(5, 2);
  const auto codec = ZeroRunDeltaCodec::train(corpus, 5);
  for (const auto& window : corpus) {
    std::size_t bits = 0;
    const auto payload = codec.encode(window, bits);
    EXPECT_EQ(codec.decode(payload, window.size()), window);
    EXPECT_EQ(bits, codec.encoded_bits(window));
  }
}

TEST(ZeroRun, BeatsScalarHuffmanOnSmoothData) {
  // Very smooth staircase (mean zero-run length ~50): run coding collapses
  // whole runs into ~1+gamma bits.
  const auto corpus = staircase_corpus(4, 3, 0.01);
  const auto zero_run = ZeroRunDeltaCodec::train(corpus, 4);
  const auto scalar = DeltaHuffmanCodec::train(corpus, 4);
  std::size_t zr_total = 0;
  std::size_t scalar_total = 0;
  for (const auto& window : corpus) {
    zr_total += zero_run.encoded_bits(window);
    scalar_total += scalar.encoded_bits(window);
  }
  EXPECT_LT(zr_total, scalar_total / 2);  // Long zero runs collapse.
}

TEST(ZeroRun, BreaksOneBitPerSampleFloor) {
  const auto corpus = staircase_corpus(3, 4, 0.01);
  const auto codec = ZeroRunDeltaCodec::train(corpus, 3);
  const auto& window = corpus.front();
  const double bits_per_sample =
      static_cast<double>(codec.encoded_bits(window)) /
      static_cast<double>(window.size());
  EXPECT_LT(bits_per_sample, 0.5);
}

TEST(ZeroRun, ConstantWindowIsOneRun) {
  const auto codec = ZeroRunDeltaCodec::train(staircase_corpus(5, 5), 5);
  const std::vector<std::int64_t> window(500, 17);
  std::size_t bits = 0;
  const auto payload = codec.encode(window, bits);
  // First code (5) + RUN code + gamma(499) ≈ well under 40 bits.
  EXPECT_LT(bits, 40u);
  EXPECT_EQ(codec.decode(payload, window.size()), window);
}

TEST(ZeroRun, EscapeStillWorks) {
  const auto codec = ZeroRunDeltaCodec::train(staircase_corpus(5, 6), 5);
  std::vector<std::int64_t> window(64, 16);
  window[30] = 0;
  window[31] = 31;  // Wild swings never seen in training.
  std::size_t bits = 0;
  const auto payload = codec.encode(window, bits);
  EXPECT_EQ(codec.decode(payload, window.size()), window);
}

TEST(ZeroRun, AlternatingNoZerosStillRoundTrips) {
  const auto codec = ZeroRunDeltaCodec::train(staircase_corpus(4, 7), 4);
  std::vector<std::int64_t> window;
  for (int i = 0; i < 128; ++i) window.push_back(i % 2 == 0 ? 7 : 8);
  std::size_t bits = 0;
  const auto payload = codec.encode(window, bits);
  EXPECT_EQ(codec.decode(payload, window.size()), window);
}

TEST(ZeroRun, RejectsCodebookWithoutRunSymbol) {
  // A scalar codec's codebook lacks the run marker.
  const auto scalar = DeltaHuffmanCodec::train(staircase_corpus(5, 8), 5);
  EXPECT_THROW(ZeroRunDeltaCodec(scalar.codebook(), 5),
               std::invalid_argument);
}

TEST(ZeroRun, DecodeRunOverflowRejected) {
  const auto codec = ZeroRunDeltaCodec::train(staircase_corpus(5, 9), 5);
  const std::vector<std::int64_t> window(100, 12);
  std::size_t bits = 0;
  const auto payload = codec.encode(window, bits);
  // Asking for fewer symbols than the encoded run carries must throw, not
  // silently truncate.
  EXPECT_THROW(codec.decode(payload, 50), DecodeError);
}

}  // namespace
}  // namespace csecg::coding

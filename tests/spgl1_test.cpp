// Tests for the SPGL1-style BPDN solver and the ℓ1-ball projection.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "csecg/linalg/matrix.hpp"
#include "csecg/recovery/pdhg.hpp"
#include "csecg/recovery/spgl1.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::recovery {
namespace {

using linalg::LinearOperator;
using linalg::Matrix;
using linalg::Vector;

Matrix gaussian_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng::normal(gen);
  }
  linalg::normalize_columns(a);
  return a;
}

Vector sparse_vector(std::size_t n, std::size_t k, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Vector x(n);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t idx = 0;
    do {
      idx = static_cast<std::size_t>(rng::uniform_below(gen, n));
    } while (x[idx] != 0.0);
    x[idx] = static_cast<double>(rng::rademacher(gen)) *
             rng::uniform(gen, 1.0, 3.0);
  }
  return x;
}

// ---------------------------------------------------------------------------
// ℓ1-ball projection.

TEST(L1Projection, InsideBallUntouched) {
  const Vector v{0.3, -0.2, 0.1};
  EXPECT_EQ(project_l1_ball(v, 1.0), v);
}

TEST(L1Projection, ResultOnBallSurface) {
  rng::Xoshiro256 gen(1);
  Vector v(50);
  for (auto& x : v) x = rng::normal(gen);
  const Vector p = project_l1_ball(v, 2.5);
  EXPECT_NEAR(linalg::norm1(p), 2.5, 1e-9);
}

TEST(L1Projection, ZeroRadiusGivesZero) {
  EXPECT_EQ(project_l1_ball(Vector{1.0, -2.0}, 0.0), Vector(2));
  EXPECT_THROW(project_l1_ball(Vector{1.0}, -1.0), std::invalid_argument);
}

TEST(L1Projection, IsActuallyNearestPoint) {
  // Verify the projection property against brute-force candidates.
  rng::Xoshiro256 gen(2);
  const Vector v{2.0, -1.0, 0.5};
  const double radius = 1.5;
  const Vector p = project_l1_ball(v, radius);
  const double best = linalg::norm2(v - p);
  for (int t = 0; t < 2000; ++t) {
    Vector candidate(3);
    for (auto& x : candidate) x = rng::uniform(gen, -2.5, 2.5);
    if (linalg::norm1(candidate) > radius) continue;
    EXPECT_GE(linalg::norm2(v - candidate), best - 1e-9);
  }
}

TEST(L1Projection, SignsPreserved) {
  const Vector v{5.0, -5.0};
  const Vector p = project_l1_ball(v, 1.0);
  EXPECT_GT(p[0], 0.0);
  EXPECT_LT(p[1], 0.0);
}

// ---------------------------------------------------------------------------
// SPGL1.

TEST(Spgl1, OptionsValidation) {
  Spgl1Options bad;
  bad.max_root_iterations = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = Spgl1Options{};
  bad.root_tol = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Spgl1, TrivialWhenSigmaExceedsData) {
  const Matrix a = gaussian_matrix(8, 16, 3);
  const Vector y(8, 0.1);
  const auto result =
      solve_bpdn_spgl1(LinearOperator::from_matrix(a), y, 10.0);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(linalg::norm2(result.coefficients), 0.0);
}

TEST(Spgl1, RecoversSparseSignal) {
  const std::size_t n = 128;
  const Matrix a = gaussian_matrix(48, n, 4);
  const Vector x_true = sparse_vector(n, 5, 5);
  const Vector y = linalg::multiply(a, x_true);
  Spgl1Options options;
  options.max_root_iterations = 20;
  options.max_inner_iterations = 600;
  const auto result = solve_bpdn_spgl1(LinearOperator::from_matrix(a), y,
                                       1e-3 * linalg::norm2(y), options);
  EXPECT_LT(linalg::norm2(result.coefficients - x_true) /
                linalg::norm2(x_true),
            0.05);
}

TEST(Spgl1, ResidualLandsNearSigma) {
  const std::size_t n = 96;
  const Matrix a = gaussian_matrix(32, n, 6);
  rng::Xoshiro256 gen(7);
  Vector y = linalg::multiply(a, sparse_vector(n, 4, 8));
  for (auto& v : y) v += rng::normal(gen, 0.0, 0.02);
  const double sigma = 0.02 * std::sqrt(32.0) * 1.2;
  const auto result =
      solve_bpdn_spgl1(LinearOperator::from_matrix(a), y, sigma);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.residual_norm, sigma,
              0.05 * std::max(linalg::norm2(y), 1.0));
}

TEST(Spgl1, AgreesWithPdhgOnSameProblem) {
  // Two completely different algorithms, one convex optimum.
  const std::size_t n = 96;
  const Matrix a = gaussian_matrix(40, n, 9);
  const Vector x_true = sparse_vector(n, 5, 10);
  const Vector y = linalg::multiply(a, x_true);
  const double sigma = 1e-4 * linalg::norm2(y);

  Spgl1Options spgl1_options;
  spgl1_options.max_root_iterations = 20;
  spgl1_options.max_inner_iterations = 800;
  const auto spgl1 = solve_bpdn_spgl1(LinearOperator::from_matrix(a), y,
                                      sigma, spgl1_options);
  PdhgOptions pdhg_options;
  pdhg_options.max_iterations = 4000;
  const auto pdhg =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, sigma, std::nullopt, pdhg_options);
  EXPECT_NEAR(linalg::norm1(spgl1.coefficients), linalg::norm1(pdhg.x),
              0.02 * linalg::norm1(pdhg.x));
  EXPECT_LT(linalg::norm2(spgl1.coefficients - pdhg.x) /
                linalg::norm2(pdhg.x),
            0.05);
}

TEST(Spgl1, DimensionValidation) {
  const Matrix a = gaussian_matrix(8, 16, 11);
  EXPECT_THROW(
      solve_bpdn_spgl1(LinearOperator::from_matrix(a), Vector(7), 0.1),
      std::invalid_argument);
  EXPECT_THROW(
      solve_bpdn_spgl1(LinearOperator::from_matrix(a), Vector(8), -0.1),
      std::invalid_argument);
}

}  // namespace
}  // namespace csecg::recovery

// Golden serialized fixtures + round-trip property tests for every wire
// format the untrusted-input decoders parse.
//
// The golden hex strings pin the exact bytes the encoders emit today.
// If an encoder change breaks one, that change ALTERED A WIRE FORMAT:
// either it is a bug, or the format version is being bumped on purpose —
// in which case update the hex here, regenerate tests/corpus/ with
// `fuzz_driver --write-corpus tests/corpus`, and note the break in
// DESIGN.md §9.  A silent format drift would orphan every committed
// corpus file and any data captured by a deployed node.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "csecg/coding/bitstream.hpp"
#include "csecg/coding/decode_error.hpp"
#include "csecg/coding/delta.hpp"
#include "csecg/coding/huffman.hpp"
#include "csecg/coding/zero_run_codec.hpp"
#include "csecg/fuzz/fixtures.hpp"
#include "csecg/fuzz/targets.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg {
namespace {

std::string hex(const std::vector<std::uint8_t>& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t byte : bytes) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xF]);
  }
  return out;
}

// --- Golden fixtures (byte-exact, see header comment before editing).

TEST(Golden, DeltaCodebookSerialization) {
  EXPECT_EQ(hex(fuzz::reference_codebook().serialize()),
            "02030101020000ffff01008000");
}

TEST(Golden, ZeroRunCodebookSerialization) {
  EXPECT_EQ(hex(fuzz::reference_zero_run_codec().codebook().serialize()),
            "01030101022101ff20");
}

TEST(Golden, DeltaHuffmanPayload) {
  std::size_t bits = 0;
  const auto payload =
      fuzz::reference_delta_codec().encode({3, 3, 4, 5, 5, 4, 3}, bits);
  EXPECT_EQ(hex(payload), "06d940");
  EXPECT_EQ(bits, 19u);
}

TEST(Golden, ZeroRunPayload) {
  std::size_t bits = 0;
  const auto payload = fuzz::reference_zero_run_codec().encode(
      {12, 12, 12, 12, 12, 13, 13, 13}, bits);
  EXPECT_EQ(hex(payload), "609100");
  EXPECT_EQ(bits, 17u);
}

TEST(Golden, FrameSeedBytes) {
  EXPECT_EQ(
      hex(fuzz::seed_corpus(fuzz::Target::kFrame)[0]),
      "c5e6010000180801674a1e1184f190e1b806b273ae0fc89b25601b31347f70bf"
      "0000013280400030000c001881810031830400130008000201800c1800080060"
      "1800180069000020600400");
}

TEST(Golden, PacketSeedBytes) {
  EXPECT_EQ(hex(fuzz::seed_corpus(fuzz::Target::kPacket)[0]),
            "a70000010000000100000010008000254a6f94b9de03284d7297bce1062b"
            "30df");
}

// --- Round-trip property tests.

TEST(RoundTrip, BitstreamRandomPrograms) {
  rng::Xoshiro256 gen(1234);
  for (int trial = 0; trial < 50; ++trial) {
    coding::BitWriter writer;
    std::vector<std::pair<std::uint64_t, int>> writes;
    for (int i = 0; i < 100; ++i) {
      const int width = static_cast<int>(rng::uniform_below(gen, 65));
      const std::uint64_t value =
          width == 64 ? gen.next()
                      : gen.next() & ((std::uint64_t{1} << width) - 1);
      writer.write(value, width);
      writes.emplace_back(value, width);
    }
    coding::BitReader reader(writer.finish());
    for (const auto& [value, width] : writes) {
      EXPECT_EQ(reader.read(width), value);
    }
  }
}

TEST(RoundTrip, BitstreamZeroWidthAndWordEdges) {
  coding::BitWriter writer;
  writer.write(0, 0);  // Zero-width write is a no-op...
  writer.write(~std::uint64_t{0}, 64);
  writer.write(0, 0);
  writer.write(1, 1);
  writer.write(std::uint64_t{1} << 63 | 1, 64);
  EXPECT_EQ(writer.bit_count(), 129u);
  coding::BitReader reader(writer.finish());
  EXPECT_EQ(reader.read(0), 0u);  // ...and a zero-width read reads nothing,
  EXPECT_EQ(reader.read(64), ~std::uint64_t{0});
  EXPECT_EQ(reader.read(0), 0u);  // even at a word boundary.
  EXPECT_EQ(reader.read(1), 1u);
  EXPECT_EQ(reader.read(64), std::uint64_t{1} << 63 | 1);
  EXPECT_EQ(reader.read(7), 0u);  // finish() zero-pads to a byte boundary.
  EXPECT_THROW((void)reader.read_bit(), coding::DecodeError);
}

TEST(RoundTrip, DeltaCoding) {
  rng::Xoshiro256 gen(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::int64_t> codes;
    for (int i = 0; i < 200; ++i) {
      codes.push_back(static_cast<std::int64_t>(
                          rng::uniform_below(gen, 1 << 10)) -
                      512);
    }
    EXPECT_EQ(coding::delta_decode(coding::delta_encode(codes)), codes);
  }
}

TEST(RoundTrip, WindowCodecsOnRandomStaircases) {
  const auto& delta = fuzz::reference_delta_codec();
  const auto& zero_run = fuzz::reference_zero_run_codec();
  for (std::uint64_t seed = 50; seed < 55; ++seed) {
    for (const auto& window : fuzz::staircase_corpus(5, seed)) {
      std::size_t bits = 0;
      EXPECT_EQ(zero_run.decode(zero_run.encode(window, bits),
                                window.size()),
                window);
      EXPECT_EQ(delta.decode(delta.encode(window, bits), window.size()),
                window);
    }
  }
}

TEST(RoundTrip, CodebookSerializationOnRandomHistograms) {
  rng::Xoshiro256 gen(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::pair<std::int64_t, std::uint64_t>> histogram;
    const std::size_t symbols = 1 + rng::uniform_below(gen, 40);
    for (std::size_t s = 0; s < symbols; ++s) {
      histogram.emplace_back(
          static_cast<std::int64_t>(s) - 20,
          1 + rng::uniform_below(gen, 1000));
    }
    const auto book = coding::HuffmanCodebook::build(histogram);
    const auto restored =
        coding::HuffmanCodebook::deserialize(book.serialize());
    ASSERT_EQ(restored.entries().size(), book.entries().size());
    for (std::size_t i = 0; i < book.entries().size(); ++i) {
      EXPECT_EQ(restored.entries()[i].symbol, book.entries()[i].symbol);
      EXPECT_EQ(restored.entries()[i].length, book.entries()[i].length);
      EXPECT_EQ(restored.entries()[i].code, book.entries()[i].code);
    }
  }
}

TEST(RoundTrip, SingleSymbolCodebookSurvivesSerialization) {
  // The one legal Kraft-incomplete shape: a lone symbol with a 1-bit
  // code.  The deserializer's completeness check must admit exactly it.
  const auto book = coding::HuffmanCodebook::build({{-3, 7}});
  const auto restored =
      coding::HuffmanCodebook::deserialize(book.serialize());
  ASSERT_EQ(restored.entries().size(), 1u);
  EXPECT_EQ(restored.entries()[0].symbol, -3);
  EXPECT_EQ(restored.entries()[0].length, 1);
}

TEST(RoundTrip, EliasGammaEdgeValues) {
  for (const std::uint64_t value :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
        std::uint64_t{255}, std::uint64_t{1} << 32,
        (std::uint64_t{1} << 63) - 1, std::uint64_t{1} << 63,
        ~std::uint64_t{0}}) {
    coding::BitWriter writer;
    coding::elias_gamma_encode(value, writer);
    coding::BitReader reader(writer.finish());
    EXPECT_EQ(coding::elias_gamma_decode(reader), value) << value;
  }
}

}  // namespace
}  // namespace csecg

// Unit tests for csecg::rng — determinism, distribution sanity, stream
// independence.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::rng {
namespace {

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, ZeroSeedStateNotAllZero) {
  Xoshiro256 g(0);
  bool any_nonzero = false;
  for (auto w : g.state()) any_nonzero |= (w != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, SplitYieldsOriginalStreamThenAdvances) {
  Xoshiro256 parent(99);
  Xoshiro256 reference(99);
  Xoshiro256 child = parent.split();
  // The child continues the parent's pre-split stream...
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child.next(), reference.next());
  // ...and the parent has jumped away from it.
  Xoshiro256 child2 = parent.split();
  EXPECT_NE(child2.next(), reference.next());
}

TEST(Xoshiro, SplitStreamsPairwiseDistinct) {
  Xoshiro256 root(5);
  std::set<std::uint64_t> firsts;
  for (int i = 0; i < 8; ++i) firsts.insert(root.split().next());
  EXPECT_EQ(firsts.size(), 8u);
}

TEST(SplitMix, KnownFirstOutputProperties) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  EXPECT_NE(first, 0u);
  EXPECT_EQ(s, 0x9E3779B97F4A7C15ULL);
}

TEST(Distributions, Uniform01Range) {
  Xoshiro256 g(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(g);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Distributions, Uniform01MeanVariance) {
  Xoshiro256 g(42);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = uniform01(g);
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Distributions, UniformRangeRespected) {
  Xoshiro256 g(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = uniform(g, -3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Distributions, NormalMomentsMatch) {
  Xoshiro256 g(77);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = normal(g);
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 1e-2);
  EXPECT_NEAR(sum2 / n, 1.0, 2e-2);
}

TEST(Distributions, NormalShiftScale) {
  Xoshiro256 g(78);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += normal(g, 10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 5e-2);
}

TEST(Distributions, RademacherBalanced) {
  Xoshiro256 g(11);
  int pos = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const int r = rademacher(g);
    ASSERT_TRUE(r == 1 || r == -1);
    if (r == 1) ++pos;
  }
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 1e-2);
}

TEST(Distributions, BernoulliProbability) {
  Xoshiro256 g(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (bernoulli(g, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 1e-2);
}

TEST(Distributions, UniformBelowBoundsAndCoverage) {
  Xoshiro256 g(13);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = uniform_below(g, 10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 1e-2);
}

TEST(Distributions, UniformBelowOneAlwaysZero) {
  Xoshiro256 g(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_below(g, 1), 0u);
}

}  // namespace
}  // namespace csecg::rng

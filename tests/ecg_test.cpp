// Unit tests for csecg::ecg — rhythm generation, the dynamical
// synthesizer, noise models, digitization, and the synthetic database.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "csecg/ecg/beats.hpp"
#include "csecg/ecg/ecgsyn.hpp"
#include "csecg/ecg/noise.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/linalg/vector.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::ecg {
namespace {

using linalg::Vector;

// ---------------------------------------------------------------------------
// Beats & rhythm.

TEST(BeatMorphologies, PvcHasNoPWave) {
  EXPECT_EQ(beat_morphology(BeatType::kPvc).a[0], 0.0);
  EXPECT_NE(beat_morphology(BeatType::kNormal).a[0], 0.0);
}

TEST(BeatMorphologies, PvcQrsWiderThanNormal) {
  const auto pvc = beat_morphology(BeatType::kPvc);
  const auto normal = beat_morphology(BeatType::kNormal);
  EXPECT_GT(pvc.b[2], 2.0 * normal.b[2]);  // R-wave width.
}

TEST(BeatMorphologies, PvcTWaveDiscordant) {
  // Normal T is upright, PVC T is inverted.
  EXPECT_GT(beat_morphology(BeatType::kNormal).a[4], 0.0);
  EXPECT_LT(beat_morphology(BeatType::kPvc).a[4], 0.0);
}

TEST(BeatMorphologies, CodesDistinct) {
  std::set<std::string> codes;
  for (BeatType t : {BeatType::kNormal, BeatType::kPvc, BeatType::kApc,
                     BeatType::kWide}) {
    codes.insert(beat_type_code(t));
  }
  EXPECT_EQ(codes.size(), 4u);
}

TEST(ScaleMorphology, ScalesAmplitudesAndWidths) {
  const auto base = beat_morphology(BeatType::kNormal);
  const auto scaled = scale_morphology(base, 2.0, 0.5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(scaled.a[i], 2.0 * base.a[i]);
    EXPECT_DOUBLE_EQ(scaled.b[i], 0.5 * base.b[i]);
    EXPECT_DOUBLE_EQ(scaled.theta_deg[i], base.theta_deg[i]);
  }
  EXPECT_THROW(scale_morphology(base, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(scale_morphology(base, 1.0, -1.0), std::invalid_argument);
}

TEST(RhythmConfigValidation, RejectsNonsense) {
  RhythmConfig bad;
  bad.mean_hr_bpm = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = RhythmConfig{};
  bad.pvc_probability = 1.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = RhythmConfig{};
  bad.pvc_probability = 0.6;
  bad.apc_probability = 0.6;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = RhythmConfig{};
  bad.lf_amplitude = 0.5;
  bad.hf_amplitude = 0.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(GenerateRhythm, CoversRequestedDuration) {
  rng::Xoshiro256 gen(1);
  RhythmConfig config;
  const auto beats = generate_rhythm(config, 60.0, gen);
  double total = 0.0;
  for (const auto& b : beats) total += b.rr_seconds;
  EXPECT_GE(total, 60.0);
  EXPECT_LT(total, 63.0);  // No runaway.
}

TEST(GenerateRhythm, MeanRateMatchesConfig) {
  rng::Xoshiro256 gen(2);
  RhythmConfig config;
  config.mean_hr_bpm = 80.0;
  const auto beats = generate_rhythm(config, 300.0, gen);
  double total = 0.0;
  for (const auto& b : beats) total += b.rr_seconds;
  const double hr = 60.0 * static_cast<double>(beats.size()) / total;
  EXPECT_NEAR(hr, 80.0, 3.0);
}

TEST(GenerateRhythm, PvcFollowedByCompensatoryPause) {
  rng::Xoshiro256 gen(3);
  RhythmConfig config;
  config.pvc_probability = 0.3;
  const auto beats = generate_rhythm(config, 120.0, gen);
  const double rr_mean = 60.0 / config.mean_hr_bpm;
  int pvcs = 0;
  for (std::size_t i = 0; i + 1 < beats.size(); ++i) {
    if (beats[i].type == BeatType::kPvc) {
      ++pvcs;
      EXPECT_LT(beats[i].rr_seconds, rr_mean);        // Premature.
      EXPECT_GT(beats[i + 1].rr_seconds, rr_mean);    // Pause.
      EXPECT_NE(beats[i + 1].type, BeatType::kPvc);   // Never back-to-back.
    }
  }
  EXPECT_GT(pvcs, 10);
}

TEST(GenerateRhythm, ChronicallyWideProducesWideBeats) {
  rng::Xoshiro256 gen(4);
  RhythmConfig config;
  config.chronically_wide = true;
  const auto beats = generate_rhythm(config, 30.0, gen);
  for (const auto& b : beats) {
    EXPECT_TRUE(b.type == BeatType::kWide || b.type == BeatType::kPvc ||
                b.type == BeatType::kApc);
  }
}

TEST(GenerateRhythm, DeterministicGivenSeed) {
  RhythmConfig config;
  config.pvc_probability = 0.1;
  rng::Xoshiro256 g1(7);
  rng::Xoshiro256 g2(7);
  const auto a = generate_rhythm(config, 60.0, g1);
  const auto b = generate_rhythm(config, 60.0, g2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_DOUBLE_EQ(a[i].rr_seconds, b[i].rr_seconds);
  }
}

// ---------------------------------------------------------------------------
// Synthesizer.

TEST(EcgSyn, ConfigValidation) {
  EcgSynConfig config;
  config.fs_hz = 0.0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = EcgSynConfig{};
  config.oversample = 0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = EcgSynConfig{};
  config.amplitude_scale = -1.0;
  EXPECT_THROW(validate(config), std::invalid_argument);
}

TEST(EcgSyn, ProducesRequestedLength) {
  rng::Xoshiro256 gen(10);
  EcgSynConfig config;
  const SynthesizedEcg ecg = synthesize(config, 10.0, gen);
  EXPECT_NEAR(static_cast<double>(ecg.signal_mv.size()), 3600.0, 4.0);
  EXPECT_EQ(ecg.fs_hz, 360.0);
}

TEST(EcgSyn, BeatCountMatchesHeartRate) {
  rng::Xoshiro256 gen(11);
  EcgSynConfig config;
  config.rhythm.mean_hr_bpm = 72.0;
  const SynthesizedEcg ecg = synthesize(config, 60.0, gen);
  // ~72 beats in a minute (allow transient at the ends).
  EXPECT_NEAR(static_cast<double>(ecg.beats.size()), 72.0, 6.0);
}

TEST(EcgSyn, RPeaksAlignWithAnnotations) {
  rng::Xoshiro256 gen(12);
  EcgSynConfig config;
  const SynthesizedEcg ecg = synthesize(config, 30.0, gen);
  ASSERT_GT(ecg.beats.size(), 10u);
  // Signal near each normal-beat annotation should contain the window max.
  for (std::size_t k = 2; k < ecg.beats.size() - 2; ++k) {
    if (ecg.beats[k].type != BeatType::kNormal) continue;
    const std::size_t s = ecg.beats[k].sample;
    double local_max = -1e9;
    std::size_t argmax = 0;
    const std::size_t lo = s >= 40 ? s - 40 : 0;
    const std::size_t hi = std::min(ecg.signal_mv.size() - 1, s + 40);
    for (std::size_t i = lo; i <= hi; ++i) {
      if (ecg.signal_mv[i] > local_max) {
        local_max = ecg.signal_mv[i];
        argmax = i;
      }
    }
    EXPECT_NEAR(static_cast<double>(argmax), static_cast<double>(s), 6.0);
  }
}

TEST(EcgSyn, AmplitudeInPhysiologicalRange) {
  rng::Xoshiro256 gen(13);
  EcgSynConfig config;
  const SynthesizedEcg ecg = synthesize(config, 20.0, gen);
  const double peak = linalg::norm_inf(ecg.signal_mv);
  EXPECT_GT(peak, 0.4);   // R waves present.
  EXPECT_LT(peak, 4.0);   // Not blowing up.
}

TEST(EcgSyn, DeterministicGivenSeed) {
  EcgSynConfig config;
  rng::Xoshiro256 g1(21);
  rng::Xoshiro256 g2(21);
  const SynthesizedEcg a = synthesize(config, 5.0, g1);
  const SynthesizedEcg b = synthesize(config, 5.0, g2);
  ASSERT_EQ(a.signal_mv.size(), b.signal_mv.size());
  EXPECT_EQ(a.signal_mv, b.signal_mv);
}

TEST(EcgSyn, PvcBeatsVisiblyLargerOrWider) {
  rng::Xoshiro256 gen(14);
  EcgSynConfig config;
  config.rhythm.pvc_probability = 0.25;
  const SynthesizedEcg ecg = synthesize(config, 60.0, gen);
  int pvcs = 0;
  for (const auto& b : ecg.beats) {
    if (b.type == BeatType::kPvc) ++pvcs;
  }
  EXPECT_GT(pvcs, 5);
}

// ---------------------------------------------------------------------------
// Noise.

TEST(Noise, ValidationRejectsNegatives) {
  NoiseConfig bad;
  bad.emg_mv = -0.1;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = NoiseConfig{};
  bad.powerline_hz = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Noise, BaselineWanderRmsMatches) {
  rng::Xoshiro256 gen(30);
  const Vector w = baseline_wander(36000, 360.0, 0.33, 0.1, gen);
  const double rms = linalg::norm2(w) / std::sqrt(36000.0);
  EXPECT_NEAR(rms, 0.1, 0.03);
}

TEST(Noise, BaselineWanderIsLowFrequency) {
  rng::Xoshiro256 gen(31);
  const Vector w = baseline_wander(3600, 360.0, 0.33, 0.1, gen);
  // Sample-to-sample differences are tiny compared to amplitude.
  double max_diff = 0.0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(w[i] - w[i - 1]));
  }
  EXPECT_LT(max_diff, 0.01);
}

TEST(Noise, EmgRmsMatches) {
  rng::Xoshiro256 gen(32);
  const Vector e = emg_noise(50000, 0.05, gen);
  const double rms = linalg::norm2(e) / std::sqrt(50000.0);
  EXPECT_NEAR(rms, 0.05, 0.005);
}

TEST(Noise, ZeroAmplitudeIsSilent) {
  rng::Xoshiro256 gen(33);
  EXPECT_EQ(linalg::norm2(emg_noise(100, 0.0, gen)), 0.0);
  EXPECT_EQ(linalg::norm2(baseline_wander(100, 360.0, 0.33, 0.0, gen)), 0.0);
  EXPECT_EQ(linalg::norm2(powerline(100, 360.0, 50.0, 0.0, gen)), 0.0);
}

TEST(Noise, PowerlineIsNarrowband) {
  rng::Xoshiro256 gen(34);
  const std::size_t n = 3600;
  const Vector p = powerline(n, 360.0, 60.0, 0.1, gen);
  // Correlate against 60 Hz quadrature pair; most energy must live there.
  double c_re = 0.0;
  double c_im = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 360.0;
    c_re += p[i] * std::cos(2.0 * 3.14159265358979 * 60.0 * t);
    c_im += p[i] * std::sin(2.0 * 3.14159265358979 * 60.0 * t);
  }
  const double tone_energy = (c_re * c_re + c_im * c_im) / (n / 2.0);
  EXPECT_GT(tone_energy, 0.8 * linalg::norm2_squared(p));
}

TEST(Noise, AddNoiseAddsConfiguredMix) {
  rng::Xoshiro256 gen(35);
  Vector signal(7200);
  NoiseConfig config;
  config.baseline_wander_mv = 0.05;
  config.emg_mv = 0.02;
  config.powerline_mv = 0.01;
  add_noise(signal, 360.0, config, gen);
  EXPECT_GT(linalg::norm2(signal), 0.0);
}

// ---------------------------------------------------------------------------
// Digitization & records.

TEST(Digitize, RoundTripWithinHalfLsb) {
  Vector mv{0.0, 0.5, -0.5, 1.0};
  const auto codes = digitize(mv, 200.0, 1024, 11);
  EXPECT_EQ(codes[0], 1024);
  EXPECT_EQ(codes[1], 1124);
  EXPECT_EQ(codes[2], 924);
  EXPECT_EQ(codes[3], 1224);
}

TEST(Digitize, ClipsAtRails) {
  Vector mv{100.0, -100.0};
  const auto codes = digitize(mv, 200.0, 1024, 11);
  EXPECT_EQ(codes[0], 2047);
  EXPECT_EQ(codes[1], 0);
}

TEST(Digitize, Validation) {
  EXPECT_THROW(digitize(Vector{0.0}, 0.0, 1024, 11), std::invalid_argument);
  EXPECT_THROW(digitize(Vector{0.0}, 200.0, 1024, 1), std::invalid_argument);
}

TEST(RecordConfigValidation, RejectsNonsense) {
  RecordConfig bad;
  bad.duration_seconds = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = RecordConfig{};
  bad.adc_offset = 4096;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Profiles, FortyEightDistinctNames) {
  const auto& profiles = mitbih_surrogate_profiles();
  ASSERT_EQ(profiles.size(), 48u);
  std::set<std::string> names;
  for (const auto& p : profiles) names.insert(p.name);
  EXPECT_EQ(names.size(), 48u);
  EXPECT_EQ(profiles.front().name, "100");
  EXPECT_EQ(profiles.back().name, "234");
}

TEST(Profiles, EctopyAndWideMarkersApplied) {
  const auto& profiles = mitbih_surrogate_profiles();
  bool found_ectopic = false;
  bool found_wide = false;
  for (const auto& p : profiles) {
    if (p.name == "208") {
      EXPECT_GT(p.rhythm.pvc_probability, 0.05);
      found_ectopic = true;
    }
    if (p.name == "109") {
      EXPECT_TRUE(p.rhythm.chronically_wide);
      found_wide = true;
    }
  }
  EXPECT_TRUE(found_ectopic);
  EXPECT_TRUE(found_wide);
}

TEST(GenerateRecord, ProducesPlausibleMitBihSamples) {
  RecordConfig config;
  config.duration_seconds = 20.0;
  const EcgRecord rec =
      generate_record(mitbih_surrogate_profiles()[0], config, 42);
  ASSERT_EQ(rec.size(), 7200u);
  // Baseline near the 1024 offset, excursions within the 11-bit range.
  double sum = 0.0;
  for (auto s : rec.samples) {
    ASSERT_GE(s, 0);
    ASSERT_LE(s, 2047);
    sum += s;
  }
  EXPECT_NEAR(sum / 7200.0, 1024.0, 60.0);
}

TEST(GenerateRecord, ToMvInvertsDigitization) {
  RecordConfig config;
  config.duration_seconds = 5.0;
  const EcgRecord rec =
      generate_record(mitbih_surrogate_profiles()[1], config, 43);
  EXPECT_DOUBLE_EQ(rec.to_mv(1024), 0.0);
  EXPECT_DOUBLE_EQ(rec.to_mv(1224), 1.0);
}

TEST(Database, LazyCachedAccess) {
  RecordConfig config;
  config.duration_seconds = 10.0;
  const SyntheticDatabase db(config, 7);
  EXPECT_EQ(db.size(), 48u);
  const EcgRecord& a = db.record(3);
  const EcgRecord& b = db.record(3);
  EXPECT_EQ(&a, &b);  // Cached.
  EXPECT_EQ(a.name, db.name(3));
  EXPECT_THROW(db.record(48), std::invalid_argument);
  EXPECT_THROW(db.name(48), std::invalid_argument);
}

TEST(Database, RecordsDifferAcrossIndices) {
  RecordConfig config;
  config.duration_seconds = 10.0;
  const SyntheticDatabase db(config, 7);
  EXPECT_NE(db.record(0).samples, db.record(1).samples);
}

TEST(Database, SameSeedReproducible) {
  RecordConfig config;
  config.duration_seconds = 5.0;
  const SyntheticDatabase db1(config, 99);
  const SyntheticDatabase db2(config, 99);
  EXPECT_EQ(db1.record(5).samples, db2.record(5).samples);
}

TEST(Database, DifferentSeedDiffers) {
  RecordConfig config;
  config.duration_seconds = 5.0;
  const SyntheticDatabase db1(config, 1);
  const SyntheticDatabase db2(config, 2);
  EXPECT_NE(db1.record(5).samples, db2.record(5).samples);
}

TEST(Windows, ExtractionCoversRecord) {
  RecordConfig config;
  config.duration_seconds = 20.0;
  const SyntheticDatabase db(config, 7);
  const auto windows = extract_windows(db.record(0), 512, 4);
  ASSERT_EQ(windows.size(), 4u);
  for (const auto& w : windows) EXPECT_EQ(w.size(), 512u);
}

TEST(Windows, TooShortRecordThrows) {
  RecordConfig config;
  config.duration_seconds = 2.0;
  const SyntheticDatabase db(config, 7);
  EXPECT_THROW(extract_windows(db.record(0), 512, 10),
               std::invalid_argument);
}

TEST(Windows, WindowRangeValidation) {
  RecordConfig config;
  config.duration_seconds = 5.0;
  const SyntheticDatabase db(config, 7);
  EXPECT_THROW(db.record(0).window(1790, 100), std::invalid_argument);
}


TEST(Afib, IrregularlyIrregularRhythm) {
  rng::Xoshiro256 gen(50);
  RhythmConfig config;
  config.atrial_fibrillation = true;
  config.mean_hr_bpm = 80.0;
  const auto beats = generate_rhythm(config, 120.0, gen);
  // All conducted beats are kAfib (no APC/compensatory logic).
  double rr_min = 10.0;
  double rr_max = 0.0;
  for (const auto& b : beats) {
    EXPECT_TRUE(b.type == BeatType::kAfib || b.type == BeatType::kPvc);
    rr_min = std::min(rr_min, b.rr_seconds);
    rr_max = std::max(rr_max, b.rr_seconds);
  }
  // Wide i.i.d. RR spread, unlike sinus rhythm's few-percent modulation.
  EXPECT_GT(rr_max / rr_min, 1.8);
}

TEST(Afib, NoPWaveMorphology) {
  EXPECT_EQ(beat_morphology(BeatType::kAfib).a[0], 0.0);
  // QRS preserved (same R amplitude as a normal beat).
  EXPECT_EQ(beat_morphology(BeatType::kAfib).a[2],
            beat_morphology(BeatType::kNormal).a[2]);
}

TEST(Afib, SurrogateProfilesFlagAfRecords) {
  for (const auto& p : mitbih_surrogate_profiles()) {
    if (p.name == "202" || p.name == "219" || p.name == "222") {
      EXPECT_TRUE(p.rhythm.atrial_fibrillation) << p.name;
    }
    if (p.name == "100") {
      EXPECT_FALSE(p.rhythm.atrial_fibrillation);
    }
  }
}

TEST(Afib, SynthesizesAndDigitizes) {
  RecordConfig config;
  config.duration_seconds = 15.0;
  RecordProfile profile = mitbih_surrogate_profiles()[0];
  profile.rhythm.atrial_fibrillation = true;
  const EcgRecord record = generate_record(profile, config, 99);
  EXPECT_EQ(record.size(), 5400u);
  int afib_beats = 0;
  for (const auto& beat : record.beats) {
    if (beat.type == BeatType::kAfib) ++afib_beats;
  }
  EXPECT_GT(afib_beats, 10);
}

}  // namespace
}  // namespace csecg::ecg

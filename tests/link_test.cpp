// Tests for the telemetry link: CRC framing, packetize/reassemble
// round-trips, channel statistics, ARQ accounting, loss-resilient
// decoding, and corrupt-input fuzzing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>

#include "csecg/core/frontend.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/link/arq.hpp"
#include "csecg/link/channel.hpp"
#include "csecg/link/crc16.hpp"
#include "csecg/link/packet.hpp"
#include "csecg/link/packetizer.hpp"
#include "csecg/link/session.hpp"
#include "csecg/metrics/quality.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::link {
namespace {

class LinkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::RecordConfig record_config;
    record_config.duration_seconds = 15.0;
    database_ = new ecg::SyntheticDatabase(record_config, 2015);
    config_ = new core::FrontEndConfig();
    config_->window = 256;
    config_->measurements = 48;
    config_->wavelet_levels = 4;
    config_->solver.max_iterations = 400;
    codec_ = new coding::DeltaHuffmanCodec(
        core::train_lowres_codec(*config_, *database_, 2, 3));
  }
  static void TearDownTestSuite() {
    delete codec_;
    delete config_;
    delete database_;
  }

  static const ecg::SyntheticDatabase& database() { return *database_; }
  static const core::FrontEndConfig& config() { return *config_; }
  static const coding::DeltaHuffmanCodec& lowres() { return *codec_; }

  static LinkSessionConfig lossless_link() {
    LinkSessionConfig link;
    link.channel.kind = ChannelKind::kPerfect;
    return link;
  }

  static core::LossyWindow full_delivery_window(
      const core::Encoder& encoder, const linalg::Vector& window) {
    const core::Frame frame = encoder.encode(window);
    const Packetizer packetizer({}, *encoder.measurement_adc(), lowres());
    const Reassembler reassembler(config().measurements, config().window,
                                  *encoder.measurement_adc(), lowres(), 1);
    const auto train = packetizer.packetize(frame, 7);
    return reassembler.reassemble(7, train).window;
  }

 private:
  static ecg::SyntheticDatabase* database_;
  static core::FrontEndConfig* config_;
  static coding::DeltaHuffmanCodec* codec_;
};

ecg::SyntheticDatabase* LinkTest::database_ = nullptr;
core::FrontEndConfig* LinkTest::config_ = nullptr;
coding::DeltaHuffmanCodec* LinkTest::codec_ = nullptr;

// ---------------------------------------------------------------------------
// CRC-16.

TEST(Crc16, MatchesCcittFalseCheckValue) {
  const char* check = "123456789";
  EXPECT_EQ(crc16_ccitt(reinterpret_cast<const std::uint8_t*>(check), 9),
            0x29B1);
}

TEST(Crc16, IncrementalUpdateMatchesOneShot) {
  std::vector<std::uint8_t> data(57);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const std::uint16_t whole = crc16_ccitt(data.data(), data.size());
  std::uint16_t chained = crc16_ccitt_update(0xFFFF, data.data(), 20);
  chained = crc16_ccitt_update(chained, data.data() + 20, data.size() - 20);
  EXPECT_EQ(whole, chained);
}

TEST(Crc16, CatchesEverySingleBitFlip) {
  PacketHeader header;
  header.kind = PayloadKind::kCsMeasurements;
  header.stream_id = 3;
  header.window_seq = 99;
  header.count = 4;
  header.payload_bits = 48;
  const std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x01,
                                             0x55};
  const auto bytes = serialize_packet(header, payload);
  ASSERT_TRUE(parse_packet(bytes).has_value());
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupted = bytes;
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(parse_packet(corrupted).has_value())
        << "flip of bit " << bit << " went undetected";
  }
}

TEST(Crc16, CatchesBurstErrorsUpTo16Bits) {
  PacketHeader header;
  header.kind = PayloadKind::kLowRes;
  header.count = 8;
  header.payload_bits = 64;
  std::vector<std::uint8_t> payload(8, 0xA5);
  const auto bytes = serialize_packet(header, payload);
  // Overlay bursts of 2..16 consecutive flipped bits at every offset.
  for (std::size_t len = 2; len <= 16; ++len) {
    for (std::size_t start = 0; start + len <= bytes.size() * 8;
         start += 5) {
      auto corrupted = bytes;
      for (std::size_t bit = start; bit < start + len; ++bit) {
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      EXPECT_FALSE(parse_packet(corrupted).has_value())
          << "burst [" << start << ", " << start + len << ") undetected";
    }
  }
}

// ---------------------------------------------------------------------------
// Packet framing.

TEST(Packet, HeaderRoundTrips) {
  PacketHeader header;
  header.kind = PayloadKind::kLowRes;
  header.stream_id = 0xBEEF;
  header.window_seq = 0x1234;
  header.packet_seq = 9;
  header.packet_count = 17;
  header.first = 1000;
  header.count = 250;
  header.payload_bits = 37;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto bytes = serialize_packet(header, payload);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.kind, header.kind);
  EXPECT_EQ(parsed->header.stream_id, header.stream_id);
  EXPECT_EQ(parsed->header.window_seq, header.window_seq);
  EXPECT_EQ(parsed->header.packet_seq, header.packet_seq);
  EXPECT_EQ(parsed->header.packet_count, header.packet_count);
  EXPECT_EQ(parsed->header.first, header.first);
  EXPECT_EQ(parsed->header.count, header.count);
  EXPECT_EQ(parsed->header.payload_bits, header.payload_bits);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Packet, RejectsTruncationAndTrailingGarbage) {
  PacketHeader header;
  header.payload_bits = 16;
  const auto bytes = serialize_packet(header, {0xAA, 0xBB});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> shortened(
        bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(parse_packet(shortened).has_value());
  }
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(parse_packet(padded).has_value());
}

// ---------------------------------------------------------------------------
// Packetize / reassemble.

TEST_F(LinkTest, PacketizerRespectsMtu) {
  const core::Encoder encoder(config(), lowres());
  const core::Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  for (const std::size_t mtu : {std::size_t{27}, std::size_t{64},
                                std::size_t{251}}) {
    PacketizerConfig pconfig;
    pconfig.mtu_bytes = mtu;
    const Packetizer packetizer(pconfig, *encoder.measurement_adc(),
                                lowres());
    const auto train = packetizer.packetize(frame, 0);
    EXPECT_GE(train.size(), 2u);  // CS + at least one low-res packet.
    for (const auto& bytes : train) {
      EXPECT_LE(bytes.size(), mtu);
      EXPECT_TRUE(parse_packet(bytes).has_value());
    }
  }
}

TEST_F(LinkTest, ZeroLossReassemblyIsExact) {
  const core::Encoder encoder(config(), lowres());
  const linalg::Vector window = database().record(0).window(400, 256);
  const core::Frame frame = encoder.encode(window);
  const core::LossyWindow lossy = full_delivery_window(encoder, window);

  ASSERT_EQ(lossy.measurements.size(), frame.measurements.size());
  for (std::size_t i = 0; i < lossy.measurements.size(); ++i) {
    EXPECT_EQ(lossy.measurement_mask[i], 1);
    EXPECT_EQ(lossy.measurements[i], frame.measurements[i]);
  }
  const auto codes = lowres().decode(frame.lowres_payload, config().window);
  ASSERT_EQ(lossy.lowres_codes.size(), codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(lossy.lowres_mask[i], 1);
    EXPECT_EQ(lossy.lowres_codes[i], codes[i]);
  }
}

TEST_F(LinkTest, ZeroLossDecodeBitIdenticalToFramePath) {
  const core::Encoder encoder(config(), lowres());
  const core::Decoder decoder(config(), lowres());
  const linalg::Vector window = database().record(0).window(400, 256);
  const core::Frame frame = encoder.encode(window);

  const core::DecodeResult direct = decoder.decode(frame);
  const core::LossyDecodeResult via_link =
      decoder.decode_lossy(full_delivery_window(encoder, window));

  EXPECT_EQ(direct.x, via_link.x);
  EXPECT_EQ(via_link.effective_m, config().measurements);
  EXPECT_FALSE(via_link.lowres_only);
  EXPECT_TRUE(via_link.used_box);
}

TEST_F(LinkTest, CodebookBlobRoundTrips) {
  const core::Encoder encoder(config(), lowres());
  std::vector<std::uint8_t> blob(300);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 101 + 7);
  }
  const Packetizer packetizer({}, *encoder.measurement_adc(), lowres());
  const auto train = packetizer.packetize_blob(blob, 0);
  const auto restored = Reassembler::reassemble_blob(train);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, blob);

  auto partial = train;
  partial.erase(partial.begin() + 1);
  EXPECT_FALSE(Reassembler::reassemble_blob(partial).has_value());
}

// ---------------------------------------------------------------------------
// Channels.

TEST(Channel, ErasureRateMatchesConfig) {
  ChannelConfig cc;
  cc.kind = ChannelKind::kPacketErasure;
  cc.erasure_rate = 0.2;
  Channel channel(cc, 77);
  std::vector<std::uint8_t> packet = {1, 2, 3};
  int lost = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (!channel.transmit(packet)) ++lost;
  }
  const double empirical = static_cast<double>(lost) / trials;
  EXPECT_NEAR(empirical, cc.erasure_rate, 0.01);
  EXPECT_DOUBLE_EQ(channel.expected_erasure_rate(), 0.2);
}

TEST(Channel, GilbertElliottMatchesStationaryLoss) {
  ChannelConfig cc;
  cc.kind = ChannelKind::kGilbertElliott;
  cc.ge_good_to_bad = 0.05;
  cc.ge_bad_to_good = 0.20;
  cc.ge_erasure_good = 0.01;
  cc.ge_erasure_bad = 0.6;
  // Stationary: π_bad = 0.05/0.25 = 0.2 → loss = 0.2·0.6 + 0.8·0.01.
  const double expected = 0.2 * 0.6 + 0.8 * 0.01;
  EXPECT_NEAR(Channel(cc).expected_erasure_rate(), expected, 1e-12);

  Channel channel(cc, 1234);
  std::vector<std::uint8_t> packet = {0};
  int lost = 0;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    if (!channel.transmit(packet)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / trials, expected, 0.01);
}

TEST(Channel, BitErrorFlipsAreCaughtByCrc) {
  ChannelConfig cc;
  cc.kind = ChannelKind::kBitError;
  cc.bit_error_rate = 0.01;
  Channel channel(cc, 42);
  PacketHeader header;
  header.payload_bits = 256;
  const auto bytes = serialize_packet(
      header, std::vector<std::uint8_t>(32, 0x3C));
  int undetected = 0;
  for (int i = 0; i < 2000; ++i) {
    auto copy = bytes;
    ASSERT_TRUE(channel.transmit(copy));
    if (copy != bytes && parse_packet(copy).has_value()) ++undetected;
  }
  // CRC-16 misses a corrupted packet with probability ~2^-16; 2000 trials
  // should see none.
  EXPECT_EQ(undetected, 0);
}

// ---------------------------------------------------------------------------
// ARQ.

TEST_F(LinkTest, StopAndWaitRecoversModerateLoss) {
  const core::Encoder encoder(config(), lowres());
  const core::Frame frame =
      encoder.encode(database().record(0).window(400, 256));
  const Packetizer packetizer({}, *encoder.measurement_adc(), lowres());
  const auto train = packetizer.packetize(frame, 0);

  ChannelConfig cc;
  cc.kind = ChannelKind::kPacketErasure;
  cc.erasure_rate = 0.3;

  ArqConfig none;
  LinkStats none_stats;
  Channel c1(cc, 5);
  const auto none_rx = transmit_packets(train, c1, none, none_stats);

  ArqConfig saw;
  saw.mode = ArqMode::kStopAndWait;
  saw.max_retries = 6;
  LinkStats saw_stats;
  Channel c2(cc, 5);
  const auto saw_rx = transmit_packets(train, c2, saw, saw_stats);

  EXPECT_LT(none_rx.size(), train.size());  // 0.7^13 ≈ 1% of all surviving.
  EXPECT_EQ(saw_rx.size(), train.size());   // (1-0.3^7)^13 ≈ 0.997.
  EXPECT_GT(saw_stats.retransmissions, 0u);
  EXPECT_GT(saw_stats.data_bits, none_stats.data_bits);
  EXPECT_GT(saw_stats.feedback_bits, 0u);
  EXPECT_GT(saw_stats.backoff_ms, 0.0);
}

TEST_F(LinkTest, SelectiveRepeatRetransmitsOnlyFailures) {
  const core::Encoder encoder(config(), lowres());
  const core::Frame frame =
      encoder.encode(database().record(1).window(500, 256));
  const Packetizer packetizer({}, *encoder.measurement_adc(), lowres());
  const auto train = packetizer.packetize(frame, 1);

  ChannelConfig cc;
  cc.kind = ChannelKind::kPacketErasure;
  cc.erasure_rate = 0.3;

  ArqConfig sr;
  sr.mode = ArqMode::kSelectiveRepeat;
  sr.max_retries = 6;
  sr.sr_window = 4;
  LinkStats sr_stats;
  // Seed 13's erasure pattern starts with two losses, so the first round
  // must leave work for a retransmission round whatever the train size.
  Channel channel(cc, 13);
  const auto rx = transmit_packets(train, channel, sr, sr_stats);

  EXPECT_EQ(rx.size(), train.size());
  EXPECT_GT(sr_stats.retransmissions, 0u);
  // Selective repeat never re-sends a delivered packet, so total
  // transmissions = packets + retransmissions and stays well below
  // stop-and-wait's worst case.
  EXPECT_EQ(sr_stats.delivered, train.size());
  EXPECT_EQ(sr_stats.dropped, 0u);
}

// ---------------------------------------------------------------------------
// Loss-resilient decoding.

TEST_F(LinkTest, SnrDegradesGracefullyWithRowLoss) {
  const core::Encoder encoder(config(), lowres());
  const core::Decoder decoder(config(), lowres());
  const linalg::Vector window = database().record(0).window(400, 256);
  core::LossyWindow base = full_delivery_window(encoder, window);

  const std::size_t m = config().measurements;
  std::vector<double> snr;
  for (const double loss : {0.0, 0.1, 0.2, 0.3}) {
    core::LossyWindow lossy = base;
    // Drop a deterministic, evenly spread set of rows.
    const auto drop = static_cast<std::size_t>(loss * static_cast<double>(m));
    for (std::size_t k = 0; k < drop; ++k) {
      lossy.measurement_mask[(k * m) / drop] = 0;
    }
    const core::LossyDecodeResult result = decoder.decode_lossy(lossy);
    EXPECT_EQ(result.effective_m, m - drop);
    EXPECT_FALSE(result.lowres_only);
    const double prd = metrics::prd_zero_mean(window, result.x);
    snr.push_back(metrics::snr_from_prd(prd));
  }
  // Graceful, not catastrophic: 10% row loss costs < 6 dB, and no loss
  // level collapses below the low-res staircase floor.
  EXPECT_LT(snr[0] - snr[1], 6.0);
  for (std::size_t i = 1; i < snr.size(); ++i) {
    EXPECT_LT(snr[i], snr[0] + 1.0);  // No gain from losing rows.
    EXPECT_GT(snr[i], 5.0);           // Never catastrophic.
  }
}

TEST_F(LinkTest, WholeCsTrainLossFallsBackToLowRes) {
  const core::Encoder encoder(config(), lowres());
  const core::Decoder decoder(config(), lowres());
  const linalg::Vector window = database().record(0).window(400, 256);
  core::LossyWindow lossy = full_delivery_window(encoder, window);
  std::fill(lossy.measurement_mask.begin(), lossy.measurement_mask.end(), 0);

  const core::LossyDecodeResult result = decoder.decode_lossy(lossy);
  EXPECT_TRUE(result.lowres_only);
  EXPECT_EQ(result.effective_m, 0u);
  ASSERT_EQ(result.x.size(), config().window);
  // The staircase still tracks the signal to within the 7-bit step.
  const double prd = metrics::prd_zero_mean(window, result.x);
  EXPECT_GT(metrics::snr_from_prd(prd), 5.0);
}

TEST_F(LinkTest, LostLowResRangesWidenTheBox) {
  const core::Encoder encoder(config(), lowres());
  const core::Decoder decoder(config(), lowres());
  const linalg::Vector window = database().record(0).window(400, 256);
  core::LossyWindow lossy = full_delivery_window(encoder, window);
  for (std::size_t i = 64; i < 192; ++i) lossy.lowres_mask[i] = 0;

  const core::LossyDecodeResult result = decoder.decode_lossy(lossy);
  EXPECT_TRUE(result.used_box);
  EXPECT_EQ(result.boxed_samples, config().window - 128);
  EXPECT_FALSE(result.lowres_only);
  const double prd = metrics::prd_zero_mean(window, result.x);
  EXPECT_GT(metrics::snr_from_prd(prd), 5.0);
}

TEST_F(LinkTest, TotalLossStillProducesAWindow) {
  const core::Decoder decoder(config(), lowres());
  core::LossyWindow nothing;
  nothing.window = config().window;
  nothing.measurements = linalg::Vector(config().measurements);
  nothing.measurement_mask.assign(config().measurements, 0);
  nothing.lowres_codes.assign(config().window, 0);
  nothing.lowres_mask.assign(config().window, 0);
  const core::LossyDecodeResult result = decoder.decode_lossy(nothing);
  EXPECT_TRUE(result.lowres_only);
  EXPECT_EQ(result.x.size(), config().window);
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.x[i]));
  }
}

// ---------------------------------------------------------------------------
// Fuzzing: arbitrary corruption must never crash the receive path.

TEST_F(LinkTest, CorruptPacketFuzzNeverThrows) {
  const core::Encoder encoder(config(), lowres());
  const core::Decoder decoder(config(), lowres());
  const linalg::Vector window = database().record(2).window(600, 256);
  const core::Frame frame = encoder.encode(window);
  const Packetizer packetizer({}, *encoder.measurement_adc(), lowres());
  const Reassembler reassembler(config().measurements, config().window,
                                *encoder.measurement_adc(), lowres(), 1);
  const auto train = packetizer.packetize(frame, 3);

  rng::Xoshiro256 gen(0xF022);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::vector<std::uint8_t>> mangled;
    for (const auto& bytes : train) {
      std::vector<std::uint8_t> copy = bytes;
      switch (gen.next() % 4) {
        case 0:  // Pass through.
          break;
        case 1:  // Random byte flips (1..8 of them).
          for (std::uint64_t k = 0; k <= gen.next() % 8; ++k) {
            copy[gen.next() % copy.size()] ^=
                static_cast<std::uint8_t>(gen.next());
          }
          break;
        case 2:  // Truncate.
          copy.resize(gen.next() % copy.size());
          break;
        default:  // Replace with garbage of arbitrary length.
          copy.assign(gen.next() % 80, static_cast<std::uint8_t>(gen.next()));
          break;
      }
      mangled.push_back(std::move(copy));
    }
    ASSERT_NO_THROW({
      const ReassemblyResult result = reassembler.reassemble(3, mangled);
      const core::LossyDecodeResult decoded =
          decoder.decode_lossy(result.window);
      for (std::size_t i = 0; i < decoded.x.size(); ++i) {
        ASSERT_TRUE(std::isfinite(decoded.x[i]));
      }
    });
  }
}

// ---------------------------------------------------------------------------
// End-to-end session.

TEST_F(LinkTest, SessionZeroLossMatchesFramePath) {
  const LinkSession session(config(), lowres(), lossless_link());
  const core::Codec codec(config(), lowres());
  const linalg::Vector window = database().record(0).window(400, 256);

  const WindowResult via_link = session.transmit_window(window, 0);
  const core::DecodeResult direct = codec.roundtrip(window);
  EXPECT_EQ(via_link.decoded.x, direct.x);
  EXPECT_EQ(via_link.stats.dropped, 0u);
  EXPECT_EQ(via_link.stats.delivered, via_link.stats.packets);
  EXPECT_GT(via_link.energy.total(), 0.0);
}

TEST_F(LinkTest, SessionSurvivesBurstLoss) {
  LinkSessionConfig link = lossless_link();
  link.channel.kind = ChannelKind::kGilbertElliott;
  const LinkSession session(config(), lowres(), link);
  const linalg::Vector window = database().record(0).window(400, 256);
  const WindowResult result = session.transmit_window(window, 1);
  EXPECT_EQ(result.stats.packets,
            result.stats.delivered + result.stats.dropped);
  for (std::size_t i = 0; i < result.decoded.x.size(); ++i) {
    ASSERT_TRUE(std::isfinite(result.decoded.x[i]));
  }
}

TEST_F(LinkTest, ArqSpendsEnergyToBuyDelivery) {
  LinkSessionConfig lossy = lossless_link();
  lossy.channel.kind = ChannelKind::kPacketErasure;
  lossy.channel.erasure_rate = 0.2;

  LinkSessionConfig with_arq = lossy;
  with_arq.arq.mode = ArqMode::kSelectiveRepeat;
  with_arq.arq.max_retries = 5;

  const LinkSession no_arq_session(config(), lowres(), lossy);
  const LinkSession arq_session(config(), lowres(), with_arq);
  const linalg::Vector window = database().record(0).window(400, 256);

  // Same substream seed → same first-transmission loss pattern.
  const WindowResult no_arq = no_arq_session.transmit_window(window, 4);
  const WindowResult arq = arq_session.transmit_window(window, 4);

  EXPECT_GE(arq.stats.delivered, no_arq.stats.delivered);
  EXPECT_GE(arq.stats.data_bits, no_arq.stats.data_bits);
  EXPECT_GT(arq.energy.radio, no_arq.energy.radio);
  EXPECT_GE(arq.decoded.effective_m, no_arq.decoded.effective_m);
}

TEST_F(LinkTest, RunLinkRecordIsThreadDeterministic) {
  LinkSessionConfig link = lossless_link();
  link.channel.kind = ChannelKind::kPacketErasure;
  link.channel.erasure_rate = 0.15;
  const LinkSession session(config(), lowres(), link);
  const ecg::EcgRecord& record = database().record(0);

  parallel::ThreadPool serial(1);
  parallel::ThreadPool threaded(4);
  const LinkRecordReport a = run_link_record(session, record, 3, 0, serial);
  const LinkRecordReport b =
      run_link_record(session, record, 3, 0, threaded);

  ASSERT_EQ(a.windows.size(), b.windows.size());
  EXPECT_EQ(a.mean_snr, b.mean_snr);
  EXPECT_EQ(a.mean_prd, b.mean_prd);
  EXPECT_EQ(a.delivery_rate, b.delivery_rate);
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(a.windows[w].snr, b.windows[w].snr);
    EXPECT_EQ(a.windows[w].stats.delivered, b.windows[w].stats.delivered);
    EXPECT_EQ(a.windows[w].energy_j, b.windows[w].energy_j);
  }
}

TEST_F(LinkTest, ChannelSubstreamsAreDistinct) {
  const LinkSession session(config(), lowres(), lossless_link());
  EXPECT_NE(session.channel_seed(0), session.channel_seed(1));
  EXPECT_NE(session.channel_seed(1), session.channel_seed(2));
}

}  // namespace
}  // namespace csecg::link

// Unit tests for csecg::power — Eq. 4/5/9 scaling laws, the paper's §VI
// headline ratios, and sweep utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "csecg/power/models.hpp"

namespace csecg::power {
namespace {

TEST(TechnologyValidation, RejectsNonsense) {
  TechnologyParams bad;
  bad.fom_j_per_conv = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = TechnologyParams{};
  bad.nef = -1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(DesignValidation, RejectsNonsense) {
  RmpiDesign bad;
  bad.channels = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = RmpiDesign{};
  bad.channels = 1024;
  bad.window = 512;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  HybridDesign hybrid;
  hybrid.lowres_bits = 0;
  EXPECT_THROW(validate(hybrid), std::invalid_argument);
}

TEST(AdcPower, Equation4Exact) {
  TechnologyParams tech;
  // P = (m/n)·FOM·2^B·fs = (240/512)·100e-15·4096·720.
  const double expected = 240.0 / 512.0 * 100e-15 * 4096.0 * 720.0;
  EXPECT_NEAR(adc_power(240, 512, 12, 720.0, tech), expected, 1e-18);
}

TEST(AdcPower, DoublesPerBit) {
  TechnologyParams tech;
  const double p8 = adc_power(64, 512, 8, 720.0, tech);
  const double p9 = adc_power(64, 512, 9, 720.0, tech);
  EXPECT_NEAR(p9 / p8, 2.0, 1e-12);
}

TEST(IntegratorPower, Equation5Exact) {
  TechnologyParams tech;
  const double bw = 360.0;
  const double expected = 2.0 * bw * 240.0 * tech.vdd * tech.vdd * 10.0 *
                          M_PI * 512.0 * tech.cp_farad / 16.0;
  EXPECT_NEAR(integrator_power(240, 512, 720.0, tech), expected,
              expected * 1e-12);
}

TEST(AmplifierPower, GainAndNefQuadratic) {
  TechnologyParams tech;
  const double base = amplifier_power(240, 512, 10, 720.0, tech);
  TechnologyParams double_nef = tech;
  double_nef.nef *= 2.0;
  EXPECT_NEAR(amplifier_power(240, 512, 10, 720.0, double_nef) / base, 4.0,
              1e-9);
  TechnologyParams more_gain = tech;
  more_gain.gain_db += 6.0205999132796239;  // ×2 linear gain.
  EXPECT_NEAR(amplifier_power(240, 512, 10, 720.0, more_gain) / base, 4.0,
              1e-6);
}

TEST(AmplifierPower, FourXPerOutputBit) {
  TechnologyParams tech;
  const double p8 = amplifier_power(64, 512, 8, 720.0, tech);
  const double p9 = amplifier_power(64, 512, 9, 720.0, tech);
  EXPECT_NEAR(p9 / p8, 4.0, 1e-12);
}

TEST(AllBlocks, LinearInChannelCount) {
  // §VI: "power consumption of the module is directly proportional to the
  // number of measurements" — every block must scale linearly in m.
  TechnologyParams tech;
  RmpiDesign a;
  a.channels = 96;
  RmpiDesign b;
  b.channels = 240;
  const PowerBreakdown pa = rmpi_power(a, tech);
  const PowerBreakdown pb = rmpi_power(b, tech);
  const double ratio = 240.0 / 96.0;
  EXPECT_NEAR(pb.adc / pa.adc, ratio, 1e-12);
  EXPECT_NEAR(pb.integrator / pa.integrator, ratio, 1e-12);
  EXPECT_NEAR(pb.amplifier / pa.amplifier, ratio, 1e-12);
  EXPECT_NEAR(pb.total() / pa.total(), ratio, 1e-12);
}

TEST(Headline, TwoPointFiveXAtSnr20) {
  // m = 240 (normal) vs 96 (hybrid) at SNR = 20 dB: ratio ≈ 2.5× before
  // the (small) low-res ADC overhead is added back.
  TechnologyParams tech;
  RmpiDesign normal;
  normal.channels = 240;
  HybridDesign hybrid;
  hybrid.cs_path = normal;
  hybrid.cs_path.channels = 96;
  const double p_normal = rmpi_power(normal, tech).total();
  const double p_hybrid = hybrid_power(hybrid, tech).total();
  EXPECT_NEAR(p_normal / p_hybrid, 2.5, 0.05);
}

TEST(Headline, ElevenXAtSnr17) {
  // m = 176 vs 16 at SNR = 17 dB: ≈ 11×.
  TechnologyParams tech;
  RmpiDesign normal;
  normal.channels = 176;
  HybridDesign hybrid;
  hybrid.cs_path = normal;
  hybrid.cs_path.channels = 16;
  const double ratio = rmpi_power(normal, tech).total() /
                       hybrid_power(hybrid, tech).total();
  EXPECT_GT(ratio, 9.0);
  EXPECT_LT(ratio, 11.5);
}

TEST(AmplifierDominates, AtEcgRates) {
  // §VI: "the dominant part of power consumption — with a large margin —
  // is the amplifier".
  TechnologyParams tech;
  RmpiDesign design;  // 240 channels @ 720 Hz.
  const PowerBreakdown p = rmpi_power(design, tech);
  EXPECT_GT(p.amplifier, 10.0 * p.adc);
  EXPECT_GT(p.amplifier, 10.0 * p.integrator);
}

TEST(LowResAdc, NegligibleVersusCsPath) {
  // The paper: "overall power consumption from this path should be
  // negligible compared to CS path".
  TechnologyParams tech;
  HybridDesign hybrid;
  hybrid.cs_path.channels = 96;
  const HybridPowerBreakdown p = hybrid_power(hybrid, tech);
  EXPECT_LT(p.lowres_adc, 0.01 * p.cs.total());
}

TEST(LowResAdc, ExactFormula) {
  TechnologyParams tech;
  EXPECT_NEAR(lowres_adc_power(7, 720.0, tech),
              720.0 * 100e-15 * 128.0, 1e-18);
}

TEST(Sweep, GeometricSpacingAndMonotonePower) {
  TechnologyParams tech;
  RmpiDesign design;
  const auto sweep = frequency_sweep(design, tech, 100.0, 1e8, 25);
  ASSERT_EQ(sweep.size(), 25u);
  EXPECT_NEAR(sweep.front().nyquist_hz, 100.0, 1e-9);
  EXPECT_NEAR(sweep.back().nyquist_hz, 1e8, 1.0);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    // Log-spacing: constant ratio.
    const double r0 = sweep[1].nyquist_hz / sweep[0].nyquist_hz;
    const double ri = sweep[i].nyquist_hz / sweep[i - 1].nyquist_hz;
    EXPECT_NEAR(ri, r0, r0 * 1e-9);
    // All blocks scale linearly in fs → total strictly increasing.
    EXPECT_GT(sweep[i].breakdown.total(), sweep[i - 1].breakdown.total());
  }
}

TEST(Sweep, Validation) {
  TechnologyParams tech;
  RmpiDesign design;
  EXPECT_THROW(frequency_sweep(design, tech, 0.0, 1e6, 10),
               std::invalid_argument);
  EXPECT_THROW(frequency_sweep(design, tech, 1e6, 1e3, 10),
               std::invalid_argument);
  EXPECT_THROW(frequency_sweep(design, tech, 1e3, 1e6, 1),
               std::invalid_argument);
}

TEST(Breakdown, TotalsAdd) {
  PowerBreakdown p;
  p.adc = 1.0;
  p.integrator = 2.0;
  p.amplifier = 3.0;
  EXPECT_DOUBLE_EQ(p.total(), 6.0);
  HybridPowerBreakdown h;
  h.cs = p;
  h.lowres_adc = 0.5;
  EXPECT_DOUBLE_EQ(h.total(), 6.5);
}

}  // namespace
}  // namespace csecg::power

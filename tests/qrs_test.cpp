// Unit tests for the QRS detector and beat-matching diagnostics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "csecg/ecg/qrs.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::ecg {
namespace {

TEST(QrsConfig, Validation) {
  QrsDetectorConfig bad;
  bad.fs_hz = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = QrsDetectorConfig{};
  bad.bandpass_low_hz = 20.0;  // > high.
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = QrsDetectorConfig{};
  bad.bandpass_high_hz = 300.0;  // > Nyquist at 360 Hz.
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = QrsDetectorConfig{};
  bad.threshold_fraction = 1.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(QrsDetector, EmptyAndTinySignals) {
  EXPECT_TRUE(detect_qrs(linalg::Vector{}).empty());
  EXPECT_TRUE(detect_qrs(linalg::Vector(4, 1.0)).empty());
}

TEST(QrsDetector, FlatSignalNoBeats) {
  EXPECT_TRUE(detect_qrs(linalg::Vector(3600, 1024.0)).empty());
}

TEST(QrsDetector, FindsSyntheticBeats) {
  rng::Xoshiro256 gen(5);
  EcgSynConfig config;
  config.rhythm.mean_hr_bpm = 70.0;
  const SynthesizedEcg ecg = synthesize(config, 30.0, gen);
  const auto detected = detect_qrs(ecg.signal_mv);
  // ~35 beats in 30 s at 70 bpm.
  EXPECT_NEAR(static_cast<double>(detected.size()),
              static_cast<double>(ecg.beats.size()), 3.0);
}

TEST(QrsDetector, HighSensitivityOnCleanRecord) {
  RecordConfig config;
  config.duration_seconds = 30.0;
  const EcgRecord record =
      generate_record(mitbih_surrogate_profiles()[0], config, 7);
  linalg::Vector signal(record.size());
  for (std::size_t i = 0; i < record.size(); ++i) {
    signal[i] = static_cast<double>(record.samples[i]);
  }
  const auto detected = detect_qrs(signal);
  std::vector<std::size_t> reference;
  for (const auto& beat : record.beats) reference.push_back(beat.sample);
  const auto stats = match_beats(detected, reference, 18);  // ±50 ms.
  EXPECT_GT(stats.sensitivity, 0.9);
  EXPECT_GT(stats.ppv, 0.9);
}

TEST(QrsDetector, WorksWithDcOffset) {
  rng::Xoshiro256 gen(6);
  const SynthesizedEcg ecg = synthesize(EcgSynConfig{}, 20.0, gen);
  linalg::Vector offset = ecg.signal_mv;
  for (auto& v : offset) v = v * 200.0 + 1024.0;  // ADC units.
  const auto plain = detect_qrs(ecg.signal_mv);
  const auto shifted = detect_qrs(offset);
  EXPECT_EQ(plain.size(), shifted.size());
}

TEST(MatchBeats, PerfectMatch) {
  const std::vector<std::size_t> beats{100, 400, 700};
  const auto stats = match_beats(beats, beats, 10);
  EXPECT_EQ(stats.true_positives, 3u);
  EXPECT_EQ(stats.false_positives, 0u);
  EXPECT_EQ(stats.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(stats.f1, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_jitter_samples, 0.0);
}

TEST(MatchBeats, JitterWithinTolerance) {
  const auto stats = match_beats({105, 395}, {100, 400}, 10);
  EXPECT_EQ(stats.true_positives, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_jitter_samples, 5.0);
}

TEST(MatchBeats, MissesAndExtras) {
  // Reference has 3 beats; detector found one good, one spurious.
  const auto stats = match_beats({100, 900}, {100, 400, 700}, 10);
  EXPECT_EQ(stats.true_positives, 1u);
  EXPECT_EQ(stats.false_negatives, 2u);
  EXPECT_EQ(stats.false_positives, 1u);
  EXPECT_NEAR(stats.sensitivity, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.ppv, 0.5, 1e-12);
}

TEST(MatchBeats, EachDetectionUsedOnce) {
  // One detection cannot satisfy two reference beats.
  const auto stats = match_beats({100}, {95, 105}, 10);
  EXPECT_EQ(stats.true_positives, 1u);
  EXPECT_EQ(stats.false_negatives, 1u);
}

TEST(MatchBeats, EmptyInputs) {
  const auto none = match_beats({}, {}, 10);
  EXPECT_EQ(none.true_positives, 0u);
  EXPECT_DOUBLE_EQ(none.f1, 0.0);
  const auto all_missed = match_beats({}, {100}, 10);
  EXPECT_EQ(all_missed.false_negatives, 1u);
  const auto all_spurious = match_beats({100}, {}, 10);
  EXPECT_EQ(all_spurious.false_positives, 1u);
}

TEST(AnnotationsInWindow, RebasesAndFilters) {
  std::vector<BeatAnnotation> beats;
  beats.push_back({50, BeatType::kNormal});
  beats.push_back({150, BeatType::kPvc});
  beats.push_back({250, BeatType::kNormal});
  const auto in_window = annotations_in_window(beats, 100, 100);
  ASSERT_EQ(in_window.size(), 1u);
  EXPECT_EQ(in_window[0], 50u);  // 150 − 100.
}

}  // namespace
}  // namespace csecg::ecg

// Tests for csecg::parallel — pool semantics (coverage, chunk assignment,
// exception propagation, nesting) and the experiment-layer determinism
// guarantee: a multi-threaded run_database produces bit-identical
// RecordReports to the serial run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "csecg/core/frontend.hpp"
#include "csecg/core/runner.hpp"
#include "csecg/parallel/thread_pool.hpp"

namespace csecg {
namespace {

TEST(ThreadPool, ReportsRequestedThreadCount) {
  parallel::ThreadPool pool(3);
  EXPECT_EQ(pool.threads(), 3u);
  parallel::ThreadPool serial(1);
  EXPECT_EQ(serial.threads(), 1u);
}

TEST(ThreadPool, DefaultThreadCountHonoursEnvOverride) {
  ::setenv("CSECG_THREADS", "5", 1);
  EXPECT_EQ(parallel::default_thread_count(), 5u);
  ::unsetenv("CSECG_THREADS");
  EXPECT_GE(parallel::default_thread_count(), 1u);
}

TEST(ThreadPool, MalformedThreadCountFailsLoudly) {
  // The seed silently fell back to hardware_concurrency on garbage, so a
  // benchmark run could report numbers for the wrong thread count
  // (ISSUE 3).  Malformed values must now throw.
  for (const char* bad :
       {"not-a-number", "0", "-3", "4x", "1.5", "", " ", "99999999999999999999"}) {
    ::setenv("CSECG_THREADS", bad, 1);
    EXPECT_THROW(parallel::default_thread_count(), std::invalid_argument)
        << "CSECG_THREADS='" << bad << "'";
  }
  ::unsetenv("CSECG_THREADS");
}

TEST(ThreadPool, ParseThreadCountAcceptsOnlyPositiveIntegers) {
  EXPECT_EQ(parallel::parse_thread_count("1"), 1u);
  EXPECT_EQ(parallel::parse_thread_count("16"), 16u);
  EXPECT_EQ(parallel::parse_thread_count("  8"), 8u);  // strtol skips space.
  EXPECT_THROW(parallel::parse_thread_count("8  "), std::invalid_argument);
  EXPECT_THROW(parallel::parse_thread_count("0"), std::invalid_argument);
  EXPECT_THROW(parallel::parse_thread_count("-1"), std::invalid_argument);
  EXPECT_THROW(parallel::parse_thread_count("abc"), std::invalid_argument);
  EXPECT_THROW(parallel::parse_thread_count("3threads"),
               std::invalid_argument);
  EXPECT_THROW(parallel::parse_thread_count(""), std::invalid_argument);
  EXPECT_THROW(parallel::parse_thread_count(nullptr), std::invalid_argument);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  parallel::ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(0, kCount, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  parallel::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Fewer items than threads: each index still runs exactly once.
  std::vector<std::atomic<int>> hits(2);
  pool.parallel_for(0, 2, [&hits](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ThreadPool, ParallelMapMatchesSerialMap) {
  parallel::ThreadPool pool(4);
  parallel::ThreadPool serial(1);
  auto square = [](std::size_t i) { return static_cast<double>(i * i); };
  const auto parallel_out = pool.parallel_map<double>(257, square);
  const auto serial_out = serial.parallel_map<double>(257, square);
  ASSERT_EQ(parallel_out.size(), serial_out.size());
  for (std::size_t i = 0; i < parallel_out.size(); ++i) {
    EXPECT_EQ(parallel_out[i], serial_out[i]);
  }
}

TEST(ThreadPool, PropagatesExceptionsFromLoopBodies) {
  parallel::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 37) {
                            throw std::runtime_error("body failed");
                          }
                        }),
      std::runtime_error);
  // The pool survives a failed loop and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  parallel::ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, [&pool, &inner_total](std::size_t) {
    pool.parallel_for(0, 4, [&inner_total](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

// ---------------------------------------------------------------------------
// Determinism of the parallel experiment runner.

TEST(ParallelRunner, RunDatabaseIsBitIdenticalAcrossThreadCounts) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 15.0;
  const ecg::SyntheticDatabase database(record_config, 2015);

  core::FrontEndConfig config;
  config.window = 256;
  config.measurements = 64;
  config.wavelet_levels = 4;
  config.solver.max_iterations = 300;
  const auto lowres_codec = core::train_lowres_codec(config, database, 3, 3);
  const core::Codec codec(config, lowres_codec);

  parallel::ThreadPool serial(1);
  parallel::ThreadPool threaded(4);
  const auto serial_reports =
      core::run_database(codec, database, 4, 2, core::DecodeMode::kAuto,
                         serial);
  const auto threaded_reports =
      core::run_database(codec, database, 4, 2, core::DecodeMode::kAuto,
                         threaded);

  ASSERT_EQ(serial_reports.size(), threaded_reports.size());
  for (std::size_t r = 0; r < serial_reports.size(); ++r) {
    const auto& a = serial_reports[r];
    const auto& b = threaded_reports[r];
    EXPECT_EQ(a.record_name, b.record_name);
    // Bit-identical aggregates (exact double equality, not tolerance).
    EXPECT_EQ(a.mean_prd, b.mean_prd);
    EXPECT_EQ(a.mean_snr, b.mean_snr);
    EXPECT_EQ(a.cs_cr_percent, b.cs_cr_percent);
    EXPECT_EQ(a.overhead_percent, b.overhead_percent);
    EXPECT_EQ(a.net_cr_percent, b.net_cr_percent);
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (std::size_t w = 0; w < a.windows.size(); ++w) {
      EXPECT_EQ(a.windows[w].prd, b.windows[w].prd);
      EXPECT_EQ(a.windows[w].snr, b.windows[w].snr);
      EXPECT_EQ(a.windows[w].prd_raw, b.windows[w].prd_raw);
      EXPECT_EQ(a.windows[w].snr_raw, b.windows[w].snr_raw);
      EXPECT_EQ(a.windows[w].cs_bits, b.windows[w].cs_bits);
      EXPECT_EQ(a.windows[w].lowres_bits, b.windows[w].lowres_bits);
      EXPECT_EQ(a.windows[w].converged, b.windows[w].converged);
      EXPECT_EQ(a.windows[w].iterations, b.windows[w].iterations);
    }
  }
}

TEST(ParallelRunner, DefaultEntryPointsStillValidateArguments) {
  ecg::RecordConfig record_config;
  record_config.duration_seconds = 15.0;
  const ecg::SyntheticDatabase database(record_config, 2015);
  core::FrontEndConfig config;
  config.window = 256;
  config.measurements = 64;
  config.wavelet_levels = 4;
  config.lowres_bits = 0;  // No codec needed.
  const core::Codec codec(config, std::nullopt);
  EXPECT_THROW(core::run_database(codec, database, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(core::run_record(codec, database.record(0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace csecg

// Tests for the fuzz harness itself: the mutators and campaigns must be
// bit-deterministic (a reported failure is only useful if the seed
// reproduces it), the seed corpora must be valid inputs, and a smoke
// campaign per target must complete violation-free — the tier-1 slice of
// the CI fuzz-smoke job.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <vector>

#include "csecg/fuzz/fixtures.hpp"
#include "csecg/fuzz/mutators.hpp"
#include "csecg/fuzz/targets.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::fuzz {
namespace {

TEST(Mutators, DeterministicUnderSameSeed) {
  const Bytes input = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<Bytes> pool = {{9, 9, 9}, {0xAA, 0xBB}};
  rng::Xoshiro256 a(42);
  rng::Xoshiro256 b(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(mutate(input, pool, a), mutate(input, pool, b));
  }
}

TEST(Mutators, HandleEmptyAndTinyInputs) {
  rng::Xoshiro256 gen(7);
  const std::vector<Bytes> pool = {{1, 2, 3}};
  for (const Bytes& input : {Bytes{}, Bytes{0x00}, Bytes{0xFF, 0x01}}) {
    for (int i = 0; i < 500; ++i) {
      // No mutator may crash or hang on degenerate inputs.
      const Bytes out = mutate(input, pool, gen);
      EXPECT_LE(out.size(), input.size() + 3 * 48 + pool[0].size() * 3);
    }
  }
}

TEST(Mutators, SpliceTakesPrefixAndSuffix) {
  rng::Xoshiro256 gen(3);
  const Bytes a(10, 0xAA);
  const Bytes b(10, 0xBB);
  for (int i = 0; i < 100; ++i) {
    const Bytes out = splice(a, b, gen);
    EXPECT_LE(out.size(), a.size() + b.size());
    // Every 0xAA run precedes every 0xBB run.
    bool seen_b = false;
    for (const std::uint8_t byte : out) {
      if (byte == 0xBB) seen_b = true;
      if (seen_b) EXPECT_EQ(byte, 0xBB);
    }
  }
}

TEST(Targets, NamesRoundTrip) {
  std::set<std::string_view> seen;
  for (const Target target : all_targets()) {
    const std::string_view name = target_name(target);
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    ASSERT_TRUE(target_from_name(name).has_value());
    EXPECT_EQ(*target_from_name(name), target);
  }
  EXPECT_FALSE(target_from_name("nonsense").has_value());
}

TEST(Targets, SeedCorporaAreAccepted) {
  // Every seed input must decode cleanly: the mutation pool starts from
  // valid inputs or the campaign never leaves the outer rejection gates.
  for (const Target target : all_targets()) {
    const std::vector<Bytes> seeds = seed_corpus(target);
    ASSERT_FALSE(seeds.empty()) << target_name(target);
    for (const Bytes& seed : seeds) {
      if (target == Target::kBitReader) {
        // BitReader seeds are read *programs*: draining the stream is a
        // legitimate (rejected) ending, so only the contract applies.
        EXPECT_NO_THROW((void)run_one(target, seed));
        continue;
      }
      EXPECT_EQ(run_one(target, seed), Outcome::kAccepted)
          << target_name(target);
    }
  }
}

TEST(Targets, RegressionCorpusReplaysClean) {
  for (const Target target : all_targets()) {
    const auto corpus = regression_corpus(target);
    ASSERT_FALSE(corpus.empty()) << target_name(target);
    std::set<std::string_view> names;
    for (const RegressionInput& input : corpus) {
      EXPECT_TRUE(names.insert(input.name).second)
          << target_name(target) << "/" << input.name << " duplicated";
      EXPECT_NO_THROW((void)run_one(target, input.bytes))
          << target_name(target) << "/" << input.name;
    }
  }
}

TEST(Targets, CampaignIsDeterministic) {
  for (const Target target : all_targets()) {
    const FuzzReport first = run_target(target, 99, 2000);
    const FuzzReport second = run_target(target, 99, 2000);
    EXPECT_EQ(first.accepted, second.accepted) << target_name(target);
    EXPECT_EQ(first.rejected, second.rejected) << target_name(target);
    EXPECT_EQ(first.fingerprint, second.fingerprint)
        << target_name(target);
    // A different seed must explore a different input sequence.
    const FuzzReport other = run_target(target, 100, 2000);
    EXPECT_NE(other.fingerprint, first.fingerprint) << target_name(target);
  }
}

TEST(Targets, SmokeCampaignFindsNoViolations) {
  for (const Target target : all_targets()) {
    const FuzzReport report = run_target(target, 1, 5000);
    EXPECT_EQ(report.iterations, 5000u);
    EXPECT_EQ(report.accepted + report.rejected, 5000u);
    // The structure-aware mutators must keep reaching the deep accept
    // path, not just bounce off the outer gates.
    EXPECT_GT(report.accepted, 0u) << target_name(target);
    EXPECT_GT(report.rejected, 0u) << target_name(target);
  }
}

TEST(WriteCorpus, WritesEveryCuratedInput) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "csecg_fuzz_corpus_test";
  std::filesystem::remove_all(dir);
  std::size_t expected = 0;
  for (const Target target : all_targets()) {
    expected += regression_corpus(target).size();
  }
  EXPECT_EQ(write_regression_corpus(dir.string()), expected);
  std::size_t found = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.path().extension() == ".bin") ++found;
  }
  EXPECT_EQ(found, expected);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace csecg::fuzz

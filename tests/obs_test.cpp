// Tests for csecg::obs — counter/gauge/histogram semantics, per-thread
// histogram sharding under real contention, the enabled() gate, and the
// structure of the JSON snapshot the experiment binaries export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "csecg/obs/registry.hpp"
#include "csecg/obs/span.hpp"
#include "csecg/parallel/thread_pool.hpp"

namespace csecg::obs {
namespace {

// Each test works on a private Registry so it cannot race the global one
// (instrumented library code writes there from other tests' pool threads).

TEST(ObsCounter, AddAndReset) {
  Registry reg;
  Counter& c = reg.counter("test.events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, LookupIsFindOrCreateWithStableReferences) {
  Registry reg;
  Counter& a = reg.counter("same.name");
  a.add(7);
  // Interleave other registrations; node-based storage must not move `a`.
  for (int i = 0; i < 100; ++i) {
    reg.counter("other." + std::to_string(i)).add();
  }
  Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
}

TEST(ObsGauge, LastValueWins) {
  Registry reg;
  Gauge& g = reg.gauge("test.level");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketsCountSumMax) {
  Registry reg;
  Histogram& h = reg.histogram("test.latency_ns");
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1: [1, 2)
  h.record(3);    // bucket 2: [2, 4)
  h.record(900);  // bucket 10: [512, 1024)
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 904u);
  EXPECT_EQ(snap.max, 900u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[10], 1u);
  EXPECT_DOUBLE_EQ(snap.mean(), 904.0 / 4.0);
  // All mass sits at or below the top occupied bucket's upper edge.
  EXPECT_LE(snap.quantile(0.5), 1024u);
  EXPECT_GE(snap.quantile(0.99), 512u);
}

TEST(ObsHistogram, HugeSampleLandsInTopBucketNotUb) {
  Registry reg;
  Histogram& h = reg.histogram("test.huge_ns");
  h.record(std::numeric_limits<std::uint64_t>::max());
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.buckets[Histogram::kBuckets - 1], 1u);
}

TEST(ObsHistogram, MergesShardsAcrossThreads) {
  Registry reg;
  Histogram& h = reg.histogram("test.mt_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.max, 999u);
  std::uint64_t bucket_total = 0;
  for (const auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsHistogram, RecordFromPoolThreadsAfterReset) {
  // The thread-local shard cache is keyed by process-unique histogram ids;
  // pool threads that recorded before a reset() must keep working after.
  Registry reg;
  Histogram& h = reg.histogram("test.pool_ns");
  parallel::ThreadPool pool(4);
  pool.parallel_for(0, 256, [&h](std::size_t i) {
    h.record(static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(h.snapshot().count, 256u);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  pool.parallel_for(0, 256, [&h](std::size_t i) {
    h.record(static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(h.snapshot().count, 256u);
}

TEST(ObsEnabled, GateSilencesHistogramsButNotCounters) {
  Registry reg;
  Counter& c = reg.counter("gate.counter");
  Histogram& h = reg.histogram("gate.hist_ns");
  ASSERT_TRUE(enabled());  // Process default.
  set_enabled(false);
  c.add();
  h.record(123);
  {
    Span span(h);  // Reads no clock while disabled.
    EXPECT_EQ(span.stop(), 0u);
  }
  set_enabled(true);
  EXPECT_EQ(c.value(), 1u);          // Counters are never gated.
  EXPECT_EQ(h.snapshot().count, 0u); // Histograms went quiet.
  h.record(123);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(ObsSpan, RecordsLifetimeOnceAndStopDisarms) {
  Registry reg;
  Histogram& h = reg.histogram("span.hist_ns");
  {
    Span span(h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
  {
    Span span(h);
    span.stop();
    EXPECT_EQ(span.stop(), 0u);  // Second stop is a no-op.
  }  // Destructor must not double-record.
  EXPECT_EQ(h.snapshot().count, 2u);
}

TEST(ObsSnapshot, JsonContainsEveryMetricWithExpectedShape) {
  Registry reg;
  reg.counter("alpha.events").add(3);
  reg.gauge("beta.level").set(2.5);
  reg.histogram("gamma.time_ns").record(100);
  const std::string json = reg.snapshot_json();
  // Top-level sections.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Metric payloads (compact form, no whitespace).
  EXPECT_NE(json.find("\"alpha.events\":3"), std::string::npos);
  EXPECT_NE(json.find("\"beta.level\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"gamma.time_ns\""), std::string::npos);
  for (const char* field : {"\"count\"", "\"sum\"", "\"max\"", "\"mean\"",
                            "\"p50\"", "\"p90\"", "\"p99\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Balanced braces and no trailing comma before a closer — the cheap
  // structural sanity checks that catch most hand-rolled JSON bugs.
  int depth = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}') --depth;
    EXPECT_GE(depth, 0) << "unbalanced at byte " << i;
    if (json[i] == ',') {
      std::size_t j = i + 1;
      while (j < json.size() &&
             (json[j] == ' ' || json[j] == '\n')) {
        ++j;
      }
      ASSERT_LT(j, json.size());
      EXPECT_NE(json[j], '}') << "trailing comma at byte " << i;
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsSnapshot, JsonEscapesAwkwardNames) {
  Registry reg;
  reg.counter("weird\"name\\here").add();
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("weird\\\"name\\\\here"), std::string::npos);
}

TEST(ObsSnapshot, ResetZeroesValuesButKeepsNames) {
  Registry reg;
  reg.counter("keep.me").add(9);
  reg.histogram("keep.hist_ns").record(50);
  reg.reset();
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"keep.me\":0"), std::string::npos);
  EXPECT_NE(json.find("\"keep.hist_ns\""), std::string::npos);
  EXPECT_EQ(reg.counter("keep.me").value(), 0u);
  EXPECT_EQ(reg.histogram("keep.hist_ns").snapshot().count, 0u);
}

TEST(ObsGlobal, FreeFunctionsHitTheGlobalRegistry) {
  Counter& c = counter("obs_test.global_counter");
  const std::uint64_t before = c.value();
  c.add(5);
  EXPECT_EQ(counter("obs_test.global_counter").value(), before + 5);
  const std::string json = snapshot_json();
  EXPECT_NE(json.find("\"obs_test.global_counter\""), std::string::npos);
}

TEST(ObsClock, MonotonicNeverGoesBackwards) {
  std::uint64_t prev = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace csecg::obs

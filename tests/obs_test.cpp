// Tests for csecg::obs — counter/gauge/histogram semantics, per-thread
// histogram sharding under real contention, the enabled() gate, and the
// structure of the JSON snapshot the experiment binaries export.
#include <gtest/gtest.h>

#include <atomic>
#include <clocale>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "csecg/obs/registry.hpp"
#include "csecg/obs/span.hpp"
#include "csecg/parallel/thread_pool.hpp"

namespace csecg::obs {
namespace {

// Each test works on a private Registry so it cannot race the global one
// (instrumented library code writes there from other tests' pool threads).

TEST(ObsCounter, AddAndReset) {
  Registry reg;
  Counter& c = reg.counter("test.events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, LookupIsFindOrCreateWithStableReferences) {
  Registry reg;
  Counter& a = reg.counter("same.name");
  a.add(7);
  // Interleave other registrations; node-based storage must not move `a`.
  for (int i = 0; i < 100; ++i) {
    reg.counter("other." + std::to_string(i)).add();
  }
  Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
}

TEST(ObsGauge, LastValueWins) {
  Registry reg;
  Gauge& g = reg.gauge("test.level");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketsCountSumMax) {
  Registry reg;
  Histogram& h = reg.histogram("test.latency_ns");
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1: [1, 2)
  h.record(3);    // bucket 2: [2, 4)
  h.record(900);  // bucket 10: [512, 1024)
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 904u);
  EXPECT_EQ(snap.max, 900u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[10], 1u);
  EXPECT_DOUBLE_EQ(snap.mean(), 904.0 / 4.0);
  // All mass sits at or below the top occupied bucket's upper edge.
  EXPECT_LE(snap.quantile(0.5), 1024u);
  EXPECT_GE(snap.quantile(0.99), 512u);
}

TEST(ObsHistogram, HugeSampleLandsInTopBucketNotUb) {
  Registry reg;
  Histogram& h = reg.histogram("test.huge_ns");
  h.record(std::numeric_limits<std::uint64_t>::max());
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.buckets[Histogram::kBuckets - 1], 1u);
}

TEST(ObsHistogram, MergesShardsAcrossThreads) {
  Registry reg;
  Histogram& h = reg.histogram("test.mt_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.max, 999u);
  std::uint64_t bucket_total = 0;
  for (const auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsHistogram, RecordFromPoolThreadsAfterReset) {
  // The thread-local shard cache is keyed by process-unique histogram ids;
  // pool threads that recorded before a reset() must keep working after.
  Registry reg;
  Histogram& h = reg.histogram("test.pool_ns");
  parallel::ThreadPool pool(4);
  pool.parallel_for(0, 256, [&h](std::size_t i) {
    h.record(static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(h.snapshot().count, 256u);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  pool.parallel_for(0, 256, [&h](std::size_t i) {
    h.record(static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(h.snapshot().count, 256u);
}

TEST(ObsEnabled, GateSilencesHistogramsButNotCounters) {
  Registry reg;
  Counter& c = reg.counter("gate.counter");
  Histogram& h = reg.histogram("gate.hist_ns");
  ASSERT_TRUE(enabled());  // Process default.
  set_enabled(false);
  c.add();
  h.record(123);
  {
    Span span(h);  // Reads no clock while disabled.
    EXPECT_EQ(span.stop(), 0u);
  }
  set_enabled(true);
  EXPECT_EQ(c.value(), 1u);          // Counters are never gated.
  EXPECT_EQ(h.snapshot().count, 0u); // Histograms went quiet.
  h.record(123);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(ObsSpan, RecordsLifetimeOnceAndStopDisarms) {
  Registry reg;
  Histogram& h = reg.histogram("span.hist_ns");
  {
    Span span(h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
  {
    Span span(h);
    span.stop();
    EXPECT_EQ(span.stop(), 0u);  // Second stop is a no-op.
  }  // Destructor must not double-record.
  EXPECT_EQ(h.snapshot().count, 2u);
}

TEST(ObsSnapshot, JsonContainsEveryMetricWithExpectedShape) {
  Registry reg;
  reg.counter("alpha.events").add(3);
  reg.gauge("beta.level").set(2.5);
  reg.histogram("gamma.time_ns").record(100);
  const std::string json = reg.snapshot_json();
  // Top-level sections.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Metric payloads (compact form, no whitespace).
  EXPECT_NE(json.find("\"alpha.events\":3"), std::string::npos);
  EXPECT_NE(json.find("\"beta.level\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"gamma.time_ns\""), std::string::npos);
  for (const char* field : {"\"count\"", "\"sum\"", "\"max\"", "\"mean\"",
                            "\"p50\"", "\"p90\"", "\"p99\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Balanced braces and no trailing comma before a closer — the cheap
  // structural sanity checks that catch most hand-rolled JSON bugs.
  int depth = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}') --depth;
    EXPECT_GE(depth, 0) << "unbalanced at byte " << i;
    if (json[i] == ',') {
      std::size_t j = i + 1;
      while (j < json.size() &&
             (json[j] == ' ' || json[j] == '\n')) {
        ++j;
      }
      ASSERT_LT(j, json.size());
      EXPECT_NE(json[j], '}') << "trailing comma at byte " << i;
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsSnapshot, JsonEscapesAwkwardNames) {
  Registry reg;
  reg.counter("weird\"name\\here").add();
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("weird\\\"name\\\\here"), std::string::npos);
}

TEST(ObsSnapshot, ResetZeroesValuesButKeepsNames) {
  Registry reg;
  reg.counter("keep.me").add(9);
  reg.histogram("keep.hist_ns").record(50);
  reg.reset();
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"keep.me\":0"), std::string::npos);
  EXPECT_NE(json.find("\"keep.hist_ns\""), std::string::npos);
  EXPECT_EQ(reg.counter("keep.me").value(), 0u);
  EXPECT_EQ(reg.histogram("keep.hist_ns").snapshot().count, 0u);
}

TEST(ObsGlobal, FreeFunctionsHitTheGlobalRegistry) {
  Counter& c = counter("obs_test.global_counter");
  const std::uint64_t before = c.value();
  c.add(5);
  EXPECT_EQ(counter("obs_test.global_counter").value(), before + 5);
  const std::string json = snapshot_json();
  EXPECT_NE(json.find("\"obs_test.global_counter\""), std::string::npos);
}

TEST(ObsClock, MonotonicNeverGoesBackwards) {
  std::uint64_t prev = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

// --- Histogram::Snapshot::quantile edge cases (ISSUE 4) --------------------

TEST(ObsQuantile, EmptySnapshotIsZeroForAnyQ) {
  Registry reg;
  const auto snap = reg.histogram("q.empty_ns").snapshot();
  EXPECT_EQ(snap.quantile(0.0), 0u);
  EXPECT_EQ(snap.quantile(0.5), 0u);
  EXPECT_EQ(snap.quantile(1.0), 0u);
}

TEST(ObsQuantile, QAtOrBelowZeroClampsToZero) {
  Registry reg;
  Histogram& h = reg.histogram("q.low_ns");
  h.record(100);
  h.record(200);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.quantile(0.0), 0u);
  EXPECT_EQ(snap.quantile(-3.0), 0u);
}

TEST(ObsQuantile, QAtOrAboveOneIsExactMaximum) {
  Registry reg;
  Histogram& h = reg.histogram("q.high_ns");
  h.record(5);
  h.record(1234567);
  h.record(89);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.quantile(1.0), 1234567u);
  EXPECT_EQ(snap.quantile(7.5), 1234567u);
}

TEST(ObsQuantile, SingleSampleIsExactAtEveryInteriorQ) {
  Registry reg;
  Histogram& h = reg.histogram("q.single_ns");
  h.record(777);
  const auto snap = h.snapshot();
  for (const double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(snap.quantile(q), 777u) << "q=" << q;
  }
}

TEST(ObsQuantile, MaxBucketIsClampedByTrueMaximum) {
  Registry reg;
  Histogram& h = reg.histogram("q.clamp_ns");
  // Both land in the same log2 bucket [1024, 2048); the bucket's upper
  // edge is 2047 but the quantile must never exceed the observed max.
  h.record(1030);
  h.record(1500);
  const auto snap = h.snapshot();
  EXPECT_LE(snap.quantile(0.99), 1500u);
  EXPECT_EQ(snap.quantile(1.0), 1500u);
}

// --- Locale-independent snapshot JSON (ISSUE 4 satellite) ------------------

// %g-style formatting follows LC_NUMERIC, so under a comma-decimal locale
// the old snprintf implementation produced "2,5" — invalid JSON.  The
// std::to_chars path must be immune.  Skips when the image carries no
// comma-decimal locale (the CI job installs de_DE.UTF-8).
TEST(ObsSnapshot, JsonDoublesIgnoreCommaDecimalLocale) {
  const char* old_locale = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = old_locale != nullptr ? old_locale : "C";
  const char* comma_locale = nullptr;
  for (const char* candidate : {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, candidate) != nullptr &&
        *std::localeconv()->decimal_point == ',') {
      comma_locale = candidate;
      break;
    }
  }
  if (comma_locale == nullptr) {
    std::setlocale(LC_NUMERIC, saved.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed";
  }

  Registry reg;
  reg.gauge("locale.check").set(2.5);
  reg.histogram("locale.hist_ns").record(3);
  const std::string json = reg.snapshot_json();
  std::setlocale(LC_NUMERIC, saved.c_str());

  EXPECT_NE(json.find("\"locale.check\":2.5"), std::string::npos)
      << "under " << comma_locale << ": " << json;
  EXPECT_EQ(json.find("2,5"), std::string::npos);
}

// --- Registry::reset() vs racing record() (ISSUE 4 satellite) --------------

// The documented contract: reset() is scrape-side and racing records may
// survive it, but nothing tears, crashes, or (under -DCSECG_SANITIZE=thread,
// the build-tsan CI job) races.  After the writers join, a final reset must
// leave internally consistent, fully-zero state.
TEST(ObsReset, RacingRecordsMaySurviveButNeverCorrupt) {
  Registry reg;
  Histogram& h = reg.histogram("reset.race_ns");
  Counter& c = reg.counter("reset.race_count");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &c, &stop] {
      std::uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(v);
        c.add();
        v = v * 2654435761u + 1;  // Vary the bucket hit.
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    reg.reset();
    // A mid-race snapshot may see count, sum and buckets out of step with
    // each other (they are independent relaxed atomics being zeroed under
    // fire) — the contract only demands no tears and no data races, which
    // is what the TSan job checks here.
    (void)h.snapshot();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();

  // Quiescent again: reset must now leave fully consistent zero state.
  reg.reset();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 0u);
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace csecg::obs

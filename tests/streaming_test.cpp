// Tests for the streaming (sample-at-a-time) front-end wrappers.
#include <gtest/gtest.h>

#include "csecg/core/streaming.hpp"
#include "csecg/ecg/record.hpp"
#include "csecg/metrics/quality.hpp"

namespace csecg::core {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::RecordConfig record_config;
    record_config.duration_seconds = 15.0;
    database_ = new ecg::SyntheticDatabase(record_config, 2015);
    config_ = new FrontEndConfig();
    config_->window = 256;
    config_->measurements = 64;
    config_->wavelet_levels = 4;
    config_->solver.max_iterations = 400;
    codec_ = new coding::DeltaHuffmanCodec(
        train_lowres_codec(*config_, *database_, 2, 3));
  }
  static void TearDownTestSuite() {
    delete codec_;
    delete config_;
    delete database_;
  }

  static const ecg::SyntheticDatabase& database() { return *database_; }
  static const FrontEndConfig& config() { return *config_; }
  static const coding::DeltaHuffmanCodec& lowres() { return *codec_; }

 private:
  static ecg::SyntheticDatabase* database_;
  static FrontEndConfig* config_;
  static coding::DeltaHuffmanCodec* codec_;
};

ecg::SyntheticDatabase* StreamingTest::database_ = nullptr;
FrontEndConfig* StreamingTest::config_ = nullptr;
coding::DeltaHuffmanCodec* StreamingTest::codec_ = nullptr;

TEST_F(StreamingTest, EmitsFrameExactlyPerWindow) {
  StreamingEncoder encoder(config(), lowres());
  const auto& record = database().record(0);
  std::size_t frames = 0;
  for (std::size_t i = 0; i < 3 * 256 + 100; ++i) {
    const auto frame =
        encoder.push(static_cast<double>(record.samples[i]));
    if (frame) ++frames;
    EXPECT_EQ(frame.has_value(), (i + 1) % 256 == 0);
  }
  EXPECT_EQ(frames, 3u);
  EXPECT_EQ(encoder.frames_emitted(), 3u);
  EXPECT_EQ(encoder.pending(), 100u);
}

TEST_F(StreamingTest, MatchesBatchEncoder) {
  StreamingEncoder streaming(config(), lowres());
  const Encoder batch(config(), lowres());
  const auto& record = database().record(1);
  std::optional<Frame> streamed;
  for (std::size_t i = 0; i < 256; ++i) {
    streamed = streaming.push(static_cast<double>(record.samples[i]));
  }
  ASSERT_TRUE(streamed.has_value());
  const Frame direct = batch.encode(record.window(0, 256));
  EXPECT_EQ(streamed->measurements, direct.measurements);
  EXPECT_EQ(streamed->lowres_payload, direct.lowres_payload);
}

TEST_F(StreamingTest, BitAccountingAccumulates) {
  StreamingEncoder encoder(config(), lowres());
  const auto& record = database().record(0);
  std::size_t expected_bits = 0;
  for (std::size_t i = 0; i < 2 * 256; ++i) {
    const auto frame =
        encoder.push(static_cast<double>(record.samples[i]));
    if (frame) expected_bits += frame->total_bits();
  }
  EXPECT_EQ(encoder.bits_emitted(), expected_bits);
}

TEST_F(StreamingTest, ResetDiscardsPartialWindow) {
  StreamingEncoder encoder(config(), lowres());
  for (int i = 0; i < 100; ++i) encoder.push(1024.0);
  EXPECT_EQ(encoder.pending(), 100u);
  encoder.reset();
  EXPECT_EQ(encoder.pending(), 0u);
  // The next full window emits normally.
  std::size_t frames = 0;
  for (int i = 0; i < 256; ++i) {
    if (encoder.push(1024.0)) ++frames;
  }
  EXPECT_EQ(frames, 1u);
}

TEST_F(StreamingTest, EndToEndStreamReconstruction) {
  StreamingEncoder encoder(config(), lowres());
  StreamingDecoder decoder(config(), lowres(), DecodeMode::kHybrid);
  const auto& record = database().record(0);
  const std::size_t total = 3 * 256;
  for (std::size_t i = 0; i < total; ++i) {
    const auto frame =
        encoder.push(static_cast<double>(record.samples[i]));
    if (frame) decoder.push(*frame);
  }
  EXPECT_EQ(decoder.frames_decoded(), 3u);
  ASSERT_EQ(decoder.signal().size(), total);
  const linalg::Vector original = record.window(0, total);
  const double snr = metrics::snr_from_prd(
      metrics::prd_zero_mean(original, decoder.signal()));
  EXPECT_GT(snr, 10.0);
}

TEST_F(StreamingTest, DecoderReturnsLastWindow) {
  StreamingEncoder encoder(config(), lowres());
  StreamingDecoder decoder(config(), lowres());
  const auto& record = database().record(0);
  std::optional<Frame> frame;
  for (std::size_t i = 0; i < 256; ++i) {
    frame = encoder.push(static_cast<double>(record.samples[i]));
  }
  const linalg::Vector& window = decoder.push(*frame);
  EXPECT_EQ(window.size(), 256u);
  EXPECT_EQ(decoder.signal().size(), 256u);
  EXPECT_EQ(window, decoder.signal());
}

}  // namespace
}  // namespace csecg::core

// Unit tests for csecg::recovery — proximal operators, the PDHG
// box-constrained BPDN solver (paper problem (1)), FISTA/ADMM LASSO
// agreement, and greedy pursuit exact-recovery properties.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "csecg/linalg/matrix.hpp"
#include "csecg/linalg/operator.hpp"
#include "csecg/recovery/admm.hpp"
#include "csecg/recovery/fista.hpp"
#include "csecg/recovery/greedy.hpp"
#include "csecg/recovery/pdhg.hpp"
#include "csecg/recovery/prox.hpp"
#include "csecg/rng/distributions.hpp"
#include "csecg/rng/xoshiro.hpp"

namespace csecg::recovery {
namespace {

using linalg::LinearOperator;
using linalg::Matrix;
using linalg::Vector;

Matrix gaussian_matrix(std::size_t m, std::size_t n, std::uint64_t seed,
                       bool normalize = true) {
  rng::Xoshiro256 gen(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng::normal(gen);
  }
  if (normalize) linalg::normalize_columns(a);
  return a;
}

Vector sparse_vector(std::size_t n, std::size_t k, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Vector x(n);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t idx = 0;
    do {
      idx = static_cast<std::size_t>(rng::uniform_below(gen, n));
    } while (x[idx] != 0.0);
    // Amplitudes bounded away from zero so support identification is
    // well-posed for the greedy solvers.
    x[idx] = static_cast<double>(rng::rademacher(gen)) *
             rng::uniform(gen, 1.0, 3.0);
  }
  return x;
}

// ---------------------------------------------------------------------------
// Proximal operators.

TEST(Prox, SoftThresholdScalar) {
  EXPECT_DOUBLE_EQ(soft_threshold(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(soft_threshold(-3.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(soft_threshold(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(-0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(2.0, 0.0), 2.0);
}

TEST(Prox, SoftThresholdVector) {
  const Vector v{3.0, -0.5, -4.0};
  const Vector out = soft_threshold(v, 1.0);
  EXPECT_EQ(out, (Vector{2.0, 0.0, -3.0}));
  EXPECT_THROW(soft_threshold(v, -1.0), std::invalid_argument);
}

TEST(Prox, L2BallInsideUntouched) {
  const Vector v{1.0, 0.0};
  const Vector c{0.5, 0.0};
  EXPECT_EQ(project_l2_ball(v, c, 1.0), v);
}

TEST(Prox, L2BallProjectsToSurface) {
  const Vector v{3.0, 4.0};
  const Vector c(2);
  const Vector p = project_l2_ball(v, c, 1.0);
  EXPECT_NEAR(linalg::norm2(p), 1.0, 1e-12);
  // Direction preserved.
  EXPECT_NEAR(p[0] / p[1], 3.0 / 4.0, 1e-12);
}

TEST(Prox, L2BallZeroRadiusReturnsCenter) {
  const Vector v{3.0, 4.0};
  const Vector c{1.0, 1.0};
  const Vector p = project_l2_ball(v, c, 0.0);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 1.0, 1e-12);
}

TEST(Prox, L2BallValidation) {
  EXPECT_THROW(project_l2_ball(Vector{1.0}, Vector{1.0, 2.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(project_l2_ball(Vector{1.0}, Vector{1.0}, -1.0),
               std::invalid_argument);
}

TEST(Prox, BoxClamps) {
  const Vector v{-5.0, 0.5, 5.0};
  const Vector lo{0.0, 0.0, 0.0};
  const Vector hi{1.0, 1.0, 1.0};
  EXPECT_EQ(project_box(v, lo, hi), (Vector{0.0, 0.5, 1.0}));
}

TEST(Prox, BoxValidation) {
  EXPECT_THROW(project_box(Vector{1.0}, Vector{2.0}, Vector{1.0}),
               std::invalid_argument);
  EXPECT_THROW(project_box(Vector{1.0, 2.0}, Vector{0.0}, Vector{1.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PDHG (problem (1) and the normal-CS baseline).

TEST(Pdhg, OptionsValidation) {
  PdhgOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = PdhgOptions{};
  bad.theta = 1.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = PdhgOptions{};
  bad.step_safety = 1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Pdhg, DimensionValidation) {
  const Matrix a = gaussian_matrix(10, 32, 1);
  const auto phi = LinearOperator::from_matrix(a);
  const auto psi = LinearOperator::identity(32);
  EXPECT_THROW(solve_bpdn(phi, LinearOperator::identity(16), Vector(10), 0.1),
               std::invalid_argument);
  EXPECT_THROW(solve_bpdn(phi, psi, Vector(9), 0.1), std::invalid_argument);
  EXPECT_THROW(solve_bpdn(phi, psi, Vector(10), -1.0), std::invalid_argument);
  BoxConstraint box;
  box.lower = Vector(32, 1.0);
  box.upper = Vector(32, 0.0);  // Empty boxes.
  EXPECT_THROW(solve_bpdn(phi, psi, Vector(10), 0.1, box),
               std::invalid_argument);
}

TEST(Pdhg, RecoversSparseSignalNoiseless) {
  // Identity dictionary: x itself is sparse.
  const std::size_t n = 64;
  const std::size_t m = 32;
  const Matrix a = gaussian_matrix(m, n, 2);
  const Vector x_true = sparse_vector(n, 4, 3);
  const Vector y = linalg::multiply(a, x_true);
  PdhgOptions options;
  options.max_iterations = 5000;
  options.tol = 1e-9;
  const PdhgResult res = solve_bpdn(LinearOperator::from_matrix(a),
                                    LinearOperator::identity(n), y, 1e-8,
                                    std::nullopt, options);
  EXPECT_LT(linalg::norm2(res.x - x_true) / linalg::norm2(x_true), 1e-3);
}

TEST(Pdhg, ObjectiveNotWorseThanTruth) {
  // ℓ1 minimality: the solution's ℓ1 norm can't exceed the (feasible)
  // ground truth's by more than the tolerance slack.
  const std::size_t n = 64;
  const Matrix a = gaussian_matrix(24, n, 4);
  const Vector x_true = sparse_vector(n, 3, 5);
  const Vector y = linalg::multiply(a, x_true);
  PdhgOptions options;
  options.max_iterations = 4000;
  const PdhgResult res =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, 1e-6, std::nullopt, options);
  EXPECT_LE(res.objective, linalg::norm1(x_true) * (1.0 + 1e-2));
}

TEST(Pdhg, RespectsNoiseBall) {
  const std::size_t n = 64;
  const std::size_t m = 24;
  const Matrix a = gaussian_matrix(m, n, 6);
  const Vector x_true = sparse_vector(n, 3, 7);
  rng::Xoshiro256 gen(8);
  Vector y = linalg::multiply(a, x_true);
  for (auto& v : y) v += rng::normal(gen, 0.0, 0.01);
  const double sigma = 0.01 * std::sqrt(static_cast<double>(m)) * 1.5;
  PdhgOptions options;
  options.max_iterations = 3000;
  const PdhgResult res =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, sigma, std::nullopt, options);
  const double resid = linalg::norm2(linalg::multiply(a, res.x) - y);
  EXPECT_LE(resid, sigma * 1.02);
}

TEST(Pdhg, BoxConstraintHonored) {
  const std::size_t n = 64;
  const Matrix a = gaussian_matrix(16, n, 9);
  const Vector x_true = sparse_vector(n, 3, 10);
  const Vector y = linalg::multiply(a, x_true);
  BoxConstraint box;
  box.lower = Vector(n);
  box.upper = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    box.lower[i] = x_true[i] - 0.05;
    box.upper[i] = x_true[i] + 0.05;
  }
  PdhgOptions options;
  options.max_iterations = 3000;
  const PdhgResult res =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, 1e-6, box, options);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(res.x[i], box.lower[i] - 0.005);
    EXPECT_LE(res.x[i], box.upper[i] + 0.005);
  }
  // Inside a ±0.05 box the error can't exceed the box diagonal.
  EXPECT_LT(linalg::norm_inf(res.x - x_true), 0.06);
}

TEST(Pdhg, HybridBeatsNormalAtFewMeasurements) {
  // The paper's central claim in miniature: with very few measurements,
  // the box side-information rescues recovery while normal CS fails.
  const std::size_t n = 128;
  const std::size_t m = 10;  // Far below the s·log(n/s) requirement.
  const Matrix a = gaussian_matrix(m, n, 11);
  const Vector x_true = sparse_vector(n, 8, 12);
  const Vector y = linalg::multiply(a, x_true);

  PdhgOptions options;
  options.max_iterations = 3000;
  const PdhgResult normal =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, 1e-6, std::nullopt, options);

  BoxConstraint box;
  box.lower = Vector(n);
  box.upper = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    box.lower[i] = x_true[i] - 0.2;
    box.upper[i] = x_true[i] + 0.2;
  }
  const PdhgResult hybrid =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, 1e-6, box, options);

  const double err_normal = linalg::norm2(normal.x - x_true);
  const double err_hybrid = linalg::norm2(hybrid.x - x_true);
  EXPECT_LT(err_hybrid, 0.5 * err_normal);
}

TEST(Pdhg, WorksWithNonIdentityDictionary) {
  // Random orthonormal dictionary via QR of a Gaussian matrix: x = Qα with
  // sparse α.
  const std::size_t n = 32;
  Matrix g = gaussian_matrix(n, n, 13, false);
  // Gram-Schmidt (small n, fine numerically for a test).
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      double proj = 0.0;
      for (std::size_t i = 0; i < n; ++i) proj += g(i, j) * g(i, k);
      for (std::size_t i = 0; i < n; ++i) g(i, j) -= proj * g(i, k);
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm += g(i, j) * g(i, j);
    norm = std::sqrt(norm);
    for (std::size_t i = 0; i < n; ++i) g(i, j) /= norm;
  }
  const Vector alpha_true = sparse_vector(n, 3, 14);
  const Vector x_true = linalg::multiply(g, alpha_true);
  const Matrix a = gaussian_matrix(16, n, 15);
  const Vector y = linalg::multiply(a, x_true);
  PdhgOptions options;
  options.max_iterations = 5000;
  options.tol = 1e-9;
  const PdhgResult res =
      solve_bpdn(LinearOperator::from_matrix(a),
                 LinearOperator::from_matrix(g), y, 1e-8, std::nullopt,
                 options);
  EXPECT_LT(linalg::norm2(res.x - x_true) / linalg::norm2(x_true), 5e-3);
}

TEST(Pdhg, PhiNormHintGivesSameAnswer) {
  const std::size_t n = 64;
  const Matrix a = gaussian_matrix(24, n, 16);
  const Vector x_true = sparse_vector(n, 4, 17);
  const Vector y = linalg::multiply(a, x_true);
  PdhgOptions options;
  options.max_iterations = 2000;
  const PdhgResult base =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, 1e-6, std::nullopt, options);
  PdhgOptions hinted = options;
  hinted.phi_norm_hint =
      linalg::operator_norm_estimate(LinearOperator::from_matrix(a), 60);
  const PdhgResult with_hint =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, 1e-6, std::nullopt, hinted);
  EXPECT_LT(linalg::norm2(base.x - with_hint.x), 1e-6);
}

TEST(Pdhg, ReportsViolationsOnTinyBudget) {
  const std::size_t n = 32;
  const Matrix a = gaussian_matrix(16, n, 18);
  const Vector y = linalg::multiply(a, sparse_vector(n, 4, 19));
  PdhgOptions options;
  options.max_iterations = 3;  // Deliberately unconverged.
  const PdhgResult res =
      solve_bpdn(LinearOperator::from_matrix(a), LinearOperator::identity(n),
                 y, 1e-9, std::nullopt, options);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
  EXPECT_GT(res.ball_violation, 0.0);
}

// ---------------------------------------------------------------------------
// FISTA & ADMM.

TEST(Fista, OptionsValidation) {
  FistaOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Fista, RecoversSparseSignal) {
  const std::size_t n = 128;
  const Matrix a = gaussian_matrix(48, n, 20);
  const Vector alpha_true = sparse_vector(n, 5, 21);
  const Vector y = linalg::multiply(a, alpha_true);
  FistaOptions options;
  options.max_iterations = 2000;
  const FistaResult res =
      solve_lasso_fista(LinearOperator::from_matrix(a), y, 1e-4, options);
  EXPECT_LT(linalg::norm2(res.coefficients - alpha_true) /
                linalg::norm2(alpha_true),
            0.02);
}

TEST(Fista, LambdaControlsSparsity) {
  const std::size_t n = 128;
  const Matrix a = gaussian_matrix(48, n, 22);
  rng::Xoshiro256 gen(220);
  Vector y = linalg::multiply(a, sparse_vector(n, 5, 23));
  // Noise makes the small-λ solution overfit with a dense support.
  for (auto& v : y) v += rng::normal(gen, 0.0, 0.05);
  const auto op = LinearOperator::from_matrix(a);
  FistaOptions options;
  options.max_iterations = 1000;
  const FistaResult loose = solve_lasso_fista(op, y, 1e-3, options);
  const FistaResult tight = solve_lasso_fista(op, y, 0.5, options);
  EXPECT_LT(linalg::count_above(tight.coefficients, 1e-8),
            linalg::count_above(loose.coefficients, 1e-8));
}

TEST(Fista, RejectsBadLambdaAndDims) {
  const Matrix a = gaussian_matrix(8, 16, 24);
  const auto op = LinearOperator::from_matrix(a);
  EXPECT_THROW(solve_lasso_fista(op, Vector(8), 0.0), std::invalid_argument);
  EXPECT_THROW(solve_lasso_fista(op, Vector(7), 0.1), std::invalid_argument);
}

TEST(Admm, OptionsValidation) {
  AdmmOptions bad;
  bad.rho = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Admm, MatchesFistaOptimum) {
  // Same LASSO, two solvers, one optimum.
  const std::size_t n = 96;
  const Matrix a = gaussian_matrix(32, n, 25);
  const Vector y = linalg::multiply(a, sparse_vector(n, 4, 26));
  const double lambda = 0.01;
  FistaOptions fista_options;
  fista_options.max_iterations = 4000;
  fista_options.tol = 1e-12;
  AdmmOptions admm_options;
  admm_options.max_iterations = 4000;
  admm_options.abs_tol = 1e-10;
  admm_options.rel_tol = 1e-9;
  const FistaResult f = solve_lasso_fista(LinearOperator::from_matrix(a), y,
                                          lambda, fista_options);
  const AdmmResult ad = solve_lasso_admm(a, y, lambda, admm_options);
  EXPECT_NEAR(f.objective, ad.objective,
              1e-4 * std::max(1.0, f.objective));
}

TEST(Admm, RejectsTallMatrix) {
  const Matrix a = gaussian_matrix(16, 16, 27);
  EXPECT_NO_THROW(solve_lasso_admm(a, Vector(16), 0.1));
  const Matrix tall = gaussian_matrix(20, 16, 28);
  (void)tall;
  Matrix t2(20, 16);
  EXPECT_THROW(solve_lasso_admm(t2, Vector(20), 0.1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Greedy pursuit.

TEST(Greedy, OptionsValidation) {
  GreedyOptions bad;
  bad.max_sparsity = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Omp, ExactRecoveryWellConditioned) {
  const std::size_t n = 256;
  const std::size_t m = 64;
  const Matrix a = gaussian_matrix(m, n, 29);
  const Vector x_true = sparse_vector(n, 8, 30);
  const Vector y = linalg::multiply(a, x_true);
  GreedyOptions options;
  options.max_sparsity = 8;
  const GreedyResult res = solve_omp(a, y, options);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(linalg::norm2(res.coefficients - x_true) /
                linalg::norm2(x_true),
            1e-8);
}

TEST(Omp, SupportSizeBounded) {
  const Matrix a = gaussian_matrix(32, 128, 31);
  const Vector y = linalg::multiply(a, sparse_vector(128, 20, 32));
  GreedyOptions options;
  options.max_sparsity = 5;
  const GreedyResult res = solve_omp(a, y, options);
  EXPECT_LE(res.support.size(), 5u);
  EXPECT_FALSE(res.converged);  // 20-sparse can't be fit with 5 atoms.
}

TEST(Omp, ZeroMeasurementVector) {
  const Matrix a = gaussian_matrix(16, 64, 33);
  GreedyOptions options;
  options.max_sparsity = 8;
  const GreedyResult res = solve_omp(a, Vector(16), options);
  EXPECT_TRUE(res.support.empty());
  EXPECT_EQ(linalg::norm2(res.coefficients), 0.0);
}

TEST(Omp, Validation) {
  const Matrix a = gaussian_matrix(16, 64, 34);
  EXPECT_THROW(solve_omp(a, Vector(15)), std::invalid_argument);
  GreedyOptions options;
  options.max_sparsity = 17;  // > m.
  EXPECT_THROW(solve_omp(a, Vector(16), options), std::invalid_argument);
}

TEST(CoSaMp, ExactRecoveryWellConditioned) {
  const std::size_t n = 256;
  const std::size_t m = 96;
  const Matrix a = gaussian_matrix(m, n, 35);
  const Vector x_true = sparse_vector(n, 8, 36);
  const Vector y = linalg::multiply(a, x_true);
  GreedyOptions options;
  options.max_sparsity = 8;
  const GreedyResult res = solve_cosamp(a, y, options);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(linalg::norm2(res.coefficients - x_true) /
                linalg::norm2(x_true),
            1e-6);
}

TEST(CoSaMp, NoisyMeasurementsBoundedResidual) {
  const std::size_t n = 128;
  const std::size_t m = 64;
  const Matrix a = gaussian_matrix(m, n, 37);
  const Vector x_true = sparse_vector(n, 6, 38);
  rng::Xoshiro256 gen(39);
  Vector y = linalg::multiply(a, x_true);
  for (auto& v : y) v += rng::normal(gen, 0.0, 0.01);
  GreedyOptions options;
  options.max_sparsity = 6;
  options.residual_tol = 0.0;  // Run to stagnation.
  const GreedyResult res = solve_cosamp(a, y, options);
  EXPECT_LT(res.residual_norm, 0.05 * linalg::norm2(y));
}

TEST(CoSaMp, SupportExactlyK) {
  const Matrix a = gaussian_matrix(64, 128, 40);
  const Vector y = linalg::multiply(a, sparse_vector(128, 8, 41));
  GreedyOptions options;
  options.max_sparsity = 8;
  const GreedyResult res = solve_cosamp(a, y, options);
  EXPECT_LE(res.support.size(), 8u);
}

}  // namespace
}  // namespace csecg::recovery
